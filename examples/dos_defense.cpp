// DoS defence walkthrough (paper §V-D).
//
// The adversary uses the spread codes leaked by captured radios to inject
// well-formed-looking neighbor-discovery requests whose signatures fail
// verification, hoping to grind every receiver down with 35.5 ms signature
// checks. Each receiver keeps a per-code invalid counter; past gamma the
// code is locally revoked and the radio simply stops de-spreading it.
//
// The example floods one victim step by step, prints its counters flipping
// to REVOKED, then shows the network-wide cap compared to a public-code-set
// scheme under the same budget.
//
// Run:  ./dos_defense
#include <cstdio>

#include "adversary/compromise.hpp"
#include "adversary/dos_attacker.hpp"
#include "baselines/public_code_set.hpp"
#include "core/params.hpp"
#include "predist/authority.hpp"
#include "predist/revocation.hpp"

int main() {
  using namespace jrsnd;

  core::Params params = core::Params::defaults();
  params.n = 100;
  params.m = 8;
  params.l = 5;
  params.q = 4;
  params.gamma = 5;

  Rng root(13);
  predist::CodePoolAuthority authority(params.predist(), root.split());
  Rng adv = root.split();
  const adversary::CompromiseModel compromise(authority.assignment(), params.q, adv);
  const auto attack_codes = compromise.compromised_codes();

  std::printf("DoS defence demo: n = %u, gamma = %u\n", params.n, params.gamma);
  std::printf("adversary captured %u radios -> %zu attack codes\n\n", params.q,
              attack_codes.size());

  // --- zoom in on one victim ------------------------------------------------
  NodeId victim = kInvalidNode;
  CodeId bad_code = kInvalidCode;
  for (const CodeId code : attack_codes) {
    for (const NodeId holder : authority.assignment().holders_of(code)) {
      if (!compromise.is_node_compromised(holder)) {
        victim = holder;
        bad_code = code;
        break;
      }
    }
    if (victim != kInvalidNode) break;
  }
  if (victim == kInvalidNode) {
    std::printf("no non-compromised holder of any attack code (rare seed); done.\n");
    return 0;
  }

  predist::RevocationState state(params.gamma, authority.assignment().codes_of(victim));
  std::printf("victim node %u holds compromised code C_%u; flooding it:\n", raw(victim),
              raw(bad_code));
  for (int request = 1; request <= 10; ++request) {
    if (state.is_revoked(bad_code)) {
      std::printf("  request %2d: ignored (code revoked — no de-spread, no verify)\n",
                  request);
      continue;
    }
    const bool revoked_now = state.report_invalid(bad_code);
    std::printf("  request %2d: bad signature verified-and-rejected (counter %u/%u)%s\n",
                request, state.invalid_count(bad_code), params.gamma,
                revoked_now ? "  -> C revoked locally" : "");
  }
  std::printf("victim wasted %llu verifications (%.2f s CPU) on this code — and will\n"
              "never waste another.\n\n",
              static_cast<unsigned long long>(state.total_invalid_verifications()),
              static_cast<double>(state.total_invalid_verifications()) * params.t_ver);

  // --- the network-wide picture ----------------------------------------------
  adversary::DosCampaign campaign(authority.assignment(), attack_codes,
                                  compromise.compromised_nodes(), params.gamma, params.t_ver);
  const std::uint64_t flood = 100000;
  const adversary::DosCampaignResult r = campaign.run(flood);
  std::printf("full campaign: %llu fake requests per code (%llu total)\n",
              static_cast<unsigned long long>(flood),
              static_cast<unsigned long long>(r.requests_sent));
  std::printf("  JR-SND victims verified %llu requests total (bound: %llu), then went deaf\n",
              static_cast<unsigned long long>(r.verifications),
              static_cast<unsigned long long>(campaign.total_verification_bound()));
  std::printf("  %llu requests hit already-revoked codes and cost nothing\n",
              static_cast<unsigned long long>(r.requests_ignored));

  const std::uint64_t public_cost = baselines::PublicCodeSetScheme::dos_verifications(
      r.requests_sent, /*receivers_per_request=*/10);
  std::printf("  a public-code-set scheme would have verified %llu (%.0f hours of CPU)\n",
              static_cast<unsigned long long>(public_cost),
              static_cast<double>(public_cost) * params.t_ver / 3600.0);
  return 0;
}
