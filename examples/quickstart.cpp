// Quickstart: the smallest end-to-end JR-SND deployment.
//
//   1. The MANET authority generates the secret spread-code pool and
//      pre-distributes m codes to each node (paper §V-A).
//   2. Two nodes in radio range run the D-NDP four-message handshake over
//      a jammed channel (paper §V-B).
//   3. On success both hold the same authenticated pairwise key and a fresh
//      secret session spread code for subsequent anti-jamming traffic.
//
// Run:  ./quickstart
#include <cstdio>

#include "adversary/compromise.hpp"
#include "adversary/jammer.hpp"
#include "common/hex.hpp"
#include "core/abstract_phy.hpp"
#include "core/analysis.hpp"
#include "core/dndp.hpp"
#include "core/secure_channel.hpp"
#include "sim/topology.hpp"

int main() {
  using namespace jrsnd;

  // A small unit: 30 nodes, each preloaded with m = 10 codes, every code
  // held by at most l = 6 nodes.
  core::Params params = core::Params::defaults();
  params.n = 30;
  params.m = 10;
  params.l = 6;
  params.q = 3;  // the enemy captured three radios

  std::printf("JR-SND quickstart\n");
  std::printf("  pool size s = %u codes, %u per node, <= %u holders each\n",
              params.pool_size(), params.m, params.l);

  // --- authority-side setup (before deployment) -------------------------
  Rng root(2011);
  predist::CodePoolAuthority authority(params.predist(), root.split());
  const crypto::IbcAuthority ibc(42);

  // --- the field ----------------------------------------------------------
  const sim::Field field(1000.0, 1000.0);
  std::vector<sim::Position> positions;
  Rng place = root.split();
  for (std::uint32_t i = 0; i < params.n; ++i) {
    positions.push_back({place.uniform_real(0, 1000), place.uniform_real(0, 1000)});
  }
  // Put nodes 0 and 1 next to each other so the demo pair is in range.
  positions[0] = {500.0, 500.0};
  positions[1] = {550.0, 500.0};
  const sim::Topology topology(field, positions, params.tx_range);

  std::vector<core::NodeState> nodes;
  Rng node_rng = root.split();
  for (std::uint32_t i = 0; i < params.n; ++i) {
    const NodeId id = node_id(i);
    nodes.emplace_back(id, ibc.issue(id), authority.assignment().codes_of(id), authority,
                       params.gamma, node_rng.split());
  }

  // --- the adversary --------------------------------------------------------
  Rng adv = root.split();
  const adversary::CompromiseModel compromise(authority.assignment(), params.q, adv);
  const adversary::ReactiveJammer jammer(compromise, {params.z, params.mu});
  std::printf("  adversary captured %u nodes -> knows %zu of %u pool codes\n", params.q,
              compromise.compromised_code_count(), params.pool_size());

  // --- D-NDP between nodes 0 and 1 ------------------------------------------
  const auto shared = authority.assignment().shared_codes(node_id(0), node_id(1));
  std::printf("  nodes 0 and 1 share %zu pool code(s)\n", shared.size());
  if (shared.empty()) {
    std::printf("  (no shared codes this seed — they would fall back to M-NDP)\n");
    return 0;
  }

  Rng phy_rng = root.split();
  core::AbstractPhy phy(topology, jammer, phy_rng);
  core::DndpEngine engine(params, phy);
  const core::DndpResult result = engine.run(nodes[0], nodes[1]);

  std::printf("  D-NDP: %u HELLO copies delivered, %u sub-session(s) completed\n",
              result.hellos_delivered, result.subsessions_completed);
  if (!result.discovered) {
    std::printf("  discovery failed (all shared codes compromised and jammed)\n");
    return 0;
  }

  const core::LogicalNeighbor* link = nodes[0].neighbor(node_id(1));
  std::printf("  discovered & mutually authenticated via pool code C_%u\n",
              raw(*result.winning_code));
  std::printf("  session spread code (first 64 of %zu chips): %s...\n",
              link->session_code.size(),
              link->session_code.slice(0, 64).to_string().c_str());
  std::printf("  both sides agree: %s\n",
              link->session_code == nodes[1].neighbor(node_id(0))->session_code ? "yes"
                                                                                : "NO (bug!)");

  // The payoff: authenticated, encrypted, anti-jamming application traffic
  // over the fresh session code.
  core::SecureChannel channel(nodes[0], nodes[1], phy);
  const auto reply = channel.send_text(node_id(0), "rendezvous at grid 47");
  std::printf("  secure channel: %s\n",
              reply.has_value() ? ("peer decrypted \"" + *reply + "\"").c_str()
                                : "message lost");

  // What the analysis predicts for this configuration:
  const core::Theorem1Result t1 = core::theorem1(params);
  std::printf("  Theorem 1 bounds for this config: %.3f <= P_dndp <= %.3f\n", t1.p_lower,
              t1.p_upper);
  return 0;
}
