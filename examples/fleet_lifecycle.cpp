// Fleet lifecycle: reinforcements join, radios get captured, the authority
// revokes — the long-game operational story around the discovery protocols.
//
//   1. A deployed unit discovers itself (D-NDP + M-NDP).
//   2. Reinforcements arrive: the authority hands them banked virtual-node
//      code sets (paper §V-A joins) and they integrate within one epoch.
//   3. Two radios are captured. The enemy starts jamming with the leaked
//      codes; discovery probability sags.
//   4. The authority broadcasts a signed revocation list for the leaked
//      codes. Honest nodes purge them — giving the jammer nothing to aim
//      at — and fall back on their remaining codes and M-NDP.
//
// Run:  ./fleet_lifecycle
#include <cstdio>

#include "jrsnd.hpp"

using namespace jrsnd;

namespace {

struct Fleet {
  core::Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field;
  std::vector<sim::Position> positions;
  std::vector<core::NodeState> nodes;
  std::vector<predist::RevocationListener> listeners;
  Rng root{4242};

  Fleet()
      : params(make_params()),
        authority(params.predist(), Rng(1)),
        ibc(2),
        field(params.field_width, params.field_height) {
    Rng place = root.split();
    Rng node_rng = root.split();
    for (std::uint32_t i = 0; i < params.n; ++i) {
      positions.push_back({place.uniform_real(0, field.width()),
                           place.uniform_real(0, field.height())});
      add_node(node_id(i), authority.assignment().codes_of(node_id(i)), node_rng);
    }
  }

  static core::Params make_params() {
    core::Params p = core::Params::defaults();
    p.n = 60;
    p.m = 10;
    p.l = 8;
    p.nu = 3;
    p.field_width = 1200.0;
    p.field_height = 1200.0;
    return p;
  }

  void add_node(NodeId id, const std::vector<CodeId>& codes, Rng& node_rng) {
    nodes.emplace_back(id, ibc.issue(id), codes, authority, params.gamma, node_rng.split());
    listeners.emplace_back(ibc.oracle());
  }

  /// One discovery sweep (D-NDP everywhere + one M-NDP round); returns the
  /// fraction of physical pairs with live authenticated links.
  double sweep(const adversary::Jammer& jammer, Rng& rng) {
    const sim::Topology topology(field, positions, params.tx_range);
    core::AbstractPhy phy(topology, jammer, rng);
    core::DndpEngine dndp(params, phy);
    for (const auto& [a, b] : topology.pairs()) {
      if (!nodes[raw(a)].knows(b)) (void)dndp.run(nodes[raw(a)], nodes[raw(b)]);
    }
    core::MndpEngine mndp(params, phy, topology, ibc.oracle(), true);
    (void)mndp.run_round(std::span<core::NodeState>(nodes), rng);
    std::size_t linked = 0;
    for (const auto& [a, b] : topology.pairs()) {
      linked += nodes[raw(a)].knows(b) && nodes[raw(b)].knows(a);
    }
    return topology.pairs().empty()
               ? 1.0
               : static_cast<double>(linked) / static_cast<double>(topology.pairs().size());
  }
};

}  // namespace

int main() {
  Fleet fleet;
  Rng rng = fleet.root.split();
  const adversary::NullJammer quiet;

  std::printf("fleet lifecycle: %u nodes, m=%u, l=%u, pool=%u codes\n\n", fleet.params.n,
              fleet.params.m, fleet.params.l, fleet.params.pool_size());

  // --- 1. initial self-discovery ------------------------------------------
  std::printf("[1] initial discovery sweep: coverage %.1f%%\n",
              100.0 * fleet.sweep(quiet, rng));

  // --- 2. reinforcements join ----------------------------------------------
  Rng node_rng = fleet.root.split();
  Rng place = fleet.root.split();
  const std::uint32_t joiners = 6;
  for (std::uint32_t j = 0; j < joiners; ++j) {
    const NodeId id = node_id(fleet.params.n + j);
    const std::vector<CodeId> codes = fleet.authority.join(id);
    fleet.positions.push_back({place.uniform_real(0, fleet.field.width()),
                               place.uniform_real(0, fleet.field.height())});
    fleet.add_node(id, codes, node_rng);
  }
  fleet.params.n += joiners;
  std::printf("[2] %u reinforcements joined (banked code sets; max holders/code now %zu)\n",
              joiners, fleet.authority.assignment().max_holders());
  std::printf("    post-join sweep: coverage %.1f%%\n", 100.0 * fleet.sweep(quiet, rng));

  // --- 3. capture + jamming --------------------------------------------------
  Rng adv = fleet.root.split();
  const adversary::CompromiseModel compromise(fleet.authority.assignment(), 4, adv);
  const adversary::ReactiveJammer jammer(compromise,
                                         {fleet.params.z, fleet.params.mu});
  std::printf("[3] enemy captured 4 radios -> %zu codes leaked; jamming begins\n",
              compromise.compromised_code_count());
  // Links keyed by leaked codes are not retroactively broken (session codes
  // are fresh secrets), but NEW discovery on leaked codes is jammed. Start
  // a fresh unit-wide rediscovery to expose the damage:
  for (auto& node : fleet.nodes) {
    for (const NodeId peer : node.logical_neighbors()) node.remove_logical_neighbor(peer);
  }
  std::printf("    rediscovery under jamming: coverage %.1f%%\n",
              100.0 * fleet.sweep(jammer, rng));

  // --- 4. authority-driven revocation ----------------------------------------
  predist::RevocationIssuer issuer(fleet.ibc.issue(predist::kAuthorityId));
  const predist::RevocationList list = issuer.issue(compromise.compromised_codes());
  std::size_t purged_total = 0;
  for (std::size_t i = 0; i < fleet.nodes.size(); ++i) {
    std::size_t purged = 0;
    const auto outcome = fleet.listeners[i].apply(list, fleet.nodes[i].revocation(), &purged);
    if (outcome == predist::RevocationListener::Outcome::Applied) purged_total += purged;
  }
  std::printf("[4] authority broadcast revocation list #%llu (%zu codes); nodes purged %zu\n",
              static_cast<unsigned long long>(list.sequence), list.revoked.size(),
              purged_total);
  for (auto& node : fleet.nodes) {
    for (const NodeId peer : node.logical_neighbors()) node.remove_logical_neighbor(peer);
  }
  std::printf("    rediscovery after revocation: coverage %.1f%%\n",
              100.0 * fleet.sweep(jammer, rng));
  std::printf("\nAfter revocation the jammer holds only dead codes: discovery runs on the\n"
              "surviving pool + M-NDP, and the DoS surface is gone with it.\n");
  return 0;
}
