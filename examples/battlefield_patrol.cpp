// Battlefield patrol: the workload the paper's introduction motivates.
//
// A company of nodes moves through a 2x2 km area under random-waypoint
// mobility while an omnipresent reactive jammer (fed by captured radios)
// tries to stop neighbor discovery. Every epoch (the paper's interval T)
// each node re-runs discovery against whoever is currently in range:
// D-NDP first, then M-NDP through already-discovered logical neighbors.
//
// The example prints, per epoch, how much of the physical neighborhood the
// protocol turned into authenticated logical links — and how stale links to
// departed neighbors are dropped.
//
// Run:  ./battlefield_patrol
#include <cstdio>
#include <unordered_set>

#include "adversary/compromise.hpp"
#include "adversary/jammer.hpp"
#include "core/abstract_phy.hpp"
#include "core/dndp.hpp"
#include "core/mndp.hpp"
#include "sim/mobility.hpp"
#include "sim/topology.hpp"

int main() {
  using namespace jrsnd;

  core::Params params = core::Params::defaults();
  params.n = 120;
  params.m = 12;
  params.l = 10;
  params.q = 8;
  params.nu = 3;  // one extra M-NDP hop buys back the jammed pairs
  params.field_width = 2000.0;
  params.field_height = 2000.0;

  std::printf("battlefield patrol: %u nodes, %u captured, RWP mobility, reactive jammer\n\n",
              params.n, params.q);

  Rng root(7);
  predist::CodePoolAuthority authority(params.predist(), root.split());
  const crypto::IbcAuthority ibc(11);
  const sim::Field field(params.field_width, params.field_height);
  Rng mob_rng = root.split();
  const sim::RandomWaypoint mobility(field, params.n, {2.0, 12.0, 5.0}, mob_rng);

  Rng adv = root.split();
  const adversary::CompromiseModel compromise(authority.assignment(), params.q, adv);
  const adversary::ReactiveJammer jammer(compromise, {params.z, params.mu});

  std::vector<core::NodeState> nodes;
  Rng node_rng = root.split();
  for (std::uint32_t i = 0; i < params.n; ++i) {
    const NodeId id = node_id(i);
    nodes.emplace_back(id, ibc.issue(id), authority.assignment().codes_of(id), authority,
                       params.gamma, node_rng.split());
  }

  Rng phy_rng = root.split();
  Rng order_rng = root.split();

  std::printf("%6s  %10s  %12s  %12s  %10s  %8s\n", "t(s)", "phys_pairs", "logical(D)",
              "logical(+M)", "coverage", "dropped");

  constexpr double kEpoch = 30.0;  // the paper's discovery interval T
  for (int epoch = 0; epoch < 8; ++epoch) {
    const TimePoint now{epoch * kEpoch};
    const sim::Topology topology(field, mobility.snapshot(now), params.tx_range);

    // Nodes stop monitoring session codes of departed neighbors (paper
    // §IV-A: no activity within a threshold -> assume the peer moved away).
    std::size_t dropped = 0;
    for (auto& node : nodes) {
      for (const NodeId peer : node.logical_neighbors()) {
        if (!topology.are_neighbors(node.id(), peer)) {
          node.remove_logical_neighbor(peer);
          ++dropped;
        }
      }
    }

    core::AbstractPhy phy(topology, jammer, phy_rng);
    core::DndpEngine dndp(params, phy);

    // D-NDP sweep over current physical pairs that are not yet logical.
    std::size_t dndp_links = 0;
    for (const auto& [a, b] : topology.pairs()) {
      if (nodes[raw(a)].knows(b)) {
        ++dndp_links;  // still linked from an earlier epoch
        continue;
      }
      if (dndp.run(nodes[raw(a)], nodes[raw(b)]).discovered) ++dndp_links;
    }

    // One M-NDP round fills the gaps through the logical graph.
    core::MndpEngine mndp(params, phy, topology, ibc.oracle(), /*gps_filter=*/true);
    (void)mndp.run_round(std::span<core::NodeState>(nodes), order_rng);

    std::size_t logical_total = 0;
    for (const auto& [a, b] : topology.pairs()) {
      logical_total += nodes[raw(a)].knows(b) && nodes[raw(b)].knows(a);
    }

    const double coverage = topology.pairs().empty()
                                ? 1.0
                                : static_cast<double>(logical_total) /
                                      static_cast<double>(topology.pairs().size());
    std::printf("%6.0f  %10zu  %12zu  %12zu  %9.1f%%  %8zu\n", now.seconds(),
                topology.pairs().size(), dndp_links, logical_total, 100.0 * coverage,
                dropped / 2);
  }

  std::printf("\nThe jammer knows every captured radio's codes, and this patrol is sparse\n"
              "(average degree ~8 vs the paper's ~23), yet D-NDP plus M-NDP rebuild\n"
              "most of each epoch's neighborhood; denser deployments (see\n"
              "bench/fig3_impact_of_l_n) push coverage toward 1.\n");
  return 0;
}
