// Jamming gauntlet: watch the physical layer fight at chip granularity.
//
// Two nodes run the real DSSS pipeline — Reed-Solomon expansion, spreading,
// sliding-window synchronization, correlation-threshold de-spreading with
// erasure marking, errata decoding — while a jammer with knowledge of the
// code attacks with increasing coverage. The example prints, per coverage
// level, how many handshakes survive, illustrating the mu/(1+mu) ECC
// tolerance the whole scheme rests on (paper §V-B).
//
// Run:  ./jamming_gauntlet
#include <cstdio>

#include "adversary/jammer.hpp"
#include "common/rng.hpp"
#include "dsss/chip_channel.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spreader.hpp"
#include "ecc/ecc_codec.hpp"

int main() {
  using namespace jrsnd;

  const double mu = 1.0;
  const std::size_t n_chips = 128;
  const double tau = 0.3;
  const std::size_t payload_bits = 21;  // a HELLO
  const ecc::EccCodec codec(mu);
  Rng rng(99);

  std::printf("jamming gauntlet: N = %zu chips/bit, mu = %.1f (tolerates %.0f%% erasures),\n"
              "tau = %.2f, payload = %zu bits -> %zu coded bits\n\n",
              n_chips, mu, 100.0 * codec.erasure_tolerance(), tau, payload_bits,
              codec.coded_length_bits(payload_bits));

  const dsss::SpreadCode code = dsss::SpreadCode::random(rng, n_chips);

  constexpr int kTrials = 40;
  std::printf("%10s  %10s  %12s  %10s\n", "coverage", "signals", "survived", "rate");
  struct Attack {
    double coverage;
    std::uint32_t signals;
    const char* note;
  };
  const Attack attacks[] = {
      {0.00, 0, "clean channel"},
      {0.15, 1, "equal power, light"},
      {0.30, 1, "equal power, below tolerance"},
      {0.45, 1, "equal power, near tolerance"},
      {0.60, 1, "equal power, above tolerance"},
      {0.40, 2, "overpowered, above error capacity"},
      {0.75, 2, "reactive jammer's full strike"},
  };

  for (const Attack& attack : attacks) {
    int survived = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      // Sender: encode + spread + place at a random offset.
      BitVector payload(payload_bits);
      for (std::size_t i = 0; i < payload_bits; ++i) payload.set(i, rng.bernoulli(0.5));
      const BitVector coded = codec.encode(payload);
      const BitVector chips = dsss::spread(coded, code);
      const std::size_t pad = 64 + rng.uniform(n_chips);
      dsss::ChipChannel channel(pad + chips.size() + 64);
      channel.add(dsss::Transmission{pad, chips});

      // Jammer: same-code, chip-synced, striking after identifying the code
      // in the first quarter of the message.
      for (const auto& tx : adversary::make_chip_jamming(
               code, pad, coded.size(), attack.coverage, attack.signals, rng, 0.25)) {
        channel.add(tx);
      }

      // Receiver: sync-scan, despread with erasure marking, errata-decode,
      // rescanning past false locks.
      const BitVector received = channel.receive(rng);
      const std::vector<dsss::SpreadCode> candidates = {code};
      std::size_t offset = 0;
      bool got_it = false;
      while (!got_it) {
        const auto hit =
            dsss::find_first_message(received, candidates, coded.size(), tau, offset);
        if (!hit.has_value()) break;
        const auto decoded =
            codec.decode(hit->message.bits, payload_bits,
                         std::span<const std::size_t>(hit->message.erased_bits));
        if (decoded.has_value() && *decoded == payload) {
          got_it = true;
        } else {
          offset = hit->chip_offset + 1;
        }
      }
      survived += got_it;
    }
    std::printf("%9.0f%%  %10u  %7d/%-4d  %9.0f%%   %s\n", 100.0 * attack.coverage,
                attack.signals, survived, kTrials,
                100.0 * survived / kTrials, attack.note);
  }

  std::printf("\nBelow the ECC tolerance the handshake shrugs the jammer off; above it\n"
              "(or when the jammer overpowers the link) the message dies — which is why\n"
              "D-NDP runs one sub-session per shared code and M-NDP routes around\n"
              "pairs whose every shared code is compromised.\n");
  return 0;
}
