#!/usr/bin/env bash
# Builds everything, runs the full test suite, every example, and every
# bench, capturing test/bench output at the repository root — the exact
# sequence EXPERIMENTS.md numbers come from.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for e in build/examples/*; do
  echo "=== $(basename "$e") ==="
  "$e"
done

for b in build/bench/*; do
  echo "=== $(basename "$b") ==="
  "$b"
done 2>&1 | tee bench_output.txt
