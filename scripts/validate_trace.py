#!/usr/bin/env python3
"""Validate a jrsnd JSONL trace against the schema in docs/observability.md.

Checks every line:
  * parses as a flat JSON object (scalar values only — the writer never nests);
  * carries the reserved keys t (number), seq (integer >= 1), sev (one of
    debug/info/warn/error), event (non-empty string);
  * span.begin / span.end events carry integer trace/span/parent ids, a
    string name, and (on end) a boolean ok plus, when present, a known loss
    stage;
  * flight.* events carry the same span identity fields.

Exit 0 when the whole file validates; exit 1 with one "file:line: message"
diagnostic per problem (capped) otherwise. Usage:

    scripts/validate_trace.py trace.jsonl [more.jsonl ...]
"""

import json
import sys

SEVERITIES = {"debug", "info", "warn", "error"}
LOSS_STAGES = {
    "none",
    "no_shared_code",
    "out_of_range",
    "jammed",
    "corrupt",
    "decode_fail",
    "timeout",
    "fault",
    "crash",
}
SPAN_EVENTS = {"span.begin", "span.end"}
FLIGHT_EVENTS = {"flight.begin", "flight.end", "flight.note"}
MAX_DIAGNOSTICS = 20


def is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_event(obj):
    """Yields problem strings for one parsed trace event."""
    for key in ("t", "seq", "sev", "event"):
        if key not in obj:
            yield f"missing reserved key '{key}'"
    if "t" in obj and not is_number(obj["t"]):
        yield f"'t' must be a number, got {obj['t']!r}"
    if "seq" in obj and (not is_int(obj["seq"]) or obj["seq"] < 1):
        yield f"'seq' must be an integer >= 1, got {obj['seq']!r}"
    if "sev" in obj and obj["sev"] not in SEVERITIES:
        yield f"'sev' must be one of {sorted(SEVERITIES)}, got {obj['sev']!r}"
    name = obj.get("event")
    if "event" in obj and (not isinstance(name, str) or not name):
        yield f"'event' must be a non-empty string, got {name!r}"
    for key, value in obj.items():
        if isinstance(value, (dict, list)):
            yield f"field '{key}' is nested ({type(value).__name__}); the schema is flat"

    if name in SPAN_EVENTS or name in FLIGHT_EVENTS:
        for key in ("trace", "span", "parent"):
            if key not in obj:
                if name == "flight.note" and key != "trace":
                    continue  # notes outside a span omit span/parent
                yield f"{name} missing '{key}'"
            elif not is_int(obj[key]) or obj[key] < 0:
                yield f"{name} '{key}' must be a non-negative integer, got {obj[key]!r}"
        if "name" in obj and not isinstance(obj["name"], str):
            yield f"{name} 'name' must be a string, got {obj['name']!r}"
        elif "name" not in obj:
            yield f"{name} missing 'name'"
    if name in {"span.end", "flight.end"}:
        if "ok" not in obj or not isinstance(obj["ok"], bool):
            yield f"{name} must carry a boolean 'ok'"
        loss = obj.get("loss")
        if loss is not None and loss not in LOSS_STAGES:
            yield f"{name} 'loss' must be one of {sorted(LOSS_STAGES)}, got {loss!r}"


def validate(path):
    """Returns the list of "path:line: message" problems for one file."""
    problems = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as err:
                    problems.append(f"{path}:{line_no}: malformed JSON ({err.msg})")
                    continue
                if not isinstance(obj, dict):
                    problems.append(f"{path}:{line_no}: line is not a JSON object")
                    continue
                for message in check_event(obj):
                    problems.append(f"{path}:{line_no}: {message}")
    except OSError as err:
        problems.append(f"{path}: {err.strerror or err}")
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} TRACE.jsonl [TRACE.jsonl ...]", file=sys.stderr)
        return 2
    all_problems = []
    events = 0
    for path in argv[1:]:
        all_problems.extend(validate(path))
        try:
            with open(path, encoding="utf-8") as fh:
                events += sum(1 for line in fh if line.strip())
        except OSError:
            pass
    for problem in all_problems[:MAX_DIAGNOSTICS]:
        print(problem, file=sys.stderr)
    if len(all_problems) > MAX_DIAGNOSTICS:
        hidden = len(all_problems) - MAX_DIAGNOSTICS
        print(f"... and {hidden} more problem(s)", file=sys.stderr)
    if all_problems:
        return 1
    print(f"validated {events} event(s) across {len(argv) - 1} file(s): schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
