#!/usr/bin/env bash
# End-to-end observability demo (docs/observability.md):
#   1. build the CLI if needed,
#   2. run a small jammed discovery sweep with tracing + metrics on,
#   3. summarize the captured JSONL with `jrsnd report`,
#   4. show a single chip-free D-NDP handshake as phy.tx events.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
out="${JRSND_TRACE_OUT:-$repo/build/trace_demo.jsonl}"

if [[ ! -x "$build/tools/jrsnd" ]]; then
  cmake -B "$build" -S "$repo" >/dev/null
  cmake --build "$build" -j --target jrsnd_cli >/dev/null 2>&1 ||
    cmake --build "$build" -j >/dev/null
fi
jrsnd="$build/tools/jrsnd"

echo "== simulate (trace -> $out) =="
"$jrsnd" simulate --runs 2 --n 200 --seed 7 --trace-out "$out" --metrics

if [[ ! -s "$out" ]]; then
  echo "error: trace file is empty" >&2
  exit 1
fi

echo
echo "== report =="
"$jrsnd" report "$out"

echo
echo "== one D-NDP handshake as phy.tx events =="
"$jrsnd" trace --jsonl

echo
echo "trace kept at $out"
