#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Guards the throughput numbers from BENCH_sync.json — the single-core
run_all rate, the saturated (every-hardware-thread) rate, and the
sync-kernel scan throughput — the obs-overhead budget from
BENCH_transmit.json, and (when the hardware admits it) the cycle-accounted
counter metrics both benches emit. A throughput metric regresses when the
fresh value falls below `tolerance` x baseline (default 0.6: CI machines
are shared and noisy; this catches the 2x cliffs, not 5% jitter).
Lower-is-better counter metrics use the mirrored ceiling
(baseline / tolerance).

Environment-aware skips, never silent:
  * A saturated thread-count mismatch (or a legacy `"saturated": null`
    baseline) skips the saturated comparison with a notice.
  * Counter gates arm only when BOTH baseline and fresh recorded
    backend == "perf_event" with estimated == false; otherwise they are
    skipped with a warning (clock-fallback cycles are estimates, and the
    derived instruction/miss rates are written as JSON null).
  * Multi-code (SIMD-batched) throughput gates match baseline and fresh
    entries by (backend, m): a backend present on only one side — a
    different machine, or a JRSND_SIMD override — is skipped with a
    notice, never compared cross-backend.

Every violation prints one FAIL line naming the metric, the baseline
value, the current value, and the percent delta; the exit code goes
nonzero only after the full list is printed.

The city-scale simulator gates from BENCH_scale.json work the same way,
plus two absolute conditions that hold at ANY problem size (so the tier-1
`--smoke` run still enforces them): both hot loops must report ZERO
steady-state heap allocations, and the CSR topology must be identical to
the seed-path build. Throughput floors (rebuild speedup, mobility
updates/s, event throughput) only compare when baseline and fresh ran the
same node count — a `--smoke` run against the committed 100k baseline
skips them with a notice. Full-size runs additionally enforce the
acceptance floor `build.speedup_vs_seed >= 5`.

The DoS-throughput gates from BENCH_dos.json follow the scale pattern:
absolute conditions at ANY size (the batched pipeline must be bit-identical
to the one-shot reference in verdicts AND decision counters, and the
steady-state reject path must report ZERO heap allocations), relative
handshakes/sec floors per attacker:honest ratio only when baseline and
fresh ran the same mode (a --smoke run against the committed full baseline
skips them with a notice), and full runs additionally enforce the
acceptance floor `speedup >= 5` at the 10:1 ratio.

Usage:
    scripts/check_perf.py --baseline BENCH_sync.json --fresh fresh_sync.json \
        [--transmit-baseline BENCH_transmit.json --transmit-fresh fresh_tx.json] \
        [--scale-baseline BENCH_scale.json --scale-fresh fresh_scale.json] \
        [--dos-baseline BENCH_dos.json --dos-fresh fresh_dos.json] \
        [--tolerance 0.6]
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def get(doc, dotted):
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def pct_delta(base_v, fresh_v):
    if base_v == 0:
        return 0.0
    return 100.0 * (fresh_v - base_v) / base_v


def counters_gateable(doc, section, label, side):
    """True when `section`.counters carries real (non-estimated) PMU numbers."""
    backend = get(doc, f"{section}.counters.backend")
    estimated = get(doc, f"{section}.counters.estimated")
    if backend == "perf_event" and estimated is False:
        return True
    print(f"warning: {side} {label} counters backend={backend!r} "
          f"estimated={estimated!r}; skipping counter gates "
          f"(need backend == 'perf_event')")
    return False


class Gate:
    """Collects per-metric verdicts; fails only after all are printed."""

    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.failures = []

    def fail(self, label, base_v, fresh_v, limit, direction):
        self.failures.append(
            f"{label}: baseline {base_v:.3f}, current {fresh_v:.3f} "
            f"({pct_delta(base_v, fresh_v):+.1f}%), {direction} {limit:.3f}")

    def check_floor(self, label, base_v, fresh_v):
        """Higher is better: fresh must be >= tolerance * baseline."""
        floor = self.tolerance * base_v
        ok = fresh_v >= floor
        print(f"{label}: baseline {base_v:.3f}, fresh {fresh_v:.3f} "
              f"({pct_delta(base_v, fresh_v):+.1f}%), floor {floor:.3f} "
              f"-> {'OK' if ok else 'REGRESSED'}")
        if not ok:
            self.fail(label, base_v, fresh_v, floor, "below floor")

    def check_ceiling(self, label, base_v, fresh_v):
        """Lower is better (cycles): fresh must be <= baseline / tolerance."""
        ceiling = base_v / self.tolerance
        ok = fresh_v <= ceiling
        print(f"{label}: baseline {base_v:.3f}, fresh {fresh_v:.3f} "
              f"({pct_delta(base_v, fresh_v):+.1f}%), ceiling {ceiling:.3f} "
              f"-> {'OK' if ok else 'REGRESSED'}")
        if not ok:
            self.fail(label, base_v, fresh_v, ceiling, "above ceiling")

    def check_path(self, baseline, fresh, label, path, lower_is_better=False,
                   fallback_path=None):
        base_v = get(baseline, path)
        fresh_v = get(fresh, path)
        if fallback_path is not None:
            if base_v is None:
                base_v = get(baseline, fallback_path)
            if fresh_v is None:
                fresh_v = get(fresh, fallback_path)
        if base_v is None:
            print(f"note: baseline lacks {path}; skipping '{label}'")
            return
        if fresh_v is None:
            self.failures.append(f"{label}: fresh run lacks {path}")
            return
        if lower_is_better:
            self.check_ceiling(label, base_v, fresh_v)
        else:
            self.check_floor(label, base_v, fresh_v)


def check_multi_code(gate, baseline, fresh):
    """Gate the SIMD-batched scan throughput per (backend, m) pair.

    Entries only compare when both runs measured the same backend at the
    same group size — a gate never compares scalar against avx512 numbers.
    """
    base_entries = get(baseline, "multi_code.entries")
    fresh_entries = get(fresh, "multi_code.entries")
    if base_entries is None:
        print("note: baseline lacks multi_code section; skipping batched-scan gates")
        return
    if fresh_entries is None:
        gate.failures.append("multi-code: fresh run lacks multi_code.entries")
        return
    base_by_key = {(e.get("backend"), e.get("m")): e for e in base_entries}
    for entry in fresh_entries:
        key = (entry.get("backend"), entry.get("m"))
        base_entry = base_by_key.get(key)
        label = f"batched scan {key[0]} m={key[1]}"
        if base_entry is None:
            print(f"note: baseline has no multi_code entry for backend={key[0]!r} "
                  f"m={key[1]}; skipping '{label}'")
            continue
        gate.check_floor(f"{label} Gchip/s",
                         base_entry.get("batched_gchips_per_sec", 0.0),
                         entry.get("batched_gchips_per_sec", 0.0))
    for key in base_by_key:
        if key not in {(e.get("backend"), e.get("m")) for e in fresh_entries}:
            print(f"note: fresh run has no multi_code entry for backend={key[0]!r} "
                  f"m={key[1]} (backend unavailable on this host); not compared")


def check_scale(gate, baseline, fresh):
    """Gate the city-scale simulator bench (BENCH_scale.json).

    Absolute conditions hold at any node count; throughput floors compare
    only when baseline and fresh ran the same n.
    """
    # Absolute: the hot loops must stay allocation-free and the CSR build
    # must match the seed path bit-for-bit, at any problem size.
    for path in ("mobility.steady_state_allocs", "events.steady_state_allocs"):
        allocs = get(fresh, path)
        if allocs is None:
            gate.failures.append(f"scale: fresh run lacks {path}")
            continue
        verdict = "OK" if allocs == 0 else "ALLOCATING"
        print(f"scale {path}: {allocs} (must be 0) -> {verdict}")
        if allocs != 0:
            gate.failures.append(f"scale {path}: {allocs} heap allocations "
                                 f"in the steady-state hot loop (must be 0)")
    identical = get(fresh, "build.identical")
    verdict = "OK" if identical is True else "MISMATCH"
    print(f"scale build.identical: {identical} -> {verdict}")
    if identical is not True:
        gate.failures.append("scale build.identical: CSR adjacency diverged "
                             "from the seed-path build")

    # Full-size runs must hold the acceptance floor regardless of baseline.
    if get(fresh, "config.smoke") is False:
        speedup = get(fresh, "build.speedup_vs_seed") or 0.0
        floor = 5.0
        verdict = "OK" if speedup >= floor else "BELOW FLOOR"
        print(f"scale rebuild speedup: {speedup:.2f}x "
              f"(acceptance floor {floor:.1f}x) -> {verdict}")
        if speedup < floor:
            gate.failures.append(
                f"scale rebuild speedup: {speedup:.2f}x, below the "
                f"{floor:.1f}x acceptance floor at full size")

    base_n = get(baseline, "config.n")
    fresh_n = get(fresh, "config.n")
    if base_n != fresh_n:
        print(f"note: scale node counts differ (baseline {base_n}, fresh "
              f"{fresh_n}); skipping scale throughput comparisons")
        return
    gate.check_path(baseline, fresh, "scale rebuild speedup vs seed",
                    "build.speedup_vs_seed")
    gate.check_path(baseline, fresh, "scale rebuilds/s", "build.rebuilds_per_sec")
    gate.check_path(baseline, fresh, "scale mobility updates/s",
                    "mobility.updates_per_sec")
    gate.check_path(baseline, fresh, "scale mobility steps/s",
                    "mobility.steps_per_sec")
    gate.check_path(baseline, fresh, "scale event throughput",
                    "events.events_per_sec")


def check_dos(gate, baseline, fresh):
    """Gate the handshake-flood verification bench (BENCH_dos.json).

    Absolute conditions hold in any mode, smoke included; throughput floors
    compare only when baseline and fresh ran the same mode.
    """
    # Absolute: the batched pipeline must agree with the one-shot reference
    # exactly — in verdicts and in the per-stage decision counters — before
    # any of its throughput numbers mean anything.
    for path, desc in (
            ("identity.bit_identical",
             "batched verdicts diverged from the one-shot reference"),
            ("identity.counters_identical",
             "decision counters diverged between batched and one-shot paths")):
        value = get(fresh, path)
        verdict = "OK" if value is True else "MISMATCH"
        print(f"dos {path}: {value} -> {verdict}")
        if value is not True:
            gate.failures.append(f"dos {path}: {desc}")

    allocs = get(fresh, "zero_alloc.reject_path_allocs")
    if allocs is None:
        gate.failures.append("dos: fresh run lacks zero_alloc.reject_path_allocs")
    else:
        verdict = "OK" if allocs == 0 else "ALLOCATING"
        print(f"dos zero_alloc.reject_path_allocs: {allocs} (must be 0) -> {verdict}")
        if allocs != 0:
            gate.failures.append(f"dos reject path: {allocs} heap allocations "
                                 f"in the steady state (must be 0)")

    fresh_flood = get(fresh, "flood") or []
    fresh_by_ratio = {e.get("ratio"): e for e in fresh_flood}

    # Full runs must hold the acceptance floor regardless of baseline.
    if get(fresh, "config.smoke") is False:
        entry = fresh_by_ratio.get(10)
        speedup = (entry or {}).get("speedup", 0.0)
        floor = 5.0
        verdict = "OK" if speedup >= floor else "BELOW FLOOR"
        print(f"dos batched speedup @10:1: {speedup:.2f}x "
              f"(acceptance floor {floor:.1f}x) -> {verdict}")
        if speedup < floor:
            gate.failures.append(
                f"dos batched speedup @10:1: {speedup:.2f}x, below the "
                f"{floor:.1f}x acceptance floor at full size")

    base_smoke = get(baseline, "config.smoke")
    fresh_smoke = get(fresh, "config.smoke")
    if base_smoke != fresh_smoke:
        print(f"note: dos run modes differ (baseline smoke={base_smoke}, "
              f"fresh smoke={fresh_smoke}); skipping throughput comparisons")
        return
    base_flood = get(baseline, "flood")
    if base_flood is None:
        print("note: baseline lacks flood section; skipping dos throughput gates")
        return
    base_by_ratio = {e.get("ratio"): e for e in base_flood}
    for ratio, entry in fresh_by_ratio.items():
        base_entry = base_by_ratio.get(ratio)
        if base_entry is None:
            print(f"note: baseline has no flood entry for ratio={ratio}; skipped")
            continue
        gate.check_floor(f"dos batched h/s @{ratio}:1",
                         base_entry.get("batched_hps", 0.0),
                         entry.get("batched_hps", 0.0))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="committed BENCH_sync.json")
    parser.add_argument("--fresh", help="freshly produced sync bench JSON")
    parser.add_argument("--transmit-baseline", help="committed BENCH_transmit.json")
    parser.add_argument("--transmit-fresh", help="freshly produced transmit bench JSON")
    parser.add_argument("--scale-baseline", help="committed BENCH_scale.json")
    parser.add_argument("--scale-fresh", help="freshly produced scale bench JSON")
    parser.add_argument("--dos-baseline", help="committed BENCH_dos.json")
    parser.add_argument("--dos-fresh", help="freshly produced DoS bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="fresh must be >= tolerance * baseline (default 0.6)")
    args = parser.parse_args(argv[1:])
    if not args.fresh and not args.scale_fresh and not args.dos_fresh:
        parser.error("need --fresh, --scale-fresh, and/or --dos-fresh")

    gate = Gate(args.tolerance)

    if args.fresh:
        if not args.baseline:
            parser.error("--fresh requires --baseline")
        baseline = load(args.baseline)
        fresh = load(args.fresh)

        gate.check_path(baseline, fresh, "kernel scan throughput",
                        "scan.kernel_mchips_per_sec")
        check_multi_code(gate, baseline, fresh)
        # The single-core rate moved from the saturated section into run_all
        # when the single-thread "saturated" label was retired; accept either
        # layout.
        gate.check_path(baseline, fresh, "single-core run_all rate",
                        "run_all.single_core_runs_per_sec",
                        fallback_path="saturated.single_core_runs_per_sec")

        base_threads = get(baseline, "saturated.threads")
        fresh_threads = get(fresh, "saturated.threads")
        if base_threads is None or fresh_threads is None:
            side = "baseline" if base_threads is None else "fresh run"
            print(f"note: {side} has no saturated section (legacy null from a "
                  f"single-core recorder); skipping 'saturated run_all rate'")
        elif base_threads != fresh_threads:
            print(f"note: thread counts differ (baseline {base_threads}, "
                  f"fresh {fresh_threads}); skipping 'saturated run_all rate'")
        else:
            gate.check_path(baseline, fresh, "saturated run_all rate",
                            "saturated.runs_per_sec")

        # Counter gates: cycle and IPC regressions on the kernel scan. Only
        # meaningful when both sides measured a real PMU.
        if (counters_gateable(baseline, "scan", "scan", "baseline")
                and counters_gateable(fresh, "scan", "scan", "fresh")):
            gate.check_path(baseline, fresh, "kernel scan cycles/scan",
                            "scan.counters.cycles_per_scan", lower_is_better=True)
            gate.check_path(baseline, fresh, "kernel scan IPC",
                            "scan.counters.ipc")

    if args.transmit_fresh:
        tx_fresh = load(args.transmit_fresh)
        overhead = get(tx_fresh, "obs_overhead.overhead_pct")
        if overhead is None:
            gate.failures.append("transmit bench lacks obs_overhead.overhead_pct")
        else:
            # Absolute budget, doubled for CI noise: the bench itself warns
            # at the 5% acceptance line.
            budget = 10.0
            verdict = "OK" if overhead <= budget else "OVER BUDGET"
            print(f"obs overhead: {overhead:.1f}% (budget {budget:.0f}%) -> {verdict}")
            if overhead > budget:
                gate.failures.append(
                    f"obs overhead: current {overhead:.1f}%, "
                    f"above budget {budget:.0f}%")
        if args.transmit_baseline:
            tx_baseline = load(args.transmit_baseline)
            gate.check_path(tx_baseline, tx_fresh, "cached transmit rate",
                            "transmit.cached_ms_per_msg", lower_is_better=True)
            if (counters_gateable(tx_baseline, "transmit", "transmit", "baseline")
                    and counters_gateable(tx_fresh, "transmit", "transmit", "fresh")):
                gate.check_path(tx_baseline, tx_fresh, "cached transmit cycles/msg",
                                "transmit.counters.cycles_per_msg",
                                lower_is_better=True)

    if args.scale_fresh:
        scale_fresh = load(args.scale_fresh)
        scale_baseline = load(args.scale_baseline) if args.scale_baseline else {}
        check_scale(gate, scale_baseline, scale_fresh)

    if args.dos_fresh:
        dos_fresh = load(args.dos_fresh)
        dos_baseline = load(args.dos_baseline) if args.dos_baseline else {}
        check_dos(gate, dos_baseline, dos_fresh)

    if gate.failures:
        for failure in gate.failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
