#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Guards the two numbers ISSUE 6 cares about from BENCH_sync.json — the
single-core run_all rate and the saturated (every-hardware-thread) rate —
plus the sync-kernel scan throughput, and the obs-overhead budget from
BENCH_transmit.json. A metric regresses when the fresh value falls below
`tolerance` x baseline (default 0.6: CI machines are shared and noisy;
this catches the 2x cliffs, not 5% jitter).

Thread-count mismatches are handled, not papered over: when the baseline
was recorded on a machine with a different hardware-thread count, the
saturated comparison is skipped with a notice (the number is not
comparable), while per-core metrics are still enforced.

Usage:
    scripts/check_perf.py --baseline BENCH_sync.json --fresh fresh_sync.json \
        [--transmit-baseline BENCH_transmit.json --transmit-fresh fresh_tx.json] \
        [--tolerance 0.6]
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def get(doc, dotted):
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_sync.json")
    parser.add_argument("--fresh", required=True, help="freshly produced sync bench JSON")
    parser.add_argument("--transmit-baseline", help="committed BENCH_transmit.json")
    parser.add_argument("--transmit-fresh", help="freshly produced transmit bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="fresh must be >= tolerance * baseline (default 0.6)")
    args = parser.parse_args(argv[1:])

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    # (label, dotted path) — throughput metrics only, so a single
    # >= tolerance * baseline rule covers them all.
    checks = [
        ("kernel scan throughput", "scan.kernel_mchips_per_sec"),
        ("single-core run_all rate", "saturated.single_core_runs_per_sec"),
        ("saturated run_all rate", "saturated.runs_per_sec"),
    ]

    base_threads = get(baseline, "saturated.threads")
    fresh_threads = get(fresh, "saturated.threads")

    failures = []
    for label, path in checks:
        base_v = get(baseline, path)
        fresh_v = get(fresh, path)
        if base_v is None:
            print(f"note: baseline lacks {path}; skipping '{label}'")
            continue
        if fresh_v is None:
            failures.append(f"{label}: fresh run lacks {path}")
            continue
        if path == "saturated.runs_per_sec" and base_threads != fresh_threads:
            print(f"note: thread counts differ (baseline {base_threads}, "
                  f"fresh {fresh_threads}); skipping '{label}'")
            continue
        floor = args.tolerance * base_v
        verdict = "OK" if fresh_v >= floor else "REGRESSED"
        print(f"{label}: baseline {base_v:.3f}, fresh {fresh_v:.3f}, "
              f"floor {floor:.3f} -> {verdict}")
        if fresh_v < floor:
            failures.append(f"{label}: {fresh_v:.3f} < {floor:.3f} "
                            f"({args.tolerance:.0%} of baseline {base_v:.3f})")

    if args.transmit_fresh:
        tx_fresh = load(args.transmit_fresh)
        overhead = get(tx_fresh, "obs_overhead.overhead_pct")
        if overhead is None:
            failures.append("transmit bench lacks obs_overhead.overhead_pct")
        else:
            # Absolute budget, doubled for CI noise: the bench itself warns
            # at the 5% acceptance line.
            budget = 10.0
            verdict = "OK" if overhead <= budget else "OVER BUDGET"
            print(f"obs overhead: {overhead:.1f}% (budget {budget:.0f}%) -> {verdict}")
            if overhead > budget:
                failures.append(f"obs overhead {overhead:.1f}% exceeds {budget:.0f}% budget")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
