// jrsnd — command-line driver for the library.
//
//   jrsnd analyze   [--n --m --l --q --z --mu --nu]   closed-form numbers
//   jrsnd analyze   FILE [--top K]                     span-trace analysis:
//                                                      latency breakdown +
//                                                      loss attribution
//   jrsnd simulate  [--n --m --l --q --nu --runs --seed --jammer]
//                   [--trace-out FILE] [--trace-wall] [--metrics]
//                   [--export-prom FILE] [--heartbeat FILE]
//                   [--export-interval SECS] [--flight-dump FILE]
//                   [--profile-out FILE] [--profile-hz N]
//                                                      Monte-Carlo discovery
//   jrsnd profile   --out FILE [--hz N] [simulate flags]
//                                                      profiled simulate run:
//                                                      folded stacks + counter
//                                                      regions (prof.*)
//   jrsnd trace     [--seed] [--jsonl]                 one D-NDP handshake,
//                                                      message by message
//   jrsnd report    FILE                               summarize a JSONL trace
//                                                      (strict: exits 2 with
//                                                      the offending line on
//                                                      malformed input)
//   jrsnd provision --node <id> [--n --m --l --chips]  hex provisioning blob
//
// Every flag defaults to Table I. Flags without a value ("--metrics") are
// booleans. Exit code 0 on success, 2 on usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "jrsnd.hpp"

namespace {

using namespace jrsnd;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> positionals;

  [[nodiscard]] bool has(const std::string& key) const { return flags.contains(key); }
  [[nodiscard]] std::uint32_t u32(const std::string& key, std::uint32_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : static_cast<std::uint32_t>(std::stoul(it->second));
  }
  [[nodiscard]] std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] double real(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: jrsnd <analyze|simulate|profile|trace|report|provision|chaos> "
               "[--flag [value]]...\n"
               "  analyze   --n --m --l --q --z --mu --nu       closed forms (Thms 1-4)\n"
               "  analyze   FILE [--top K]                       span-trace analysis: per-\n"
               "            attempt latency, stage stats, loss attribution\n"
               "  simulate  --n --m --l --q --nu --runs --seed --jammer {none,random,\n"
               "            reactive,intelligent}                Monte-Carlo discovery\n"
               "            --trace-out FILE    write a JSONL event trace\n"
               "            --trace-wall        add wall_us to span.end events\n"
               "            --metrics           print the metrics table afterwards\n"
               "            --export-prom FILE  publish Prometheus text metrics\n"
               "            --heartbeat FILE    append JSONL heartbeat events\n"
               "            --export-interval S background export period (default 1)\n"
               "            --flight-dump FILE  flight-recorder dump destination\n"
               "                                (crash events + fatal signals)\n"
               "            --profile-out FILE  folded-stack CPU profile + prof.* counter\n"
               "                                regions (see also `jrsnd profile`)\n"
               "            --profile-hz N      sample rate (default 199)\n"
               "  profile   --out FILE [--hz N] [simulate flags] profiled simulate run\n"
               "  trace     --seed [--jsonl]                     one traced D-NDP run\n"
               "  report    FILE                                 summarize a JSONL trace\n"
               "  provision --node <id> --n --m --l --chips      provisioning blob (hex)\n"
               "  chaos     --n --m --l --q --runs --seed --retx sweep injected message\n"
               "            drop and assert the retry discipline's recovery envelope\n"
               "            --smoke             small fast configuration (CI)\n"
               "            --drops 0.05,0.1,.. drop intensities to sweep\n"
               "            --plan FILE         run one FaultPlan JSON instead of a sweep\n"
               "            --json FILE         write the sweep results as JSON\n");
  return 2;
}

core::Params params_from(const Args& args) {
  core::Params p = core::Params::defaults();
  p.n = args.u32("n", p.n);
  p.m = args.u32("m", p.m);
  p.l = args.u32("l", p.l);
  p.q = args.u32("q", p.q);
  p.z = args.u32("z", p.z);
  p.nu = args.u32("nu", p.nu);
  p.mu = args.real("mu", p.mu);
  p.runs = args.u32("runs", 10);
  return p;
}

/// `jrsnd analyze FILE` — offline span-trace analysis. Strict read: any
/// malformed line aborts with its 1-based number (exit 2), mirroring
/// `jrsnd report`.
int cmd_analyze_trace(const Args& args) {
  const std::string& path = args.positionals.front();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::vector<obs::TraceEvent> events;
  obs::TraceReadError error;
  if (!obs::read_trace_jsonl(in, events, &error)) {
    std::fprintf(stderr, "error: %s:%zu: %s\n", path.c_str(), error.line,
                 error.message.c_str());
    return 2;
  }
  obs::normalize_trace(events);
  const obs::TraceAnalysis analysis = obs::analyze_trace(events);
  std::printf("trace: %s\n", path.c_str());
  obs::print_analysis(std::cout, analysis, args.u32("top", 10));
  // A trace with failed attempts must attribute each to exactly one stage;
  // surface a broken invariant through the exit code so CI catches it.
  return analysis.attribution_complete() ? 0 : 1;
}

int cmd_analyze(const Args& args) {
  if (!args.positionals.empty()) return cmd_analyze_trace(args);
  const core::Params p = params_from(args);
  const core::Theorem1Result t1 = core::theorem1(p);
  const double g = core::expected_degree(p);
  std::printf("config: %s\n\n", p.summary().c_str());
  std::printf("pool size s                 : %u\n", p.pool_size());
  std::printf("P(share >= 1 code)          : %.4f\n", core::pr_share_at_least_one(p));
  std::printf("alpha (Eq. 2)               : %.4f\n", t1.alpha);
  std::printf("E[compromised codes] c      : %.1f\n", t1.c);
  std::printf("Theorem 1: P^- <= P_D <= P^+: %.4f <= P_D <= %.4f\n", t1.p_lower, t1.p_upper);
  std::printf("Theorem 2: T_dndp           : %.3f s\n", core::theorem2_dndp_latency(p));
  std::printf("Theorem 3: P_M (nu = 2)     : %.4f (at P_D = P^-)\n",
              core::theorem3_mndp_probability(t1.p_lower, g));
  std::printf("recursion: P_M (nu = %u)     : %.4f\n", p.nu,
              core::mndp_probability_recursive(t1.p_lower, g, p.nu));
  std::printf("Theorem 4: T_mndp (nu = %u)  : %.3f s\n", p.nu,
              core::theorem4_mndp_latency(p, g));
  std::printf("JR-SND: P >= %.4f, T = %.3f s\n",
              core::jrsnd_probability(t1.p_lower,
                                      core::mndp_probability_recursive(t1.p_lower, g, p.nu)),
              core::jrsnd_latency(core::theorem2_dndp_latency(p),
                                  core::theorem4_mndp_latency(p, g)));
  return 0;
}

/// One clean-channel D-NDP handshake over the chip-accurate PHY. The big
/// Monte-Carlo sweep runs on AbstractPhy (Theorem 1 fates, no chips), so this
/// small deterministic sample is what puts real numbers behind the
/// dsss.sync.* / dsss.correlator.* / ecc.rs.* metrics in `--metrics` output.
void run_chip_calibration(std::uint64_t seed) {
  core::Params p = core::Params::defaults();
  p.n = 2;
  p.m = 4;
  p.l = 2;
  p.N = 128;
  p.tau = 0.3;  // scaled for N = 128
  const predist::CodePoolAuthority authority(p.predist(), Rng(seed));
  const crypto::IbcAuthority ibc(seed + 1);
  const sim::Field field(100.0, 100.0);
  const sim::Topology topology(field, {{10, 10}, {20, 10}}, 50.0);
  adversary::NullJammer jammer;
  Rng phy_rng(seed + 2);
  Rng node_rng(seed + 3);
  std::vector<core::NodeState> nodes;
  for (std::uint32_t i = 0; i < 2; ++i) {
    nodes.emplace_back(node_id(i), ibc.issue(node_id(i)),
                       authority.assignment().codes_of(node_id(i)), authority, p.gamma,
                       node_rng.split());
  }
  dsss::NodeCodebookCache code_cache;
  const core::ChipPhy::Codebook codebook = [&](NodeId node) -> const dsss::PreparedCodebook& {
    std::vector<dsss::SpreadCode> codes;
    for (const CodeId c : nodes[raw(node)].usable_codes()) codes.push_back(authority.code(c));
    return code_cache.prepare(node, codes);
  };
  core::ChipPhy phy(p, topology, jammer, codebook, phy_rng);
  core::DndpEngine engine(p, phy);
  (void)engine.run(nodes[0], nodes[1]);
}

int cmd_simulate(const Args& args) {
  core::ExperimentConfig cfg;
  cfg.params = params_from(args);
  cfg.base_seed = args.u64("seed", 1);
  const std::string jammer = args.str("jammer", "reactive");
  if (jammer == "none") {
    cfg.jammer = core::JammerKind::None;
  } else if (jammer == "random") {
    cfg.jammer = core::JammerKind::Random;
  } else if (jammer == "reactive") {
    cfg.jammer = core::JammerKind::Reactive;
  } else if (jammer == "intelligent") {
    cfg.jammer = core::JammerKind::Intelligent;
  } else {
    return usage();
  }

  std::shared_ptr<obs::JsonlFileSink> trace_sink;
  if (args.has("trace-out")) {
    const std::string path = args.str("trace-out", "");
    trace_sink = std::make_shared<obs::JsonlFileSink>(path);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "error: cannot open trace file '%s'\n", path.c_str());
      return 2;
    }
    obs::event_log().attach(trace_sink);
    obs::set_tracing_enabled(true);
  }
  if (args.has("trace-wall")) obs::set_span_wall_clock(true);
  if (args.has("flight-dump")) {
    // Crash-event dumps (FaultyPhy) and fatal-signal postmortems both land
    // at this path.
    obs::set_flight_dump_path(args.str("flight-dump", ""));
    obs::install_flight_crash_handler(args.str("flight-dump", ""));
  }
  const bool want_export = args.has("export-prom") || args.has("heartbeat");
  const bool want_metrics = args.has("metrics") || want_export;
  const bool want_profile = args.has("profile-out");
  if (want_profile) {
    // Counter regions flow through the metrics registry; the sampler is
    // independent of it but the two belong to the same profiling story.
    // Armed before the calibration sample below so the chip-level regions
    // (dsss.*, ecc.*, crypto.*, phy.transmit) record their one real pass.
    obs::set_metrics_enabled(true);
    obs::prof::set_prof_enabled(true);
    obs::prof::ProfilerOptions popt;
    popt.hz = args.u32("profile-hz", popt.hz);
    if (!obs::prof::profiler_start(popt)) {
      std::fprintf(stderr, "warning: sampling profiler failed to start "
                           "(counter regions still collected)\n");
    }
  }
  if (want_metrics || want_profile) {
    obs::set_metrics_enabled(true);
    obs::preregister_core_metrics();
    // Exercise the chip-level pipeline once so the dsss/ecc counters reflect
    // a real sync + decode, not just preregistered zeros.
    run_chip_calibration(cfg.base_seed);
  }
  std::optional<obs::MetricsExporter> exporter;
  if (want_export) {
    obs::ExporterOptions opts;
    opts.prometheus_path = args.str("export-prom", "");
    opts.heartbeat_path = args.str("heartbeat", "");
    opts.interval_s = args.real("export-interval", 1.0);
    opts.source = "simulate";
    exporter.emplace(std::move(opts));
    exporter->start();
  }

  std::printf("config: %s, jammer=%s, seed=%llu\n", cfg.params.summary().c_str(),
              core::jammer_name(cfg.jammer),
              static_cast<unsigned long long>(cfg.base_seed));
  const core::PointResult r = core::DiscoverySimulator(cfg).run_all();
  std::printf("P_dndp   : %.4f +- %.4f\n", r.p_dndp.mean(), r.p_dndp.ci95());
  std::printf("P_mndp   : %.4f +- %.4f (standalone)\n", r.p_mndp.mean(), r.p_mndp.ci95());
  std::printf("P_jrsnd  : %.4f +- %.4f\n", r.p_jrsnd.mean(), r.p_jrsnd.ci95());
  std::printf("T_dndp   : %.3f s   T_mndp: %.3f s   T_jrsnd: %.3f s\n",
              r.latency_dndp.mean(), r.latency_mndp.mean(), r.latency_jrsnd.mean());
  std::printf("degree g : %.2f    compromised codes: %.0f\n", r.degree.mean(),
              r.compromised_codes.mean());

  if (want_profile) {
    obs::prof::profiler_stop();
    const std::string path = args.str("profile-out", "");
    if (!obs::prof::dump_folded_file(path.c_str())) {
      std::fprintf(stderr, "error: cannot write profile '%s'\n", path.c_str());
      return 2;
    }
    std::printf("profile: %llu samples (%llu dropped) -> %s [backend=%s]\n",
                static_cast<unsigned long long>(obs::prof::profiler_samples()),
                static_cast<unsigned long long>(obs::prof::profiler_dropped()), path.c_str(),
                obs::prof::backend_name(obs::prof::prof_backend()));
  }
  if (exporter.has_value()) {
    exporter.reset();  // stop + one final synchronous export
    if (args.has("export-prom")) {
      std::printf("metrics: prometheus -> %s\n", args.str("export-prom", "").c_str());
    }
    if (args.has("heartbeat")) {
      std::printf("metrics: heartbeats -> %s\n", args.str("heartbeat", "").c_str());
    }
  }
  if (args.has("metrics")) {
    std::printf("\n");
    obs::registry().snapshot().print_table(std::cout);
  }
  if (trace_sink) {
    obs::event_log().flush();
    obs::set_tracing_enabled(false);
    obs::event_log().detach_all();
    std::printf("\ntrace: %llu events -> %s\n",
                static_cast<unsigned long long>(obs::event_log().emitted()),
                args.str("trace-out", "").c_str());
  }
  return 0;
}

/// `jrsnd profile` — a profiled `simulate`. Sugar: `--out`/`--hz` map onto
/// `--profile-out`/`--profile-hz`, every other simulate flag passes through.
int cmd_profile(Args args) {
  if (!args.has("out") && !args.has("profile-out")) {
    std::fprintf(stderr, "error: profile needs --out FILE\n");
    return usage();
  }
  if (args.has("out")) args.flags["profile-out"] = args.flags["out"];
  if (args.has("hz")) args.flags["profile-hz"] = args.flags["hz"];
  return cmd_simulate(args);
}

int cmd_trace(const Args& args) {
  const std::uint64_t seed = args.u64("seed", 1);
  core::Params p = core::Params::defaults();
  p.n = 2;
  p.m = 4;
  p.l = 2;
  p.N = 64;
  const predist::CodePoolAuthority authority(p.predist(), Rng(seed));
  const crypto::IbcAuthority ibc(seed + 1);
  const sim::Field field(100.0, 100.0);
  const sim::Topology topology(field, {{10, 10}, {20, 10}}, 50.0);
  adversary::NullJammer jammer;
  Rng phy_rng(seed + 2);
  core::AbstractPhy inner(topology, jammer, phy_rng);
  core::TracingPhy phy(inner);
  Rng node_rng(seed + 3);
  std::vector<core::NodeState> nodes;
  for (std::uint32_t i = 0; i < 2; ++i) {
    nodes.emplace_back(node_id(i), ibc.issue(node_id(i)),
                       authority.assignment().codes_of(node_id(i)), authority, p.gamma,
                       node_rng.split());
  }
  core::DndpEngine engine(p, phy);
  const core::DndpResult result = engine.run(nodes[0], nodes[1]);
  if (args.has("jsonl")) {
    phy.print_jsonl(std::cout);
    return 0;
  }
  std::printf("D-NDP between nodes 0 and 1 (%u shared codes):\n", result.shared_codes);
  phy.print(std::cout);
  std::printf("outcome: %s\n", result.discovered ? "discovered + authenticated" : "failed");
  if (result.discovered) {
    std::printf("session code: %s...\n",
                nodes[0].neighbor(node_id(1))->session_code.slice(0, 48).to_string().c_str());
  }
  return 0;
}

int cmd_report(const Args& args) {
  if (args.positionals.empty()) {
    std::fprintf(stderr, "error: report needs a trace file\n");
    return usage();
  }
  const std::string& path = args.positionals.front();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 2;
  }

  std::map<std::string, std::uint64_t> by_event;
  std::uint64_t by_severity[4] = {0, 0, 0, 0};
  std::uint64_t total = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  std::uint64_t dndp_pairs = 0;
  std::uint64_t dndp_discovered = 0;
  std::uint64_t phy_tx = 0;
  std::uint64_t phy_delivered = 0;
  // span.end latency distributions: wall_us when the trace was recorded with
  // --trace-wall, sim-time `dur` otherwise. Kept separate — the units differ.
  std::map<std::string, std::vector<double>> span_wall_us;
  std::map<std::string, std::vector<double>> span_dur_sim;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto ev = obs::parse_jsonl_line(line);
    if (!ev.has_value()) {
      // Strict by contract: a trace with a broken line is a broken trace.
      // Name the line so the producer can be fixed instead of the skip
      // silently biasing every count below.
      std::fprintf(stderr, "error: %s:%zu: malformed JSONL trace line\n", path.c_str(),
                   line_no);
      return 2;
    }
    if (total == 0) {
      t_min = ev->t;
      t_max = ev->t;
    } else {
      t_min = std::min(t_min, ev->t);
      t_max = std::max(t_max, ev->t);
    }
    ++total;
    ++by_event[ev->name];
    ++by_severity[static_cast<int>(ev->severity)];
    const auto bool_field = [&ev](const char* key) {
      const obs::FieldValue* f = ev->field(key);
      const bool* b = f != nullptr ? std::get_if<bool>(f) : nullptr;
      return b != nullptr && *b;
    };
    if (ev->name == "dndp.pair") {
      ++dndp_pairs;
      if (bool_field("discovered")) ++dndp_discovered;
    } else if (ev->name == "phy.tx") {
      ++phy_tx;
      if (bool_field("delivered")) ++phy_delivered;
    } else if (ev->name == "span.end") {
      const auto num_field = [&ev](const char* key) -> std::optional<double> {
        const obs::FieldValue* f = ev->field(key);
        if (f == nullptr) return std::nullopt;
        if (const double* d = std::get_if<double>(f)) return *d;
        if (const std::uint64_t* u = std::get_if<std::uint64_t>(f)) {
          return static_cast<double>(*u);
        }
        if (const std::int64_t* i = std::get_if<std::int64_t>(f)) {
          return static_cast<double>(*i);
        }
        return std::nullopt;
      };
      const obs::FieldValue* name_field = ev->field("name");
      const std::string* span_name =
          name_field != nullptr ? std::get_if<std::string>(name_field) : nullptr;
      if (span_name != nullptr) {
        if (const auto wall = num_field("wall_us")) span_wall_us[*span_name].push_back(*wall);
        if (const auto dur = num_field("dur")) span_dur_sim[*span_name].push_back(*dur);
      }
    }
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("events   : %llu\n", static_cast<unsigned long long>(total));
  if (total == 0) return 0;
  std::printf("t range  : [%.3f, %.3f]\n", t_min, t_max);
  std::printf("severity : debug=%llu info=%llu warn=%llu error=%llu\n",
              static_cast<unsigned long long>(by_severity[0]),
              static_cast<unsigned long long>(by_severity[1]),
              static_cast<unsigned long long>(by_severity[2]),
              static_cast<unsigned long long>(by_severity[3]));
  std::printf("by event :\n");
  for (const auto& [name, count] : by_event) {
    std::printf("  %-24s %llu\n", name.c_str(), static_cast<unsigned long long>(count));
  }
  if (dndp_pairs > 0) {
    std::printf("dndp.pair: %llu discovered / %llu total (%.1f%%)\n",
                static_cast<unsigned long long>(dndp_discovered),
                static_cast<unsigned long long>(dndp_pairs),
                100.0 * static_cast<double>(dndp_discovered) / static_cast<double>(dndp_pairs));
  }
  if (phy_tx > 0) {
    std::printf("phy.tx   : %llu delivered / %llu total (%.1f%%)\n",
                static_cast<unsigned long long>(phy_delivered),
                static_cast<unsigned long long>(phy_tx),
                100.0 * static_cast<double>(phy_delivered) / static_cast<double>(phy_tx));
  }
  // Exact offline percentiles (sorted samples, nearest-rank) — unlike the
  // live histograms there is no bucketing error here.
  const auto print_percentiles = [](const char* title,
                                    std::map<std::string, std::vector<double>>& by_span) {
    if (by_span.empty()) return;
    std::printf("%s:\n", title);
    std::printf("  %-24s %8s %12s %12s %12s %12s\n", "span", "count", "p50", "p95", "p99",
                "max");
    for (auto& [name, samples] : by_span) {
      std::sort(samples.begin(), samples.end());
      const auto pct = [&samples](double q) {
        const std::size_t rank = static_cast<std::size_t>(
            std::min<double>(static_cast<double>(samples.size()) - 1.0,
                             q * static_cast<double>(samples.size())));
        return samples[rank];
      };
      std::printf("  %-24s %8zu %12.3f %12.3f %12.3f %12.3f\n", name.c_str(), samples.size(),
                  pct(0.50), pct(0.95), pct(0.99), samples.back());
    }
  };
  print_percentiles("span wall latency (us)", span_wall_us);
  if (span_wall_us.empty()) print_percentiles("span sim latency (s)", span_dur_sim);
  return 0;
}

struct ChaosRun {
  double p_dndp = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t faults = 0;
};

/// Serial seed loop (a chaos sweep is a handful of small points; run-order
/// determinism matters more than wall clock here).
ChaosRun chaos_run(const core::ExperimentConfig& cfg) {
  const core::DiscoverySimulator sim(cfg);
  core::Stat p;
  ChaosRun out;
  for (std::uint32_t run = 0; run < cfg.params.runs; ++run) {
    const core::RunResult r = sim.run_once(cfg.base_seed + run);
    p.add(r.p_dndp);
    out.retransmissions += r.dndp_retransmissions;
    out.timeouts += r.dndp_timeouts;
    out.faults += r.faults_injected;
  }
  out.p_dndp = p.mean();
  return out;
}

int cmd_chaos(const Args& args) {
  const bool smoke = args.has("smoke");
  core::ExperimentConfig cfg;
  cfg.params = params_from(args);
  if (!args.has("n")) cfg.params.n = smoke ? 250 : 500;
  if (!args.has("m")) cfg.params.m = smoke ? 30 : 40;
  if (!args.has("l")) cfg.params.l = 20;
  if (!args.has("runs")) cfg.params.runs = smoke ? 3 : 5;
  cfg.base_seed = args.u64("seed", 1);

  // Default jammer: none — the sweep isolates the injected faults so the
  // degradation envelope measures the retry discipline, not Theorem 1.
  const std::string jammer = args.str("jammer", "none");
  if (jammer == "none") cfg.jammer = core::JammerKind::None;
  else if (jammer == "random") cfg.jammer = core::JammerKind::Random;
  else if (jammer == "reactive") cfg.jammer = core::JammerKind::Reactive;
  else if (jammer == "intelligent") cfg.jammer = core::JammerKind::Intelligent;
  else return usage();

  const std::uint32_t retx = args.u32("retx", 3);

  if (args.has("plan")) {
    const std::string path = args.str("plan", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open plan '%s'\n", path.c_str());
      return 2;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    std::string error;
    const auto plan = fault::FaultPlan::from_json(text, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "error: bad fault plan: %s\n", error.c_str());
      return 2;
    }
    std::printf("config: %s, jammer=%s, retx=%u\n", cfg.params.summary().c_str(),
                core::jammer_name(cfg.jammer), retx);
    std::printf("plan  : %s\n", plan->to_json().c_str());
    const ChaosRun clean = chaos_run(cfg);
    cfg.params.retry.max_retx = retx;
    cfg.faults = plan;
    const ChaosRun faulted = chaos_run(cfg);
    std::printf("fault-free P_dndp : %.4f\n", clean.p_dndp);
    std::printf("faulted    P_dndp : %.4f (%llu faults injected, %llu retx, %llu timeouts)\n",
                faulted.p_dndp, static_cast<unsigned long long>(faulted.faults),
                static_cast<unsigned long long>(faulted.retransmissions),
                static_cast<unsigned long long>(faulted.timeouts));
    return 0;
  }

  std::vector<double> drops;
  if (args.has("drops")) {
    std::string list = args.str("drops", "");
    std::replace(list.begin(), list.end(), ',', ' ');
    std::istringstream ss(list);
    double d = 0.0;
    while (ss >> d) drops.push_back(d);
    if (drops.empty()) return usage();
  } else {
    drops = smoke ? std::vector<double>{0.1, 0.2} : std::vector<double>{0.05, 0.1, 0.2, 0.3};
  }

  std::printf("config: %s, jammer=%s, retx=%u\n", cfg.params.summary().c_str(),
              core::jammer_name(cfg.jammer), retx);

  const ChaosRun baseline = chaos_run(cfg);
  std::printf("fault-free P_dndp: %.4f\n\n", baseline.p_dndp);
  std::printf("%8s %14s %14s %10s %10s %8s\n", "drop", "P_dndp(retx)", "P_dndp(none)",
              "recovery", "retx", "faults");

  struct Point {
    double drop, p_retx, p_noretx, recovery;
    std::uint64_t retransmissions, faults;
  };
  std::vector<Point> points;
  bool envelope_ok = true;
  // The acceptance envelope: with retransmission enabled, discovery under
  // <= 20% injected drop recovers to >= 95% of the fault-free ratio.
  constexpr double kEnvelopeDrop = 0.2 + 1e-9;
  constexpr double kEnvelopeRecovery = 0.95;

  for (const double drop : drops) {
    fault::FaultPlan plan;
    plan.seed = cfg.base_seed;
    plan.drop = drop;

    core::ExperimentConfig with = cfg;
    with.faults = plan;
    with.params.retry.max_retx = retx;
    const ChaosRun r_retx = chaos_run(with);

    core::ExperimentConfig without = cfg;
    without.faults = plan;
    const ChaosRun r_none = chaos_run(without);

    const double recovery =
        baseline.p_dndp > 0.0 ? r_retx.p_dndp / baseline.p_dndp : 1.0;
    if (drop <= kEnvelopeDrop && recovery < kEnvelopeRecovery) envelope_ok = false;
    points.push_back(Point{drop, r_retx.p_dndp, r_none.p_dndp, recovery,
                           r_retx.retransmissions, r_retx.faults});
    std::printf("%8.2f %14.4f %14.4f %9.1f%% %10llu %8llu\n", drop, r_retx.p_dndp,
                r_none.p_dndp, 100.0 * recovery,
                static_cast<unsigned long long>(r_retx.retransmissions),
                static_cast<unsigned long long>(r_retx.faults));
  }

  std::printf("\nenvelope (drop <= %.2f recovers >= %.0f%%): %s\n", 0.2,
              100.0 * kEnvelopeRecovery, envelope_ok ? "PASS" : "FAIL");

  if (args.has("json")) {
    const std::string path = args.str("json", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
      return 2;
    }
    out << "{\n  \"bench\": \"chaos\",\n";
    out << "  \"config\": {\"n\": " << cfg.params.n << ", \"m\": " << cfg.params.m
        << ", \"l\": " << cfg.params.l << ", \"q\": " << cfg.params.q
        << ", \"runs\": " << cfg.params.runs << ", \"seed\": " << cfg.base_seed
        << ", \"jammer\": \"" << core::jammer_name(cfg.jammer) << "\", \"retx\": " << retx
        << "},\n";
    out << "  \"baseline_p_dndp\": " << baseline.p_dndp << ",\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& pt = points[i];
      out << "    {\"drop\": " << pt.drop << ", \"p_dndp_retx\": " << pt.p_retx
          << ", \"p_dndp_noretx\": " << pt.p_noretx << ", \"recovery\": " << pt.recovery
          << ", \"retransmissions\": " << pt.retransmissions
          << ", \"faults_injected\": " << pt.faults << "}" << (i + 1 < points.size() ? "," : "")
          << "\n";
    }
    out << "  ],\n  \"envelope\": {\"max_drop\": 0.2, \"min_recovery\": "
        << kEnvelopeRecovery << ", \"pass\": " << (envelope_ok ? "true" : "false")
        << "}\n}\n";
    std::printf("wrote %s\n", path.c_str());
  }
  return envelope_ok ? 0 : 1;
}

int cmd_provision(const Args& args) {
  if (!args.flags.contains("node")) return usage();
  predist::PredistParams pp;
  pp.node_count = args.u32("n", 100);
  pp.codes_per_node = args.u32("m", 10);
  pp.holders_per_code = args.u32("l", 8);
  pp.code_length_chips = args.u32("chips", 128);
  const std::uint32_t node = args.u32("node", 0);
  if (node >= pp.node_count) {
    std::fprintf(stderr, "error: node %u out of range [0, %u)\n", node, pp.node_count);
    return 2;
  }
  const predist::CodePoolAuthority authority(pp, Rng(args.u64("seed", 1)));
  const auto blob = predist::provision_node(authority, node_id(node));
  const auto bytes = blob.serialize();
  std::printf("node %u: %u codes x %u chips, blob %zu bytes\n", node, pp.codes_per_node,
              static_cast<std::uint32_t>(pp.code_length_chips), bytes.size());
  std::printf("%s\n", to_hex(bytes).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) == 0) {
      // "--flag value" when a non-flag token follows, else boolean "--flag".
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.flags[arg + 2] = argv[i + 1];
        ++i;
      } else {
        args.flags[arg + 2] = "1";
      }
    } else {
      args.positionals.emplace_back(arg);
    }
  }
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "profile") return cmd_profile(args);
  if (args.command == "trace") return cmd_trace(args);
  if (args.command == "report") return cmd_report(args);
  if (args.command == "provision") return cmd_provision(args);
  if (args.command == "chaos") return cmd_chaos(args);
  return usage();
}
