#include "dsss/chip_channel.hpp"

#include <gtest/gtest.h>

#include "adversary/jammer.hpp"
#include "dsss/spreader.hpp"

namespace jrsnd::dsss {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(ChipChannel, SilentChannelIsRandomNoise) {
  const ChipChannel channel(4096);
  Rng rng(1);
  const BitVector rx = channel.receive(rng);
  const double ones = static_cast<double>(rx.popcount()) / 4096.0;
  EXPECT_GT(ones, 0.45);
  EXPECT_LT(ones, 0.55);
  for (const bool active : channel.active()) EXPECT_FALSE(active);
}

TEST(ChipChannel, SingleTransmissionReceivedVerbatim) {
  Rng rng(2);
  const BitVector chips = random_bits(rng, 500);
  ChipChannel channel(1000);
  channel.add(Transmission{100, chips});
  const BitVector rx = channel.receive(rng);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(rx.get(100 + i), chips.get(i)) << "chip " << i;
  }
}

TEST(ChipChannel, TransmissionClippedAtWindowEnd) {
  Rng rng(3);
  const BitVector chips = random_bits(rng, 100);
  ChipChannel channel(120);
  channel.add(Transmission{50, chips});  // 30 chips fall off the end
  EXPECT_TRUE(channel.active()[119]);
  // Must not crash; soft sums only within window.
  EXPECT_EQ(channel.soft().size(), 120u);
}

TEST(ChipChannel, OpposedEqualPowerCancelsToNoise) {
  Rng rng(4);
  BitVector chips = random_bits(rng, 256);
  BitVector inverted = chips;
  for (std::size_t i = 0; i < 256; ++i) inverted.flip(i);
  ChipChannel channel(256);
  channel.add(Transmission{0, chips});
  channel.add(Transmission{0, inverted});
  for (const int s : channel.soft()) EXPECT_EQ(s, 0);
  // Receiver output over cancelled chips is coin flips.
  const BitVector rx = channel.receive(rng);
  const double ones = static_cast<double>(rx.popcount()) / 256.0;
  EXPECT_GT(ones, 0.3);
  EXPECT_LT(ones, 0.7);
}

TEST(ChipChannel, StrongerSignalDominates) {
  Rng rng(5);
  const BitVector victim = random_bits(rng, 256);
  BitVector jammer = victim;
  for (std::size_t i = 0; i < 256; ++i) jammer.flip(i);
  ChipChannel channel(256);
  channel.add(Transmission{0, victim});
  channel.add(Transmission{0, jammer});
  channel.add(Transmission{0, jammer});  // amplitude 2 beats amplitude 1
  const BitVector rx = channel.receive(rng);
  EXPECT_EQ(rx, jammer);
}

TEST(ChipChannel, SameCodeJammingDegradesCorrelation) {
  // End-to-end: a spread bit jammed with the same code at equal power has
  // its correlation collapse on the disagreeing halves.
  Rng rng(6);
  const SpreadCode code = SpreadCode::random(rng, 512);
  const BitVector clean = spread(BitVector::from_string("1"), code);

  ChipChannel channel(512);
  channel.add(Transmission{0, clean});
  // Jammer sends bit "0" (inverted code), in sync.
  channel.add(Transmission{0, spread(BitVector::from_string("0"), code)});
  const BitVector rx = channel.receive(rng);
  const DespreadBit bit = despread_bit(rx, 0, code, 0.15);
  EXPECT_TRUE(bit.erased);  // correlation ~ 0: erasure
}

TEST(ChipChannel, DifferentCodeInterferenceIsNegligible) {
  // The paper's assumption: concurrent transmissions with different
  // pseudorandom codes interfere negligibly at N = 512.
  Rng rng(7);
  const SpreadCode code = SpreadCode::random(rng, 512);
  const SpreadCode other = SpreadCode::random(rng, 512);
  ChipChannel channel(512);
  channel.add(Transmission{0, spread(BitVector::from_string("1"), code)});
  channel.add(Transmission{0, spread(BitVector::from_string("1"), other)});
  const BitVector rx = channel.receive(rng);
  const DespreadBit bit = despread_bit(rx, 0, code, 0.15);
  EXPECT_FALSE(bit.erased);
  EXPECT_TRUE(bit.value);
  EXPECT_GT(bit.correlation, 0.3);
}

TEST(ChipChannel, MakeChipJammingCoverage) {
  Rng rng(8);
  const SpreadCode code = SpreadCode::random(rng, 128);
  const auto txs = adversary::make_chip_jamming(code, 100, 20, 0.5, 2, rng);
  ASSERT_EQ(txs.size(), 2u);
  // ceil(0.5 * 20) = 10 bits * 128 chips each.
  EXPECT_EQ(txs[0].chips.size(), 10u * 128u);
  EXPECT_EQ(txs[0].start_chip, 100u);
  EXPECT_EQ(txs[0].chips, txs[1].chips);  // identical parallel signals
}

TEST(ChipChannel, MakeChipJammingZeroFractionIsEmpty) {
  Rng rng(9);
  const SpreadCode code = SpreadCode::random(rng, 128);
  EXPECT_TRUE(adversary::make_chip_jamming(code, 0, 20, 0.0, 2, rng).empty());
  EXPECT_TRUE(adversary::make_chip_jamming(code, 0, 20, 0.5, 0, rng).empty());
}

TEST(ChipChannel, AmplitudeTwoJammingOverwritesCoveredBits) {
  // Jam the first half of a 20-bit message at amplitude 2: covered bits
  // despread confidently to attacker data; uncovered bits stay intact.
  Rng rng(10);
  const SpreadCode code = SpreadCode::random(rng, 256);
  BitVector message(20);
  for (std::size_t i = 0; i < 20; ++i) message.set(i, rng.bernoulli(0.5));
  const BitVector chips = spread(message, code);

  ChipChannel channel(chips.size());
  channel.add(Transmission{0, chips});
  for (const auto& tx : adversary::make_chip_jamming(code, 0, 20, 0.5, 2, rng)) {
    channel.add(tx);
  }
  const BitVector rx = channel.receive(rng);
  const DespreadResult result = despread(rx, 0, 20, code, 0.15);
  // Uncovered tail must decode exactly.
  for (std::size_t i = 10; i < 20; ++i) {
    EXPECT_EQ(result.bits.get(i), message.get(i)) << "bit " << i;
  }
  // Covered bits are attacker-controlled: expect at least one corrupted bit
  // (probability all 10 match by chance: 2^-10).
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < 10; ++i) mismatches += result.bits.get(i) != message.get(i);
  EXPECT_GE(mismatches, 1u);
}

}  // namespace
}  // namespace jrsnd::dsss
