// Profiling layer tests: backend forcing, the clock-fallback contract
// (every API functional without a PMU), PerfRegion accounting through the
// registry/absorb machinery, and the SIGPROF sampling profiler end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <regex>
#include <sstream>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"
#include "obs/prof/sampling_profiler.hpp"

namespace jrsnd::obs::prof {
namespace {

/// Restores the process-wide prof switches a test flips.
class ProfStateGuard {
 public:
  ProfStateGuard() : enabled_(prof_enabled()), metrics_(metrics_enabled()) {}
  ~ProfStateGuard() {
    set_prof_enabled(enabled_);
    set_metrics_enabled(metrics_);
  }

 private:
  bool enabled_;
  bool metrics_;
};

/// Thread-CPU busywork the sampler and the fallback clock can both see.
std::uint64_t burn_cpu(std::uint64_t iters) {
  volatile std::uint64_t acc = 1;
  for (std::uint64_t i = 0; i < iters; ++i) acc = acc * 2862933555777941757ULL + 3037000493ULL;
  return acc;
}

double gauge_value(MetricsRegistry& reg, const std::string& name) {
  const MetricsSnapshot snap = reg.snapshot();
  for (const GaugeSample& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  return -1.0;
}

std::uint64_t counter_value(MetricsRegistry& reg, const std::string& name) {
  const MetricsSnapshot snap = reg.snapshot();
  for (const CounterSample& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(ProfBackendTest, ForcedFallbackReportsThroughGauge) {
  ProfStateGuard guard;
  set_prof_backend(ProfBackend::kClockFallback);
  EXPECT_EQ(prof_backend(), ProfBackend::kClockFallback);
  EXPECT_STREQ(backend_name(prof_backend()), "clock_fallback");
  // The gauge publishes even with metrics collection disabled — it says
  // what the recorded numbers mean, so it must always be truthful.
  EXPECT_EQ(gauge_value(registry(), "prof.backend"), 1.0);
}

TEST(ProfBackendTest, PerfEventRequestDegradesGracefully) {
  ProfStateGuard guard;
  // A kPerfEvent request is a probe, not a promise: on hosts without a PMU
  // (this includes most CI containers) it must degrade to the fallback, and
  // the gauge must say which one actually answered.
  set_prof_backend(ProfBackend::kPerfEvent);
  const ProfBackend live = prof_backend();
  EXPECT_TRUE(live == ProfBackend::kPerfEvent || live == ProfBackend::kClockFallback);
  EXPECT_EQ(gauge_value(registry(), "prof.backend"), static_cast<double>(live));
  set_prof_backend(ProfBackend::kClockFallback);
}

TEST(ProfBackendTest, OffBackendDisarmsRegions) {
  ProfStateGuard guard;
  set_prof_backend(ProfBackend::kOff);
  EXPECT_EQ(prof_backend(), ProfBackend::kOff);
  EXPECT_EQ(gauge_value(registry(), "prof.backend"), 0.0);
  set_prof_backend(ProfBackend::kClockFallback);
}

TEST(PerfCounterSetTest, FallbackCountersAreMonotoneAndEstimated) {
  ProfStateGuard guard;
  set_prof_backend(ProfBackend::kClockFallback);
  const PerfCounterSet set;  // constructed after the force: binds the fallback
  ASSERT_EQ(set.backend(), ProfBackend::kClockFallback);

  const CounterTotals delta = set.measure([] { (void)burn_cpu(2'000'000); });
  EXPECT_TRUE(delta.estimated);
  EXPECT_GT(delta.task_clock_ns, 0u) << "thread CPU clock must advance under load";
  EXPECT_GT(delta.cycles, 0u) << "fallback cycles are derived from task_clock_ns";
  // Honest zeros: the fallback cannot see the PMU, so derived rates must
  // refuse to invent IPC or miss rates from estimated cycles.
  EXPECT_EQ(delta.instructions, 0u);
  EXPECT_EQ(delta.ipc(), 0.0);
  EXPECT_EQ(delta.llc_misses_per_kinst(), 0.0);

  const CounterTotals a = set.read();
  (void)burn_cpu(100'000);
  const CounterTotals b = set.read();
  EXPECT_GE(b.task_clock_ns, a.task_clock_ns);
  EXPECT_GE(b.cycles, a.cycles);
}

TEST(PerfCounterSetTest, TotalsAccumulate) {
  CounterTotals sum;
  CounterTotals part;
  part.cycles = 100;
  part.instructions = 250;
  part.cache_misses = 3;
  part.branch_misses = 4;
  part.task_clock_ns = 50;
  sum += part;
  sum += part;
  EXPECT_EQ(sum.cycles, 200u);
  EXPECT_EQ(sum.instructions, 500u);
  EXPECT_EQ(sum.cache_misses, 6u);
  EXPECT_EQ(sum.branch_misses, 8u);
  EXPECT_EQ(sum.task_clock_ns, 100u);
  EXPECT_FALSE(sum.estimated);
  EXPECT_DOUBLE_EQ(sum.ipc(), 2.5);
  CounterTotals estimated;
  estimated.estimated = true;
  sum += estimated;
  EXPECT_TRUE(sum.estimated) << "an estimated part taints the whole total";
}

TEST(PerfRegionTest, DisabledRegionRecordsNothing) {
  ProfStateGuard guard;
  set_prof_enabled(false);
  set_metrics_enabled(true);
  MetricsRegistry scratch;
  {
    ScopedMetricsRegistry scoped(&scratch);
    JRSND_PERF_REGION("test.disabled");
    (void)burn_cpu(10'000);
  }
  EXPECT_EQ(counter_value(scratch, "prof.test.disabled.count"), 0u);
}

TEST(PerfRegionTest, RegionsAggregateIntoScopedRegistry) {
  ProfStateGuard guard;
  set_prof_backend(ProfBackend::kClockFallback);
  set_prof_enabled(true);
  set_metrics_enabled(true);
  MetricsRegistry scratch;
  {
    ScopedMetricsRegistry scoped(&scratch);
    for (int i = 0; i < 5; ++i) {
      JRSND_PERF_REGION("test.region");
      (void)burn_cpu(200'000);
    }
  }
  EXPECT_EQ(counter_value(scratch, "prof.test.region.count"), 5u);
  EXPECT_GT(counter_value(scratch, "prof.test.region.task_clock_ns"), 0u);
  EXPECT_GT(counter_value(scratch, "prof.test.region.cycles"), 0u);
  // Scoped isolation: nothing leaked into the process registry.
  EXPECT_EQ(counter_value(registry(), "prof.test.region.count"), 0u);

  // ...and the standard absorb path folds the totals into another registry
  // exactly (the run_all per-thread merge).
  MetricsRegistry merged;
  merged.absorb(scratch.snapshot());
  EXPECT_EQ(counter_value(merged, "prof.test.region.count"), 5u);
}

TEST(PerfRegionTest, NestedRegionsAttributeInclusively) {
  ProfStateGuard guard;
  set_prof_backend(ProfBackend::kClockFallback);
  set_prof_enabled(true);
  set_metrics_enabled(true);
  MetricsRegistry scratch;
  {
    ScopedMetricsRegistry scoped(&scratch);
    JRSND_PERF_REGION("test.outer");
    for (int i = 0; i < 3; ++i) {
      JRSND_PERF_REGION("test.inner");
      (void)burn_cpu(200'000);
    }
  }
  EXPECT_EQ(counter_value(scratch, "prof.test.outer.count"), 1u);
  EXPECT_EQ(counter_value(scratch, "prof.test.inner.count"), 3u);
  // Inclusive attribution: the outer region covers its nested children.
  EXPECT_GE(counter_value(scratch, "prof.test.outer.task_clock_ns"),
            counter_value(scratch, "prof.test.inner.task_clock_ns"));
}

TEST(SamplingProfilerTest, CapturesAndDumpsFoldedStacks) {
  ASSERT_FALSE(profiler_running());
  ProfilerOptions options;
  options.hz = 997;  // dense sampling keeps this test fast
  ASSERT_TRUE(profiler_start(options));
  EXPECT_TRUE(profiler_running());
  EXPECT_FALSE(profiler_start(options)) << "double start must be refused";

  // Burn thread CPU until samples land (ITIMER_PROF counts process CPU
  // time, so a busy loop is guaranteed to accumulate ticks).
  for (int spin = 0; spin < 20'000 && profiler_samples() == 0; ++spin) {
    (void)burn_cpu(100'000);
  }
  profiler_stop();
  EXPECT_FALSE(profiler_running());
  ASSERT_GT(profiler_samples(), 0u);

  std::ostringstream folded;
  const std::size_t stacks = dump_folded(folded);
  EXPECT_GT(stacks, 0u);
  // Every folded line is "frame(;frame)* count": flamegraph.pl / inferno
  // input. Frames contain no spaces or semicolons (the symbolizer replaces
  // both), and the count is a positive integer.
  const std::regex line_re(R"(^[^ ;]+(;[^ ;]+)* [1-9][0-9]*$)");
  std::istringstream lines(folded.str());
  std::string line;
  std::size_t parsed = 0;
  std::uint64_t total_count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad folded line: " << line;
    total_count += std::stoull(line.substr(line.rfind(' ') + 1));
    ++parsed;
  }
  EXPECT_EQ(parsed, stacks);
  EXPECT_LE(total_count, profiler_samples());
  EXPECT_GT(total_count, 0u);

  // Stopped-profiler dump is idempotent and the counters survive the dump.
  std::ostringstream again;
  EXPECT_EQ(dump_folded(again), stacks);
}

TEST(SamplingProfilerTest, RestartRecyclesRings) {
  ProfilerOptions options;
  options.hz = 997;
  ASSERT_TRUE(profiler_start(options));
  for (int spin = 0; spin < 20'000 && profiler_samples() == 0; ++spin) {
    (void)burn_cpu(100'000);
  }
  profiler_stop();
  const std::uint64_t first = profiler_samples();
  ASSERT_GT(first, 0u);

  // A second session starts from zero — stale samples must not bleed in.
  ASSERT_TRUE(profiler_start(options));
  profiler_stop();
  EXPECT_LE(profiler_samples(), first);
}

TEST(SamplingProfilerTest, EveryApiIsSafeWhileStopped) {
  // The whole surface must be callable with no session at all (the
  // fallback-environment contract: never crash, degrade to empty results).
  EXPECT_FALSE(profiler_running());
  profiler_stop();  // idempotent no-op
  std::ostringstream os;
  (void)dump_folded(os);  // dumps whatever the last session left, or nothing
  (void)profiler_samples();
  (void)profiler_dropped();
}

}  // namespace
}  // namespace jrsnd::obs::prof
