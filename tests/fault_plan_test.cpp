#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace jrsnd::fault {
namespace {

TEST(FaultPlan, DefaultPlanIsInactiveAndValid) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.validate().has_value());
}

TEST(FaultPlan, AnyNonzeroKnobActivates) {
  FaultPlan p;
  p.drop = 0.1;
  EXPECT_TRUE(p.active());
  p = FaultPlan{};
  p.duplicate = 0.1;
  EXPECT_TRUE(p.active());
  p = FaultPlan{};
  p.reorder = 0.1;
  EXPECT_TRUE(p.active());
  p = FaultPlan{};
  p.corrupt = 0.1;
  EXPECT_TRUE(p.active());
  p = FaultPlan{};
  p.truncate = 0.1;
  EXPECT_TRUE(p.active());
  p = FaultPlan{};
  p.crashes.push_back({node_id(0), TimePoint{1.0}, Duration{1.0}});
  EXPECT_TRUE(p.active());
}

TEST(FaultPlan, ValidationRejectsOutOfRangeFields) {
  FaultPlan p;
  p.drop = 1.5;
  EXPECT_TRUE(p.validate().has_value());
  p = FaultPlan{};
  p.reorder = -0.1;
  EXPECT_TRUE(p.validate().has_value());
  p = FaultPlan{};
  p.clock_drift_max = 1.0;  // rate could hit zero
  EXPECT_TRUE(p.validate().has_value());
  p = FaultPlan{};
  p.corrupt = 0.5;
  p.corrupt_bits = 0;  // corrupting zero bits is a contradiction
  EXPECT_TRUE(p.validate().has_value());
  p = FaultPlan{};
  p.crashes.push_back({kInvalidNode, TimePoint{0.0}, Duration{1.0}});
  EXPECT_TRUE(p.validate().has_value());
  p = FaultPlan{};
  p.crashes.push_back({node_id(1), TimePoint{0.0}, Duration{0.0}});
  EXPECT_TRUE(p.validate().has_value());
}

TEST(FaultPlan, JsonRoundTripPreservesEveryField) {
  FaultPlan p;
  p.seed = 77;
  p.drop = 0.25;
  p.duplicate = 0.125;
  p.reorder = 0.0625;
  p.corrupt = 0.5;
  p.corrupt_bits = 9;
  p.truncate = 0.03125;
  p.clock_skew_max = 0.5;
  p.clock_drift_max = 0.01;
  p.auto_tick = 0.001;
  p.crashes.push_back({node_id(3), TimePoint{1.5}, Duration{2.5}});
  p.crashes.push_back({node_id(8), TimePoint{10.0}, Duration{0.25}});

  const auto parsed = FaultPlan::from_json(p.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

TEST(FaultPlan, FromJsonAcceptsPartialObjects) {
  const auto plan = FaultPlan::from_json(R"({"seed": 9, "drop": 0.5})");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 9u);
  EXPECT_DOUBLE_EQ(plan->drop, 0.5);
  EXPECT_DOUBLE_EQ(plan->duplicate, 0.0);  // untouched defaults
  EXPECT_EQ(plan->corrupt_bits, 3u);
}

TEST(FaultPlan, FromJsonRejectsUnknownKeysWithAnError) {
  std::string error;
  EXPECT_FALSE(FaultPlan::from_json(R"({"drp": 0.5})", &error).has_value());
  EXPECT_NE(error.find("drp"), std::string::npos);
}

TEST(FaultPlan, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::from_json("").has_value());
  EXPECT_FALSE(FaultPlan::from_json("{").has_value());
  EXPECT_FALSE(FaultPlan::from_json(R"({"drop": })").has_value());
  EXPECT_FALSE(FaultPlan::from_json(R"({"drop": 0.5,})").has_value());
  EXPECT_FALSE(FaultPlan::from_json(R"([1, 2])").has_value());
  EXPECT_FALSE(FaultPlan::from_json(R"({"crashes": [{"node": 1}]})").has_value())
      << "crash with no duration must fail validation";
  EXPECT_FALSE(FaultPlan::from_json(R"({"drop": 2.0})").has_value())
      << "from_json must run validate()";
}

TEST(FaultPlan, CrashEventCoversHalfOpenWindow) {
  const CrashEvent e{node_id(1), TimePoint{2.0}, Duration{3.0}};
  EXPECT_FALSE(e.covers(TimePoint{1.999}));
  EXPECT_TRUE(e.covers(TimePoint{2.0}));
  EXPECT_TRUE(e.covers(TimePoint{4.999}));
  EXPECT_FALSE(e.covers(TimePoint{5.0}));
}

TEST(ClockModel, SkewAndRateAreDeterministicAndBounded) {
  const ClockModel clocks(42, /*skew_max=*/0.5, /*drift_max=*/0.01);
  const ClockModel again(42, 0.5, 0.01);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const NodeId n = node_id(i);
    EXPECT_EQ(clocks.skew(n).seconds(), again.skew(n).seconds());
    EXPECT_EQ(clocks.rate(n), again.rate(n));
    EXPECT_LE(std::abs(clocks.skew(n).seconds()), 0.5);
    EXPECT_GE(clocks.rate(n), 0.99);
    EXPECT_LE(clocks.rate(n), 1.01);
  }
}

TEST(ClockModel, DifferentSeedsDecorrelate) {
  const ClockModel a(1, 0.5, 0.01);
  const ClockModel b(2, 0.5, 0.01);
  int differing = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    differing += a.rate(node_id(i)) != b.rate(node_id(i));
  }
  EXPECT_GT(differing, 40);
}

TEST(ClockModel, NodesActuallySpreadAcrossTheRange) {
  // Hash-derived draws must not collapse to one value per seed.
  const ClockModel clocks(7, 1.0, 0.1);
  double lo = 1.0, hi = -1.0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const double s = clocks.skew(node_id(i)).seconds();
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_LT(lo, -0.3);
  EXPECT_GT(hi, 0.3);
}

TEST(ClockModel, LocalTimeAppliesSkewAndDrift) {
  const ClockModel clocks(11, 0.25, 0.05);
  const NodeId n = node_id(4);
  const TimePoint t{100.0};
  const double expected = t.seconds() * clocks.rate(n) + clocks.skew(n).seconds();
  EXPECT_DOUBLE_EQ(clocks.local_time(n, t).seconds(), expected);
}

TEST(ClockModel, ZeroMaximaYieldPerfectClocks) {
  const ClockModel clocks(5, 0.0, 0.0);
  for (std::uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(clocks.skew(node_id(i)).seconds(), 0.0);
    EXPECT_EQ(clocks.rate(node_id(i)), 1.0);
  }
}

}  // namespace
}  // namespace jrsnd::fault
