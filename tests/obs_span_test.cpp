// Span tracing and the flight recorder: context propagation, deterministic
// ids, JSONL emission, the thread-local loss-reason channel, ring wrap, and
// the FaultyPhy crash-event dump path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "core/phy_model.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_phy.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"

namespace jrsnd::obs {
namespace {

class CaptureSink final : public EventSink {
 public:
  void write(const TraceEvent& event) override { events.push_back(event); }
  std::vector<TraceEvent> events;
};

/// Attaches a capture sink to the process log with tracing on; restores
/// everything on destruction so other tests see the default-off state.
class TracingGuard {
 public:
  TracingGuard() : sink_(std::make_shared<CaptureSink>()) {
    event_log().attach(sink_);
    set_tracing_enabled(true);
  }
  ~TracingGuard() {
    set_tracing_enabled(false);
    event_log().detach_all();
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return sink_->events; }

 private:
  std::shared_ptr<CaptureSink> sink_;
};

std::uint64_t u64_field(const TraceEvent& ev, const char* key) {
  const FieldValue* f = ev.field(key);
  EXPECT_NE(f, nullptr) << key;
  const auto* u = f != nullptr ? std::get_if<std::uint64_t>(f) : nullptr;
  EXPECT_NE(u, nullptr) << key;
  return u != nullptr ? *u : 0;
}

std::string str_field(const TraceEvent& ev, const char* key) {
  const FieldValue* f = ev.field(key);
  const auto* s = f != nullptr ? std::get_if<std::string>(f) : nullptr;
  return s != nullptr ? *s : std::string();
}

TEST(Span, ContextPropagatesThroughNestingAndRestores) {
  ASSERT_EQ(current_span().trace_id, 0u);
  {
    Span root("dndp.attempt", 42);
    EXPECT_EQ(current_span().trace_id, 42u);
    EXPECT_EQ(current_span().span_id, 1u);
    EXPECT_EQ(current_span().parent_id, 0u);
    {
      Span child("phy.transmit");
      EXPECT_EQ(child.context().trace_id, 42u);
      EXPECT_EQ(child.context().span_id, 2u);
      EXPECT_EQ(child.context().parent_id, 1u);
      Span grandchild("ecc.decode");
      EXPECT_EQ(grandchild.context().span_id, 3u);
      EXPECT_EQ(grandchild.context().parent_id, 2u);
    }
    // Back at the root: the next child gets a fresh id but the root parent.
    Span sibling("dsss.scan");
    EXPECT_EQ(sibling.context().span_id, 4u);
    EXPECT_EQ(sibling.context().parent_id, 1u);
  }
  EXPECT_EQ(current_span().trace_id, 0u);
  EXPECT_EQ(current_span().span_id, 0u);
}

TEST(Span, IdsAreDeterministicPerTrace) {
  const auto run_trace = [] {
    std::vector<std::uint32_t> ids;
    Span root("dndp.attempt", 99);
    ids.push_back(root.context().span_id);
    {
      Span sub("dndp.subsession");
      ids.push_back(sub.context().span_id);
      Span tx("phy.transmit");
      ids.push_back(tx.context().span_id);
    }
    Span sub2("dndp.subsession");
    ids.push_back(sub2.context().span_id);
    return ids;
  };
  // Two identical attempts (even back to back on one thread) number their
  // spans identically — the determinism the serial/parallel byte-identity
  // of traces rides on.
  EXPECT_EQ(run_trace(), run_trace());
}

TEST(Span, DeriveTraceIdIsDeterministicOrderSensitiveAndNonZero) {
  const std::uint64_t id = derive_trace_id(1, 2, 3, 0);
  EXPECT_EQ(id, derive_trace_id(1, 2, 3, 0));
  EXPECT_NE(id, derive_trace_id(1, 3, 2, 0));  // (a, b) != (b, a)
  EXPECT_NE(id, derive_trace_id(1, 2, 3, 1));  // attempt index matters
  EXPECT_NE(id, derive_trace_id(2, 2, 3, 0));  // seed salt matters
  EXPECT_NE(derive_trace_id(0, 0, 0, 0), 0u);  // 0 is the no-trace sentinel
}

TEST(Span, LossReasonChannelSetsPeeksAndTakes) {
  (void)take_loss_reason();  // clear anything a prior test left behind
  EXPECT_EQ(peek_loss_reason(), LossStage::None);
  set_loss_reason(LossStage::Jammed);
  EXPECT_EQ(peek_loss_reason(), LossStage::Jammed);
  EXPECT_EQ(take_loss_reason(), LossStage::Jammed);
  EXPECT_EQ(take_loss_reason(), LossStage::None);  // take clears
}

TEST(Span, EmitsBeginAndEndEventsWithContextFields) {
  TracingGuard tracing;
  const ScopedSimTime at(7.0);
  {
    Span root("dndp.attempt", 1234);
    root.set_ok(false);
    root.set_loss(LossStage::Timeout);
    root.set_dur(0.25);
    root.with_u64("code", 5);
  }
  ASSERT_EQ(tracing.events().size(), 2u);
  const TraceEvent& begin = tracing.events()[0];
  EXPECT_EQ(begin.name, "span.begin");
  EXPECT_DOUBLE_EQ(begin.t, 7.0);
  EXPECT_EQ(u64_field(begin, "trace"), 1234u);
  EXPECT_EQ(u64_field(begin, "span"), 1u);
  EXPECT_EQ(u64_field(begin, "parent"), 0u);
  EXPECT_EQ(str_field(begin, "name"), "dndp.attempt");

  const TraceEvent& end = tracing.events()[1];
  EXPECT_EQ(end.name, "span.end");
  EXPECT_EQ(end.severity, Severity::Warn);  // failed spans warn
  EXPECT_EQ(u64_field(end, "trace"), 1234u);
  EXPECT_EQ(str_field(end, "loss"), "timeout");
  ASSERT_NE(end.field("dur"), nullptr);
  EXPECT_DOUBLE_EQ(std::get<double>(*end.field("dur")), 0.25);
  EXPECT_EQ(u64_field(end, "code"), 5u);
  // Wall time is opt-in (default off): its nondeterminism would break the
  // serial-vs-parallel trace identity.
  EXPECT_EQ(end.field("wall_us"), nullptr);
}

TEST(Span, SuccessfulSpanOmitsLossField) {
  TracingGuard tracing;
  { Span span("crypto.seal"); }
  ASSERT_EQ(tracing.events().size(), 2u);
  EXPECT_EQ(tracing.events()[1].field("loss"), nullptr);
  ASSERT_NE(tracing.events()[1].field("ok"), nullptr);
  EXPECT_TRUE(std::get<bool>(*tracing.events()[1].field("ok")));
}

TEST(Span, WallClockFieldAppearsWhenOptedIn) {
  TracingGuard tracing;
  set_span_wall_clock(true);
  { Span span("phy.transmit"); }
  set_span_wall_clock(false);
  ASSERT_EQ(tracing.events().size(), 2u);
  ASSERT_NE(tracing.events()[1].field("wall_us"), nullptr);
  EXPECT_GE(std::get<double>(*tracing.events()[1].field("wall_us")), 0.0);
}

TEST(FlightRecorder, RingWrapsAtCapacityAndSurvivesThreadExit) {
  set_flight_capacity(8);
  flight_reset();
  const std::uint64_t dropped_before = flight_records_dropped();
  // A fresh thread acquires a fresh ring at the 8-record capacity; its
  // records must remain dumpable after it exits.
  std::thread([] {
    for (std::uint64_t i = 0; i < 20; ++i) flight_note("wrap.note", 100 + i);
  }).join();
  EXPECT_GE(flight_records_dropped() - dropped_before, 12u);

  std::ostringstream os;
  (void)dump_flight(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t wrap_notes = 0;
  std::uint64_t last_arg = 0;
  while (std::getline(in, line)) {
    const auto ev = parse_jsonl_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    if (ev->name == "flight.note" && str_field(*ev, "name") == "wrap.note") {
      ++wrap_notes;
      last_arg = u64_field(*ev, "arg");
    }
  }
  // Only the newest `capacity` records survive the wrap, oldest first.
  EXPECT_EQ(wrap_notes, 8u);
  EXPECT_EQ(last_arg, 119u);  // the final note pushed is the last dumped
  set_flight_capacity(0);     // back to the env/default capacity
}

TEST(FlightRecorder, DisabledRecorderPushesNothing) {
  flight_reset();
  set_flight_enabled(false);
  const std::uint64_t before = flight_records_pushed();
  flight_note("dark.note", 1);
  { Span span("dark.span"); }
  EXPECT_EQ(flight_records_pushed(), before);
  set_flight_enabled(true);
}

TEST(FlightRecorder, SpanContextRidesOnNotes) {
  flight_reset();
  {
    Span root("dndp.attempt", 77);
    flight_note("hs.retx", 3);
  }
  std::ostringstream os;
  (void)dump_flight(os);
  std::istringstream in(os.str());
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    const auto ev = parse_jsonl_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    if (ev->name == "flight.note" && str_field(*ev, "name") == "hs.retx") {
      found = true;
      EXPECT_EQ(u64_field(*ev, "trace"), 77u);
      EXPECT_EQ(u64_field(*ev, "span"), 1u);
      EXPECT_EQ(u64_field(*ev, "arg"), 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlightRecorder, DumpFdIsWritableWithoutLocks) {
  flight_reset();
  flight_note("fd.note", 9);
  const std::string path = ::testing::TempDir() + "jrsnd_flight_fd.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  dump_flight_fd(fileno(f));
  std::fclose(f);
  std::ifstream in(path);
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    const auto ev = parse_jsonl_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    found = found || str_field(*ev, "name") == "fd.note";
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

/// Inner PHY that always delivers — isolates FaultyPhy's crash behavior.
class LoopbackPhy final : public core::PhyModel {
 public:
  void begin_subsession(NodeId, NodeId, CodeId) override {}
  std::optional<BitVector> transmit(NodeId, NodeId, core::TxCode, core::TxClass,
                                    const BitVector& payload) override {
    return payload;
  }
};

TEST(FlightRecorder, FaultyPhyCrashEventDumpsToConfiguredPath) {
  const std::string path = ::testing::TempDir() + "jrsnd_flight_crash.jsonl";
  std::remove(path.c_str());
  flight_reset();
  set_flight_dump_path(path);
  flight_note("pre.crash", 7);

  fault::FaultPlan plan;
  plan.crashes.push_back(fault::CrashEvent{node_id(0), TimePoint{0.0}, Duration{10.0}});
  LoopbackPhy inner;
  fault::FaultyPhy phy(inner, plan);
  (void)take_loss_reason();
  BitVector payload;
  payload.push_back(true);
  const auto result =
      phy.transmit(node_id(0), node_id(1), core::TxCode{}, core::TxClass::Hello, payload);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(take_loss_reason(), LossStage::Crash);

  // The first blocked message snapshots the rings to the configured path;
  // the pre-crash note must be in the postmortem.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash dump was not written to " << path;
  std::string line;
  bool found_note = false;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto ev = parse_jsonl_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    ++records;
    found_note = found_note || (ev->name == "flight.note" &&
                                str_field(*ev, "name") == "pre.crash");
  }
  EXPECT_GT(records, 0u);
  EXPECT_TRUE(found_note);
  set_flight_dump_path("");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jrsnd::obs
