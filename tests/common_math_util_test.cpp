#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace jrsnd {
namespace {

TEST(LogGamma, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGamma, HalfIntegerValue) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(Binomial, SmallValuesExact) {
  EXPECT_NEAR(binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(binomial(10, 5), 252.0, 1e-7);
  EXPECT_NEAR(binomial(52, 5), 2598960.0, 1e-2);
}

TEST(Binomial, EdgeCases) {
  EXPECT_DOUBLE_EQ(binomial(7, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(7, 7), 1.0);
  EXPECT_DOUBLE_EQ(binomial(7, 8), 0.0);
  EXPECT_DOUBLE_EQ(binomial(7, -1), 0.0);
}

TEST(Binomial, SymmetryProperty) {
  for (int n = 1; n <= 60; n += 7) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_binomial(n, k), log_binomial(n, n - k), 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Binomial, PascalRecurrence) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k) for modest n (checkable exactly).
  for (int n = 2; n <= 40; n += 3) {
    for (int k = 1; k < n; k += 2) {
      const double lhs = binomial(n, k);
      const double rhs = binomial(n - 1, k - 1) + binomial(n - 1, k);
      EXPECT_NEAR(lhs / rhs, 1.0, 1e-10) << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialPmf, SumsToOne) {
  for (const double p : {0.1, 0.3, 0.5, 0.9}) {
    double total = 0.0;
    for (int k = 0; k <= 50; ++k) total += binomial_pmf(50, k, p);
    EXPECT_NEAR(total, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(BinomialPmf, MeanMatchesNP) {
  double mean = 0.0;
  for (int k = 0; k <= 100; ++k) mean += k * binomial_pmf(100, k, 0.3);
  EXPECT_NEAR(mean, 30.0, 1e-7);
}

TEST(PrSharedCodes, PaperDefaultsSumToOne) {
  // Eq. (1) with Table I parameters: n=2000, m=100, l=40.
  double total = 0.0;
  for (int x = 0; x <= 100; ++x) total += pr_shared_codes(100, x, 2000, 40);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PrSharedCodes, ExpectedSharedCount) {
  // E[x] = m (l-1)/(n-1) ~= 100 * 39/1999 ~= 1.951.
  double mean = 0.0;
  for (int x = 0; x <= 100; ++x) mean += x * pr_shared_codes(100, x, 2000, 40);
  EXPECT_NEAR(mean, 100.0 * 39.0 / 1999.0, 1e-8);
}

TEST(PrSharedCodes, LEquals1MeansNoSharing) {
  // l = 1: codes are never shared, so Pr[0] = 1.
  EXPECT_NEAR(pr_shared_codes(100, 0, 2000, 1), 1.0, 1e-12);
  EXPECT_NEAR(pr_shared_codes(100, 1, 2000, 1), 0.0, 1e-12);
}

TEST(CodeCompromise, ZeroCapturesZeroAlpha) {
  EXPECT_DOUBLE_EQ(code_compromise_probability(2000, 40, 0), 0.0);
}

TEST(CodeCompromise, SingleCaptureMatchesLOverN) {
  // One captured node holds the code with probability l/n.
  EXPECT_NEAR(code_compromise_probability(2000, 40, 1), 40.0 / 2000.0, 1e-10);
}

TEST(CodeCompromise, MonotoneInQ) {
  double prev = 0.0;
  for (int q = 0; q <= 200; q += 10) {
    const double a = code_compromise_probability(2000, 40, q);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(CodeCompromise, MonotoneInL) {
  double prev = 0.0;
  for (int l = 1; l <= 200; l += 20) {
    const double a = code_compromise_probability(2000, l, 20);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(CodeCompromise, SaturatesAtOne) {
  // q > n - l forces every q-subset to include a holder.
  EXPECT_DOUBLE_EQ(code_compromise_probability(100, 40, 61), 1.0);
  EXPECT_DOUBLE_EQ(code_compromise_probability(100, 40, 100), 1.0);
}

TEST(CodeCompromise, PaperDefaultValue) {
  // alpha = 1 - C(1960, 20)/C(2000, 20); sanity: about 1-(1960/2000)^20.
  const double a = code_compromise_probability(2000, 40, 20);
  const double approx = 1.0 - std::pow(1960.0 / 2000.0, 20);
  EXPECT_NEAR(a, approx, 0.01);
  EXPECT_GT(a, 0.3);
  EXPECT_LT(a, 0.4);
}

TEST(Clamp01, Clamps) {
  EXPECT_DOUBLE_EQ(clamp01(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp01(2.0), 1.0);
}

}  // namespace
}  // namespace jrsnd
