#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace jrsnd::core {
namespace {

TEST(Analysis, Eq1DistributionSumsToOne) {
  const Params p = Params::defaults();
  double total = 0.0;
  for (std::uint32_t x = 0; x <= p.m; ++x) total += pr_shared_codes(p, x);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Analysis, ShareAtLeastOneMatchesComplement) {
  const Params p = Params::defaults();
  EXPECT_NEAR(pr_share_at_least_one(p), 1.0 - pr_shared_codes(p, 0), 1e-12);
  // With Table I values ~86%.
  EXPECT_GT(pr_share_at_least_one(p), 0.8);
  EXPECT_LT(pr_share_at_least_one(p), 0.9);
}

TEST(Analysis, AlphaDefaults) {
  const Params p = Params::defaults();
  // alpha(2000, 40, 20) ~ 0.33.
  EXPECT_GT(alpha(p), 0.3);
  EXPECT_LT(alpha(p), 0.4);
  EXPECT_NEAR(expected_compromised_codes(p), 5000.0 * alpha(p), 1e-6);
}

TEST(Analysis, Theorem1BoundsAreOrdered) {
  Params p = Params::defaults();
  for (const std::uint32_t q : {0u, 10u, 20u, 60u, 100u}) {
    p.q = q;
    const Theorem1Result r = theorem1(p);
    EXPECT_LE(r.p_lower, r.p_upper + 1e-12) << "q=" << q;
    EXPECT_GE(r.p_lower, 0.0);
    EXPECT_LE(r.p_upper, 1.0);
  }
}

TEST(Analysis, Theorem1NoCompromiseIsShareProbability) {
  // With q = 0 nothing is jammed: both bounds collapse to P(x >= 1).
  Params p = Params::defaults();
  p.q = 0;
  const Theorem1Result r = theorem1(p);
  EXPECT_NEAR(r.p_lower, pr_share_at_least_one(p), 1e-9);
  EXPECT_NEAR(r.p_upper, pr_share_at_least_one(p), 1e-9);
}

TEST(Analysis, Theorem1LowerBoundFormula) {
  // P^- = 1 - sum Pr[x] alpha^x, independently computed.
  const Params p = Params::defaults();
  const Theorem1Result r = theorem1(p);
  double fail = 0.0;
  for (std::uint32_t x = 0; x <= p.m; ++x) {
    fail += pr_shared_codes(p, x) * std::pow(r.alpha, x);
  }
  EXPECT_NEAR(r.p_lower, 1.0 - fail, 1e-9);
}

TEST(Analysis, Theorem1DegradesWithQ) {
  Params p = Params::defaults();
  double prev_lower = 1.0;
  for (const std::uint32_t q : {0u, 20u, 40u, 80u, 160u}) {
    p.q = q;
    const Theorem1Result r = theorem1(p);
    EXPECT_LE(r.p_lower, prev_lower + 1e-12);
    prev_lower = r.p_lower;
  }
}

TEST(Analysis, Theorem1BetaUsesZBudget) {
  Params p = Params::defaults();
  p.q = 20;
  const Theorem1Result r = theorem1(p);
  const double tries = p.z * (1.0 + p.mu) / p.mu;
  EXPECT_NEAR(r.beta, std::min(tries / r.c, 1.0), 1e-12);
  EXPECT_NEAR(r.beta_prime, std::min(3.0 * tries / r.c, 1.0), 1e-12);
}

TEST(Analysis, Theorem2MatchesPaperMagnitude) {
  // Paper: at m = 100 defaults, JR-SND latency is "under 2 seconds",
  // dominated by D-NDP's quadratic term.
  const Params p = Params::defaults();
  const double t = theorem2_dndp_latency(p);
  EXPECT_GT(t, 1.0);
  EXPECT_LT(t, 2.0);
}

TEST(Analysis, Theorem2QuadraticInM) {
  Params p = Params::defaults();
  p.m = 100;
  const double t100 = theorem2_dndp_latency(p);
  p.m = 200;
  const double t200 = theorem2_dndp_latency(p);
  // Identification term scales ~ m(3m+4): ratio ~ 3.97.
  const double ratio = (200.0 * 604.0) / (100.0 * 304.0);
  // Subtract the constant auth-phase time before comparing.
  const double auth = 2.0 * 512.0 * p.l_f() / p.R + 2.0 * p.t_key;
  EXPECT_NEAR((t200 - auth) / (t100 - auth), ratio, 1e-9);
}

TEST(Analysis, Theorem3Behaviour) {
  // More common neighbors or higher P_D -> higher bound; degenerate cases 0.
  EXPECT_DOUBLE_EQ(theorem3_mndp_probability(0.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(theorem3_mndp_probability(0.0, 20.0), 0.0);
  EXPECT_GT(theorem3_mndp_probability(0.5, 20.0), theorem3_mndp_probability(0.5, 10.0));
  EXPECT_GT(theorem3_mndp_probability(0.8, 20.0), theorem3_mndp_probability(0.4, 20.0));
  EXPECT_LE(theorem3_mndp_probability(1.0, 50.0), 1.0);
}

TEST(Analysis, Theorem3KnownValue) {
  // P_M >= 1 - (1 - 0.04)^(22 * 0.5865 - 1) for p_d = 0.2, g = 22.
  const double expected = 1.0 - std::pow(1.0 - 0.04, 22.0 * 0.58650 - 1.0);
  EXPECT_NEAR(theorem3_mndp_probability(0.2, 22.0), expected, 1e-3);
}

TEST(Analysis, Theorem4GrowsWithNu) {
  Params p = Params::defaults();
  double prev = 0.0;
  for (const std::uint32_t nu : {1u, 2u, 4u, 6u, 8u}) {
    p.nu = nu;
    const double t = theorem4_mndp_latency(p, 22.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Analysis, Theorem4PaperMagnitudeAtNu6) {
  // Paper Fig. 5(b): T ~ 4 seconds at nu = 6.
  Params p = Params::defaults();
  p.nu = 6;
  const double t = theorem4_mndp_latency(p, expected_degree(p));
  EXPECT_GT(t, 2.0);
  EXPECT_LT(t, 7.0);
}

TEST(Analysis, Theorem4VerificationTermDominates) {
  // 2 nu (nu+1) t_ver is the bulk of M-NDP latency at Table I timings.
  Params p = Params::defaults();
  p.nu = 2;
  const double full = theorem4_mndp_latency(p, 22.0);
  const double ver_term = 2.0 * 2.0 * 3.0 * p.t_ver;
  EXPECT_GT(ver_term / full, 0.5);
}

TEST(Analysis, CombinedProbabilityFormula) {
  EXPECT_DOUBLE_EQ(jrsnd_probability(0.6, 0.5), 0.6 + 0.4 * 0.5);
  EXPECT_DOUBLE_EQ(jrsnd_probability(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(jrsnd_probability(0.0, 0.0), 0.0);
  EXPECT_GE(jrsnd_probability(0.3, 0.4), 0.3);
}

TEST(Analysis, CombinedLatencyIsMax) {
  EXPECT_DOUBLE_EQ(jrsnd_latency(1.5, 0.3), 1.5);
  EXPECT_DOUBLE_EQ(jrsnd_latency(0.2, 0.9), 0.9);
}

TEST(Analysis, ExpectedDegreeDefaults) {
  // g = 1999 * pi * 300^2 / 25e6 ~= 22.6.
  EXPECT_NEAR(expected_degree(Params::defaults()), 22.6, 0.2);
}


TEST(Analysis, RecursiveMndpMatchesTheorem3AtNu2) {
  for (const double p_d : {0.1, 0.2, 0.5, 0.8}) {
    for (const double g : {10.0, 22.0, 40.0}) {
      EXPECT_NEAR(mndp_probability_recursive(p_d, g, 2),
                  theorem3_mndp_probability(p_d, g), 1e-12)
          << "p_d=" << p_d << " g=" << g;
    }
  }
}

TEST(Analysis, RecursiveMndpMonotoneInNu) {
  double prev = 0.0;
  for (std::uint32_t nu = 2; nu <= 10; ++nu) {
    const double m = mndp_probability_recursive(0.2, 22.0, nu);
    EXPECT_GE(m, prev - 1e-12) << nu;
    EXPECT_LE(m, 1.0);
    prev = m;
  }
}

TEST(Analysis, RecursiveMndpDegenerateCases) {
  EXPECT_DOUBLE_EQ(mndp_probability_recursive(0.2, 22.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(mndp_probability_recursive(0.2, 1.0, 4), 0.0);   // g_c <= 0
  EXPECT_DOUBLE_EQ(mndp_probability_recursive(0.0, 22.0, 4), 0.0);  // no links
}

TEST(Analysis, RecursiveMndpPaperOperatingPoint) {
  // At the paper's Fig. 5(a) operating point (P_D ~ 0.2, g ~ 21.6) the
  // recursion tracks our measured sim closely: ~0.38 at nu=2, ~0.71 at
  // nu=3, saturating around 0.9.
  EXPECT_NEAR(mndp_probability_recursive(0.214, 21.6, 2), 0.40, 0.06);
  EXPECT_NEAR(mndp_probability_recursive(0.214, 21.6, 3), 0.73, 0.08);
  EXPECT_GT(mndp_probability_recursive(0.214, 21.6, 8), 0.85);
}

class AnalysisLSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AnalysisLSweep, BoundsStayInUnitInterval) {
  Params p = Params::defaults();
  p.l = GetParam();
  const Theorem1Result r = theorem1(p);
  EXPECT_GE(r.p_lower, 0.0);
  EXPECT_LE(r.p_lower, 1.0);
  EXPECT_GE(r.p_upper, 0.0);
  EXPECT_LE(r.p_upper, 1.0);
  EXPECT_LE(r.p_lower, r.p_upper + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ls, AnalysisLSweep, ::testing::Values(5, 10, 20, 40, 80, 100, 160));

}  // namespace
}  // namespace jrsnd::core
