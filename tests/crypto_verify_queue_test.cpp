// Property tests for the batched handshake-verification pipeline: the
// batched drain must be bit-identical — verdicts, senders, accepted keys,
// and every per-stage decision counter — to verify_one_shot, the historical
// one-at-a-time reference, on any flood mix. Plus: the multi-buffer SHA-256
// lanes against the scalar compression, MAC-stage amortization invariants,
// and thread-count invariance of the whole pipeline (the VerifyQueue*
// suites below also run under TSan in CI).
#include "crypto/verify_queue.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "adversary/dos_attacker.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/messages.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256_multi.hpp"
#include "obs/metrics_registry.hpp"

namespace jrsnd::crypto {
namespace {

std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot, const char* name) {
  for (const auto& sample : snapshot.counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

/// The six counters that define the decision identity between the batched
/// and one-shot paths. Cache/batch-shape counters (crypto.verify.batches,
/// peer_cache.*, hmac.midstate.*) intentionally differ.
constexpr const char* kDecisionCounters[] = {
    "crypto.verify.frames", "crypto.verify.accepted", "crypto.reject.length",
    "crypto.reject.format", "crypto.reject.code",     "crypto.reject.mac"};

adversary::HandshakeFloodSource make_source(std::uint64_t rng_seed = 11) {
  return adversary::HandshakeFloodSource(core::WireConfig{}, /*authority_seed=*/5,
                                         /*peer_count=*/8, rng_seed);
}

TEST(VerifyQueueProperty, BatchedVerdictsMatchOneShotAcrossRatios) {
  auto source = make_source();
  for (const std::uint32_t ratio : {0u, 1u, 3u, 10u, 50u}) {
    const auto flood = source.make_batch(200, ratio);
    VerifyQueue queue(source.verify_wire());
    std::vector<VerifyResult> batched;
    for (const auto& frame : flood) {
      queue.push(frame.bits, frame.frame_code, source.expected_code());
    }
    queue.drain(source.key_source(), batched);
    ASSERT_EQ(batched.size(), flood.size());

    for (std::size_t i = 0; i < flood.size(); ++i) {
      const VerifyResult one_shot = VerifyQueue::verify_one_shot(
          source.verify_wire(), flood[i].bits, flood[i].frame_code, source.expected_code(),
          source.key_source());
      EXPECT_EQ(batched[i].stage, one_shot.stage)
          << "ratio=" << ratio << " frame=" << i << " kind="
          << adversary::flood_frame_kind_name(flood[i].kind);
      EXPECT_EQ(batched[i].stage, flood[i].expected_stage);
      if (one_shot.stage == VerifyStage::Accept) {
        EXPECT_EQ(batched[i].sender, one_shot.sender);
        EXPECT_EQ(batched[i].key, one_shot.key);
      }
    }
  }
}

TEST(VerifyQueueProperty, DecisionCountersMatchOneShot) {
  auto source = make_source(12);
  const auto flood = source.make_batch(330, 10);
  obs::set_metrics_enabled(true);

  obs::MetricsRegistry one_shot_registry;
  {
    obs::ScopedMetricsRegistry scoped(&one_shot_registry);
    for (const auto& frame : flood) {
      (void)VerifyQueue::verify_one_shot(source.verify_wire(), frame.bits, frame.frame_code,
                                         source.expected_code(), source.key_source());
    }
  }

  obs::MetricsRegistry batched_registry;
  {
    obs::ScopedMetricsRegistry scoped(&batched_registry);
    VerifyQueue queue(source.verify_wire());
    std::vector<VerifyResult> out;
    // Uneven chunk sizes cover batch boundaries (1, 3, 7, 15, ...).
    std::size_t i = 0, chunk = 1;
    while (i < flood.size()) {
      const std::size_t end = std::min(flood.size(), i + chunk);
      for (; i < end; ++i) queue.push(flood[i].bits, flood[i].frame_code, source.expected_code());
      queue.drain(source.key_source(), out);
      chunk = chunk * 2 + 1;
    }
  }

  const obs::MetricsSnapshot a = one_shot_registry.snapshot();
  const obs::MetricsSnapshot b = batched_registry.snapshot();
  for (const char* name : kDecisionCounters) {
    EXPECT_EQ(counter_value(a, name), counter_value(b, name)) << name;
  }
  EXPECT_EQ(counter_value(a, "crypto.verify.frames"), flood.size());
}

TEST(VerifyQueueProperty, FloodGenerationIsDeterministic) {
  // Two sources built from the same seeds must author bit-identical floods —
  // zero RNG divergence between the batches fed to each path in the tests
  // and benches that compare them.
  auto a = make_source(99);
  auto b = make_source(99);
  const auto flood_a = a.make_batch(120, 10);
  const auto flood_b = b.make_batch(120, 10);
  ASSERT_EQ(flood_a.size(), flood_b.size());
  for (std::size_t i = 0; i < flood_a.size(); ++i) {
    EXPECT_EQ(flood_a[i].bits, flood_b[i].bits) << i;
    EXPECT_EQ(flood_a[i].frame_code, flood_b[i].frame_code) << i;
    EXPECT_EQ(flood_a[i].kind, flood_b[i].kind) << i;
  }
}

TEST(VerifyQueueProperty, CheapRejectsNeverTouchCrypto) {
  // A flood of length/format/code rejects must resolve without building a
  // single key schedule or touching the peer cache: the cheap stages are the
  // whole pipeline for them.
  auto source = make_source(13);
  const auto flood = source.make_batch(90, 89);  // 1 honest + 89 attackers
  obs::set_metrics_enabled(true);
  // Constructed outside the scoped registry: the queue ctor default-builds
  // the overflow slot's (empty-key) midstate, which is setup, not work.
  VerifyQueue queue(source.verify_wire());
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetricsRegistry scoped(&registry);
    std::vector<VerifyResult> out;
    for (const auto& frame : flood) {
      if (frame.expected_stage == VerifyStage::RejectMac ||
          frame.expected_stage == VerifyStage::Accept) {
        continue;  // keep only the pre-MAC rejects
      }
      queue.push(frame.bits, frame.frame_code, source.expected_code());
    }
    ASSERT_GT(queue.pending(), 0u);
    EXPECT_EQ(queue.drain(source.key_source(), out), 0u);
  }
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(counter_value(snapshot, "crypto.hmac.midstate.builds"), 0u);
  EXPECT_EQ(counter_value(snapshot, "crypto.hmac.midstate.hits"), 0u);
  EXPECT_EQ(counter_value(snapshot, "crypto.verify.peer_cache.hits"), 0u);
  EXPECT_EQ(counter_value(snapshot, "crypto.verify.peer_cache.misses"), 0u);
  EXPECT_EQ(counter_value(snapshot, "crypto.verify.accepted"), 0u);
}

TEST(VerifyQueueProperty, PeerCacheAmortizesKeySchedules) {
  // Second drain of the same peers: every MAC-stage frame is a cache hit and
  // no new midstate is built — the per-peer setup cost is paid once.
  auto source = make_source(14);
  const auto flood = source.make_batch(64, 0);  // all honest, 8 peers
  obs::set_metrics_enabled(true);
  VerifyQueue queue(source.verify_wire());
  std::vector<VerifyResult> out;

  auto drain_once = [&](obs::MetricsRegistry& registry) {
    obs::ScopedMetricsRegistry scoped(&registry);
    for (const auto& frame : flood) {
      queue.push(frame.bits, frame.frame_code, source.expected_code());
    }
    return queue.drain(source.key_source(), out);
  };

  obs::MetricsRegistry cold, warm;
  EXPECT_EQ(drain_once(cold), flood.size());
  EXPECT_EQ(drain_once(warm), flood.size());

  const obs::MetricsSnapshot cold_s = cold.snapshot();
  const obs::MetricsSnapshot warm_s = warm.snapshot();
  EXPECT_GT(counter_value(cold_s, "crypto.verify.peer_cache.misses"), 0u);
  EXPECT_EQ(counter_value(cold_s, "crypto.verify.peer_cache.misses"),
            counter_value(cold_s, "crypto.hmac.midstate.builds"));
  EXPECT_EQ(counter_value(warm_s, "crypto.verify.peer_cache.misses"), 0u);
  EXPECT_EQ(counter_value(warm_s, "crypto.hmac.midstate.builds"), 0u);
  // Resolutions happen once per peer *group* per drain (that is the whole
  // amortization), so the warm drain records one hit per distinct peer.
  EXPECT_EQ(counter_value(warm_s, "crypto.verify.peer_cache.hits"), 8u);
  EXPECT_EQ(queue.cached_peers(), 8u);
}

TEST(VerifyQueueSimd, CompressX8MatchesScalarPerLane) {
  // The multi-buffer compression must equal crypto::sha256_compress lane by
  // lane on random states and blocks, on whichever backend dispatch picked.
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::uint32_t, 8> states[kSha256Lanes];
    std::uint8_t blocks[kSha256Lanes][64];
    std::array<std::uint32_t, 8> reference[kSha256Lanes];
    for (std::size_t l = 0; l < kSha256Lanes; ++l) {
      for (auto& word : states[l]) word = static_cast<std::uint32_t>(rng.next());
      for (auto& byte : blocks[l]) byte = static_cast<std::uint8_t>(rng.uniform(256));
      reference[l] = states[l];
      sha256_compress(reference[l], blocks[l]);
    }
    sha256_compress_x8(states, blocks);
    for (std::size_t l = 0; l < kSha256Lanes; ++l) {
      EXPECT_EQ(states[l], reference[l]) << "trial " << trial << " lane " << l;
    }
  }
}

TEST(VerifyQueueSimd, Avx2BackendMatchesForcedScalar) {
  if (!hash_backend_supported(HashBackend::kAvx2)) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  const HashBackend previous = hash_backend();
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    std::array<std::uint32_t, 8> avx_states[kSha256Lanes];
    std::array<std::uint32_t, 8> scalar_states[kSha256Lanes];
    std::uint8_t blocks[kSha256Lanes][64];
    for (std::size_t l = 0; l < kSha256Lanes; ++l) {
      for (auto& word : avx_states[l]) word = static_cast<std::uint32_t>(rng.next());
      for (auto& byte : blocks[l]) byte = static_cast<std::uint8_t>(rng.uniform(256));
      scalar_states[l] = avx_states[l];
    }
    ASSERT_EQ(set_hash_backend(HashBackend::kAvx2), HashBackend::kAvx2);
    sha256_compress_x8(avx_states, blocks);
    ASSERT_EQ(set_hash_backend(HashBackend::kScalar), HashBackend::kScalar);
    sha256_compress_x8(scalar_states, blocks);
    for (std::size_t l = 0; l < kSha256Lanes; ++l) {
      EXPECT_EQ(avx_states[l], scalar_states[l]) << "trial " << trial << " lane " << l;
    }
  }
  set_hash_backend(previous);
}

TEST(VerifyQueueSimd, MacX8MatchesScalarMac) {
  // Eight-lane HMAC vs per-lane HmacKey::mac on every admissible message
  // length, repeated keys across lanes included.
  Rng rng(33);
  std::vector<HmacKey> keys;
  for (int k = 0; k < 5; ++k) {
    std::array<std::uint8_t, 32> raw;
    for (auto& byte : raw) byte = static_cast<std::uint8_t>(rng.uniform(256));
    keys.emplace_back(std::span<const std::uint8_t>(raw.data(), raw.size()));
  }
  for (std::size_t base_len = 0; base_len <= kMaxSingleBlockMessage; ++base_len) {
    const HmacKey* lane_keys[kSha256Lanes];
    std::uint8_t msgs[kSha256Lanes][kMaxSingleBlockMessage];
    const std::uint8_t* msg_ptrs[kSha256Lanes];
    std::size_t lens[kSha256Lanes];
    for (std::size_t l = 0; l < kSha256Lanes; ++l) {
      lane_keys[l] = &keys[(base_len + l) % keys.size()];
      lens[l] = (base_len + l) % (kMaxSingleBlockMessage + 1);
      for (std::size_t i = 0; i < lens[l]; ++i) {
        msgs[l][i] = static_cast<std::uint8_t>(rng.uniform(256));
      }
      msg_ptrs[l] = msgs[l];
    }
    Sha256Digest out[kSha256Lanes];
    HmacKey::mac_x8(lane_keys, msg_ptrs, lens, out);
    for (std::size_t l = 0; l < kSha256Lanes; ++l) {
      const Sha256Digest expected =
          lane_keys[l]->mac(std::span<const std::uint8_t>(msgs[l], lens[l]));
      EXPECT_EQ(out[l], expected) << "base_len=" << base_len << " lane=" << l;
    }
  }
}

TEST(VerifyQueueProperty, MatchesRealAuthMessageDecodeVerify) {
  // Cross-check against the actual message codec: a frame the pipeline
  // accepts must decode and verify as an AuthMessage under the same key, and
  // vice versa for MAC rejects.
  const core::WireConfig wire{};
  auto source = make_source(15);
  const auto flood = source.make_batch(60, 2);
  VerifyQueue queue(source.verify_wire());
  std::vector<VerifyResult> out;
  for (const auto& frame : flood) {
    queue.push(frame.bits, frame.frame_code, source.expected_code());
  }
  queue.drain(source.key_source(), out);
  for (std::size_t i = 0; i < flood.size(); ++i) {
    const auto decoded = core::AuthMessage::decode(flood[i].bits, wire);
    if (out[i].stage == VerifyStage::Accept) {
      ASSERT_TRUE(decoded.has_value()) << i;
      EXPECT_TRUE(decoded->verify(out[i].key, wire)) << i;
      EXPECT_EQ(raw(decoded->sender), out[i].sender) << i;
    } else if (out[i].stage == VerifyStage::RejectMac && decoded.has_value()) {
      const SymmetricKey key =
          source.key_source().key_for(static_cast<std::uint32_t>(raw(decoded->sender)));
      EXPECT_FALSE(decoded->verify(key, wire)) << i;
    }
  }
}

/// Runs `flood` through per-worker VerifyQueues over a pool of `threads`
/// threads (fixed chunking, so the partition does not depend on the thread
/// count), returning verdicts plus the merged decision counters.
struct ShardedRun {
  std::vector<VerifyStage> stages;
  obs::MetricsSnapshot metrics;
};

ShardedRun sharded_verify(const std::vector<adversary::FloodFrame>& flood,
                          const adversary::HandshakeFloodSource& source,
                          std::size_t threads) {
  constexpr std::size_t kShards = 8;
  ShardedRun run;
  run.stages.assign(flood.size(), VerifyStage::RejectLength);
  obs::MetricsRegistry shard_registries[kShards];
  ThreadPool pool(threads);
  pool.parallel_for(kShards, [&](std::size_t shard) {
    obs::ScopedMetricsRegistry scoped(&shard_registries[shard]);
    VerifyQueue queue(source.verify_wire());
    std::vector<VerifyResult> out;
    for (std::size_t i = shard; i < flood.size(); i += kShards) {
      queue.push(flood[i].bits, flood[i].frame_code, source.expected_code());
    }
    queue.drain(source.key_source(), out);
    std::size_t slot = 0;
    for (std::size_t i = shard; i < flood.size(); i += kShards) {
      run.stages[i] = out[slot++].stage;
    }
  });
  obs::MetricsRegistry merged;
  for (auto& registry : shard_registries) merged.absorb(registry.snapshot());
  run.metrics = merged.snapshot();
  return run;
}

TEST(VerifyQueueConcurrency, ThreadCountDoesNotChangeVerdictsOrCounters) {
  // JRSND_THREADS=1 vs 8 over the same sharded flood: verdicts and merged
  // decision counters must be bit-identical — batching must not introduce
  // any cross-thread coupling. (This test also runs under TSan in CI.)
  auto source = make_source(16);
  const auto flood = source.make_batch(264, 10);
  obs::set_metrics_enabled(true);

  const ShardedRun serial = sharded_verify(flood, source, 1);
  const ShardedRun parallel = sharded_verify(flood, source, 8);

  ASSERT_EQ(serial.stages.size(), parallel.stages.size());
  for (std::size_t i = 0; i < serial.stages.size(); ++i) {
    EXPECT_EQ(serial.stages[i], parallel.stages[i]) << i;
    EXPECT_EQ(serial.stages[i], flood[i].expected_stage) << i;
  }
  for (const char* name : kDecisionCounters) {
    EXPECT_EQ(counter_value(serial.metrics, name), counter_value(parallel.metrics, name))
        << name;
  }
}

TEST(VerifyQueueConcurrency, ConcurrentQueuesShareNothing) {
  // Many pool workers hammering private queues against one shared KeySource
  // concurrently; every worker must still get the exact expected verdicts.
  // Under TSan this is the data-race probe for the whole verify pipeline.
  auto source = make_source(17);
  const auto flood = source.make_batch(128, 5);
  ThreadPool pool(8);
  std::vector<std::size_t> accepted(16, 0);
  pool.parallel_for(accepted.size(), [&](std::size_t task) {
    VerifyQueue queue(source.verify_wire());
    std::vector<VerifyResult> out;
    for (int repeat = 0; repeat < 3; ++repeat) {
      for (const auto& frame : flood) {
        queue.push(frame.bits, frame.frame_code, source.expected_code());
      }
      accepted[task] += queue.drain(source.key_source(), out);
    }
  });
  std::size_t expected = 0;
  for (const auto& frame : flood) {
    if (frame.expected_stage == VerifyStage::Accept) ++expected;
  }
  for (const std::size_t count : accepted) EXPECT_EQ(count, expected * 3);
}

}  // namespace
}  // namespace jrsnd::crypto
