#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"

namespace jrsnd::crypto {
namespace {

std::string digest_hex(const Sha256Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash(
                std::string("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(digest_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding requires a full extra block.
  const std::string msg(64, 'x');
  EXPECT_EQ(Sha256::hash(msg), Sha256::hash(msg));  // determinism
  // Cross-check via incremental update in odd chunk sizes.
  Sha256 ctx;
  ctx.update(msg.substr(0, 13));
  ctx.update(msg.substr(13, 50));
  ctx.update(msg.substr(63));
  EXPECT_EQ(ctx.finalize(), Sha256::hash(msg));
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits in the same block as the 0x80 pad byte;
  // 56 bytes: it does not. Both are classic off-by-one traps.
  const std::string m55(55, 'q');
  const std::string m56(56, 'q');
  Sha256 a;
  a.update(m55);
  Sha256 b;
  b.update(m56);
  EXPECT_NE(a.finalize(), b.finalize());
  // Known vector: 55 * 'a'.
  EXPECT_EQ(digest_hex(Sha256::hash(std::string(55, 'a'))),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(msg.substr(0, split));
    ctx.update(msg.substr(split));
    EXPECT_EQ(ctx.finalize(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, ResetReusesContext) {
  Sha256 ctx;
  ctx.update(std::string("garbage"));
  (void)ctx.finalize();
  ctx.reset();
  ctx.update(std::string("abc"));
  EXPECT_EQ(digest_hex(ctx.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, SingleBitChangesAvalanche) {
  std::vector<std::uint8_t> a(32, 0);
  std::vector<std::uint8_t> b = a;
  b[0] ^= 1;
  const Sha256Digest da = Sha256::hash(a);
  const Sha256Digest db = Sha256::hash(b);
  int differing_bits = 0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    differing_bits += __builtin_popcount(static_cast<unsigned>(da[i] ^ db[i]));
  }
  // Expect roughly half of 256 bits to flip.
  EXPECT_GT(differing_bits, 80);
  EXPECT_LT(differing_bits, 176);
}

}  // namespace
}  // namespace jrsnd::crypto
