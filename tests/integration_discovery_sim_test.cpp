// End-to-end experiment-driver tests on a scaled-down world (n = 300 in a
// 2 km field keeps the density — and therefore g — near the paper's).
#include "core/discovery_sim.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace jrsnd::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.params = Params::defaults();
  cfg.params.n = 300;
  cfg.params.m = 20;
  cfg.params.l = 15;
  cfg.params.q = 5;
  cfg.params.field_width = 2000.0;
  cfg.params.field_height = 2000.0;
  cfg.params.runs = 3;
  cfg.base_seed = 42;
  return cfg;
}

TEST(DiscoverySim, RunOnceIsDeterministic) {
  const DiscoverySimulator sim(small_config());
  const RunResult r1 = sim.run_once(7);
  const RunResult r2 = sim.run_once(7);
  EXPECT_EQ(r1.physical_pairs, r2.physical_pairs);
  EXPECT_EQ(r1.dndp_discovered, r2.dndp_discovered);
  EXPECT_EQ(r1.mndp_recovered, r2.mndp_recovered);
  EXPECT_EQ(r1.compromised_codes, r2.compromised_codes);
  EXPECT_DOUBLE_EQ(r1.latency_dndp_s, r2.latency_dndp_s);
}

TEST(DiscoverySim, DifferentSeedsDiffer) {
  const DiscoverySimulator sim(small_config());
  const RunResult r1 = sim.run_once(1);
  const RunResult r2 = sim.run_once(2);
  EXPECT_NE(r1.dndp_discovered, r2.dndp_discovered);
}

TEST(DiscoverySim, NoAdversaryMatchesSharingProbability) {
  ExperimentConfig cfg = small_config();
  cfg.params.q = 0;
  cfg.jammer = JammerKind::None;
  cfg.params.runs = 5;
  const DiscoverySimulator sim(cfg);
  const PointResult point = sim.run_all();
  const double expected = pr_share_at_least_one(cfg.params);
  EXPECT_NEAR(point.p_dndp.mean(), expected, 0.03);
  // JR-SND dominates D-NDP.
  EXPECT_GE(point.p_jrsnd.mean(), point.p_dndp.mean());
  EXPECT_GT(point.p_jrsnd.mean(), 0.95);
}

TEST(DiscoverySim, ReactiveJammingMatchesTheorem1LowerBound) {
  ExperimentConfig cfg = small_config();
  cfg.params.q = 20;
  cfg.params.runs = 5;
  cfg.jammer = JammerKind::Reactive;
  const DiscoverySimulator sim(cfg);
  const PointResult point = sim.run_all();
  const Theorem1Result bounds = theorem1(cfg.params);
  // Reactive jamming is exactly the P^- regime.
  EXPECT_NEAR(point.p_dndp.mean(), bounds.p_lower, 0.05);
}

TEST(DiscoverySim, RandomJammerBetweenBounds) {
  ExperimentConfig cfg = small_config();
  cfg.params.q = 20;
  cfg.params.runs = 5;
  cfg.jammer = JammerKind::Random;
  const DiscoverySimulator sim(cfg);
  const PointResult point = sim.run_all();
  const Theorem1Result bounds = theorem1(cfg.params);
  EXPECT_GE(point.p_dndp.mean(), bounds.p_lower - 0.05);
  EXPECT_LE(point.p_dndp.mean(), bounds.p_upper + 0.05);
}

TEST(DiscoverySim, ReactiveWorseThanRandomWorseThanClean) {
  ExperimentConfig cfg = small_config();
  cfg.params.q = 25;
  cfg.params.runs = 4;

  cfg.jammer = JammerKind::Reactive;
  const double reactive = DiscoverySimulator(cfg).run_all().p_dndp.mean();
  cfg.jammer = JammerKind::Random;
  const double random_j = DiscoverySimulator(cfg).run_all().p_dndp.mean();
  cfg.jammer = JammerKind::None;
  const double clean = DiscoverySimulator(cfg).run_all().p_dndp.mean();

  EXPECT_LE(reactive, random_j + 0.02);
  EXPECT_LE(random_j, clean + 0.02);
  EXPECT_LT(reactive, clean);
}

TEST(DiscoverySim, MndpRecoversFailedPairs) {
  ExperimentConfig cfg = small_config();
  cfg.params.q = 30;  // push D-NDP down so M-NDP has work
  cfg.params.runs = 3;
  const DiscoverySimulator sim(cfg);
  const PointResult point = sim.run_all();
  EXPECT_GT(point.p_mndp.mean(), 0.0);
  EXPECT_GT(point.p_jrsnd.mean(), point.p_dndp.mean());
}

TEST(DiscoverySim, LargerNuRecoversMore) {
  ExperimentConfig cfg = small_config();
  cfg.params.q = 40;
  cfg.params.runs = 3;
  cfg.params.nu = 2;
  const double p2 = DiscoverySimulator(cfg).run_all().p_mndp.mean();
  cfg.params.nu = 6;
  const double p6 = DiscoverySimulator(cfg).run_all().p_mndp.mean();
  EXPECT_GE(p6, p2);
}

TEST(DiscoverySim, FullMndpEngineAgreesWithGraphClosure) {
  // The protocol-level M-NDP and the graph-level evaluation must agree
  // closely (same logical graph, same reachability semantics).
  ExperimentConfig cfg = small_config();
  cfg.params.n = 150;
  cfg.params.q = 20;
  cfg.params.runs = 2;
  cfg.base_seed = 5;

  cfg.full_mndp = false;
  const PointResult graph = DiscoverySimulator(cfg).run_all();
  cfg.full_mndp = true;
  const PointResult full = DiscoverySimulator(cfg).run_all();

  EXPECT_EQ(graph.p_dndp.count(), full.p_dndp.count());
  EXPECT_NEAR(graph.p_dndp.mean(), full.p_dndp.mean(), 1e-9);  // same D-NDP phase
  // The conditional recovery rate is the discriminating comparison: the
  // graph closure predicts it, the engine executes it.
  EXPECT_NEAR(graph.p_mndp_conditional.mean(), full.p_mndp_conditional.mean(), 0.10);
}

TEST(DiscoverySim, LatencyFieldsAreSane) {
  const DiscoverySimulator sim(small_config());
  const RunResult r = sim.run_once(3);
  EXPECT_GT(r.latency_dndp_s, 0.0);
  EXPECT_GT(r.latency_mndp_s, 0.0);
  EXPECT_GE(r.latency_jrsnd_s, r.latency_dndp_s);
  EXPECT_GE(r.latency_jrsnd_s, r.latency_mndp_s);
  // m = 20 here: identification is fast; everything well under a second.
  EXPECT_LT(r.latency_dndp_s, 1.0);
}

TEST(DiscoverySim, DegreeMatchesDensity) {
  const DiscoverySimulator sim(small_config());
  const RunResult r = sim.run_once(11);
  const double expected = expected_degree(small_config().params);
  EXPECT_NEAR(r.avg_degree, expected, expected * 0.25);
}

TEST(DiscoverySim, RedundancyAblationNeverHelpsTheAttacker) {
  // Naive (no redundancy) D-NDP under random jamming is at most as good.
  ExperimentConfig cfg = small_config();
  cfg.params.q = 30;
  cfg.params.runs = 4;
  cfg.jammer = JammerKind::Random;
  cfg.redundancy = true;
  const double with = DiscoverySimulator(cfg).run_all().p_dndp.mean();
  cfg.redundancy = false;
  const double without = DiscoverySimulator(cfg).run_all().p_dndp.mean();
  EXPECT_GE(with, without - 0.02);
}

}  // namespace
}  // namespace jrsnd::core
