#include <gtest/gtest.h>

#include "adversary/jammer.hpp"
#include "core/discovery_sim.hpp"
#include "predist/authority.hpp"

namespace jrsnd::adversary {
namespace {

TEST(IntelligentJammer, SparesHellosKillsCompromisedFollowups) {
  predist::PredistParams pp;
  pp.node_count = 100;
  pp.codes_per_node = 8;
  pp.holders_per_code = 5;
  pp.code_length_chips = 32;
  const predist::CodePoolAuthority authority(pp, Rng(1));
  Rng rng(2);
  const CompromiseModel compromise(authority.assignment(), 10, rng);
  const IntelligentJammer jammer(compromise);

  const CodeId hot = compromise.compromised_codes().front();
  EXPECT_FALSE(jammer.jams(hot, MessageClass::Hello, rng));
  EXPECT_TRUE(jammer.jams(hot, MessageClass::Followup, rng));
  EXPECT_FALSE(jammer.jams(kInvalidCode, MessageClass::Followup, rng));
  EXPECT_FALSE(jammer.jams(hot, MessageClass::SessionSpread, rng));

  CodeId safe = kInvalidCode;
  for (std::uint32_t c = 0; c < authority.pool_size(); ++c) {
    if (!compromise.is_code_compromised(code_id(c))) {
      safe = code_id(c);
      break;
    }
  }
  ASSERT_NE(safe, kInvalidCode);
  EXPECT_FALSE(jammer.jams(safe, MessageClass::Followup, rng));
}

TEST(IntelligentJammer, RedundancyGapShowsAtNetworkScale) {
  // The paper's §V-B argument, end to end: against the intelligent attack,
  // the redundant D-NDP matches the reactive-jamming floor (survives iff a
  // safe shared code exists) while the naive variant does measurably worse.
  core::ExperimentConfig cfg;
  cfg.params = core::Params::defaults();
  cfg.params.n = 400;
  cfg.params.m = 12;
  cfg.params.l = 20;
  cfg.params.q = 30;
  cfg.params.field_width = 2000.0;
  cfg.params.field_height = 2000.0;
  cfg.params.runs = 4;
  cfg.jammer = core::JammerKind::Intelligent;

  cfg.redundancy = true;
  const double redundant = core::DiscoverySimulator(cfg).run_all().p_dndp.mean();
  cfg.redundancy = false;
  const double naive = core::DiscoverySimulator(cfg).run_all().p_dndp.mean();
  // Expected gap here ~ Pr[x>=2] * P(mixed) * E[compromised fraction] ~ 0.018.
  EXPECT_GT(redundant, naive + 0.01);

  // Redundant + intelligent == reactive floor (both fail exactly when all
  // shared codes are compromised).
  cfg.redundancy = true;
  cfg.jammer = core::JammerKind::Reactive;
  const double reactive = core::DiscoverySimulator(cfg).run_all().p_dndp.mean();
  EXPECT_NEAR(redundant, reactive, 0.02);
}

}  // namespace
}  // namespace jrsnd::adversary
