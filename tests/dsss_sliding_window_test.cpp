#include "dsss/sliding_window.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsss/prepared_codebook.hpp"

namespace jrsnd::dsss {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

struct Scenario {
  BitVector buffer;
  BitVector message;
  std::size_t offset;
};

Scenario make_scenario(Rng& rng, const SpreadCode& code, std::size_t message_bits,
                       std::size_t pad_before, std::size_t pad_after) {
  Scenario s;
  s.message = random_bits(rng, message_bits);
  s.offset = pad_before;
  s.buffer = random_bits(rng, pad_before);
  s.buffer.append(spread(s.message, code));
  s.buffer.append(random_bits(rng, pad_after));
  return s;
}

TEST(SlidingWindow, FindsMessageAtExactOffset) {
  Rng rng(1);
  const SpreadCode code = SpreadCode::random(rng, 256);
  const Scenario s = make_scenario(rng, code, 12, 333, 100);
  const std::vector<SpreadCode> codes = {code};
  const auto hit = find_first_message(s.buffer, codes, 12, 0.3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->chip_offset, 333u);
  EXPECT_EQ(hit->code_index, 0u);
  EXPECT_EQ(hit->message.bits, s.message);
  EXPECT_TRUE(hit->message.erased_bits.empty());
}

TEST(SlidingWindow, FindsMessageAtOffsetZero) {
  Rng rng(2);
  const SpreadCode code = SpreadCode::random(rng, 256);
  const Scenario s = make_scenario(rng, code, 8, 0, 64);
  const std::vector<SpreadCode> codes = {code};
  const auto hit = find_first_message(s.buffer, codes, 8, 0.3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->chip_offset, 0u);
  EXPECT_EQ(hit->message.bits, s.message);
}

TEST(SlidingWindow, IdentifiesWhichCodeWasUsed) {
  Rng rng(3);
  std::vector<SpreadCode> codes;
  for (int i = 0; i < 5; ++i) codes.push_back(SpreadCode::random(rng, 256));
  const Scenario s = make_scenario(rng, codes[3], 10, 128, 64);
  const auto hit = find_first_message(s.buffer, codes, 10, 0.3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->code_index, 3u);
  EXPECT_EQ(hit->message.bits, s.message);
}

TEST(SlidingWindow, ReturnsNulloptWhenNoMessage) {
  Rng rng(4);
  const SpreadCode code = SpreadCode::random(rng, 256);
  const BitVector noise = random_bits(rng, 2000);
  const std::vector<SpreadCode> codes = {code};
  // tau = 0.3 over 256 chips is ~4.8 sigma: noise essentially never syncs.
  EXPECT_FALSE(find_first_message(noise, codes, 6, 0.3).has_value());
}

TEST(SlidingWindow, ReturnsNulloptWhenWrongCode) {
  Rng rng(5);
  const SpreadCode used = SpreadCode::random(rng, 256);
  const SpreadCode scanned = SpreadCode::random(rng, 256);
  const Scenario s = make_scenario(rng, used, 10, 100, 100);
  const std::vector<SpreadCode> codes = {scanned};
  EXPECT_FALSE(find_first_message(s.buffer, codes, 10, 0.3).has_value());
}

TEST(SlidingWindow, BufferTooShortReturnsNullopt) {
  Rng rng(6);
  const SpreadCode code = SpreadCode::random(rng, 256);
  const std::vector<SpreadCode> codes = {code};
  EXPECT_FALSE(find_first_message(BitVector(255), codes, 1, 0.3).has_value());
  EXPECT_FALSE(find_first_message(BitVector(256 * 3 - 1), codes, 3, 0.3).has_value());
}

TEST(SlidingWindow, EmptyCandidatesReturnsNullopt) {
  const BitVector buffer(1000);
  EXPECT_FALSE(find_first_message(buffer, std::span<const SpreadCode>{}, 4, 0.3).has_value());
  EXPECT_FALSE(find_first_message(buffer, PreparedCodebook{}, 4, 0.3).has_value());
}

TEST(SlidingWindow, StartOffsetSkipsEarlierHit) {
  Rng rng(7);
  const SpreadCode code = SpreadCode::random(rng, 128);
  // Two messages back to back; scanning from just before the second one's
  // start must lock onto the second (offsets inside the first message's
  // final bit are non-boundary noise).
  const BitVector msg1 = random_bits(rng, 6);
  const BitVector msg2 = random_bits(rng, 6);
  BitVector buffer = spread(msg1, code);
  const std::size_t second_at = buffer.size();
  buffer.append(spread(msg2, code));
  const std::vector<SpreadCode> codes = {code};
  const auto hit = find_first_message(buffer, codes, 6, 0.3, second_at - 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->chip_offset, second_at);
  EXPECT_EQ(hit->message.bits, msg2);
}

TEST(SlidingWindow, FindAllRecoversMultipleMessages) {
  // The paper notes a buffer may hold HELLOs from several initiators.
  Rng rng(8);
  const SpreadCode code_a = SpreadCode::random(rng, 128);
  const SpreadCode code_b = SpreadCode::random(rng, 128);
  const BitVector msg_a = random_bits(rng, 6);
  const BitVector msg_b = random_bits(rng, 6);

  BitVector buffer = random_bits(rng, 64);
  buffer.append(spread(msg_a, code_a));
  buffer.append(random_bits(rng, 97));
  buffer.append(spread(msg_b, code_b));
  buffer.append(random_bits(rng, 32));

  const std::vector<SpreadCode> codes = {code_a, code_b};
  const auto hits = find_all_messages(buffer, codes, 6, 0.3);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].code_index, 0u);
  EXPECT_EQ(hits[0].message.bits, msg_a);
  EXPECT_EQ(hits[1].code_index, 1u);
  EXPECT_EQ(hits[1].message.bits, msg_b);
}

TEST(SlidingWindow, ScanCorrelationCountFormula) {
  EXPECT_EQ(scan_correlation_count(1000, 10, 256), (1000 - 256 + 1) * 10u);
  EXPECT_EQ(scan_correlation_count(255, 10, 256), 0u);
  EXPECT_EQ(scan_correlation_count(256, 10, 256), 10u);
}

class WindowOffsetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowOffsetSweep, SyncAtAnyOffset) {
  Rng rng(GetParam() * 7 + 1);
  const SpreadCode code = SpreadCode::random(rng, 128);
  const Scenario s = make_scenario(rng, code, 5, GetParam(), 50);
  const std::vector<SpreadCode> codes = {code};
  const auto hit = find_first_message(s.buffer, codes, 5, 0.35);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->chip_offset, GetParam());
  EXPECT_EQ(hit->message.bits, s.message);
}

INSTANTIATE_TEST_SUITE_P(Offsets, WindowOffsetSweep,
                         ::testing::Values(0, 1, 2, 17, 63, 64, 65, 127, 128, 500));

}  // namespace
}  // namespace jrsnd::dsss
