#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace jrsnd {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SizeOneRunsInlineAndInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(50, [&](std::size_t i) { order.push_back(i); });  // no mutex needed: inline
  std::vector<std::size_t> expected(50);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, CountSmallerThanPoolCompletes) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.parallel_for(3, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, WorkerIdsAreStableAndBounded) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> per_worker(4);
  pool.parallel_for(400, [&](std::size_t /*i*/, std::size_t worker) {
    ASSERT_LT(worker, 4u);
    per_worker[worker].fetch_add(1);
  });
  int total = 0;
  for (auto& w : per_worker) total += w.load();
  EXPECT_EQ(total, 400);
}

TEST(ThreadPool, ReusableAcrossInvocations) {
  ThreadPool pool(3);
  for (std::size_t round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(round + 1, [&](std::size_t i) { sum.fetch_add(i + 1); });
    const std::size_t n = round + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDrain) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("boom");
                                   completed.fetch_add(1);
                                 }),
               std::runtime_error);
  // Remaining indices still ran (the failing index is the only casualty).
  EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPool, SerialPathPropagatesExceptionsToo) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(5, [](std::size_t i) { if (i == 2) throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  ASSERT_EQ(setenv("JRSND_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ASSERT_EQ(setenv("JRSND_THREADS", "1", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 1u);
  // Garbage and out-of-range values fall back to hardware concurrency.
  ASSERT_EQ(setenv("JRSND_THREADS", "banana", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(setenv("JRSND_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(setenv("JRSND_THREADS", "100000", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 256u);
  ASSERT_EQ(unsetenv("JRSND_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace jrsnd
