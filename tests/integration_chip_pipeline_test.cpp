// Full physical-layer pipeline: message -> ECC -> spread -> channel (+
// synchronized jamming) -> sliding-window sync -> de-spread (erasure
// marking) -> RS errata decode. These tests validate the claims the
// network-scale jamming model (Theorem 1 / AbstractPhy) is built on.
#include <gtest/gtest.h>

#include "adversary/jammer.hpp"
#include "common/rng.hpp"
#include "dsss/chip_channel.hpp"
#include "dsss/correlator.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spreader.hpp"
#include "ecc/ecc_codec.hpp"

namespace jrsnd {
namespace {

using dsss::ChipChannel;
using dsss::SpreadCode;
using dsss::Transmission;

struct Pipeline {
  double mu = 1.0;
  std::size_t n = 128;       // chips per bit
  double tau = 0.3;
  std::size_t payload_bits = 21;  // HELLO size

  Rng rng{12345};
  ecc::EccCodec codec{mu};

  struct TxResult {
    BitVector received;     // channel output chips
    std::size_t coded_bits; // ECC-coded message length
    std::size_t offset;     // where the message starts
  };

  /// Spreads `payload` with `code`, optionally jammed over `jam_fraction`
  /// of the coded message with `jam_signals` parallel same-code signals.
  TxResult transmit(const BitVector& payload, const SpreadCode& code, double jam_fraction,
                    std::uint32_t jam_signals, double jam_start = 0.25) {
    const BitVector coded = codec.encode(payload);
    const BitVector chips = dsss::spread(coded, code);
    const std::size_t pad = 64 + rng.uniform(n);
    ChipChannel channel(pad + chips.size() + 64);
    channel.add(Transmission{pad, chips});
    for (const auto& tx : adversary::make_chip_jamming(code, pad, coded.size(), jam_fraction,
                                                       jam_signals, rng, jam_start)) {
      channel.add(tx);
    }
    return TxResult{channel.receive(rng), coded.size(), pad};
  }

  /// Receiver: sync-scan with `codes`, despread, errata-decode; retries
  /// past false locks.
  std::optional<BitVector> receive(const TxResult& tx, std::span<const SpreadCode> codes) {
    std::size_t offset = 0;
    while (true) {
      const auto hit = dsss::find_first_message(tx.received, codes, tx.coded_bits, tau, offset);
      if (!hit.has_value()) return std::nullopt;
      const auto decoded =
          codec.decode(hit->message.bits, payload_bits,
                       std::span<const std::size_t>(hit->message.erased_bits));
      if (decoded.has_value()) return decoded;
      offset = hit->chip_offset + 1;
    }
  }

  BitVector random_payload() {
    BitVector v(payload_bits);
    for (std::size_t i = 0; i < payload_bits; ++i) v.set(i, rng.bernoulli(0.5));
    return v;
  }
};

TEST(ChipPipeline, CleanChannelEndToEnd) {
  Pipeline p;
  const SpreadCode code = SpreadCode::random(p.rng, p.n);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVector payload = p.random_payload();
    const auto tx = p.transmit(payload, code, 0.0, 0);
    const std::vector<SpreadCode> codes = {code};
    const auto decoded = p.receive(tx, codes);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(ChipPipeline, ReceiverWithManyCodesStillSyncs) {
  // The D-NDP receiver scans with its whole code set; the right one wins.
  Pipeline p;
  std::vector<SpreadCode> codebook;
  for (int i = 0; i < 10; ++i) codebook.push_back(SpreadCode::random(p.rng, p.n));
  const BitVector payload = p.random_payload();
  const auto tx = p.transmit(payload, codebook[7], 0.0, 0);
  const auto decoded = p.receive(tx, codebook);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(ChipPipeline, ReactiveSameCodeJammingDefeatsDecoding) {
  // A reactive jammer identifies the code during the first quarter of the
  // message and overwrites the remaining 75% with two parallel signals:
  // far beyond the RS error capability, so decoding must fail.
  Pipeline p;
  const SpreadCode code = SpreadCode::random(p.rng, p.n);
  int decoded_ok = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const BitVector payload = p.random_payload();
    const auto tx = p.transmit(payload, code, 0.75, 2, 0.25);
    const std::vector<SpreadCode> codes = {code};
    const auto decoded = p.receive(tx, codes);
    if (decoded.has_value() && *decoded == payload) ++decoded_ok;
  }
  EXPECT_EQ(decoded_ok, 0);
}

TEST(ChipPipeline, PartialJammingBelowToleranceIsSurvived) {
  // Equal-power same-code jamming of 30% of the message: roughly half the
  // covered bits erase, well within the mu/(1+mu) = 50% tolerance.
  Pipeline p;
  const SpreadCode code = SpreadCode::random(p.rng, p.n);
  int survived = 0;
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    const BitVector payload = p.random_payload();
    const auto tx = p.transmit(payload, code, 0.3, 1, 0.3);
    const std::vector<SpreadCode> codes = {code};
    const auto decoded = p.receive(tx, codes);
    if (decoded.has_value() && *decoded == payload) ++survived;
  }
  EXPECT_GE(survived, kTrials - 2);
}

TEST(ChipPipeline, WrongCodeJammingIsHarmless) {
  // The paper's premise: without the correct spread code the jammer's
  // signal is uncorrelated noise the de-spreader suppresses.
  Pipeline p;
  const SpreadCode code = SpreadCode::random(p.rng, p.n);
  const SpreadCode wrong = SpreadCode::random(p.rng, p.n);
  int survived = 0;
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    const BitVector payload = p.random_payload();
    // Jam with the WRONG code at equal power, full coverage. (A jammer can
    // always win with overwhelming power — that is exactly the z << N
    // constraint of the adversary model; here power is matched.)
    const BitVector coded = p.codec.encode(payload);
    const BitVector chips = dsss::spread(coded, code);
    const std::size_t pad = 100;
    ChipChannel channel(pad + chips.size() + 64);
    channel.add(Transmission{pad, chips});
    for (const auto& tx :
         adversary::make_chip_jamming(wrong, pad, coded.size(), 1.0, 1, p.rng, 0.0)) {
      channel.add(tx);
    }
    const Pipeline::TxResult tx{channel.receive(p.rng), coded.size(), pad};
    const std::vector<SpreadCode> codes = {code};
    const auto decoded = p.receive(tx, codes);
    if (decoded.has_value() && *decoded == payload) ++survived;
  }
  // Equal-power uncorrelated interference halves the correlation magnitude
  // (agreeing chips survive, disagreeing chips become coin flips); with
  // tau = 0.3 and ECC the message survives.
  EXPECT_GE(survived, kTrials - 4);
}

TEST(ChipPipeline, EavesdropperWithoutCodeRecoversNothing) {
  Pipeline p;
  const SpreadCode code = SpreadCode::random(p.rng, p.n);
  const BitVector payload = p.random_payload();
  const auto tx = p.transmit(payload, code, 0.0, 0);
  std::vector<SpreadCode> guesses;
  for (int i = 0; i < 20; ++i) guesses.push_back(SpreadCode::random(p.rng, p.n));
  EXPECT_FALSE(p.receive(tx, guesses).has_value());
}

TEST(ChipPipeline, JammingAtExactlyToleranceBoundary) {
  // Sweep coverage around mu/(1+mu): far below -> survive, far above with
  // overwhelming power -> fail. (At the boundary behaviour is stochastic.)
  Pipeline p;
  const SpreadCode code = SpreadCode::random(p.rng, p.n);
  int low_survived = 0;
  int high_survived = 0;
  constexpr int kTrials = 15;
  for (int t = 0; t < kTrials; ++t) {
    const BitVector payload = p.random_payload();
    const std::vector<SpreadCode> codes = {code};
    // Equal-power (erasure-producing) jamming: RS(6,3) per HELLO tolerates
    // 3 erased symbols. 20% coverage erases ~2 symbols -> survive; 75%
    // coverage erases ~5 -> fail.
    const auto low = p.receive(p.transmit(payload, code, 0.2, 1, 0.25), codes);
    low_survived += low.has_value() && *low == payload;
    const auto high = p.receive(p.transmit(payload, code, 0.75, 1, 0.25), codes);
    high_survived += high.has_value() && *high == payload;
  }
  EXPECT_GE(low_survived, kTrials - 2);
  EXPECT_EQ(high_survived, 0);
}


class PipelineNSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineNSweep, CleanRoundTripAtEveryCodeLength) {
  // The full stack must work for any practical N with tau scaled to the
  // code length's noise floor (~4.2 sigma keeps false sync negligible even
  // for short codes).
  Pipeline p;
  p.n = GetParam();
  p.tau = dsss::recommended_tau(p.n, 4.2);
  const SpreadCode code = SpreadCode::random(p.rng, p.n);
  for (int trial = 0; trial < 5; ++trial) {
    const BitVector payload = p.random_payload();
    const auto tx = p.transmit(payload, code, 0.0, 0);
    const std::vector<SpreadCode> codes = {code};
    const auto decoded = p.receive(tx, codes);
    ASSERT_TRUE(decoded.has_value()) << "N=" << p.n << " trial=" << trial;
    EXPECT_EQ(*decoded, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Ns, PipelineNSweep, ::testing::Values(32, 64, 128, 256, 512));

}  // namespace
}  // namespace jrsnd
