#include "ecc/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace jrsnd::ecc {
namespace {

std::vector<std::uint8_t> random_data(Rng& rng, int k) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(k));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  return data;
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(10, 10), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(10, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(256, 100), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(5, 7), std::invalid_argument);
}

TEST(ReedSolomon, EncodeIsSystematic) {
  const ReedSolomon rs(15, 9);
  Rng rng(1);
  const auto data = random_data(rng, 9);
  const auto cw = rs.encode(data);
  ASSERT_EQ(cw.size(), 15u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), cw.begin()));
}

TEST(ReedSolomon, CleanCodewordDecodes) {
  const ReedSolomon rs(20, 12);
  Rng rng(2);
  const auto data = random_data(rng, 12);
  const auto decoded = rs.decode(rs.encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, CorrectsMaximumErrors) {
  // RS(n, k) corrects up to (n-k)/2 errors: 4 for RS(20, 12).
  const ReedSolomon rs(20, 12);
  Rng rng(3);
  const auto data = random_data(rng, 12);
  auto cw = rs.encode(data);
  for (const int pos : {0, 5, 13, 19}) cw[static_cast<std::size_t>(pos)] ^= 0xa7;
  const auto decoded = rs.decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, DetectsTooManyErrors) {
  const ReedSolomon rs(20, 12);
  Rng rng(4);
  const auto data = random_data(rng, 12);
  int failures = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto cw = rs.encode(data);
    // 5 errors > capacity 4: decoder must fail or miscorrect — and with the
    // syndrome re-check, silently wrong output must never be returned as
    // the original.
    const auto positions = rng.sample_without_replacement(20, 5);
    for (const auto pos : positions) cw[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    const auto decoded = rs.decode(cw);
    if (!decoded.has_value() || *decoded != data) ++failures;
  }
  // Nearly all trials must not silently return a *wrong* answer equal to
  // data; in fact decoding to the original is impossible with 5 fresh
  // errors unless they land on a nearby codeword. Expect failure/detection
  // in the vast majority of trials.
  EXPECT_GE(failures, 48);
}

TEST(ReedSolomon, CorrectsMaximumErasures) {
  // Erasure-only capacity is n - k: 8 for RS(20, 12).
  const ReedSolomon rs(20, 12);
  Rng rng(5);
  const auto data = random_data(rng, 12);
  auto cw = rs.encode(data);
  const std::vector<int> erasures = {0, 3, 6, 9, 12, 15, 18, 19};
  for (const int pos : erasures) cw[static_cast<std::size_t>(pos)] = 0xee;  // garbage
  const auto decoded = rs.decode(cw, erasures);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, FailsBeyondErasureCapacity) {
  const ReedSolomon rs(20, 12);
  Rng rng(6);
  const auto data = random_data(rng, 12);
  auto cw = rs.encode(data);
  std::vector<int> erasures;
  for (int i = 0; i < 9; ++i) erasures.push_back(i);  // 9 > 8
  for (const int pos : erasures) cw[static_cast<std::size_t>(pos)] ^= 0x55;
  EXPECT_FALSE(rs.decode(cw, erasures).has_value());
}

TEST(ReedSolomon, MixedErrorsAndErasuresWithinCapacity) {
  // 2e + f <= n - k: RS(24, 12) tolerates e.g. e = 3, f = 6.
  const ReedSolomon rs(24, 12);
  Rng rng(7);
  const auto data = random_data(rng, 12);
  auto cw = rs.encode(data);
  const std::vector<int> erasures = {1, 4, 8, 11, 16, 22};
  for (const int pos : erasures) cw[static_cast<std::size_t>(pos)] = 0;
  for (const int pos : {2, 9, 20}) cw[static_cast<std::size_t>(pos)] ^= 0x3c;
  const auto decoded = rs.decode(cw, erasures);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, ErasurePositionsOutOfRangeRejected) {
  const ReedSolomon rs(10, 5);
  Rng rng(8);
  const auto cw = rs.encode(random_data(rng, 5));
  const std::vector<int> bad = {10};
  EXPECT_FALSE(rs.decode(cw, bad).has_value());
  const std::vector<int> negative = {-1};
  EXPECT_FALSE(rs.decode(cw, negative).has_value());
}

TEST(ReedSolomon, DuplicateErasuresCountOnce) {
  const ReedSolomon rs(12, 8);
  Rng rng(9);
  const auto data = random_data(rng, 8);
  auto cw = rs.encode(data);
  cw[3] = 0;
  const std::vector<int> dup = {3, 3, 3, 3, 3};
  const auto decoded = rs.decode(cw, dup);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, WrongLengthRejected) {
  const ReedSolomon rs(12, 8);
  const std::vector<std::uint8_t> short_word(11, 0);
  EXPECT_FALSE(rs.decode(short_word).has_value());
}

TEST(ReedSolomon, Rate1Over2ToleratesHalfErasures) {
  // The paper's mu = 1 configuration: k/n = 1/2 tolerates 50% erasures.
  const ReedSolomon rs(64, 32);
  Rng rng(10);
  const auto data = random_data(rng, 32);
  auto cw = rs.encode(data);
  std::vector<int> erasures;
  for (int i = 0; i < 32; ++i) {
    erasures.push_back(2 * i);  // every other symbol
    cw[static_cast<std::size_t>(2 * i)] = static_cast<std::uint8_t>(rng.uniform(256));
  }
  const auto decoded = rs.decode(cw, erasures);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, ContiguousBurstErasure) {
  // Burst covering the first n-k symbols — the jammer's contiguous strike.
  const ReedSolomon rs(40, 20);
  Rng rng(11);
  const auto data = random_data(rng, 20);
  auto cw = rs.encode(data);
  std::vector<int> erasures;
  for (int i = 0; i < 20; ++i) {
    erasures.push_back(i);
    cw[static_cast<std::size_t>(i)] = 0;
  }
  const auto decoded = rs.decode(cw, erasures);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}


TEST(ReedSolomon, CodeIsLinear) {
  // RS is a linear code: encode(a) XOR encode(b) == encode(a XOR b).
  const ReedSolomon rs(20, 12);
  Rng rng(20);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = random_data(rng, 12);
    const auto b = random_data(rng, 12);
    std::vector<std::uint8_t> sum(12);
    for (int i = 0; i < 12; ++i) sum[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(a[static_cast<std::size_t>(i)] ^
                                  b[static_cast<std::size_t>(i)]);
    const auto ca = rs.encode(a);
    const auto cb = rs.encode(b);
    const auto csum = rs.encode(sum);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(csum[static_cast<std::size_t>(i)],
                ca[static_cast<std::size_t>(i)] ^ cb[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(ReedSolomon, ZeroMessageEncodesToZeroCodeword) {
  const ReedSolomon rs(20, 12);
  const std::vector<std::uint8_t> zero(12, 0);
  for (const auto sym : rs.encode(zero)) EXPECT_EQ(sym, 0);
}

TEST(ReedSolomon, MinimumDistanceIsSingleton) {
  // MDS property d = n - k + 1: any nonzero message yields a codeword of
  // weight >= n - k + 1. Spot-check with single-symbol messages.
  const ReedSolomon rs(15, 9);
  for (int value = 1; value < 256; value += 37) {
    std::vector<std::uint8_t> msg(9, 0);
    msg[4] = static_cast<std::uint8_t>(value);
    const auto cw = rs.encode(msg);
    int weight = 0;
    for (const auto sym : cw) weight += sym != 0;
    EXPECT_GE(weight, 15 - 9 + 1) << "value=" << value;
  }
}

TEST(ReedSolomon, EveryCodewordHasZeroSyndromes) {
  // decode() of a clean codeword must return without correction for many
  // random messages (syndrome check is the codeword-membership test).
  const ReedSolomon rs(31, 17);
  Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    const auto data = random_data(rng, 17);
    const auto decoded = rs.decode(rs.encode(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(ReedSolomon, EncodeIntoMatchesEncode) {
  const ReedSolomon rs(40, 20);
  Rng rng(30);
  std::vector<std::uint8_t> out;
  for (int trial = 0; trial < 20; ++trial) {
    const auto data = random_data(rng, 20);
    rs.encode_into(data, out);
    EXPECT_EQ(out, rs.encode(data));
  }
}

TEST(ReedSolomon, FuzzEarlyExitEqualsFullDecode) {
  // The all-zero-syndrome early exit must be an exact shortcut: on every
  // random word — clean, corrupted, or erasure-marked — kAuto, kForceFull
  // and the allocating decode() must agree on both success and payload.
  Rng rng(31);
  const std::vector<std::pair<int, int>> shapes = {{15, 9}, {20, 12}, {64, 32}};
  for (const auto& [n, k] : shapes) {
    const ReedSolomon rs(n, k);
    ReedSolomon::DecodeScratch scratch;
    std::vector<std::uint8_t> auto_out;
    std::vector<std::uint8_t> full_out;
    for (int trial = 0; trial < 200; ++trial) {
      const auto data = random_data(rng, k);
      auto cw = rs.encode(data);

      // 0..n-k+2 random errors (sometimes beyond capacity — failure must
      // agree too) plus 0..3 erasure marks, sometimes on clean positions.
      std::vector<int> erasures;
      const auto errors = static_cast<std::uint32_t>(rng.uniform(
          static_cast<std::uint64_t>(n - k + 3)));
      if (errors > 0) {
        for (const auto pos :
             rng.sample_without_replacement(static_cast<std::uint32_t>(n), errors)) {
          cw[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
          if (rng.bernoulli(0.5)) erasures.push_back(static_cast<int>(pos));
        }
      }
      for (std::uint64_t extra = rng.uniform(4); extra > 0; --extra) {
        erasures.push_back(static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n))));
      }

      const bool ok_auto = rs.decode_into(cw, erasures, auto_out, scratch);
      const bool ok_full = rs.decode_into(cw, erasures, full_out, scratch,
                                          ReedSolomon::DecodeMode::kForceFull);
      const auto reference = rs.decode(cw, erasures);
      ASSERT_EQ(ok_auto, reference.has_value()) << "n=" << n << " trial=" << trial;
      ASSERT_EQ(ok_full, reference.has_value()) << "n=" << n << " trial=" << trial;
      if (reference.has_value()) {
        EXPECT_EQ(auto_out, *reference);
        EXPECT_EQ(full_out, *reference);
      }
    }
  }
}

TEST(ReedSolomon, ForceFullOnCleanCodewordDecodes) {
  // A clean word through the full Sugiyama/Chien/Forney pipeline: the error
  // locator degenerates to lambda = {1} and the decoder must still succeed.
  const ReedSolomon rs(20, 12);
  Rng rng(32);
  ReedSolomon::DecodeScratch scratch;
  std::vector<std::uint8_t> out;
  const auto data = random_data(rng, 12);
  ASSERT_TRUE(rs.decode_into(rs.encode(data), {}, out, scratch,
                             ReedSolomon::DecodeMode::kForceFull));
  EXPECT_EQ(out, data);
}

struct RsParams {
  int n;
  int k;
};

class RsRoundTripSweep : public ::testing::TestWithParam<RsParams> {};

TEST_P(RsRoundTripSweep, RandomErrorsAtHalfCapacity) {
  const auto [n, k] = GetParam();
  const ReedSolomon rs(n, k);
  Rng rng(static_cast<std::uint64_t>(n * 1000 + k));
  for (int trial = 0; trial < 10; ++trial) {
    const auto data = random_data(rng, k);
    auto cw = rs.encode(data);
    const auto e = static_cast<std::uint32_t>((n - k) / 2);
    const auto positions = rng.sample_without_replacement(static_cast<std::uint32_t>(n), e);
    for (const auto pos : positions) cw[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    const auto decoded = rs.decode(cw);
    ASSERT_TRUE(decoded.has_value()) << "n=" << n << " k=" << k << " trial=" << trial;
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsRoundTripSweep,
                         ::testing::Values(RsParams{6, 3}, RsParams{15, 11}, RsParams{32, 16},
                                           RsParams{63, 21}, RsParams{128, 64},
                                           RsParams{255, 127}, RsParams{255, 223}));

}  // namespace
}  // namespace jrsnd::ecc
