#include "adversary/compromise.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/math_util.hpp"
#include "predist/authority.hpp"

namespace jrsnd::adversary {
namespace {

predist::CodePoolAuthority make_authority(std::uint64_t seed) {
  predist::PredistParams p;
  p.node_count = 200;
  p.codes_per_node = 10;
  p.holders_per_code = 8;
  p.code_length_chips = 32;
  return predist::CodePoolAuthority(p, Rng(seed));
}

TEST(Compromise, ExactlyQNodesCompromised) {
  const auto authority = make_authority(1);
  Rng rng(2);
  const CompromiseModel model(authority.assignment(), 15, rng);
  EXPECT_EQ(model.compromised_node_count(), 15u);
  EXPECT_EQ(model.compromised_nodes().size(), 15u);
}

TEST(Compromise, ZeroCompromiseLeaksNothing) {
  const auto authority = make_authority(2);
  Rng rng(3);
  const CompromiseModel model(authority.assignment(), 0, rng);
  EXPECT_EQ(model.compromised_node_count(), 0u);
  EXPECT_EQ(model.compromised_code_count(), 0u);
  EXPECT_FALSE(model.is_node_compromised(node_id(0)));
  EXPECT_FALSE(model.is_code_compromised(code_id(0)));
}

TEST(Compromise, QExceedingNThrows) {
  const auto authority = make_authority(3);
  Rng rng(4);
  EXPECT_THROW(CompromiseModel(authority.assignment(), 201, rng), std::invalid_argument);
}

TEST(Compromise, CompromisedCodesAreUnionOfCapturedSets) {
  const auto authority = make_authority(4);
  Rng rng(5);
  const CompromiseModel model(authority.assignment(), 5, rng);
  // Every code held by a compromised node must be compromised...
  for (const NodeId node : model.compromised_nodes()) {
    for (const CodeId code : authority.assignment().codes_of(node)) {
      EXPECT_TRUE(model.is_code_compromised(code));
    }
  }
  // ...and every compromised code must trace back to a compromised holder.
  for (const CodeId code : model.compromised_codes()) {
    bool held = false;
    for (const NodeId holder : authority.assignment().holders_of(code)) {
      held |= model.is_node_compromised(holder);
    }
    EXPECT_TRUE(held);
  }
}

TEST(Compromise, FullCompromiseLeaksEverything) {
  const auto authority = make_authority(5);
  Rng rng(6);
  const CompromiseModel model(authority.assignment(), 200, rng);
  EXPECT_EQ(model.compromised_code_count(), authority.pool_size());
}

TEST(Compromise, CodeCountMatchesEq2Expectation) {
  // Average c over trials should approach s * alpha (Eq. 2).
  const auto authority = make_authority(6);
  const std::uint32_t q = 20;
  const double alpha = code_compromise_probability(200, 8, q);
  const double expected = static_cast<double>(authority.pool_size()) * alpha;
  double total = 0.0;
  constexpr int kTrials = 50;
  Rng rng(7);
  for (int t = 0; t < kTrials; ++t) {
    const CompromiseModel model(authority.assignment(), q, rng);
    total += static_cast<double>(model.compromised_code_count());
  }
  EXPECT_NEAR(total / kTrials, expected, expected * 0.05);
}

TEST(Compromise, DeterministicGivenRngState) {
  const auto authority = make_authority(7);
  Rng rng1(8);
  Rng rng2(8);
  const CompromiseModel m1(authority.assignment(), 10, rng1);
  const CompromiseModel m2(authority.assignment(), 10, rng2);
  EXPECT_EQ(m1.compromised_nodes(), m2.compromised_nodes());
  EXPECT_EQ(m1.compromised_codes(), m2.compromised_codes());
}

}  // namespace
}  // namespace jrsnd::adversary
