#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace jrsnd::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 0.0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimePoint(3.0), [&] { order.push_back(3); });
  q.schedule_at(TimePoint(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint(2.0), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().seconds(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(TimePoint(1.0), [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(TimePoint(5.0), [&] {
    q.schedule_after(seconds(2.0), [&] { fired_at = q.now().seconds(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(TimePoint(5.0), [] {});
  q.run();
  EXPECT_THROW((void)q.schedule_at(TimePoint(4.0), [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto h = q.schedule_at(TimePoint(1.0), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(h));
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto h = q.schedule_at(TimePoint(1.0), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelInvalidHandleFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelAfterExecutionFails) {
  EventQueue q;
  const auto h = q.schedule_at(TimePoint(1.0), [] {});
  q.run();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, RunWithLimitStopsEarly) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(TimePoint(i), [&] { ++count; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  EXPECT_EQ(q.run_until(TimePoint(10.0)), 0u);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 10.0);
}

TEST(EventQueue, RunUntilExecutesOnlyDueEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimePoint(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint(5.0), [&] { order.push_back(5); });
  q.schedule_at(TimePoint(9.0), [&] { order.push_back(9); });
  EXPECT_EQ(q.run_until(TimePoint(5.0)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
  EXPECT_DOUBLE_EQ(q.now().seconds(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) q.schedule_after(seconds(1.0), recur);
  };
  q.schedule_at(TimePoint(0.0), recur);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 4.0);
}

TEST(EventQueue, PendingTracksCancellations) {
  EventQueue q;
  const auto h1 = q.schedule_at(TimePoint(1.0), [] {});
  q.schedule_at(TimePoint(2.0), [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(q.pending(), 0u);
}

// Slab-reuse regression: after an event runs or is cancelled, its slot is
// recycled for the next schedule with a bumped generation. The stale handle
// must never cancel the newer event occupying the same slot.
TEST(EventQueue, StaleHandleNeverCancelsReusedSlot) {
  EventQueue q;
  bool first_fired = false;
  const auto stale = q.schedule_at(TimePoint(1.0), [&] { first_fired = true; });
  q.run();
  EXPECT_TRUE(first_fired);
  // A single-slot slab guarantees the next schedule reuses the slot.
  bool second_fired = false;
  const auto fresh = q.schedule_at(TimePoint(2.0), [&] { second_fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(q.cancel(stale));  // stale handle must not hit the new event
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_TRUE(second_fired);

  // Same property through a cancel (not a run) recycling the slot.
  const auto cancelled = q.schedule_at(TimePoint(3.0), [] {});
  EXPECT_TRUE(q.cancel(cancelled));
  bool third_fired = false;
  q.schedule_at(TimePoint(3.0), [&] { third_fired = true; });
  EXPECT_FALSE(q.cancel(cancelled));
  q.run();
  EXPECT_TRUE(third_fired);
}

// Many generations of the same slot: every stale handle stays dead, every
// live handle cancels exactly once, and pending() is exact throughout.
TEST(EventQueue, PendingExactThroughSlotChurn) {
  EventQueue q;
  std::vector<EventQueue::EventHandle> dead;
  int fired = 0;
  for (int round = 0; round < 50; ++round) {
    const auto h1 = q.schedule_after(seconds(1.0), [&] { ++fired; });
    const auto h2 = q.schedule_after(seconds(2.0), [&] { ++fired; });
    EXPECT_EQ(q.pending(), 2u) << "round " << round;
    if (round % 3 == 0) {
      EXPECT_TRUE(q.cancel(h2));
      EXPECT_EQ(q.pending(), 1u);
      dead.push_back(h2);
    }
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
    dead.push_back(h1);
    for (const auto h : dead) EXPECT_FALSE(q.cancel(h)) << "round " << round;
  }
  EXPECT_EQ(fired, 50 * 2 - 17);  // rounds 0,3,...,48 cancelled one each
}

// run_until must not let cancelled heap entries satisfy the time cutoff or
// the executed count — only live events are visible through it.
TEST(EventQueue, RunUntilSkipsCancelledEntries) {
  EventQueue q;
  std::vector<int> order;
  const auto h = q.schedule_at(TimePoint(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint(2.0), [&] { order.push_back(2); });
  q.schedule_at(TimePoint(8.0), [&] { order.push_back(8); });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.run_until(TimePoint(5.0)), 1u);
  EXPECT_EQ(order, std::vector<int>{2});
  EXPECT_DOUBLE_EQ(q.now().seconds(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, LargeCallbackFallsBackToHeapAndStillRuns) {
  EventQueue q;
  // Capture more than the 48-byte inline budget to force the heap path.
  std::array<std::uint64_t, 16> payload{};
  payload.fill(7);
  std::uint64_t sum = 0;
  q.schedule_at(TimePoint(1.0), [payload, &sum] {
    for (const auto v : payload) sum += v;
  });
  q.run();
  EXPECT_EQ(sum, 7u * 16u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  int executed = 0;
  std::vector<EventQueue::EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule_at(TimePoint(i), [&] { ++executed; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  q.run();
  EXPECT_EQ(executed, 50);
}

}  // namespace
}  // namespace jrsnd::sim
