#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace jrsnd::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 0.0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimePoint(3.0), [&] { order.push_back(3); });
  q.schedule_at(TimePoint(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint(2.0), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().seconds(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(TimePoint(1.0), [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(TimePoint(5.0), [&] {
    q.schedule_after(seconds(2.0), [&] { fired_at = q.now().seconds(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(TimePoint(5.0), [] {});
  q.run();
  EXPECT_THROW((void)q.schedule_at(TimePoint(4.0), [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto h = q.schedule_at(TimePoint(1.0), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(h));
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto h = q.schedule_at(TimePoint(1.0), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelInvalidHandleFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelAfterExecutionFails) {
  EventQueue q;
  const auto h = q.schedule_at(TimePoint(1.0), [] {});
  q.run();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, RunWithLimitStopsEarly) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(TimePoint(i), [&] { ++count; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  EXPECT_EQ(q.run_until(TimePoint(10.0)), 0u);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 10.0);
}

TEST(EventQueue, RunUntilExecutesOnlyDueEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimePoint(1.0), [&] { order.push_back(1); });
  q.schedule_at(TimePoint(5.0), [&] { order.push_back(5); });
  q.schedule_at(TimePoint(9.0), [&] { order.push_back(9); });
  EXPECT_EQ(q.run_until(TimePoint(5.0)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
  EXPECT_DOUBLE_EQ(q.now().seconds(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) q.schedule_after(seconds(1.0), recur);
  };
  q.schedule_at(TimePoint(0.0), recur);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 4.0);
}

TEST(EventQueue, PendingTracksCancellations) {
  EventQueue q;
  const auto h1 = q.schedule_at(TimePoint(1.0), [] {});
  q.schedule_at(TimePoint(2.0), [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  int executed = 0;
  std::vector<EventQueue::EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule_at(TimePoint(i), [&] { ++executed; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  q.run();
  EXPECT_EQ(executed, 50);
}

}  // namespace
}  // namespace jrsnd::sim
