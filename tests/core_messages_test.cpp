#include "core/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/ibc.hpp"

namespace jrsnd::core {
namespace {

WireConfig paper_wire() { return WireConfig{}; }  // Table I defaults

BitVector nonce20(Rng& rng) {
  BitVector v(20);
  for (std::size_t i = 0; i < 20; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(HelloMessage, RoundTrip) {
  const WireConfig cfg = paper_wire();
  const HelloMessage msg{node_id(1234)};
  const BitVector bits = msg.encode(cfg);
  EXPECT_EQ(bits.size(), HelloMessage::payload_bits(cfg));
  EXPECT_EQ(bits.size(), 21u);  // l_t + l_id
  const auto decoded = HelloMessage::decode(bits, cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, node_id(1234));
  EXPECT_EQ(peek_type(bits, cfg), MessageType::Hello);
}

TEST(HelloMessage, RejectsWrongType) {
  const WireConfig cfg = paper_wire();
  const ConfirmMessage confirm{node_id(5)};
  EXPECT_FALSE(HelloMessage::decode(confirm.encode(cfg), cfg).has_value());
}

TEST(HelloMessage, RejectsTruncatedAndPadded) {
  const WireConfig cfg = paper_wire();
  const BitVector bits = HelloMessage{node_id(9)}.encode(cfg);
  EXPECT_FALSE(HelloMessage::decode(bits.slice(0, 20), cfg).has_value());
  BitVector padded = bits;
  padded.push_back(false);
  EXPECT_FALSE(HelloMessage::decode(padded, cfg).has_value());
}

TEST(ConfirmMessage, RoundTrip) {
  const WireConfig cfg = paper_wire();
  const ConfirmMessage msg{node_id(77)};
  const auto decoded = ConfirmMessage::decode(msg.encode(cfg), cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, node_id(77));
}

TEST(AuthMessage, RoundTripAndVerify) {
  const WireConfig cfg = paper_wire();
  Rng rng(1);
  crypto::SymmetricKey key;
  key.fill(0x42);
  const AuthMessage msg = AuthMessage::make(node_id(3), nonce20(rng), key, cfg);
  const BitVector bits = msg.encode(cfg);
  EXPECT_EQ(bits.size(), AuthMessage::payload_bits(cfg));
  EXPECT_EQ(bits.size(), 5u + 16u + 20u + 160u);
  const auto decoded = AuthMessage::decode(bits, cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, node_id(3));
  EXPECT_EQ(decoded->nonce, msg.nonce);
  EXPECT_TRUE(decoded->verify(key, cfg));
}

TEST(AuthMessage, VerifyFailsWithWrongKey) {
  const WireConfig cfg = paper_wire();
  Rng rng(2);
  crypto::SymmetricKey key;
  key.fill(0x42);
  crypto::SymmetricKey other;
  other.fill(0x43);
  const AuthMessage msg = AuthMessage::make(node_id(3), nonce20(rng), key, cfg);
  const auto decoded = AuthMessage::decode(msg.encode(cfg), cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->verify(other, cfg));
}

TEST(AuthMessage, VerifyFailsOnTamperedNonce) {
  const WireConfig cfg = paper_wire();
  Rng rng(3);
  crypto::SymmetricKey key;
  key.fill(0x01);
  const AuthMessage msg = AuthMessage::make(node_id(3), nonce20(rng), key, cfg);
  BitVector bits = msg.encode(cfg);
  bits.flip(cfg.l_t + cfg.l_id + 2);  // a nonce bit
  const auto decoded = AuthMessage::decode(bits, cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->verify(key, cfg));
}

TEST(AuthMessage, VerifyFailsOnTamperedSenderId) {
  // Replay-protection: the MAC binds the claimed identity.
  const WireConfig cfg = paper_wire();
  Rng rng(4);
  crypto::SymmetricKey key;
  key.fill(0x01);
  const AuthMessage msg = AuthMessage::make(node_id(3), nonce20(rng), key, cfg);
  BitVector bits = msg.encode(cfg);
  bits.flip(cfg.l_t);  // an ID bit
  const auto decoded = AuthMessage::decode(bits, cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->verify(key, cfg));
}

MndpRequest make_request(Rng& rng, const crypto::IbcAuthority& authority) {
  MndpRequest req;
  req.source = node_id(1);
  req.source_neighbors = {node_id(2), node_id(3), node_id(9)};
  req.nonce = nonce20(rng);
  req.nu = 3;
  req.source_signature =
      authority.issue(node_id(1)).sign(req.source_sign_input(WireConfig{}));
  return req;
}

TEST(MndpRequest, RoundTripNoHops) {
  const WireConfig cfg = paper_wire();
  Rng rng(5);
  const crypto::IbcAuthority authority(9);
  const MndpRequest req = make_request(rng, authority);
  const auto decoded = MndpRequest::decode(req.encode(cfg), cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source, req.source);
  EXPECT_EQ(decoded->source_neighbors, req.source_neighbors);
  EXPECT_EQ(decoded->nonce, req.nonce);
  EXPECT_EQ(decoded->nu, 3u);
  EXPECT_TRUE(decoded->hops.empty());
  EXPECT_EQ(decoded->hops_traversed(), 1u);
  // Signature survives the wire and verifies.
  EXPECT_TRUE(authority.oracle()->verify(node_id(1), decoded->source_sign_input(cfg),
                                         decoded->source_signature));
}

TEST(MndpRequest, RoundTripWithHops) {
  const WireConfig cfg = paper_wire();
  Rng rng(6);
  const crypto::IbcAuthority authority(10);
  MndpRequest req = make_request(rng, authority);

  HopRecord hop;
  hop.id = node_id(2);
  hop.neighbors = {node_id(1), node_id(7), node_id(8)};
  req.hops.push_back(hop);
  req.hops.back().signature = authority.issue(node_id(2)).sign(req.hop_sign_input(0, cfg));

  const auto decoded = MndpRequest::decode(req.encode(cfg), cfg);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->hops.size(), 1u);
  EXPECT_EQ(decoded->hops[0].id, node_id(2));
  EXPECT_EQ(decoded->hops[0].neighbors, hop.neighbors);
  EXPECT_EQ(decoded->hops_traversed(), 2u);
  EXPECT_TRUE(authority.oracle()->verify(node_id(2), decoded->hop_sign_input(0, cfg),
                                         decoded->hops[0].signature));
}

TEST(MndpRequest, SignatureBreaksWhenListTampered) {
  const WireConfig cfg = paper_wire();
  Rng rng(7);
  const crypto::IbcAuthority authority(11);
  const MndpRequest req = make_request(rng, authority);
  auto decoded = MndpRequest::decode(req.encode(cfg), cfg);
  ASSERT_TRUE(decoded.has_value());
  decoded->source_neighbors.push_back(node_id(666));  // inject a neighbor
  EXPECT_FALSE(authority.oracle()->verify(node_id(1), decoded->source_sign_input(cfg),
                                          decoded->source_signature));
}

TEST(MndpRequest, EmptyNeighborListEncodes) {
  const WireConfig cfg = paper_wire();
  Rng rng(8);
  const crypto::IbcAuthority authority(12);
  MndpRequest req;
  req.source = node_id(4);
  req.nonce = nonce20(rng);
  req.nu = 1;
  req.source_signature = authority.issue(node_id(4)).sign(req.source_sign_input(cfg));
  const auto decoded = MndpRequest::decode(req.encode(cfg), cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->source_neighbors.empty());
}

TEST(MndpResponse, RoundTripWithHops) {
  const WireConfig cfg = paper_wire();
  Rng rng(9);
  const crypto::IbcAuthority authority(13);
  MndpResponse resp;
  resp.source = node_id(1);
  resp.via = node_id(2);
  resp.responder = node_id(3);
  resp.responder_neighbors = {node_id(2), node_id(5)};
  resp.nonce = nonce20(rng);
  resp.nu = 2;
  resp.responder_signature =
      authority.issue(node_id(3)).sign(resp.responder_sign_input(cfg));

  HopRecord hop;
  hop.id = node_id(2);
  hop.neighbors = {node_id(1), node_id(3)};
  resp.hops.push_back(hop);
  resp.hops.back().signature = authority.issue(node_id(2)).sign(resp.hop_sign_input(0, cfg));

  const auto decoded = MndpResponse::decode(resp.encode(cfg), cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source, node_id(1));
  EXPECT_EQ(decoded->via, node_id(2));
  EXPECT_EQ(decoded->responder, node_id(3));
  EXPECT_EQ(decoded->responder_neighbors, resp.responder_neighbors);
  ASSERT_EQ(decoded->hops.size(), 1u);
  EXPECT_TRUE(authority.oracle()->verify(node_id(3), decoded->responder_sign_input(cfg),
                                         decoded->responder_signature));
  EXPECT_TRUE(authority.oracle()->verify(node_id(2), decoded->hop_sign_input(0, cfg),
                                         decoded->hops[0].signature));
}

TEST(MndpMessages, WireLengthAccountsForLsig) {
  // Each signature occupies l_sig = 672 bits regardless of tag size.
  const WireConfig cfg = paper_wire();
  Rng rng(10);
  const crypto::IbcAuthority authority(14);
  const MndpRequest req = make_request(rng, authority);
  const std::size_t base = req.payload_bits(cfg);
  MndpRequest extended = req;
  HopRecord hop;
  hop.id = node_id(2);
  extended.hops.push_back(hop);
  // One extra hop adds l_id + 16 (count) + l_sig bits (empty list).
  EXPECT_EQ(extended.payload_bits(cfg), base + cfg.l_id + 16 + cfg.l_sig);
}

TEST(PeekType, InvalidValuesRejected) {
  const WireConfig cfg = paper_wire();
  BitVector bits;
  bits.append_uint(0, cfg.l_t);  // 0 is not a valid type
  EXPECT_FALSE(peek_type(bits, cfg).has_value());
  EXPECT_FALSE(peek_type(BitVector(3), cfg).has_value());  // too short
}

TEST(TruncateDigest, WidthsAndPadding) {
  crypto::Sha256Digest d{};
  d[0] = 0xff;
  const BitVector t8 = truncate_digest(d, 8);
  EXPECT_EQ(t8.to_string(), "11111111");
  const BitVector t300 = truncate_digest(d, 300);
  EXPECT_EQ(t300.size(), 300u);
  // Bits beyond 256 are zero-padded.
  for (std::size_t i = 256; i < 300; ++i) EXPECT_FALSE(t300.get(i));
}

}  // namespace
}  // namespace jrsnd::core
