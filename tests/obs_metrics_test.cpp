#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/scoped_timer.hpp"

namespace jrsnd::obs {
namespace {

/// Saves and restores the process-wide enabled flag around each test.
class MetricsEnabledGuard {
 public:
  explicit MetricsEnabledGuard(bool enabled) : before_(metrics_enabled()) {
    set_metrics_enabled(enabled);
  }
  ~MetricsEnabledGuard() { set_metrics_enabled(before_); }

 private:
  bool before_;
};

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndHighWater) {
  Gauge g;
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.update_max(2.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.update_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsAndAggregates) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));

  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper edge)
  h.observe(5.0);    // <= 10
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 506.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const std::vector<std::uint64_t> expected = {2, 1, 0, 1};
  EXPECT_EQ(h.bucket_counts(), expected);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(Histogram, UnsortedBoundsAreSortedAndDeduped) {
  Histogram h({10.0, 1.0, 10.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 10.0}));
}

TEST(Registry, SameNameReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);

  Histogram& h1 = reg.histogram("test.hist", std::vector<double>{1.0, 2.0});
  Histogram& h2 = reg.histogram("test.hist", std::vector<double>{99.0});
  EXPECT_EQ(&h1, &h2);  // first registration's bounds win
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Registry, SnapshotIsSortedAndResetZeroes) {
  MetricsRegistry reg;
  reg.counter("b.second").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("g").set(7.0);
  reg.histogram("h", std::vector<double>{1.0}).observe(0.5);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_FALSE(snap.empty());
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "b.second");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);

  reg.reset();
  const MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(after.counters[0].value, 0u);   // names stay registered
  EXPECT_EQ(after.histograms[0].count, 0u);
}

TEST(Snapshot, MergeAddsCountersAndBucketsKeepsGaugeMax) {
  MetricsRegistry seed1;
  seed1.counter("c").inc(3);
  seed1.gauge("g").set(5.0);
  seed1.histogram("h", std::vector<double>{1.0}).observe(0.5);

  MetricsRegistry seed2;
  seed2.counter("c").inc(4);
  seed2.counter("only2").inc(1);
  seed2.gauge("g").set(2.0);
  seed2.histogram("h", std::vector<double>{1.0}).observe(9.0);

  MetricsSnapshot merged = seed1.snapshot();
  merged.merge(seed2.snapshot());

  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].name, "c");
  EXPECT_EQ(merged.counters[0].value, 7u);
  EXPECT_EQ(merged.counters[1].name, "only2");
  EXPECT_DOUBLE_EQ(merged.gauges[0].value, 5.0);  // high-water, not sum
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 2u);
  EXPECT_EQ(merged.histograms[0].buckets, (std::vector<std::uint64_t>{1, 1}));
  EXPECT_DOUBLE_EQ(merged.histograms[0].min, 0.5);
  EXPECT_DOUBLE_EQ(merged.histograms[0].max, 9.0);
}

TEST(Snapshot, MergeKeepsMismatchedHistogramsSideBySide) {
  MetricsRegistry a;
  a.histogram("h", std::vector<double>{1.0}).observe(0.5);
  MetricsRegistry b;
  b.histogram("h", std::vector<double>{2.0, 3.0}).observe(2.5);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.histograms.size(), 2u);  // schema mismatch is not hidden
}

TEST(Snapshot, QuantileAndMean) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", std::vector<double>{1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);  // all in the (1, 2] bucket
  const HistogramSample s = reg.snapshot().histograms[0];
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  const double p50 = s.quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_TRUE(std::isnan(HistogramSample{}.quantile(0.5)));
}

TEST(Snapshot, TableAndJsonRender) {
  MetricsRegistry reg;
  reg.counter("c").inc(1);
  reg.gauge("g").set(2.0);
  reg.histogram("h", std::vector<double>{1.0}).observe(0.5);
  const MetricsSnapshot snap = reg.snapshot();

  std::ostringstream table;
  snap.print_table(table);
  EXPECT_NE(table.str().find("c"), std::string::npos);
  EXPECT_NE(table.str().find("histograms"), std::string::npos);

  std::ostringstream json;
  snap.write_json(json);
  EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json.str().find("\"c\":1"), std::string::npos);
}

TEST(Registry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("concurrent");
  Histogram& h = reg.histogram("concurrent.h", std::vector<double>{0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(0.25);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Macros, DisabledFlagDropsUpdates) {
  MetricsEnabledGuard guard(false);
  JRSND_COUNT("obs_test.disabled.counter");
  JRSND_OBSERVE("obs_test.disabled.hist", 1.0);
  // The macro short-circuits before touching the registry, so the names were
  // never even registered.
  const MetricsSnapshot snap = registry().snapshot();
  for (const auto& c : snap.counters) EXPECT_NE(c.name, "obs_test.disabled.counter");
  for (const auto& h : snap.histograms) EXPECT_NE(h.name, "obs_test.disabled.hist");
}

TEST(Macros, EnabledFlagRecords) {
  MetricsEnabledGuard guard(true);
  JRSND_COUNT("obs_test.enabled.counter");
  JRSND_COUNT_N("obs_test.enabled.counter", 2);
  EXPECT_EQ(registry().counter("obs_test.enabled.counter").value(), 3u);
  registry().counter("obs_test.enabled.counter").reset();
}

TEST(Macros, PreregisterPublishesCanonicalNamesAsZero) {
  MetricsEnabledGuard guard(true);
  preregister_core_metrics();
  const MetricsSnapshot snap = registry().snapshot();
  bool found_sync = false;
  bool found_phase = false;
  for (const auto& c : snap.counters) found_sync |= (c.name == "dsss.sync.scans");
  for (const auto& h : snap.histograms) found_phase |= (h.name == "sim.phase.run.seconds");
  EXPECT_TRUE(found_sync);
  EXPECT_TRUE(found_phase);
}

TEST(ScopedTimer, ArmedRecordsOneObservation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("timer", std::vector<double>{1.0});
  {
    ScopedTimer timer(&h);
    EXPECT_TRUE(timer.armed());
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
}

TEST(Registry, CrossKindNameCollisionThrowsNamingBothKinds) {
  MetricsRegistry reg;
  reg.counter("shared.name");
  // Re-requesting the same name as a different kind must fail loudly (the
  // silent alternative would hand back a second object and split the metric
  // between two maps) and the message must name the conflicting kind.
  try {
    reg.gauge("shared.name");
    FAIL() << "gauge('shared.name') over an existing counter did not throw";
  } catch (const std::logic_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("shared.name"), std::string::npos) << what;
    EXPECT_NE(what.find("counter"), std::string::npos) << what;
    EXPECT_NE(what.find("gauge"), std::string::npos) << what;
  }
  EXPECT_THROW(reg.histogram("shared.name"), std::logic_error);

  reg.gauge("other.kind");
  EXPECT_THROW(reg.counter("other.kind"), std::logic_error);
  reg.histogram("hist.kind");
  EXPECT_THROW(reg.counter("hist.kind"), std::logic_error);
  EXPECT_THROW(reg.gauge("hist.kind"), std::logic_error);

  // Same-kind lookups still return the one shared object.
  EXPECT_EQ(&reg.counter("shared.name"), &reg.counter("shared.name"));
}

TEST(ScopedTimer, DisarmedAndCancelledRecordNothing) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("timer", std::vector<double>{1.0});
  {
    ScopedTimer timer(nullptr);
    EXPECT_FALSE(timer.armed());
  }
  {
    ScopedTimer timer(&h);
    timer.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace jrsnd::obs
