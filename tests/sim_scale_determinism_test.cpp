// City-scale determinism: the incremental spatial index is a pure
// optimization, so every result derived from it must be bit-identical to the
// historical snapshot-rebuild path — under sustained RandomWaypoint mobility
// at 2000 nodes, and through a full run_all() across thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "core/discovery_sim.hpp"
#include "sim/mobility.hpp"
#include "sim/spatial_index.hpp"
#include "sim/topology.hpp"

namespace jrsnd {
namespace {

// 2000 RandomWaypoint nodes stepped for a minute of simulated time: at every
// step the Topology built from the incrementally maintained index must match
// the one rebuilt from a fresh position snapshot, row for row and bit for
// bit (same slab, same offsets, same pair stream).
TEST(ScaleDeterminism, IncrementalIndexTopologyMatchesSnapshotRebuild) {
  const sim::Field field(5000.0, 5000.0);
  const std::size_t n = 2000;
  const double radius = 300.0;
  Rng rng(97);
  const sim::RandomWaypoint mobility(field, n, {1.0, 12.0, 3.0}, rng);

  sim::SpatialIndex index(field, mobility.snapshot(TimePoint(0.0)), radius);
  for (int step = 0; step <= 12; ++step) {
    const TimePoint t(step * 5.0);
    for (std::uint32_t i = 0; i < n; ++i) {
      index.update(node_id(i), mobility.position(node_id(i), t));
    }
    const sim::Topology incremental(field, index, radius);
    const sim::Topology snapshot(field, mobility.snapshot(t), radius);

    ASSERT_EQ(incremental.node_count(), snapshot.node_count());
    ASSERT_EQ(incremental.pair_count(), snapshot.pair_count()) << "t=" << t.seconds();
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto a = incremental.neighbors(node_id(i));
      const auto b = snapshot.neighbors(node_id(i));
      ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
                std::vector<NodeId>(b.begin(), b.end()))
          << "t=" << t.seconds() << " node " << i;
    }
    auto it = incremental.pairs().begin();
    const auto end = incremental.pairs().end();
    for (const auto& [pa, pb] : snapshot.pairs()) {
      ASSERT_NE(it, end);
      ASSERT_EQ((*it).first, pa);
      ASSERT_EQ((*it).second, pb);
      ++it;
    }
    ASSERT_EQ(it, end);
  }
}

// Full pipeline at 2000 nodes: run_all() folds the same RunResults in the
// same order no matter how many worker threads execute it, so every Stat is
// bit-identical between JRSND_THREADS=1 and 8.
TEST(ScaleDeterminism, RunAllBitIdenticalAcrossThreadCountsAt2000Nodes) {
  core::ExperimentConfig cfg;
  cfg.params = core::Params::defaults();
  cfg.params.n = 2000;
  cfg.params.field_width = 5000.0;
  cfg.params.field_height = 5000.0;
  cfg.params.runs = 2;
  cfg.base_seed = 1234;
  cfg.jammer = core::JammerKind::Random;
  const core::DiscoverySimulator sim(cfg);

  ASSERT_EQ(setenv("JRSND_THREADS", "1", 1), 0);
  const core::PointResult serial = sim.run_all();
  ASSERT_EQ(setenv("JRSND_THREADS", "8", 1), 0);
  const core::PointResult parallel = sim.run_all();
  ASSERT_EQ(unsetenv("JRSND_THREADS"), 0);

  const auto expect_identical = [](const core::Stat& a, const core::Stat& b,
                                   const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    if (a.count() == 0) return;
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  };
  expect_identical(serial.p_dndp, parallel.p_dndp, "p_dndp");
  expect_identical(serial.p_mndp, parallel.p_mndp, "p_mndp");
  expect_identical(serial.p_jrsnd, parallel.p_jrsnd, "p_jrsnd");
  expect_identical(serial.latency_dndp, parallel.latency_dndp, "latency_dndp");
  expect_identical(serial.latency_mndp, parallel.latency_mndp, "latency_mndp");
  expect_identical(serial.latency_jrsnd, parallel.latency_jrsnd, "latency_jrsnd");
  expect_identical(serial.degree, parallel.degree, "degree");
}

}  // namespace
}  // namespace jrsnd
