#include <gtest/gtest.h>

#include "baselines/global_code.hpp"
#include "baselines/pairwise_code.hpp"
#include "baselines/public_code_set.hpp"
#include "core/analysis.hpp"

namespace jrsnd::baselines {
namespace {

TEST(GlobalCode, CollapsesOnFirstCompromise) {
  const GlobalCodeScheme intact(2000, 0);
  EXPECT_DOUBLE_EQ(intact.discovery_probability_reactive(), 1.0);
  const GlobalCodeScheme broken(2000, 1);
  EXPECT_DOUBLE_EQ(broken.discovery_probability_reactive(), 0.0);
  EXPECT_DOUBLE_EQ(broken.discovery_probability_random(), 0.0);
}

TEST(GlobalCode, JrsndSurvivesWhereGlobalCollapses) {
  // The paper's motivating contrast: at q = 20, JR-SND's analytic lower
  // bound is far above zero while the global-code scheme is dead.
  core::Params p = core::Params::defaults();
  p.q = 20;
  const auto t1 = core::theorem1(p);
  EXPECT_GT(t1.p_lower, 0.5);
  const GlobalCodeScheme global(p.n, p.q);
  EXPECT_DOUBLE_EQ(global.discovery_probability_reactive(), 0.0);
}

TEST(PairwiseCode, SurvivalIsIdealButLatencyExplodes) {
  core::Params p = core::Params::defaults();
  const PairwiseCodeScheme pairwise(p);
  EXPECT_EQ(pairwise.codes_per_node(), p.n - 1);

  // Survival: only pairs touching a compromised endpoint break.
  EXPECT_NEAR(pairwise.pair_code_survival(), (1980.0 * 1979.0) / (2000.0 * 1999.0), 1e-12);

  // Latency: scanning n-1 = 1999 codes instead of m = 100 blows the
  // quadratic identification term up by ~(1999/100)^2 ~ 400x.
  const double jrsnd_latency = core::theorem2_dndp_latency(p);
  EXPECT_GT(pairwise.discovery_latency_s(), 100.0 * jrsnd_latency);
  // Concretely: several minutes — unusable for mobile encounters.
  EXPECT_GT(pairwise.discovery_latency_s(), 300.0);
}

TEST(PairwiseCode, LambdaScalesWithN) {
  core::Params p = core::Params::defaults();
  const PairwiseCodeScheme pairwise(p);
  EXPECT_NEAR(pairwise.lambda(), p.rho * 512.0 * 1999.0 * 22e6, 1e-6);
}

TEST(PairwiseCode, FullCompromiseKillsEverything) {
  core::Params p = core::Params::defaults();
  p.q = p.n;
  const PairwiseCodeScheme pairwise(p);
  EXPECT_DOUBLE_EQ(pairwise.pair_code_survival(), 0.0);
}

TEST(PublicCodeSet, SurvivalDependsOnSetSize) {
  const PublicCodeSetScheme small_set(16, 8);
  EXPECT_DOUBLE_EQ(small_set.message_survival_probability(), 0.5);
  const PublicCodeSetScheme large_set(1024, 8);
  EXPECT_NEAR(large_set.message_survival_probability(), 1.0 - 8.0 / 1024.0, 1e-12);
  const PublicCodeSetScheme overwhelmed(8, 16);
  EXPECT_DOUBLE_EQ(overwhelmed.message_survival_probability(), 0.0);
}

TEST(PublicCodeSet, SimulatedRateMatchesFormula) {
  const PublicCodeSetScheme scheme(64, 8);
  Rng rng(1);
  int survived = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) survived += scheme.simulate_message(rng);
  EXPECT_NEAR(static_cast<double>(survived) / kTrials,
              scheme.message_survival_probability(), 0.01);
}

TEST(PublicCodeSet, DosCostIsLinearInAttackerBudget) {
  EXPECT_EQ(PublicCodeSetScheme::dos_verifications(10, 5), 50u);
  EXPECT_EQ(PublicCodeSetScheme::dos_verifications(1000000, 20), 20000000u);
  // Doubling the attacker budget doubles the victims' work — no cap.
  EXPECT_EQ(PublicCodeSetScheme::dos_verifications(2000000, 20),
            2 * PublicCodeSetScheme::dos_verifications(1000000, 20));
}

}  // namespace
}  // namespace jrsnd::baselines
