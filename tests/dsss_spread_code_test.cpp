#include "dsss/spread_code.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dsss/correlator.hpp"

namespace jrsnd::dsss {
namespace {

TEST(SpreadCode, RejectsEmptyPattern) {
  EXPECT_THROW((void)SpreadCode{BitVector()}, std::invalid_argument);
}

TEST(SpreadCode, ChipMapping) {
  const SpreadCode code(BitVector::from_string("1010"));
  EXPECT_EQ(code.length(), 4u);
  EXPECT_EQ(code.chip(0), +1);
  EXPECT_EQ(code.chip(1), -1);
  EXPECT_EQ(code.chip(2), +1);
  EXPECT_EQ(code.chip(3), -1);
}

TEST(SpreadCode, SelfCorrelationIsOne) {
  Rng rng(1);
  const SpreadCode code = SpreadCode::random(rng, 512);
  EXPECT_DOUBLE_EQ(code.correlate(code.bits()), 1.0);
}

TEST(SpreadCode, InvertedCorrelationIsMinusOne) {
  Rng rng(2);
  const SpreadCode code = SpreadCode::random(rng, 512);
  BitVector inverted = code.bits();
  for (std::size_t i = 0; i < inverted.size(); ++i) inverted.flip(i);
  EXPECT_DOUBLE_EQ(code.correlate(inverted), -1.0);
}

TEST(SpreadCode, CrossCorrelationOfRandomCodesIsSmall) {
  // The paper's negligible-interference assumption for large N.
  Rng rng(3);
  const SpreadCode a = SpreadCode::random(rng, 512);
  for (int trial = 0; trial < 50; ++trial) {
    const SpreadCode b = SpreadCode::random(rng, 512);
    // |corr| beyond ~5 sigma = 5/sqrt(512) ~ 0.22 is astronomically rare.
    EXPECT_LT(std::abs(a.correlate(b.bits())), 0.25) << "trial " << trial;
  }
}

TEST(SpreadCode, CorrelationCountsMatchingChips) {
  const SpreadCode code(BitVector::from_string("11110000"));
  // Window differing in 2 of 8 chips: corr = (8 - 2*2)/8 = 0.5.
  const BitVector window = BitVector::from_string("11010001");
  EXPECT_DOUBLE_EQ(code.correlate(window), (8.0 - 2.0 * 2.0) / 8.0);
}

TEST(SpreadCode, MismatchedWindowThrows) {
  Rng rng(4);
  const SpreadCode code = SpreadCode::random(rng, 64);
  EXPECT_THROW((void)code.correlate(BitVector(63)), std::invalid_argument);
}

TEST(SpreadCode, RandomCodesAreBalanced) {
  Rng rng(5);
  const SpreadCode code = SpreadCode::random(rng, 4096);
  const double ones = static_cast<double>(code.bits().popcount()) / 4096.0;
  EXPECT_GT(ones, 0.45);
  EXPECT_LT(ones, 0.55);
}

TEST(SpreadCode, IdIsCarried) {
  Rng rng(6);
  const SpreadCode code = SpreadCode::random(rng, 32, code_id(17));
  EXPECT_EQ(code.id(), code_id(17));
}


TEST(Correlator, AutocorrelationProfileOfRandomCode) {
  // Random codes: unit peak, off-peak shifts near the 1/sqrt(N) noise
  // floor — the property sliding-window synchronization rests on.
  Rng rng(21);
  const SpreadCode code = SpreadCode::random(rng, 512);
  const CorrelationProfile profile = autocorrelation_profile(code);
  EXPECT_DOUBLE_EQ(profile.peak, 1.0);
  EXPECT_LT(profile.max_off_peak, 6.0 * correlation_noise_sigma(512));
  EXPECT_LT(profile.mean_abs_off_peak, 1.5 * correlation_noise_sigma(512));
}

TEST(Correlator, DegenerateCodeHasTerribleProfile) {
  // An all-ones "code" is its own cyclic shift: off-peak correlation 1.
  const SpreadCode constant(BitVector::from_string("11111111"));
  const CorrelationProfile profile = autocorrelation_profile(constant);
  EXPECT_DOUBLE_EQ(profile.max_off_peak, 1.0);
}

TEST(Correlator, CrossCorrelationOfIndependentCodesIsLow) {
  Rng rng(22);
  const SpreadCode a = SpreadCode::random(rng, 256);
  const SpreadCode b = SpreadCode::random(rng, 256);
  // Max over 256 shifts of a ~N(0, 1/256) variable: expect < ~4.5 sigma.
  EXPECT_LT(max_cross_correlation(a, b), 4.5 * correlation_noise_sigma(256));
  // And a code against itself peaks at exactly 1 (shift 0).
  EXPECT_DOUBLE_EQ(max_cross_correlation(a, a), 1.0);
}

TEST(Correlator, SigmaMatchesTheory) {
  EXPECT_NEAR(correlation_noise_sigma(512), 1.0 / std::sqrt(512.0), 1e-12);
  EXPECT_DOUBLE_EQ(correlation_noise_sigma(1), 1.0);
}

TEST(Correlator, PaperTauIsAboveNoiseFloor) {
  // tau = 0.15 at N = 512 is ~3.4 sigma (paper after [7]).
  const double sigma = correlation_noise_sigma(512);
  EXPECT_NEAR(kDefaultTau / sigma, 3.39, 0.1);
  EXPECT_NEAR(recommended_tau(512), 0.15, 0.01);
}

TEST(Correlator, FalseSyncProbabilityIsTiny) {
  const double p = false_sync_probability(512, kDefaultTau);
  EXPECT_LT(p, 1e-3);
  EXPECT_GT(p, 1e-5);
}

TEST(Correlator, FalseSyncProbabilityDecreasesWithN) {
  EXPECT_GT(false_sync_probability(128, 0.15), false_sync_probability(512, 0.15));
  EXPECT_GT(false_sync_probability(512, 0.15), false_sync_probability(2048, 0.15));
}

TEST(Correlator, EmpiricalFalseSyncRateMatchesModel) {
  Rng rng(7);
  const std::size_t n = 256;
  const double tau = 0.2;
  const SpreadCode code = SpreadCode::random(rng, n);
  int hits = 0;
  constexpr int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    BitVector noise(n);
    for (std::size_t i = 0; i < n; ++i) noise.set(i, rng.bernoulli(0.5));
    if (std::abs(code.correlate(noise)) >= tau) ++hits;
  }
  const double empirical = static_cast<double>(hits) / kTrials;
  const double model = false_sync_probability(n, tau);
  EXPECT_NEAR(empirical, model, 3.0 * std::sqrt(model / kTrials) + 0.002);
}

}  // namespace
}  // namespace jrsnd::dsss
