#include "dsss/timing.hpp"

#include <gtest/gtest.h>

#include "core/params.hpp"

namespace jrsnd::dsss {
namespace {

TimingInputs paper_inputs() {
  // Table I: N = 512, R = 22 Mb/s, rho = 1e-11 s/bit, m = 100,
  // l_h = (1+mu)(l_t + l_id) = 2 * 21 = 42.
  TimingInputs in;
  in.code_length_chips = 512;
  in.chip_rate_bps = 22e6;
  in.rho_seconds_per_bit = 1e-11;
  in.codes_per_node = 100;
  in.hello_coded_bits = 42;
  return in;
}

TEST(Timing, HelloTimeMatchesFormula) {
  const TimingModel t(paper_inputs());
  EXPECT_NEAR(t.hello_time().seconds(), 42.0 * 512.0 / 22e6, 1e-12);
}

TEST(Timing, BufferTimeIsMPlus1Hellos) {
  const TimingModel t(paper_inputs());
  EXPECT_NEAR(t.buffer_time().seconds(), 101.0 * t.hello_time().seconds(), 1e-12);
}

TEST(Timing, LambdaMatchesPaperFormula) {
  // lambda = rho N m R = 1e-11 * 512 * 100 * 22e6 ~= 11.3.
  const TimingModel t(paper_inputs());
  EXPECT_NEAR(t.lambda(), 1e-11 * 512 * 100 * 22e6, 1e-9);
}

TEST(Timing, PaperExampleLambda94) {
  // The paper's worked example: rho ~= 8.3e-12, N = 512, m = 1000,
  // R = 22 Mb/s gives lambda ~= 94.
  TimingInputs in = paper_inputs();
  in.rho_seconds_per_bit = 8.3e-12;
  in.codes_per_node = 1000;
  const TimingModel t(in);
  EXPECT_NEAR(t.lambda(), 94.0, 1.0);
}

TEST(Timing, ProcessingTimeIsLambdaTimesBuffer) {
  const TimingModel t(paper_inputs());
  EXPECT_NEAR(t.processing_time().seconds(), t.lambda() * t.buffer_time().seconds(), 1e-12);
}

TEST(Timing, HelloRoundsFormula) {
  // r = ceil((lambda + 1)(m + 1)/m).
  const TimingModel t(paper_inputs());
  const double expected = std::ceil((t.lambda() + 1.0) * 101.0 / 100.0);
  EXPECT_EQ(t.hello_rounds(), static_cast<std::uint64_t>(expected));
}

TEST(Timing, BroadcastDurationCoversBufferPlusProcessing) {
  // r m t_h >= (lambda + 1) t_b guarantees the receiver buffers a full copy.
  const TimingModel t(paper_inputs());
  EXPECT_GE(t.hello_broadcast_duration().seconds(),
            (t.lambda() + 1.0) * t.buffer_time().seconds() - 1e-12);
}

TEST(Timing, BufferChipsIsRateTimesSpan) {
  const TimingModel t(paper_inputs());
  EXPECT_EQ(t.buffer_chips(),
            static_cast<std::uint64_t>(std::llround(22e6 * t.buffer_time().seconds())));
}

TEST(Timing, MessageTimeScalesLinearly) {
  const TimingModel t(paper_inputs());
  EXPECT_NEAR(t.message_time(100).seconds(), 100.0 * 512.0 / 22e6, 1e-12);
  EXPECT_NEAR(t.message_time(200).seconds(), 2.0 * t.message_time(100).seconds(), 1e-15);
}

TEST(Timing, DerivedFromParams) {
  // Params::timing() must agree with the hand-built inputs.
  const core::Params p = core::Params::defaults();
  const TimingModel t(p.timing());
  EXPECT_NEAR(t.hello_time().seconds(), p.l_h() * 512.0 / 22e6, 1e-12);
}

class TimingMSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TimingMSweep, LambdaGrowsLinearlyInM) {
  TimingInputs in = paper_inputs();
  in.codes_per_node = GetParam();
  const TimingModel t(in);
  EXPECT_NEAR(t.lambda(), 1e-11 * 512 * static_cast<double>(GetParam()) * 22e6, 1e-9);
  EXPECT_GE(t.hello_rounds(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Ms, TimingMSweep, ::testing::Values(20, 60, 100, 140, 200, 1000));

}  // namespace
}  // namespace jrsnd::dsss
