#include "crypto/session_code.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "crypto/ibc.hpp"

namespace jrsnd::crypto {
namespace {

BitVector nonce_from(Rng& rng, std::size_t bits) {
  BitVector v(bits);
  for (std::size_t i = 0; i < bits; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(SessionCode, SymmetricInNonceOrder) {
  // A computes h_K(n_A ^ n_B); B computes h_K(n_B ^ n_A): identical.
  Rng rng(1);
  SymmetricKey key;
  key.fill(0xab);
  const BitVector na = nonce_from(rng, 20);
  const BitVector nb = nonce_from(rng, 20);
  EXPECT_EQ(derive_session_code(key, na, nb, 512), derive_session_code(key, nb, na, 512));
}

TEST(SessionCode, ProducesRequestedLength) {
  Rng rng(2);
  SymmetricKey key;
  key.fill(1);
  const BitVector na = nonce_from(rng, 20);
  const BitVector nb = nonce_from(rng, 20);
  for (const std::size_t n : {64u, 128u, 512u, 1024u}) {
    EXPECT_EQ(derive_session_code(key, na, nb, n).size(), n);
  }
}

TEST(SessionCode, KeySeparation) {
  Rng rng(3);
  SymmetricKey k1;
  k1.fill(1);
  SymmetricKey k2;
  k2.fill(2);
  const BitVector na = nonce_from(rng, 20);
  const BitVector nb = nonce_from(rng, 20);
  EXPECT_NE(derive_session_code(k1, na, nb, 512), derive_session_code(k2, na, nb, 512));
}

TEST(SessionCode, NonceSeparation) {
  Rng rng(4);
  SymmetricKey key;
  key.fill(9);
  const BitVector na = nonce_from(rng, 20);
  const BitVector nb = nonce_from(rng, 20);
  const BitVector nc = nonce_from(rng, 20);
  EXPECT_NE(derive_session_code(key, na, nb, 512), derive_session_code(key, na, nc, 512));
}

TEST(SessionCode, MismatchedNonceLengthsThrow) {
  Rng rng(5);
  SymmetricKey key{};
  const BitVector na = nonce_from(rng, 20);
  const BitVector nb = nonce_from(rng, 24);
  EXPECT_THROW((void)derive_session_code(key, na, nb, 512), std::invalid_argument);
}

TEST(SessionCode, EndToEndWithIbcAgreement) {
  // Full D-NDP derivation path: IBC pair key + both nonces.
  const IbcAuthority authority(77);
  const auto ka = authority.issue(node_id(1));
  const auto kb = authority.issue(node_id(2));
  Rng rng(6);
  const BitVector na = nonce_from(rng, 20);
  const BitVector nb = nonce_from(rng, 20);
  const BitVector code_a = derive_session_code(ka.shared_key(node_id(2)), na, nb, 512);
  const BitVector code_b = derive_session_code(kb.shared_key(node_id(1)), nb, na, 512);
  EXPECT_EQ(code_a, code_b);
  // And an eavesdropper with a different pair key derives something else.
  const auto kc = authority.issue(node_id(3));
  EXPECT_NE(derive_session_code(kc.shared_key(node_id(1)), na, nb, 512), code_a);
}

TEST(SessionCode, OutputIsBalanced) {
  Rng rng(7);
  SymmetricKey key;
  key.fill(0x5f);
  const BitVector code =
      derive_session_code(key, nonce_from(rng, 20), nonce_from(rng, 20), 4096);
  const double ones = static_cast<double>(code.popcount()) / 4096.0;
  EXPECT_GT(ones, 0.45);
  EXPECT_LT(ones, 0.55);
}

}  // namespace
}  // namespace jrsnd::crypto
