// Offline trace analysis: strict JSONL reading, trace normalization, span
// reconstruction / loss attribution, and the ISSUE-6 flagship property —
// a parallel run_all() trace is byte-identical to the serial one after
// seed-ordered normalization.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "core/discovery_sim.hpp"
#include "fault/fault_plan.hpp"
#include "obs/event_log.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"
#include "obs/trace_analysis.hpp"

namespace jrsnd::obs {
namespace {

TraceEvent span_begin(double t, std::uint64_t trace, std::uint64_t span,
                      std::uint64_t parent, const std::string& name) {
  TraceEvent ev("span.begin");
  ev.t = t;
  ev.with("trace", trace);
  ev.with("span", span);
  ev.with("parent", parent);
  ev.with("name", name);
  return ev;
}

TraceEvent span_end(double t, std::uint64_t trace, std::uint64_t span,
                    std::uint64_t parent, const std::string& name, bool ok,
                    const char* loss = nullptr, double dur = -1.0) {
  TraceEvent ev("span.end");
  ev.t = t;
  ev.with("trace", trace);
  ev.with("span", span);
  ev.with("parent", parent);
  ev.with("name", name);
  ev.with("ok", ok);
  if (loss != nullptr) ev.with("loss", std::string(loss));
  if (dur >= 0.0) ev.with("dur", dur);
  return ev;
}

TEST(TraceRead, ParsesEventsAndToleratesBlankLines) {
  std::istringstream in(
      "{\"t\":1,\"seq\":1,\"sev\":\"info\",\"event\":\"a\"}\n"
      "\n"
      "{\"t\":2,\"seq\":2,\"sev\":\"info\",\"event\":\"b\"}\n");
  std::vector<TraceEvent> events;
  TraceReadError error;
  ASSERT_TRUE(read_trace_jsonl(in, events, &error));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
}

TEST(TraceRead, ReportsOneBasedLineOfFirstMalformedLine) {
  std::istringstream in(
      "{\"t\":1,\"seq\":1,\"sev\":\"info\",\"event\":\"a\"}\n"
      "\n"
      "this is not json\n");
  std::vector<TraceEvent> events;
  TraceReadError error;
  EXPECT_FALSE(read_trace_jsonl(in, events, &error));
  EXPECT_EQ(error.line, 3u);
  EXPECT_FALSE(error.message.empty());
}

TEST(TraceNormalize, SortsByTimeStablyAndRenumbersSeq) {
  std::vector<TraceEvent> events;
  events.push_back(span_begin(2.0, 10, 1, 0, "late"));
  events.push_back(span_begin(1.0, 20, 1, 0, "early.first"));
  events.push_back(span_begin(1.0, 21, 1, 0, "early.second"));
  events[0].seq = 900;
  events[1].seq = 901;
  events[2].seq = 902;

  normalize_trace(events);
  EXPECT_EQ(std::get<std::string>(*events[0].field("name")), "early.first");
  EXPECT_EQ(std::get<std::string>(*events[1].field("name")), "early.second");
  EXPECT_EQ(std::get<std::string>(*events[2].field("name")), "late");
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].seq, 3u);
}

TEST(TraceAnalysis, PairsSpansAttributesLossAndCountsAttempts) {
  std::vector<TraceEvent> events;
  // Attempt 1 (trace 100): fails, jammed; one child transmit span.
  events.push_back(span_begin(0.0, 100, 1, 0, "dndp.attempt"));
  events.push_back(span_begin(0.0, 100, 2, 1, "phy.transmit"));
  events.push_back(span_end(0.0, 100, 2, 1, "phy.transmit", false, "jammed"));
  events.push_back(span_end(0.0, 100, 1, 0, "dndp.attempt", false, "jammed", 0.5));
  // Attempt 2 (trace 200): succeeds.
  events.push_back(span_begin(1.0, 200, 1, 0, "dndp.attempt"));
  events.push_back(span_end(1.0, 200, 1, 0, "dndp.attempt", true, nullptr, 0.25));
  // A non-span event rides along and only counts toward `events`.
  events.emplace_back("dndp.pair");

  const TraceAnalysis analysis = analyze_trace(events);
  EXPECT_EQ(analysis.events, 7u);
  EXPECT_EQ(analysis.span_events, 6u);
  ASSERT_EQ(analysis.attempts.size(), 2u);
  EXPECT_EQ(analysis.attempts[0].trace_id, 100u);
  EXPECT_FALSE(analysis.attempts[0].ok);
  EXPECT_EQ(analysis.attempts[0].loss, LossStage::Jammed);
  EXPECT_DOUBLE_EQ(analysis.attempts[0].dur, 0.5);
  EXPECT_EQ(analysis.attempts[0].spans, 2u);
  EXPECT_TRUE(analysis.attempts[1].ok);

  EXPECT_EQ(analysis.failed_attempts, 1u);
  EXPECT_EQ(analysis.loss_counts[static_cast<std::size_t>(LossStage::Jammed)], 1u);
  EXPECT_TRUE(analysis.attribution_complete());

  ASSERT_EQ(analysis.stages.count("dndp.attempt"), 1u);
  EXPECT_EQ(analysis.stages.at("dndp.attempt").count, 2u);
  EXPECT_EQ(analysis.stages.at("dndp.attempt").failed, 1u);
  EXPECT_EQ(analysis.stages.at("phy.transmit").failed, 1u);
  EXPECT_EQ(analysis.unmatched_begin, 0u);
  EXPECT_EQ(analysis.unmatched_end, 0u);
}

TEST(TraceAnalysis, FlagsUnattributedFailuresAndUnmatchedRecords) {
  std::vector<TraceEvent> events;
  events.push_back(span_begin(0.0, 300, 1, 0, "dndp.attempt"));
  events.push_back(span_end(0.0, 300, 1, 0, "dndp.attempt", false));  // no loss
  events.push_back(span_begin(1.0, 400, 1, 0, "dndp.attempt"));       // never ends
  events.push_back(span_end(2.0, 500, 7, 3, "orphan", true));         // never began

  const TraceAnalysis analysis = analyze_trace(events);
  EXPECT_EQ(analysis.failed_attempts, 1u);
  EXPECT_EQ(analysis.unattributed_failures, 1u);
  EXPECT_FALSE(analysis.attribution_complete());
  EXPECT_EQ(analysis.unmatched_begin, 1u);
  EXPECT_EQ(analysis.unmatched_end, 1u);
}

TEST(TraceAnalysis, PrintsReportWithLossTable) {
  std::vector<TraceEvent> events;
  events.push_back(span_begin(0.0, 100, 1, 0, "dndp.attempt"));
  events.push_back(span_end(0.0, 100, 1, 0, "dndp.attempt", false, "timeout", 1.0));
  const TraceAnalysis analysis = analyze_trace(events);
  std::ostringstream os;
  print_analysis(os, analysis, 5);
  EXPECT_NE(os.str().find("timeout"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("dndp.attempt"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Satellite 4: end-to-end trace emission under JRSND_THREADS > 1.

core::ExperimentConfig traced_config() {
  core::ExperimentConfig cfg;
  cfg.params = core::Params::defaults();
  cfg.params.n = 150;
  cfg.params.m = 20;
  cfg.params.l = 15;
  cfg.params.q = 20;  // jammers on, so some attempts fail and need attribution
  cfg.params.field_width = 1500.0;
  cfg.params.field_height = 1500.0;
  cfg.params.runs = 6;
  cfg.base_seed = 42;
  cfg.jammer = core::JammerKind::Random;
  return cfg;
}

std::string capture_trace(const core::DiscoverySimulator& sim, const char* threads) {
  EXPECT_EQ(setenv("JRSND_THREADS", threads, 1), 0) << threads;
  std::ostringstream os;
  const auto sink = std::make_shared<JsonlStreamSink>(os);
  event_log().attach(sink);
  set_tracing_enabled(true);
  (void)sim.run_all();
  set_tracing_enabled(false);
  event_log().detach_all();
  EXPECT_EQ(unsetenv("JRSND_THREADS"), 0);
  return os.str();
}

std::vector<TraceEvent> parse_all(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::vector<TraceEvent> events;
  TraceReadError error;
  EXPECT_TRUE(read_trace_jsonl(in, events, &error))
      << "line " << error.line << ": " << error.message;
  return events;
}

std::string reserialize(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  for (const TraceEvent& ev : events) write_jsonl(os, ev);
  return os.str();
}

TEST(TraceParallel, SpanRecordsCompleteConsistentAndByteIdenticalToSerial) {
  const core::DiscoverySimulator sim(traced_config());

  const std::string serial_raw = capture_trace(sim, "1");
  const std::string parallel_raw = capture_trace(sim, "4");
  ASSERT_FALSE(serial_raw.empty());
  ASSERT_FALSE(parallel_raw.empty());

  std::vector<TraceEvent> serial = parse_all(serial_raw);
  std::vector<TraceEvent> parallel = parse_all(parallel_raw);
  ASSERT_EQ(serial.size(), parallel.size());

  // After the seed-ordered sort + seq renumber, the two traces must agree
  // byte for byte — worker interleaving is the only difference.
  normalize_trace(serial);
  normalize_trace(parallel);
  EXPECT_EQ(reserialize(serial), reserialize(parallel));

  // And both reconstruct into complete, fully attributed span trees.
  const TraceAnalysis analysis = analyze_trace(serial);
  EXPECT_GT(analysis.attempts.size(), 0u);
  EXPECT_EQ(analysis.unmatched_begin, 0u);
  EXPECT_EQ(analysis.unmatched_end, 0u);
  EXPECT_TRUE(analysis.attribution_complete());
}

TEST(TraceParallel, ChaosTraceAttributesEveryFailedAttempt) {
  core::ExperimentConfig cfg = traced_config();
  fault::FaultPlan plan;
  plan.seed = 17;
  plan.drop = 0.2;
  plan.corrupt = 0.1;
  plan.auto_tick = 0.001;
  cfg.faults = plan;
  cfg.params.retry.max_retx = 1;
  const core::DiscoverySimulator sim(cfg);

  const std::string raw = capture_trace(sim, "4");
  std::vector<TraceEvent> events = parse_all(raw);
  normalize_trace(events);
  const TraceAnalysis analysis = analyze_trace(events);

  // Chaos guarantees failures; every one of them must map to exactly one
  // loss stage (the acceptance bar for `jrsnd analyze` on chaos traces).
  EXPECT_GT(analysis.failed_attempts, 0u);
  EXPECT_TRUE(analysis.attribution_complete());
  std::uint64_t attributed = 0;
  for (std::size_t i = 1; i < analysis.loss_counts.size(); ++i) {
    attributed += analysis.loss_counts[i];
  }
  EXPECT_EQ(attributed, analysis.failed_attempts);
}

}  // namespace
}  // namespace jrsnd::obs
