#include "crypto/prf.hpp"

#include <gtest/gtest.h>

namespace jrsnd::crypto {
namespace {

SymmetricKey test_key(std::uint8_t fill) {
  SymmetricKey k;
  k.fill(fill);
  return k;
}

TEST(Prf, ExpandProducesRequestedLength) {
  const SymmetricKey key = test_key(0x42);
  for (const std::size_t len : {1u, 31u, 32u, 33u, 64u, 100u, 512u}) {
    EXPECT_EQ(expand(key, "info", len).size(), len);
  }
}

TEST(Prf, ExpandIsDeterministic) {
  const SymmetricKey key = test_key(0x11);
  EXPECT_EQ(expand(key, "x", 64), expand(key, "x", 64));
}

TEST(Prf, ExpandIsPrefixConsistent) {
  // Longer output extends shorter output (counter-mode property).
  const SymmetricKey key = test_key(0x23);
  const auto short_out = expand(key, "ctx", 40);
  const auto long_out = expand(key, "ctx", 80);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(Prf, InfoSeparatesOutputs) {
  const SymmetricKey key = test_key(0x05);
  EXPECT_NE(expand(key, "a", 32), expand(key, "b", 32));
}

TEST(Prf, KeySeparatesOutputs) {
  EXPECT_NE(expand(test_key(1), "ctx", 32), expand(test_key(2), "ctx", 32));
}

TEST(Prf, DeriveBitsLengthAndDeterminism) {
  const SymmetricKey key = test_key(0x77);
  const BitVector bits = derive_bits(key, "code", 512);
  EXPECT_EQ(bits.size(), 512u);
  EXPECT_EQ(derive_bits(key, "code", 512), bits);
}

TEST(Prf, DeriveBitsNonByteAlignedLength) {
  const SymmetricKey key = test_key(0x77);
  EXPECT_EQ(derive_bits(key, "x", 13).size(), 13u);
  EXPECT_EQ(derive_bits(key, "x", 1).size(), 1u);
}

TEST(Prf, DerivedBitsLookBalanced) {
  const SymmetricKey key = test_key(0x3c);
  const BitVector bits = derive_bits(key, "balance-check", 4096);
  const double ones = static_cast<double>(bits.popcount()) / 4096.0;
  EXPECT_GT(ones, 0.45);
  EXPECT_LT(ones, 0.55);
}

TEST(Prf, HmacKeyOverloadMatchesSymmetricKeyOverload) {
  // The midstate-cached expand must be byte-identical to the string-building
  // reference for every output length (block boundaries included).
  const SymmetricKey key = test_key(0x6d);
  const HmacKey prepared(key);
  const std::string info_str = "session:code";
  const std::vector<std::uint8_t> info(info_str.begin(), info_str.end());
  for (const std::size_t len : {1u, 31u, 32u, 33u, 64u, 100u, 512u}) {
    EXPECT_EQ(expand(prepared, info, len), expand(key, info_str, len)) << "len=" << len;
  }
}

TEST(Prf, HmacKeyOverloadWithEmptyInfo) {
  const SymmetricKey key = test_key(0x2f);
  EXPECT_EQ(expand(HmacKey(key), std::span<const std::uint8_t>{}, 96),
            expand(key, std::string{}, 96));
}

TEST(Prf, DeriveKeyDiffersFromParentAndSiblings) {
  const SymmetricKey parent = test_key(0x9a);
  const SymmetricKey child1 = derive_key(parent, "one");
  const SymmetricKey child2 = derive_key(parent, "two");
  EXPECT_NE(child1, parent);
  EXPECT_NE(child1, child2);
  EXPECT_EQ(derive_key(parent, "one"), child1);
}

}  // namespace
}  // namespace jrsnd::crypto
