#include "dsss/spreader.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace jrsnd::dsss {
namespace {

TEST(Spreader, PaperExampleFromSectionIII) {
  // Message "10" with code "+1-1-1+1" -> chips "+1-1-1+1 -1+1+1-1".
  const SpreadCode code(BitVector::from_string("1001"));
  const BitVector message = BitVector::from_string("10");
  const BitVector chips = spread(message, code);
  EXPECT_EQ(chips.to_string(), "10010110");
}

TEST(Spreader, OutputLengthIsBitsTimesN) {
  Rng rng(1);
  const SpreadCode code = SpreadCode::random(rng, 128);
  const BitVector message = BitVector::from_string("10110");
  EXPECT_EQ(spread(message, code).size(), 5u * 128u);
}

TEST(Spreader, DespreadRecoversCleanMessage) {
  Rng rng(2);
  const SpreadCode code = SpreadCode::random(rng, 256);
  BitVector message(40);
  for (std::size_t i = 0; i < 40; ++i) message.set(i, rng.bernoulli(0.5));
  const BitVector chips = spread(message, code);
  const DespreadResult result = despread(chips, 0, 40, code, 0.15);
  EXPECT_EQ(result.bits, message);
  EXPECT_TRUE(result.erased_bits.empty());
}

TEST(Spreader, DespreadBitCorrelationIsExact) {
  Rng rng(3);
  const SpreadCode code = SpreadCode::random(rng, 512);
  const BitVector chips = spread(BitVector::from_string("1"), code);
  const DespreadBit bit = despread_bit(chips, 0, code, 0.15);
  EXPECT_TRUE(bit.value);
  EXPECT_FALSE(bit.erased);
  EXPECT_DOUBLE_EQ(bit.correlation, 1.0);
}

TEST(Spreader, ZeroBitDespreadsToMinusCorrelation) {
  Rng rng(4);
  const SpreadCode code = SpreadCode::random(rng, 512);
  const BitVector chips = spread(BitVector::from_string("0"), code);
  const DespreadBit bit = despread_bit(chips, 0, code, 0.15);
  EXPECT_FALSE(bit.value);
  EXPECT_FALSE(bit.erased);
  EXPECT_DOUBLE_EQ(bit.correlation, -1.0);
}

TEST(Spreader, CorruptedChipsLowerCorrelation) {
  Rng rng(5);
  const std::size_t n = 512;
  const SpreadCode code = SpreadCode::random(rng, n);
  BitVector chips = spread(BitVector::from_string("1"), code);
  // Flip 40% of chips: corr drops to (n - 2*flips)/n ~ 0.2.
  const std::size_t flips = n * 2 / 5;
  for (std::size_t i = 0; i < flips; ++i) chips.flip(i);
  const DespreadBit bit = despread_bit(chips, 0, code, 0.15);
  const double expected =
      (static_cast<double>(n) - 2.0 * static_cast<double>(flips)) / static_cast<double>(n);
  EXPECT_NEAR(bit.correlation, expected, 1e-9);
  EXPECT_TRUE(bit.value);  // still above tau = 0.15
}

TEST(Spreader, HalfCorruptedChipsBecomeErasure) {
  Rng rng(6);
  const std::size_t n = 512;
  const SpreadCode code = SpreadCode::random(rng, n);
  BitVector chips = spread(BitVector::from_string("1"), code);
  for (std::size_t i = 0; i < n / 2; ++i) chips.flip(i * 2);  // corr -> 0
  const DespreadBit bit = despread_bit(chips, 0, code, 0.15);
  EXPECT_TRUE(bit.erased);
  EXPECT_NEAR(bit.correlation, 0.0, 1e-9);
}

TEST(Spreader, ErasedBitIndicesReported) {
  Rng rng(7);
  const std::size_t n = 256;
  const SpreadCode code = SpreadCode::random(rng, n);
  BitVector message(10);
  for (std::size_t i = 0; i < 10; ++i) message.set(i, i % 2 == 0);
  BitVector chips = spread(message, code);
  // Destroy bit 3's and bit 7's chip windows (set to alternating garbage
  // with zero correlation: flip every other chip).
  for (const std::size_t victim : {3u, 7u}) {
    for (std::size_t c = 0; c < n; c += 2) chips.flip(victim * n + c);
  }
  const DespreadResult result = despread(chips, 0, 10, code, 0.15);
  EXPECT_EQ(result.erased_bits, (std::vector<std::size_t>{3, 7}));
}

TEST(Spreader, DespreadAtNonzeroOffset) {
  Rng rng(8);
  const SpreadCode code = SpreadCode::random(rng, 128);
  BitVector message(8);
  for (std::size_t i = 0; i < 8; ++i) message.set(i, rng.bernoulli(0.5));
  BitVector buffer(50);  // leading noise
  for (std::size_t i = 0; i < 50; ++i) buffer.set(i, rng.bernoulli(0.5));
  buffer.append(spread(message, code));
  const DespreadResult result = despread(buffer, 50, 8, code, 0.15);
  EXPECT_EQ(result.bits, message);
}

TEST(Spreader, WindowBeyondBufferThrows) {
  Rng rng(9);
  const SpreadCode code = SpreadCode::random(rng, 128);
  const BitVector chips = spread(BitVector::from_string("1"), code);
  EXPECT_THROW((void)despread(chips, 1, 1, code, 0.15), std::invalid_argument);
  EXPECT_THROW((void)despread(chips, 0, 2, code, 0.15), std::invalid_argument);
}

TEST(Spreader, WrongCodeDespreadsToNoise) {
  Rng rng(10);
  const SpreadCode code = SpreadCode::random(rng, 512);
  const SpreadCode other = SpreadCode::random(rng, 512);
  BitVector message(20);
  for (std::size_t i = 0; i < 20; ++i) message.set(i, rng.bernoulli(0.5));
  const BitVector chips = spread(message, code);
  const DespreadResult result = despread(chips, 0, 20, other, 0.15);
  // Nearly every bit should be an erasure: |corr| ~ N(0, 1/512).
  EXPECT_GT(result.erased_bits.size(), 17u);
}

}  // namespace
}  // namespace jrsnd::dsss
