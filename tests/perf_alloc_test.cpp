// Steady-state allocation audit for the transmit hot path.
//
// The whole point of the scratch-arena refactor is that ChipPhy::transmit_into
// stops touching the heap once its buffers have grown to their working sizes.
// This test replaces the global allocator with a counting one (which is why it
// lives in its own binary) and asserts the count stays flat across repeated
// clean-channel transmissions — both the HELLO codebook-scan path and the
// monitored-code path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "adversary/dos_attacker.hpp"
#include "adversary/jammer.hpp"
#include "common/rng.hpp"
#include "core/chip_phy.hpp"
#include "crypto/verify_queue.hpp"
#include "dsss/prepared_codebook.hpp"
#include "dsss/spread_code.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"
#include "obs/prof/sampling_profiler.hpp"
#include "obs/span.hpp"
#include "sim/event_queue.hpp"
#include "sim/spatial_index.hpp"
#include "sim/topology.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace jrsnd {
namespace {

BitVector fixed_payload(std::size_t bits) {
  Rng rng(5);
  BitVector v;
  for (std::size_t i = 0; i < bits; ++i) v.push_back(rng.bernoulli(0.5));
  return v;
}

TEST(TransmitHotPath, ZeroSteadyStateAllocations) {
  core::Params params = core::Params::defaults();
  params.N = 256;   // long code: no false sync locks on the noise padding
  params.tau = 0.35;

  const sim::Field field{100.0, 100.0};
  const sim::Topology topology(field, {{10, 10}, {20, 10}}, 50.0);
  const adversary::NullJammer clean;
  Rng rng(1234);

  const dsss::SpreadCode code = dsss::SpreadCode::random(rng, params.N, code_id(0));
  dsss::PreparedCodebook prepared(std::vector<dsss::SpreadCode>{code});
  (void)prepared.tables();  // build the ShiftTables outside the counted region

  core::ChipPhy phy(
      params, topology, clean,
      [&prepared](NodeId) -> const dsss::PreparedCodebook& { return prepared; }, rng);

  const BitVector payload = fixed_payload(96);
  const core::TxCode tx{code_id(0), &code};
  BitVector out;

  // Warm-up: grow every scratch buffer (channel window at max pad, ECC block
  // workspaces, sync-hit buffers, monitored single-code codebook) to its
  // steady-state capacity on both candidate-selection paths.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(phy.transmit_into(node_id(0), node_id(1), tx, core::TxClass::Hello, payload, out));
    EXPECT_EQ(out, payload);
    ASSERT_TRUE(phy.transmit_into(node_id(0), node_id(1), tx, core::TxClass::SessionUnicast,
                                  payload, out));
    EXPECT_EQ(out, payload);
  }

  // Counted region: no gtest assertions inside (their failure paths
  // allocate); accumulate and check after.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  int delivered = 0;
  bool payload_intact = true;
  for (int i = 0; i < 100; ++i) {
    const core::TxClass cls = (i % 2 == 0) ? core::TxClass::Hello : core::TxClass::SessionUnicast;
    if (phy.transmit_into(node_id(0), node_id(1), tx, cls, payload, out)) {
      ++delivered;
      payload_intact = payload_intact && out == payload;
    }
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(delivered, 100);
  EXPECT_TRUE(payload_intact);
  EXPECT_EQ(after - before, 0u) << "transmit_into allocated on the steady-state hot path";
}

TEST(SimHotPath, ZeroSteadyStateAllocationsForIndexAndEventLoop) {
  // The city-scale steady state: incremental index updates, range queries
  // into caller scratch, and an event schedule/cancel/drain cycle — none of
  // it may touch the heap once every slab has reached working size.
  const sim::Field field(1000.0, 1000.0);
  const double radius = 60.0;
  const std::size_t n = 400;
  Rng rng(21);
  std::vector<sim::Position> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)});
  }
  sim::SpatialIndex index(field, positions, radius);
  std::vector<NodeId> scratch;
  scratch.reserve(n);  // worst case: everyone in range

  sim::EventQueue queue;
  // Warm-up: resolve the JRSND_COUNT handle caches inside update/within_into
  // and schedule_at/cancel, grow the heap + slab + free list to the working
  // set, and fault in the mobility targets.
  std::vector<sim::EventQueue::EventHandle> handles;
  handles.reserve(64);
  for (int i = 0; i < 64; ++i) {
    handles.push_back(queue.schedule_after(seconds(1.0), [] {}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) queue.cancel(handles[i]);
  queue.run();
  handles.clear();
  for (std::size_t i = 0; i < n; ++i) {
    index.update(node_id(static_cast<std::uint32_t>(i)), positions[i]);
    index.within_into(positions[i], radius, node_id(static_cast<std::uint32_t>(i)), scratch);
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::size_t total_neighbors = 0;
  std::uint64_t fired = 0;
  for (int round = 0; round < 50; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      sim::Position p = positions[i];
      p.x += (round % 2 == 0) ? 35.0 : -35.0;  // guaranteed cell moves
      p = field.clamp(p);
      index.update(node_id(static_cast<std::uint32_t>(i)), p);
      positions[i] = p;
      index.within_into(p, radius, node_id(static_cast<std::uint32_t>(i)), scratch);
      total_neighbors += scratch.size();
    }
    for (int i = 0; i < 64; ++i) {
      handles.push_back(queue.schedule_after(seconds(1.0), [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 4) queue.cancel(handles[i]);
    queue.run();
    handles.clear();
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_GT(total_neighbors, 0u);
  EXPECT_EQ(fired, 50u * 48u);  // 64 scheduled, every 4th of 64 cancelled
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(after - before, 0u)
      << "index update/query or event schedule/cancel/drain allocated on the "
         "steady-state hot path";
}

TEST(VerifyQueueHotPath, ZeroSteadyStateAllocationsOnRejectPath) {
  // The DoS posture depends on this: once reserve() capacity and the peer
  // cache are warm, a push/drain cycle over an all-reject flood (the
  // attacker's steady state) must never touch the heap — metrics enabled,
  // counter handles resolved, MAC lanes included.
  obs::set_metrics_enabled(true);
  adversary::HandshakeFloodSource source(core::WireConfig{}, /*authority_seed=*/77,
                                         /*peer_count=*/16, /*rng_seed=*/20110620);
  auto flood = source.make_batch(129, 128);
  flood.erase(flood.begin());  // drop the one honest frame: pure reject flood
  crypto::VerifyQueue queue(source.verify_wire());
  queue.reserve(flood.size());
  std::vector<crypto::VerifyResult> out;
  out.reserve(flood.size());

  // Warm-up: grow every buffer, build the peer schedules the BadMac frames
  // resolve, and resolve the thread-local JRSND_COUNT handle caches.
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (const auto& frame : flood) {
      queue.push(frame.bits, frame.frame_code, source.expected_code());
    }
    ASSERT_EQ(queue.drain(source.key_source(), out), 0u);
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::size_t accepted = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (const auto& frame : flood) {
      queue.push(frame.bits, frame.frame_code, source.expected_code());
    }
    accepted += queue.drain(source.key_source(), out);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(accepted, 0u);
  EXPECT_EQ(after - before, 0u)
      << "the batched verification reject path allocated in the steady state";
}

TEST(ObsHotPath, ZeroSteadyStateAllocationsForSpansAndFlightRing) {
  // The always-on observability path: spans (with the JSONL sink detached —
  // tracing off is the production default) plus their flight-ring records
  // must never touch the heap once this thread's ring exists.
  obs::set_flight_enabled(true);
  obs::flight_note("alloc.warmup", 1);  // acquire/create this thread's ring
  {
    obs::Span warm("alloc.warmup.span", 7);
    warm.with_u64("k", 1);
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::Span root("dndp.attempt", static_cast<std::uint64_t>(i + 1));
    root.with_u64("a", static_cast<std::uint64_t>(i));
    obs::Span child("phy.transmit");
    child.set_ok(i % 3 != 0);
    if (i % 3 == 0) child.set_loss(obs::LossStage::Jammed);
    child.set_dur(0.001);
    obs::flight_note("alloc.note", static_cast<std::uint64_t>(i));
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "span + flight-ring recording allocated on the steady-state path";
}

TEST(ProfHotPath, ZeroSteadyStateAllocationsForPerfRegions) {
  // Enabled PerfRegions must be as heap-quiet as spans: the prof.* handles
  // resolve (and allocate) once per (site, thread, registry generation);
  // after that warm-up pass, entering and exiting a region is atomics only.
  obs::prof::set_prof_backend(obs::prof::ProfBackend::kClockFallback);
  obs::prof::set_prof_enabled(true);
  obs::set_metrics_enabled(true);
  // One lambda = one macro site: the warm-up call resolves (and pays the
  // allocation for) the same thread-local handle cache the counted loop uses.
  volatile std::uint64_t sink = 1;
  const auto touch = [&sink] {
    JRSND_PERF_REGION("alloc.prof.steady");
    sink = sink * 31 + 7;
  };
  touch();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) touch();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  obs::prof::set_prof_enabled(false);
  EXPECT_EQ(after - before, 0u) << "PerfRegion allocated on the steady-state path";
}

TEST(ProfHotPath, ZeroAllocationsOnSamplerSignalPath) {
  // The SIGPROF handler fires on whatever this thread is doing; everything
  // it touches (slot claim, frame walk, ring append) is preallocated at
  // profiler_start. Proof: spin under dense sampling until a healthy batch
  // of samples lands and assert the allocation counter never moved.
  obs::prof::ProfilerOptions options;
  options.hz = 997;
  ASSERT_TRUE(obs::prof::profiler_start(options));

  // Warm-up: claim this thread's ring slot (the claim itself is just a
  // fetch_add, but taking the first sample outside the counted region keeps
  // the region a pure steady-state measurement).
  volatile std::uint64_t sink = 1;
  for (int spin = 0; spin < 20'000 && obs::prof::profiler_samples() == 0; ++spin) {
    for (int i = 0; i < 100'000; ++i) sink = sink * 2862933555777941757ULL + 3037000493ULL;
  }
  const std::uint64_t warm_samples = obs::prof::profiler_samples();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int spin = 0;
       spin < 40'000 && obs::prof::profiler_samples() < warm_samples + 10; ++spin) {
    for (int i = 0; i < 100'000; ++i) sink = sink * 2862933555777941757ULL + 3037000493ULL;
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  obs::prof::profiler_stop();
  EXPECT_GT(obs::prof::profiler_samples(), warm_samples)
      << "sampler took no samples while the thread burned CPU";
  EXPECT_EQ(after - before, 0u) << "the SIGPROF signal path allocated";
}

}  // namespace
}  // namespace jrsnd
