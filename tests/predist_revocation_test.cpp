#include "predist/revocation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jrsnd::predist {
namespace {

std::vector<CodeId> three_codes() { return {code_id(1), code_id(2), code_id(3)}; }

TEST(Revocation, FreshStateIsAllUsable) {
  const RevocationState state(5, three_codes());
  EXPECT_TRUE(state.is_usable(code_id(1)));
  EXPECT_FALSE(state.is_revoked(code_id(1)));
  EXPECT_EQ(state.usable_codes().size(), 3u);
  EXPECT_EQ(state.total_invalid_verifications(), 0u);
}

TEST(Revocation, UnknownCodeIsNotUsable) {
  const RevocationState state(5, three_codes());
  EXPECT_FALSE(state.is_usable(code_id(99)));
  EXPECT_FALSE(state.is_revoked(code_id(99)));
  EXPECT_EQ(state.invalid_count(code_id(99)), 0u);
}

TEST(Revocation, ThresholdCrossingRevokes) {
  RevocationState state(3, three_codes());
  EXPECT_FALSE(state.report_invalid(code_id(1)));  // 1
  EXPECT_FALSE(state.report_invalid(code_id(1)));  // 2
  EXPECT_FALSE(state.report_invalid(code_id(1)));  // 3 == gamma: not yet
  EXPECT_TRUE(state.report_invalid(code_id(1)));   // 4 > gamma: revoked
  EXPECT_TRUE(state.is_revoked(code_id(1)));
  EXPECT_FALSE(state.is_usable(code_id(1)));
  EXPECT_EQ(state.usable_codes().size(), 2u);
}

TEST(Revocation, RevokedCodeStopsCounting) {
  RevocationState state(1, three_codes());
  (void)state.report_invalid(code_id(2));
  (void)state.report_invalid(code_id(2));  // revokes (2 > 1)
  ASSERT_TRUE(state.is_revoked(code_id(2)));
  const std::uint64_t before = state.total_invalid_verifications();
  EXPECT_FALSE(state.report_invalid(code_id(2)));  // no longer de-spread
  EXPECT_EQ(state.total_invalid_verifications(), before);
}

TEST(Revocation, PerCodeCountersAreIndependent) {
  RevocationState state(2, three_codes());
  (void)state.report_invalid(code_id(1));
  (void)state.report_invalid(code_id(1));
  (void)state.report_invalid(code_id(2));
  EXPECT_EQ(state.invalid_count(code_id(1)), 2u);
  EXPECT_EQ(state.invalid_count(code_id(2)), 1u);
  EXPECT_EQ(state.invalid_count(code_id(3)), 0u);
  EXPECT_FALSE(state.is_revoked(code_id(1)));
}

TEST(Revocation, GammaZeroRevokesOnFirstReport) {
  RevocationState state(0, three_codes());
  EXPECT_TRUE(state.report_invalid(code_id(3)));
  EXPECT_TRUE(state.is_revoked(code_id(3)));
  EXPECT_EQ(state.total_invalid_verifications(), 1u);
}

TEST(Revocation, ReportOnUnknownCodeThrows) {
  RevocationState state(5, three_codes());
  EXPECT_THROW((void)state.report_invalid(code_id(99)), std::invalid_argument);
}

TEST(Revocation, TotalCountsAcrossCodes) {
  RevocationState state(10, three_codes());
  for (int i = 0; i < 4; ++i) (void)state.report_invalid(code_id(1));
  for (int i = 0; i < 6; ++i) (void)state.report_invalid(code_id(2));
  EXPECT_EQ(state.total_invalid_verifications(), 10u);
}

TEST(Revocation, WorstCaseCostIsGammaPlusOnePerCode) {
  // The defence bound: a node verifies at most gamma+1 bad requests per
  // code before going deaf on it.
  const std::uint32_t gamma = 7;
  RevocationState state(gamma, three_codes());
  for (int i = 0; i < 100; ++i) (void)state.report_invalid(code_id(1));
  EXPECT_EQ(state.total_invalid_verifications(), gamma + 1u);
}

}  // namespace
}  // namespace jrsnd::predist
