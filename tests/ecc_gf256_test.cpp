#include "ecc/gf256.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jrsnd::ecc {
namespace {

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(GF256::add(0xff, 0xff), 0);
}

TEST(GF256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, KnownProduct) {
  // Classic AES-field example: 0x53 * 0xca = 0x01 under poly 0x11b — but our
  // field uses 0x11d, so verify against a directly computed carry-less
  // product reduced mod 0x11d.
  const auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    std::uint16_t result = 0;
    std::uint16_t aa = a;
    for (int i = 0; i < 8; ++i) {
      if (b & (1 << i)) result ^= static_cast<std::uint16_t>(aa << i);
    }
    for (int bit = 15; bit >= 8; --bit) {
      if (result & (1 << bit)) result ^= static_cast<std::uint16_t>(0x11d << (bit - 8));
    }
    return static_cast<std::uint8_t>(result);
  };
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                slow_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)))
          << a << "*" << b;
    }
  }
}

TEST(GF256, MulIsCommutativeAndAssociative) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 1; b < 256; b += 17) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(GF256::mul(ua, ub), GF256::mul(ub, ua));
      const std::uint8_t c = 0x1d;
      EXPECT_EQ(GF256::mul(GF256::mul(ua, ub), c), GF256::mul(ua, GF256::mul(ub, c)));
    }
  }
}

TEST(GF256, DistributiveLaw) {
  for (int a = 0; a < 256; a += 19) {
    for (int b = 0; b < 256; b += 23) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      const std::uint8_t c = 0x37;
      EXPECT_EQ(GF256::mul(c, GF256::add(ua, ub)),
                GF256::add(GF256::mul(c, ua), GF256::mul(c, ub)));
    }
  }
}

TEST(GF256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GF256::mul(ua, GF256::inv(ua)), 1) << "a=" << a;
  }
}

TEST(GF256, DivIsMulByInverse) {
  for (int a = 0; a < 256; a += 29) {
    for (int b = 1; b < 256; b += 31) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(GF256::div(ua, ub), GF256::mul(ua, GF256::inv(ub)));
    }
  }
}

TEST(GF256, AlphaGeneratesWholeGroup) {
  std::set<std::uint8_t> seen;
  for (int i = 0; i < 255; ++i) seen.insert(GF256::exp(i));
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_FALSE(seen.contains(0));
}

TEST(GF256, ExpLogAreInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GF256::exp(GF256::log(ua)), ua);
  }
  for (int i = 0; i < 255; ++i) EXPECT_EQ(GF256::log(GF256::exp(i)), i);
}

TEST(GF256, ExpHandlesNegativeAndLargePowers) {
  EXPECT_EQ(GF256::exp(255), GF256::exp(0));
  EXPECT_EQ(GF256::exp(-1), GF256::exp(254));
  EXPECT_EQ(GF256::exp(510), GF256::exp(0));
  EXPECT_EQ(GF256::exp(-255), GF256::exp(0));
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (int a = 2; a < 256; a += 37) {
    const auto ua = static_cast<std::uint8_t>(a);
    std::uint8_t acc = 1;
    for (int p = 0; p < 20; ++p) {
      EXPECT_EQ(GF256::pow(ua, p), acc) << "a=" << a << " p=" << p;
      acc = GF256::mul(acc, ua);
    }
  }
  EXPECT_EQ(GF256::pow(0, 0), 1);
  EXPECT_EQ(GF256::pow(0, 5), 0);
}

TEST(GF256, FermatLittleTheorem) {
  // a^255 = 1 for all nonzero a.
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), 255), 1);
  }
}

}  // namespace
}  // namespace jrsnd::ecc
