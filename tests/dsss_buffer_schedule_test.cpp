#include "dsss/buffer_schedule.hpp"

#include <gtest/gtest.h>

#include "core/params.hpp"

namespace jrsnd::dsss {
namespace {

TimingModel paper_timing() { return TimingModel(core::Params::defaults().timing()); }

TEST(BufferSchedule, WindowGeometry) {
  const TimingModel timing = paper_timing();
  const BufferSchedule schedule(timing);
  const auto w0 = schedule.window(0);
  const double t_p = timing.processing_time().seconds();
  const double t_b = timing.buffer_time().seconds();
  EXPECT_NEAR(w0.capture_end.seconds(), t_p, 1e-12);
  EXPECT_NEAR(w0.capture_end.seconds() - w0.capture_start.seconds(), t_b, 1e-12);
  EXPECT_NEAR(w0.processing_end.seconds() - w0.processing_start.seconds(), t_p, 1e-12);
  const auto w1 = schedule.window(1);
  EXPECT_NEAR(w1.capture_end.seconds() - w0.capture_end.seconds(), t_p, 1e-12);
}

TEST(BufferSchedule, PhaseShiftsWindows) {
  const TimingModel timing = paper_timing();
  const BufferSchedule base(timing);
  const BufferSchedule shifted(timing, seconds(0.01));
  EXPECT_NEAR(shifted.window(0).capture_end.seconds() - base.window(0).capture_end.seconds(),
              0.01, 1e-12);
}

TEST(BufferSchedule, CapturesExactlyTheTailOfEachCycle) {
  const TimingModel timing = paper_timing();
  const BufferSchedule schedule(timing);
  const auto w = schedule.window(3);
  const double mid_capture =
      (w.capture_start.seconds() + w.capture_end.seconds()) / 2.0;
  EXPECT_TRUE(schedule.captures(TimePoint(mid_capture)));
  // Just before the capture window opens: idle (lambda > 1 leaves gaps).
  EXPECT_FALSE(schedule.captures(TimePoint(w.capture_start.seconds() - 1e-6)));
  // At/after capture end: the next cycle's capture has not started yet.
  EXPECT_FALSE(schedule.captures(TimePoint(w.capture_end.seconds() + 1e-6)));
}

TEST(BufferSchedule, PaperOverflowClaimHolds) {
  // §V-B: "the buffer will not overflow with this schedule" — occupancy
  // never exceeds 2 f chips; in fact with immediate deletion it peaks at f.
  const TimingModel timing = paper_timing();
  const BufferSchedule schedule(timing);
  const double peak = schedule.max_occupancy_chips(64);
  const double f = timing.inputs().chip_rate_bps * timing.buffer_time().seconds();
  EXPECT_LE(peak, schedule.claimed_bound_chips() + 1.0);
  EXPECT_LE(peak, f * 1.01);
  EXPECT_GT(peak, f * 0.5);  // the buffer genuinely fills
}

TEST(BufferSchedule, OccupancyIsZeroBeforeFirstCapture) {
  const TimingModel timing = paper_timing();
  const BufferSchedule schedule(timing);
  EXPECT_DOUBLE_EQ(schedule.occupancy_chips(TimePoint(0.0)), 0.0);
}

TEST(BufferSchedule, OccupancyDrainsDuringProcessing) {
  const TimingModel timing = paper_timing();
  const BufferSchedule schedule(timing);
  const auto w = schedule.window(2);
  const double at_start = schedule.occupancy_chips(
      TimePoint(w.processing_start.seconds() + 1e-9));
  const double mid = schedule.occupancy_chips(TimePoint(
      (w.processing_start.seconds() + w.processing_end.seconds()) / 2.0));
  EXPECT_LT(mid, at_start);
}

class BufferScheduleMSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BufferScheduleMSweep, BoundHoldsAcrossLambdaRegimes) {
  core::Params p = core::Params::defaults();
  p.m = GetParam();  // lambda = rho N m R spans ~2.3 .. 45 over the sweep
  const TimingModel timing(p.timing());
  const BufferSchedule schedule(timing, seconds(0.001));
  EXPECT_LE(schedule.max_occupancy_chips(48), schedule.claimed_bound_chips() + 1.0)
      << "m=" << GetParam() << " lambda=" << timing.lambda();
}

INSTANTIATE_TEST_SUITE_P(Ms, BufferScheduleMSweep,
                         ::testing::Values(20, 50, 100, 200, 400));

}  // namespace
}  // namespace jrsnd::dsss
