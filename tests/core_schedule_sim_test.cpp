#include "core/schedule_sim.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"

namespace jrsnd::core {
namespace {

dsss::TimingModel paper_timing() { return dsss::TimingModel(Params::defaults().timing()); }

TEST(ScheduleSim, EverySlotIsEventuallyBuffered) {
  // The paper chooses r so that B always buffers one complete copy — the
  // simulator must never come up empty, for any shared-code slot.
  const dsss::TimingModel timing = paper_timing();
  const ScheduleSimulator sim(timing);
  Rng rng(1);
  for (std::uint32_t slot = 0; slot < 100; slot += 7) {
    for (int trial = 0; trial < 20; ++trial) {
      EXPECT_TRUE(sim.sample(slot, rng).has_value()) << "slot " << slot;
    }
  }
}

TEST(ScheduleSim, HelloDespreadPrecedesIdentification) {
  const dsss::TimingModel timing = paper_timing();
  const ScheduleSimulator sim(timing);
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = sim.sample(static_cast<std::uint32_t>(rng.uniform(100)), rng);
    ASSERT_TRUE(s.has_value());
    EXPECT_LT(s->hello_despread_at, s->identification);
    EXPECT_GT(s->hello_despread_at.seconds(), 0.0);
    EXPECT_GE(s->copies_sent, 1u);
    EXPECT_GE(s->windows_scanned, 1u);
  }
}

TEST(ScheduleSim, CopiesSentNeverExceedBudget) {
  const dsss::TimingModel timing = paper_timing();
  const ScheduleSimulator sim(timing);
  Rng rng(3);
  const std::uint64_t budget = timing.hello_rounds() * 100;
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = sim.sample(static_cast<std::uint32_t>(rng.uniform(100)), rng);
    ASSERT_TRUE(s.has_value());
    EXPECT_LE(s->copies_sent, budget);
  }
}

TEST(ScheduleSim, MeanAgreesWithTheorem2IdentificationTerm) {
  // Theorem 2's identification expectation is rho m (3m+4) N^2 l_h / 2.
  // The schedule simulation includes the buffer-capture delay t_b the
  // theorem drops, so it sits slightly above; require agreement within 15%.
  const Params p = Params::defaults();
  const dsss::TimingModel timing(p.timing());
  const ScheduleSimulator sim(timing);
  Rng rng(4);
  const double measured = sim.mean_identification(4000, rng).seconds();
  const double theorem =
      p.rho * p.m * (3.0 * p.m + 4.0) * static_cast<double>(p.N) *
      static_cast<double>(p.N) * p.l_h() / 2.0;
  EXPECT_GT(measured, theorem * 0.9);
  EXPECT_LT(measured, theorem * 1.15);
}

TEST(ScheduleSim, LatencyScalesWithM) {
  Params p = Params::defaults();
  Rng rng(5);
  p.m = 50;
  const dsss::TimingModel t50(p.timing());
  const double mean50 = ScheduleSimulator(t50).mean_identification(500, rng).seconds();
  p.m = 200;
  const dsss::TimingModel t200(p.timing());
  const double mean200 = ScheduleSimulator(t200).mean_identification(500, rng).seconds();
  // Identification ~ m(3m+4): ratio ~ (200*604)/(50*154) ~ 15.7.
  EXPECT_GT(mean200 / mean50, 10.0);
  EXPECT_LT(mean200 / mean50, 22.0);
}

TEST(ScheduleSim, MultiAntennaSpeedsIdentificationUp) {
  // The paper's future-work extension: k receive chains divide lambda and
  // the identification time by ~k.
  Params p = Params::defaults();
  Rng rng(6);
  p.rx_chains = 1;
  const dsss::TimingModel t1(p.timing());
  const double mean1 = ScheduleSimulator(t1).mean_identification(1500, rng).seconds();
  p.rx_chains = 4;
  const dsss::TimingModel t4(p.timing());
  const double mean4 = ScheduleSimulator(t4).mean_identification(1500, rng).seconds();
  EXPECT_NEAR(mean1 / mean4, 4.0, 1.2);
}

TEST(MultiAntenna, TimingAndTheorem2Scale) {
  Params p = Params::defaults();
  const double base = theorem2_dndp_latency(p);
  const double auth = 2.0 * 512.0 * p.l_f() / p.R + 2.0 * p.t_key;
  p.rx_chains = 2;
  const double doubled = theorem2_dndp_latency(p);
  EXPECT_NEAR(doubled - auth, (base - auth) / 2.0, 1e-12);

  const dsss::TimingModel t2(p.timing());
  p.rx_chains = 1;
  const dsss::TimingModel t1(p.timing());
  EXPECT_NEAR(t1.lambda() / t2.lambda(), 2.0, 1e-12);
  // Buffering span is antenna-independent.
  EXPECT_DOUBLE_EQ(t1.buffer_time().seconds(), t2.buffer_time().seconds());
}

class ScheduleSlotSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScheduleSlotSweep, DeterministicGivenRng) {
  const dsss::TimingModel timing = paper_timing();
  const ScheduleSimulator sim(timing);
  Rng rng1(99);
  Rng rng2(99);
  const auto s1 = sim.sample(GetParam(), rng1);
  const auto s2 = sim.sample(GetParam(), rng2);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s1->identification.seconds(), s2->identification.seconds());
}

INSTANTIATE_TEST_SUITE_P(Slots, ScheduleSlotSweep, ::testing::Values(0, 1, 50, 99));

}  // namespace
}  // namespace jrsnd::core
