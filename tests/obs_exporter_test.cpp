// MetricsExporter: Prometheus text rendering, atomic file publication, and
// the JSONL heartbeat stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"

namespace jrsnd::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Prometheus, RendersCountersGaugesAndCumulativeHistograms) {
  MetricsRegistry reg;
  reg.counter("dndp.tx").inc(7);
  reg.gauge("sim.runs.completed").set(3.0);
  Histogram& h = reg.histogram("scan.micros", std::vector<double>{1.0, 10.0});
  h.observe(0.5);
  h.observe(0.7);
  h.observe(5.0);
  h.observe(50.0);

  std::ostringstream os;
  write_prometheus(os, reg.snapshot(), "jrsnd");
  const std::string text = os.str();

  // Dots sanitize to underscores and every series carries a TYPE line.
  EXPECT_NE(text.find("# TYPE jrsnd_dndp_tx counter\njrsnd_dndp_tx 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE jrsnd_sim_runs_completed gauge\n"), std::string::npos);
  EXPECT_NE(text.find("jrsnd_sim_runs_completed 3\n"), std::string::npos);

  // Histogram buckets are cumulative, closed by +Inf, then _sum/_count.
  EXPECT_NE(text.find("jrsnd_scan_micros_bucket{le=\"1\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("jrsnd_scan_micros_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("jrsnd_scan_micros_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("jrsnd_scan_micros_sum 56.2"), std::string::npos);
  EXPECT_NE(text.find("jrsnd_scan_micros_count 4\n"), std::string::npos);
}

TEST(Prometheus, EmptyPrefixOmitsLeadingUnderscore) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  std::ostringstream os;
  write_prometheus(os, reg.snapshot(), "");
  EXPECT_EQ(os.str().rfind("# TYPE c counter", 0), 0u) << os.str();
}

TEST(Exporter, ExportNowPublishesPrometheusFileAndHeartbeats) {
  // The exporter publishes the *process* registry (that is the point: live
  // visibility into the real sweep), so use names unique to this test.
  registry().counter("exp.test.attempts").inc(5);
  registry().gauge("exp.test.progress").set(0.5);

  const std::string prom = ::testing::TempDir() + "jrsnd_exporter_test.prom";
  const std::string beats = ::testing::TempDir() + "jrsnd_exporter_test.jsonl";
  std::remove(prom.c_str());
  std::remove(beats.c_str());

  ExporterOptions options;
  options.prometheus_path = prom;
  options.heartbeat_path = beats;
  options.interval_s = 0.0;  // no background thread: deterministic exports only
  options.source = "obs_test";
  {
    MetricsExporter exporter(options);
    EXPECT_TRUE(exporter.export_now());
    EXPECT_EQ(exporter.exports(), 1u);
    registry().counter("exp.test.attempts").inc(3);
    EXPECT_TRUE(exporter.export_now());
    EXPECT_EQ(exporter.exports(), 2u);
  }  // destructor publishes once more

  const std::string text = slurp(prom);
  // The rename target holds the latest snapshot and no tmp file lingers.
  EXPECT_NE(text.find("jrsnd_exp_test_attempts 8\n"), std::string::npos) << text;
  EXPECT_FALSE(std::ifstream(prom + ".tmp").good());

  std::ifstream in(beats);
  std::string line;
  std::vector<TraceEvent> events;
  while (std::getline(in, line)) {
    const auto ev = parse_jsonl_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    events.push_back(*ev);
  }
  ASSERT_EQ(events.size(), 3u);  // two explicit exports + the dtor flush
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.name, "export.heartbeat");
    ASSERT_NE(ev.field("uptime_s"), nullptr);
    EXPECT_GE(std::get<double>(*ev.field("uptime_s")), 0.0);
    ASSERT_NE(ev.field("source"), nullptr);
    EXPECT_EQ(std::get<std::string>(*ev.field("source")), "obs_test");
  }
  // Heartbeats carry the counters flat; the stream shows progress over time.
  ASSERT_NE(events[0].field("exp.test.attempts"), nullptr);
  EXPECT_EQ(std::get<std::uint64_t>(*events[0].field("exp.test.attempts")), 5u);
  EXPECT_EQ(std::get<std::uint64_t>(*events[1].field("exp.test.attempts")), 8u);
  ASSERT_NE(events[0].field("exp.test.progress"), nullptr);
  EXPECT_DOUBLE_EQ(std::get<double>(*events[0].field("exp.test.progress")), 0.5);
  // seq increases monotonically across heartbeats.
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);

  std::remove(prom.c_str());
  std::remove(beats.c_str());
}

TEST(Exporter, HeartbeatCountsItself) {
  MetricsRegistry scratch;
  const ScopedMetricsRegistry override_guard(&scratch);
  const bool was_enabled = metrics_enabled();
  set_metrics_enabled(true);

  const std::string beats = ::testing::TempDir() + "jrsnd_exporter_count.jsonl";
  std::remove(beats.c_str());
  ExporterOptions options;
  options.heartbeat_path = beats;
  options.interval_s = 0.0;
  {
    MetricsExporter exporter(options);
    EXPECT_TRUE(exporter.export_now());
  }
  set_metrics_enabled(was_enabled);
  EXPECT_EQ(scratch.counter("export.heartbeats").value(), 2u);
  std::remove(beats.c_str());
}

TEST(Exporter, BackgroundThreadExportsPeriodically) {
  MetricsRegistry scratch;
  const ScopedMetricsRegistry override_guard(&scratch);
  ExporterOptions options;  // no destinations: pure cadence test
  options.interval_s = 0.005;
  MetricsExporter exporter(options);
  exporter.start();
  // The registry override is thread-local, so the background thread writes
  // the global registry; we only assert the export loop actually runs.
  const std::uint64_t before = exporter.exports();
  while (exporter.exports() < before + 2) std::this_thread::yield();
  exporter.stop();
  EXPECT_GE(exporter.exports(), before + 2);
}

TEST(Exporter, UnwritablePathReportsFailure) {
  ExporterOptions options;
  options.prometheus_path = "/nonexistent-dir-jrsnd/metrics.prom";
  MetricsExporter exporter(options);
  EXPECT_FALSE(exporter.export_now());
}

}  // namespace
}  // namespace jrsnd::obs
