#include "crypto/stream.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace jrsnd::crypto {
namespace {

SymmetricKey key_of(std::uint8_t fill) {
  SymmetricKey k;
  k.fill(fill);
  return k;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) { return {s.begin(), s.end()}; }

TEST(Stream, SealOpenRoundTrip) {
  Sealer sealer(key_of(1), "a->b");
  Unsealer unsealer(key_of(1), "a->b");
  const auto plaintext = bytes_of("attack at dawn");
  const SealedMessage sealed = sealer.seal(plaintext);
  const auto opened = unsealer.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Stream, CiphertextHidesPlaintext) {
  Sealer sealer(key_of(2), "d");
  const auto plaintext = bytes_of("secret");
  const SealedMessage sealed = sealer.seal(plaintext);
  EXPECT_NE(sealed.ciphertext, plaintext);
}

TEST(Stream, EmptyAndLargePayloads) {
  Sealer sealer(key_of(3), "d");
  Unsealer unsealer(key_of(3), "d");
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(*unsealer.open(sealer.seal(empty)), empty);
  Rng rng(1);
  std::vector<std::uint8_t> big(20000);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.uniform(256));
  EXPECT_EQ(*unsealer.open(sealer.seal(big)), big);
}

TEST(Stream, WrongKeyRejected) {
  Sealer sealer(key_of(4), "d");
  Unsealer wrong(key_of(5), "d");
  EXPECT_FALSE(wrong.open(sealer.seal(bytes_of("msg"))).has_value());
}

TEST(Stream, WrongDirectionRejected) {
  // A->B traffic must not unseal with the B->A keys (reflection attack).
  Sealer sealer(key_of(6), "a->b");
  Unsealer reflected(key_of(6), "b->a");
  EXPECT_FALSE(reflected.open(sealer.seal(bytes_of("msg"))).has_value());
}

TEST(Stream, TamperedCiphertextRejected) {
  Sealer sealer(key_of(7), "d");
  Unsealer unsealer(key_of(7), "d");
  SealedMessage sealed = sealer.seal(bytes_of("integrity"));
  sealed.ciphertext[0] ^= 1;
  EXPECT_FALSE(unsealer.open(sealed).has_value());
}

TEST(Stream, TamperedTagRejected) {
  Sealer sealer(key_of(8), "d");
  Unsealer unsealer(key_of(8), "d");
  SealedMessage sealed = sealer.seal(bytes_of("integrity"));
  sealed.tag[15] ^= 0x80;
  EXPECT_FALSE(unsealer.open(sealed).has_value());
}

TEST(Stream, TamperedCounterRejected) {
  Sealer sealer(key_of(9), "d");
  Unsealer unsealer(key_of(9), "d");
  SealedMessage sealed = sealer.seal(bytes_of("integrity"));
  sealed.counter += 5;  // tag covers the counter
  EXPECT_FALSE(unsealer.open(sealed).has_value());
}

TEST(Stream, ReplayRejected) {
  Sealer sealer(key_of(10), "d");
  Unsealer unsealer(key_of(10), "d");
  const SealedMessage sealed = sealer.seal(bytes_of("once"));
  ASSERT_TRUE(unsealer.open(sealed).has_value());
  EXPECT_FALSE(unsealer.open(sealed).has_value());  // replay
}

TEST(Stream, OutOfOrderOldMessagesRejected) {
  Sealer sealer(key_of(11), "d");
  Unsealer unsealer(key_of(11), "d");
  const SealedMessage first = sealer.seal(bytes_of("1"));
  const SealedMessage second = sealer.seal(bytes_of("2"));
  ASSERT_TRUE(unsealer.open(second).has_value());
  EXPECT_FALSE(unsealer.open(first).has_value());  // floor advanced past it
}

TEST(Stream, CountersIncreaseAndKeystreamsDiffer) {
  Sealer sealer(key_of(12), "d");
  const SealedMessage m1 = sealer.seal(bytes_of("same plaintext"));
  const SealedMessage m2 = sealer.seal(bytes_of("same plaintext"));
  EXPECT_LT(m1.counter, m2.counter);
  EXPECT_NE(m1.ciphertext, m2.ciphertext);  // fresh keystream per counter
}

TEST(Stream, WireRoundTrip) {
  Sealer sealer(key_of(13), "d");
  const SealedMessage sealed = sealer.seal(bytes_of("wire"));
  const auto parsed = SealedMessage::from_bytes(sealed.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->counter, sealed.counter);
  EXPECT_EQ(parsed->ciphertext, sealed.ciphertext);
  EXPECT_EQ(parsed->tag, sealed.tag);
}

TEST(Stream, FromBytesRejectsShortInput) {
  const std::vector<std::uint8_t> short_input(8 + kSealTagBytes - 1, 0);
  EXPECT_FALSE(SealedMessage::from_bytes(short_input).has_value());
}

// --- equivalence with an uncached reference implementation -----------------
//
// The production Sealer caches HMAC midstates and writes the keystream info
// header into a fixed binary buffer. This reference rebuilds every frame the
// slow way — fresh key schedules, per-field string concatenation — and the
// two must produce byte-identical wire frames.

namespace reference {

std::string be64_string(std::uint64_t v) {
  std::string s;
  for (int i = 7; i >= 0; --i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  return s;
}

std::vector<std::uint8_t> keystream(const SymmetricKey& enc_key, std::uint64_t counter,
                                    std::size_t length) {
  constexpr std::size_t kChunk = 255 * kSha256DigestSize;
  std::vector<std::uint8_t> out;
  for (std::uint64_t chunk = 0; out.size() < length; ++chunk) {
    const std::string info =
        "ctr:" + be64_string(counter) + ":" + be64_string(chunk);
    const auto part = expand(enc_key, info, std::min(kChunk, length - out.size()));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

SealedMessage seal(const SymmetricKey& pair_key, const std::string& direction,
                   std::uint64_t counter, std::span<const std::uint8_t> plaintext) {
  const SymmetricKey enc = derive_key(pair_key, "enc:" + direction);
  const SymmetricKey mac = derive_key(pair_key, "mac:" + direction);
  SealedMessage msg;
  msg.counter = counter;
  const auto ks = keystream(enc, counter, plaintext.size());
  msg.ciphertext.resize(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    msg.ciphertext[i] = static_cast<std::uint8_t>(plaintext[i] ^ ks[i]);
  }
  std::vector<std::uint8_t> mac_input;
  for (int i = 7; i >= 0; --i) {
    mac_input.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  }
  mac_input.insert(mac_input.end(), msg.ciphertext.begin(), msg.ciphertext.end());
  const Sha256Digest digest = hmac_sha256(mac, mac_input);
  std::copy(digest.begin(), digest.begin() + kSealTagBytes, msg.tag.begin());
  return msg;
}

}  // namespace reference

TEST(Stream, SealedFramesMatchUncachedReference) {
  const SymmetricKey pair_key = key_of(0x5e);
  Sealer sealer(pair_key, "a->b");
  Rng rng(42);
  // Payload sizes straddle the SHA-256 block and expand() chunk boundaries.
  for (const std::size_t len : {0u, 1u, 31u, 32u, 33u, 64u, 300u, 9000u}) {
    std::vector<std::uint8_t> plaintext(len);
    for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.uniform(256));
    const SealedMessage fast = sealer.seal(plaintext);
    const SealedMessage slow = reference::seal(pair_key, "a->b", fast.counter, plaintext);
    EXPECT_EQ(fast.ciphertext, slow.ciphertext) << "len=" << len;
    EXPECT_EQ(fast.tag, slow.tag) << "len=" << len;
  }
}

TEST(Stream, UnsealerOpensReferenceFrames) {
  // Frames produced by the uncached reference must open through the cached
  // Unsealer — interop in the other direction.
  const SymmetricKey pair_key = key_of(0x71);
  Unsealer unsealer(pair_key, "d");
  for (std::uint64_t counter = 1; counter <= 4; ++counter) {
    const auto plaintext = bytes_of("frame " + std::to_string(counter));
    const SealedMessage frame = reference::seal(pair_key, "d", counter, plaintext);
    const auto opened = unsealer.open(frame);
    ASSERT_TRUE(opened.has_value()) << counter;
    EXPECT_EQ(*opened, plaintext);
  }
}

}  // namespace
}  // namespace jrsnd::crypto
