#include "ecc/ecc_codec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace jrsnd::ecc {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(EccCodec, RejectsNonPositiveMu) {
  EXPECT_THROW(EccCodec(0.0), std::invalid_argument);
  EXPECT_THROW(EccCodec(-1.0), std::invalid_argument);
}

TEST(EccCodec, RoundTripClean) {
  const EccCodec codec(1.0);
  Rng rng(1);
  for (const std::size_t bits : {1u, 8u, 21u, 100u, 196u, 1000u, 3000u}) {
    const BitVector payload = random_bits(rng, bits);
    const BitVector coded = codec.encode(payload);
    const auto decoded = codec.decode(coded, bits);
    ASSERT_TRUE(decoded.has_value()) << bits << " bits";
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(EccCodec, CodedLengthNearNominal) {
  const EccCodec codec(1.0);
  // The actual coded length rounds to whole RS symbols; it must be at least
  // the nominal (1+mu)L and within a couple of symbols above it.
  for (const std::size_t bits : {21u, 196u, 512u, 2048u}) {
    const std::size_t actual = codec.coded_length_bits(bits);
    const std::size_t nominal = codec.nominal_coded_length_bits(bits);
    EXPECT_GE(actual + 16, nominal) << bits;  // tolerance: rounding of k
    EXPECT_LE(actual, nominal + 3 * 8 + 16) << bits;
  }
}

TEST(EccCodec, EncodedSizeMatchesDeclared) {
  const EccCodec codec(1.0);
  Rng rng(2);
  for (const std::size_t bits : {21u, 196u, 999u}) {
    const BitVector payload = random_bits(rng, bits);
    EXPECT_EQ(codec.encode(payload).size(), codec.coded_length_bits(bits));
  }
}

TEST(EccCodec, ToleratesErasureFractionContiguous) {
  // The paper's central claim: a contiguous jam of (slightly under)
  // mu/(1+mu) of the coded message must be survivable when flagged erased.
  const EccCodec codec(1.0);
  Rng rng(3);
  const std::size_t bits = 196;  // the auth-message payload size
  const BitVector payload = random_bits(rng, bits);
  BitVector coded = codec.encode(payload);

  const auto burst = static_cast<std::size_t>(
      static_cast<double>(coded.size()) * codec.erasure_tolerance() * 0.9);
  std::vector<std::size_t> erased;
  for (std::size_t i = 0; i < burst; ++i) {
    coded.set(i, rng.bernoulli(0.5));  // jammer garbage
    erased.push_back(i);
  }
  const auto decoded = codec.decode(coded, bits, erased);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(EccCodec, FailsWellBeyondTolerance) {
  const EccCodec codec(1.0);
  Rng rng(4);
  const std::size_t bits = 196;
  const BitVector payload = random_bits(rng, bits);
  BitVector coded = codec.encode(payload);

  // Erase 80% — far above the 50% tolerance.
  const auto burst = static_cast<std::size_t>(static_cast<double>(coded.size()) * 0.8);
  std::vector<std::size_t> erased;
  for (std::size_t i = 0; i < burst; ++i) {
    coded.flip(i);
    erased.push_back(i);
  }
  EXPECT_FALSE(codec.decode(coded, bits, erased).has_value());
}

TEST(EccCodec, ToleratesScatteredBitErrorsWithinErrorCapacity) {
  // Unflagged errors cost double: capacity is ~mu/(2(1+mu)) of the bits.
  // Flip one bit in each of a few well-separated symbols.
  const EccCodec codec(1.0);
  Rng rng(5);
  const std::size_t bits = 500;
  const BitVector payload = random_bits(rng, bits);
  BitVector coded = codec.encode(payload);
  const std::size_t symbols = coded.size() / 8;
  // Corrupt 10% of symbols (well under the ~25% error capacity).
  for (std::size_t s = 0; s < symbols; s += 10) coded.flip(s * 8 + 3);
  const auto decoded = codec.decode(coded, bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(EccCodec, InterleavingSpreadsBurstAcrossBlocks) {
  // A multi-block payload (>127 data bytes at mu=1) hit by one contiguous
  // burst of ~40% of the stream must still decode: interleaving splits the
  // burst evenly so no single block exceeds its own capacity.
  const EccCodec codec(1.0);
  Rng rng(6);
  const std::size_t bits = 300 * 8;  // 300 bytes -> 3 blocks
  const BitVector payload = random_bits(rng, bits);
  BitVector coded = codec.encode(payload);
  const auto start = coded.size() / 4;
  const auto len = static_cast<std::size_t>(static_cast<double>(coded.size()) * 0.4);
  std::vector<std::size_t> erased;
  for (std::size_t i = start; i < start + len && i < coded.size(); ++i) {
    coded.set(i, rng.bernoulli(0.5));
    erased.push_back(i);
  }
  const auto decoded = codec.decode(coded, bits, erased);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(EccCodec, WrongReceivedLengthRejected) {
  const EccCodec codec(1.0);
  Rng rng(7);
  const BitVector payload = random_bits(rng, 21);
  BitVector coded = codec.encode(payload);
  coded.push_back(false);
  EXPECT_FALSE(codec.decode(coded, 21).has_value());
}

TEST(EccCodec, ErasureIndexOutOfRangeRejected) {
  const EccCodec codec(1.0);
  Rng rng(8);
  const BitVector payload = random_bits(rng, 21);
  const BitVector coded = codec.encode(payload);
  const std::vector<std::size_t> bad = {coded.size()};
  EXPECT_FALSE(codec.decode(coded, 21, bad).has_value());
}

TEST(EccCodec, EmptyPayloadRejected) {
  const EccCodec codec(1.0);
  EXPECT_THROW((void)codec.encode(BitVector()), std::invalid_argument);
  EXPECT_FALSE(codec.decode(BitVector(16), 0).has_value());
}

class EccMuSweep : public ::testing::TestWithParam<double> {};

TEST_P(EccMuSweep, ToleranceScalesWithMu) {
  const double mu = GetParam();
  const EccCodec codec(mu);
  Rng rng(static_cast<std::uint64_t>(mu * 1000));
  const std::size_t bits = 200;
  const BitVector payload = random_bits(rng, bits);
  BitVector coded = codec.encode(payload);

  // Erase slightly under the advertised tolerance — must decode.
  const auto burst = static_cast<std::size_t>(
      static_cast<double>(coded.size()) * codec.erasure_tolerance() * 0.85);
  std::vector<std::size_t> erased;
  for (std::size_t i = 0; i < burst; ++i) {
    coded.set(i, rng.bernoulli(0.5));
    erased.push_back(i);
  }
  const auto decoded = codec.decode(coded, bits, erased);
  ASSERT_TRUE(decoded.has_value()) << "mu=" << mu;
  EXPECT_EQ(*decoded, payload);
}

INSTANTIATE_TEST_SUITE_P(Mus, EccMuSweep, ::testing::Values(0.25, 0.5, 1.0, 2.0, 3.0));

}  // namespace
}  // namespace jrsnd::ecc
