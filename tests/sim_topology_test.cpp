#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "common/rng.hpp"
#include "sim/mobility.hpp"
#include "sim/spatial_index.hpp"

namespace jrsnd::sim {
namespace {

TEST(Topology, LineOfThreeNodes) {
  const Field field(100.0, 100.0);
  // A -10- B -10- C with range 15: A-B and B-C adjacent, A-C not.
  const std::vector<Position> positions = {{10, 50}, {20, 50}, {30, 50}};
  const Topology topo(field, positions, 15.0);
  EXPECT_TRUE(topo.are_neighbors(node_id(0), node_id(1)));
  EXPECT_TRUE(topo.are_neighbors(node_id(1), node_id(2)));
  EXPECT_FALSE(topo.are_neighbors(node_id(0), node_id(2)));
  EXPECT_EQ(topo.pairs().size(), 2u);
  EXPECT_NEAR(topo.average_degree(), 4.0 / 3.0, 1e-12);
}

TEST(Topology, PairsAreOrderedAndUnique) {
  const Field field(100.0, 100.0);
  const std::vector<Position> positions = {{0, 0}, {5, 0}, {10, 0}, {5, 5}};
  const Topology topo(field, positions, 8.0);
  for (const auto& [a, b] : topo.pairs()) {
    EXPECT_LT(raw(a), raw(b));
    EXPECT_TRUE(topo.are_neighbors(a, b));
  }
}

TEST(Topology, RejectsNonPositiveRadius) {
  const Field field(10.0, 10.0);
  EXPECT_THROW(Topology(field, {{1, 1}}, 0.0), std::invalid_argument);
}

TEST(Topology, AverageDegreeMatchesExpectation) {
  // g ~= (n-1) pi a^2 / |field| for uniform placement (border effects small
  // when a << field size).
  Rng rng(1);
  const Field field(5000.0, 5000.0);
  const UniformPlacement placement(field, 2000, rng);
  const Topology topo(field, placement.snapshot(kSimStart), 300.0);
  const double expected = 1999.0 * M_PI * 300.0 * 300.0 / 25e6;
  EXPECT_NEAR(topo.average_degree(), expected, expected * 0.15);
}

TEST(Topology, OutOfRangeNodeThrows) {
  const Field field(10.0, 10.0);
  const Topology topo(field, {{1, 1}}, 5.0);
  EXPECT_THROW((void)topo.neighbors(node_id(1)), std::out_of_range);
  EXPECT_THROW((void)topo.position(node_id(1)), std::out_of_range);
}

TEST(LogicalGraph, EdgesAreUndirectedAndDeduplicated) {
  LogicalGraph g(5);
  g.add_edge(node_id(0), node_id(1));
  g.add_edge(node_id(1), node_id(0));  // duplicate
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(node_id(0), node_id(1)));
  EXPECT_TRUE(g.has_edge(node_id(1), node_id(0)));
  EXPECT_FALSE(g.has_edge(node_id(0), node_id(2)));
}

TEST(LogicalGraph, ReachabilityWithinHops) {
  // Path 0-1-2-3-4.
  LogicalGraph g(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) g.add_edge(node_id(i), node_id(i + 1));
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(1), 1));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(2), 1));
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(2), 2));
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(4), 4));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(4), 3));
}

TEST(LogicalGraph, SelfIsAlwaysReachable) {
  LogicalGraph g(3);
  EXPECT_TRUE(g.reachable_within(node_id(1), node_id(1), 0));
}

TEST(LogicalGraph, DisconnectedComponentsUnreachable) {
  LogicalGraph g(4);
  g.add_edge(node_id(0), node_id(1));
  g.add_edge(node_id(2), node_id(3));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(2), 100));
}

TEST(LogicalGraph, BfsDistances) {
  // Star: 0 at center, leaves 1-4; plus 5 isolated.
  LogicalGraph g(6);
  for (std::uint32_t leaf = 1; leaf <= 4; ++leaf) g.add_edge(node_id(0), node_id(leaf));
  const auto dist = g.bfs_distances(node_id(1), 2);
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[5], std::numeric_limits<std::size_t>::max());
}

TEST(LogicalGraph, BfsRespectsHopLimit) {
  LogicalGraph g(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) g.add_edge(node_id(i), node_id(i + 1));
  const auto dist = g.bfs_distances(node_id(0), 2);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], std::numeric_limits<std::size_t>::max());
}

// CSR adjacency vs the O(n^2) oracle: every row must hold exactly the nodes
// strictly within radius, ascending, and pairs() must stream exactly the
// upper-triangle pairs in lexicographic order.
TEST(Topology, PropertyMatchesBruteForceOracle) {
  struct Config {
    double w, h, radius;
    int n;
  };
  const Config configs[] = {
      {400.0, 400.0, 60.0, 150},
      {1500.0, 300.0, 120.0, 200},  // wide strip: boundary cells dominate
      {100.0, 100.0, 150.0, 50},    // radius beyond the field: near-clique
      {900.0, 900.0, 25.0, 180},    // sparse
  };
  std::uint64_t seed = 42;
  for (const Config& cfg : configs) {
    Rng rng(seed++);
    const Field field(cfg.w, cfg.h);
    std::vector<Position> positions;
    for (int i = 0; i < cfg.n; ++i) {
      positions.push_back({rng.uniform_real(0, cfg.w), rng.uniform_real(0, cfg.h)});
    }
    const Topology topo(field, positions, cfg.radius);
    std::vector<std::pair<NodeId, NodeId>> oracle_pairs;
    std::size_t total_degree = 0;
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
      std::vector<NodeId> oracle_row;
      for (std::uint32_t j = 0; j < positions.size(); ++j) {
        if (j == i) continue;
        const double dx = positions[j].x - positions[i].x;
        const double dy = positions[j].y - positions[i].y;
        if (dx * dx + dy * dy < cfg.radius * cfg.radius) {
          oracle_row.push_back(node_id(j));
          if (j > i) oracle_pairs.emplace_back(node_id(i), node_id(j));
        }
      }
      const auto row = topo.neighbors(node_id(i));
      ASSERT_EQ(std::vector<NodeId>(row.begin(), row.end()), oracle_row)
          << "field " << cfg.w << "x" << cfg.h << " node " << i;
      total_degree += row.size();
    }
    // pairs() must stream the oracle's lexicographic upper triangle exactly.
    std::vector<std::pair<NodeId, NodeId>> streamed;
    for (const auto& [a, b] : topo.pairs()) streamed.emplace_back(a, b);
    EXPECT_EQ(streamed, oracle_pairs);
    EXPECT_EQ(topo.pairs().size(), oracle_pairs.size());
    EXPECT_DOUBLE_EQ(topo.average_degree(),
                     static_cast<double>(total_degree) / static_cast<double>(cfg.n));
  }
}

// The index-backed constructor must produce the same adjacency as the
// snapshot constructor for identical positions.
TEST(Topology, BuildFromSpatialIndexMatchesSnapshot) {
  Rng rng(19);
  const Field field(600.0, 600.0);
  const double radius = 80.0;
  std::vector<Position> positions;
  for (int i = 0; i < 200; ++i) {
    positions.push_back({rng.uniform_real(0, 600), rng.uniform_real(0, 600)});
  }
  const SpatialIndex index(field, positions, radius);
  const Topology from_snapshot(field, positions, radius);
  const Topology from_index(field, index, radius);
  ASSERT_EQ(from_index.node_count(), from_snapshot.node_count());
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    const auto a = from_snapshot.neighbors(node_id(i));
    const auto b = from_index.neighbors(node_id(i));
    ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()))
        << "node " << i;
  }
  EXPECT_EQ(from_index.pairs().size(), from_snapshot.pairs().size());
}

TEST(Topology, IndexConstructorRejectsPartialIndex) {
  const Field field(100.0, 100.0);
  SpatialIndex index(field, std::size_t{3}, 10.0);
  index.insert(node_id(0), {1, 1});  // nodes 1 and 2 never inserted
  EXPECT_THROW(Topology(field, index, 10.0), std::invalid_argument);
}

TEST(Topology, EmptyAndSingleNode) {
  const Field field(100.0, 100.0);
  const Topology empty(field, std::vector<Position>{}, 10.0);
  EXPECT_EQ(empty.pairs().size(), 0u);
  EXPECT_EQ(empty.pairs().begin(), empty.pairs().end());
  const Topology one(field, {{5, 5}}, 10.0);
  EXPECT_EQ(one.pairs().size(), 0u);
  EXPECT_TRUE(one.neighbors(node_id(0)).empty());
}

// Repeated BFS queries share epoch-stamped scratch; answers must be
// identical no matter how many searches ran before (including interleaved
// bfs_distances and reachable_within on the same graph).
TEST(LogicalGraph, RepeatedQueriesWithSharedScratchAreIdentical) {
  Rng rng(5);
  LogicalGraph g(60);
  for (int e = 0; e < 150; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_int(0, 59));
    const auto b = static_cast<std::uint32_t>(rng.uniform_int(0, 59));
    if (a != b) g.add_edge(node_id(a), node_id(b));
  }
  const auto first = g.bfs_distances(node_id(0), 6);
  std::vector<bool> reach_first;
  for (std::uint32_t v = 0; v < 60; ++v) {
    reach_first.push_back(g.reachable_within(node_id(0), node_id(v), 3));
  }
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(g.bfs_distances(node_id(0), 6), first) << "round " << round;
    for (std::uint32_t v = 0; v < 60; ++v) {
      EXPECT_EQ(g.reachable_within(node_id(0), node_id(v), 3), reach_first[v])
          << "round " << round << " target " << v;
    }
    // Interleave searches from other sources to churn the epoch counter.
    (void)g.bfs_distances(node_id(static_cast<std::uint32_t>(round) % 60), 4);
  }
}

TEST(LogicalGraph, NeighborsIntoPreservesInsertionOrder) {
  LogicalGraph g(4);
  g.add_edge(node_id(1), node_id(3));
  g.add_edge(node_id(1), node_id(0));
  g.add_edge(node_id(2), node_id(1));
  std::vector<NodeId> out;
  g.neighbors_into(node_id(1), out);
  EXPECT_EQ(out, (std::vector<NodeId>{node_id(3), node_id(0), node_id(2)}));
  g.neighbors_into(node_id(0), out);  // reuses scratch, replaces contents
  EXPECT_EQ(out, std::vector<NodeId>{node_id(1)});
  EXPECT_THROW(g.neighbors_into(node_id(4), out), std::out_of_range);
}

TEST(LogicalGraph, TriangleVsTwoHop) {
  // The M-NDP nu = 2 scenario: A and B share common neighbor C.
  LogicalGraph g(3);
  g.add_edge(node_id(0), node_id(2));  // A - C
  g.add_edge(node_id(1), node_id(2));  // B - C
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(1), 2));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(1), 1));
}

}  // namespace
}  // namespace jrsnd::sim
