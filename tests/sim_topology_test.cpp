#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "common/rng.hpp"
#include "sim/mobility.hpp"

namespace jrsnd::sim {
namespace {

TEST(Topology, LineOfThreeNodes) {
  const Field field(100.0, 100.0);
  // A -10- B -10- C with range 15: A-B and B-C adjacent, A-C not.
  const std::vector<Position> positions = {{10, 50}, {20, 50}, {30, 50}};
  const Topology topo(field, positions, 15.0);
  EXPECT_TRUE(topo.are_neighbors(node_id(0), node_id(1)));
  EXPECT_TRUE(topo.are_neighbors(node_id(1), node_id(2)));
  EXPECT_FALSE(topo.are_neighbors(node_id(0), node_id(2)));
  EXPECT_EQ(topo.pairs().size(), 2u);
  EXPECT_NEAR(topo.average_degree(), 4.0 / 3.0, 1e-12);
}

TEST(Topology, PairsAreOrderedAndUnique) {
  const Field field(100.0, 100.0);
  const std::vector<Position> positions = {{0, 0}, {5, 0}, {10, 0}, {5, 5}};
  const Topology topo(field, positions, 8.0);
  for (const auto& [a, b] : topo.pairs()) {
    EXPECT_LT(raw(a), raw(b));
    EXPECT_TRUE(topo.are_neighbors(a, b));
  }
}

TEST(Topology, RejectsNonPositiveRadius) {
  const Field field(10.0, 10.0);
  EXPECT_THROW(Topology(field, {{1, 1}}, 0.0), std::invalid_argument);
}

TEST(Topology, AverageDegreeMatchesExpectation) {
  // g ~= (n-1) pi a^2 / |field| for uniform placement (border effects small
  // when a << field size).
  Rng rng(1);
  const Field field(5000.0, 5000.0);
  const UniformPlacement placement(field, 2000, rng);
  const Topology topo(field, placement.snapshot(kSimStart), 300.0);
  const double expected = 1999.0 * M_PI * 300.0 * 300.0 / 25e6;
  EXPECT_NEAR(topo.average_degree(), expected, expected * 0.15);
}

TEST(Topology, OutOfRangeNodeThrows) {
  const Field field(10.0, 10.0);
  const Topology topo(field, {{1, 1}}, 5.0);
  EXPECT_THROW((void)topo.neighbors(node_id(1)), std::out_of_range);
  EXPECT_THROW((void)topo.position(node_id(1)), std::out_of_range);
}

TEST(LogicalGraph, EdgesAreUndirectedAndDeduplicated) {
  LogicalGraph g(5);
  g.add_edge(node_id(0), node_id(1));
  g.add_edge(node_id(1), node_id(0));  // duplicate
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(node_id(0), node_id(1)));
  EXPECT_TRUE(g.has_edge(node_id(1), node_id(0)));
  EXPECT_FALSE(g.has_edge(node_id(0), node_id(2)));
}

TEST(LogicalGraph, ReachabilityWithinHops) {
  // Path 0-1-2-3-4.
  LogicalGraph g(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) g.add_edge(node_id(i), node_id(i + 1));
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(1), 1));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(2), 1));
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(2), 2));
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(4), 4));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(4), 3));
}

TEST(LogicalGraph, SelfIsAlwaysReachable) {
  LogicalGraph g(3);
  EXPECT_TRUE(g.reachable_within(node_id(1), node_id(1), 0));
}

TEST(LogicalGraph, DisconnectedComponentsUnreachable) {
  LogicalGraph g(4);
  g.add_edge(node_id(0), node_id(1));
  g.add_edge(node_id(2), node_id(3));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(2), 100));
}

TEST(LogicalGraph, BfsDistances) {
  // Star: 0 at center, leaves 1-4; plus 5 isolated.
  LogicalGraph g(6);
  for (std::uint32_t leaf = 1; leaf <= 4; ++leaf) g.add_edge(node_id(0), node_id(leaf));
  const auto dist = g.bfs_distances(node_id(1), 2);
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[5], std::numeric_limits<std::size_t>::max());
}

TEST(LogicalGraph, BfsRespectsHopLimit) {
  LogicalGraph g(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) g.add_edge(node_id(i), node_id(i + 1));
  const auto dist = g.bfs_distances(node_id(0), 2);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], std::numeric_limits<std::size_t>::max());
}

TEST(LogicalGraph, TriangleVsTwoHop) {
  // The M-NDP nu = 2 scenario: A and B share common neighbor C.
  LogicalGraph g(3);
  g.add_edge(node_id(0), node_id(2));  // A - C
  g.add_edge(node_id(1), node_id(2));  // B - C
  EXPECT_TRUE(g.reachable_within(node_id(0), node_id(1), 2));
  EXPECT_FALSE(g.reachable_within(node_id(0), node_id(1), 1));
}

}  // namespace
}  // namespace jrsnd::sim
