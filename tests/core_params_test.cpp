#include "core/params.hpp"

#include <gtest/gtest.h>

namespace jrsnd::core {
namespace {

TEST(Params, TableIDefaults) {
  const Params p = Params::defaults();
  EXPECT_EQ(p.n, 2000u);
  EXPECT_EQ(p.m, 100u);
  EXPECT_EQ(p.l, 40u);
  EXPECT_EQ(p.q, 20u);
  EXPECT_EQ(p.N, 512u);
  EXPECT_DOUBLE_EQ(p.R, 22e6);
  EXPECT_DOUBLE_EQ(p.rho, 1e-11);
  EXPECT_DOUBLE_EQ(p.mu, 1.0);
  EXPECT_EQ(p.nu, 2u);
  EXPECT_EQ(p.l_t, 5u);
  EXPECT_EQ(p.l_id, 16u);
  EXPECT_EQ(p.l_n, 20u);
  EXPECT_EQ(p.l_mac, 160u);
  EXPECT_EQ(p.l_nu, 4u);
  EXPECT_EQ(p.l_sig, 672u);
  EXPECT_DOUBLE_EQ(p.t_key, 11e-3);
  EXPECT_DOUBLE_EQ(p.t_sig, 5.7e-3);
  EXPECT_DOUBLE_EQ(p.t_ver, 35.5e-3);
  EXPECT_DOUBLE_EQ(p.field_width, 5000.0);
  EXPECT_DOUBLE_EQ(p.tx_range, 300.0);
  EXPECT_EQ(p.runs, 100u);
}

TEST(Params, DerivedMessageLengths) {
  const Params p = Params::defaults();
  EXPECT_EQ(p.hello_payload_bits(), 21u);
  EXPECT_DOUBLE_EQ(p.l_h(), 42.0);                  // (1+1)(5+16)
  EXPECT_DOUBLE_EQ(p.l_f(), 2.0 * (16 + 20 + 160)); // (1+mu)(l_id+l_n+l_mac)
}

TEST(Params, PredistDerivation) {
  const Params p = Params::defaults();
  const auto pre = p.predist();
  EXPECT_EQ(pre.node_count, 2000u);
  EXPECT_EQ(pre.codes_per_node, 100u);
  EXPECT_EQ(pre.holders_per_code, 40u);
  EXPECT_EQ(pre.groups_per_round(), 50u);  // ceil(2000/40)
  EXPECT_EQ(p.pool_size(), 5000u);         // s = w m
}

TEST(Params, TimingDerivation) {
  const Params p = Params::defaults();
  const auto t = p.timing();
  EXPECT_EQ(t.code_length_chips, 512u);
  EXPECT_DOUBLE_EQ(t.chip_rate_bps, 22e6);
  EXPECT_EQ(t.codes_per_node, 100u);
  EXPECT_EQ(t.hello_coded_bits, 42u);
}

TEST(Params, SummaryMentionsKeyValues) {
  const std::string s = Params::defaults().summary();
  EXPECT_NE(s.find("n=2000"), std::string::npos);
  EXPECT_NE(s.find("m=100"), std::string::npos);
  EXPECT_NE(s.find("l=40"), std::string::npos);
}

}  // namespace
}  // namespace jrsnd::core
