#include "common/bit_vector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace jrsnd {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVector, SizedConstructorZeroFilled) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SetGetFlip) {
  BitVector v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  v.flip(1);
  EXPECT_TRUE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVector, PushBackGrows) {
  BitVector v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(v.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitVector, AppendUintMsbFirst) {
  BitVector v;
  v.append_uint(0b1011, 4);
  EXPECT_EQ(v.to_string(), "1011");
  v.append_uint(0xff, 8);
  EXPECT_EQ(v.to_string(), "101111111111");
}

TEST(BitVector, AppendUintLeadingZeros) {
  BitVector v;
  v.append_uint(1, 8);
  EXPECT_EQ(v.to_string(), "00000001");
}

TEST(BitVector, ReadUintRoundTrip) {
  BitVector v;
  v.append_uint(0xdeadbeefcafe1234ULL, 64);
  EXPECT_EQ(v.read_uint(0, 64), 0xdeadbeefcafe1234ULL);
  EXPECT_EQ(v.read_uint(0, 16), 0xdeadu);
  EXPECT_EQ(v.read_uint(16, 16), 0xbeefu);
  EXPECT_EQ(v.read_uint(48, 16), 0x1234u);
}

TEST(BitVector, ReadUintUnalignedOffsets) {
  BitVector v = BitVector::from_string("0101100111000");
  EXPECT_EQ(v.read_uint(1, 4), 0b1011u);
  EXPECT_EQ(v.read_uint(5, 5), 0b00111u);
}

TEST(BitVector, FromToBytes) {
  const std::vector<std::uint8_t> bytes = {0xa5, 0x01, 0xff};
  const BitVector v = BitVector::from_bytes(bytes);
  EXPECT_EQ(v.size(), 24u);
  EXPECT_EQ(v.to_bytes(), bytes);
  EXPECT_EQ(v.to_string(), "101001010000000111111111");
}

TEST(BitVector, ToBytesPadsPartialByte) {
  const BitVector v = BitVector::from_string("101");
  const std::vector<std::uint8_t> expected = {0xa0};
  EXPECT_EQ(v.to_bytes(), expected);
}

TEST(BitVector, FromStringRejectsBadChars) {
  EXPECT_THROW((void)BitVector::from_string("10a"), std::invalid_argument);
}

TEST(BitVector, AppendConcatenates) {
  BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("0011");
  a.append(b);
  EXPECT_EQ(a.to_string(), "11000011");
}

TEST(BitVector, SliceExtractsRange) {
  const BitVector v = BitVector::from_string("110010101111");
  EXPECT_EQ(v.slice(2, 5).to_string(), "00101");
  EXPECT_EQ(v.slice(0, 0).size(), 0u);
  EXPECT_EQ(v.slice(0, 12).to_string(), v.to_string());
}

TEST(BitVector, SliceAcrossWordBoundary) {
  BitVector v;
  for (int i = 0; i < 200; ++i) v.push_back(i % 2 == 0);
  const BitVector s = v.slice(60, 10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s.get(i), (60 + i) % 2 == 0);
}

TEST(BitVector, XorSemantics) {
  const BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("1010");
  EXPECT_EQ(a.xor_with(b).to_string(), "0110");
}

TEST(BitVector, XorSizeMismatchThrows) {
  const BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("110");
  EXPECT_THROW((void)a.xor_with(b), std::invalid_argument);
}

TEST(BitVector, XorIsCommutativeAndSelfInverse) {
  Rng rng(9);
  BitVector a(333);
  BitVector b(333);
  for (std::size_t i = 0; i < 333; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
  }
  EXPECT_EQ(a.xor_with(b), b.xor_with(a));
  EXPECT_EQ(a.xor_with(b).xor_with(b), a);
}

TEST(BitVector, HammingDistance) {
  const BitVector a = BitVector::from_string("11110000");
  const BitVector b = BitVector::from_string("11001100");
  EXPECT_EQ(a.hamming_distance(b), 4u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVector, EqualityIncludesLength) {
  const BitVector a = BitVector::from_string("10");
  const BitVector b = BitVector::from_string("100");
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == BitVector::from_string("10"));
}

TEST(BitVector, RoundTripBytesRandom) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t len = 8 * (1 + rng.uniform(50));
    BitVector v(len);
    for (std::size_t i = 0; i < len; ++i) v.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(BitVector::from_bytes(v.to_bytes()), v);
  }
}


TEST(BitVector, AppendAtEveryAlignment) {
  // The word-level append must agree with bit-by-bit for every offset.
  Rng rng(555);
  for (std::size_t lead = 0; lead < 130; lead += 7) {
    for (const std::size_t extra : {1u, 63u, 64u, 65u, 130u}) {
      BitVector base(lead);
      for (std::size_t i = 0; i < lead; ++i) base.set(i, rng.bernoulli(0.5));
      BitVector suffix(extra);
      for (std::size_t i = 0; i < extra; ++i) suffix.set(i, rng.bernoulli(0.5));

      BitVector fast = base;
      fast.append(suffix);
      BitVector slow = base;
      for (std::size_t i = 0; i < extra; ++i) slow.push_back(suffix.get(i));
      ASSERT_EQ(fast, slow) << "lead=" << lead << " extra=" << extra;
      // And the result still accepts push_back cleanly.
      fast.push_back(true);
      slow.push_back(true);
      ASSERT_EQ(fast, slow);
    }
  }
}

TEST(BitVector, SliceAtEveryAlignment) {
  Rng rng(556);
  BitVector v(400);
  for (std::size_t i = 0; i < 400; ++i) v.set(i, rng.bernoulli(0.5));
  for (std::size_t offset = 0; offset < 140; offset += 11) {
    for (const std::size_t count : {0u, 1u, 63u, 64u, 65u, 200u}) {
      const BitVector s = v.slice(offset, count);
      ASSERT_EQ(s.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(s.get(i), v.get(offset + i)) << offset << "+" << i;
      }
      // Invariant check via equality with a rebuilt copy.
      BitVector rebuilt;
      for (std::size_t i = 0; i < count; ++i) rebuilt.push_back(s.get(i));
      ASSERT_EQ(s, rebuilt);
    }
  }
}

TEST(BitVector, InvertedFlipsEverythingAndKeepsInvariant) {
  Rng rng(557);
  for (const std::size_t len : {1u, 64u, 65u, 100u, 333u}) {
    BitVector v(len);
    for (std::size_t i = 0; i < len; ++i) v.set(i, rng.bernoulli(0.5));
    const BitVector inv = v.inverted();
    ASSERT_EQ(inv.size(), len);
    for (std::size_t i = 0; i < len; ++i) ASSERT_NE(inv.get(i), v.get(i));
    EXPECT_EQ(inv.popcount(), len - v.popcount());
    EXPECT_EQ(v.hamming_distance(inv), len);
    // Appending after inversion must not resurrect slack bits.
    BitVector grown = inv;
    grown.push_back(false);
    EXPECT_FALSE(grown.get(len));
  }
}

class BitVectorWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorWidthSweep, AppendReadRoundTrip) {
  const std::size_t width = GetParam();
  Rng rng(width);
  const std::uint64_t value = width == 64 ? rng.next() : rng.next() & ((1ULL << width) - 1);
  BitVector v;
  v.append_uint(0b101, 3);  // misalign
  v.append_uint(value, width);
  EXPECT_EQ(v.read_uint(3, width), value);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorWidthSweep,
                         ::testing::Values(1, 2, 5, 8, 13, 16, 20, 31, 32, 33, 48, 63, 64));

}  // namespace
}  // namespace jrsnd
