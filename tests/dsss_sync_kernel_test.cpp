// The word-aligned correlation kernel must agree exactly — bit-identical
// doubles, byte-identical SyncHits — with the naive slice-based reference
// path on every buffer length, bit offset, and word-boundary straddle.
#include "dsss/sync_kernel.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spread_code.hpp"
#include "dsss/spreader.hpp"

namespace jrsnd::dsss {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

/// The seed implementation the kernel replaced: slice out the window, then
/// correlate the copies. Ground truth for every kernel assertion below.
double naive_correlate(const BitVector& buffer, std::size_t offset, const SpreadCode& code) {
  const BitVector window = buffer.slice(offset, code.length());
  const std::size_t hamming = code.bits().xor_with(window).popcount();
  const auto n = static_cast<double>(code.length());
  return (n - 2.0 * static_cast<double>(hamming)) / n;
}

TEST(SyncKernel, HammingAtMatchesSliceOnRandomCorpus) {
  Rng rng(1);
  // Lengths chosen to cover sub-word codes, exact word multiples, and tails.
  for (const std::size_t n : {1UL, 7UL, 63UL, 64UL, 65UL, 100UL, 128UL, 200UL, 511UL, 512UL}) {
    const SpreadCode code = SpreadCode::random(rng, n);
    const BitVector buffer = random_bits(rng, n + 200);
    for (std::size_t offset = 0; offset + n <= buffer.size(); ++offset) {
      const BitVector window = buffer.slice(offset, n);
      EXPECT_EQ(hamming_at(buffer, offset, code.bits()), code.bits().hamming_distance(window))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(SyncKernel, CorrelateAtIsBitIdenticalToNaive) {
  Rng rng(2);
  for (const std::size_t n : {5UL, 64UL, 96UL, 127UL, 256UL, 512UL}) {
    const SpreadCode code = SpreadCode::random(rng, n);
    const BitVector buffer = random_bits(rng, n + 150);
    for (std::size_t offset = 0; offset + n <= buffer.size(); ++offset) {
      // Exact double equality: both sides compute (N - 2h) / N from the
      // same integer h, so any difference is a kernel bug, not rounding.
      EXPECT_EQ(correlate_at(buffer, offset, code.bits()), naive_correlate(buffer, offset, code))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(SyncKernel, ShiftTableMatchesNaiveAtAllAlignments) {
  Rng rng(3);
  for (const std::size_t n : {3UL, 64UL, 65UL, 128UL, 300UL, 512UL}) {
    const SpreadCode code = SpreadCode::random(rng, n);
    const ShiftTable table(code);
    EXPECT_EQ(table.length(), n);
    const BitVector buffer = random_bits(rng, n + 130);  // covers all 64 alignments twice
    for (std::size_t offset = 0; offset + n <= buffer.size(); ++offset) {
      EXPECT_EQ(table.correlate(buffer, offset), naive_correlate(buffer, offset, code))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(SyncKernel, ShiftTableHandlesBufferTailExactly) {
  // The last window of a buffer whose size is not a word multiple exercises
  // the mask rows against the BitVector zero-slack invariant.
  Rng rng(4);
  for (const std::size_t extra : {0UL, 1UL, 17UL, 63UL}) {
    const std::size_t n = 96;
    const SpreadCode code = SpreadCode::random(rng, n);
    const ShiftTable table(code);
    const BitVector buffer = random_bits(rng, n + extra);
    const std::size_t last = buffer.size() - n;
    EXPECT_EQ(table.correlate(buffer, last), naive_correlate(buffer, last, code));
    EXPECT_EQ(correlate_at(buffer, last, code.bits()), naive_correlate(buffer, last, code));
  }
}

TEST(SyncKernel, ShiftTablePerfectHitAndInverse) {
  Rng rng(5);
  const SpreadCode code = SpreadCode::random(rng, 512);
  const ShiftTable table(code);
  BitVector buffer = random_bits(rng, 37);  // unaligned start
  const std::size_t at = buffer.size();
  buffer.append(code.bits());
  buffer.append(code.bits().inverted());
  buffer.append(random_bits(rng, 11));
  EXPECT_DOUBLE_EQ(table.correlate(buffer, at), 1.0);
  EXPECT_DOUBLE_EQ(table.correlate(buffer, at + 512), -1.0);
}

TEST(SyncKernel, DespreadViaShiftTableMatchesSpreadCodePath) {
  Rng rng(6);
  const SpreadCode code = SpreadCode::random(rng, 128);
  const ShiftTable table(code);
  const BitVector message = random_bits(rng, 20);
  BitVector buffer = random_bits(rng, 77);
  const std::size_t at = buffer.size();
  buffer.append(spread(message, code));
  buffer.append(random_bits(rng, 13));

  const DespreadResult via_code = despread(buffer, at, 20, code, 0.15);
  const DespreadResult via_table = despread(buffer, at, 20, table, 0.15);
  EXPECT_EQ(via_table.bits, via_code.bits);
  EXPECT_EQ(via_table.erased_bits, via_code.erased_bits);
  EXPECT_EQ(via_table.bits, message);
}

// --- kernel scan vs. reference oracle --------------------------------------

void expect_same_hit(const std::optional<SyncHit>& kernel, const std::optional<SyncHit>& ref) {
  ASSERT_EQ(kernel.has_value(), ref.has_value());
  if (!kernel.has_value()) return;
  EXPECT_EQ(kernel->code_index, ref->code_index);
  EXPECT_EQ(kernel->chip_offset, ref->chip_offset);
  EXPECT_EQ(kernel->message.bits, ref->message.bits);
  EXPECT_EQ(kernel->message.erased_bits, ref->message.erased_bits);
}

TEST(SyncKernel, FindFirstMatchesReferenceOnPropertyCorpus) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const std::size_t n = 64 + static_cast<std::size_t>(rng.uniform(200));  // incl. non-multiples
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(6));
    std::vector<SpreadCode> codes;
    for (std::size_t i = 0; i < m; ++i) codes.push_back(SpreadCode::random(rng, n));
    const std::size_t bits = 3 + static_cast<std::size_t>(rng.uniform(6));

    BitVector buffer = random_bits(rng, static_cast<std::size_t>(rng.uniform(400)));
    const bool plant = rng.bernoulli(0.8);
    if (plant) {
      const BitVector message = random_bits(rng, bits);
      const std::size_t which = static_cast<std::size_t>(rng.uniform(m));
      buffer.append(spread(message, codes[which]));
    }
    buffer.append(random_bits(rng, static_cast<std::size_t>(rng.uniform(150))));

    expect_same_hit(find_first_message(buffer, codes, bits, 0.3),
                    find_first_message_reference(buffer, codes, bits, 0.3));
  }
}

TEST(SyncKernel, FindAllMatchesReferenceOnPropertyCorpus) {
  for (std::uint64_t seed = 100; seed <= 115; ++seed) {
    Rng rng(seed);
    const std::size_t n = 64 + static_cast<std::size_t>(rng.uniform(128));
    std::vector<SpreadCode> codes;
    for (std::size_t i = 0; i < 3; ++i) codes.push_back(SpreadCode::random(rng, n));
    const std::size_t bits = 4;

    BitVector buffer = random_bits(rng, static_cast<std::size_t>(rng.uniform(100)));
    const std::size_t messages = static_cast<std::size_t>(rng.uniform(4));
    for (std::size_t i = 0; i < messages; ++i) {
      buffer.append(spread(random_bits(rng, bits), codes[i % codes.size()]));
      buffer.append(random_bits(rng, static_cast<std::size_t>(rng.uniform(90))));
    }

    const std::vector<SyncHit> kernel = find_all_messages(buffer, codes, bits, 0.3);
    const std::vector<SyncHit> ref = find_all_messages_reference(buffer, codes, bits, 0.3);
    ASSERT_EQ(kernel.size(), ref.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < kernel.size(); ++i) {
      EXPECT_EQ(kernel[i].code_index, ref[i].code_index);
      EXPECT_EQ(kernel[i].chip_offset, ref[i].chip_offset);
      EXPECT_EQ(kernel[i].message.bits, ref[i].message.bits);
      EXPECT_EQ(kernel[i].message.erased_bits, ref[i].message.erased_bits);
    }
  }
}

TEST(SyncKernel, StartOffsetAgreesWithReference) {
  Rng rng(7);
  const SpreadCode code = SpreadCode::random(rng, 128);
  const BitVector message = random_bits(rng, 6);
  BitVector buffer = spread(message, code);
  const std::size_t second_at = buffer.size();
  buffer.append(spread(message, code));
  const std::vector<SpreadCode> codes = {code};
  for (const std::size_t start : {0UL, 1UL, second_at - 10, second_at, second_at + 1}) {
    expect_same_hit(find_first_message(buffer, codes, 6, 0.3, start),
                    find_first_message_reference(buffer, codes, 6, 0.3, start));
  }
}

#ifdef NDEBUG
// The mixed-length precondition asserts in debug builds; the documented
// release-mode behavior is a clean "no hit" so a misconfigured code pool
// cannot fabricate discoveries from out-of-bounds window reads.
TEST(SyncKernel, MixedCodeLengthsReturnNoHitInRelease) {
  Rng rng(8);
  std::vector<SpreadCode> mixed = {SpreadCode::random(rng, 128), SpreadCode::random(rng, 256)};
  const BitVector message = random_bits(rng, 4);
  BitVector buffer = spread(message, mixed[0]);
  buffer.append(random_bits(rng, 300));
  EXPECT_FALSE(find_first_message(buffer, mixed, 4, 0.3).has_value());
  EXPECT_TRUE(find_all_messages(buffer, mixed, 4, 0.3).empty());
  EXPECT_FALSE(find_first_message_reference(buffer, mixed, 4, 0.3).has_value());
  EXPECT_TRUE(find_all_messages_reference(buffer, mixed, 4, 0.3).empty());
}
#else
TEST(SyncKernel, MixedCodeLengthsAssertInDebug) {
  Rng rng(8);
  std::vector<SpreadCode> mixed = {SpreadCode::random(rng, 128), SpreadCode::random(rng, 256)};
  const BitVector buffer = random_bits(rng, 1024);
  EXPECT_DEATH((void)find_first_message(buffer, mixed, 4, 0.3), "mixed candidate code lengths");
  EXPECT_DEATH((void)find_all_messages(buffer, mixed, 4, 0.3), "mixed candidate code lengths");
}
#endif

}  // namespace
}  // namespace jrsnd::dsss
