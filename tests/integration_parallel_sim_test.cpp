// The parallel Monte-Carlo engine must be invisible in the results: run_all()
// under JRSND_THREADS=8 produces bit-identical PointResults to JRSND_THREADS=1
// (seed-ordered reduction), and per-thread scratch metrics fold back into the
// same totals a serial run records.
#include "core/discovery_sim.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/metrics_registry.hpp"

namespace jrsnd::core {
namespace {

ExperimentConfig parallel_config() {
  ExperimentConfig cfg;
  cfg.params = Params::defaults();
  cfg.params.n = 150;
  cfg.params.m = 20;
  cfg.params.l = 15;
  cfg.params.q = 20;  // nonzero so jammer/compromise counters fire
  cfg.params.field_width = 1500.0;
  cfg.params.field_height = 1500.0;
  cfg.params.runs = 8;
  cfg.base_seed = 42;
  cfg.jammer = JammerKind::Random;
  return cfg;
}

void set_threads(const char* value) { ASSERT_EQ(setenv("JRSND_THREADS", value, 1), 0); }

/// Exact (bit-level) Stat equality: both paths must fold the same RunResults
/// in the same order, so even Welford's variance matches to the last bit.
void expect_identical(const Stat& a, const Stat& b, const char* what) {
  ASSERT_EQ(a.count(), b.count()) << what;
  if (a.count() == 0) return;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

TEST(ParallelSim, RunAllBitIdenticalAcrossThreadCounts) {
  const DiscoverySimulator sim(parallel_config());

  set_threads("1");
  const PointResult serial = sim.run_all();
  set_threads("8");
  const PointResult parallel = sim.run_all();
  ASSERT_EQ(unsetenv("JRSND_THREADS"), 0);

  expect_identical(serial.p_dndp, parallel.p_dndp, "p_dndp");
  expect_identical(serial.p_mndp, parallel.p_mndp, "p_mndp");
  expect_identical(serial.p_mndp_conditional, parallel.p_mndp_conditional, "p_mndp_conditional");
  expect_identical(serial.p_jrsnd, parallel.p_jrsnd, "p_jrsnd");
  expect_identical(serial.latency_dndp, parallel.latency_dndp, "latency_dndp");
  expect_identical(serial.latency_mndp, parallel.latency_mndp, "latency_mndp");
  expect_identical(serial.latency_jrsnd, parallel.latency_jrsnd, "latency_jrsnd");
  expect_identical(serial.degree, parallel.degree, "degree");
  expect_identical(serial.compromised_codes, parallel.compromised_codes, "compromised_codes");
}

TEST(ParallelSim, MetricsTotalsMatchSerial) {
  const DiscoverySimulator sim(parallel_config());
  obs::set_metrics_enabled(true);

  obs::registry().reset();
  set_threads("1");
  (void)sim.run_all();
  const obs::MetricsSnapshot serial = obs::registry().snapshot();

  obs::registry().reset();
  set_threads("8");
  (void)sim.run_all();
  const obs::MetricsSnapshot parallel = obs::registry().snapshot();

  obs::set_metrics_enabled(false);
  ASSERT_EQ(unsetenv("JRSND_THREADS"), 0);

  // Counters are deterministic per seed, so absorbed per-thread scratch
  // registries must sum to exactly the serial totals.
  ASSERT_EQ(serial.counters.size(), parallel.counters.size());
  for (std::size_t i = 0; i < serial.counters.size(); ++i) {
    EXPECT_EQ(serial.counters[i].name, parallel.counters[i].name);
    EXPECT_EQ(serial.counters[i].value, parallel.counters[i].value)
        << serial.counters[i].name;
  }

  // Histogram *counts* (how many observations) are deterministic; *sums* are
  // wall-clock for the phase timers and legitimately differ between runs.
  ASSERT_EQ(serial.histograms.size(), parallel.histograms.size());
  for (std::size_t i = 0; i < serial.histograms.size(); ++i) {
    EXPECT_EQ(serial.histograms[i].name, parallel.histograms[i].name);
    EXPECT_EQ(serial.histograms[i].count, parallel.histograms[i].count)
        << serial.histograms[i].name;
  }
}

TEST(ParallelSim, SerialEnvValueRestoresHistoricalPath) {
  // Sanity: with the env pinned to 1, run_all still works and matches a
  // second identical invocation (pure determinism, no pool involved).
  const DiscoverySimulator sim(parallel_config());
  set_threads("1");
  const PointResult a = sim.run_all();
  const PointResult b = sim.run_all();
  ASSERT_EQ(unsetenv("JRSND_THREADS"), 0);
  expect_identical(a.p_jrsnd, b.p_jrsnd, "p_jrsnd");
  expect_identical(a.latency_dndp, b.latency_dndp, "latency_dndp");
}

}  // namespace
}  // namespace jrsnd::core
