// The whole system in one story, at chip granularity where it matters:
//
//   provisioning blobs -> D-NDP handshakes over the real DSSS pipeline ->
//   a pair whose shared codes are revoked falls back to M-NDP through the
//   logical graph (signature chains over session-code unicasts, final
//   session-code HELLO/CONFIRM) -> the recovered pair runs an encrypted,
//   authenticated secure channel over its fresh session code.
#include <gtest/gtest.h>

#include "jrsnd.hpp"

namespace jrsnd {
namespace {

struct FullStack {
  core::Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field{1000.0, 1000.0};
  sim::Topology topology;
  adversary::NullJammer clean;
  Rng phy_rng{11};
  dsss::NodeCodebookCache code_cache;
  core::ChipPhy phy;
  std::vector<core::NodeState> nodes;

  FullStack()
      : params(make_params()),
        authority(params.predist(), Rng(1)),
        ibc(2),
        // The square of core_mndp_test: A(0,0) B(60,0) C(0,80) D(60,80),
        // range 100: diagonals out of range.
        topology(field, {{0, 0}, {60, 0}, {0, 80}, {60, 80}}, 100.0),
        phy(params, topology, clean, codebook(), phy_rng) {
    Rng node_rng(3);
    for (std::uint32_t i = 0; i < params.n; ++i) {
      nodes.emplace_back(node_id(i), ibc.issue(node_id(i)),
                         authority.assignment().codes_of(node_id(i)), authority,
                         params.gamma, node_rng.split());
    }
  }

  static core::Params make_params() {
    core::Params p = core::Params::defaults();
    p.n = 4;
    p.m = 3;
    p.l = 4;  // every code held by all 4 nodes: every pair shares codes
    p.N = 64;
    p.tau = 0.3;
    p.nu = 3;
    p.field_width = 1000.0;
    p.field_height = 1000.0;
    return p;
  }

  core::ChipPhy::Codebook codebook() {
    // Called lazily per transmit (nodes are populated after phy's ctor);
    // the cache rebuilds a node's ShiftTables only when its codes change.
    return [this](NodeId node) -> const dsss::PreparedCodebook& {
      std::vector<dsss::SpreadCode> codes;
      for (const CodeId c : nodes[raw(node)].usable_codes()) {
        codes.push_back(authority.code(c));
      }
      return code_cache.prepare(node, codes);
    };
  }
};

TEST(FullStack, ProvisionDiscoverRecoverAndChat) {
  FullStack w;

  // --- 0. provisioning blobs flash-and-verify -----------------------------
  for (std::uint32_t i = 0; i < w.params.n; ++i) {
    const auto blob = predist::provision_node(w.authority, node_id(i));
    const auto parsed = predist::NodeProvisioning::parse(blob.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->code_ids, w.nodes[i].all_codes());
  }

  // --- 1. revoke A<->B's entire shared code set at node A, so the physical
  // pair (A, B) cannot run D-NDP and must go multi-hop.
  for (const CodeId c : w.authority.assignment().shared_codes(node_id(0), node_id(1))) {
    for (std::uint32_t k = 0; k <= w.params.gamma; ++k) {
      (void)w.nodes[0].revocation().report_invalid(c);
    }
  }
  EXPECT_TRUE(w.nodes[0].usable_codes().empty());

  // --- 2. D-NDP over the chip-accurate PHY on every physical pair ---------
  core::DndpEngine dndp(w.params, w.phy);
  std::size_t direct = 0;
  for (const auto& [a, b] : w.topology.pairs()) {
    direct += dndp.run(w.nodes[raw(a)], w.nodes[raw(b)]).discovered;
  }
  // A's codes are revoked: every pair touching A fails D-NDP; B-D and C-D
  // succeed. (Physical pairs: A-B, A-C, B-D, C-D.)
  EXPECT_EQ(direct, 2u);
  EXPECT_EQ(w.nodes[0].neighbor(node_id(1)), nullptr);

  // --- 2b. restore A (the authority re-enables it with fresh state) so it
  // can at least talk to C over a still-secret code... except A revoked
  // everything. Rebuild A's state from its provisioning blob — the real
  // "re-flash the radio" workflow.
  {
    const auto blob = predist::provision_node(w.authority, node_id(0));
    const auto parsed = predist::NodeProvisioning::parse(blob.serialize());
    ASSERT_TRUE(parsed.has_value());
    Rng fresh_rng(77);
    w.nodes[0] = core::NodeState(node_id(0), w.ibc.issue(node_id(0)), parsed->code_ids,
                                 w.authority, w.params.gamma, fresh_rng);
  }
  // A-C now discovers directly (C's link to A was never established, so
  // run D-NDP again for pairs touching A except A-B, which we keep broken
  // by re-revoking the A-B shared codes only).
  for (const CodeId c : w.authority.assignment().shared_codes(node_id(0), node_id(1))) {
    for (std::uint32_t k = 0; k <= w.params.gamma; ++k) {
      (void)w.nodes[0].revocation().report_invalid(c);
    }
  }
  // l = n here, so ALL codes are shared with B; A is deaf again. The
  // realistic fallback is therefore M-NDP via C and D, using the links
  // C-D, D-B... but A has no links at all. Give A one secret: a direct
  // manual pairing with C (out-of-band field exchange), the bootstrap
  // anchor the paper's logical-path argument needs.
  {
    const crypto::SymmetricKey key = w.nodes[0].key().shared_key(node_id(2));
    BitVector na(w.params.l_n);
    BitVector nb(w.params.l_n);
    const BitVector code = crypto::derive_session_code(key, na, nb, w.params.N);
    w.nodes[0].add_logical_neighbor(node_id(2), core::LogicalNeighbor{key, code, false});
    w.nodes[2].add_logical_neighbor(node_id(0), core::LogicalNeighbor{key, code, false});
  }

  // --- 3. M-NDP over the chip PHY: A floods via C; D forwards; B responds;
  // the session-code HELLO crosses the real A-B link. -----------------------
  core::MndpEngine mndp(w.params, w.phy, w.topology, w.ibc.oracle(), /*gps=*/true);
  const core::MndpStats stats = mndp.initiate(w.nodes[0], std::span<core::NodeState>(w.nodes));
  EXPECT_GE(stats.signature_verifications, 4u);
  ASSERT_NE(w.nodes[0].neighbor(node_id(1)), nullptr) << "M-NDP should recover A-B";
  ASSERT_NE(w.nodes[1].neighbor(node_id(0)), nullptr);
  EXPECT_TRUE(w.nodes[0].neighbor(node_id(1))->via_mndp);

  // --- 4. encrypted traffic over the recovered link, still at chip level --
  core::SecureChannel channel(w.nodes[0], w.nodes[1], w.phy);
  const auto reply = channel.send_text(node_id(0), "recovered via multi-hop");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "recovered via multi-hop");
  const auto back = channel.send_text(node_id(1), "ack");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "ack");
}

}  // namespace
}  // namespace jrsnd
