#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "sim/field.hpp"
#include "sim/spatial_index.hpp"

namespace jrsnd::sim {
namespace {

TEST(Field, BasicProperties) {
  const Field f(5000.0, 4000.0);
  EXPECT_DOUBLE_EQ(f.width(), 5000.0);
  EXPECT_DOUBLE_EQ(f.height(), 4000.0);
  EXPECT_DOUBLE_EQ(f.area(), 2e7);
}

TEST(Field, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Field(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(Field(10.0, -1.0), std::invalid_argument);
}

TEST(Field, ContainsAndClamp) {
  const Field f(100.0, 50.0);
  EXPECT_TRUE(f.contains({0.0, 0.0}));
  EXPECT_TRUE(f.contains({100.0, 50.0}));
  EXPECT_FALSE(f.contains({100.1, 10.0}));
  EXPECT_FALSE(f.contains({-0.1, 10.0}));
  const Position clamped = f.clamp({150.0, -20.0});
  EXPECT_DOUBLE_EQ(clamped.x, 100.0);
  EXPECT_DOUBLE_EQ(clamped.y, 0.0);
}

TEST(Field, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Field, OverlapAreaFormula) {
  // (pi - 3 sqrt(3)/4) a^2 from the paper's Theorem 3.
  const double a = 300.0;
  EXPECT_NEAR(expected_overlap_area(a), (M_PI - 3.0 * std::sqrt(3.0) / 4.0) * a * a, 1e-6);
}

TEST(Field, CommonNeighborFraction) {
  // 1 - 3 sqrt(3)/(4 pi) ~= 0.5865.
  EXPECT_NEAR(common_neighbor_fraction(), 0.5865, 1e-3);
}

TEST(SpatialIndex, MatchesBruteForce) {
  Rng rng(1);
  const Field field(1000.0, 1000.0);
  std::vector<Position> positions;
  for (int i = 0; i < 300; ++i) {
    positions.push_back({rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)});
  }
  const double radius = 120.0;
  const SpatialIndex index(field, positions, radius);

  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    const auto fast = index.within(positions[i], radius, node_id(i));
    std::vector<NodeId> slow;
    for (std::uint32_t j = 0; j < positions.size(); ++j) {
      if (j != i && distance(positions[i], positions[j]) < radius) slow.push_back(node_id(j));
    }
    EXPECT_EQ(fast, slow) << "node " << i;
  }
}

TEST(SpatialIndex, QueryAtFieldCorners) {
  const Field field(100.0, 100.0);
  const std::vector<Position> positions = {{0, 0}, {99, 99}, {0, 99}, {99, 0}, {50, 50}};
  const SpatialIndex index(field, positions, 30.0);
  EXPECT_TRUE(index.within({0, 0}, 30.0).size() == 1);  // itself (no exclude)
  EXPECT_TRUE(index.within({0, 0}, 30.0, node_id(0)).empty());
}

TEST(SpatialIndex, StrictlyWithinRadius) {
  const Field field(100.0, 100.0);
  const std::vector<Position> positions = {{0, 0}, {10, 0}};
  const SpatialIndex index(field, positions, 10.0);
  // Distance exactly 10 is NOT < 10.
  EXPECT_TRUE(index.within(positions[0], 10.0, node_id(0)).empty());
  const SpatialIndex wider(field, positions, 10.001);
  EXPECT_EQ(wider.within(positions[0], 10.001, node_id(0)).size(), 1u);
}

TEST(SpatialIndex, EmptyPositionsOk) {
  const Field field(10.0, 10.0);
  const std::vector<Position> none;
  const SpatialIndex index(field, none, 5.0);
  EXPECT_TRUE(index.within({5, 5}, 5.0).empty());
}

}  // namespace
}  // namespace jrsnd::sim
