#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/field.hpp"
#include "sim/spatial_index.hpp"

namespace jrsnd::sim {
namespace {

TEST(Field, BasicProperties) {
  const Field f(5000.0, 4000.0);
  EXPECT_DOUBLE_EQ(f.width(), 5000.0);
  EXPECT_DOUBLE_EQ(f.height(), 4000.0);
  EXPECT_DOUBLE_EQ(f.area(), 2e7);
}

TEST(Field, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Field(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(Field(10.0, -1.0), std::invalid_argument);
}

TEST(Field, ContainsAndClamp) {
  const Field f(100.0, 50.0);
  EXPECT_TRUE(f.contains({0.0, 0.0}));
  EXPECT_TRUE(f.contains({100.0, 50.0}));
  EXPECT_FALSE(f.contains({100.1, 10.0}));
  EXPECT_FALSE(f.contains({-0.1, 10.0}));
  const Position clamped = f.clamp({150.0, -20.0});
  EXPECT_DOUBLE_EQ(clamped.x, 100.0);
  EXPECT_DOUBLE_EQ(clamped.y, 0.0);
}

TEST(Field, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Field, OverlapAreaFormula) {
  // (pi - 3 sqrt(3)/4) a^2 from the paper's Theorem 3.
  const double a = 300.0;
  EXPECT_NEAR(expected_overlap_area(a), (M_PI - 3.0 * std::sqrt(3.0) / 4.0) * a * a, 1e-6);
}

TEST(Field, CommonNeighborFraction) {
  // 1 - 3 sqrt(3)/(4 pi) ~= 0.5865.
  EXPECT_NEAR(common_neighbor_fraction(), 0.5865, 1e-3);
}

TEST(SpatialIndex, MatchesBruteForce) {
  Rng rng(1);
  const Field field(1000.0, 1000.0);
  std::vector<Position> positions;
  for (int i = 0; i < 300; ++i) {
    positions.push_back({rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)});
  }
  const double radius = 120.0;
  const SpatialIndex index(field, positions, radius);

  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    const auto fast = index.within(positions[i], radius, node_id(i));
    std::vector<NodeId> slow;
    for (std::uint32_t j = 0; j < positions.size(); ++j) {
      if (j != i && distance(positions[i], positions[j]) < radius) slow.push_back(node_id(j));
    }
    EXPECT_EQ(fast, slow) << "node " << i;
  }
}

TEST(SpatialIndex, QueryAtFieldCorners) {
  const Field field(100.0, 100.0);
  const std::vector<Position> positions = {{0, 0}, {99, 99}, {0, 99}, {99, 0}, {50, 50}};
  const SpatialIndex index(field, positions, 30.0);
  EXPECT_TRUE(index.within({0, 0}, 30.0).size() == 1);  // itself (no exclude)
  EXPECT_TRUE(index.within({0, 0}, 30.0, node_id(0)).empty());
}

TEST(SpatialIndex, StrictlyWithinRadius) {
  const Field field(100.0, 100.0);
  const std::vector<Position> positions = {{0, 0}, {10, 0}};
  const SpatialIndex index(field, positions, 10.0);
  // Distance exactly 10 is NOT < 10.
  EXPECT_TRUE(index.within(positions[0], 10.0, node_id(0)).empty());
  const SpatialIndex wider(field, positions, 10.001);
  EXPECT_EQ(wider.within(positions[0], 10.001, node_id(0)).size(), 1u);
}

TEST(SpatialIndex, EmptyPositionsOk) {
  const Field field(10.0, 10.0);
  const std::vector<Position> none;
  const SpatialIndex index(field, none, 5.0);
  EXPECT_TRUE(index.within({5, 5}, 5.0).empty());
}

std::vector<NodeId> brute_force_within(const std::vector<Position>& positions,
                                       const Position& center, double radius,
                                       NodeId exclude) {
  std::vector<NodeId> out;
  for (std::uint32_t j = 0; j < positions.size(); ++j) {
    if (node_id(j) == exclude) continue;
    const double dx = positions[j].x - center.x;
    const double dy = positions[j].y - center.y;
    if (dx * dx + dy * dy < radius * radius) out.push_back(node_id(j));
  }
  return out;
}

// Property sweep: every (field size, radius, n) combination — including a
// field smaller than one cell and a radius comparable to the field — must
// agree with the O(n^2) oracle for every node-centered query.
TEST(SpatialIndex, PropertyMatchesBruteForceAcrossGeometries) {
  struct Config {
    double w, h, radius;
    int n;
  };
  const Config configs[] = {
      {50.0, 50.0, 60.0, 40},     // radius larger than the field: one cell
      {1000.0, 250.0, 40.0, 120}, // wide rectangle, many cols, few rows
      {300.0, 900.0, 75.0, 150},  // tall rectangle
      {2000.0, 2000.0, 150.0, 250},
      {100.0, 100.0, 1.0, 60},    // tiny radius: most queries empty
  };
  std::uint64_t seed = 100;
  for (const Config& cfg : configs) {
    Rng rng(seed++);
    const Field field(cfg.w, cfg.h);
    std::vector<Position> positions;
    for (int i = 0; i < cfg.n; ++i) {
      positions.push_back({rng.uniform_real(0, cfg.w), rng.uniform_real(0, cfg.h)});
    }
    const SpatialIndex index(field, positions, cfg.radius);
    std::vector<NodeId> fast;
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
      index.within_into(positions[i], cfg.radius, node_id(i), fast);
      EXPECT_EQ(fast, brute_force_within(positions, positions[i], cfg.radius, node_id(i)))
          << "field " << cfg.w << "x" << cfg.h << " r=" << cfg.radius << " node " << i;
      EXPECT_TRUE(std::is_sorted(fast.begin(), fast.end()));
    }
  }
}

// Randomized mobility: an incrementally maintained index must answer every
// query exactly like a fresh snapshot build of the same positions (and like
// the brute-force oracle).
TEST(SpatialIndex, IncrementalUpdatesMatchSnapshotRebuild) {
  Rng rng(7);
  const Field field(800.0, 800.0);
  const double radius = 90.0;
  const int n = 120;
  std::vector<Position> positions;
  for (int i = 0; i < n; ++i) {
    positions.push_back({rng.uniform_real(0, 800), rng.uniform_real(0, 800)});
  }
  SpatialIndex incremental(field, positions, radius);
  for (int step = 0; step < 25; ++step) {
    // Move a random third of the nodes by a random offset (clamped).
    for (int k = 0; k < n / 3; ++k) {
      const auto i = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
      positions[i] = field.clamp({positions[i].x + rng.uniform_real(-150, 150),
                                  positions[i].y + rng.uniform_real(-150, 150)});
      incremental.update(node_id(i), positions[i]);
    }
    const SpatialIndex snapshot(field, positions, radius);
    std::vector<NodeId> got, want;
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
      incremental.within_into(positions[i], radius, node_id(i), got);
      snapshot.within_into(positions[i], radius, node_id(i), want);
      ASSERT_EQ(got, want) << "step " << step << " node " << i;
      ASSERT_EQ(got, brute_force_within(positions, positions[i], radius, node_id(i)));
    }
  }
}

// A node oscillating across the same cell border must relink correctly every
// crossing — the regression mode for the intrusive-list update path.
TEST(SpatialIndex, RepeatedCellBorderCrossing) {
  const Field field(200.0, 100.0);
  const double radius = 50.0;  // cell size 50: border at x = 50
  std::vector<Position> positions = {{49.0, 25.0}, {52.0, 25.0}, {120.0, 25.0}};
  SpatialIndex index(field, positions, radius);
  for (int i = 0; i < 64; ++i) {
    positions[0].x = (i % 2 == 0) ? 51.0 : 49.0;  // hop across the border
    index.update(node_id(0), positions[0]);
    std::vector<NodeId> got;
    index.within_into(positions[0], radius, node_id(0), got);
    EXPECT_EQ(got, brute_force_within(positions, positions[0], radius, node_id(0)))
        << "crossing " << i;
    EXPECT_EQ(index.position(node_id(0)).x, positions[0].x);
  }
  // Same-cell move (no relink) still updates the stored position.
  index.update(node_id(0), {49.5, 26.0});
  EXPECT_EQ(index.position(node_id(0)).y, 26.0);
}

// within_into clears and refills caller scratch; the same vector must be
// reusable across queries without stale contents leaking through.
TEST(SpatialIndex, WithinIntoReusesScratch) {
  const Field field(100.0, 100.0);
  const std::vector<Position> positions = {{10, 10}, {15, 10}, {90, 90}};
  const SpatialIndex index(field, positions, 20.0);
  std::vector<NodeId> scratch;
  index.within_into({10, 10}, 20.0, node_id(0), scratch);
  EXPECT_EQ(scratch.size(), 1u);
  index.within_into({90, 90}, 20.0, node_id(2), scratch);
  EXPECT_TRUE(scratch.empty());  // previous result must not persist
  index.within_into({12, 10}, 20.0, kInvalidNode, scratch);
  EXPECT_EQ(scratch.size(), 2u);
  EXPECT_TRUE(std::is_sorted(scratch.begin(), scratch.end()));
}

}  // namespace
}  // namespace jrsnd::sim
