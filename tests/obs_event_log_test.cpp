#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/sinks.hpp"

namespace jrsnd::obs {
namespace {

/// Collects everything written to it, for asserting on fan-out.
class CaptureSink final : public EventSink {
 public:
  void write(const TraceEvent& event) override { events.push_back(event); }
  std::vector<TraceEvent> events;
};

TEST(TraceEvent, WithAppendsAndFieldLooksUp) {
  TraceEvent ev("dndp.pair", Severity::Warn);
  ev.with("a", std::uint64_t{4}).with("ok", false).with("rate", 0.5);
  EXPECT_EQ(ev.name, "dndp.pair");
  EXPECT_EQ(ev.severity, Severity::Warn);
  ASSERT_NE(ev.field("a"), nullptr);
  EXPECT_EQ(std::get<std::uint64_t>(*ev.field("a")), 4u);
  EXPECT_EQ(std::get<bool>(*ev.field("ok")), false);
  EXPECT_EQ(ev.field("missing"), nullptr);
}

TEST(SeverityNames, RoundTrip) {
  for (const Severity sev : {Severity::Debug, Severity::Info, Severity::Warn, Severity::Error}) {
    const auto parsed = parse_severity(severity_name(sev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, sev);
  }
  EXPECT_FALSE(parse_severity("loud").has_value());
}

TEST(EventLog, EmitStampsSequenceAndSimTime) {
  EventLog log;
  auto sink = std::make_shared<CaptureSink>();
  log.attach(sink);
  log.set_sim_time(12.5);

  log.emit(TraceEvent("first"));
  TraceEvent pre_stamped("second");
  pre_stamped.t = 3.0;  // carries its own time: emit must not overwrite it
  log.emit(std::move(pre_stamped));

  ASSERT_EQ(sink->events.size(), 2u);
  EXPECT_EQ(sink->events[0].seq, 1u);
  EXPECT_DOUBLE_EQ(sink->events[0].t, 12.5);
  EXPECT_EQ(sink->events[1].seq, 2u);
  EXPECT_DOUBLE_EQ(sink->events[1].t, 3.0);
  EXPECT_EQ(log.emitted(), 2u);
}

TEST(EventLog, RingIsCappedOldestFirst) {
  EventLog log(/*ring_capacity=*/2);
  log.emit(TraceEvent("e1"));
  log.emit(TraceEvent("e2"));
  log.emit(TraceEvent("e3"));
  const std::vector<TraceEvent> recent = log.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].name, "e2");
  EXPECT_EQ(recent[1].name, "e3");

  log.clear();
  EXPECT_TRUE(log.recent().empty());
  log.emit(TraceEvent("e4"));
  EXPECT_EQ(log.recent().front().seq, 4u);  // numbering continues
}

TEST(EventLog, DetachAllStopsFanOut) {
  EventLog log;
  auto sink = std::make_shared<CaptureSink>();
  log.attach(sink);
  log.emit(TraceEvent("seen"));
  log.detach_all();
  log.emit(TraceEvent("unseen"));
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].name, "seen");
}

TEST(Jsonl, WriteThenParseRoundTripsAllFieldTypes) {
  TraceEvent ev("obs.test", Severity::Debug);
  ev.t = 1.25;
  ev.seq = 7;
  ev.with("s", std::string("hello \"world\"\n\t\\"))
      .with("d", 2.5)
      .with("i", std::int64_t{-3})
      .with("u", std::uint64_t{18446744073709551615ull})
      .with("b", true);

  std::ostringstream os;
  write_jsonl(os, ev);
  const std::string line = os.str();
  EXPECT_EQ(line.back(), '\n');

  const auto parsed = parse_jsonl_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->t, 1.25);
  EXPECT_EQ(parsed->seq, 7u);
  EXPECT_EQ(parsed->severity, Severity::Debug);
  EXPECT_EQ(parsed->name, "obs.test");
  EXPECT_EQ(std::get<std::string>(*parsed->field("s")), "hello \"world\"\n\t\\");
  EXPECT_DOUBLE_EQ(std::get<double>(*parsed->field("d")), 2.5);
  EXPECT_EQ(std::get<std::int64_t>(*parsed->field("i")), -3);
  EXPECT_EQ(std::get<std::uint64_t>(*parsed->field("u")), 18446744073709551615ull);
  EXPECT_EQ(std::get<bool>(*parsed->field("b")), true);
}

TEST(Jsonl, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_jsonl_line("").has_value());
  EXPECT_FALSE(parse_jsonl_line("not json").has_value());
  EXPECT_FALSE(parse_jsonl_line("{\"event\":\"x\"").has_value());      // unterminated
  EXPECT_FALSE(parse_jsonl_line("{\"event\":\"x\"} trailing").has_value());
  EXPECT_FALSE(parse_jsonl_line("[1,2,3]").has_value());               // not an object
  EXPECT_FALSE(parse_jsonl_line("{\"a\":}").has_value());
}

TEST(Jsonl, ParseToleratesMissingReservedKeys) {
  const auto parsed = parse_jsonl_line("{\"k\":1}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "");
  EXPECT_EQ(parsed->seq, 0u);
  ASSERT_NE(parsed->field("k"), nullptr);
}

TEST(Jsonl, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Sinks, JsonlStreamSinkWritesParseableLines) {
  std::ostringstream os;
  EventLog log;
  log.attach(std::make_shared<JsonlStreamSink>(os));
  log.emit(TraceEvent("one").with("v", std::uint64_t{1}));
  log.emit(TraceEvent("two").with("v", std::uint64_t{2}));

  std::istringstream in(os.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const auto parsed = parse_jsonl_line(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Sinks, PrettyPrintSinkRendersHumanReadably) {
  std::ostringstream os;
  PrettyPrintSink sink(os);
  TraceEvent ev("dndp.pair", Severity::Warn);
  ev.t = 2.0;
  ev.with("a", std::uint64_t{4}).with("discovered", false);
  sink.write(ev);
  const std::string out = os.str();
  EXPECT_NE(out.find("dndp.pair"), std::string::npos);
  EXPECT_NE(out.find("warn"), std::string::npos);
  EXPECT_NE(out.find("a=4"), std::string::npos);
  EXPECT_NE(out.find("discovered=false"), std::string::npos);
}

TEST(Tracing, GlobalHelperRespectsEnabledFlag) {
  const bool before = tracing_enabled();
  set_tracing_enabled(false);
  const std::uint64_t emitted_before = event_log().emitted();
  trace_event(TraceEvent("obs_test.dropped"));
  EXPECT_EQ(event_log().emitted(), emitted_before);

  set_tracing_enabled(true);
  trace_event(TraceEvent("obs_test.kept"));
  EXPECT_EQ(event_log().emitted(), emitted_before + 1);
  set_tracing_enabled(before);
}

}  // namespace
}  // namespace jrsnd::obs
