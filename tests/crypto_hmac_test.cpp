#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"

namespace jrsnd::crypto {
namespace {

std::string digest_hex(const Sha256Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, std::string("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key_str = "Jefe";
  const std::vector<std::uint8_t> key(key_str.begin(), key_str.end());
  EXPECT_EQ(digest_hex(hmac_sha256(key, std::string("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(digest_hex(hmac_sha256(
                key, std::string("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, EmptyKeyAndMessageDeterministic) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(hmac_sha256(empty, empty), hmac_sha256(empty, empty));
}

TEST(Hmac, KeySensitivity) {
  const std::vector<std::uint8_t> k1 = {1, 2, 3};
  const std::vector<std::uint8_t> k2 = {1, 2, 4};
  EXPECT_NE(hmac_sha256(k1, std::string("msg")), hmac_sha256(k2, std::string("msg")));
}

TEST(Hmac, MessageSensitivity) {
  const std::vector<std::uint8_t> key = {9, 9, 9};
  EXPECT_NE(hmac_sha256(key, std::string("msg1")), hmac_sha256(key, std::string("msg2")));
}

// The midstate-cached HmacKey must be byte-identical to hmac_sha256 — the
// RFC 4231 vectors again, this time through the cached path.
TEST(HmacKey, Rfc4231Vectors) {
  {
    const std::vector<std::uint8_t> key(20, 0x0b);
    EXPECT_EQ(digest_hex(HmacKey(key).mac(std::string("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  }
  {
    const std::string key_str = "Jefe";
    const std::vector<std::uint8_t> key(key_str.begin(), key_str.end());
    EXPECT_EQ(digest_hex(HmacKey(key).mac(std::string("what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  }
  {
    const std::vector<std::uint8_t> key(20, 0xaa);
    const std::vector<std::uint8_t> msg(50, 0xdd);
    EXPECT_EQ(digest_hex(HmacKey(key).mac(msg)),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
  }
  {
    // Key longer than the block size must be hashed first.
    const std::vector<std::uint8_t> key(131, 0xaa);
    EXPECT_EQ(digest_hex(HmacKey(key).mac(
                  std::string("Test Using Larger Than Block-Size Key - Hash Key First"))),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
  }
}

TEST(HmacKey, MatchesFreeFunctionAcrossKeyAndMessageSizes) {
  // Sweep key lengths around the 64-byte block boundary and message lengths
  // around the SHA-256 padding boundaries.
  for (const std::size_t key_len : {0u, 1u, 32u, 63u, 64u, 65u, 131u}) {
    std::vector<std::uint8_t> key(key_len);
    for (std::size_t i = 0; i < key_len; ++i) key[i] = static_cast<std::uint8_t>(i * 7 + 1);
    const HmacKey prepared(key);
    for (const std::size_t msg_len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 200u}) {
      std::vector<std::uint8_t> msg(msg_len);
      for (std::size_t i = 0; i < msg_len; ++i) msg[i] = static_cast<std::uint8_t>(i ^ 0x5a);
      EXPECT_EQ(prepared.mac(msg), hmac_sha256(key, msg))
          << "key_len=" << key_len << " msg_len=" << msg_len;
    }
  }
}

TEST(HmacKey, StreamingFormMatchesOneShot) {
  const std::vector<std::uint8_t> key = {1, 2, 3, 4, 5};
  const HmacKey prepared(key);
  const std::vector<std::uint8_t> part1 = {0x10, 0x20, 0x30};
  const std::vector<std::uint8_t> part2 = {0x40};
  const std::vector<std::uint8_t> part3 = {0x50, 0x60, 0x70, 0x80, 0x90};

  Sha256 ctx = prepared.inner_context();
  ctx.update(part1);
  ctx.update(part2);
  ctx.update(part3);
  const Sha256Digest streamed = prepared.finish(ctx);

  std::vector<std::uint8_t> whole;
  whole.insert(whole.end(), part1.begin(), part1.end());
  whole.insert(whole.end(), part2.begin(), part2.end());
  whole.insert(whole.end(), part3.begin(), part3.end());
  EXPECT_EQ(streamed, hmac_sha256(key, whole));
}

TEST(HmacKey, ReusableAcrossManyMessages) {
  // One key object, many MACs: the cached midstates must not be consumed.
  const std::vector<std::uint8_t> key(32, 0xc3);
  const HmacKey prepared(key);
  for (int i = 0; i < 10; ++i) {
    const std::string msg = "message " + std::to_string(i);
    EXPECT_EQ(prepared.mac(msg), hmac_sha256(key, msg));
  }
}

TEST(DigestEqual, ExactComparison) {
  Sha256Digest a{};
  Sha256Digest b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
  b[31] = 0;
  b[0] = 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace jrsnd::crypto
