#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"

namespace jrsnd::crypto {
namespace {

std::string digest_hex(const Sha256Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, std::string("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key_str = "Jefe";
  const std::vector<std::uint8_t> key(key_str.begin(), key_str.end());
  EXPECT_EQ(digest_hex(hmac_sha256(key, std::string("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(digest_hex(hmac_sha256(
                key, std::string("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, EmptyKeyAndMessageDeterministic) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(hmac_sha256(empty, empty), hmac_sha256(empty, empty));
}

TEST(Hmac, KeySensitivity) {
  const std::vector<std::uint8_t> k1 = {1, 2, 3};
  const std::vector<std::uint8_t> k2 = {1, 2, 4};
  EXPECT_NE(hmac_sha256(k1, std::string("msg")), hmac_sha256(k2, std::string("msg")));
}

TEST(Hmac, MessageSensitivity) {
  const std::vector<std::uint8_t> key = {9, 9, 9};
  EXPECT_NE(hmac_sha256(key, std::string("msg1")), hmac_sha256(key, std::string("msg2")));
}

TEST(DigestEqual, ExactComparison) {
  Sha256Digest a{};
  Sha256Digest b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
  b[31] = 0;
  b[0] = 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace jrsnd::crypto
