#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "fhss/fhss_link.hpp"

namespace jrsnd::fhss {
namespace {

crypto::SymmetricKey key_of(std::uint8_t fill) {
  crypto::SymmetricKey k;
  k.fill(fill);
  return k;
}

TEST(HopSequence, KeyedIsDeterministicAndKeySeparated) {
  const KeyedHopSequence a(key_of(1), 100);
  const KeyedHopSequence a2(key_of(1), 100);
  const KeyedHopSequence b(key_of(2), 100);
  int same_ab = 0;
  for (std::uint64_t t = 0; t < 200; ++t) {
    EXPECT_EQ(a.channel(t), a2.channel(t));
    EXPECT_LT(a.channel(t), 100u);
    same_ab += a.channel(t) == b.channel(t);
  }
  // Independent keys coincide ~1/c of the time.
  EXPECT_LT(same_ab, 12);
}

TEST(HopSequence, KeyedIsRoughlyUniform) {
  const KeyedHopSequence seq(key_of(7), 16);
  std::vector<int> counts(16, 0);
  constexpr int kSlots = 16000;
  for (std::uint64_t t = 0; t < kSlots; ++t) ++counts[seq.channel(t)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSlots, 1.0 / 16.0, 0.01);
  }
}

TEST(HopSequence, RandomSequencesDifferBySeed) {
  const RandomHopSequence a(1, 50);
  const RandomHopSequence b(2, 50);
  int same = 0;
  for (std::uint64_t t = 0; t < 500; ++t) same += a.channel(t) == b.channel(t);
  EXPECT_LT(same, 30);  // ~1/50 expected
  EXPECT_EQ(RandomHopSequence(1, 50).channel(17), a.channel(17));
}

TEST(HopSequence, RejectsZeroChannels) {
  EXPECT_THROW(KeyedHopSequence(key_of(0), 0), std::invalid_argument);
  EXPECT_THROW(RandomHopSequence(1, 0), std::invalid_argument);
}

TEST(FhssChannel, CleanDeliveryAndSilence) {
  FhssChannel medium(10);
  medium.begin_slot();
  medium.transmit(0, 3, 42);
  EXPECT_EQ(medium.listen(3), 42u);
  EXPECT_FALSE(medium.listen(4).has_value());
}

TEST(FhssChannel, CollisionDestroysBoth) {
  FhssChannel medium(10);
  medium.begin_slot();
  medium.transmit(0, 3, 42);
  medium.transmit(1, 3, 43);
  EXPECT_FALSE(medium.listen(3).has_value());
}

TEST(FhssChannel, JammingDestroysTransmission) {
  FhssChannel medium(10);
  medium.begin_slot();
  medium.transmit(0, 3, 42);
  medium.jam(3);
  EXPECT_FALSE(medium.listen(3).has_value());
  EXPECT_EQ(medium.jammed_channels_this_slot(), 1u);
}

TEST(FhssChannel, BeginSlotClearsState) {
  FhssChannel medium(10);
  medium.begin_slot();
  medium.transmit(0, 3, 42);
  medium.jam(5);
  medium.begin_slot();
  EXPECT_FALSE(medium.listen(3).has_value());
  EXPECT_EQ(medium.transmissions_this_slot(), 0u);
  EXPECT_EQ(medium.jammed_channels_this_slot(), 0u);
}

TEST(FhssChannel, JamRandomCoversDistinctChannels) {
  FhssChannel medium(20);
  Rng rng(1);
  medium.begin_slot();
  medium.jam_random(10, rng);
  EXPECT_EQ(medium.jammed_channels_this_slot(), 10u);
  medium.begin_slot();
  medium.jam_random(100, rng);  // over-request saturates
  EXPECT_EQ(medium.jammed_channels_this_slot(), 20u);
}

TEST(FhssChannel, BoundsChecked) {
  FhssChannel medium(4);
  medium.begin_slot();
  EXPECT_THROW(medium.transmit(0, 4, 1), std::out_of_range);
  EXPECT_THROW(medium.jam(4), std::out_of_range);
}

TEST(FhssLink, KeyedLinkSurvivesRandomJamming) {
  // Delivery rate ~ 1 - z/c when the jammer cannot predict the hops.
  const FhssLink link(key_of(9), 100);
  Rng rng(2);
  const auto result = link.run(20000, 10, /*jammer_has_key=*/false, rng);
  EXPECT_NEAR(result.delivery_rate(), 0.9, 0.01);
}

TEST(FhssLink, LeakedKeyIsFatal) {
  // The FH analogue of a compromised spread code: lockstep jamming.
  const FhssLink link(key_of(9), 100);
  Rng rng(3);
  const auto result = link.run(2000, 1, /*jammer_has_key=*/true, rng);
  EXPECT_EQ(result.delivered, 0u);
}

TEST(FhssLink, NoJammerFullDelivery) {
  const FhssLink link(key_of(4), 64);
  Rng rng(4);
  const auto result = link.run(5000, 0, false, rng);
  EXPECT_EQ(result.delivered, result.slots);
}

TEST(UfhChannelExchange, TransfersAndMatchesSlotModel) {
  // The channel-level exchange must reproduce the slot-probability model's
  // expected transfer time (same validation pattern as ChipPhy vs
  // AbstractPhy).
  baselines::UfhParams p;
  p.channels = 25;
  p.jammed_channels = 3;
  p.fragments = 4;
  Rng rng(5);
  BitVector msg(256);
  for (std::size_t i = 0; i < 256; ++i) msg.set(i, rng.bernoulli(0.5));
  const baselines::UfhFragmentChain chain(p, msg);

  UfhChannelExchange channel_level(p, rng);
  baselines::UfhExchange slot_level(p, rng);

  double channel_slots = 0.0;
  double slot_slots = 0.0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    const auto cr = channel_level.run(chain);
    ASSERT_TRUE(cr.reassembled);
    channel_slots += static_cast<double>(cr.slots);
    const auto sr = slot_level.run(chain);
    ASSERT_TRUE(sr.reassembled);
    slot_slots += static_cast<double>(sr.slots);
  }
  channel_slots /= kTrials;
  slot_slots /= kTrials;
  EXPECT_NEAR(channel_slots / slot_slots, 1.0, 0.30);
}

TEST(UfhChannelExchange, RejectsOverwhelmedChannels) {
  baselines::UfhParams p;
  p.channels = 8;
  p.jammed_channels = 8;
  Rng rng(6);
  EXPECT_THROW(UfhChannelExchange(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace jrsnd::fhss
