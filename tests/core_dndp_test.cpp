#include "core/dndp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "adversary/compromise.hpp"
#include "adversary/jammer.hpp"
#include "core/abstract_phy.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {
namespace {

// A small fully-connected world: 20 nodes in a 100x100 m field with 500 m
// range, m = 6 codes from pools with l = 10 holders — most pairs share codes.
struct SmallWorld {
  Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field;
  sim::Topology topology;
  Rng phy_rng;
  std::vector<NodeState> nodes;

  explicit SmallWorld(std::uint64_t seed)
      : params(make_params()),
        authority(params.predist(), Rng(seed)),
        ibc(seed + 1),
        field(params.field_width, params.field_height),
        topology(field, grid_positions(params.n), params.tx_range),
        phy_rng(seed + 2) {
    Rng node_rng(seed + 3);
    for (std::uint32_t i = 0; i < params.n; ++i) {
      const NodeId id = node_id(i);
      nodes.emplace_back(id, ibc.issue(id), authority.assignment().codes_of(id), authority,
                         params.gamma, node_rng.split());
    }
  }

  static Params make_params() {
    Params p = Params::defaults();
    p.n = 20;
    p.m = 6;
    p.l = 10;
    p.N = 64;
    p.field_width = 100.0;
    p.field_height = 100.0;
    p.tx_range = 500.0;  // everyone hears everyone
    return p;
  }

  static std::vector<sim::Position> grid_positions(std::uint32_t n) {
    std::vector<sim::Position> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      out.push_back({static_cast<double>(i % 5) * 20.0, static_cast<double>(i / 5) * 20.0});
    }
    return out;
  }

  /// Finds a pair sharing at least `min_shared` codes.
  [[nodiscard]] std::pair<NodeId, NodeId> pair_sharing(std::size_t min_shared) const {
    for (std::uint32_t i = 0; i < params.n; ++i) {
      for (std::uint32_t j = i + 1; j < params.n; ++j) {
        if (authority.assignment().shared_codes(node_id(i), node_id(j)).size() >= min_shared) {
          return {node_id(i), node_id(j)};
        }
      }
    }
    ADD_FAILURE() << "no pair shares " << min_shared << " codes";
    return {kInvalidNode, kInvalidNode};
  }
};

TEST(Dndp, CleanChannelDiscoversSharingPair) {
  SmallWorld w(1);
  adversary::NullJammer jammer;
  AbstractPhy phy(w.topology, jammer, w.phy_rng);
  DndpEngine engine(w.params, phy);

  const auto [a, b] = w.pair_sharing(1);
  const DndpResult result = engine.run(w.nodes[raw(a)], w.nodes[raw(b)]);
  EXPECT_TRUE(result.discovered);
  EXPECT_GE(result.shared_codes, 1u);
  EXPECT_EQ(result.hellos_delivered, result.shared_codes);
  EXPECT_EQ(result.subsessions_completed, result.shared_codes);
  EXPECT_FALSE(result.mac_failure);
  ASSERT_TRUE(result.winning_code.has_value());
}

TEST(Dndp, BothSidesLearnTheSameSessionCode) {
  SmallWorld w(2);
  adversary::NullJammer jammer;
  AbstractPhy phy(w.topology, jammer, w.phy_rng);
  DndpEngine engine(w.params, phy);

  const auto [a, b] = w.pair_sharing(1);
  ASSERT_TRUE(engine.run(w.nodes[raw(a)], w.nodes[raw(b)]).discovered);

  const LogicalNeighbor* at_a = w.nodes[raw(a)].neighbor(b);
  const LogicalNeighbor* at_b = w.nodes[raw(b)].neighbor(a);
  ASSERT_NE(at_a, nullptr);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_a->session_code, at_b->session_code);
  EXPECT_EQ(at_a->session_code.size(), w.params.N);
  EXPECT_EQ(at_a->pair_key, at_b->pair_key);
  EXPECT_FALSE(at_a->via_mndp);
  // The session code matches an independent derivation from the IBC keys.
  EXPECT_EQ(at_a->pair_key, w.ibc.issue(a).shared_key(b));
}

TEST(Dndp, NoSharedCodesNoDiscovery) {
  // Force disjoint code sets by constructing a world and searching for a
  // disjoint pair; with m = 6, l = 10, n = 20 they are rare but the zero-
  // share path must still behave. Synthesize it instead via revocation:
  // revoke ALL of one node's codes.
  SmallWorld w(3);
  adversary::NullJammer jammer;
  AbstractPhy phy(w.topology, jammer, w.phy_rng);
  DndpEngine engine(w.params, phy);

  const auto [a, b] = w.pair_sharing(1);
  NodeState& na = w.nodes[raw(a)];
  for (const CodeId c : na.all_codes()) {
    for (std::uint32_t k = 0; k <= w.params.gamma; ++k) (void)na.revocation().report_invalid(c);
  }
  EXPECT_TRUE(na.usable_codes().empty());
  const DndpResult result = engine.run(na, w.nodes[raw(b)]);
  EXPECT_FALSE(result.discovered);
  EXPECT_EQ(result.shared_codes, 0u);
  EXPECT_EQ(w.nodes[raw(b)].neighbor(a), nullptr);
}

TEST(Dndp, OutOfRangePairNeverDiscovers) {
  SmallWorld w(4);
  // Rebuild topology with a tiny range so nothing is adjacent.
  const sim::Topology sparse(w.field, SmallWorld::grid_positions(w.params.n), 1.0);
  adversary::NullJammer jammer;
  AbstractPhy phy(sparse, jammer, w.phy_rng);
  DndpEngine engine(w.params, phy);
  const auto [a, b] = w.pair_sharing(1);
  const DndpResult result = engine.run(w.nodes[raw(a)], w.nodes[raw(b)]);
  EXPECT_FALSE(result.discovered);
  EXPECT_EQ(result.hellos_delivered, 0u);
}

TEST(Dndp, ReactiveJammerKillsFullyCompromisedPairs) {
  SmallWorld w(5);
  // Compromise every node -> every code compromised -> reactive jams all.
  Rng comp_rng(99);
  adversary::CompromiseModel compromise(w.authority.assignment(), w.params.n, comp_rng);
  adversary::ReactiveJammer jammer(compromise, {w.params.z, w.params.mu});
  AbstractPhy phy(w.topology, jammer, w.phy_rng);
  DndpEngine engine(w.params, phy);

  const auto [a, b] = w.pair_sharing(2);
  const DndpResult result = engine.run(w.nodes[raw(a)], w.nodes[raw(b)]);
  EXPECT_FALSE(result.discovered);
  EXPECT_EQ(result.hellos_delivered, 0u);  // reactive jams every HELLO
}

TEST(Dndp, SurvivesIfOneSharedCodeUncompromised) {
  // The redundancy guarantee: as long as one shared code stays secret,
  // reactive jamming cannot stop discovery.
  SmallWorld w(6);
  Rng comp_rng(100);
  // Compromise a handful of nodes; find a pair with a safe shared code.
  adversary::CompromiseModel compromise(w.authority.assignment(), 5, comp_rng);
  adversary::ReactiveJammer jammer(compromise, {w.params.z, w.params.mu});
  AbstractPhy phy(w.topology, jammer, w.phy_rng);
  DndpEngine engine(w.params, phy);

  for (std::uint32_t i = 0; i < w.params.n; ++i) {
    for (std::uint32_t j = i + 1; j < w.params.n; ++j) {
      const auto shared =
          w.authority.assignment().shared_codes(node_id(i), node_id(j));
      bool any_safe = false;
      for (const CodeId c : shared) any_safe |= !compromise.is_code_compromised(c);
      if (!shared.empty() && any_safe) {
        const DndpResult result = engine.run(w.nodes[i], w.nodes[j]);
        EXPECT_TRUE(result.discovered) << i << "," << j;
        return;
      }
    }
  }
  GTEST_SKIP() << "no pair with a safe shared code in this seed";
}

/// The "intelligent attack" of §V-B: never jam HELLOs, always jam the
/// follow-ups of designated (compromised) codes.
class FollowupOnlyJammer final : public adversary::Jammer {
 public:
  explicit FollowupOnlyJammer(std::vector<CodeId> targets) : targets_(std::move(targets)) {}

  [[nodiscard]] bool jams(CodeId code, adversary::MessageClass cls, Rng&) const override {
    if (cls != adversary::MessageClass::Followup) return false;
    return std::find(targets_.begin(), targets_.end(), code) != targets_.end();
  }
  [[nodiscard]] const char* name() const noexcept override { return "followup-only"; }

 private:
  std::vector<CodeId> targets_;
};

TEST(Dndp, RedundancyDefeatsIntelligentAttack) {
  SmallWorld w(7);
  const auto [a, b] = w.pair_sharing(2);
  auto shared = w.authority.assignment().shared_codes(a, b);
  ASSERT_GE(shared.size(), 2u);
  // Compromise all but the last shared code.
  const std::vector<CodeId> compromised(shared.begin(), shared.end() - 1);
  FollowupOnlyJammer jammer(compromised);
  AbstractPhy phy(w.topology, jammer, w.phy_rng);

  // Redundant D-NDP: all x sub-sessions run; the safe code always wins.
  DndpEngine redundant(w.params, phy, /*redundancy=*/true);
  const DndpResult result = redundant.run(w.nodes[raw(a)], w.nodes[raw(b)]);
  EXPECT_TRUE(result.discovered);
  EXPECT_EQ(result.hellos_delivered, shared.size());  // HELLOs untouched
}

TEST(Dndp, NaiveVariantLosesToIntelligentAttackSometimes) {
  // The naive receiver commits to one random delivered HELLO's code; with
  // x-1 of x codes compromised it fails with probability (x-1)/x.
  int failures = 0;
  int trials = 0;
  for (std::uint64_t seed = 10; seed < 40; ++seed) {
    SmallWorld w(seed);
    const auto [a, b] = w.pair_sharing(2);
    auto shared = w.authority.assignment().shared_codes(a, b);
    const std::vector<CodeId> compromised(shared.begin(), shared.end() - 1);
    FollowupOnlyJammer jammer(compromised);
    AbstractPhy phy(w.topology, jammer, w.phy_rng);
    DndpEngine naive(w.params, phy, /*redundancy=*/false);
    const DndpResult result = naive.run(w.nodes[raw(a)], w.nodes[raw(b)]);
    ++trials;
    failures += result.discovered ? 0 : 1;
  }
  // With x >= 2, failure probability >= 1/2 per trial; 30 trials make zero
  // failures astronomically unlikely, and zero successes nearly so.
  EXPECT_GT(failures, 0) << "naive variant should lose sometimes";
  EXPECT_LT(failures, trials) << "naive variant should also win sometimes";
}

/// A PHY that tampers with Auth payloads after delivery (bit flip).
class TamperingPhy final : public PhyModel {
 public:
  explicit TamperingPhy(PhyModel& inner) : inner_(inner) {}
  void begin_subsession(NodeId a, NodeId b, CodeId code) override {
    inner_.begin_subsession(a, b, code);
  }
  std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                    const BitVector& payload) override {
    auto rx = inner_.transmit(from, to, code, cls, payload);
    if (rx.has_value() && cls == TxClass::Auth) rx->flip(rx->size() - 1);  // corrupt MAC
    return rx;
  }

 private:
  PhyModel& inner_;
};

TEST(Dndp, TamperedMacIsDetected) {
  SmallWorld w(8);
  adversary::NullJammer jammer;
  AbstractPhy inner(w.topology, jammer, w.phy_rng);
  TamperingPhy phy(inner);
  DndpEngine engine(w.params, phy);

  const auto [a, b] = w.pair_sharing(1);
  const DndpResult result = engine.run(w.nodes[raw(a)], w.nodes[raw(b)]);
  EXPECT_FALSE(result.discovered);
  EXPECT_TRUE(result.mac_failure);
  EXPECT_EQ(w.nodes[raw(a)].neighbor(b), nullptr);
  EXPECT_EQ(w.nodes[raw(b)].neighbor(a), nullptr);
}

TEST(Dndp, RunIsIdempotentOnTables) {
  // Running discovery twice must not corrupt the neighbor tables.
  SmallWorld w(9);
  adversary::NullJammer jammer;
  AbstractPhy phy(w.topology, jammer, w.phy_rng);
  DndpEngine engine(w.params, phy);
  const auto [a, b] = w.pair_sharing(1);
  ASSERT_TRUE(engine.run(w.nodes[raw(a)], w.nodes[raw(b)]).discovered);
  const BitVector first_code = w.nodes[raw(a)].neighbor(b)->session_code;
  ASSERT_TRUE(engine.run(w.nodes[raw(a)], w.nodes[raw(b)]).discovered);
  // A re-run re-keys the pair (fresh nonces) but keeps tables consistent.
  EXPECT_EQ(w.nodes[raw(a)].neighbor(b)->session_code,
            w.nodes[raw(b)].neighbor(a)->session_code);
  EXPECT_NE(w.nodes[raw(a)].neighbor(b)->session_code, first_code);
}

}  // namespace
}  // namespace jrsnd::core
