#include "core/latency.hpp"

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/metrics.hpp"

namespace jrsnd::core {
namespace {

TEST(Latency, SampleAverageConvergesToTheorem2) {
  const Params p = Params::defaults();
  const LatencyModel model(p);
  Rng rng(1);
  Stat stat;
  for (int i = 0; i < 20000; ++i) stat.add(model.sample_dndp(rng).seconds());
  const double expected = theorem2_dndp_latency(p);
  EXPECT_NEAR(stat.mean(), expected, expected * 0.02);
}

TEST(Latency, ExpectedDndpEqualsTheorem2) {
  const Params p = Params::defaults();
  const LatencyModel model(p);
  EXPECT_NEAR(model.expected_dndp().seconds(), theorem2_dndp_latency(p), 1e-12);
}

TEST(Latency, SamplesAreBounded) {
  // Each residual is in [0, t_p] and the scan in [0, lambda t_h]; plus the
  // deterministic auth phase — the sample can never exceed the max.
  const Params p = Params::defaults();
  const LatencyModel model(p);
  const double t_p = model.timing().processing_time().seconds();
  const double lambda_th = model.timing().lambda() * model.timing().hello_time().seconds();
  const double auth = 2.0 * 512.0 * p.l_f() / p.R + 2.0 * p.t_key;
  const double max_latency = 3.0 * t_p + lambda_th + auth;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double s = model.sample_dndp(rng).seconds();
    EXPECT_GE(s, auth);
    EXPECT_LE(s, max_latency + 1e-12);
  }
}

TEST(Latency, MndpMatchesTheorem4) {
  Params p = Params::defaults();
  const LatencyModel model(p);
  const double g = 22.0;
  for (const std::uint32_t nu : {1u, 2u, 5u, 8u}) {
    Params at = p;
    at.nu = nu;
    EXPECT_NEAR(model.mndp(g, nu).seconds(), theorem4_mndp_latency(at, g), 1e-12) << nu;
  }
}

TEST(Latency, CombinedIsMax) {
  const LatencyModel model(Params::defaults());
  EXPECT_DOUBLE_EQ(model.combined(Duration(2.0), Duration(0.5)).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(model.combined(Duration(0.1), Duration(0.5)).seconds(), 0.5);
}

TEST(Latency, PaperCrossoverNearM60) {
  // Fig. 2(b): D-NDP latency exceeds M-NDP latency for m > 60 at defaults.
  Params p = Params::defaults();
  const double g = expected_degree(p);
  p.m = 40;
  EXPECT_LT(theorem2_dndp_latency(p), theorem4_mndp_latency(p, g));
  p.m = 100;
  EXPECT_GT(theorem2_dndp_latency(p), theorem4_mndp_latency(p, g));
}

TEST(Latency, Under2SecondsAtDefaults) {
  // The paper's headline: JR-SND latency < 2 s at m = 100.
  Params p = Params::defaults();
  const LatencyModel model(p);
  const double g = expected_degree(p);
  const double t =
      model.combined(model.expected_dndp(), model.mndp(g, p.nu)).seconds();
  EXPECT_LT(t, 2.0);
}

}  // namespace
}  // namespace jrsnd::core
