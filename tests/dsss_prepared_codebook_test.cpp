// PreparedCodebook cache correctness: scans over cached ShiftTables must be
// bit-identical to the slice-based reference oracles at every offset —
// including the resume offsets the recover-and-rescan loop uses — and the
// cache must invalidate exactly when the codes change. The concurrency test
// exercises the lazy double-checked table build from many threads (run under
// the TSan CI job).
#include "dsss/prepared_codebook.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spreader.hpp"

namespace jrsnd::dsss {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.bernoulli(0.5));
  return v;
}

std::vector<SpreadCode> random_codes(Rng& rng, std::size_t count, std::size_t length) {
  std::vector<SpreadCode> codes;
  for (std::size_t i = 0; i < count; ++i) {
    codes.push_back(SpreadCode::random(rng, length, code_id(static_cast<std::uint32_t>(i))));
  }
  return codes;
}

void expect_same_hit(const std::optional<SyncHit>& got, const std::optional<SyncHit>& want) {
  ASSERT_EQ(got.has_value(), want.has_value());
  if (!got.has_value()) return;
  EXPECT_EQ(got->code_index, want->code_index);
  EXPECT_EQ(got->chip_offset, want->chip_offset);
  EXPECT_EQ(got->message.bits, want->message.bits);
  EXPECT_EQ(got->message.erased_bits, want->message.erased_bits);
}

TEST(PreparedCodebook, ScanMatchesReferenceOnRandomBuffers) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 64 + 32 * static_cast<std::size_t>(rng.uniform(6));  // 64..224
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(4));
    const std::size_t message_bits = 2 + static_cast<std::size_t>(rng.uniform(5));
    const std::vector<SpreadCode> codes = random_codes(rng, m, n);
    const PreparedCodebook prepared(codes);

    // Half noise, half an embedded genuine message: both sync-miss and
    // sync-hit paths get exercised.
    BitVector buffer = random_bits(rng, static_cast<std::size_t>(rng.uniform(3 * n)));
    if (trial % 2 == 0) {
      const BitVector message = random_bits(rng, message_bits);
      buffer.append(spread(message, codes[static_cast<std::size_t>(rng.uniform(
                                        static_cast<std::uint64_t>(m)))]));
    }
    buffer.append(random_bits(rng, n));

    const double tau = 0.25;
    expect_same_hit(find_first_message(buffer, prepared, message_bits, tau),
                    find_first_message_reference(buffer, codes, message_bits, tau));
  }
}

TEST(PreparedCodebook, ResumeOffsetsMatchReference) {
  // The rescan loop restarts at hit.chip_offset + 1; sweep every start
  // offset and require identity with the reference oracle at each.
  Rng rng(7);
  const std::size_t n = 64;
  const std::size_t message_bits = 3;
  const std::vector<SpreadCode> codes = random_codes(rng, 2, n);
  const PreparedCodebook prepared(codes);

  BitVector buffer = random_bits(rng, 50);
  buffer.append(spread(random_bits(rng, message_bits), codes[1]));
  buffer.append(random_bits(rng, 40));

  for (std::size_t start = 0; start + message_bits * n <= buffer.size(); ++start) {
    expect_same_hit(find_first_message(buffer, prepared, message_bits, 0.25, start),
                    find_first_message_reference(buffer, codes, message_bits, 0.25, start));
  }
}

TEST(PreparedCodebook, FindAllMatchesReference) {
  Rng rng(99);
  const std::size_t n = 64;
  const std::size_t message_bits = 2;
  const std::vector<SpreadCode> codes = random_codes(rng, 3, n);
  const PreparedCodebook prepared(codes);

  BitVector buffer = random_bits(rng, 30);
  buffer.append(spread(random_bits(rng, message_bits), codes[0]));
  buffer.append(random_bits(rng, 17));
  buffer.append(spread(random_bits(rng, message_bits), codes[2]));
  buffer.append(random_bits(rng, n));

  const auto got = find_all_messages(buffer, prepared, message_bits, 0.25);
  const auto want = find_all_messages_reference(buffer, codes, message_bits, 0.25);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].code_index, want[i].code_index);
    EXPECT_EQ(got[i].chip_offset, want[i].chip_offset);
    EXPECT_EQ(got[i].message.bits, want[i].message.bits);
    EXPECT_EQ(got[i].message.erased_bits, want[i].message.erased_bits);
  }
}

TEST(PreparedCodebook, IntoFormMatchesOptionalFormWithReusedHit) {
  Rng rng(5);
  const std::size_t n = 64;
  const std::size_t message_bits = 4;
  const std::vector<SpreadCode> codes = random_codes(rng, 2, n);
  const PreparedCodebook prepared(codes);

  SyncHit reused;  // deliberately carried across iterations
  for (int trial = 0; trial < 10; ++trial) {
    BitVector buffer = random_bits(rng, 20 + static_cast<std::size_t>(rng.uniform(40)));
    buffer.append(spread(random_bits(rng, message_bits), codes[0]));
    buffer.append(random_bits(rng, n));

    const auto want = find_first_message(buffer, prepared, message_bits, 0.25);
    const bool found = find_first_message_into(buffer, prepared, message_bits, 0.25, 0, reused);
    ASSERT_EQ(found, want.has_value());
    if (found) {
      EXPECT_EQ(reused.code_index, want->code_index);
      EXPECT_EQ(reused.chip_offset, want->chip_offset);
      EXPECT_EQ(reused.message.bits, want->message.bits);
      EXPECT_EQ(reused.message.erased_bits, want->message.erased_bits);
    }
  }
}

TEST(PreparedCodebook, AssignIfChangedKeepsTablesForIdenticalCodes) {
  Rng rng(11);
  const std::vector<SpreadCode> codes = random_codes(rng, 3, 128);
  PreparedCodebook prepared(codes);
  const ShiftTable* before = prepared.tables().data();

  EXPECT_FALSE(prepared.assign_if_changed(codes));
  EXPECT_EQ(prepared.tables().data(), before) << "unchanged codebook must keep cached tables";

  std::vector<SpreadCode> shrunk(codes.begin(), codes.end() - 1);
  EXPECT_TRUE(prepared.assign_if_changed(shrunk));
  EXPECT_EQ(prepared.size(), 2u);
  EXPECT_EQ(prepared.tables().size(), 2u);
}

TEST(PreparedCodebook, EmptyCodebookScansFindNothing) {
  const PreparedCodebook empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.code_length(), 0u);
  const BitVector buffer(512);
  EXPECT_FALSE(find_first_message(buffer, empty, 4, 0.3).has_value());
  EXPECT_TRUE(find_all_messages(buffer, empty, 4, 0.3).empty());
}

TEST(PreparedCodebook, ConcurrentScannersShareOneLazyBuild) {
  // Many threads race the first tables() build and then scan; TSan verifies
  // the double-checked construction, and every thread must see identical
  // results.
  Rng rng(31);
  const std::size_t n = 128;
  const std::size_t message_bits = 3;
  const std::vector<SpreadCode> codes = random_codes(rng, 4, n);
  const PreparedCodebook prepared(codes);

  BitVector buffer = random_bits(rng, 73);
  buffer.append(spread(random_bits(rng, message_bits), codes[2]));
  buffer.append(random_bits(rng, n));
  const auto want = find_first_message_reference(buffer, codes, message_bits, 0.25);
  ASSERT_TRUE(want.has_value());

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<int> ok(kThreads, 0);
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const auto got = find_first_message(buffer, prepared, message_bits, 0.25);
      ok[static_cast<std::size_t>(t)] =
          got.has_value() && got->code_index == want->code_index &&
          got->chip_offset == want->chip_offset && got->message.bits == want->message.bits;
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[static_cast<std::size_t>(t)]) << t;
}

TEST(NodeCodebookCache, PrepareRefreshesOnlyOnChange) {
  Rng rng(47);
  const std::vector<SpreadCode> codes = random_codes(rng, 2, 64);
  NodeCodebookCache cache;
  const PreparedCodebook& first = cache.prepare(node_id(3), codes);
  const ShiftTable* tables = first.tables().data();

  // Same codes: same entry, same cached tables.
  const PreparedCodebook& again = cache.prepare(node_id(3), codes);
  EXPECT_EQ(&again, &first);
  EXPECT_EQ(again.tables().data(), tables);

  // Different node: independent entry.
  const PreparedCodebook& other = cache.prepare(node_id(4), codes);
  EXPECT_NE(&other, &first);

  // Changed codes: entry refreshed.
  const std::vector<SpreadCode> changed = random_codes(rng, 3, 64);
  const PreparedCodebook& refreshed = cache.prepare(node_id(3), changed);
  EXPECT_EQ(&refreshed, &first);
  EXPECT_EQ(refreshed.size(), 3u);
}

}  // namespace
}  // namespace jrsnd::dsss
