#include "baselines/ufh.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace jrsnd::baselines {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

UfhParams small_params() {
  UfhParams p;
  p.channels = 20;
  p.jammed_channels = 2;
  p.fragments = 4;
  return p;
}

TEST(UfhChain, SplitsAndLinks) {
  Rng rng(1);
  const UfhParams p = small_params();
  const BitVector msg = random_bits(rng, 256);
  const UfhFragmentChain chain(p, msg);
  ASSERT_EQ(chain.fragments().size(), 4u);
  // Each fragment (except the last) carries its successor's digest.
  for (std::uint32_t i = 0; i + 1 < 4; ++i) {
    EXPECT_EQ(chain.fragments()[i].next_digest,
              UfhFragmentChain::digest_of(chain.fragments()[i + 1]));
  }
  crypto::Sha256Digest zero{};
  EXPECT_EQ(chain.fragments()[3].next_digest, zero);
}

TEST(UfhChain, ReassemblesInAnyOrder) {
  Rng rng(2);
  const UfhParams p = small_params();
  const BitVector msg = random_bits(rng, 256);
  const UfhFragmentChain chain(p, msg);
  std::vector<UfhFragmentChain::Fragment> shuffled = chain.fragments();
  std::swap(shuffled[0], shuffled[3]);
  std::swap(shuffled[1], shuffled[2]);
  const auto out = UfhFragmentChain::reassemble(p, shuffled);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(UfhChain, RejectsSplicedFragment) {
  // An attacker substituting one fragment breaks the hash chain.
  Rng rng(3);
  const UfhParams p = small_params();
  const UfhFragmentChain chain_a(p, random_bits(rng, 256));
  const UfhFragmentChain chain_b(p, random_bits(rng, 256));
  std::vector<UfhFragmentChain::Fragment> spliced = chain_a.fragments();
  spliced[2] = chain_b.fragments()[2];
  EXPECT_FALSE(UfhFragmentChain::reassemble(p, spliced).has_value());
}

TEST(UfhChain, RejectsTamperedPayload) {
  Rng rng(4);
  const UfhParams p = small_params();
  const UfhFragmentChain chain(p, random_bits(rng, 256));
  std::vector<UfhFragmentChain::Fragment> tampered = chain.fragments();
  tampered[1].payload.flip(0);
  EXPECT_FALSE(UfhFragmentChain::reassemble(p, tampered).has_value());
}

TEST(UfhChain, RejectsMissingOrDuplicateFragments) {
  Rng rng(5);
  const UfhParams p = small_params();
  const UfhFragmentChain chain(p, random_bits(rng, 256));
  std::vector<UfhFragmentChain::Fragment> missing(chain.fragments().begin(),
                                                  chain.fragments().end() - 1);
  EXPECT_FALSE(UfhFragmentChain::reassemble(p, missing).has_value());
  std::vector<UfhFragmentChain::Fragment> duplicated = chain.fragments();
  duplicated[3] = duplicated[0];
  EXPECT_FALSE(UfhFragmentChain::reassemble(p, duplicated).has_value());
}

TEST(UfhChain, RejectsDegenerateInputs) {
  UfhParams p = small_params();
  p.fragments = 0;
  EXPECT_THROW(UfhFragmentChain(p, BitVector(8)), std::invalid_argument);
  p.fragments = 4;
  EXPECT_THROW(UfhFragmentChain(p, BitVector()), std::invalid_argument);
}

TEST(UfhExchange, RejectsOverwhelmedChannelSet) {
  UfhParams p = small_params();
  p.jammed_channels = p.channels;
  Rng rng(6);
  EXPECT_THROW(UfhExchange(p, rng), std::invalid_argument);
}

TEST(UfhExchange, TransfersAndVerifiesEventually) {
  Rng rng(7);
  const UfhParams p = small_params();
  const UfhFragmentChain chain(p, random_bits(rng, 256));
  UfhExchange exchange(p, rng);
  const auto result = exchange.run(chain);
  EXPECT_TRUE(result.reassembled);
  EXPECT_GE(result.fragments_heard, 4u);
  EXPECT_GT(result.slots, 4u);
}

TEST(UfhExchange, MeasuredSlotsMatchExpectation) {
  Rng rng(8);
  const UfhParams p = small_params();
  const UfhFragmentChain chain(p, random_bits(rng, 256));
  UfhExchange exchange(p, rng);
  double total_slots = 0.0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const auto result = exchange.run(chain);
    ASSERT_TRUE(result.reassembled);
    total_slots += static_cast<double>(result.slots);
  }
  const double measured = total_slots / kTrials;
  // Coupon-collector expectation: M * H_M deliveries, each ~1/p slots.
  const double expected = exchange.expected_transfer_seconds() / p.slot_seconds;
  EXPECT_NEAR(measured, expected, expected * 0.35);
}

TEST(UfhExchange, JammingSlowsTransferDown) {
  Rng rng(9);
  UfhParams clean = small_params();
  clean.jammed_channels = 0;
  UfhParams jammed = small_params();
  jammed.jammed_channels = 10;  // half the channels
  const UfhExchange clean_x(clean, rng);
  const UfhExchange jammed_x(jammed, rng);
  EXPECT_GT(jammed_x.expected_slots_per_fragment(), clean_x.expected_slots_per_fragment());
  // z = c/2 roughly halves per-slot success.
  EXPECT_NEAR(jammed_x.expected_slots_per_fragment() / clean_x.expected_slots_per_fragment(),
              1.0 / std::pow(1.0 - 1.0 / 20.0, 10), 0.01);
}

TEST(UfhExchange, GivesUpAtMaxSlots) {
  Rng rng(10);
  const UfhParams p = small_params();
  const UfhFragmentChain chain(p, random_bits(rng, 256));
  UfhExchange exchange(p, rng);
  const auto result = exchange.run(chain, /*max_slots=*/3);
  EXPECT_FALSE(result.reassembled);
  EXPECT_EQ(result.slots, 3u);
}

TEST(UfhDos, LinearInInsertions) {
  EXPECT_EQ(ufh_dos_verifications(0), 0u);
  EXPECT_EQ(ufh_dos_verifications(1000000), 1000000u);
}

}  // namespace
}  // namespace jrsnd::baselines
