// Robustness: decoders must never crash, loop, or accept garbage as valid
// on adversarial input — every bit pattern a jammer or attacker could put
// on the air. Random buffers, truncations, bit flips, and hostile length
// fields are thrown at every message codec.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "crypto/ibc.hpp"
#include "fault/faulty_phy.hpp"

namespace jrsnd::core {
namespace {

const WireConfig kCfg{};

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(MessageFuzz, RandomBuffersNeverCrashAnyDecoder) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform(4000);
    const BitVector junk = random_bits(rng, len);
    (void)HelloMessage::decode(junk, kCfg);
    (void)ConfirmMessage::decode(junk, kCfg);
    (void)AuthMessage::decode(junk, kCfg);
    (void)MndpRequest::decode(junk, kCfg);
    (void)MndpResponse::decode(junk, kCfg);
    (void)peek_type(junk, kCfg);
  }
}

TEST(MessageFuzz, EveryTruncationOfValidHelloRejected) {
  const BitVector bits = HelloMessage{node_id(7)}.encode(kCfg);
  for (std::size_t cut = 0; cut < bits.size(); ++cut) {
    EXPECT_FALSE(HelloMessage::decode(bits.slice(0, cut), kCfg).has_value()) << cut;
  }
}

TEST(MessageFuzz, EveryTruncationOfValidRequestRejected) {
  Rng rng(2);
  const crypto::IbcAuthority authority(1);
  MndpRequest req;
  req.source = node_id(1);
  req.source_neighbors = {node_id(2), node_id(3)};
  req.nonce = random_bits(rng, kCfg.l_n);
  req.nu = 2;
  req.source_signature = authority.issue(node_id(1)).sign(req.source_sign_input(kCfg));
  HopRecord hop;
  hop.id = node_id(2);
  hop.neighbors = {node_id(4)};
  req.hops.push_back(hop);
  req.hops.back().signature = authority.issue(node_id(2)).sign(req.hop_sign_input(0, kCfg));

  const BitVector bits = req.encode(kCfg);
  // Check every 7th truncation (full sweep is ~2k decodes of ~2kb each).
  for (std::size_t cut = 0; cut < bits.size(); cut += 7) {
    EXPECT_FALSE(MndpRequest::decode(bits.slice(0, cut), kCfg).has_value()) << cut;
  }
}

TEST(MessageFuzz, HostileListCountIsBounded) {
  // Forge a request whose neighbor-list count field claims 65535 entries
  // but whose body ends immediately: must reject, not allocate/overread.
  BitVector bits;
  bits.append_uint(static_cast<std::uint64_t>(MessageType::MndpRequest), kCfg.l_t);
  bits.append_uint(1, kCfg.l_id);       // source
  bits.append_uint(0xffff, 16);         // list count: 65535
  EXPECT_FALSE(MndpRequest::decode(bits, kCfg).has_value());
}

TEST(MessageFuzz, HostileHopCountIsBounded) {
  Rng rng(3);
  const crypto::IbcAuthority authority(1);
  MndpRequest req;
  req.source = node_id(1);
  req.nonce = random_bits(rng, kCfg.l_n);
  req.nu = 2;
  req.source_signature = authority.issue(node_id(1)).sign(req.source_sign_input(kCfg));
  BitVector bits = req.encode(kCfg);
  // The hop-count byte is the last 8 bits; claim 255 hops with no bodies.
  for (std::size_t i = bits.size() - 8; i < bits.size(); ++i) bits.set(i, true);
  EXPECT_FALSE(MndpRequest::decode(bits, kCfg).has_value());
}

TEST(MessageFuzz, SingleBitFlipsNeverValidateAuth) {
  // Any single bit flip in an Auth message must fail MAC verification
  // (flips in the MAC wire bits themselves included).
  Rng rng(4);
  crypto::SymmetricKey key;
  key.fill(0x61);
  const AuthMessage msg = AuthMessage::make(node_id(3), random_bits(rng, kCfg.l_n), key, kCfg);
  const BitVector bits = msg.encode(kCfg);
  for (std::size_t flip = 0; flip < bits.size(); flip += 3) {
    BitVector mutated = bits;
    mutated.flip(flip);
    const auto decoded = AuthMessage::decode(mutated, kCfg);
    if (!decoded.has_value()) continue;  // type tag destroyed: fine
    EXPECT_FALSE(decoded->verify(key, kCfg)) << "flip " << flip;
  }
}

TEST(MessageFuzz, SingleBitFlipsNeverValidateRequestSignature) {
  Rng rng(5);
  const crypto::IbcAuthority authority(2);
  MndpRequest req;
  req.source = node_id(9);
  req.source_neighbors = {node_id(1)};
  req.nonce = random_bits(rng, kCfg.l_n);
  req.nu = 3;
  req.source_signature = authority.issue(node_id(9)).sign(req.source_sign_input(kCfg));
  const BitVector bits = req.encode(kCfg);
  const std::size_t sig_tag_end =
      kCfg.l_t + kCfg.l_id + 16 + 16 + kCfg.l_n + kCfg.l_nu + 256;
  // Flips in the signed region or the signature tag must break verification.
  for (std::size_t flip = 0; flip < sig_tag_end; flip += 5) {
    BitVector mutated = bits;
    mutated.flip(flip);
    const auto decoded = MndpRequest::decode(mutated, kCfg);
    if (!decoded.has_value()) continue;
    EXPECT_FALSE(authority.oracle()->verify(node_id(raw(decoded->source)),
                                            decoded->source_sign_input(kCfg),
                                            decoded->source_signature))
        << "flip " << flip;
  }
}

/// Inner PHY for the fault-driven fuzz harness: delivers verbatim.
class EchoPhy final : public PhyModel {
 public:
  void begin_subsession(NodeId, NodeId, CodeId) override {}
  std::optional<BitVector> transmit(NodeId, NodeId, TxCode, TxClass,
                                    const BitVector& payload) override {
    return payload;
  }
};

TEST(MessageFuzz, FaultyPhyMutationsNeverCrashAnyDecoder) {
  // Drive encoded valid messages of every type through a FaultyPhy with the
  // whole mutation palette turned up — bit-flip bursts, truncation,
  // duplication, reordering — and feed whatever comes out to every decoder.
  // Nothing may crash, loop, or trip UB; that is exactly the garbage a
  // hostile channel hands the receive path.
  const crypto::IbcAuthority authority(4);
  Rng rng(7);

  MndpRequest req;
  req.source = node_id(1);
  req.source_neighbors = {node_id(2), node_id(3)};
  req.nonce = random_bits(rng, kCfg.l_n);
  req.nu = 2;
  req.source_signature = authority.issue(node_id(1)).sign(req.source_sign_input(kCfg));

  crypto::SymmetricKey key;
  key.fill(0x42);
  const std::vector<BitVector> corpus{
      HelloMessage{node_id(7)}.encode(kCfg),
      ConfirmMessage{node_id(8)}.encode(kCfg),
      AuthMessage::make(node_id(9), random_bits(rng, kCfg.l_n), key, kCfg).encode(kCfg),
      req.encode(kCfg),
  };

  fault::FaultPlan plan;
  plan.seed = 99;
  plan.corrupt = 0.6;
  plan.corrupt_bits = 17;
  plan.truncate = 0.4;
  plan.duplicate = 0.3;
  plan.reorder = 0.3;
  EchoPhy inner;
  fault::FaultyPhy phy(inner, plan);

  for (std::uint32_t trial = 0; trial < 1500; ++trial) {
    const BitVector& msg = corpus[trial % corpus.size()];
    const auto rx = phy.transmit(node_id(trial % 5), node_id(5 + trial % 3), TxCode{},
                                 TxClass::SessionUnicast, msg);
    if (!rx.has_value()) continue;
    (void)peek_type(*rx, kCfg);
    (void)HelloMessage::decode(*rx, kCfg);
    (void)ConfirmMessage::decode(*rx, kCfg);
    (void)MndpRequest::decode(*rx, kCfg);
    (void)MndpResponse::decode(*rx, kCfg);
    const auto auth = AuthMessage::decode(*rx, kCfg);
    if (auth.has_value() && *rx != corpus[2]) {
      // A mutated Auth that still decodes must never pass its MAC.
      EXPECT_FALSE(auth->verify(key, kCfg)) << "trial " << trial;
    }
  }
  // The plan actually fired across the palette, so the sweep was not vacuous.
  const auto& totals = phy.totals();
  EXPECT_GT(totals.corrupted, 0u);
  EXPECT_GT(totals.truncated, 0u);
  EXPECT_GT(totals.duplicated, 0u);
  EXPECT_GT(totals.reordered, 0u);
}

TEST(MessageFuzz, RoundTripSurvivesExtremeFieldValues) {
  Rng rng(6);
  const crypto::IbcAuthority authority(3);
  MndpRequest req;
  req.source = node_id(0xffff);          // max l_id value
  req.nu = 15;                           // max l_nu value
  req.nonce = BitVector(kCfg.l_n);       // all-zero nonce
  for (std::uint32_t i = 0; i < 200; ++i) req.source_neighbors.push_back(node_id(i));
  req.source_signature = authority.issue(node_id(0xffff)).sign(req.source_sign_input(kCfg));
  const auto decoded = MndpRequest::decode(req.encode(kCfg), kCfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source, node_id(0xffff));
  EXPECT_EQ(decoded->nu, 15u);
  EXPECT_EQ(decoded->source_neighbors.size(), 200u);
  EXPECT_TRUE(authority.oracle()->verify(node_id(0xffff), decoded->source_sign_input(kCfg),
                                         decoded->source_signature));
}

}  // namespace
}  // namespace jrsnd::core
