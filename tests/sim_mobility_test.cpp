#include "sim/mobility.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jrsnd::sim {
namespace {

TEST(UniformPlacement, AllInsideField) {
  Rng rng(1);
  const Field field(5000.0, 5000.0);
  const UniformPlacement placement(field, 500, rng);
  EXPECT_EQ(placement.node_count(), 500u);
  for (std::uint32_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(field.contains(placement.position(node_id(i), kSimStart)));
  }
}

TEST(UniformPlacement, StaticOverTime) {
  Rng rng(2);
  const Field field(100.0, 100.0);
  const UniformPlacement placement(field, 10, rng);
  for (std::uint32_t i = 0; i < 10; ++i) {
    const Position p0 = placement.position(node_id(i), kSimStart);
    const Position p1 = placement.position(node_id(i), TimePoint(1000.0));
    EXPECT_EQ(p0, p1);
  }
}

TEST(UniformPlacement, CoversTheField) {
  Rng rng(3);
  const Field field(1000.0, 1000.0);
  const UniformPlacement placement(field, 2000, rng);
  // Each quadrant should hold roughly a quarter of the nodes.
  int q00 = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const Position p = placement.position(node_id(i), kSimStart);
    if (p.x < 500 && p.y < 500) ++q00;
  }
  EXPECT_NEAR(q00 / 2000.0, 0.25, 0.05);
}

TEST(UniformPlacement, OutOfRangeThrows) {
  Rng rng(4);
  const Field field(10.0, 10.0);
  const UniformPlacement placement(field, 3, rng);
  EXPECT_THROW((void)placement.position(node_id(3), kSimStart), std::out_of_range);
}

TEST(UniformPlacement, SnapshotMatchesPositions) {
  Rng rng(5);
  const Field field(10.0, 10.0);
  const UniformPlacement placement(field, 5, rng);
  const auto snap = placement.snapshot(kSimStart);
  ASSERT_EQ(snap.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(snap[i], placement.position(node_id(i), kSimStart));
  }
}

TEST(RandomWaypoint, RejectsBadSpeeds) {
  Rng rng(6);
  const Field field(100.0, 100.0);
  EXPECT_THROW(RandomWaypoint(field, 1, {0.0, 1.0, 0.0}, rng), std::invalid_argument);
  EXPECT_THROW(RandomWaypoint(field, 1, {5.0, 1.0, 0.0}, rng), std::invalid_argument);
}

TEST(RandomWaypoint, StaysInsideField) {
  Rng rng(7);
  const Field field(200.0, 200.0);
  const RandomWaypoint rwp(field, 20, {1.0, 10.0, 2.0}, rng);
  for (std::uint32_t i = 0; i < 20; ++i) {
    for (double t = 0.0; t < 500.0; t += 13.7) {
      const Position p = rwp.position(node_id(i), TimePoint(t));
      EXPECT_TRUE(field.contains(p)) << "node " << i << " t " << t;
    }
  }
}

TEST(RandomWaypoint, PositionIsDeterministicAndConsistent) {
  Rng rng1(8);
  Rng rng2(8);
  const Field field(300.0, 300.0);
  const RandomWaypoint a(field, 5, {1.0, 5.0, 1.0}, rng1);
  const RandomWaypoint b(field, 5, {1.0, 5.0, 1.0}, rng2);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (double t : {0.0, 12.5, 100.0, 450.0}) {
      EXPECT_EQ(a.position(node_id(i), TimePoint(t)), b.position(node_id(i), TimePoint(t)));
    }
  }
}

TEST(RandomWaypoint, QueryingOutOfOrderIsConsistent) {
  // Lazy trajectory extension must not depend on query order.
  Rng rng1(9);
  Rng rng2(9);
  const Field field(300.0, 300.0);
  const RandomWaypoint forward(field, 1, {1.0, 5.0, 1.0}, rng1);
  const RandomWaypoint backward(field, 1, {1.0, 5.0, 1.0}, rng2);
  // Query forward in order 0, 50, 100; backward in order 100, 50, 0.
  const Position f0 = forward.position(node_id(0), TimePoint(0.0));
  const Position f50 = forward.position(node_id(0), TimePoint(50.0));
  const Position f100 = forward.position(node_id(0), TimePoint(100.0));
  const Position b100 = backward.position(node_id(0), TimePoint(100.0));
  const Position b50 = backward.position(node_id(0), TimePoint(50.0));
  const Position b0 = backward.position(node_id(0), TimePoint(0.0));
  EXPECT_EQ(f0, b0);
  EXPECT_EQ(f50, b50);
  EXPECT_EQ(f100, b100);
}

TEST(RandomWaypoint, MovesOverTime) {
  Rng rng(10);
  const Field field(1000.0, 1000.0);
  const RandomWaypoint rwp(field, 10, {5.0, 10.0, 0.5}, rng);
  int moved = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    const Position p0 = rwp.position(node_id(i), TimePoint(0.0));
    const Position p1 = rwp.position(node_id(i), TimePoint(60.0));
    if (distance(p0, p1) > 1.0) ++moved;
  }
  EXPECT_GE(moved, 8);  // nearly everyone travels in a minute
}

TEST(RandomWaypoint, SpeedIsBounded) {
  Rng rng(11);
  const Field field(1000.0, 1000.0);
  const double vmax = 10.0;
  const RandomWaypoint rwp(field, 5, {1.0, vmax, 1.0}, rng);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (double t = 0.0; t < 200.0; t += 1.0) {
      const Position p0 = rwp.position(node_id(i), TimePoint(t));
      const Position p1 = rwp.position(node_id(i), TimePoint(t + 1.0));
      EXPECT_LE(distance(p0, p1), vmax + 1e-6);
    }
  }
}

}  // namespace
}  // namespace jrsnd::sim
