// Per-thread registry overrides and snapshot absorption — the obs half of
// the parallel Monte-Carlo engine. Metric names are unique to this file so
// the shared process registry never couples these tests to their siblings.
#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace jrsnd::obs {
namespace {

class ScopedRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(false); }
};

TEST_F(ScopedRegistryTest, OverrideRedirectsActiveRegistry) {
  EXPECT_EQ(&active_registry(), &registry());
  MetricsRegistry scratch;
  {
    const ScopedMetricsRegistry guard(&scratch);
    EXPECT_EQ(&active_registry(), &scratch);
  }
  EXPECT_EQ(&active_registry(), &registry());
}

TEST_F(ScopedRegistryTest, NullOverrideIsANoop) {
  const std::uint64_t before = registry_generation();
  const ScopedMetricsRegistry guard(nullptr);
  EXPECT_EQ(&active_registry(), &registry());
  EXPECT_EQ(registry_generation(), before);
}

TEST_F(ScopedRegistryTest, OverridesNestAndRestore) {
  MetricsRegistry outer;
  MetricsRegistry inner;
  const ScopedMetricsRegistry g1(&outer);
  {
    const ScopedMetricsRegistry g2(&inner);
    EXPECT_EQ(&active_registry(), &inner);
  }
  EXPECT_EQ(&active_registry(), &outer);
}

TEST_F(ScopedRegistryTest, GenerationBumpsOnInstallAndRemove) {
  MetricsRegistry scratch;
  const std::uint64_t g0 = registry_generation();
  {
    const ScopedMetricsRegistry guard(&scratch);
    EXPECT_GT(registry_generation(), g0);
  }
  EXPECT_GT(registry_generation(), g0 + 1);
}

TEST_F(ScopedRegistryTest, MacrosFollowTheOverride) {
  MetricsRegistry scratch;
  {
    const ScopedMetricsRegistry guard(&scratch);
    JRSND_COUNT("test.scoped.macro.count");
    JRSND_COUNT("test.scoped.macro.count");
    JRSND_OBSERVE("test.scoped.macro.hist", 0.5);
  }
  // Same sites after the override is gone: the generation bump forces the
  // cached handles to re-resolve against the process registry.
  JRSND_COUNT("test.scoped.macro.count");
  JRSND_OBSERVE("test.scoped.macro.hist", 2.0);

  EXPECT_EQ(scratch.counter("test.scoped.macro.count").value(), 2u);
  EXPECT_EQ(scratch.histogram("test.scoped.macro.hist").count(), 1u);
  EXPECT_EQ(registry().counter("test.scoped.macro.count").value(), 1u);
  EXPECT_EQ(registry().histogram("test.scoped.macro.hist").count(), 1u);
}

TEST_F(ScopedRegistryTest, OverrideIsPerThread) {
  MetricsRegistry scratch;
  const ScopedMetricsRegistry guard(&scratch);
  bool other_thread_saw_global = false;
  std::thread probe([&] { other_thread_saw_global = (&active_registry() == &registry()); });
  probe.join();
  EXPECT_TRUE(other_thread_saw_global);
  EXPECT_EQ(&active_registry(), &scratch);
}

TEST_F(ScopedRegistryTest, AbsorbAddsCountersAndHistograms) {
  MetricsRegistry target;
  target.counter("test.absorb.count").inc(5);
  target.histogram("test.absorb.hist").observe(1.0);

  MetricsRegistry scratch;
  scratch.counter("test.absorb.count").inc(3);
  scratch.counter("test.absorb.fresh").inc(7);
  scratch.histogram("test.absorb.hist").observe(3.0);
  scratch.histogram("test.absorb.hist").observe(0.25);

  target.absorb(scratch.snapshot());

  EXPECT_EQ(target.counter("test.absorb.count").value(), 8u);
  EXPECT_EQ(target.counter("test.absorb.fresh").value(), 7u);
  Histogram& h = target.histogram("test.absorb.hist");
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST_F(ScopedRegistryTest, AbsorbKeepsGaugeHighWater) {
  MetricsRegistry target;
  target.gauge("test.absorb.gauge").set(10.0);

  MetricsRegistry low;
  low.gauge("test.absorb.gauge").set(4.0);
  target.absorb(low.snapshot());
  EXPECT_DOUBLE_EQ(target.gauge("test.absorb.gauge").value(), 10.0);

  MetricsRegistry high;
  high.gauge("test.absorb.gauge").set(25.0);
  target.absorb(high.snapshot());
  EXPECT_DOUBLE_EQ(target.gauge("test.absorb.gauge").value(), 25.0);
}

TEST_F(ScopedRegistryTest, AbsorbedTotalsEqualSingleRegistry) {
  // The parallel-engine contract in miniature: N scratch registries absorbed
  // into one equal the same operations applied to a single registry.
  MetricsRegistry expected;
  MetricsRegistry merged;
  for (int w = 0; w < 4; ++w) {
    MetricsRegistry scratch;
    for (int i = 0; i <= w; ++i) {
      expected.counter("test.fold.count").inc(2);
      scratch.counter("test.fold.count").inc(2);
      const double v = 0.1 * (w + 1) * (i + 1);
      expected.histogram("test.fold.hist").observe(v);
      scratch.histogram("test.fold.hist").observe(v);
    }
    merged.absorb(scratch.snapshot());
  }
  EXPECT_EQ(merged.counter("test.fold.count").value(),
            expected.counter("test.fold.count").value());
  Histogram& hm = merged.histogram("test.fold.hist");
  Histogram& he = expected.histogram("test.fold.hist");
  EXPECT_EQ(hm.count(), he.count());
  EXPECT_DOUBLE_EQ(hm.sum(), he.sum());
  EXPECT_DOUBLE_EQ(hm.min(), he.min());
  EXPECT_DOUBLE_EQ(hm.max(), he.max());
  EXPECT_EQ(hm.bucket_counts(), he.bucket_counts());
}

TEST_F(ScopedRegistryTest, MergeFromDropsMismatchedBounds) {
  const double edges_a[] = {1.0, 2.0};
  const double edges_b[] = {5.0, 10.0, 20.0};
  MetricsRegistry a;
  a.histogram("test.mismatch", edges_a).observe(1.5);
  MetricsRegistry b;
  b.histogram("test.mismatch", edges_b).observe(7.0);

  // Registry-level absorb registers under b's bounds on first sight; a's
  // sample has different edges, so Histogram::merge_from drops it instead of
  // mixing incompatible bucket schemas.
  MetricsRegistry target;
  target.absorb(b.snapshot());
  EXPECT_EQ(target.histogram("test.mismatch").count(), 1u);
  target.absorb(a.snapshot());
  EXPECT_EQ(target.histogram("test.mismatch").count(), 1u);  // dropped, not mixed
}

}  // namespace
}  // namespace jrsnd::obs
