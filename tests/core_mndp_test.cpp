#include "core/mndp.hpp"

#include <gtest/gtest.h>

#include "adversary/jammer.hpp"
#include "core/abstract_phy.hpp"
#include "crypto/session_code.hpp"

namespace jrsnd::core {
namespace {

// A hand-built world with explicit positions and explicit logical links, so
// every M-NDP path decision is fully controlled.
struct MndpWorld {
  Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field;
  sim::Topology topology;
  adversary::NullJammer jammer;
  Rng phy_rng;
  AbstractPhy phy;
  std::vector<NodeState> nodes;
  Rng nonce_rng;

  MndpWorld(std::vector<sim::Position> positions, double range, std::uint64_t seed = 1)
      : params(make_params(static_cast<std::uint32_t>(positions.size()))),
        authority(params.predist(), Rng(seed)),
        ibc(seed + 1),
        field(params.field_width, params.field_height),
        topology(field, std::move(positions), range),
        phy_rng(seed + 2),
        phy(topology, jammer, phy_rng),
        nonce_rng(seed + 3) {
    Rng node_rng(seed + 4);
    for (std::uint32_t i = 0; i < params.n; ++i) {
      const NodeId id = node_id(i);
      nodes.emplace_back(id, ibc.issue(id), authority.assignment().codes_of(id), authority,
                         params.gamma, node_rng.split());
    }
  }

  static Params make_params(std::uint32_t n) {
    Params p = Params::defaults();
    p.n = n;
    p.m = 4;
    p.l = std::max(2u, n / 2);
    p.N = 64;
    p.field_width = 1000.0;
    p.field_height = 1000.0;
    return p;
  }

  /// Establishes a D-NDP-grade logical link between a and b directly.
  void link(std::uint32_t ia, std::uint32_t ib) {
    const NodeId a = node_id(ia);
    const NodeId b = node_id(ib);
    const crypto::SymmetricKey key = nodes[ia].key().shared_key(b);
    BitVector na(params.l_n);
    BitVector nb(params.l_n);
    for (std::uint32_t i = 0; i < params.l_n; ++i) {
      na.set(i, nonce_rng.bernoulli(0.5));
      nb.set(i, nonce_rng.bernoulli(0.5));
    }
    const BitVector code = crypto::derive_session_code(key, na, nb, params.N);
    nodes[ia].add_logical_neighbor(b, LogicalNeighbor{key, code, false});
    nodes[ib].add_logical_neighbor(a, LogicalNeighbor{key, code, false});
  }

  MndpEngine make_engine(bool gps_filter = false) {
    return MndpEngine(params, phy, topology, ibc.oracle(), gps_filter);
  }
};

TEST(Mndp, TwoHopDiscoveryViaCommonNeighbor) {
  // A(0) - C(2) - B(1); A and B physical neighbors but not logical.
  MndpWorld w({{100, 100}, {200, 100}, {150, 100}}, 150.0);
  ASSERT_TRUE(w.topology.are_neighbors(node_id(0), node_id(1)));
  w.link(0, 2);
  w.link(1, 2);

  MndpEngine engine = w.make_engine();
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));

  EXPECT_EQ(stats.discoveries, 1u);
  EXPECT_EQ(stats.responses_sent, 1u);
  EXPECT_GT(stats.signature_verifications, 0u);
  ASSERT_NE(w.nodes[0].neighbor(node_id(1)), nullptr);
  ASSERT_NE(w.nodes[1].neighbor(node_id(0)), nullptr);
  EXPECT_TRUE(w.nodes[0].neighbor(node_id(1))->via_mndp);
  EXPECT_EQ(w.nodes[0].neighbor(node_id(1))->session_code,
            w.nodes[1].neighbor(node_id(0))->session_code);
}

TEST(Mndp, NoLogicalNeighborsNoRequests) {
  MndpWorld w({{100, 100}, {200, 100}, {150, 100}}, 150.0);
  MndpEngine engine = w.make_engine();
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.requests_sent, 0u);
  EXPECT_EQ(stats.discoveries, 0u);
}

TEST(Mndp, AlreadyLogicalNeighborsDoNotRespond) {
  MndpWorld w({{100, 100}, {200, 100}, {150, 100}}, 150.0);
  w.link(0, 2);
  w.link(1, 2);
  w.link(0, 1);  // A and B already know each other
  MndpEngine engine = w.make_engine();
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.responses_sent, 0u);
  EXPECT_EQ(stats.discoveries, 0u);
}

TEST(Mndp, HopLimitIsEnforced) {
  // Square: A(0,0), B(60,0), C(0,80), D(60,80) with range 100. Physical:
  // A-B, A-C, C-D, D-B (diagonals are exactly 100, i.e. out of range).
  // Logical chain A-C-D-B: reaching B needs 3 hops.
  MndpWorld w({{0, 0}, {60, 0}, {0, 80}, {60, 80}}, 100.0, 2);
  ASSERT_TRUE(w.topology.are_neighbors(node_id(0), node_id(1)));
  w.link(0, 2);
  w.link(2, 3);
  w.link(3, 1);

  w.params.nu = 2;
  {
    MndpEngine engine = w.make_engine();
    const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
    EXPECT_EQ(stats.discoveries, 0u);
    EXPECT_LE(stats.max_hops_seen, 2u);
  }
  w.params.nu = 3;
  {
    MndpEngine engine = w.make_engine();
    const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
    EXPECT_EQ(stats.discoveries, 1u);
    EXPECT_NE(w.nodes[0].neighbor(node_id(1)), nullptr);
  }
}

TEST(Mndp, NonPhysicalResponderIsFalsePositiveCost) {
  // G(1) is 2 logical hops from A (via C) and physically adjacent to C but
  // not to A: it responds (cost) but its session-code HELLO cannot reach A,
  // so no table corruption.
  MndpWorld w({{100, 100}, {280, 100}, {150, 100}}, 150.0, 3);
  ASSERT_FALSE(w.topology.are_neighbors(node_id(0), node_id(1)));
  ASSERT_TRUE(w.topology.are_neighbors(node_id(1), node_id(2)));
  w.link(0, 2);
  w.link(1, 2);

  MndpEngine engine = w.make_engine(/*gps_filter=*/false);
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.false_positive_responses, 1u);
  EXPECT_EQ(stats.responses_sent, 1u);
  EXPECT_EQ(stats.discoveries, 0u);
  EXPECT_EQ(w.nodes[0].neighbor(node_id(1)), nullptr);
  EXPECT_EQ(w.nodes[1].neighbor(node_id(0)), nullptr);
}

TEST(Mndp, GpsFilterSuppressesFalsePositiveResponses) {
  MndpWorld w({{100, 100}, {280, 100}, {150, 100}}, 150.0, 4);
  w.link(0, 2);
  w.link(1, 2);
  MndpEngine engine = w.make_engine(/*gps_filter=*/true);
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.false_positive_responses, 0u);
  EXPECT_EQ(stats.responses_sent, 0u);
}

TEST(Mndp, SignatureVerificationCountsScaleWithPath) {
  // Request A->C carries 1 signature; C->B carries 2; response B->C 1,
  // C->A 2. Expect at least 6 verifications for the 2-hop discovery.
  MndpWorld w({{100, 100}, {200, 100}, {150, 100}}, 150.0, 5);
  w.link(0, 2);
  w.link(1, 2);
  MndpEngine engine = w.make_engine();
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_GE(stats.signature_verifications, 6u);
  EXPECT_GE(stats.signatures_created, 3u);  // A's request, C's hop, B's response
}

TEST(Mndp, RunRoundDiscoversSymmetrically) {
  // Two disjoint gaps: (0,1) via 2 and (3,4) via 5.
  MndpWorld w({{100, 100}, {200, 100}, {150, 100},
               {700, 700}, {800, 700}, {750, 700}},
              150.0, 6);
  w.link(0, 2);
  w.link(1, 2);
  w.link(3, 5);
  w.link(4, 5);
  MndpEngine engine = w.make_engine();
  Rng order_rng(1);
  const MndpStats stats = engine.run_round(std::span<NodeState>(w.nodes), order_rng);
  EXPECT_EQ(stats.discoveries, 2u);
  EXPECT_NE(w.nodes[0].neighbor(node_id(1)), nullptr);
  EXPECT_NE(w.nodes[3].neighbor(node_id(4)), nullptr);
}


TEST(Mndp, NuOneNeverDiscoversAnything) {
  // With nu = 1 the request reaches only direct logical neighbors, who all
  // already know the source: no responses, no forwards.
  MndpWorld w({{100, 100}, {200, 100}, {150, 100}}, 150.0, 9);
  w.link(0, 2);
  w.link(1, 2);
  w.params.nu = 1;
  MndpEngine engine = w.make_engine();
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.requests_sent, 1u);  // A -> C only
  EXPECT_EQ(stats.responses_sent, 0u);
  EXPECT_EQ(stats.discoveries, 0u);
  EXPECT_LE(stats.max_hops_seen, 1u);
}

TEST(Mndp, ExpiredIntermediateLinkKillsDelivery) {
  // If C dropped its link to B (mobility timeout) after advertising it,
  // the forward simply fails at the session unicast; no crash, no table
  // corruption.
  MndpWorld w({{100, 100}, {200, 100}, {150, 100}}, 150.0, 10);
  w.link(0, 2);
  w.link(1, 2);
  w.nodes[2].remove_logical_neighbor(node_id(1));  // C's side only
  MndpEngine engine = w.make_engine();
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.discoveries, 0u);
  EXPECT_EQ(w.nodes[0].neighbor(node_id(1)), nullptr);
}

/// A PHY wrapper that corrupts a signature bit inside M-NDP requests.
class SignatureTamperPhy final : public PhyModel {
 public:
  explicit SignatureTamperPhy(PhyModel& inner) : inner_(inner) {}
  void begin_subsession(NodeId a, NodeId b, CodeId code) override {
    inner_.begin_subsession(a, b, code);
  }
  std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                    const BitVector& payload) override {
    auto rx = inner_.transmit(from, to, code, cls, payload);
    if (rx.has_value() && cls == TxClass::SessionUnicast) {
      rx->flip(100);  // inside the source signature's 256-bit tag
    }
    return rx;
  }

 private:
  PhyModel& inner_;
};

TEST(Mndp, TamperedRequestsAreDropped) {
  MndpWorld w({{100, 100}, {200, 100}, {150, 100}}, 150.0, 7);
  w.link(0, 2);
  w.link(1, 2);
  SignatureTamperPhy tamper(w.phy);
  MndpEngine engine(w.params, tamper, w.topology, w.ibc.oracle(), false);
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.discoveries, 0u);
  EXPECT_GT(stats.requests_dropped, 0u);
  EXPECT_EQ(w.nodes[0].neighbor(node_id(1)), nullptr);
}

TEST(Mndp, DuplicateSuppressionAcrossPaths) {
  // Diamond: A(0) links C(2) and D(3); both link B(1). B must process the
  // request once and respond once.
  MndpWorld w({{100, 100}, {200, 100}, {150, 80}, {150, 120}}, 200.0, 8);
  w.link(0, 2);
  w.link(0, 3);
  w.link(1, 2);
  w.link(1, 3);
  MndpEngine engine = w.make_engine();
  const MndpStats stats = engine.initiate(w.nodes[0], std::span<NodeState>(w.nodes));
  EXPECT_EQ(stats.responses_sent, 1u);
  EXPECT_EQ(stats.discoveries, 1u);
}

}  // namespace
}  // namespace jrsnd::core
