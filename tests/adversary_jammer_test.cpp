#include "adversary/jammer.hpp"

#include <gtest/gtest.h>

#include "predist/authority.hpp"

namespace jrsnd::adversary {
namespace {

struct World {
  predist::CodePoolAuthority authority;
  Rng rng;
  CompromiseModel compromise;

  World(std::uint32_t q, std::uint64_t seed)
      : authority(make_params(), Rng(seed)),
        rng(seed + 1),
        compromise(authority.assignment(), q, rng) {}

  static predist::PredistParams make_params() {
    predist::PredistParams p;
    p.node_count = 200;
    p.codes_per_node = 10;
    p.holders_per_code = 8;
    p.code_length_chips = 32;
    return p;
  }

  [[nodiscard]] CodeId some_compromised_code() const {
    return compromise.compromised_codes().front();
  }
  [[nodiscard]] CodeId some_safe_code() const {
    for (std::uint32_t c = 0; c < authority.pool_size(); ++c) {
      if (!compromise.is_code_compromised(code_id(c))) return code_id(c);
    }
    return kInvalidCode;
  }
};

TEST(NullJammer, NeverJams) {
  const NullJammer jammer;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(jammer.jams(code_id(0), MessageClass::Hello, rng));
  }
  EXPECT_STREQ(jammer.name(), "none");
}

TEST(ReactiveJammer, AlwaysJamsCompromisedCodes) {
  const World w(20, 1);
  const ReactiveJammer jammer(w.compromise, JammerParams{8, 1.0});
  Rng rng(2);
  const CodeId victim = w.some_compromised_code();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(jammer.jams(victim, MessageClass::Hello, rng));
    EXPECT_TRUE(jammer.jams(victim, MessageClass::Followup, rng));
  }
}

TEST(ReactiveJammer, NeverJamsSafeOrSessionCodes) {
  const World w(20, 2);
  const ReactiveJammer jammer(w.compromise, JammerParams{8, 1.0});
  Rng rng(3);
  const CodeId safe = w.some_safe_code();
  ASSERT_NE(safe, kInvalidCode);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(jammer.jams(safe, MessageClass::Hello, rng));
    EXPECT_FALSE(jammer.jams(kInvalidCode, MessageClass::Hello, rng));
    EXPECT_FALSE(jammer.jams(kInvalidCode, MessageClass::SessionSpread, rng));
  }
}

TEST(ReactiveJammer, IdentificationProbabilityThrottlesIt) {
  const World w(20, 3);
  const ReactiveJammer jammer(w.compromise, JammerParams{8, 1.0}, 0.4);
  Rng rng(4);
  const CodeId victim = w.some_compromised_code();
  int jams = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) jams += jammer.jams(victim, MessageClass::Hello, rng);
  EXPECT_NEAR(static_cast<double>(jams) / kTrials, 0.4, 0.02);
}

TEST(RandomJammer, BetaMatchesTheorem1Formula) {
  const World w(20, 4);
  const JammerParams params{8, 1.0};
  const RandomJammer jammer(w.compromise, params);
  const double c = static_cast<double>(w.compromise.compromised_code_count());
  const double tries = 8.0 * 2.0 / 1.0;  // z(1+mu)/mu
  EXPECT_NEAR(jammer.beta(), std::min(tries / c, 1.0), 1e-12);
  EXPECT_NEAR(jammer.beta_prime(), std::min(3.0 * tries / c, 1.0), 1e-12);
}

TEST(RandomJammer, EmpiricalRatesMatchBeta) {
  const World w(40, 5);
  const RandomJammer jammer(w.compromise, JammerParams{4, 1.0});
  Rng rng(6);
  const CodeId victim = w.some_compromised_code();
  int hello_jams = 0;
  int follow_jams = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hello_jams += jammer.jams(victim, MessageClass::Hello, rng);
    follow_jams += jammer.jams(victim, MessageClass::Followup, rng);
  }
  EXPECT_NEAR(static_cast<double>(hello_jams) / kTrials, jammer.beta(), 0.01);
  EXPECT_NEAR(static_cast<double>(follow_jams) / kTrials, jammer.beta_prime(), 0.015);
}

TEST(RandomJammer, WeakerThanReactive) {
  // beta <= 1 always; a random jammer never exceeds the reactive jammer's
  // per-message success on compromised codes.
  const World w(10, 6);
  const RandomJammer random_jammer(w.compromise, JammerParams{2, 1.0});
  EXPECT_LE(random_jammer.beta(), 1.0);
  EXPECT_LE(random_jammer.beta(), random_jammer.beta_prime());
}

TEST(RandomJammer, NoCompromisedCodesMeansNoJamming) {
  const World w(0, 7);
  const RandomJammer jammer(w.compromise, JammerParams{8, 1.0});
  EXPECT_DOUBLE_EQ(jammer.beta(), 0.0);
  EXPECT_DOUBLE_EQ(jammer.beta_prime(), 0.0);
  Rng rng(8);
  EXPECT_FALSE(jammer.jams(code_id(0), MessageClass::Hello, rng));
}

TEST(RandomJammer, SaturatesWithHugeZ) {
  const World w(5, 8);
  const RandomJammer jammer(w.compromise, JammerParams{100000, 1.0});
  EXPECT_DOUBLE_EQ(jammer.beta(), 1.0);
  EXPECT_DOUBLE_EQ(jammer.beta_prime(), 1.0);
}

class ZSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ZSweep, BetaMonotoneInZ) {
  const World w(20, 9);
  const RandomJammer weak(w.compromise, JammerParams{GetParam(), 1.0});
  const RandomJammer strong(w.compromise, JammerParams{GetParam() * 2, 1.0});
  EXPECT_LE(weak.beta(), strong.beta());
  EXPECT_LE(weak.beta_prime(), strong.beta_prime());
}

INSTANTIATE_TEST_SUITE_P(Zs, ZSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace jrsnd::adversary
