// The SIMD-batched correlator must agree exactly — bit-identical integer
// Hamming distances, bit-identical correlation doubles, byte-identical
// SyncHits — with the single-code ShiftTable kernel and the naive slice
// reference on EVERY compiled backend. Each property below therefore loops
// over the supported backends via set_simd_backend; a host without AVX
// still exercises the scalar path, and CI's JRSND_SIMD=scalar leg pins the
// whole suite to it.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dsss/prepared_codebook.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spread_code.hpp"
#include "dsss/spreader.hpp"
#include "dsss/sync_kernel.hpp"

namespace jrsnd::dsss {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

std::vector<SpreadCode> random_codes(Rng& rng, std::size_t m, std::size_t n) {
  std::vector<SpreadCode> codes;
  codes.reserve(m);
  for (std::size_t i = 0; i < m; ++i) codes.push_back(SpreadCode::random(rng, n));
  return codes;
}

std::vector<SimdBackend> supported_backends() {
  std::vector<SimdBackend> backends;
  for (const SimdBackend b :
       {SimdBackend::kScalar, SimdBackend::kAvx2, SimdBackend::kAvx512, SimdBackend::kNeon}) {
    if (simd_backend_supported(b)) backends.push_back(b);
  }
  return backends;
}

/// Pins the dispatch backend for one test body and restores the previous
/// choice on scope exit, so test order never leaks a forced backend.
class ScopedBackend {
 public:
  explicit ScopedBackend(SimdBackend backend) : previous_(simd_backend()) {
    set_simd_backend(backend);
  }
  ~ScopedBackend() { set_simd_backend(previous_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  SimdBackend previous_;
};

TEST(BatchKernel, ScalarBackendAlwaysSupported) {
  EXPECT_TRUE(simd_backend_supported(SimdBackend::kScalar));
  EXPECT_TRUE(simd_backend_supported(simd_backend()));
}

TEST(BatchKernel, SetBackendClampsToSupported) {
  const SimdBackend original = simd_backend();
  for (const SimdBackend request :
       {SimdBackend::kScalar, SimdBackend::kAvx2, SimdBackend::kAvx512, SimdBackend::kNeon}) {
    const SimdBackend installed = set_simd_backend(request);
    EXPECT_TRUE(simd_backend_supported(installed))
        << "request=" << simd_backend_name(request);
    EXPECT_EQ(installed, simd_backend());
    if (simd_backend_supported(request)) EXPECT_EQ(installed, request);
  }
  set_simd_backend(original);
}

TEST(BatchKernel, BackendNamesAreStable) {
  EXPECT_STREQ(simd_backend_name(SimdBackend::kScalar), "scalar");
  EXPECT_STREQ(simd_backend_name(SimdBackend::kAvx2), "avx2");
  EXPECT_STREQ(simd_backend_name(SimdBackend::kAvx512), "avx512");
  EXPECT_STREQ(simd_backend_name(SimdBackend::kNeon), "neon");
}

// The core bit-identity property: hamming_all over a group equals the
// per-code ShiftTable::hamming at every offset, for every supported
// backend, across sub-word / word-multiple / straddling code lengths and
// group sizes below, at, and above one vector register (8 lanes).
TEST(BatchKernel, HammingAllMatchesShiftTablePerBackend) {
  for (const SimdBackend backend : supported_backends()) {
    const ScopedBackend scope(backend);
    Rng rng(11);
    for (const std::size_t n : {1UL, 7UL, 63UL, 64UL, 65UL, 100UL, 128UL, 200UL, 511UL, 512UL}) {
      for (const std::size_t m : {1UL, 2UL, 5UL, 8UL, 9UL, 16UL, 20UL}) {
        const std::vector<SpreadCode> codes = random_codes(rng, m, n);
        const BatchShiftTable batch{std::span<const SpreadCode>(codes)};
        const std::vector<ShiftTable> tables = build_shift_tables(codes);
        ASSERT_EQ(batch.size(), m);
        ASSERT_EQ(batch.lane_count() % 8, 0U);
        ASSERT_GE(batch.lane_count(), m);

        const BitVector buffer = random_bits(rng, n + 130);  // all 64 alignments, twice
        std::vector<std::uint64_t> hams(batch.lane_count());
        for (std::size_t offset = 0; offset + n <= buffer.size(); ++offset) {
          batch.hamming_all(buffer, offset, hams);
          for (std::size_t c = 0; c < m; ++c) {
            ASSERT_EQ(hams[c], tables[c].hamming(buffer, offset))
                << simd_backend_name(backend) << " n=" << n << " m=" << m << " c=" << c
                << " offset=" << offset;
          }
        }
      }
    }
  }
}

// hamming_lane / correlate_lane read the same SoA rows with a stride — the
// despread path. Must match ShiftTable exactly, bitwise, per backend.
TEST(BatchKernel, LaneAccessorsMatchShiftTable) {
  for (const SimdBackend backend : supported_backends()) {
    const ScopedBackend scope(backend);
    Rng rng(12);
    const std::size_t n = 129;
    const std::vector<SpreadCode> codes = random_codes(rng, 6, n);
    const BatchShiftTable batch{std::span<const SpreadCode>(codes)};
    const std::vector<ShiftTable> tables = build_shift_tables(codes);
    const BitVector buffer = random_bits(rng, n + 130);
    for (std::size_t offset = 0; offset + n <= buffer.size(); ++offset) {
      for (std::size_t c = 0; c < codes.size(); ++c) {
        ASSERT_EQ(batch.hamming_lane(c, buffer, offset), tables[c].hamming(buffer, offset));
        ASSERT_EQ(batch.correlate_lane(c, buffer, offset), tables[c].correlate(buffer, offset))
            << simd_backend_name(backend) << " c=" << c << " offset=" << offset;
      }
    }
  }
}

TEST(BatchKernel, EmptyGroupIsInert) {
  const BatchShiftTable batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0U);
  EXPECT_EQ(batch.lane_count(), 0U);
  EXPECT_EQ(build_batch_tables({}).size(), 0U);
}

// A singleton group must match the single-code kernel exactly — the batched
// scan degenerates to the per-code path with seven zero padding lanes.
TEST(BatchKernel, SingletonGroupMatchesSingleCodeKernel) {
  for (const SimdBackend backend : supported_backends()) {
    const ScopedBackend scope(backend);
    Rng rng(13);
    const SpreadCode code = SpreadCode::random(rng, 200);
    const std::vector<SpreadCode> codes{code};
    const BatchShiftTable batch{std::span<const SpreadCode>(codes)};
    const ShiftTable table(code);
    ASSERT_EQ(batch.size(), 1U);
    ASSERT_EQ(batch.lane_count(), 8U);
    EXPECT_EQ(batch.source_index(0), 0U);

    const BitVector buffer = random_bits(rng, 200 + 130);
    std::vector<std::uint64_t> hams(batch.lane_count());
    for (std::size_t offset = 0; offset + 200 <= buffer.size(); ++offset) {
      batch.hamming_all(buffer, offset, hams);
      ASSERT_EQ(hams[0], table.hamming(buffer, offset)) << simd_backend_name(backend);
    }
  }
}

// Mixed-length pools group per distinct length (first-appearance order)
// without asserting; each group's lanes keep their original codebook
// indices so a hit can be mapped back to the source code.
TEST(BatchKernel, MixedLengthsGroupPerLengthWithoutAsserting) {
  Rng rng(14);
  std::vector<SpreadCode> codes;
  codes.push_back(SpreadCode::random(rng, 64));   // group 0, lane 0
  codes.push_back(SpreadCode::random(rng, 128));  // group 1, lane 0
  codes.push_back(SpreadCode::random(rng, 64));   // group 0, lane 1
  codes.push_back(SpreadCode::random(rng, 32));   // group 2, lane 0
  codes.push_back(SpreadCode::random(rng, 128));  // group 1, lane 1

  const std::vector<BatchShiftTable> groups = build_batch_tables(codes);
  ASSERT_EQ(groups.size(), 3U);
  EXPECT_EQ(groups[0].length(), 64U);
  EXPECT_EQ(groups[1].length(), 128U);
  EXPECT_EQ(groups[2].length(), 32U);
  ASSERT_EQ(groups[0].size(), 2U);
  ASSERT_EQ(groups[1].size(), 2U);
  ASSERT_EQ(groups[2].size(), 1U);
  EXPECT_EQ(groups[0].source_index(0), 0U);
  EXPECT_EQ(groups[0].source_index(1), 2U);
  EXPECT_EQ(groups[1].source_index(0), 1U);
  EXPECT_EQ(groups[1].source_index(1), 4U);
  EXPECT_EQ(groups[2].source_index(0), 3U);

  // Every lane of every group still matches its source code's ShiftTable.
  const BitVector buffer = random_bits(rng, 300);
  for (const BatchShiftTable& group : groups) {
    for (std::size_t lane = 0; lane < group.size(); ++lane) {
      const ShiftTable table(codes[group.source_index(lane)]);
      for (std::size_t offset = 0; offset + group.length() <= buffer.size(); ++offset) {
        ASSERT_EQ(group.hamming_lane(lane, buffer, offset), table.hamming(buffer, offset));
      }
    }
  }
}

// A PreparedCodebook over a mixed pool builds its groups without asserting
// (scans still refuse mixed pools; the grouping itself must be safe).
TEST(BatchKernel, MixedLengthPreparedCodebookBuildsGroups) {
  Rng rng(15);
  std::vector<SpreadCode> codes;
  codes.push_back(SpreadCode::random(rng, 64));
  codes.push_back(SpreadCode::random(rng, 96));
  const PreparedCodebook codebook{std::move(codes)};
  EXPECT_FALSE(codebook.uniform_lengths());
  EXPECT_EQ(codebook.batch_tables().size(), 2U);
  EXPECT_EQ(codebook.tables().size(), 2U);
}

/// Builds a buffer with `planted` messages spread by randomly chosen codes
/// from `codes`, separated by random noise runs. Mirrors the corpus the
/// existing FindAllMessages properties use.
BitVector planted_buffer(Rng& rng, std::span<const SpreadCode> codes, std::size_t message_bits,
                         std::size_t planted) {
  BitVector buffer = random_bits(rng, static_cast<std::size_t>(rng.uniform(120)));
  for (std::size_t i = 0; i < planted; ++i) {
    const std::size_t which = static_cast<std::size_t>(rng.uniform(codes.size()));
    const BitVector message = random_bits(rng, message_bits);
    buffer.append(spread(message, codes[which]));
    buffer.append(random_bits(rng, static_cast<std::size_t>(rng.uniform(90))));
  }
  return buffer;
}

void expect_same_hit(const SyncHit& got, const SyncHit& want, const char* where) {
  EXPECT_EQ(got.code_index, want.code_index) << where;
  EXPECT_EQ(got.chip_offset, want.chip_offset) << where;
  EXPECT_EQ(got.message.bits, want.message.bits) << where;
  EXPECT_EQ(got.message.erased_bits, want.message.erased_bits) << where;
}

// The end-to-end property: the batched scan (span overloads AND the cached
// PreparedCodebook path) returns byte-identical SyncHits to the slice-based
// reference oracle on a randomized corpus, for every supported backend,
// across group sizes that under- and over-fill a vector register.
TEST(BatchKernel, BatchedScanMatchesReferenceOracle) {
  for (const SimdBackend backend : supported_backends()) {
    const ScopedBackend scope(backend);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(1000 + seed);
      const std::size_t n = 64 + static_cast<std::size_t>(rng.uniform(140));
      const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(11));
      const std::size_t bits = 4 + static_cast<std::size_t>(rng.uniform(8));
      const std::vector<SpreadCode> codes = random_codes(rng, m, n);
      const BitVector buffer = planted_buffer(rng, codes, bits, 2);
      const double tau = 0.8;

      const auto want_first = find_first_message_reference(buffer, codes, bits, tau);
      const auto got_first = find_first_message(buffer, codes, bits, tau);
      ASSERT_EQ(got_first.has_value(), want_first.has_value())
          << simd_backend_name(backend) << " seed=" << seed;
      if (want_first) expect_same_hit(*got_first, *want_first, "find_first_message");

      const PreparedCodebook codebook{codes};
      SyncHit prepared_hit;
      const bool prepared_found =
          find_first_message_into(buffer, codebook, bits, tau, 0, prepared_hit);
      ASSERT_EQ(prepared_found, want_first.has_value());
      if (want_first) expect_same_hit(prepared_hit, *want_first, "find_first_message_into");

      const auto want_all = find_all_messages_reference(buffer, codes, bits, tau);
      const auto got_all = find_all_messages(buffer, codes, bits, tau);
      const auto got_all_prepared = find_all_messages(buffer, codebook, bits, tau);
      ASSERT_EQ(got_all.size(), want_all.size());
      ASSERT_EQ(got_all_prepared.size(), want_all.size());
      for (std::size_t i = 0; i < want_all.size(); ++i) {
        expect_same_hit(got_all[i], want_all[i], "find_all_messages");
        expect_same_hit(got_all_prepared[i], want_all[i], "find_all_messages(prepared)");
      }
    }
  }
}

// Non-zero start offsets must skip earlier hits exactly as the reference
// does — the batched search begins mid-buffer at arbitrary alignment.
TEST(BatchKernel, StartOffsetMatchesReference) {
  Rng rng(16);
  const std::size_t n = 128;
  const std::size_t bits = 6;
  const std::vector<SpreadCode> codes = random_codes(rng, 5, n);
  const BitVector buffer = planted_buffer(rng, codes, bits, 3);
  for (const std::size_t start : {0UL, 1UL, 37UL, 64UL, 101UL, 300UL}) {
    const auto want = find_first_message_reference(buffer, codes, bits, 0.8, start);
    const auto got = find_first_message(buffer, codes, bits, 0.8, start);
    ASSERT_EQ(got.has_value(), want.has_value()) << "start=" << start;
    if (want) expect_same_hit(*got, *want, "start offset");
  }
}

// TSan target (CI runs -R BatchKernel under ThreadSanitizer): many threads
// scan one shared PreparedCodebook whose batch tables build lazily on first
// use — the double-checked build and the read-only SoA scans must be
// race-free.
TEST(BatchKernel, ConcurrentScansOverSharedCodebook) {
  Rng rng(17);
  const std::size_t n = 128;
  const std::size_t bits = 8;
  const std::vector<SpreadCode> codes = random_codes(rng, 6, n);
  const PreparedCodebook codebook{codes};
  const BitVector buffer = planted_buffer(rng, codes, bits, 2);
  const auto want = find_first_message_reference(buffer, codes, bits, 0.8);
  ASSERT_TRUE(want.has_value());

  std::vector<std::thread> threads;
  std::vector<SyncHit> hits(8);
  std::vector<int> found(8, 0);
  threads.reserve(hits.size());
  for (std::size_t t = 0; t < hits.size(); ++t) {
    threads.emplace_back([&, t] {
      found[t] = find_first_message_into(buffer, codebook, bits, 0.8, 0, hits[t]) ? 1 : 0;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < hits.size(); ++t) {
    ASSERT_EQ(found[t], 1) << "thread " << t;
    expect_same_hit(hits[t], *want, "concurrent scan");
  }
}

}  // namespace
}  // namespace jrsnd::dsss
