#include "core/tracing_phy.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <variant>

#include "adversary/jammer.hpp"
#include "core/abstract_phy.hpp"
#include "core/dndp.hpp"
#include "obs/sinks.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {
namespace {

struct TraceWorld {
  Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field{100.0, 100.0};
  sim::Topology topology;
  adversary::NullJammer jammer;
  Rng phy_rng{3};
  AbstractPhy inner;
  TracingPhy phy;
  std::vector<NodeState> nodes;

  TraceWorld()
      : params(make_params()),
        authority(params.predist(), Rng(1)),
        ibc(2),
        topology(field, {{10, 10}, {20, 10}}, 50.0),
        inner(topology, jammer, phy_rng),
        phy(inner) {
    Rng node_rng(4);
    for (std::uint32_t i = 0; i < 2; ++i) {
      nodes.emplace_back(node_id(i), ibc.issue(node_id(i)),
                         authority.assignment().codes_of(node_id(i)), authority,
                         params.gamma, node_rng.split());
    }
  }

  static Params make_params() {
    Params p = Params::defaults();
    p.n = 2;
    p.m = 3;
    p.l = 2;  // both nodes share all pool codes
    p.N = 64;
    return p;
  }
};

TEST(TracingPhy, RecordsTheFullDndpMessageSequence) {
  TraceWorld w;
  DndpEngine engine(w.params, w.phy);
  const DndpResult result = engine.run(w.nodes[0], w.nodes[1]);
  ASSERT_TRUE(result.discovered);

  // x shared codes -> x sub-sessions, each HELLO + CONFIRM + 2 AUTH.
  const auto hellos = w.phy.by_class(TxClass::Hello);
  const auto confirms = w.phy.by_class(TxClass::Confirm);
  const auto auths = w.phy.by_class(TxClass::Auth);
  EXPECT_EQ(hellos.size(), result.shared_codes);
  EXPECT_EQ(confirms.size(), result.shared_codes);
  EXPECT_EQ(auths.size(), 2u * result.shared_codes);
  EXPECT_EQ(w.phy.records().size(), 4u * result.shared_codes);
  EXPECT_EQ(w.phy.delivered_count(), w.phy.records().size());  // clean channel

  // Directions: HELLO and the first AUTH go initiator -> responder.
  for (const auto& r : hellos) {
    EXPECT_EQ(r.from, node_id(0));
    EXPECT_EQ(r.to, node_id(1));
  }
  for (const auto& r : confirms) {
    EXPECT_EQ(r.from, node_id(1));
    EXPECT_EQ(r.to, node_id(0));
  }

  // Payload sizes match the wire formats (l_t + l_id = 21 for HELLO).
  EXPECT_EQ(hellos[0].payload_bits, 21u);
  EXPECT_EQ(auths[0].payload_bits, 5u + 16u + 20u + 160u);
}

TEST(TracingPhy, ClearResetsAndPrintRenders) {
  TraceWorld w;
  DndpEngine engine(w.params, w.phy);
  ASSERT_TRUE(engine.run(w.nodes[0], w.nodes[1]).discovered);
  std::ostringstream os;
  w.phy.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("HELLO"), std::string::npos);
  EXPECT_NE(text.find("AUTH"), std::string::npos);
  EXPECT_NE(text.find("delivered"), std::string::npos);
  w.phy.clear();
  EXPECT_TRUE(w.phy.records().empty());
}

TEST(TracingPhy, MarksJammedTransmissionsAsLost) {
  TraceWorld w;
  // Jam everything: compromise both nodes, reactive jammer.
  Rng comp_rng(9);
  adversary::CompromiseModel compromise(w.authority.assignment(), 2, comp_rng);
  adversary::ReactiveJammer jammer(compromise, {8, 1.0});
  AbstractPhy inner(w.topology, jammer, w.phy_rng);
  TracingPhy phy(inner);
  DndpEngine engine(w.params, phy);
  EXPECT_FALSE(engine.run(w.nodes[0], w.nodes[1]).discovered);
  EXPECT_EQ(phy.delivered_count(), 0u);
  EXPECT_FALSE(phy.records().empty());
  for (const auto& r : phy.records()) EXPECT_FALSE(r.delivered);
}

TEST(TracingPhy, ClassNamesAreStable) {
  EXPECT_STREQ(tx_class_name(TxClass::Hello), "HELLO");
  EXPECT_STREQ(tx_class_name(TxClass::SessionUnicast), "MNDP-UNICAST");
}

TEST(TracingPhy, StampsMonotonicSequenceAndSimTime) {
  TraceWorld w;
  w.phy.set_time(TimePoint{1.5});
  DndpEngine engine(w.params, w.phy);
  ASSERT_TRUE(engine.run(w.nodes[0], w.nodes[1]).discovered);
  ASSERT_FALSE(w.phy.records().empty());
  std::uint64_t expected_seq = 1;
  for (const auto& r : w.phy.records()) {
    EXPECT_EQ(r.seq, expected_seq++);
    EXPECT_DOUBLE_EQ(r.t, 1.5);
  }
  // clear() drops records but capture order keeps counting.
  w.phy.clear();
  w.phy.set_time(TimePoint{2.0});
  (void)engine.run(w.nodes[0], w.nodes[1]);
  ASSERT_FALSE(w.phy.records().empty());
  EXPECT_EQ(w.phy.records().front().seq, expected_seq);
  EXPECT_DOUBLE_EQ(w.phy.records().front().t, 2.0);
}

TEST(TracingPhy, PrintJsonlEmitsParseableObsEvents) {
  TraceWorld w;
  DndpEngine engine(w.params, w.phy);
  ASSERT_TRUE(engine.run(w.nodes[0], w.nodes[1]).discovered);
  std::ostringstream os;
  w.phy.print_jsonl(os);

  std::istringstream in(os.str());
  std::string line;
  std::size_t parsed_count = 0;
  while (std::getline(in, line)) {
    const auto ev = obs::parse_jsonl_line(line);
    ASSERT_TRUE(ev.has_value()) << line;
    EXPECT_EQ(ev->name, "phy.tx");
    EXPECT_NE(ev->field("from"), nullptr);
    EXPECT_NE(ev->field("class"), nullptr);
    ASSERT_NE(ev->field("delivered"), nullptr);
    EXPECT_TRUE(std::get<bool>(*ev->field("delivered")));
    ++parsed_count;
  }
  EXPECT_EQ(parsed_count, w.phy.records().size());
}

}  // namespace
}  // namespace jrsnd::core
