#include "predist/authority.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "common/math_util.hpp"

namespace jrsnd::predist {
namespace {

PredistParams small_params() {
  PredistParams p;
  p.node_count = 100;
  p.codes_per_node = 10;
  p.holders_per_code = 5;
  p.code_length_chips = 64;
  return p;
}

TEST(PredistParams, DerivedQuantities) {
  PredistParams p = small_params();
  EXPECT_EQ(p.groups_per_round(), 20u);  // w = 100/5
  EXPECT_EQ(p.pool_size(), 200u);        // s = w m
  EXPECT_EQ(p.virtual_node_count(), 0u);

  p.node_count = 98;  // l does not divide n: l' = 2 virtual nodes
  EXPECT_EQ(p.groups_per_round(), 20u);
  EXPECT_EQ(p.virtual_node_count(), 2u);
}

TEST(Authority, EveryNodeGetsMCodes) {
  const CodePoolAuthority authority(small_params(), Rng(1));
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(authority.assignment().codes_of(node_id(i)).size(), 10u);
  }
}

TEST(Authority, NoNodeHoldsDuplicateCodes) {
  const CodePoolAuthority authority(small_params(), Rng(2));
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto& codes = authority.assignment().codes_of(node_id(i));
    const std::set<CodeId> unique(codes.begin(), codes.end());
    EXPECT_EQ(unique.size(), codes.size());
  }
}

TEST(Authority, EveryCodeHasExactlyLHoldersWhenDivisible) {
  const CodePoolAuthority authority(small_params(), Rng(3));
  for (std::uint32_t c = 0; c < authority.pool_size(); ++c) {
    EXPECT_EQ(authority.assignment().holders_of(code_id(c)).size(), 5u) << "code " << c;
  }
}

TEST(Authority, VirtualNodesAbsorbRemainder) {
  PredistParams p = small_params();
  p.node_count = 97;  // l' = 3 virtual slots
  const CodePoolAuthority authority(p, Rng(4));
  EXPECT_EQ(authority.banked_slots(), 3u);
  // Codes now have at most l holders among real nodes.
  std::size_t max_holders = 0;
  for (std::uint32_t c = 0; c < authority.pool_size(); ++c) {
    max_holders = std::max(max_holders,
                           authority.assignment().holders_of(code_id(c)).size());
  }
  EXPECT_LE(max_holders, 5u);
}

TEST(Authority, RoundStructure) {
  // Round i hands out exactly codes [w*i, w*(i+1)): every node's j-th-round
  // code id must fall in that band... verified via the invariant that each
  // node holds exactly one code from each round's band.
  const CodePoolAuthority authority(small_params(), Rng(5));
  const std::uint32_t w = small_params().groups_per_round();
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto& codes = authority.assignment().codes_of(node_id(i));
    std::vector<int> per_round(10, 0);
    for (const CodeId c : codes) ++per_round[raw(c) / w];
    for (const int count : per_round) EXPECT_EQ(count, 1);
  }
}

TEST(Authority, DeterministicGivenSeed) {
  const CodePoolAuthority a1(small_params(), Rng(77));
  const CodePoolAuthority a2(small_params(), Rng(77));
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a1.assignment().codes_of(node_id(i)), a2.assignment().codes_of(node_id(i)));
  }
  EXPECT_EQ(a1.code(code_id(0)).bits(), a2.code(code_id(0)).bits());
}

TEST(Authority, DifferentSeedsDiffer) {
  const CodePoolAuthority a1(small_params(), Rng(1));
  const CodePoolAuthority a2(small_params(), Rng(2));
  int identical = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    identical += a1.assignment().codes_of(node_id(i)) == a2.assignment().codes_of(node_id(i));
  }
  EXPECT_LT(identical, 10);
}

TEST(Authority, PoolCodesHaveRequestedLength) {
  const CodePoolAuthority authority(small_params(), Rng(6));
  EXPECT_EQ(authority.code(code_id(0)).length(), 64u);
  EXPECT_EQ(authority.code(code_id(199)).length(), 64u);
  EXPECT_THROW((void)authority.code(code_id(200)), std::out_of_range);
}

TEST(Authority, SharedCodeFrequencyMatchesEq1) {
  // Empirical P(x >= 1) over all pairs vs Eq. (1): with n=100, m=10, l=5,
  // p_pair = (l-1)/(n-1) = 4/99, P(x>=1) = 1 - (1 - 4/99)^10 ~= 0.338.
  const CodePoolAuthority authority(small_params(), Rng(7));
  const auto histogram = authority.assignment().shared_count_histogram();
  std::size_t pairs = 0;
  for (const auto h : histogram) pairs += h;
  const double p_none = static_cast<double>(histogram[0]) / static_cast<double>(pairs);
  const double expected = std::pow(1.0 - 4.0 / 99.0, 10);
  EXPECT_NEAR(p_none, expected, 0.05);
}

TEST(Authority, JoinUsesBankedVirtualSlots) {
  PredistParams p = small_params();
  p.node_count = 98;  // 2 banked slots
  CodePoolAuthority authority(p, Rng(8));
  ASSERT_EQ(authority.banked_slots(), 2u);
  const auto codes = authority.join(node_id(500));
  EXPECT_EQ(codes.size(), 10u);
  EXPECT_EQ(authority.banked_slots(), 1u);
  EXPECT_TRUE(authority.assignment().has_node(node_id(500)));
  EXPECT_EQ(authority.assignment().codes_of(node_id(500)).size(), 10u);
}

TEST(Authority, JoinBeyondBankDistributesFreshCohort) {
  CodePoolAuthority authority(small_params(), Rng(9));  // bank empty (l | n)
  ASSERT_EQ(authority.banked_slots(), 0u);
  const auto codes = authority.join(node_id(1000));
  EXPECT_EQ(codes.size(), 10u);
  // A fresh cohort of w = 20 slots was created; one consumed.
  EXPECT_EQ(authority.banked_slots(), 19u);
  // Holder counts rise to at most l + 1.
  std::size_t max_holders = authority.assignment().max_holders();
  EXPECT_LE(max_holders, 6u);
}

TEST(Authority, JoinRejectsExistingNode) {
  CodePoolAuthority authority(small_params(), Rng(10));
  EXPECT_THROW((void)authority.join(node_id(5)), std::invalid_argument);
}

TEST(Authority, RejectsZeroParameters) {
  PredistParams p = small_params();
  p.codes_per_node = 0;
  EXPECT_THROW(CodePoolAuthority(p, Rng(1)), std::invalid_argument);
}

TEST(CodeAssignment, SharedCodesIsSymmetricIntersection) {
  CodeAssignment a;
  a.assign(node_id(1), {code_id(1), code_id(5), code_id(9)});
  a.assign(node_id(2), {code_id(5), code_id(9), code_id(12)});
  const auto shared12 = a.shared_codes(node_id(1), node_id(2));
  EXPECT_EQ(shared12, (std::vector<CodeId>{code_id(5), code_id(9)}));
  EXPECT_EQ(a.shared_codes(node_id(2), node_id(1)), shared12);
}

TEST(CodeAssignment, HoldersOfUnknownCodeIsEmpty) {
  CodeAssignment a;
  a.assign(node_id(1), {code_id(1)});
  EXPECT_TRUE(a.holders_of(code_id(99)).empty());
}

TEST(CodeAssignment, DoubleAssignThrows) {
  CodeAssignment a;
  a.assign(node_id(1), {code_id(1)});
  EXPECT_THROW(a.assign(node_id(1), {code_id(2)}), std::invalid_argument);
}


struct Eq1Params {
  std::uint32_t n;
  std::uint32_t m;
  std::uint32_t l;
};

class Eq1HistogramSweep : public ::testing::TestWithParam<Eq1Params> {};

TEST_P(Eq1HistogramSweep, EmpiricalSharingMatchesEq1) {
  // Chi-squared goodness of fit of the measured shared-code histogram
  // against Eq. (1), pooling the tail so every bin has decent mass.
  const auto [n, m, l] = GetParam();
  PredistParams pp;
  pp.node_count = n;
  pp.codes_per_node = m;
  pp.holders_per_code = l;
  pp.code_length_chips = 32;
  const CodePoolAuthority authority(pp, Rng(n * 31 + m * 7 + l));
  const auto histogram = authority.assignment().shared_count_histogram();

  double pairs = 0.0;
  for (const auto h : histogram) pairs += static_cast<double>(h);

  double chi2 = 0.0;
  int bins = 0;
  double tail_expected = pairs;
  double tail_observed = pairs;
  for (std::size_t x = 0; x < histogram.size(); ++x) {
    const double expected = pairs * pr_shared_codes(m, static_cast<std::int64_t>(x), n, l);
    if (expected < 8.0) break;  // pool the sparse tail
    chi2 += (static_cast<double>(histogram[x]) - expected) *
            (static_cast<double>(histogram[x]) - expected) / expected;
    tail_expected -= expected;
    tail_observed -= static_cast<double>(histogram[x]);
    ++bins;
  }
  if (tail_expected > 8.0) {
    chi2 += (tail_observed - tail_expected) * (tail_observed - tail_expected) / tail_expected;
    ++bins;
  }
  // Pairs are weakly dependent (fixed group sizes per round), so allow a
  // generous quantile: ~3x the dof covers every seed we ship.
  EXPECT_LT(chi2, 3.0 * bins + 20.0) << "bins=" << bins;
}

INSTANTIATE_TEST_SUITE_P(Configs, Eq1HistogramSweep,
                         ::testing::Values(Eq1Params{100, 10, 5}, Eq1Params{200, 8, 10},
                                           Eq1Params{150, 12, 15}, Eq1Params{120, 20, 6}));

}  // namespace
}  // namespace jrsnd::predist
