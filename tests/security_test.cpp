// Adversarial end-to-end tests: what a compromised insider can and cannot
// do. The paper's security argument (§IV, §V) reduces to: captured radios
// leak spread codes (jamming, bounded DoS) but NEVER let the adversary
// impersonate a non-compromised identity or hijack a session — because
// authentication rides the ID-based keys, not the codes.
#include <gtest/gtest.h>

#include "jrsnd.hpp"

namespace jrsnd {
namespace {

struct SecurityWorld {
  core::Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field{100.0, 100.0};
  sim::Topology topology;
  adversary::NullJammer jammer;
  Rng phy_rng{5};
  core::AbstractPhy phy;
  std::vector<core::NodeState> nodes;

  SecurityWorld()
      : params(make_params()),
        authority(params.predist(), Rng(1)),
        ibc(2),
        topology(field, {{10, 10}, {20, 10}, {30, 10}}, 50.0),
        phy(topology, jammer, phy_rng) {
    Rng node_rng(3);
    for (std::uint32_t i = 0; i < params.n; ++i) {
      nodes.emplace_back(node_id(i), ibc.issue(node_id(i)),
                         authority.assignment().codes_of(node_id(i)), authority,
                         params.gamma, node_rng.split());
    }
  }

  static core::Params make_params() {
    core::Params p = core::Params::defaults();
    p.n = 3;
    p.m = 3;
    p.l = 3;
    p.N = 64;
    return p;
  }
};

TEST(Security, ImpersonationInDndpFailsMutualAuthentication) {
  SecurityWorld w;
  // Mallory captured node 2's radio (codes + key) and claims to be node 1:
  // she broadcasts HELLOs carrying ID 1 but can only compute keys with
  // node 2's private key.
  Rng mallory_rng(9);
  core::NodeState mallory(node_id(1), w.ibc.issue(node_id(2)),
                          w.authority.assignment().codes_of(node_id(2)), w.authority,
                          w.params.gamma, mallory_rng);
  core::DndpEngine engine(w.params, w.phy);
  const core::DndpResult result = engine.run(mallory, w.nodes[0]);
  EXPECT_FALSE(result.discovered);
  EXPECT_TRUE(result.mac_failure);  // f_{K}(ID_1 | n) never verifies
  EXPECT_EQ(w.nodes[0].neighbor(node_id(1)), nullptr);
}

TEST(Security, ImpersonationAsResponderAlsoFails) {
  SecurityWorld w;
  Rng mallory_rng(10);
  core::NodeState mallory(node_id(1), w.ibc.issue(node_id(2)),
                          w.authority.assignment().codes_of(node_id(2)), w.authority,
                          w.params.gamma, mallory_rng);
  core::DndpEngine engine(w.params, w.phy);
  // The honest node initiates; Mallory answers claiming to be node 1.
  const core::DndpResult result = engine.run(w.nodes[0], mallory);
  EXPECT_FALSE(result.discovered);
  EXPECT_EQ(w.nodes[0].neighbor(node_id(1)), nullptr);
}

TEST(Security, HonestPairStillDiscoversDespiteCapturedThirdParty) {
  SecurityWorld w;
  // Node 2 is captured: its codes leak, the jammer uses them. Nodes 0 and
  // 1 still authenticate each other (reactive jamming may or may not stop
  // them depending on shared codes; with l = n all codes leak, so use the
  // clean channel here and assert the crypto layer is unimpressed by the
  // leak: the pairwise key K_01 is not derivable from node 2's key).
  const crypto::SymmetricKey k01 = w.ibc.issue(node_id(0)).shared_key(node_id(1));
  const crypto::SymmetricKey k21 = w.ibc.issue(node_id(2)).shared_key(node_id(1));
  const crypto::SymmetricKey k20 = w.ibc.issue(node_id(2)).shared_key(node_id(0));
  EXPECT_NE(k01, k21);
  EXPECT_NE(k01, k20);

  core::DndpEngine engine(w.params, w.phy);
  EXPECT_TRUE(engine.run(w.nodes[0], w.nodes[1]).discovered);
}

TEST(Security, MndpSourceImpersonationDroppedAtFirstHop) {
  SecurityWorld w;
  // Honest links: 1-2 (so the request has somewhere to go).
  core::DndpEngine dndp(w.params, w.phy);
  ASSERT_TRUE(dndp.run(w.nodes[1], w.nodes[2]).discovered);

  // Mallory (holding node 2's key) claims to BE node 0 and plants a bogus
  // session link with node 1 so her unicast is delivered. Node 1 must
  // reject the request: SIG never verifies against ID 0.
  Rng mallory_rng(11);
  core::NodeState mallory(node_id(0), w.ibc.issue(node_id(2)),
                          w.authority.assignment().codes_of(node_id(2)), w.authority,
                          w.params.gamma, mallory_rng);
  crypto::SymmetricKey bogus;
  bogus.fill(0x99);
  BitVector na(w.params.l_n);
  BitVector nb(w.params.l_n);
  const BitVector session = crypto::derive_session_code(bogus, na, nb, w.params.N);
  mallory.add_logical_neighbor(node_id(1), core::LogicalNeighbor{bogus, session, false});
  w.nodes[1].add_logical_neighbor(node_id(0), core::LogicalNeighbor{bogus, session, false});

  core::MndpEngine mndp(w.params, w.phy, w.topology, w.ibc.oracle(), false);
  std::vector<core::NodeState> registry;
  registry.push_back(std::move(mallory));  // raw id 0 slot
  registry.push_back(std::move(w.nodes[1]));
  registry.push_back(std::move(w.nodes[2]));
  const core::MndpStats stats = mndp.initiate(registry[0], std::span<core::NodeState>(registry));
  EXPECT_GT(stats.requests_dropped, 0u);
  EXPECT_EQ(stats.discoveries, 0u);
  EXPECT_EQ(stats.responses_sent, 0u);
}

TEST(Security, SessionTrafficForgeryRejected) {
  SecurityWorld w;
  core::DndpEngine dndp(w.params, w.phy);
  ASSERT_TRUE(dndp.run(w.nodes[0], w.nodes[1]).discovered);

  // Mallory knows the session CODE (say she captured node 1 later and read
  // its monitor list) but not the direction keys' future counters; a
  // replayed sealed message must be rejected by the channel's unsealer.
  core::SecureChannel channel(w.nodes[0], w.nodes[1], w.phy);
  ASSERT_TRUE(channel.send_text(node_id(0), "one").has_value());
  // Direct replay is exercised at the crypto layer (crypto_stream_test);
  // here assert the channel-level counters see no rejects for honest use
  // and that sealed bytes differ per message even for equal plaintexts.
  const auto a = channel.send_text(node_id(0), "same");
  const auto b = channel.send_text(node_id(0), "same");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(channel.messages_rejected(), 0u);
}

TEST(Security, CompromisedCodesEnableDosButOnlyUpToTheBound) {
  SecurityWorld w;
  // With l = n = 3 every code leaks when node 2 falls; the DoS campaign
  // against nodes 0 and 1 is still capped at (holders-1)(gamma+1)/code.
  Rng comp_rng(13);
  const adversary::CompromiseModel compromise(w.authority.assignment(), 1, comp_rng);
  adversary::DosCampaign campaign(w.authority.assignment(), compromise.compromised_codes(),
                                  compromise.compromised_nodes(), w.params.gamma,
                                  w.params.t_ver);
  const auto result = campaign.run(100000);
  EXPECT_EQ(result.verifications, campaign.total_verification_bound());
  EXPECT_GT(result.requests_ignored, 0u);
}

}  // namespace
}  // namespace jrsnd
