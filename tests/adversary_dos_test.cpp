#include "adversary/dos_attacker.hpp"

#include <gtest/gtest.h>

#include "adversary/compromise.hpp"
#include "baselines/public_code_set.hpp"
#include "predist/authority.hpp"

namespace jrsnd::adversary {
namespace {

predist::CodePoolAuthority make_authority(std::uint64_t seed) {
  predist::PredistParams p;
  p.node_count = 100;
  p.codes_per_node = 10;
  p.holders_per_code = 5;
  p.code_length_chips = 32;
  return predist::CodePoolAuthority(p, Rng(seed));
}

TEST(DosCampaign, VerificationsAreBoundedByGamma) {
  const auto authority = make_authority(1);
  Rng rng(2);
  const CompromiseModel compromise(authority.assignment(), 3, rng);
  const auto codes = compromise.compromised_codes();
  const auto nodes = compromise.compromised_nodes();

  const std::uint32_t gamma = 5;
  DosCampaign campaign(authority.assignment(), codes, nodes, gamma, 35.5e-3);
  // Flood far beyond the bound.
  const DosCampaignResult result = campaign.run(10000);
  EXPECT_LE(result.verifications, campaign.total_verification_bound());
  EXPECT_GT(result.requests_ignored, 0u);
  EXPECT_GT(result.revocations, 0u);
}

TEST(DosCampaign, BoundIsTightWhenFloodLargeEnough) {
  const auto authority = make_authority(2);
  Rng rng(3);
  const CompromiseModel compromise(authority.assignment(), 2, rng);
  DosCampaign campaign(authority.assignment(), compromise.compromised_codes(),
                       compromise.compromised_nodes(), 4, 35.5e-3);
  const DosCampaignResult result = campaign.run(1000);
  // Every victim of every code performs exactly gamma + 1 verifications.
  EXPECT_EQ(result.verifications, campaign.total_verification_bound());
}

TEST(DosCampaign, SmallFloodCostsLinear) {
  const auto authority = make_authority(3);
  Rng rng(4);
  const CompromiseModel compromise(authority.assignment(), 2, rng);
  const auto codes = compromise.compromised_codes();
  DosCampaign campaign(authority.assignment(), codes, compromise.compromised_nodes(), 50,
                       35.5e-3);
  const DosCampaignResult result = campaign.run(2);
  // 2 requests per code, each verified by every (non-compromised) holder.
  EXPECT_EQ(result.requests_sent, 2u * codes.size());
  EXPECT_EQ(result.revocations, 0u);  // gamma = 50 not reached
  EXPECT_EQ(result.requests_ignored, 0u);
}

TEST(DosCampaign, PerCodeBoundMatchesHolderCount) {
  const auto authority = make_authority(4);
  Rng rng(5);
  const CompromiseModel compromise(authority.assignment(), 1, rng);
  const auto codes = compromise.compromised_codes();
  const std::uint32_t gamma = 7;
  DosCampaign campaign(authority.assignment(), codes, compromise.compromised_nodes(), gamma,
                       35.5e-3);
  for (const CodeId code : codes) {
    std::size_t victims = 0;
    for (const NodeId holder : authority.assignment().holders_of(code)) {
      victims += !compromise.is_node_compromised(holder);
    }
    EXPECT_EQ(campaign.per_code_verification_bound(code), victims * (gamma + 1));
  }
}

TEST(DosCampaign, VerificationTimeUsesTver) {
  const auto authority = make_authority(5);
  Rng rng(6);
  const CompromiseModel compromise(authority.assignment(), 1, rng);
  const double t_ver = 35.5e-3;
  DosCampaign campaign(authority.assignment(), compromise.compromised_codes(),
                       compromise.compromised_nodes(), 3, t_ver);
  const DosCampaignResult result = campaign.run(100);
  EXPECT_NEAR(result.verification_time_s,
              static_cast<double>(result.verifications) * t_ver, 1e-9);
}

TEST(DosCampaign, NoCompromisedCodesNoCost) {
  const auto authority = make_authority(6);
  DosCampaign campaign(authority.assignment(), {}, {}, 5, 35.5e-3);
  const DosCampaignResult result = campaign.run(1000);
  EXPECT_EQ(result.verifications, 0u);
  EXPECT_EQ(result.requests_sent, 0u);
}

TEST(DosCampaign, PublicCodeSetBaselineIsUnbounded) {
  // The contrast the paper draws in §V-D: same flood, no cap.
  const std::uint64_t injected = 100000;
  const std::uint64_t receivers = 20;
  EXPECT_EQ(baselines::PublicCodeSetScheme::dos_verifications(injected, receivers),
            injected * receivers);

  // JR-SND with the same flood: capped regardless of the attacker's budget.
  const auto authority = make_authority(7);
  Rng rng(8);
  const CompromiseModel compromise(authority.assignment(), 3, rng);
  DosCampaign campaign(authority.assignment(), compromise.compromised_codes(),
                       compromise.compromised_nodes(), 10, 35.5e-3);
  const DosCampaignResult result = campaign.run(injected);
  EXPECT_LT(result.verifications, injected);  // many orders of magnitude less
}

}  // namespace
}  // namespace jrsnd::adversary
