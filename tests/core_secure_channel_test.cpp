#include "core/secure_channel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "adversary/jammer.hpp"
#include "core/abstract_phy.hpp"
#include "core/chip_phy.hpp"
#include "core/dndp.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {
namespace {

struct ChannelWorld {
  Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field{100.0, 100.0};
  sim::Topology topology;
  adversary::NullJammer jammer;
  Rng phy_rng{7};
  AbstractPhy phy;
  std::vector<NodeState> nodes;

  ChannelWorld()
      : params(make_params()),
        authority(params.predist(), Rng(1)),
        ibc(2),
        topology(field, {{10, 10}, {20, 10}, {90, 90}}, 30.0),
        phy(topology, jammer, phy_rng) {
    Rng node_rng(3);
    for (std::uint32_t i = 0; i < params.n; ++i) {
      nodes.emplace_back(node_id(i), ibc.issue(node_id(i)),
                         authority.assignment().codes_of(node_id(i)), authority,
                         params.gamma, node_rng.split());
    }
  }

  static Params make_params() {
    Params p = Params::defaults();
    p.n = 3;
    p.m = 3;
    p.l = 3;  // all nodes share the whole pool
    p.N = 64;
    return p;
  }

  void discover(std::uint32_t a, std::uint32_t b) {
    DndpEngine engine(params, phy);
    ASSERT_TRUE(engine.run(nodes[a], nodes[b]).discovered);
  }
};

TEST(SecureChannel, RequiresDiscoveryFirst) {
  ChannelWorld w;
  EXPECT_THROW(SecureChannel(w.nodes[0], w.nodes[1], w.phy), std::invalid_argument);
}

TEST(SecureChannel, DuplexTextDelivery) {
  ChannelWorld w;
  w.discover(0, 1);
  SecureChannel channel(w.nodes[0], w.nodes[1], w.phy);
  const auto at_b = channel.send_text(node_id(0), "hello from A");
  ASSERT_TRUE(at_b.has_value());
  EXPECT_EQ(*at_b, "hello from A");
  const auto at_a = channel.send_text(node_id(1), "ack from B");
  ASSERT_TRUE(at_a.has_value());
  EXPECT_EQ(*at_a, "ack from B");
  EXPECT_EQ(channel.messages_sent(), 2u);
  EXPECT_EQ(channel.messages_accepted(), 2u);
  EXPECT_EQ(channel.messages_rejected(), 0u);
}

TEST(SecureChannel, ManyMessagesKeepFreshKeystreams) {
  ChannelWorld w;
  w.discover(0, 1);
  SecureChannel channel(w.nodes[0], w.nodes[1], w.phy);
  for (int i = 0; i < 50; ++i) {
    const std::string text = "msg " + std::to_string(i);
    const auto rx = channel.send_text(node_id(0), text);
    ASSERT_TRUE(rx.has_value());
    EXPECT_EQ(*rx, text);
  }
  EXPECT_EQ(channel.messages_accepted(), 50u);
}

TEST(SecureChannel, NonEndpointSenderRejected) {
  ChannelWorld w;
  w.discover(0, 1);
  SecureChannel channel(w.nodes[0], w.nodes[1], w.phy);
  EXPECT_THROW((void)channel.send_text(node_id(2), "hi"), std::invalid_argument);
}

TEST(SecureChannel, OutOfRangePeerLosesTraffic) {
  ChannelWorld w;
  w.discover(0, 1);
  SecureChannel channel(w.nodes[0], w.nodes[1], w.phy);
  // Rebuild a sparser topology where 0 and 1 are out of range and send over
  // a PHY bound to it: the air swallows the message, the seal never fires.
  const sim::Topology sparse(w.field, {{10, 10}, {20, 10}, {90, 90}}, 5.0);
  AbstractPhy far_phy(sparse, w.jammer, w.phy_rng);
  SecureChannel far(w.nodes[0], w.nodes[1], far_phy);
  EXPECT_FALSE(far.send_text(node_id(0), "lost").has_value());
  EXPECT_EQ(far.messages_rejected(), 0u);
}

/// Tampering PHY: flips a ciphertext bit in flight.
class BitFlipPhy final : public PhyModel {
 public:
  explicit BitFlipPhy(PhyModel& inner) : inner_(inner) {}
  void begin_subsession(NodeId a, NodeId b, CodeId code) override {
    inner_.begin_subsession(a, b, code);
  }
  std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                    const BitVector& payload) override {
    auto rx = inner_.transmit(from, to, code, cls, payload);
    if (rx.has_value() && cls == TxClass::SessionUnicast) rx->flip(70);  // ciphertext area
    return rx;
  }

 private:
  PhyModel& inner_;
};

TEST(SecureChannel, InFlightTamperingIsRejected) {
  ChannelWorld w;
  w.discover(0, 1);
  BitFlipPhy tamper(w.phy);
  SecureChannel channel(w.nodes[0], w.nodes[1], tamper);
  EXPECT_FALSE(channel.send_text(node_id(0), "integrity please").has_value());
  EXPECT_EQ(channel.messages_rejected(), 1u);
}


TEST(SecureChannel, RekeyRatchetsAndTrafficContinues) {
  ChannelWorld w;
  w.discover(0, 1);
  SecureChannel channel(w.nodes[0], w.nodes[1], w.phy);
  ASSERT_TRUE(channel.send_text(node_id(0), "gen0").has_value());
  EXPECT_EQ(channel.generation(), 0u);
  channel.rekey();
  EXPECT_EQ(channel.generation(), 1u);
  const auto rx = channel.send_text(node_id(0), "gen1");
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, "gen1");
  const auto back = channel.send_text(node_id(1), "gen1-reply");
  ASSERT_TRUE(back.has_value());
  channel.rekey();
  EXPECT_EQ(channel.generation(), 2u);
  EXPECT_TRUE(channel.send_text(node_id(0), "gen2").has_value());
  EXPECT_EQ(channel.messages_rejected(), 0u);
}

TEST(SecureChannel, OldGenerationTrafficRejectedAfterRekey) {
  // Capture a generation-0 sealed frame, rekey, replay it: the new
  // unsealer's keys differ, so the tag check fails.
  ChannelWorld w;
  w.discover(0, 1);

  class CapturePhy final : public PhyModel {
   public:
    explicit CapturePhy(PhyModel& inner) : inner_(inner) {}
    void begin_subsession(NodeId a, NodeId b, CodeId code) override {
      inner_.begin_subsession(a, b, code);
    }
    std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                      const BitVector& payload) override {
      auto rx = inner_.transmit(from, to, code, cls, payload);
      if (rx.has_value() && replay_next_ && cls == TxClass::SessionUnicast) {
        rx = captured_;  // substitute the stale frame
        replay_next_ = false;
      } else if (rx.has_value() && cls == TxClass::SessionUnicast) {
        captured_ = *rx;
      }
      return rx;
    }
    void arm_replay() { replay_next_ = true; }

   private:
    PhyModel& inner_;
    BitVector captured_;
    bool replay_next_ = false;
  };

  CapturePhy capture(w.phy);
  SecureChannel channel(w.nodes[0], w.nodes[1], capture);
  ASSERT_TRUE(channel.send_text(node_id(0), "stale secret").has_value());
  channel.rekey();
  capture.arm_replay();
  EXPECT_FALSE(channel.send_text(node_id(0), "fresh").has_value());
  EXPECT_EQ(channel.messages_rejected(), 1u);
}

TEST(SecureChannel, WorksOverChipLevelPhy) {
  // End to end at chip granularity: seal -> spread with the session code ->
  // channel -> sync -> despread -> errata decode -> unseal.
  ChannelWorld w;
  w.discover(0, 1);
  Rng chip_rng(11);
  dsss::NodeCodebookCache code_cache;
  ChipPhy chip_phy(w.params, w.topology, w.jammer,
                   [&w, &code_cache](NodeId node) -> const dsss::PreparedCodebook& {
                     std::vector<dsss::SpreadCode> codes;
                     for (const CodeId c : w.nodes[raw(node)].usable_codes()) {
                       codes.push_back(w.authority.code(c));
                     }
                     return code_cache.prepare(node, codes);
                   },
                   chip_rng);
  SecureChannel channel(w.nodes[0], w.nodes[1], chip_phy);
  const auto rx = channel.send_text(node_id(0), "chips all the way down");
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, "chips all the way down");
}

}  // namespace
}  // namespace jrsnd::core
