// Cross-plane validation: the same D-NDP handshake executed over the
// chip-accurate PHY (real ECC + spreading + sync + jamming chips) and over
// the Theorem-1 AbstractPhy must agree on outcomes: clean channel ->
// discovery with identical session codes; reactive jamming of all shared
// codes -> failure on both planes.
#include <gtest/gtest.h>

#include "adversary/compromise.hpp"
#include "adversary/jammer.hpp"
#include "core/abstract_phy.hpp"
#include "core/chip_phy.hpp"
#include "core/dndp.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {
namespace {

struct ChipWorld {
  Params params;
  predist::CodePoolAuthority authority;
  crypto::IbcAuthority ibc;
  sim::Field field;
  sim::Topology topology;
  Rng phy_rng;
  std::vector<NodeState> nodes;
  dsss::NodeCodebookCache code_cache;

  explicit ChipWorld(std::uint64_t seed)
      : params(make_params()),
        authority(params.predist(), Rng(seed)),
        ibc(seed + 1),
        field(params.field_width, params.field_height),
        topology(field, {{10, 10}, {20, 10}, {30, 10}, {10, 20}, {20, 20}, {30, 20}},
                 params.tx_range),
        phy_rng(seed + 2) {
    Rng node_rng(seed + 3);
    for (std::uint32_t i = 0; i < params.n; ++i) {
      const NodeId id = node_id(i);
      nodes.emplace_back(id, ibc.issue(id), authority.assignment().codes_of(id), authority,
                         params.gamma, node_rng.split());
    }
  }

  static Params make_params() {
    Params p = Params::defaults();
    p.n = 6;
    p.m = 3;
    p.l = 4;
    p.N = 128;       // keep the chip-level scan affordable
    p.tau = 0.3;     // scaled for N = 128
    p.field_width = 100.0;
    p.field_height = 100.0;
    p.tx_range = 200.0;
    return p;
  }

  [[nodiscard]] ChipPhy::Codebook codebook() {
    // Recomputes the usable-code list per call (revocations may shrink it
    // mid-test); the cache rebuilds its ShiftTables only when it changed.
    return [this](NodeId node) -> const dsss::PreparedCodebook& {
      std::vector<dsss::SpreadCode> codes;
      for (const CodeId c : nodes[raw(node)].usable_codes()) {
        codes.push_back(authority.code(c));
      }
      return code_cache.prepare(node, codes);
    };
  }

  [[nodiscard]] std::pair<NodeId, NodeId> pair_sharing(std::size_t min_shared) const {
    for (std::uint32_t i = 0; i < params.n; ++i) {
      for (std::uint32_t j = i + 1; j < params.n; ++j) {
        if (authority.assignment().shared_codes(node_id(i), node_id(j)).size() >= min_shared) {
          return {node_id(i), node_id(j)};
        }
      }
    }
    return {kInvalidNode, kInvalidNode};
  }
};

TEST(DndpOverChipPhy, CleanChannelFullHandshake) {
  ChipWorld w(1);
  const auto [a, b] = w.pair_sharing(1);
  ASSERT_NE(a, kInvalidNode);

  adversary::NullJammer jammer;
  ChipPhy phy(w.params, w.topology, jammer, w.codebook(), w.phy_rng);
  DndpEngine engine(w.params, phy);

  const DndpResult result = engine.run(w.nodes[raw(a)], w.nodes[raw(b)]);
  EXPECT_TRUE(result.discovered);
  EXPECT_GT(phy.chip_messages(), 0u);
  EXPECT_EQ(phy.chip_jams(), 0u);
  ASSERT_NE(w.nodes[raw(a)].neighbor(b), nullptr);
  ASSERT_NE(w.nodes[raw(b)].neighbor(a), nullptr);
  EXPECT_EQ(w.nodes[raw(a)].neighbor(b)->session_code,
            w.nodes[raw(b)].neighbor(a)->session_code);
}

TEST(DndpOverChipPhy, ReactiveJammerOnAllCodesBlocksDiscovery) {
  ChipWorld w(2);
  const auto [a, b] = w.pair_sharing(1);
  ASSERT_NE(a, kInvalidNode);

  // Compromise everyone: every pool code is known to the jammer.
  Rng comp_rng(7);
  adversary::CompromiseModel compromise(w.authority.assignment(), w.params.n, comp_rng);
  adversary::ReactiveJammer jammer(compromise, {w.params.z, w.params.mu});
  ChipPhy phy(w.params, w.topology, jammer, w.codebook(), w.phy_rng);
  DndpEngine engine(w.params, phy);

  const DndpResult result = engine.run(w.nodes[raw(a)], w.nodes[raw(b)]);
  EXPECT_FALSE(result.discovered);
  EXPECT_GT(phy.chip_jams(), 0u);
}

TEST(DndpOverChipPhy, AgreesWithAbstractPhyAcrossSeeds) {
  // For each seed, run the same pair over both planes under the same
  // deterministic jam policy (none / reactive-everything). Outcomes must
  // match exactly.
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    ChipWorld w_chip(seed);
    ChipWorld w_abs(seed);  // identical world
    const auto [a, b] = w_chip.pair_sharing(1);
    if (a == kInvalidNode) continue;

    adversary::NullJammer clean;
    Rng chip_rng(seed * 11);
    ChipPhy chip_phy(w_chip.params, w_chip.topology, clean, w_chip.codebook(), chip_rng);
    DndpEngine chip_engine(w_chip.params, chip_phy);
    const bool chip_outcome =
        chip_engine.run(w_chip.nodes[raw(a)], w_chip.nodes[raw(b)]).discovered;

    Rng abs_rng(seed * 13);
    AbstractPhy abs_phy(w_abs.topology, clean, abs_rng);
    DndpEngine abs_engine(w_abs.params, abs_phy);
    const bool abs_outcome =
        abs_engine.run(w_abs.nodes[raw(a)], w_abs.nodes[raw(b)]).discovered;

    EXPECT_EQ(chip_outcome, abs_outcome) << "seed " << seed;
    EXPECT_TRUE(chip_outcome);

    // And the derived session material agrees across planes (same nonce
    // streams feed both runs because the worlds are clones).
    if (chip_outcome && abs_outcome) {
      EXPECT_EQ(w_chip.nodes[raw(a)].neighbor(b)->session_code,
                w_abs.nodes[raw(a)].neighbor(b)->session_code);
    }
  }
}

TEST(DndpOverChipPhy, RevokedCodeIsNotUsedOnAir) {
  ChipWorld w(3);
  const auto [a, b] = w.pair_sharing(1);
  ASSERT_NE(a, kInvalidNode);
  // Revoke the shared codes at the receiver: its codebook shrinks and the
  // HELLO must fail to sync.
  NodeState& nb = w.nodes[raw(b)];
  for (const CodeId c :
       w.authority.assignment().shared_codes(a, b)) {
    for (std::uint32_t k = 0; k <= w.params.gamma; ++k) {
      (void)nb.revocation().report_invalid(c);
    }
  }
  adversary::NullJammer jammer;
  ChipPhy phy(w.params, w.topology, jammer, w.codebook(), w.phy_rng);
  DndpEngine engine(w.params, phy);
  const DndpResult result = engine.run(w.nodes[raw(a)], nb);
  EXPECT_FALSE(result.discovered);
}

}  // namespace
}  // namespace jrsnd::core
