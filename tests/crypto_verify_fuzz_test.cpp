// Adversarial-input sweep for the batched verification pipeline: whatever a
// flooding attacker or a hostile channel puts on the air — random buffers,
// truncations at every boundary, bit flips, replays, FaultyPhy's whole
// mutation palette — the VerifyQueue must never crash, never accept a frame
// the one-shot reference rejects, and never disagree with it at all.
#include <gtest/gtest.h>

#include <vector>

#include "adversary/dos_attacker.hpp"
#include "common/rng.hpp"
#include "core/messages.hpp"
#include "crypto/verify_queue.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_phy.hpp"

namespace jrsnd::crypto {
namespace {

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

adversary::HandshakeFloodSource make_source(std::uint64_t rng_seed) {
  return adversary::HandshakeFloodSource(core::WireConfig{}, /*authority_seed=*/5,
                                         /*peer_count=*/8, rng_seed);
}

/// Both paths on one frame; returns the (asserted-equal) verdict stage.
VerifyStage both_paths(VerifyQueue& queue, const adversary::HandshakeFloodSource& source,
                       const BitVector& frame, std::uint32_t frame_code) {
  const VerifyResult one_shot = VerifyQueue::verify_one_shot(
      source.verify_wire(), frame, frame_code, source.expected_code(), source.key_source());
  std::vector<VerifyResult> out;
  queue.push(frame, frame_code, source.expected_code());
  queue.drain(source.key_source(), out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].stage, one_shot.stage);
  if (one_shot.stage == VerifyStage::Accept) {
    EXPECT_EQ(out[0].sender, one_shot.sender);
    EXPECT_EQ(out[0].key, one_shot.key);
  }
  return one_shot.stage;
}

TEST(VerifyQueueFuzz, RandomBuffersNeverCrashAndNeverDiverge) {
  auto source = make_source(41);
  VerifyQueue queue(source.verify_wire());
  Rng rng(1);
  std::size_t accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform(600);
    const BitVector junk = random_bits(rng, len);
    const auto code = static_cast<std::uint32_t>(rng.uniform(3));  // hits expected_code
    if (both_paths(queue, source, junk, code) == VerifyStage::Accept) ++accepted;
  }
  // Forging a valid 160-bit MAC by luck is not a thing.
  EXPECT_EQ(accepted, 0u);
}

TEST(VerifyQueueFuzz, EveryTruncationRejectsLength) {
  auto source = make_source(42);
  const auto flood = source.make_batch(1, 0);
  ASSERT_EQ(flood[0].expected_stage, VerifyStage::Accept);
  VerifyQueue queue(source.verify_wire());
  for (std::size_t cut = 0; cut < flood[0].bits.size(); ++cut) {
    const BitVector prefix = flood[0].bits.slice(0, cut);
    EXPECT_EQ(both_paths(queue, source, prefix, flood[0].frame_code),
              VerifyStage::RejectLength)
        << cut;
  }
}

TEST(VerifyQueueFuzz, SingleBitFlipsNeverValidate) {
  // Any single flip outside the type tag must land in RejectMac (the MAC
  // covers sender and nonce; flips in the MAC bits themselves included);
  // flips inside the tag are RejectFormat or RejectMac. Never Accept.
  auto source = make_source(43);
  const auto flood = source.make_batch(1, 0);
  ASSERT_EQ(flood[0].expected_stage, VerifyStage::Accept);
  const std::uint32_t l_t = source.verify_wire().l_t;
  VerifyQueue queue(source.verify_wire());
  for (std::size_t flip = 0; flip < flood[0].bits.size(); ++flip) {
    BitVector mutated = flood[0].bits;
    mutated.flip(flip);
    const VerifyStage stage = both_paths(queue, source, mutated, flood[0].frame_code);
    EXPECT_NE(stage, VerifyStage::Accept) << "flip " << flip;
    if (flip >= l_t) EXPECT_EQ(stage, VerifyStage::RejectMac) << "flip " << flip;
  }
}

TEST(VerifyQueueFuzz, ReplaysAreDeterministic) {
  // The pipeline is stateless per frame (the peer cache only amortizes key
  // schedules): replaying any frame, valid or not, yields the same verdict
  // every time, mixed into batches or alone.
  auto source = make_source(44);
  const auto flood = source.make_batch(24, 3);
  VerifyQueue queue(source.verify_wire());
  std::vector<VerifyResult> first, replayed;
  for (const auto& frame : flood) {
    queue.push(frame.bits, frame.frame_code, source.expected_code());
  }
  queue.drain(source.key_source(), first);
  for (int repeat = 0; repeat < 5; ++repeat) {
    for (const auto& frame : flood) {
      queue.push(frame.bits, frame.frame_code, source.expected_code());
    }
    queue.drain(source.key_source(), replayed);
    for (std::size_t i = 0; i < flood.size(); ++i) {
      EXPECT_EQ(replayed[i].stage, first[i].stage) << "repeat " << repeat << " frame " << i;
    }
  }
}

/// Inner PHY for the fault-driven sweep: delivers verbatim.
class EchoPhy final : public core::PhyModel {
 public:
  void begin_subsession(NodeId, NodeId, CodeId) override {}
  std::optional<BitVector> transmit(NodeId, NodeId, core::TxCode, core::TxClass,
                                    const BitVector& payload) override {
    return payload;
  }
};

TEST(VerifyQueueFuzz, FaultyPhyCorruptedFloodNeverCrashesOrDiverges) {
  // Drive authored flood frames through FaultyPhy with the full mutation
  // palette and batch-verify whatever comes out: the batched pipeline and
  // the one-shot reference must agree on every mutant, and no mutated
  // honest frame may still verify (any corruption breaks the MAC).
  auto source = make_source(45);
  const auto flood = source.make_batch(40, 4);

  fault::FaultPlan plan;
  plan.seed = 99;
  plan.corrupt = 0.6;
  plan.corrupt_bits = 9;
  plan.truncate = 0.4;
  plan.duplicate = 0.3;
  plan.reorder = 0.3;
  EchoPhy inner;
  fault::FaultyPhy phy(inner, plan);

  VerifyQueue queue(source.verify_wire());
  std::vector<BitVector> mutants;
  std::vector<std::uint32_t> codes;
  std::vector<bool> must_reject;
  // A delivered frame may accept only if it is byte-for-byte some original
  // valid-MAC frame: FaultyPhy's reorder can hand back a *different* corpus
  // frame verbatim, and WrongCode frames carry valid MACs (their reject is
  // the code metadata, which reorder can swap onto an expected-code call).
  const auto is_pristine_valid = [&](const BitVector& rx) {
    for (const auto& frame : flood) {
      if ((frame.kind == adversary::FloodFrameKind::Honest ||
           frame.kind == adversary::FloodFrameKind::WrongCode) &&
          rx == frame.bits) {
        return true;
      }
    }
    return false;
  };
  for (std::uint32_t trial = 0; trial < 1200; ++trial) {
    const auto& frame = flood[trial % flood.size()];
    const auto rx = phy.transmit(node_id(trial % 5), node_id(5 + trial % 3), core::TxCode{},
                                 core::TxClass::SessionUnicast, frame.bits);
    if (!rx.has_value()) continue;
    mutants.push_back(*rx);
    codes.push_back(frame.frame_code);
    must_reject.push_back(!is_pristine_valid(*rx));
  }
  ASSERT_GT(mutants.size(), 100u);

  std::vector<VerifyResult> batched;
  for (std::size_t i = 0; i < mutants.size(); ++i) {
    queue.push(mutants[i], codes[i], source.expected_code());
  }
  queue.drain(source.key_source(), batched);
  for (std::size_t i = 0; i < mutants.size(); ++i) {
    const VerifyResult one_shot = VerifyQueue::verify_one_shot(
        source.verify_wire(), mutants[i], codes[i], source.expected_code(),
        source.key_source());
    EXPECT_EQ(batched[i].stage, one_shot.stage) << i;
    if (must_reject[i]) {
      EXPECT_NE(batched[i].stage, VerifyStage::Accept) << "mutated frame " << i;
    }
  }
  // The palette actually fired — the sweep was not vacuous.
  const auto& totals = phy.totals();
  EXPECT_GT(totals.corrupted, 0u);
  EXPECT_GT(totals.truncated, 0u);
}

}  // namespace
}  // namespace jrsnd::crypto
