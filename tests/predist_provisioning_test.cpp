#include "predist/provisioning.hpp"

#include <gtest/gtest.h>

namespace jrsnd::predist {
namespace {

CodePoolAuthority make_authority() {
  PredistParams p;
  p.node_count = 20;
  p.codes_per_node = 5;
  p.holders_per_code = 4;
  p.code_length_chips = 100;  // deliberately not byte-aligned
  return CodePoolAuthority(p, Rng(1));
}

TEST(Provisioning, BlobMatchesAuthorityState) {
  const auto authority = make_authority();
  const NodeProvisioning blob = provision_node(authority, node_id(3));
  EXPECT_EQ(blob.id, node_id(3));
  EXPECT_EQ(blob.code_length_chips, 100u);
  EXPECT_EQ(blob.code_ids, authority.assignment().codes_of(node_id(3)));
  ASSERT_EQ(blob.code_patterns.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(blob.code_patterns[i], authority.code(blob.code_ids[i]).bits());
  }
}

TEST(Provisioning, SerializeParseRoundTrip) {
  const auto authority = make_authority();
  const NodeProvisioning blob = provision_node(authority, node_id(7));
  const auto parsed = NodeProvisioning::parse(blob.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, blob);
}

TEST(Provisioning, EveryNodeRoundTrips) {
  const auto authority = make_authority();
  for (std::uint32_t i = 0; i < 20; ++i) {
    const NodeProvisioning blob = provision_node(authority, node_id(i));
    const auto parsed = NodeProvisioning::parse(blob.serialize());
    ASSERT_TRUE(parsed.has_value()) << "node " << i;
    EXPECT_EQ(*parsed, blob);
  }
}

TEST(Provisioning, ChecksumCatchesCorruption) {
  const auto authority = make_authority();
  std::vector<std::uint8_t> bytes = provision_node(authority, node_id(0)).serialize();
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{5}, std::size_t{20}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> corrupted = bytes;
    corrupted[pos] ^= 0x40;
    EXPECT_FALSE(NodeProvisioning::parse(corrupted).has_value()) << "pos " << pos;
  }
}

TEST(Provisioning, TruncationRejected) {
  const auto authority = make_authority();
  const std::vector<std::uint8_t> bytes = provision_node(authority, node_id(0)).serialize();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 13) {
    EXPECT_FALSE(NodeProvisioning::parse(
                     std::span<const std::uint8_t>(bytes.data(), cut))
                     .has_value())
        << "cut " << cut;
  }
}

TEST(Provisioning, TrailingGarbageRejected) {
  const auto authority = make_authority();
  std::vector<std::uint8_t> bytes = provision_node(authority, node_id(0)).serialize();
  bytes.push_back(0x00);
  EXPECT_FALSE(NodeProvisioning::parse(bytes).has_value());
}

TEST(Provisioning, WrongMagicOrVersionRejected) {
  const auto authority = make_authority();
  const NodeProvisioning blob = provision_node(authority, node_id(0));
  {
    std::vector<std::uint8_t> bytes = blob.serialize();
    bytes[0] = 'X';  // checksum will also fail, but even a fixed-up one must
    EXPECT_FALSE(NodeProvisioning::parse(bytes).has_value());
  }
}

TEST(Provisioning, ParsedPatternsDriveDsss) {
  // A radio flashed from the blob can spread/despread like the original.
  const auto authority = make_authority();
  const NodeProvisioning blob = provision_node(authority, node_id(5));
  const auto parsed = NodeProvisioning::parse(blob.serialize());
  ASSERT_TRUE(parsed.has_value());
  const dsss::SpreadCode code(parsed->code_patterns[0], parsed->code_ids[0]);
  EXPECT_DOUBLE_EQ(code.correlate(authority.code(parsed->code_ids[0]).bits()), 1.0);
}

}  // namespace
}  // namespace jrsnd::predist
