#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace jrsnd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  // Must not get stuck at zero.
  bool nonzero = false;
  for (int i = 0; i < 10; ++i) nonzero |= (r.next() != 0);
  EXPECT_TRUE(nonzero);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformBound1AlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng r(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.uniform(kBuckets)];
  // Chi-squared with 9 dof; 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(12);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(17);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(23);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleSingleAndEmptyAreNoops) {
  Rng r(31);
  std::vector<int> empty;
  r.shuffle(std::span<int>(empty));
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  r.shuffle(std::span<int>(one));
  EXPECT_EQ(one[0], 42);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(41);
  const auto sample = r.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleFullPopulationIsPermutation) {
  Rng r(43);
  auto sample = r.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleZeroIsEmpty) {
  Rng r(43);
  EXPECT_TRUE(r.sample_without_replacement(10, 0).empty());
}

TEST(Rng, SampleIsUniformOverElements) {
  // Each element of [0, 10) should appear in a 5-sample ~half the time.
  Rng r(47);
  constexpr int kTrials = 20000;
  std::vector<int> counts(10, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (const auto v : r.sample_without_replacement(10, 5)) ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.5, 0.02);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(55);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child1.next() == child2.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(77);
  Rng p2(77);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(SplitMix, KnownSequenceIsStable) {
  // Regression anchor: splitmix64 from seed 0 produces a fixed sequence.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, UniformStaysBelowBound) {
  Rng r(GetParam());
  const std::uint64_t bound = GetParam() % 1000 + 1;
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 100, 999, 123456789, 0xffffffffULL));

}  // namespace
}  // namespace jrsnd
