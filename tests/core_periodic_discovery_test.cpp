#include "core/periodic_discovery.hpp"

#include <gtest/gtest.h>

#include "sim/field.hpp"

namespace jrsnd::core {
namespace {

PeriodicDiscoveryRunner::Config small_config() {
  PeriodicDiscoveryRunner::Config cfg;
  cfg.params = Params::defaults();
  cfg.params.n = 80;
  cfg.params.m = 10;
  cfg.params.l = 8;
  cfg.params.q = 4;
  cfg.params.nu = 3;
  cfg.params.field_width = 1500.0;
  cfg.params.field_height = 1500.0;
  cfg.interval = seconds(30.0);
  cfg.link_timeout = seconds(60.0);
  cfg.epochs = 4;
  cfg.seed = 5;
  return cfg;
}

TEST(PeriodicDiscovery, StaticNetworkConvergesAndStaysConverged) {
  const auto cfg = small_config();
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(1);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner runner(cfg, placement);
  const auto reports = runner.run();
  ASSERT_EQ(reports.size(), 4u);
  // Static nodes: nothing expires, coverage is monotone non-decreasing and
  // high once D-NDP + M-NDP have swept.
  for (const auto& r : reports) EXPECT_EQ(r.links_expired, 0u);
  EXPECT_GE(reports.back().coverage, reports.front().coverage);
  EXPECT_GT(reports.back().coverage, 0.7);
  // Work tapers off once the neighborhood is known.
  EXPECT_LT(reports.back().dndp_attempts, reports.front().dndp_attempts);
}

TEST(PeriodicDiscovery, MobileNetworkExpiresStaleLinks) {
  auto cfg = small_config();
  cfg.epochs = 6;
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(2);
  const sim::RandomWaypoint mobility(field, cfg.params.n, {8.0, 15.0, 1.0}, rng);
  PeriodicDiscoveryRunner runner(cfg, mobility);
  const auto reports = runner.run();
  std::size_t expired_total = 0;
  for (const auto& r : reports) expired_total += r.links_expired;
  // Fast movers at a 60 s timeout: some links must expire by epoch 6.
  EXPECT_GT(expired_total, 0u);
  // And discovery keeps rebuilding coverage anyway.
  EXPECT_GT(reports.back().coverage, 0.5);
}

TEST(PeriodicDiscovery, DeterministicInSeed) {
  const auto cfg = small_config();
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(3);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner r1(cfg, placement);
  PeriodicDiscoveryRunner r2(cfg, placement);
  const auto a = r1.run();
  const auto b = r2.run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].logical_pairs, b[i].logical_pairs);
    EXPECT_EQ(a[i].dndp_successes, b[i].dndp_successes);
    EXPECT_EQ(a[i].mndp.discoveries, b[i].mndp.discoveries);
  }
}

TEST(PeriodicDiscovery, MndpContributesDiscoveries) {
  auto cfg = small_config();
  cfg.params.q = 10;  // push D-NDP down so M-NDP visibly contributes
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(4);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner runner(cfg, placement);
  const auto reports = runner.run();
  std::size_t mndp_discoveries = 0;
  for (const auto& r : reports) mndp_discoveries += r.mndp.discoveries;
  EXPECT_GT(mndp_discoveries, 0u);
}

/// Two nodes on a script: adjacent until `apart_from`, then far apart.
class TwoNodeScript final : public sim::MobilityModel {
 public:
  explicit TwoNodeScript(TimePoint apart_from) : apart_from_(apart_from) {}

  [[nodiscard]] std::size_t node_count() const noexcept override { return 2; }

  [[nodiscard]] sim::Position position(NodeId node, TimePoint t) const override {
    if (raw(node) == 0) return {0.0, 0.0};
    return t < apart_from_ ? sim::Position{10.0, 0.0} : sim::Position{1900.0, 0.0};
  }

 private:
  TimePoint apart_from_;
};

TEST(PeriodicDiscovery, LinkExpiryBoundaryIsStrict) {
  // Regression for the link-expiry edge: a link whose silence EQUALS
  // link_timeout exactly must survive that tick — expiry needs
  // now - last_contact strictly greater than the timeout, otherwise a
  // same-tick rediscovery double-counts the pair as both expired and
  // discovered in one epoch report.
  PeriodicDiscoveryRunner::Config cfg;
  cfg.params = Params::defaults();
  cfg.params.n = 2;
  cfg.params.m = 2;
  cfg.params.l = 2;  // both nodes hold every code -> discovery is certain
  cfg.params.q = 0;
  cfg.params.field_width = 2000.0;
  cfg.params.field_height = 100.0;
  cfg.params.tx_range = 100.0;
  cfg.interval = seconds(30.0);
  cfg.link_timeout = seconds(60.0);
  cfg.epochs = 5;
  cfg.seed = 21;

  // Timeline: adjacent at t=0 (epoch 0, discovery) and t=30 (epoch 1,
  // last_contact := 30), apart from t=60 on. Epoch 2 (t=60): silence 30 s,
  // live. Epoch 3 (t=90): silence exactly 60 s == timeout — the boundary
  // this test pins; must still be live. Epoch 4 (t=120): 90 s > 60 s, gone.
  const TwoNodeScript script(TimePoint{60.0});
  PeriodicDiscoveryRunner runner(cfg, script);
  const auto reports = runner.run();
  ASSERT_EQ(reports.size(), 5u);

  EXPECT_GT(reports[0].dndp_successes, 0u) << "pair must discover while adjacent";
  EXPECT_EQ(reports[1].links_expired, 0u);
  EXPECT_EQ(reports[2].links_expired, 0u);
  EXPECT_EQ(reports[3].links_expired, 0u)
      << "silence == link_timeout is the boundary: the link must survive";
  EXPECT_EQ(reports[4].links_expired, 1u)
      << "one tick past the boundary the link must expire";
}

TEST(PeriodicDiscovery, ReportsAreInternallyConsistent) {
  const auto cfg = small_config();
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(6);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner runner(cfg, placement);
  for (const auto& r : runner.run()) {
    EXPECT_LE(r.dndp_successes, r.dndp_attempts);
    EXPECT_LE(r.logical_pairs, r.physical_pairs);
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
    EXPECT_DOUBLE_EQ(r.coverage, r.physical_pairs == 0
                                     ? 1.0
                                     : static_cast<double>(r.logical_pairs) /
                                           static_cast<double>(r.physical_pairs));
  }
}

}  // namespace
}  // namespace jrsnd::core
