#include "core/periodic_discovery.hpp"

#include <gtest/gtest.h>

#include "sim/field.hpp"

namespace jrsnd::core {
namespace {

PeriodicDiscoveryRunner::Config small_config() {
  PeriodicDiscoveryRunner::Config cfg;
  cfg.params = Params::defaults();
  cfg.params.n = 80;
  cfg.params.m = 10;
  cfg.params.l = 8;
  cfg.params.q = 4;
  cfg.params.nu = 3;
  cfg.params.field_width = 1500.0;
  cfg.params.field_height = 1500.0;
  cfg.interval = seconds(30.0);
  cfg.link_timeout = seconds(60.0);
  cfg.epochs = 4;
  cfg.seed = 5;
  return cfg;
}

TEST(PeriodicDiscovery, StaticNetworkConvergesAndStaysConverged) {
  const auto cfg = small_config();
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(1);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner runner(cfg, placement);
  const auto reports = runner.run();
  ASSERT_EQ(reports.size(), 4u);
  // Static nodes: nothing expires, coverage is monotone non-decreasing and
  // high once D-NDP + M-NDP have swept.
  for (const auto& r : reports) EXPECT_EQ(r.links_expired, 0u);
  EXPECT_GE(reports.back().coverage, reports.front().coverage);
  EXPECT_GT(reports.back().coverage, 0.7);
  // Work tapers off once the neighborhood is known.
  EXPECT_LT(reports.back().dndp_attempts, reports.front().dndp_attempts);
}

TEST(PeriodicDiscovery, MobileNetworkExpiresStaleLinks) {
  auto cfg = small_config();
  cfg.epochs = 6;
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(2);
  const sim::RandomWaypoint mobility(field, cfg.params.n, {8.0, 15.0, 1.0}, rng);
  PeriodicDiscoveryRunner runner(cfg, mobility);
  const auto reports = runner.run();
  std::size_t expired_total = 0;
  for (const auto& r : reports) expired_total += r.links_expired;
  // Fast movers at a 60 s timeout: some links must expire by epoch 6.
  EXPECT_GT(expired_total, 0u);
  // And discovery keeps rebuilding coverage anyway.
  EXPECT_GT(reports.back().coverage, 0.5);
}

TEST(PeriodicDiscovery, DeterministicInSeed) {
  const auto cfg = small_config();
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(3);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner r1(cfg, placement);
  PeriodicDiscoveryRunner r2(cfg, placement);
  const auto a = r1.run();
  const auto b = r2.run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].logical_pairs, b[i].logical_pairs);
    EXPECT_EQ(a[i].dndp_successes, b[i].dndp_successes);
    EXPECT_EQ(a[i].mndp.discoveries, b[i].mndp.discoveries);
  }
}

TEST(PeriodicDiscovery, MndpContributesDiscoveries) {
  auto cfg = small_config();
  cfg.params.q = 10;  // push D-NDP down so M-NDP visibly contributes
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(4);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner runner(cfg, placement);
  const auto reports = runner.run();
  std::size_t mndp_discoveries = 0;
  for (const auto& r : reports) mndp_discoveries += r.mndp.discoveries;
  EXPECT_GT(mndp_discoveries, 0u);
}

TEST(PeriodicDiscovery, ReportsAreInternallyConsistent) {
  const auto cfg = small_config();
  const sim::Field field(cfg.params.field_width, cfg.params.field_height);
  Rng rng(6);
  const sim::UniformPlacement placement(field, cfg.params.n, rng);
  PeriodicDiscoveryRunner runner(cfg, placement);
  for (const auto& r : runner.run()) {
    EXPECT_LE(r.dndp_successes, r.dndp_attempts);
    EXPECT_LE(r.logical_pairs, r.physical_pairs);
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
    EXPECT_DOUBLE_EQ(r.coverage, r.physical_pairs == 0
                                     ? 1.0
                                     : static_cast<double>(r.logical_pairs) /
                                           static_cast<double>(r.physical_pairs));
  }
}

}  // namespace
}  // namespace jrsnd::core
