#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/hex.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"

namespace jrsnd {
namespace {

TEST(Hex, EncodeKnownBytes) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(bytes), "00deadbeefff");
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, DecodeUpperAndLowerCase) {
  const std::vector<std::uint8_t> expected = {0xab, 0xcd};
  EXPECT_EQ(from_hex("abcd"), expected);
  EXPECT_EQ(from_hex("ABCD"), expected);
  EXPECT_EQ(from_hex("AbCd"), expected);
}

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(bytes)), bytes);
}

TEST(Hex, RejectsOddLength) { EXPECT_THROW((void)from_hex("abc"), std::invalid_argument); }

TEST(Hex, RejectsNonHexChars) { EXPECT_THROW((void)from_hex("zz"), std::invalid_argument); }

TEST(Logging, LevelIsSettable) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

TEST(Logging, SuppressedLevelsDoNotCrash) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  JRSND_INFO("test") << "should be suppressed " << 42;
  JRSND_ERROR("test") << "also suppressed";
  set_log_level(before);
}

TEST(Logging, ParseLogLevelNamesAndCase) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_FALSE(parse_log_level("loud").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(Logging, PluggableSinkReceivesFilteredLines) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Warn);
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& tag, const std::string& msg) {
    captured.emplace_back(level, tag + ": " + msg);
  });
  JRSND_INFO("tag") << "filtered out";
  JRSND_WARN("tag") << "kept " << 7;
  set_log_sink(nullptr);
  set_log_level(before);

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::Warn);
  EXPECT_EQ(captured[0].second, "tag: kept 7");
}

TEST(Logging, TimestampToggleIsObservable) {
  EXPECT_FALSE(log_timestamps());  // default off: byte-stable output
  set_log_timestamps(true);
  EXPECT_TRUE(log_timestamps());
  set_log_timestamps(false);
  EXPECT_FALSE(log_timestamps());
}

TEST(Types, DurationArithmetic) {
  const Duration a = seconds(1.5);
  const Duration b = millis(500);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).seconds(), 3.0);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_DOUBLE_EQ(b.millis(), 500.0);
  EXPECT_DOUBLE_EQ(micros(1500).millis(), 1.5);
}

TEST(Types, TimePointOrderingAndArithmetic) {
  const TimePoint t0{0.0};
  const TimePoint t1 = t0 + seconds(2.0);
  EXPECT_LT(t0, t1);
  EXPECT_DOUBLE_EQ((t1 - t0).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((t1 - seconds(0.5)).seconds(), 1.5);
}

TEST(Types, StrongIdsCompareAndHash) {
  const NodeId a = node_id(1);
  const NodeId b = node_id(2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(raw(a), 1u);
  EXPECT_NE(std::hash<NodeId>{}(a), std::hash<NodeId>{}(b));
  EXPECT_EQ(raw(code_id(7)), 7u);
}

}  // namespace
}  // namespace jrsnd
