// Property suite for the retry/timeout/backoff discipline. The invariants
// here are what make the hardened engines safe to enable: budgets are never
// exceeded, backoff grows monotonically under its cap, jitter stays in its
// band, and a disabled policy (the default) makes zero Rng draws — the
// bit-identity guarantee the fault-injection tests lean on.
#include "core/handshake.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace jrsnd::core {
namespace {

RetryPolicy test_policy(std::uint32_t max_retx) {
  RetryPolicy p;
  p.max_retx = max_retx;
  p.timeout_s = 0.05;
  p.backoff_base_s = 0.02;
  p.backoff_factor = 2.0;
  p.backoff_max_s = 0.1;
  p.jitter = 0.1;
  return p;
}

/// True when `used` has consumed no draws relative to a same-seed twin.
bool streams_aligned(Rng& used, std::uint64_t seed) {
  Rng twin(seed);
  return used.next() == twin.next();
}

TEST(RetryPolicy, DisabledByDefault) {
  EXPECT_FALSE(RetryPolicy{}.enabled());
  EXPECT_TRUE(test_policy(1).enabled());
}

TEST(RetryPolicy, NominalBackoffIsMonotoneAndCapped) {
  const RetryPolicy p = test_policy(10);
  double prev = 0.0;
  for (std::uint32_t retx = 1; retx <= 10; ++retx) {
    const double b = p.nominal_backoff_s(retx);
    EXPECT_GE(b, prev) << "retx " << retx;
    EXPECT_LE(b, p.backoff_max_s) << "retx " << retx;
    prev = b;
  }
  EXPECT_DOUBLE_EQ(p.nominal_backoff_s(1), 0.02);
  EXPECT_DOUBLE_EQ(p.nominal_backoff_s(2), 0.04);
  EXPECT_DOUBLE_EQ(p.nominal_backoff_s(3), 0.08);
  EXPECT_DOUBLE_EQ(p.nominal_backoff_s(4), 0.1);  // capped, not 0.16
  EXPECT_DOUBLE_EQ(p.nominal_backoff_s(9), 0.1);
}

TEST(RetryState, NeverExceedsTheBudget) {
  for (std::uint32_t budget = 0; budget <= 5; ++budget) {
    const RetryPolicy p = test_policy(budget);
    Rng rng(1);
    RetryState state(p, rng);
    state.on_send();
    // Hammer timeouts far past the budget; grants must stop exactly at it.
    for (int i = 0; i < 20; ++i) {
      const auto backoff = state.on_timeout();
      if (backoff.has_value()) state.on_send();
      EXPECT_LE(state.retransmissions(), budget);
    }
    EXPECT_EQ(state.retransmissions(), budget);
    EXPECT_TRUE(budget == 0 || state.exhausted());
  }
}

TEST(RetryState, JitteredBackoffStaysInItsBand) {
  const RetryPolicy p = test_policy(8);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    RetryState state(p, rng);
    state.on_send();
    for (std::uint32_t retx = 1; retx <= p.max_retx; ++retx) {
      const auto backoff = state.on_timeout();
      ASSERT_TRUE(backoff.has_value());
      state.on_send();
      const double nominal = p.nominal_backoff_s(retx);
      EXPECT_GE(backoff->seconds(), nominal * (1.0 - p.jitter)) << seed << ":" << retx;
      EXPECT_LE(backoff->seconds(), nominal * (1.0 + p.jitter)) << seed << ":" << retx;
    }
  }
}

TEST(RetryState, NoDrawsAfterCompletion) {
  const RetryPolicy p = test_policy(5);
  Rng rng(123);
  RetryState state(p, rng);
  state.on_send();
  state.on_delivered();
  // A completed stage must grant nothing and touch no randomness.
  EXPECT_FALSE(state.on_timeout().has_value());
  EXPECT_FALSE(state.on_timeout().has_value());
  EXPECT_EQ(state.retransmissions(), 0u);
  EXPECT_TRUE(streams_aligned(rng, 123));
}

TEST(RetryState, NoDrawsAfterExhaustion) {
  const RetryPolicy p = test_policy(2);
  Rng rng(7);
  RetryState state(p, rng);
  state.on_send();
  ASSERT_TRUE(state.on_timeout().has_value());  // retx 1 (one draw)
  state.on_send();
  ASSERT_TRUE(state.on_timeout().has_value());  // retx 2 (one draw)
  state.on_send();
  EXPECT_FALSE(state.on_timeout().has_value());  // budget gone, no draw
  EXPECT_TRUE(state.exhausted());
  EXPECT_FALSE(state.on_timeout().has_value());

  // Exactly two jitter draws happened: a twin that makes the same two
  // uniform01 draws is still aligned with our stream.
  Rng twin(7);
  (void)twin.uniform01();
  (void)twin.uniform01();
  EXPECT_EQ(rng.next(), twin.next());
}

TEST(RetryState, DisabledPolicyMakesZeroDraws) {
  const RetryPolicy p;  // max_retx == 0
  Rng rng(99);
  RetryState state(p, rng);
  state.on_send();
  EXPECT_FALSE(state.on_timeout().has_value());
  EXPECT_TRUE(streams_aligned(rng, 99));
}

TEST(HandshakeStage, NamesAreStable) {
  EXPECT_STREQ(handshake_stage_name(HandshakeStage::Hello), "hello");
  EXPECT_STREQ(handshake_stage_name(HandshakeStage::Confirm), "confirm");
  EXPECT_STREQ(handshake_stage_name(HandshakeStage::Auth1), "auth1");
  EXPECT_STREQ(handshake_stage_name(HandshakeStage::Auth2), "auth2");
  EXPECT_STREQ(handshake_stage_name(HandshakeStage::Done), "done");
  EXPECT_STREQ(handshake_stage_name(HandshakeStage::Failed), "failed");
}

TEST(HandshakeStateMachine, CleanRunWalksAllFourStages) {
  const RetryPolicy p = test_policy(3);
  Rng rng(1);
  HandshakeStateMachine hs(p, rng);
  EXPECT_EQ(hs.stage(), HandshakeStage::Hello);
  for (const HandshakeStage next :
       {HandshakeStage::Confirm, HandshakeStage::Auth1, HandshakeStage::Auth2,
        HandshakeStage::Done}) {
    EXPECT_FALSE(hs.terminal());
    hs.on_send();
    hs.on_delivered();
    EXPECT_EQ(hs.stage(), next);
  }
  EXPECT_TRUE(hs.done());
  EXPECT_FALSE(hs.failed());
  EXPECT_EQ(hs.retransmissions(), 0u);
  EXPECT_EQ(hs.timeouts(), 0u);
  EXPECT_EQ(hs.elapsed().seconds(), 0.0);
  EXPECT_TRUE(streams_aligned(rng, 1));  // clean run draws nothing
}

TEST(HandshakeStateMachine, EachStageGetsAFreshBudget) {
  const RetryPolicy p = test_policy(2);
  Rng rng(2);
  HandshakeStateMachine hs(p, rng);
  std::uint32_t total = 0;
  // Burn the full budget on every stage, then deliver; 4 stages x 2 retx.
  for (int stage = 0; stage < 4; ++stage) {
    hs.on_send();
    for (std::uint32_t r = 0; r < p.max_retx; ++r) {
      const auto backoff = hs.on_timeout();
      ASSERT_TRUE(backoff.has_value()) << "stage " << stage << " retx " << r;
      hs.on_send();
      ++total;
    }
    hs.on_delivered();
  }
  EXPECT_TRUE(hs.done());
  EXPECT_EQ(hs.retransmissions(), total);
  EXPECT_EQ(hs.retransmissions(), 4 * p.max_retx);
  EXPECT_EQ(hs.timeouts(), 4 * p.max_retx);
}

TEST(HandshakeStateMachine, ExhaustedStageFailsTheHandshake) {
  const RetryPolicy p = test_policy(1);
  Rng rng(3);
  HandshakeStateMachine hs(p, rng);
  hs.on_send();
  hs.on_delivered();  // Hello -> Confirm
  hs.on_send();
  ASSERT_TRUE(hs.on_timeout().has_value());  // retx 1 granted
  hs.on_send();
  EXPECT_FALSE(hs.on_timeout().has_value());  // budget gone
  EXPECT_TRUE(hs.failed());
  EXPECT_TRUE(hs.terminal());
  // Terminal machines ignore further events and make no draws.
  Rng before = rng;
  hs.on_send();
  hs.on_delivered();
  EXPECT_FALSE(hs.on_timeout().has_value());
  EXPECT_TRUE(hs.failed());
  EXPECT_EQ(rng.next(), before.next());
}

TEST(HandshakeStateMachine, ElapsedAccountsTimeoutsAndBackoffs) {
  const RetryPolicy p = test_policy(3);
  Rng rng(4);
  HandshakeStateMachine hs(p, rng);
  hs.on_send();
  const auto backoff = hs.on_timeout();
  ASSERT_TRUE(backoff.has_value());
  EXPECT_DOUBLE_EQ(hs.elapsed().seconds(), p.timeout_s + backoff->seconds());
  EXPECT_EQ(hs.timeouts(), 1u);
}

TEST(HandshakeStateMachine, DriftingClockScalesPerceivedTimeouts) {
  const RetryPolicy p = test_policy(3);
  Rng slow_rng(5), fast_rng(5);
  HandshakeStateMachine slow(p, slow_rng, /*clock_rate=*/0.5);
  HandshakeStateMachine fast(p, fast_rng, /*clock_rate=*/2.0);
  slow.on_send();
  fast.on_send();
  const auto b_slow = slow.on_timeout();
  const auto b_fast = fast.on_timeout();
  ASSERT_TRUE(b_slow.has_value());
  ASSERT_TRUE(b_fast.has_value());
  // Same seed, same jitter draw -> identical backoffs; only the timeout
  // portion of elapsed() scales with the local clock rate.
  EXPECT_DOUBLE_EQ(b_slow->seconds(), b_fast->seconds());
  EXPECT_DOUBLE_EQ(slow.elapsed().seconds(), p.timeout_s * 0.5 + b_slow->seconds());
  EXPECT_DOUBLE_EQ(fast.elapsed().seconds(), p.timeout_s * 2.0 + b_fast->seconds());
}

TEST(HandshakeStateMachine, DeterministicAcrossIdenticalRuns) {
  const RetryPolicy p = test_policy(4);
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    HandshakeStateMachine hs(p, rng);
    std::vector<double> backoffs;
    hs.on_send();
    while (!hs.terminal()) {
      const auto b = hs.on_timeout();
      if (!b.has_value()) break;
      backoffs.push_back(b->seconds());
      hs.on_send();
    }
    return backoffs;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // jitter actually depends on the seed
}

}  // namespace
}  // namespace jrsnd::core
