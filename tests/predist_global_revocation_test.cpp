#include "predist/global_revocation.hpp"

#include <gtest/gtest.h>

namespace jrsnd::predist {
namespace {

struct Fixture {
  crypto::IbcAuthority ibc{777};
  RevocationIssuer issuer{ibc.issue(kAuthorityId)};
  RevocationListener listener{ibc.oracle()};
  RevocationState state{5, {code_id(1), code_id(2), code_id(3), code_id(4)}};
};

TEST(GlobalRevocation, ValidListPurgesHeldCodes) {
  Fixture f;
  const RevocationList list = f.issuer.issue({code_id(2), code_id(4), code_id(99)});
  std::size_t purged = 0;
  EXPECT_EQ(f.listener.apply(list, f.state, &purged), RevocationListener::Outcome::Applied);
  EXPECT_EQ(purged, 2u);  // code 99 is not held
  EXPECT_TRUE(f.state.is_revoked(code_id(2)));
  EXPECT_TRUE(f.state.is_revoked(code_id(4)));
  EXPECT_TRUE(f.state.is_usable(code_id(1)));
  EXPECT_TRUE(f.state.is_usable(code_id(3)));
}

TEST(GlobalRevocation, ForgedListRejected) {
  Fixture f;
  // An attacker signs with a captured ordinary node's key.
  RevocationIssuer forger(f.ibc.issue(node_id(5)));
  const RevocationList forged = forger.issue({code_id(1)});
  EXPECT_EQ(f.listener.apply(forged, f.state), RevocationListener::Outcome::BadSignature);
  EXPECT_TRUE(f.state.is_usable(code_id(1)));
}

TEST(GlobalRevocation, TamperedListRejected) {
  Fixture f;
  RevocationList list = f.issuer.issue({code_id(1)});
  list.revoked.push_back(code_id(2));  // attacker extends the list
  EXPECT_EQ(f.listener.apply(list, f.state), RevocationListener::Outcome::BadSignature);
  EXPECT_TRUE(f.state.is_usable(code_id(2)));
}

TEST(GlobalRevocation, ReplayedListRejected) {
  Fixture f;
  const RevocationList first = f.issuer.issue({code_id(1)});
  ASSERT_EQ(f.listener.apply(first, f.state), RevocationListener::Outcome::Applied);
  EXPECT_EQ(f.listener.apply(first, f.state), RevocationListener::Outcome::Stale);
}

TEST(GlobalRevocation, StaleSequenceRejected) {
  Fixture f;
  const RevocationList first = f.issuer.issue({code_id(1)});
  const RevocationList second = f.issuer.issue({code_id(2)});
  ASSERT_EQ(f.listener.apply(second, f.state), RevocationListener::Outcome::Applied);
  // The older list arrives late: rejected, code 1 stays usable.
  EXPECT_EQ(f.listener.apply(first, f.state), RevocationListener::Outcome::Stale);
  EXPECT_TRUE(f.state.is_usable(code_id(1)));
}

TEST(GlobalRevocation, SequencesIncrease) {
  Fixture f;
  const RevocationList a = f.issuer.issue({});
  const RevocationList b = f.issuer.issue({});
  EXPECT_LT(a.sequence, b.sequence);
}

TEST(GlobalRevocation, RevokeIsIdempotentAcrossMechanisms) {
  // Local counter-based revocation first, then a global list naming the
  // same code: purged count reflects only fresh revocations.
  Fixture f;
  for (int i = 0; i <= 5; ++i) (void)f.state.report_invalid(code_id(1));
  ASSERT_TRUE(f.state.is_revoked(code_id(1)));
  const RevocationList list = f.issuer.issue({code_id(1), code_id(2)});
  std::size_t purged = 0;
  EXPECT_EQ(f.listener.apply(list, f.state, &purged), RevocationListener::Outcome::Applied);
  EXPECT_EQ(purged, 1u);
}

TEST(GlobalRevocation, DifferentAuthorityOracleRejects) {
  Fixture f;
  crypto::IbcAuthority other(778);
  RevocationIssuer other_issuer(other.issue(kAuthorityId));
  const RevocationList list = other_issuer.issue({code_id(1)});
  EXPECT_EQ(f.listener.apply(list, f.state), RevocationListener::Outcome::BadSignature);
}

}  // namespace
}  // namespace jrsnd::predist
