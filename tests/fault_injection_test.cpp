// The fault-injection subsystem end to end: FaultyPhy unit semantics, the
// no-op-plan bit-identity guarantee, seeded determinism across thread counts,
// crash/restart recovery through the retry discipline, and the chaos
// acceptance envelope (discovery under 20% injected drop recovers to >= 95%
// of fault-free through retransmission).
#include "fault/faulty_phy.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string_view>

#include "adversary/jammer.hpp"
#include "core/abstract_phy.hpp"
#include "core/discovery_sim.hpp"
#include "core/dndp.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/topology.hpp"

namespace jrsnd::fault {
namespace {

// ---------------------------------------------------------------------------
// FaultyPhy unit semantics over a loopback inner PHY.

class LoopbackPhy final : public core::PhyModel {
 public:
  void begin_subsession(NodeId, NodeId, CodeId) override {}
  std::optional<BitVector> transmit(NodeId, NodeId, core::TxCode, core::TxClass,
                                    const BitVector& payload) override {
    ++transmits;
    return payload;
  }
  int transmits = 0;
};

BitVector pattern_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

std::size_t hamming(const BitVector& a, const BitVector& b) {
  EXPECT_EQ(a.size(), b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += a.get(i) != b.get(i);
  return d;
}

std::optional<BitVector> send(FaultyPhy& phy, std::uint32_t from, std::uint32_t to,
                              const BitVector& payload) {
  return phy.transmit(node_id(from), node_id(to), core::TxCode{}, core::TxClass::Hello,
                      payload);
}

TEST(FaultyPhy, InactivePlanIsAPassThrough) {
  LoopbackPhy inner;
  FaultyPhy phy(inner, FaultPlan{});
  const BitVector payload = pattern_bits(200, 1);
  for (int i = 0; i < 50; ++i) {
    const auto rx = send(phy, 0, 1, payload);
    ASSERT_TRUE(rx.has_value());
    EXPECT_EQ(*rx, payload);
  }
  const auto& t = phy.totals();
  EXPECT_EQ(t.dropped + t.duplicated + t.reordered + t.corrupted + t.truncated +
                t.crash_blocked,
            0u);
}

TEST(FaultyPhy, CertainDropLosesEverythingDelivered) {
  LoopbackPhy inner;
  FaultPlan plan;
  plan.drop = 1.0;
  FaultyPhy phy(inner, plan);
  const BitVector payload = pattern_bits(64, 2);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(send(phy, 0, 1, payload).has_value());
  EXPECT_EQ(phy.totals().dropped, 20u);
  EXPECT_EQ(inner.transmits, 20);  // the channel delivered; the fault ate it
}

TEST(FaultyPhy, CorruptionFlipsABoundedBurst) {
  LoopbackPhy inner;
  FaultPlan plan;
  plan.corrupt = 1.0;
  plan.corrupt_bits = 5;
  FaultyPhy phy(inner, plan);
  const BitVector payload = pattern_bits(128, 3);
  for (int i = 0; i < 30; ++i) {
    const auto rx = send(phy, 0, 1, payload);
    ASSERT_TRUE(rx.has_value());
    const std::size_t d = hamming(*rx, payload);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 5u);  // clamped burst
  }
  EXPECT_EQ(phy.totals().corrupted, 30u);
}

TEST(FaultyPhy, TruncationShortensTheMessage) {
  LoopbackPhy inner;
  FaultPlan plan;
  plan.truncate = 1.0;
  FaultyPhy phy(inner, plan);
  const BitVector payload = pattern_bits(96, 4);
  for (int i = 0; i < 20; ++i) {
    const auto rx = send(phy, 0, 1, payload);
    ASSERT_TRUE(rx.has_value());
    EXPECT_LT(rx->size(), payload.size());
  }
  EXPECT_EQ(phy.totals().truncated, 20u);
}

TEST(FaultyPhy, ReorderSwapsAdjacentMessagesPerLink) {
  LoopbackPhy inner;
  FaultPlan plan;
  plan.reorder = 1.0;
  FaultyPhy phy(inner, plan);
  const BitVector first = pattern_bits(32, 5);
  const BitVector second = pattern_bits(32, 6);
  // First message parks (the receiver sees nothing)...
  EXPECT_FALSE(send(phy, 0, 1, first).has_value());
  // ...and pops when the next one arrives, which parks in its place.
  const auto rx = send(phy, 0, 1, second);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, first);
  EXPECT_GE(phy.totals().reordered, 1u);
  // The held slot is per directed link: the reverse direction is untouched
  // until its own first message parks.
  EXPECT_FALSE(send(phy, 1, 0, first).has_value());
}

TEST(FaultyPhy, DuplicateReplaysTheStaleCopy) {
  LoopbackPhy inner;
  FaultPlan plan;
  plan.duplicate = 1.0;
  FaultyPhy phy(inner, plan);
  const BitVector first = pattern_bits(32, 7);
  const BitVector second = pattern_bits(32, 8);
  const auto rx1 = send(phy, 0, 1, first);
  ASSERT_TRUE(rx1.has_value());
  EXPECT_EQ(*rx1, first);  // original arrives, a copy parks
  const auto rx2 = send(phy, 0, 1, second);
  ASSERT_TRUE(rx2.has_value());
  EXPECT_EQ(*rx2, first);  // the receiver sees the replayed frame
  EXPECT_GE(phy.totals().duplicated, 1u);
}

TEST(FaultyPhy, CrashWindowBlocksBothDirectionsThenHeals) {
  LoopbackPhy inner;
  FaultPlan plan;
  plan.crashes.push_back({node_id(1), TimePoint{10.0}, Duration{5.0}});
  FaultyPhy phy(inner, plan);
  const BitVector payload = pattern_bits(16, 9);

  phy.set_now(TimePoint{9.9});
  EXPECT_TRUE(send(phy, 0, 1, payload).has_value());
  phy.set_now(TimePoint{10.0});
  EXPECT_FALSE(send(phy, 0, 1, payload).has_value());  // to a down node
  EXPECT_FALSE(send(phy, 1, 0, payload).has_value());  // from a down node
  EXPECT_TRUE(send(phy, 0, 2, payload).has_value());   // bystanders unaffected
  phy.set_now(TimePoint{15.0});
  EXPECT_TRUE(send(phy, 0, 1, payload).has_value());  // restarted
  EXPECT_EQ(phy.totals().crash_blocked, 2u);
  // Of the five sends, the two blocked ones never reach the inner PHY.
  EXPECT_EQ(inner.transmits, 3);
}

TEST(FaultyPhy, AutoTickAdvancesTheClockPerTransmit) {
  LoopbackPhy inner;
  FaultPlan plan;
  plan.auto_tick = 0.5;
  FaultyPhy phy(inner, plan);
  const BitVector payload = pattern_bits(16, 10);
  (void)send(phy, 0, 1, payload);
  EXPECT_DOUBLE_EQ(phy.now().seconds(), 0.5);
  (void)send(phy, 0, 1, payload);
  EXPECT_DOUBLE_EQ(phy.now().seconds(), 1.0);
}

TEST(FaultyPhy, SamePlanAndSaltReplayIdentically) {
  FaultPlan plan;
  plan.seed = 31;
  plan.drop = 0.3;
  plan.corrupt = 0.2;
  plan.duplicate = 0.1;
  plan.reorder = 0.1;
  plan.truncate = 0.1;

  auto run = [&](std::uint64_t salt) {
    LoopbackPhy inner;
    FaultyPhy phy(inner, plan, salt);
    std::vector<std::optional<BitVector>> seen;
    for (std::uint32_t i = 0; i < 200; ++i) {
      seen.push_back(send(phy, i % 3, 3 + i % 2, pattern_bits(64, 100 + i)));
    }
    return std::pair{seen, phy.totals()};
  };

  const auto [a, ta] = run(5);
  const auto [b, tb] = run(5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
  EXPECT_EQ(ta.dropped, tb.dropped);
  EXPECT_EQ(ta.corrupted, tb.corrupted);

  // A different salt decorrelates the stream.
  const auto [c, tc] = run(6);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) differing += a[i] != c[i];
  EXPECT_GT(differing, 0);
}

// ---------------------------------------------------------------------------
// Simulator-level guarantees.

core::ExperimentConfig sim_config() {
  core::ExperimentConfig cfg;
  cfg.params = core::Params::defaults();
  cfg.params.n = 150;
  cfg.params.m = 20;
  cfg.params.l = 15;
  cfg.params.q = 20;
  cfg.params.field_width = 1500.0;
  cfg.params.field_height = 1500.0;
  cfg.params.runs = 4;
  cfg.base_seed = 42;
  cfg.jammer = core::JammerKind::Random;
  return cfg;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap, std::string_view name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter " << name << " not in snapshot";
  return 0;
}

void expect_same_run(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.physical_pairs, b.physical_pairs);
  EXPECT_EQ(a.dndp_discovered, b.dndp_discovered);
  EXPECT_EQ(a.mndp_recovered, b.mndp_recovered);
  EXPECT_EQ(a.compromised_codes, b.compromised_codes);
  EXPECT_EQ(a.p_dndp, b.p_dndp);
  EXPECT_EQ(a.p_mndp, b.p_mndp);
  EXPECT_EQ(a.p_jrsnd, b.p_jrsnd);
  EXPECT_EQ(a.latency_dndp_s, b.latency_dndp_s);
  EXPECT_EQ(a.latency_jrsnd_s, b.latency_jrsnd_s);
}

TEST(FaultInjection, NoOpPlanLeavesResultsAndMetricsBitIdentical) {
  // The acceptance gate: with a present-but-inactive FaultPlan, discovery
  // results AND every observable counter must be bit-identical to the
  // fault-free pipeline (the FaultyPhy wrapper makes zero draws).
  core::ExperimentConfig plain = sim_config();
  plain.full_mndp = true;  // exercise the hardened MndpEngine paths too
  core::ExperimentConfig wrapped = plain;
  wrapped.faults = FaultPlan{};

  obs::set_metrics_enabled(true);
  obs::registry().reset();
  const core::DiscoverySimulator sim_plain(plain);
  const core::RunResult a = sim_plain.run_once(plain.base_seed);
  const obs::MetricsSnapshot snap_a = obs::registry().snapshot();

  obs::registry().reset();
  const core::DiscoverySimulator sim_wrapped(wrapped);
  const core::RunResult b = sim_wrapped.run_once(plain.base_seed);
  const obs::MetricsSnapshot snap_b = obs::registry().snapshot();
  obs::set_metrics_enabled(false);

  expect_same_run(a, b);
  EXPECT_EQ(b.dndp_retransmissions, 0u);
  EXPECT_EQ(b.dndp_timeouts, 0u);
  EXPECT_EQ(b.faults_injected, 0u);

  ASSERT_EQ(snap_a.counters.size(), snap_b.counters.size());
  for (std::size_t i = 0; i < snap_a.counters.size(); ++i) {
    EXPECT_EQ(snap_a.counters[i].name, snap_b.counters[i].name);
    EXPECT_EQ(snap_a.counters[i].value, snap_b.counters[i].value)
        << snap_a.counters[i].name;
  }
  ASSERT_EQ(snap_a.histograms.size(), snap_b.histograms.size());
  for (std::size_t i = 0; i < snap_a.histograms.size(); ++i) {
    EXPECT_EQ(snap_a.histograms[i].count, snap_b.histograms[i].count)
        << snap_a.histograms[i].name;
  }
}

TEST(FaultInjection, ActiveFaultsReplayIdenticallyAcrossThreadCounts) {
  // Determinism replay: the same seed and FaultPlan must produce
  // bit-identical aggregates and counters under JRSND_THREADS=1 and 8.
  core::ExperimentConfig cfg = sim_config();
  FaultPlan plan;
  plan.seed = 17;
  plan.drop = 0.1;
  plan.corrupt = 0.05;
  plan.duplicate = 0.05;
  plan.reorder = 0.05;
  plan.clock_drift_max = 0.01;
  plan.auto_tick = 0.001;
  plan.crashes.push_back({node_id(3), TimePoint{0.2}, Duration{0.4}});
  cfg.faults = plan;
  cfg.params.retry.max_retx = 2;
  const core::DiscoverySimulator sim(cfg);

  obs::set_metrics_enabled(true);
  obs::registry().reset();
  ASSERT_EQ(setenv("JRSND_THREADS", "1", 1), 0);
  const core::PointResult serial = sim.run_all();
  const obs::MetricsSnapshot snap_serial = obs::registry().snapshot();

  obs::registry().reset();
  ASSERT_EQ(setenv("JRSND_THREADS", "8", 1), 0);
  const core::PointResult parallel = sim.run_all();
  const obs::MetricsSnapshot snap_parallel = obs::registry().snapshot();
  obs::set_metrics_enabled(false);
  ASSERT_EQ(unsetenv("JRSND_THREADS"), 0);

  auto expect_stat = [](const core::Stat& a, const core::Stat& b, const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  };
  expect_stat(serial.p_dndp, parallel.p_dndp, "p_dndp");
  expect_stat(serial.p_mndp, parallel.p_mndp, "p_mndp");
  expect_stat(serial.p_jrsnd, parallel.p_jrsnd, "p_jrsnd");
  expect_stat(serial.latency_dndp, parallel.latency_dndp, "latency_dndp");

  ASSERT_EQ(snap_serial.counters.size(), snap_parallel.counters.size());
  for (std::size_t i = 0; i < snap_serial.counters.size(); ++i) {
    EXPECT_EQ(snap_serial.counters[i].value, snap_parallel.counters[i].value)
        << snap_serial.counters[i].name;
  }
  // And the faults actually fired, so the comparison was not vacuous.
  EXPECT_GT(counter_value(snap_serial, "fault.injected.drop"), 0u);
  EXPECT_GT(counter_value(snap_serial, "dndp.retx.attempts"), 0u);
}

TEST(FaultInjection, DiscoveryRecoversWithinTheChaosEnvelope) {
  // The headline guarantee (also asserted by `jrsnd chaos` and
  // bench/chaos_resilience): under 20% injected message drop the hardened
  // D-NDP recovers to >= 95% of its fault-free discovery ratio; without the
  // retry discipline it visibly degrades.
  core::ExperimentConfig cfg;
  cfg.params = core::Params::defaults();
  cfg.params.n = 200;
  cfg.params.m = 25;
  cfg.params.l = 20;
  cfg.params.runs = 2;
  cfg.base_seed = 1;
  cfg.jammer = core::JammerKind::None;  // isolate the injected faults

  auto mean_p_dndp = [](const core::ExperimentConfig& c) {
    const core::DiscoverySimulator sim(c);
    core::Stat p;
    for (std::uint32_t run = 0; run < c.params.runs; ++run) {
      p.add(sim.run_once(c.base_seed + run).p_dndp);
    }
    return p.mean();
  };

  const double baseline = mean_p_dndp(cfg);
  ASSERT_GT(baseline, 0.5);

  FaultPlan plan;
  plan.seed = cfg.base_seed;
  plan.drop = 0.2;

  core::ExperimentConfig hardened = cfg;
  hardened.faults = plan;
  hardened.params.retry.max_retx = 3;
  const double recovered = mean_p_dndp(hardened);

  core::ExperimentConfig oneshot = cfg;
  oneshot.faults = plan;
  const double degraded = mean_p_dndp(oneshot);

  EXPECT_GE(recovered, 0.95 * baseline)
      << "baseline " << baseline << " recovered " << recovered;
  EXPECT_LT(degraded, 0.8 * baseline)
      << "without retries 20% drop must visibly degrade discovery";
}

// ---------------------------------------------------------------------------
// Crash/restart through a real D-NDP handshake.

TEST(FaultInjection, CrashedInitiatorRestartsAndCompletesTheHandshake) {
  // Kill a node mid-handshake; after the window it restarts with codebook
  // and key material intact, and the pair still discovers within the retry
  // budget. The injected-fault and timeout counters must match the schedule
  // exactly: every blocked transmit expired exactly one timeout and cost
  // exactly one retransmission.
  core::Params params = core::Params::defaults();
  params.n = 20;
  params.m = 6;
  params.l = 10;
  params.N = 64;
  params.field_width = 100.0;
  params.field_height = 100.0;
  params.tx_range = 500.0;  // fully connected
  params.retry.max_retx = 4;

  const predist::CodePoolAuthority authority(params.predist(), Rng(11));
  const crypto::IbcAuthority ibc(12);
  const sim::Field field(params.field_width, params.field_height);
  std::vector<sim::Position> positions;
  for (std::uint32_t i = 0; i < params.n; ++i) {
    positions.push_back({static_cast<double>(i % 5) * 20.0, static_cast<double>(i / 5) * 20.0});
  }
  const sim::Topology topology(field, positions, params.tx_range);
  Rng phy_rng(13);
  Rng node_rng(14);
  std::vector<core::NodeState> nodes;
  for (std::uint32_t i = 0; i < params.n; ++i) {
    const NodeId id = node_id(i);
    nodes.emplace_back(id, ibc.issue(id), authority.assignment().codes_of(id), authority,
                       params.gamma, node_rng.split());
  }

  // Find a pair sharing at least one code.
  NodeId a = kInvalidNode, b = kInvalidNode;
  for (std::uint32_t i = 0; i < params.n && a == kInvalidNode; ++i) {
    for (std::uint32_t j = i + 1; j < params.n; ++j) {
      if (!authority.assignment().shared_codes(node_id(i), node_id(j)).empty()) {
        a = node_id(i);
        b = node_id(j);
        break;
      }
    }
  }
  ASSERT_NE(a, kInvalidNode);

  adversary::NullJammer jammer;
  core::AbstractPhy inner(topology, jammer, phy_rng);

  // Each transmit ticks 10 ms; node `a` is down for [0, 35) ms, so exactly
  // the first three transmission attempts (at 10, 20, 30 ms) are blocked and
  // the fourth goes through — well inside the 4-retransmission budget.
  FaultPlan plan;
  plan.auto_tick = 0.010;
  plan.crashes.push_back({a, TimePoint{0.0}, Duration{0.035}});
  FaultyPhy phy(inner, plan);

  obs::set_metrics_enabled(true);
  obs::registry().reset();
  obs::preregister_core_metrics();  // zero-valued counters appear in snapshots
  core::DndpEngine engine(params, phy, /*redundancy=*/true, /*retry_seed=*/99,
                          &phy.clocks());
  const core::DndpResult result = engine.run(nodes[raw(a)], nodes[raw(b)]);
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  obs::set_metrics_enabled(false);

  EXPECT_TRUE(result.discovered);
  EXPECT_EQ(phy.totals().crash_blocked, 3u);
  EXPECT_EQ(result.timeouts, 3u);
  EXPECT_EQ(result.retransmissions, 3u);

  // Both sides hold the link despite the mid-handshake outage.
  EXPECT_NE(nodes[raw(a)].neighbor(b), nullptr);
  EXPECT_NE(nodes[raw(b)].neighbor(a), nullptr);

  // Obs counters reproduce the schedule.
  EXPECT_EQ(counter_value(snap, "fault.injected.crash_blocked"), 3u);
  EXPECT_EQ(counter_value(snap, "dndp.timeout.expired"), 3u);
  EXPECT_EQ(counter_value(snap, "dndp.retx.attempts"), 3u);
  // Only the final retransmission (the one that got through) recovers.
  EXPECT_EQ(counter_value(snap, "dndp.retx.recovered"), 1u);
  EXPECT_EQ(counter_value(snap, "dndp.timeout.exhausted"), 0u);
}

}  // namespace
}  // namespace jrsnd::fault
