#include "crypto/ibc.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace jrsnd::crypto {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST(Ibc, SharedKeyIsSymmetric) {
  const IbcAuthority authority(1234);
  const IbcPrivateKey ka = authority.issue(node_id(1));
  const IbcPrivateKey kb = authority.issue(node_id(2));
  EXPECT_EQ(ka.shared_key(node_id(2)), kb.shared_key(node_id(1)));
}

TEST(Ibc, DistinctPairsGetDistinctKeys) {
  const IbcAuthority authority(1);
  const IbcPrivateKey ka = authority.issue(node_id(1));
  EXPECT_NE(ka.shared_key(node_id(2)), ka.shared_key(node_id(3)));
}

TEST(Ibc, ThirdPartyDerivesDifferentKey) {
  // C's key agreement with A or B never matches K_AB.
  const IbcAuthority authority(7);
  const IbcPrivateKey ka = authority.issue(node_id(1));
  const IbcPrivateKey kc = authority.issue(node_id(3));
  const SymmetricKey k_ab = ka.shared_key(node_id(2));
  EXPECT_NE(kc.shared_key(node_id(1)), k_ab);
  EXPECT_NE(kc.shared_key(node_id(2)), k_ab);
}

TEST(Ibc, DifferentAuthoritiesAreIncompatible) {
  const IbcAuthority auth1(100);
  const IbcAuthority auth2(200);
  const IbcPrivateKey ka1 = auth1.issue(node_id(1));
  const IbcPrivateKey ka2 = auth2.issue(node_id(1));
  EXPECT_NE(ka1.shared_key(node_id(2)), ka2.shared_key(node_id(2)));
}

TEST(Ibc, AuthoritySetupIsDeterministic) {
  const IbcAuthority auth1(55);
  const IbcAuthority auth2(55);
  EXPECT_EQ(auth1.issue(node_id(9)).shared_key(node_id(10)),
            auth2.issue(node_id(9)).shared_key(node_id(10)));
}

TEST(Ibc, SignatureVerifiesAgainstSignerId) {
  const IbcAuthority authority(42);
  const IbcPrivateKey ka = authority.issue(node_id(17));
  const auto msg = bytes("m-ndp request");
  const IbcSignature sig = ka.sign(msg);
  EXPECT_TRUE(authority.oracle()->verify(node_id(17), msg, sig));
}

TEST(Ibc, SignatureRejectsWrongSigner) {
  const IbcAuthority authority(42);
  const IbcPrivateKey ka = authority.issue(node_id(17));
  const auto msg = bytes("m-ndp request");
  const IbcSignature sig = ka.sign(msg);
  EXPECT_FALSE(authority.oracle()->verify(node_id(18), msg, sig));
}

TEST(Ibc, SignatureRejectsTamperedMessage) {
  const IbcAuthority authority(42);
  const IbcPrivateKey ka = authority.issue(node_id(17));
  const IbcSignature sig = ka.sign(bytes("original"));
  EXPECT_FALSE(authority.oracle()->verify(node_id(17), bytes("tampered"), sig));
}

TEST(Ibc, SignatureRejectsTamperedTag) {
  const IbcAuthority authority(42);
  const IbcPrivateKey ka = authority.issue(node_id(17));
  const auto msg = bytes("payload");
  IbcSignature sig = ka.sign(msg);
  sig.tag[0] ^= 0x01;
  EXPECT_FALSE(authority.oracle()->verify(node_id(17), msg, sig));
}

TEST(Ibc, ForgeryWithOtherPrivateKeyFails) {
  // A compromised node cannot sign on behalf of another identity.
  const IbcAuthority authority(42);
  const IbcPrivateKey attacker = authority.issue(node_id(666));
  const auto msg = bytes("i am node 1");
  const IbcSignature forged = attacker.sign(msg);
  EXPECT_FALSE(authority.oracle()->verify(node_id(1), msg, forged));
}

TEST(Ibc, MacBindsKeyAndMessage) {
  const IbcAuthority authority(8);
  const SymmetricKey k_ab = authority.issue(node_id(1)).shared_key(node_id(2));
  const SymmetricKey k_ac = authority.issue(node_id(1)).shared_key(node_id(3));
  const auto msg = bytes("auth");
  EXPECT_EQ(compute_mac(k_ab, msg), compute_mac(k_ab, msg));
  EXPECT_NE(compute_mac(k_ab, msg), compute_mac(k_ac, msg));
  EXPECT_NE(compute_mac(k_ab, msg), compute_mac(k_ab, bytes("auth2")));
}

class IbcPairSweep : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(IbcPairSweep, AgreementHoldsForArbitraryIds) {
  const auto [ia, ib] = GetParam();
  const IbcAuthority authority(999);
  EXPECT_EQ(authority.issue(node_id(ia)).shared_key(node_id(ib)),
            authority.issue(node_id(ib)).shared_key(node_id(ia)));
}

INSTANTIATE_TEST_SUITE_P(Pairs, IbcPairSweep,
                         ::testing::Values(std::make_pair(0u, 1u), std::make_pair(5u, 5000u),
                                           std::make_pair(65535u, 2u),
                                           std::make_pair(123u, 321u),
                                           std::make_pair(1999u, 0u)));

}  // namespace
}  // namespace jrsnd::crypto
