#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"

namespace jrsnd::core {
namespace {

TEST(Stat, EmptyIsZero) {
  const Stat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(Stat, EmptyExtremesAreNaNNotZero) {
  // Regression: min()/max() used to return 0.0 with no samples, which reads
  // as a real (and impossibly good) observation in latency tables.
  const Stat s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  Stat one;
  one.add(-1.5);
  EXPECT_DOUBLE_EQ(one.min(), -1.5);
  EXPECT_DOUBLE_EQ(one.max(), -1.5);
}

TEST(Stat, SingleSample) {
  Stat s;
  s.add(4.2);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.2);
  EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(Stat, KnownMeanAndVariance) {
  Stat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stat, WelfordIsNumericallyStable) {
  // Large offset: naive sum-of-squares would lose precision.
  Stat s;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-6);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Stat, Ci95ShrinksWithSamples) {
  Rng rng(1);
  Stat small;
  Stat large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(Stat, Ci95CoversTrueMean) {
  // ~95% of repeated experiments should cover the true mean 0.5.
  Rng rng(2);
  int covered = 0;
  constexpr int kExperiments = 200;
  for (int e = 0; e < kExperiments; ++e) {
    Stat s;
    for (int i = 0; i < 50; ++i) s.add(rng.uniform01());
    if (std::abs(s.mean() - 0.5) <= s.ci95()) ++covered;
  }
  EXPECT_GT(covered, kExperiments * 85 / 100);
}

TEST(Table, PrintsAlignedHeadersAndRows) {
  Table t({"x", "y"}, 8);
  t.add_row(std::vector<double>{1.0, 2.5}, 2);
  t.add_row(std::vector<std::string>{"a", "b"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("--------"), std::string::npos);
  // 3 content lines + rule.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}


TEST(Table, CsvEscapesAndRoundTrips) {
  Table t({"name", "value"}, 8);
  t.add_row(std::vector<std::string>{"plain", "1.5"});
  t.add_row(std::vector<std::string>{"with,comma", "a\"b"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\nplain,1.5\n\"with,comma\",\"a\"\"b\"\n");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

}  // namespace
}  // namespace jrsnd::core
