// Microbench for the sliding-window sync kernel and the parallel
// Monte-Carlo engine (docs/performance.md).
//
//  [1] Scan throughput at the paper's N = 512: the seed-naive path (slice a
//      window per (offset, code), allocate an XOR vector, popcount) vs the
//      hoisted reference (one slice per offset) vs the shift-table kernel
//      (zero allocation, XOR+popcount on packed words). The kernel must be
//      >= 5x the naive path and bit-identical to it.
//  [1c] Multi-code scan at m in {5, 20, 40}: the SIMD-batched kernel
//      (BatchShiftTable::hamming_all, one buffer pass scoring every code)
//      vs the per-code shift-table loop, per supported SIMD backend, with
//      bit-identity verified before timing. The acceptance target is >= 4x
//      over the single-code kernel at m = 40 on the best vector backend
//      (>= 1.5x scalar-only).
//  [2] run_all() serial vs parallel wall time, with the results verified
//      identical (the engine's determinism contract).
//
// Writes a machine-readable summary to BENCH_sync.json (path overridable as
// argv[1]) so CI can archive throughput next to the commit.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/discovery_sim.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spread_code.hpp"
#include "dsss/spreader.hpp"
#include "dsss/sync_kernel.hpp"
#include "obs/prof/perf_counters.hpp"

namespace {

using jrsnd::BitVector;
using jrsnd::Rng;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

struct ScanTiming {
  double secs_per_scan = 0.0;
  double windows_per_sec = 0.0;
  double chips_per_sec = 0.0;
  std::size_t hits = 0;  // windows above tau — also defeats dead-code elimination
};

/// Repeats `scan` (returning its per-pass hit count) until ~0.3 s elapsed.
template <typename Scan>
ScanTiming time_scan(std::size_t offsets, std::size_t m, std::size_t chips_per_window,
                     Scan&& scan) {
  ScanTiming t;
  t.hits = scan();  // warm-up pass (also the verification pass)
  std::size_t passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    t.hits = scan();
    ++passes;
    elapsed = seconds_since(start);
  } while (elapsed < 0.3);
  const double windows = static_cast<double>(offsets * m * passes);
  t.secs_per_scan = elapsed / static_cast<double>(passes);
  t.windows_per_sec = windows / elapsed;
  t.chips_per_sec = t.windows_per_sec * static_cast<double>(chips_per_window);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jrsnd;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sync.json";

  // --- [1] scan throughput --------------------------------------------------
  constexpr std::size_t kN = 512;    // Table-I spreading-code length
  constexpr std::size_t kM = 5;      // candidate codes per scan (ISSUE floor)
  constexpr std::size_t kBufferBits = 4096;
  constexpr double kTau = 0.8;

  Rng rng(20110620);
  std::vector<dsss::SpreadCode> codes;
  for (std::size_t i = 0; i < kM; ++i) codes.push_back(dsss::SpreadCode::random(rng, kN));
  const BitVector buffer = random_bits(rng, kBufferBits);
  const std::size_t offsets = kBufferBits - kN + 1;

  std::printf("sync-kernel scan: N=%zu m=%zu buffer=%zu bits (%zu offsets)\n", kN, kM,
              kBufferBits, offsets);

  // The seed implementation this PR replaced: one slice per (offset, code)
  // plus an allocating XOR for the popcount. Reconstructed here so the
  // speedup is measured against the true historical baseline, not the
  // already-hoisted reference oracle.
  const auto naive_scan = [&] {
    std::size_t hits = 0;
    for (std::size_t off = 0; off < offsets; ++off) {
      for (const dsss::SpreadCode& code : codes) {
        const BitVector window = buffer.slice(off, kN);
        const std::size_t ham = code.bits().xor_with(window).popcount();
        const double corr =
            (static_cast<double>(kN) - 2.0 * static_cast<double>(ham)) / static_cast<double>(kN);
        hits += corr >= kTau;
      }
    }
    return hits;
  };

  // Hoisted reference (the retained test oracle): one slice per offset.
  const auto reference_scan = [&] {
    std::size_t hits = 0;
    for (std::size_t off = 0; off < offsets; ++off) {
      const BitVector window = buffer.slice(off, kN);
      for (const dsss::SpreadCode& code : codes) hits += code.correlate(window) >= kTau;
    }
    return hits;
  };

  // Shift-table kernel: codes precomputed at all 64 alignments once, inner
  // loop is XOR+AND+popcount straight over the buffer words.
  const auto kernel_scan = [&] {
    const std::vector<dsss::ShiftTable> tables = dsss::build_shift_tables(codes);
    std::size_t hits = 0;
    for (std::size_t off = 0; off < offsets; ++off) {
      for (const dsss::ShiftTable& table : tables) hits += table.correlate(buffer, off) >= kTau;
    }
    return hits;
  };

  // Bit-identical check before timing: every (offset, code) correlation.
  {
    const std::vector<dsss::ShiftTable> tables = dsss::build_shift_tables(codes);
    for (std::size_t off = 0; off < offsets; ++off) {
      const BitVector window = buffer.slice(off, kN);
      for (std::size_t c = 0; c < kM; ++c) {
        const double naive = codes[c].correlate(window);
        if (tables[c].correlate(buffer, off) != naive) {
          std::fprintf(stderr, "FATAL: kernel != naive at offset %zu code %zu\n", off, c);
          return 1;
        }
      }
    }
  }

  const ScanTiming naive = time_scan(offsets, kM, kN, naive_scan);
  const ScanTiming reference = time_scan(offsets, kM, kN, reference_scan);
  const ScanTiming kernel = time_scan(offsets, kM, kN, kernel_scan);
  if (naive.hits != kernel.hits || reference.hits != kernel.hits) {
    std::fprintf(stderr, "FATAL: hit counts disagree (naive %zu ref %zu kernel %zu)\n",
                 naive.hits, reference.hits, kernel.hits);
    return 1;
  }

  const double speedup_vs_naive = naive.secs_per_scan / kernel.secs_per_scan;
  const double speedup_vs_reference = reference.secs_per_scan / kernel.secs_per_scan;
  std::printf("  naive     %9.2f ms/scan  %8.1f Mchip/s\n", naive.secs_per_scan * 1e3,
              naive.chips_per_sec / 1e6);
  std::printf("  reference %9.2f ms/scan  %8.1f Mchip/s  (%.1fx vs naive)\n",
              reference.secs_per_scan * 1e3, reference.chips_per_sec / 1e6,
              naive.secs_per_scan / reference.secs_per_scan);
  std::printf("  kernel    %9.2f ms/scan  %8.1f Mchip/s  (%.1fx vs naive, %.1fx vs ref)\n",
              kernel.secs_per_scan * 1e3, kernel.chips_per_sec / 1e6, speedup_vs_naive,
              speedup_vs_reference);
  if (speedup_vs_naive < 5.0) {
    std::fprintf(stderr, "WARNING: kernel speedup %.1fx below the 5x acceptance floor\n",
                 speedup_vs_naive);
  }

  // SyncHit-level equivalence on a buffer with planted messages.
  {
    Rng plant_rng(7);
    BitVector planted = random_bits(plant_rng, 777);
    planted.append(dsss::spread(random_bits(plant_rng, 8), codes[2]));
    planted.append(random_bits(plant_rng, 300));
    planted.append(dsss::spread(random_bits(plant_rng, 8), codes[0]));
    planted.append(random_bits(plant_rng, 99));
    const auto k_hits = dsss::find_all_messages(planted, codes, 8, 0.3);
    const auto r_hits = dsss::find_all_messages_reference(planted, codes, 8, 0.3);
    bool same = k_hits.size() == r_hits.size();
    for (std::size_t i = 0; same && i < k_hits.size(); ++i) {
      same = k_hits[i].code_index == r_hits[i].code_index &&
             k_hits[i].chip_offset == r_hits[i].chip_offset &&
             k_hits[i].message.bits == r_hits[i].message.bits;
    }
    if (!same || k_hits.size() != 2) {
      std::fprintf(stderr, "FATAL: kernel SyncHits differ from reference\n");
      return 1;
    }
    std::printf("  SyncHits: kernel == reference on planted buffer (%zu hits)\n", k_hits.size());
  }

  // --- [1b] hardware counters over the kernel scan --------------------------
  // A fixed pass count under a PerfCounterSet turns the throughput numbers
  // into architecture-level ones: cycles per scan, instructions per chip,
  // IPC, LLC misses. Under the clock fallback (no PMU: containers, VMs)
  // cycles are estimated from thread CPU time and the miss/IPC numbers read
  // 0 — the "backend"/"estimated" fields tell check_perf.py whether the
  // numbers are gateable.
  obs::prof::PerfCounterSet counter_set;
  constexpr std::size_t kCounterPasses = 16;
  const obs::prof::CounterTotals scan_counters = counter_set.measure([&] {
    std::size_t sink = 0;
    for (std::size_t pass = 0; pass < kCounterPasses; ++pass) sink += kernel_scan();
    if (sink == static_cast<std::size_t>(-1)) std::abort();  // defeat DCE
  });
  const double counted_chips =
      static_cast<double>(kCounterPasses * offsets * kM) * static_cast<double>(kN);
  const double cycles_per_scan =
      static_cast<double>(scan_counters.cycles) / static_cast<double>(kCounterPasses);
  // Under the clock fallback the instruction and miss counters never tick:
  // the derived rates are not measurements (they would read 0), so they are
  // reported n/a here and null in the JSON instead of masquerading as data.
  const bool counters_real = counter_set.backend() == obs::prof::ProfBackend::kPerfEvent;
  const double instructions_per_chip =
      counters_real ? static_cast<double>(scan_counters.instructions) / counted_chips : 0.0;
  if (counters_real) {
    std::printf("  counters  [%s%s] %.3g cycles/scan  %.3g instr/chip  IPC %.2f  "
                "%.3g LLC-miss/kinst\n",
                obs::prof::backend_name(counter_set.backend()),
                scan_counters.estimated ? ", estimated" : "", cycles_per_scan,
                instructions_per_chip, scan_counters.ipc(),
                scan_counters.llc_misses_per_kinst());
  } else {
    std::printf("  counters  [%s%s] %.3g cycles/scan  instr/chip n/a  IPC n/a  "
                "LLC-miss/kinst n/a\n",
                obs::prof::backend_name(counter_set.backend()),
                scan_counters.estimated ? ", estimated" : "", cycles_per_scan);
  }

  // --- [1c] SIMD-batched multi-code scan ------------------------------------
  // One buffer pass scores the whole candidate group: as m grows the
  // per-code loop re-reads every buffer word m times, the batched kernel
  // once. Timed per supported SIMD backend (forced via set_simd_backend —
  // the same dispatch JRSND_SIMD drives), with the batched Hammings verified
  // bit-identical to the per-code kernel at every (offset, code) first.
  struct MultiCodeEntry {
    const char* backend = "";
    std::size_t m = 0;
    double single_ms = 0.0;
    double batched_ms = 0.0;
    double single_gchips = 0.0;
    double batched_gchips = 0.0;
    double speedup = 0.0;
    double batched_cycles_per_scan = 0.0;
    bool cycles_estimated = true;
  };
  std::vector<MultiCodeEntry> multi_entries;
  std::vector<dsss::SimdBackend> backends;
  for (const dsss::SimdBackend b : {dsss::SimdBackend::kScalar, dsss::SimdBackend::kAvx2,
                                    dsss::SimdBackend::kAvx512, dsss::SimdBackend::kNeon}) {
    if (dsss::simd_backend_supported(b)) backends.push_back(b);
  }
  const dsss::SimdBackend default_backend = dsss::simd_backend();
  const char* best_backend_name = dsss::simd_backend_name(default_backend);
  double best_speedup_at_40 = 0.0;

  std::printf("multi-code scan: N=%zu buffer=%zu bits, backends:", kN, kBufferBits);
  for (const dsss::SimdBackend b : backends) std::printf(" %s", dsss::simd_backend_name(b));
  std::printf(" (best: %s)\n", best_backend_name);

  for (const std::size_t m : {std::size_t{5}, std::size_t{20}, std::size_t{40}}) {
    std::vector<dsss::SpreadCode> group;
    for (std::size_t i = 0; i < m; ++i) group.push_back(dsss::SpreadCode::random(rng, kN));
    const std::vector<dsss::ShiftTable> tables = dsss::build_shift_tables(group);
    const dsss::BatchShiftTable batch{std::span<const dsss::SpreadCode>(group)};
    std::vector<std::uint64_t> hams(batch.lane_count());

    // Tables prebuilt for BOTH paths: this times the steady-state scan loop
    // (the PreparedCodebook regime), not table construction.
    const auto single_scan = [&] {
      std::size_t hits = 0;
      for (std::size_t off = 0; off < offsets; ++off) {
        for (const dsss::ShiftTable& table : tables) hits += table.correlate(buffer, off) >= kTau;
      }
      return hits;
    };
    // Threshold in the Hamming domain, as batch_sync_search does: corr(h) is
    // strictly decreasing in h, so "corr >= tau" is exactly "h < hit_below"
    // with the bound found via the same double predicate.
    std::size_t hit_below = 0;
    while (hit_below <= kN && dsss::correlation_from_hamming(kN, hit_below) >= kTau) ++hit_below;
    const auto batched_scan = [&, hit_below] {
      std::size_t hits = 0;
      for (std::size_t off = 0; off < offsets; ++off) {
        batch.hamming_all(buffer, off, hams);
        for (std::size_t c = 0; c < m; ++c) hits += hams[c] < hit_below;
      }
      return hits;
    };

    const ScanTiming single = time_scan(offsets, m, kN, single_scan);

    for (const dsss::SimdBackend b : backends) {
      dsss::set_simd_backend(b);
      // Bit-identity gate before timing: every (offset, code) Hamming.
      for (std::size_t off = 0; off < offsets; ++off) {
        batch.hamming_all(buffer, off, hams);
        for (std::size_t c = 0; c < m; ++c) {
          if (hams[c] != tables[c].hamming(buffer, off)) {
            std::fprintf(stderr, "FATAL: batched(%s) != kernel at offset %zu code %zu m %zu\n",
                         dsss::simd_backend_name(b), off, c, m);
            return 1;
          }
        }
      }
      const ScanTiming batched = time_scan(offsets, m, kN, batched_scan);
      if (batched.hits != single.hits) {
        std::fprintf(stderr, "FATAL: batched(%s) hit count %zu != single %zu at m %zu\n",
                     dsss::simd_backend_name(b), batched.hits, single.hits, m);
        return 1;
      }
      constexpr std::size_t kBatchCounterPasses = 8;
      const obs::prof::CounterTotals batch_counters = counter_set.measure([&] {
        std::size_t sink = 0;
        for (std::size_t pass = 0; pass < kBatchCounterPasses; ++pass) sink += batched_scan();
        if (sink == static_cast<std::size_t>(-1)) std::abort();  // defeat DCE
      });

      MultiCodeEntry entry;
      entry.backend = dsss::simd_backend_name(b);
      entry.m = m;
      entry.single_ms = single.secs_per_scan * 1e3;
      entry.batched_ms = batched.secs_per_scan * 1e3;
      entry.single_gchips = single.chips_per_sec / 1e9;
      entry.batched_gchips = batched.chips_per_sec / 1e9;
      entry.speedup = single.secs_per_scan / batched.secs_per_scan;
      entry.batched_cycles_per_scan =
          static_cast<double>(batch_counters.cycles) / static_cast<double>(kBatchCounterPasses);
      entry.cycles_estimated = batch_counters.estimated;
      multi_entries.push_back(entry);
      if (m == 40 && b == default_backend) best_speedup_at_40 = entry.speedup;

      std::printf("  m=%-2zu %-6s single %8.3f ms  batched %8.3f ms  %6.2f Gchip/s  "
                  "%.2fx  %.3g cycles/scan%s\n",
                  m, entry.backend, entry.single_ms, entry.batched_ms, entry.batched_gchips,
                  entry.speedup, entry.batched_cycles_per_scan,
                  entry.cycles_estimated ? " (est)" : "");
    }
  }
  dsss::set_simd_backend(default_backend);
  {
    const bool vector_host = default_backend != dsss::SimdBackend::kScalar;
    const double floor = vector_host ? 4.0 : 1.5;
    if (best_speedup_at_40 < floor) {
      std::fprintf(stderr,
                   "WARNING: batched speedup %.2fx at m=40 on %s below the %.1fx acceptance "
                   "floor\n",
                   best_speedup_at_40, best_backend_name, floor);
    }
  }

  // --- [2] serial vs parallel run_all --------------------------------------
  core::ExperimentConfig cfg;
  cfg.params = core::Params::defaults();
  cfg.params.n = 300;
  cfg.params.m = 20;
  cfg.params.l = 15;
  cfg.params.q = 20;
  cfg.params.field_width = 2000.0;
  cfg.params.field_height = 2000.0;
  cfg.params.runs = 16;
  cfg.base_seed = 42;
  cfg.jammer = core::JammerKind::Random;
  const core::DiscoverySimulator sim(cfg);

  setenv("JRSND_THREADS", "1", 1);
  const auto serial_start = Clock::now();
  const core::PointResult serial = sim.run_all();
  const double serial_secs = seconds_since(serial_start);

  unsetenv("JRSND_THREADS");
  const std::size_t threads = ThreadPool::default_thread_count();
  const auto parallel_start = Clock::now();
  const core::PointResult parallel = sim.run_all();
  const double parallel_secs = seconds_since(parallel_start);

  const bool identical = serial.p_jrsnd.count() == parallel.p_jrsnd.count() &&
                         serial.p_jrsnd.mean() == parallel.p_jrsnd.mean() &&
                         serial.p_jrsnd.variance() == parallel.p_jrsnd.variance() &&
                         serial.p_dndp.mean() == parallel.p_dndp.mean() &&
                         serial.latency_dndp.mean() == parallel.latency_dndp.mean();
  const double run_speedup = serial_secs / parallel_secs;
  std::printf("run_all: n=%u runs=%u  serial %.2f s  parallel(%zu threads) %.2f s  %.2fx  %s\n",
              cfg.params.n, cfg.params.runs, serial_secs, threads, parallel_secs, run_speedup,
              identical ? "results identical" : "RESULTS DIFFER");
  if (!identical) return 1;

  // --- [3] saturated run_all -------------------------------------------------
  // Every hardware thread busy — the configuration a sweep actually runs
  // under. CI archives both this and the single-core number so a regression
  // in either the per-run cost or the scaling shows up in BENCH_sync.json.
  // The section is ALWAYS recorded with its explicit thread count: a
  // single-core host honestly labels the measurement threads=1 (where
  // "saturated" and serial coincide) instead of omitting it, and
  // check_perf.py only gates saturated throughput when the baseline was
  // taken at the same thread count.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double single_core_runs_per_sec = static_cast<double>(cfg.params.runs) / serial_secs;
  if (hw < 2) {
    std::fprintf(stderr,
                 "NOTE: hardware_concurrency=%u — \"saturated\" below is a threads=1 "
                 "measurement (gated only against same-thread-count baselines)\n",
                 hw);
  }
  setenv("JRSND_THREADS", std::to_string(hw).c_str(), 1);
  const auto saturated_start = Clock::now();
  const core::PointResult saturated = sim.run_all();
  const double saturated_secs = seconds_since(saturated_start);
  unsetenv("JRSND_THREADS");
  if (saturated.p_jrsnd.mean() != serial.p_jrsnd.mean()) {
    std::fprintf(stderr, "FATAL: saturated run_all results differ from serial\n");
    return 1;
  }
  const double saturated_runs_per_sec = static_cast<double>(cfg.params.runs) / saturated_secs;
  std::printf("run_all saturated: %u threads  %.2f s  %.2f runs/s (single-core %.2f runs/s)\n",
              hw, saturated_secs, saturated_runs_per_sec, single_core_runs_per_sec);

  // --- machine-readable summary --------------------------------------------
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  // Rates derived from counters that never tick under the clock fallback
  // are written as JSON null, not 0 — see [1b].
  const auto real_or_null = [&](double value) {
    return counters_real ? std::to_string(value) : std::string("null");
  };
  json << "{\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"simd_backend\": \"" << best_backend_name << "\",\n"
       << "  \"scan\": {\n"
       << "    \"N\": " << kN << ",\n"
       << "    \"m\": " << kM << ",\n"
       << "    \"buffer_bits\": " << kBufferBits << ",\n"
       << "    \"offsets\": " << offsets << ",\n"
       << "    \"naive_ms_per_scan\": " << naive.secs_per_scan * 1e3 << ",\n"
       << "    \"reference_ms_per_scan\": " << reference.secs_per_scan * 1e3 << ",\n"
       << "    \"kernel_ms_per_scan\": " << kernel.secs_per_scan * 1e3 << ",\n"
       << "    \"naive_mchips_per_sec\": " << naive.chips_per_sec / 1e6 << ",\n"
       << "    \"reference_mchips_per_sec\": " << reference.chips_per_sec / 1e6 << ",\n"
       << "    \"kernel_mchips_per_sec\": " << kernel.chips_per_sec / 1e6 << ",\n"
       << "    \"speedup_vs_naive\": " << speedup_vs_naive << ",\n"
       << "    \"speedup_vs_reference\": " << speedup_vs_reference << ",\n"
       << "    \"counters\": {\n"
       << "      \"backend\": \"" << obs::prof::backend_name(counter_set.backend()) << "\",\n"
       << "      \"estimated\": " << (scan_counters.estimated ? "true" : "false") << ",\n"
       << "      \"passes\": " << kCounterPasses << ",\n"
       << "      \"cycles_per_scan\": " << cycles_per_scan << ",\n"
       << "      \"instructions_per_chip\": " << real_or_null(instructions_per_chip) << ",\n"
       << "      \"ipc\": " << real_or_null(scan_counters.ipc()) << ",\n"
       << "      \"llc_misses_per_kinst\": " << real_or_null(scan_counters.llc_misses_per_kinst())
       << ",\n"
       << "      \"task_clock_ms\": " << static_cast<double>(scan_counters.task_clock_ns) / 1e6
       << "\n"
       << "    }\n"
       << "  },\n"
       << "  \"multi_code\": {\n"
       << "    \"N\": " << kN << ",\n"
       << "    \"buffer_bits\": " << kBufferBits << ",\n"
       << "    \"best_backend\": \"" << best_backend_name << "\",\n"
       << "    \"best_speedup_at_m40\": " << best_speedup_at_40 << ",\n"
       << "    \"entries\": [\n";
  for (std::size_t i = 0; i < multi_entries.size(); ++i) {
    const MultiCodeEntry& e = multi_entries[i];
    json << "      {\"backend\": \"" << e.backend << "\", \"m\": " << e.m
         << ", \"single_ms_per_scan\": " << e.single_ms
         << ", \"batched_ms_per_scan\": " << e.batched_ms
         << ", \"single_gchips_per_sec\": " << e.single_gchips
         << ", \"batched_gchips_per_sec\": " << e.batched_gchips
         << ", \"speedup_vs_single\": " << e.speedup
         << ", \"batched_cycles_per_scan\": " << e.batched_cycles_per_scan
         << ", \"cycles_estimated\": " << (e.cycles_estimated ? "true" : "false") << "}"
         << (i + 1 < multi_entries.size() ? "," : "") << "\n";
  }
  json << "    ]\n"
       << "  },\n"
       << "  \"run_all\": {\n"
       << "    \"n\": " << cfg.params.n << ",\n"
       << "    \"runs\": " << cfg.params.runs << ",\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"serial_seconds\": " << serial_secs << ",\n"
       << "    \"parallel_seconds\": " << parallel_secs << ",\n"
       << "    \"speedup\": " << run_speedup << ",\n"
       << "    \"results_identical\": " << (identical ? "true" : "false") << ",\n"
       << "    \"single_core_runs_per_sec\": " << single_core_runs_per_sec << "\n"
       << "  },\n";
  json << "  \"saturated\": {\n"
       << "    \"threads\": " << hw << ",\n"
       << "    \"seconds\": " << saturated_secs << ",\n"
       << "    \"runs_per_sec\": " << saturated_runs_per_sec << ",\n"
       << "    \"single_core_runs_per_sec\": " << single_core_runs_per_sec << "\n"
       << "  }\n"
       << "}\n";
  std::printf("(wrote %s)\n", json_path.c_str());
  return 0;
}
