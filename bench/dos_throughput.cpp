// DoS throughput of the batched handshake-verification pipeline
// (docs/robustness.md, "Handshake-flood hardening").
//
// Three phases, in strict order — nothing is timed until the fast path is
// proven equivalent to the reference:
//
//  [1] Bit-identity: every frame of a mixed flood (honest + BadMac +
//      Truncated + BadType + WrongCode) through VerifyQueue::drain must yield
//      the same verdict, sender, and session key as verify_one_shot (the
//      historical decode-then-verify path), AND the six per-frame decision
//      counters (crypto.verify.frames/.accepted, crypto.reject.*) must total
//      identically under separate scoped registries. Any divergence is FATAL.
//  [2] Zero-allocation: with the peer cache and scratch warm, a push/drain
//      cycle over a reject-only flood must perform exactly zero heap
//      allocations (global operator new replaced with a counting one — which
//      is why this lives in its own binary, like tests/perf_alloc_test).
//  [3] Throughput: handshake verifications per second, one-shot vs batched,
//      at attacker:honest ratios 1:1, 10:1, and 100:1. The committed
//      BENCH_dos.json must show >= 5x at 10:1 (gated by
//      scripts/check_perf.py --dos-baseline).
//
// Writes BENCH_dos.json (path overridable as argv[1]); --smoke shortens the
// timing windows for CI smoke runs and marks the JSON so check_perf.py skips
// the absolute floor.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "adversary/dos_attacker.hpp"
#include "core/messages.hpp"
#include "crypto/verify_queue.hpp"
#include "obs/metrics_registry.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace jrsnd;

std::uint64_t counter_value(const obs::MetricsSnapshot& snap, const char* name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

/// The decision counters whose totals must be identical between the batched
/// and one-shot paths (cache/batch bookkeeping counters intentionally differ).
constexpr const char* kDecisionCounters[] = {
    "crypto.verify.frames",  "crypto.verify.accepted", "crypto.reject.length",
    "crypto.reject.format",  "crypto.reject.code",     "crypto.reject.mac",
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_dos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const core::WireConfig wire;  // the paper's Table-I widths
  constexpr std::uint64_t kAuthoritySeed = 77;
  constexpr std::uint32_t kPeers = 16;
  constexpr std::uint64_t kFloodSeed = 20110620;
  constexpr std::size_t kIdentityFrames = 660;
  constexpr std::size_t kTimingFrames = 512;
  const double min_seconds = smoke ? 0.05 : 0.4;

  adversary::HandshakeFloodSource source(wire, kAuthoritySeed, kPeers, kFloodSeed);
  const crypto::VerifyWire& vw = source.verify_wire();
  const std::uint32_t expected_code = source.expected_code();

  std::printf("dos_throughput: %u peers, frame=%zu bits, l_mac=%u%s\n", kPeers,
              vw.frame_bits(), vw.l_mac, smoke ? " [smoke]" : "");

  // --- [1] bit-identity + counter identity, before any timing ---------------
  obs::set_metrics_enabled(true);
  const std::vector<adversary::FloodFrame> identity_flood =
      source.make_batch(kIdentityFrames, 10);

  std::vector<crypto::VerifyResult> one_shot_results;
  one_shot_results.reserve(identity_flood.size());
  obs::MetricsRegistry one_shot_registry;
  {
    obs::ScopedMetricsRegistry scoped(&one_shot_registry);
    for (const adversary::FloodFrame& frame : identity_flood) {
      one_shot_results.push_back(crypto::VerifyQueue::verify_one_shot(
          vw, frame.bits, frame.frame_code, expected_code, source.key_source()));
    }
  }

  std::vector<crypto::VerifyResult> batched_results;
  obs::MetricsRegistry batched_registry;
  {
    obs::ScopedMetricsRegistry scoped(&batched_registry);
    crypto::VerifyQueue queue(vw);
    // Drain in uneven chunks so the identity proof covers batch boundaries,
    // not just one monolithic drain.
    std::vector<crypto::VerifyResult> chunk;
    std::size_t i = 0;
    std::size_t chunk_size = 1;
    while (i < identity_flood.size()) {
      const std::size_t end = std::min(i + chunk_size, identity_flood.size());
      for (std::size_t j = i; j < end; ++j) {
        queue.push(identity_flood[j].bits, identity_flood[j].frame_code, expected_code);
      }
      queue.drain(source.key_source(), chunk);
      batched_results.insert(batched_results.end(), chunk.begin(), chunk.end());
      i = end;
      chunk_size = chunk_size * 2 + 1;  // 1, 3, 7, 15, ... frames per drain
    }
  }

  bool bit_identical = one_shot_results.size() == batched_results.size();
  for (std::size_t i = 0; bit_identical && i < one_shot_results.size(); ++i) {
    const crypto::VerifyResult& a = one_shot_results[i];
    const crypto::VerifyResult& b = batched_results[i];
    if (a.stage != b.stage || a.stage != identity_flood[i].expected_stage) {
      std::fprintf(stderr,
                   "FATAL: frame %zu (%s): one-shot=%s batched=%s expected=%s\n", i,
                   adversary::flood_frame_kind_name(identity_flood[i].kind),
                   crypto::verify_stage_name(a.stage), crypto::verify_stage_name(b.stage),
                   crypto::verify_stage_name(identity_flood[i].expected_stage));
      bit_identical = false;
    } else if (a.stage == crypto::VerifyStage::Accept &&
               (a.sender != b.sender || a.key != b.key)) {
      std::fprintf(stderr, "FATAL: frame %zu accepted with diverging sender/key\n", i);
      bit_identical = false;
    }
  }
  if (!bit_identical) return 1;

  const obs::MetricsSnapshot one_shot_snap = one_shot_registry.snapshot();
  const obs::MetricsSnapshot batched_snap = batched_registry.snapshot();
  bool counters_identical = true;
  for (const char* name : kDecisionCounters) {
    const std::uint64_t a = counter_value(one_shot_snap, name);
    const std::uint64_t b = counter_value(batched_snap, name);
    if (a != b) {
      std::fprintf(stderr, "FATAL: counter %s: one-shot=%llu batched=%llu\n", name,
                   static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
      counters_identical = false;
    }
  }
  if (!counters_identical) return 1;

  std::printf("  identity: %zu/%zu verdicts identical (one-shot vs chunked drains)\n",
              identity_flood.size(), identity_flood.size());
  std::printf("  rejects by stage: length=%llu format=%llu code=%llu mac=%llu accepted=%llu\n",
              static_cast<unsigned long long>(counter_value(batched_snap, "crypto.reject.length")),
              static_cast<unsigned long long>(counter_value(batched_snap, "crypto.reject.format")),
              static_cast<unsigned long long>(counter_value(batched_snap, "crypto.reject.code")),
              static_cast<unsigned long long>(counter_value(batched_snap, "crypto.reject.mac")),
              static_cast<unsigned long long>(counter_value(batched_snap, "crypto.verify.accepted")));

  // --- [2] zero allocations on the steady-state reject path -----------------
  // Reject-only flood (drop the leading honest frame of an all-attacker
  // batch); metrics stay ENABLED — the claim covers the instrumented path.
  std::vector<adversary::FloodFrame> reject_flood =
      source.make_batch(129, 128);  // frame 0 honest, 128 attacker frames
  reject_flood.erase(reject_flood.begin());

  std::uint64_t reject_path_allocs = 0;
  constexpr int kAllocCycles = 20;
  {
    crypto::VerifyQueue queue(vw);
    std::vector<crypto::VerifyResult> out;
    out.reserve(reject_flood.size());
    queue.reserve(reject_flood.size());
    // Warm-up: peer-schedule cache entries for every BadMac sender, counter
    // handle resolution, and scratch growth all happen here, not in the
    // counted region.
    for (int warm = 0; warm < 2; ++warm) {
      for (const adversary::FloodFrame& frame : reject_flood) {
        queue.push(frame.bits, frame.frame_code, expected_code);
      }
      queue.drain(source.key_source(), out);
    }

    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    std::size_t accepted = 0;
    for (int cycle = 0; cycle < kAllocCycles; ++cycle) {
      for (const adversary::FloodFrame& frame : reject_flood) {
        queue.push(frame.bits, frame.frame_code, expected_code);
      }
      accepted += queue.drain(source.key_source(), out);
    }
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    reject_path_allocs = after - before;
    if (accepted != 0) {
      std::fprintf(stderr, "FATAL: reject-only flood accepted %zu frames\n", accepted);
      return 1;
    }
  }
  if (reject_path_allocs != 0) {
    std::fprintf(stderr,
                 "FATAL: steady-state reject path allocated %llu times over %d cycles\n",
                 static_cast<unsigned long long>(reject_path_allocs), kAllocCycles);
    return 1;
  }
  std::printf("  zero-alloc: %d push/drain cycles x %zu reject frames, 0 allocations\n",
              kAllocCycles, reject_flood.size());

  // --- [3] throughput at attacker:honest ratios -----------------------------
  // Metrics off for timing: the figure of merit is the crypto pipeline, and
  // disabled is the bench/figure default elsewhere in the repo.
  obs::set_metrics_enabled(false);

  struct FloodPoint {
    std::uint32_t ratio;
    double one_shot_hps;
    double batched_hps;
    double speedup;
  };
  std::vector<FloodPoint> points;
  std::printf("  %8s %16s %16s %9s\n", "ratio", "one-shot h/s", "batched h/s", "speedup");
  for (const std::uint32_t ratio : {1u, 10u, 100u}) {
    const std::vector<adversary::FloodFrame> flood =
        source.make_batch(kTimingFrames, ratio);
    const adversary::FloodThroughput one_shot = adversary::measure_one_shot_throughput(
        vw, flood, source.key_source(), expected_code, min_seconds);
    crypto::VerifyQueue queue(vw);
    // One untimed pass warms the peer cache and scratch: throughput is a
    // steady-state figure.
    (void)adversary::measure_batched_throughput(queue, flood, source.key_source(),
                                                expected_code, 0.0);
    const adversary::FloodThroughput batched = adversary::measure_batched_throughput(
        queue, flood, source.key_source(), expected_code, min_seconds);
    FloodPoint point;
    point.ratio = ratio;
    point.one_shot_hps = one_shot.frames_per_sec();
    point.batched_hps = batched.frames_per_sec();
    point.speedup = point.one_shot_hps > 0.0 ? point.batched_hps / point.one_shot_hps : 0.0;
    points.push_back(point);
    std::printf("  %7u:1 %16.0f %16.0f %8.1fx\n", ratio, point.one_shot_hps,
                point.batched_hps, point.speedup);
  }
  const double speedup_at_10 = points[1].speedup;
  if (!smoke && speedup_at_10 < 5.0) {
    std::fprintf(stderr,
                 "WARNING: batched speedup %.1fx at 10:1 below the 5x acceptance floor\n",
                 speedup_at_10);
  }

  // --- machine-readable summary --------------------------------------------
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  json << "{\n"
       << "  \"config\": {\n"
       << "    \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "    \"peers\": " << kPeers << ",\n"
       << "    \"frame_bits\": " << vw.frame_bits() << ",\n"
       << "    \"identity_frames\": " << kIdentityFrames << ",\n"
       << "    \"timing_frames\": " << kTimingFrames << "\n"
       << "  },\n"
       << "  \"identity\": {\n"
       << "    \"frames\": " << identity_flood.size() << ",\n"
       << "    \"bit_identical\": true,\n"
       << "    \"counters_identical\": true\n"
       << "  },\n"
       << "  \"zero_alloc\": {\n"
       << "    \"frames_per_cycle\": " << reject_flood.size() << ",\n"
       << "    \"cycles\": " << kAllocCycles << ",\n"
       << "    \"reject_path_allocs\": " << reject_path_allocs << "\n"
       << "  },\n"
       << "  \"flood\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    json << "    {\"ratio\": " << points[i].ratio
         << ", \"one_shot_hps\": " << points[i].one_shot_hps
         << ", \"batched_hps\": " << points[i].batched_hps
         << ", \"speedup\": " << points[i].speedup << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::printf("(wrote %s)\n", json_path.c_str());
  return 0;
}
