// City-scale simulator-core bench (docs/performance.md, "Scaling the
// simulator").
//
//  [1] Topology rebuild at N=100k (field sized for the paper's average
//      degree g ~ 20): the seed implementation — per-cell inner vectors, an
//      allocating sorted within() query per node, and a materialized
//      all-pairs list, reconstructed below verbatim — vs the CSR build
//      (counting-sorted cell grid, symmetric half scan, two flat arrays).
//      Adjacency and the pair stream are verified element-identical before
//      timing; the acceptance target is >= 5x.
//  [2] Mobility hot loop: RandomWaypoint steps driving SpatialIndex::update
//      for every node plus within_into range queries into reused scratch.
//      The global allocator is replaced with a counting one (the
//      perf_alloc_test harness), and the steady-state loop must perform
//      ZERO heap allocations.
//  [3] Event storm: schedule/cancel/drain churn through the slab
//      EventQueue, also proven allocation-free at steady state.
//
// Writes BENCH_scale.json (path overridable via argv) for
// scripts/check_perf.py; exits nonzero on an identity mismatch or any
// steady-state allocation, so CI fails even without the gate script.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <sys/resource.h>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"
#include "sim/event_queue.hpp"
#include "sim/field.hpp"
#include "sim/mobility.hpp"
#include "sim/spatial_index.hpp"
#include "sim/topology.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return counted_alloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace jrsnd;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- the seed implementation, reconstructed as the baseline ----------------
// Per-cell inner vectors; within() allocates and sorts a result per call;
// the topology materializes per-node vectors plus the full pair list. This
// is the code path the CSR build replaced — kept here so speedup_vs_seed
// measures against the true historical baseline.

class LegacyIndex {
 public:
  LegacyIndex(const sim::Field& field, const std::vector<sim::Position>& positions, double radius)
      : cell_size_(std::max(radius, 1e-9)),
        cols_(static_cast<std::size_t>(std::ceil(field.width() / cell_size_)) + 1),
        rows_(static_cast<std::size_t>(std::ceil(field.height() / cell_size_)) + 1),
        positions_(positions),
        cells_(cols_ * rows_) {
    for (std::uint32_t i = 0; i < positions_.size(); ++i) {
      cells_[cell_of(positions_[i])].push_back(i);
    }
  }

  [[nodiscard]] std::vector<NodeId> within(const sim::Position& center, double radius,
                                           NodeId exclude) const {
    std::vector<NodeId> out;
    const auto cx =
        std::min(static_cast<std::size_t>(std::max(center.x, 0.0) / cell_size_), cols_ - 1);
    const auto cy =
        std::min(static_cast<std::size_t>(std::max(center.y, 0.0) / cell_size_), rows_ - 1);
    const std::size_t x_lo = cx > 0 ? cx - 1 : 0;
    const std::size_t y_lo = cy > 0 ? cy - 1 : 0;
    const std::size_t x_hi = std::min(cx + 1, cols_ - 1);
    const std::size_t y_hi = std::min(cy + 1, rows_ - 1);
    const double r2 = radius * radius;
    for (std::size_t y = y_lo; y <= y_hi; ++y) {
      for (std::size_t x = x_lo; x <= x_hi; ++x) {
        for (const std::uint32_t idx : cells_[y * cols_ + x]) {
          if (node_id(idx) == exclude) continue;
          const double dx = positions_[idx].x - center.x;
          const double dy = positions_[idx].y - center.y;
          if (dx * dx + dy * dy < r2) out.push_back(node_id(idx));
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  [[nodiscard]] std::size_t cell_of(const sim::Position& p) const {
    const auto cx = std::min(static_cast<std::size_t>(std::max(p.x, 0.0) / cell_size_), cols_ - 1);
    const auto cy = std::min(static_cast<std::size_t>(std::max(p.y, 0.0) / cell_size_), rows_ - 1);
    return cy * cols_ + cx;
  }

  double cell_size_;
  std::size_t cols_;
  std::size_t rows_;
  const std::vector<sim::Position>& positions_;
  std::vector<std::vector<std::uint32_t>> cells_;
};

struct LegacyTopology {
  std::vector<std::vector<NodeId>> adjacency;
  std::vector<std::pair<NodeId, NodeId>> pairs;

  LegacyTopology(const sim::Field& field, const std::vector<sim::Position>& positions,
                 double radius)
      : adjacency(positions.size()) {
    const LegacyIndex index(field, positions, radius);
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
      adjacency[i] = index.within(positions[i], radius, node_id(i));
      for (const NodeId j : adjacency[i]) {
        if (raw(j) > i) pairs.emplace_back(node_id(i), j);
      }
    }
  }
};

bool identical_topology(const LegacyTopology& legacy, const sim::Topology& csr) {
  const std::size_t n = legacy.adjacency.size();
  if (csr.node_count() != n || csr.pair_count() != legacy.pairs.size()) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto row = csr.neighbors(node_id(i));
    const auto& ref = legacy.adjacency[i];
    if (row.size() != ref.size() || !std::equal(row.begin(), row.end(), ref.begin())) return false;
  }
  std::size_t k = 0;
  for (const auto& [a, b] : csr.pairs()) {
    if (legacy.pairs[k].first != a || legacy.pairs[k].second != b) return false;
    ++k;
  }
  return k == legacy.pairs.size();
}

const char* maybe_u64(std::uint64_t value, bool real, std::string& scratch) {
  if (!real) return "null";
  scratch = std::to_string(value);
  return scratch.c_str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  obs::set_metrics_enabled(true);

  const std::size_t n = smoke ? 5000 : 100000;
  const double radius = 300.0;
  const double target_degree = 20.0;
  // Field area A = n * pi * r^2 / g keeps the average degree at g.
  const double side =
      std::sqrt(static_cast<double>(n) * 3.14159265358979323846 * radius * radius / target_degree);
  const sim::Field field{side, side};
  const std::size_t rebuilds = smoke ? 3 : 5;
  const std::size_t mobility_steps = smoke ? 10 : 20;
  const std::size_t queries_per_step = 256;
  const std::uint64_t storm_batch = 4096;
  const std::uint64_t storm_rounds = smoke ? 8 : 48;

  std::printf("scale_sim: n=%zu field=%.0fm radius=%.0fm (%s)\n", n, side, radius,
              smoke ? "smoke" : "full");

  Rng rng(20110620);
  const sim::UniformPlacement placement(field, n, rng);
  const std::vector<sim::Position> snapshot = placement.snapshot(kSimStart);

  obs::prof::PerfCounterSet counter_set;
  const bool counters_real = counter_set.backend() == obs::prof::ProfBackend::kPerfEvent;

  // --- [1] topology rebuild: seed path vs CSR ------------------------------
  {
    const LegacyTopology legacy_once(field, snapshot, radius);
    const sim::Topology csr_once(field, snapshot, radius);
    if (!identical_topology(legacy_once, csr_once)) {
      std::fprintf(stderr, "FAIL: CSR topology differs from the seed build\n");
      return 1;
    }
    std::printf("identity: CSR == seed (%zu pairs, g=%.2f)\n", csr_once.pair_count(),
                csr_once.average_degree());
  }

  double seed_secs = 0.0;
  {
    const auto start = Clock::now();
    for (std::size_t k = 0; k < rebuilds; ++k) {
      const LegacyTopology t(field, snapshot, radius);
      if (t.pairs.empty()) return 1;  // defeat dead-code elimination
    }
    seed_secs = seconds_since(start);
  }
  double csr_secs = 0.0;
  obs::prof::CounterTotals build_counters{};
  {
    const auto start = Clock::now();
    build_counters = counter_set.measure([&] {
      for (std::size_t k = 0; k < rebuilds; ++k) {
        const sim::Topology t(field, snapshot, radius);
        if (t.pair_count() == 0) std::exit(1);
      }
    });
    csr_secs = seconds_since(start);
  }
  const double seed_ms = 1e3 * seed_secs / static_cast<double>(rebuilds);
  const double csr_ms = 1e3 * csr_secs / static_cast<double>(rebuilds);
  const double speedup = seed_ms / csr_ms;
  const double rebuilds_per_sec = 1e3 / csr_ms;
  std::printf("rebuild: seed %.2f ms, csr %.2f ms -> %.2fx (%.1f rebuilds/s)\n", seed_ms, csr_ms,
              speedup, rebuilds_per_sec);

  // --- [2] mobility hot loop: incremental updates + range queries ----------
  Rng mobility_rng(7);
  const sim::RandomWaypoint waypoint(field, n, sim::RandomWaypoint::Params{}, mobility_rng);
  sim::SpatialIndex index(field, n, radius);
  const double dt = 1.0;
  const TimePoint t_end = kSimStart + seconds(dt * static_cast<double>(mobility_steps + 1));

  // Warm-up: insert every node, extend every trajectory lane past the
  // counted window, touch every metrics site, and grow the query scratch.
  for (std::uint32_t i = 0; i < n; ++i) index.insert(node_id(i), snapshot[i]);
  for (std::uint32_t i = 0; i < n; ++i) {
    index.update(node_id(i), waypoint.position(node_id(i), t_end));
  }
  std::vector<NodeId> scratch;
  scratch.reserve(4096);
  index.within_into(index.position(node_id(0)), radius, node_id(0), scratch);

  std::uint64_t mobility_allocs = 0;
  double mobility_secs = 0.0;
  std::uint64_t queries = 0;
  const obs::prof::CounterTotals mobility_counters = counter_set.measure([&] {
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    std::uint32_t query_cursor = 0;
    for (std::size_t step = 1; step <= mobility_steps; ++step) {
      const TimePoint t = kSimStart + seconds(dt * static_cast<double>(step));
      for (std::uint32_t i = 0; i < n; ++i) {
        index.update(node_id(i), waypoint.position(node_id(i), t));
      }
      for (std::size_t q = 0; q < queries_per_step; ++q) {
        const NodeId center = node_id(query_cursor);
        index.within_into(index.position(center), radius, center, scratch);
        queries += 1;
        query_cursor = (query_cursor + 1) % static_cast<std::uint32_t>(n);
      }
    }
    mobility_secs = seconds_since(start);
    mobility_allocs = g_allocations.load(std::memory_order_relaxed) - before;
  });
  const std::uint64_t updates = static_cast<std::uint64_t>(mobility_steps) * n;
  const double updates_per_sec = static_cast<double>(updates) / mobility_secs;
  const double steps_per_sec = static_cast<double>(mobility_steps) / mobility_secs;
  std::printf("mobility: %llu updates in %.3f s (%.0f updates/s, %.2f steps/s), %llu queries, "
              "%llu steady-state allocs\n",
              static_cast<unsigned long long>(updates), mobility_secs, updates_per_sec,
              steps_per_sec, static_cast<unsigned long long>(queries),
              static_cast<unsigned long long>(mobility_allocs));

  // --- [3] event storm through the slab queue ------------------------------
  sim::EventQueue queue;
  std::uint64_t fired = 0;
  std::vector<sim::EventQueue::EventHandle> handles;
  handles.reserve(storm_batch);
  // Warm-up round: grows the heap vector, the slot slab, the free list, and
  // the handle scratch to their steady-state capacities.
  for (std::uint64_t i = 0; i < storm_batch; ++i) {
    handles.push_back(
        queue.schedule_after(seconds(1e-3 * static_cast<double>(i + 1)), [&fired] { ++fired; }));
  }
  for (std::uint64_t i = 0; i < storm_batch; i += 4) (void)queue.cancel(handles[i]);
  (void)queue.run_until(queue.now() + seconds(1e-3 * static_cast<double>(storm_batch + 1)));
  handles.clear();

  std::uint64_t event_allocs = 0;
  double event_secs = 0.0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  const obs::prof::CounterTotals event_counters = counter_set.measure([&] {
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    for (std::uint64_t round = 0; round < storm_rounds; ++round) {
      for (std::uint64_t i = 0; i < storm_batch; ++i) {
        handles.push_back(queue.schedule_after(seconds(1e-3 * static_cast<double>(i + 1)),
                                               [&fired] { ++fired; }));
      }
      scheduled += storm_batch;
      for (std::uint64_t i = 0; i < storm_batch; i += 4) {
        cancelled += queue.cancel(handles[i]) ? 1u : 0u;
      }
      (void)queue.run_until(queue.now() + seconds(1e-3 * static_cast<double>(storm_batch + 1)));
      handles.clear();
    }
    event_secs = seconds_since(start);
    event_allocs = g_allocations.load(std::memory_order_relaxed) - before;
  });
  const std::uint64_t churned = scheduled + cancelled;
  const double events_per_sec = static_cast<double>(scheduled) / event_secs;
  std::printf("events: %llu scheduled / %llu cancelled / %llu fired in %.3f s "
              "(%.0f events/s), %llu steady-state allocs\n",
              static_cast<unsigned long long>(scheduled),
              static_cast<unsigned long long>(cancelled), static_cast<unsigned long long>(fired),
              event_secs, events_per_sec, static_cast<unsigned long long>(event_allocs));
  if (queue.pending() != 0) {
    std::fprintf(stderr, "FAIL: %zu events left pending after the storm\n", queue.pending());
    return 1;
  }

  // --- summary + JSON -------------------------------------------------------
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  const double peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;

  const obs::MetricsSnapshot metrics = obs::registry().snapshot();
  const auto counter_value = [&metrics](const char* name) -> std::uint64_t {
    for (const auto& c : metrics.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  std::string s1, s2, s3;
  json << "{\n"
       << "  \"bench\": \"scale_sim\",\n"
       << "  \"config\": {\"n\": " << n << ", \"field_m\": " << side << ", \"radius_m\": " << radius
       << ", \"smoke\": " << (smoke ? "true" : "false") << ", \"rebuilds\": " << rebuilds
       << ", \"mobility_steps\": " << mobility_steps << "},\n"
       << "  \"build\": {\"seed_ms_per_rebuild\": " << seed_ms
       << ", \"csr_ms_per_rebuild\": " << csr_ms << ", \"speedup_vs_seed\": " << speedup
       << ", \"rebuilds_per_sec\": " << rebuilds_per_sec << ", \"identical\": true"
       << ", \"cycles\": " << maybe_u64(build_counters.cycles, counters_real, s1) << "},\n"
       << "  \"mobility\": {\"updates\": " << updates << ", \"updates_per_sec\": " << updates_per_sec
       << ", \"steps_per_sec\": " << steps_per_sec << ", \"queries\": " << queries
       << ", \"cell_moves\": " << counter_value("sim.index.cell_moves")
       << ", \"steady_state_allocs\": " << mobility_allocs
       << ", \"cycles\": " << maybe_u64(mobility_counters.cycles, counters_real, s2) << "},\n"
       << "  \"events\": {\"scheduled\": " << scheduled << ", \"cancelled\": " << cancelled
       << ", \"churned\": " << churned << ", \"events_per_sec\": " << events_per_sec
       << ", \"steady_state_allocs\": " << event_allocs
       << ", \"cycles\": " << maybe_u64(event_counters.cycles, counters_real, s3) << "},\n"
       << "  \"rss\": {\"peak_mb\": " << peak_rss_mb << "}\n"
       << "}\n";
  std::printf("peak rss %.1f MB (wrote %s)\n", peak_rss_mb, json_path.c_str());

  if (mobility_allocs != 0 || event_allocs != 0) {
    std::fprintf(stderr, "FAIL: steady-state allocations detected (mobility=%llu events=%llu)\n",
                 static_cast<unsigned long long>(mobility_allocs),
                 static_cast<unsigned long long>(event_allocs));
    return 2;
  }
  return 0;
}
