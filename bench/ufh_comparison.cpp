// Related-work comparison (paper §§I-II): JR-SND vs UFH key establishment
// [3] on the two axes the paper argues about —
//
//   * time for two strangers to establish a usable anti-jamming secret
//     (UFH fragment transfer vs D-NDP's identification + authentication),
//   * DoS exposure of the verification path (UFH's public strategy lets
//     anyone start fragment chains; JR-SND caps waste via revocation).
//
// UFH wins on trust assumptions (no authority, survives full compromise);
// JR-SND wins on latency and DoS resilience in the single-authority MANETs
// it targets — which is exactly the paper's positioning.
#include <iostream>

#include "baselines/ufh.hpp"
#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"

int main() {
  using namespace jrsnd;
  core::Params params = core::Params::defaults();
  params.runs = bench::runs_from_env();
  bench::print_banner("Related-work comparison: UFH [3] vs JR-SND",
                      "Key-establishment latency and DoS exposure", params);

  {
    std::cout << "\n[1] Time to a usable pairwise anti-jamming secret\n";
    core::Table table({"scheme", "config", "latency(s)", "measured(s)"}, 18);

    Rng rng(1);
    for (const std::uint32_t channels : {50u, 200u, 500u}) {
      baselines::UfhParams up;
      up.channels = channels;
      up.jammed_channels = params.z;
      const baselines::UfhFragmentChain chain(up, BitVector::from_bytes(
                                                      std::vector<std::uint8_t>(32, 0xab)));
      baselines::UfhExchange exchange(up, rng);
      core::Stat measured;
      for (std::uint32_t r = 0; r < params.runs; ++r) {
        const auto result = exchange.run(chain);
        if (result.reassembled) measured.add(result.seconds);
      }
      table.add_row(std::vector<std::string>{
          "UFH", "c=" + std::to_string(channels) + ",M=" + std::to_string(up.fragments),
          core::fmt(exchange.expected_transfer_seconds(), 2),
          core::fmt(measured.mean(), 2)});
    }
    table.add_row(std::vector<std::string>{
        "JR-SND D-NDP", "Table I (m=100)",
        core::fmt(core::theorem2_dndp_latency(params), 2), "see fig2 bench"});
    core::Params fast = params;
    fast.m = 40;
    table.add_row(std::vector<std::string>{
        "JR-SND D-NDP", "m=40", core::fmt(core::theorem2_dndp_latency(fast), 2), "-"});
    table.print(std::cout);
  }

  {
    std::cout << "\n[2] DoS exposure: verification work a flooding attacker can force\n";
    core::Table table({"insertions", "UFH_hashes", "JRSND_verifs", "JRSND_bound"}, 14);
    // JR-SND numbers from the revocation model at Table-I settings: the
    // attacker holds E[c] compromised codes, each wasting at most
    // (l-1)(gamma+1) verifications network-wide.
    const double c = core::expected_compromised_codes(params);
    const double bound = c * (params.l - 1) * (params.gamma + 1);
    for (const std::uint64_t flood : {1000ull, 100000ull, 10000000ull}) {
      const std::uint64_t ufh = baselines::ufh_dos_verifications(flood);
      table.add_row(std::vector<std::string>{
          core::fmt(static_cast<double>(flood), 0), core::fmt(static_cast<double>(ufh), 0),
          core::fmt(std::min(static_cast<double>(flood), bound), 0), core::fmt(bound, 0)});
    }
    table.print(std::cout);
    std::cout << "(UFH hash checks are ~us each vs 35.5 ms signature verifications, but\n"
                 " UFH receivers must also buffer and chain-test candidate fragments;\n"
                 " the structural point is the missing cap, not the unit cost)\n";
  }

  std::cout << "\nExpected shape: UFH needs tens of seconds at realistic channel counts\n"
               "(vs < 2 s for D-NDP at m = 100, ~0.3 s at m = 40) and its DoS column\n"
               "grows without bound; JR-SND saturates at the revocation cap.\n";
  return 0;
}
