// google-benchmark microbenches of the primitives every discovery run leans
// on: SHA-256/HMAC, Reed-Solomon encode/decode, spreading/correlation, the
// sliding-window scan, IBC key agreement, and a full D-NDP handshake.
#include <benchmark/benchmark.h>

#include "adversary/jammer.hpp"
#include "common/rng.hpp"
#include "core/abstract_phy.hpp"
#include "core/dndp.hpp"
#include "crypto/hmac.hpp"
#include "crypto/ibc.hpp"
#include "crypto/session_code.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spreader.hpp"
#include "ecc/reed_solomon.hpp"
#include "sim/topology.hpp"

namespace {

using namespace jrsnd;

void BM_Sha256(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(size, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  std::vector<std::uint8_t> key(32, 0x11);
  std::vector<std::uint8_t> msg(static_cast<std::size_t>(state.range(0)), 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, msg));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_IbcSharedKey(benchmark::State& state) {
  const crypto::IbcAuthority authority(1);
  const auto key = authority.issue(node_id(1));
  std::uint32_t peer = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.shared_key(node_id(peer++)));
  }
}
BENCHMARK(BM_IbcSharedKey);

void BM_IbcSignVerify(benchmark::State& state) {
  const crypto::IbcAuthority authority(1);
  const auto key = authority.issue(node_id(1));
  const std::vector<std::uint8_t> msg(128, 0x42);
  for (auto _ : state) {
    const auto sig = key.sign(msg);
    benchmark::DoNotOptimize(authority.oracle()->verify(node_id(1), msg, sig));
  }
}
BENCHMARK(BM_IbcSignVerify);

void BM_SessionCodeDerivation(benchmark::State& state) {
  crypto::SymmetricKey key;
  key.fill(0x5a);
  Rng rng(1);
  BitVector na(20);
  BitVector nb(20);
  for (std::size_t i = 0; i < 20; ++i) {
    na.set(i, rng.bernoulli(0.5));
    nb.set(i, rng.bernoulli(0.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::derive_session_code(key, na, nb, 512));
  }
}
BENCHMARK(BM_SessionCodeDerivation);

void BM_RsEncode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = n / 2;
  const ecc::ReedSolomon rs(n, k);
  Rng rng(1);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(k));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
}
BENCHMARK(BM_RsEncode)->Arg(16)->Arg(64)->Arg(254);

void BM_RsDecodeErrata(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = n / 2;
  const ecc::ReedSolomon rs(n, k);
  Rng rng(2);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(k));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  auto cw = rs.encode(data);
  std::vector<int> erasures;
  for (int i = 0; i < (n - k) / 2; ++i) {
    erasures.push_back(i * 2);
    cw[static_cast<std::size_t>(i * 2)] = 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(cw, erasures));
  }
}
BENCHMARK(BM_RsDecodeErrata)->Arg(16)->Arg(64)->Arg(254);

void BM_Spread(benchmark::State& state) {
  Rng rng(3);
  const dsss::SpreadCode code = dsss::SpreadCode::random(rng, 512);
  BitVector message(42);
  for (std::size_t i = 0; i < 42; ++i) message.set(i, rng.bernoulli(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsss::spread(message, code));
  }
}
BENCHMARK(BM_Spread);

void BM_CorrelateN512(benchmark::State& state) {
  Rng rng(4);
  const dsss::SpreadCode code = dsss::SpreadCode::random(rng, 512);
  BitVector window(512);
  for (std::size_t i = 0; i < 512; ++i) window.set(i, rng.bernoulli(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.correlate(window));
  }
}
BENCHMARK(BM_CorrelateN512);

void BM_SlidingWindowScan(benchmark::State& state) {
  // Scan a buffer of noise + one message with m candidate codes.
  Rng rng(5);
  const std::size_t n = 128;
  const auto m = static_cast<std::size_t>(state.range(0));
  std::vector<dsss::SpreadCode> codes;
  for (std::size_t i = 0; i < m; ++i) codes.push_back(dsss::SpreadCode::random(rng, n));
  BitVector message(8);
  for (std::size_t i = 0; i < 8; ++i) message.set(i, rng.bernoulli(0.5));
  BitVector buffer(300);
  for (std::size_t i = 0; i < 300; ++i) buffer.set(i, rng.bernoulli(0.5));
  buffer.append(dsss::spread(message, codes[m - 1]));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsss::find_first_message(buffer, codes, 8, 0.3));
  }
}
BENCHMARK(BM_SlidingWindowScan)->Arg(1)->Arg(4)->Arg(16);

void BM_FullDndpHandshake(benchmark::State& state) {
  // One complete 4-message D-NDP run (message-level PHY) incl. all crypto.
  core::Params p = core::Params::defaults();
  p.n = 2;
  p.m = 8;
  p.l = 2;
  const predist::CodePoolAuthority authority(p.predist(), Rng(1));
  const crypto::IbcAuthority ibc(2);
  const sim::Field field(100.0, 100.0);
  const sim::Topology topology(field, {{0.0, 0.0}, {10.0, 0.0}}, 50.0);
  Rng phy_rng(3);
  adversary::NullJammer jammer;
  core::AbstractPhy phy(topology, jammer, phy_rng);
  core::DndpEngine engine(p, phy);
  Rng node_rng(4);
  std::vector<core::NodeState> nodes;
  for (std::uint32_t i = 0; i < 2; ++i) {
    nodes.emplace_back(node_id(i), ibc.issue(node_id(i)),
                       authority.assignment().codes_of(node_id(i)), authority, p.gamma,
                       node_rng.split());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(nodes[0], nodes[1]));
  }
}
BENCHMARK(BM_FullDndpHandshake);

}  // namespace

BENCHMARK_MAIN();
