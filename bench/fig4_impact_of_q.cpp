// Figure 4 — impact of q (compromised nodes), for l = 40 (panel a) and
// l = 20 (panel b). All three P-hat curves fall as q grows; the paper
// reports JR-SND ~ 0.5 at (l = 40, q = 60).
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"

int main() {
  using namespace jrsnd;
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Fig. 4: impact of q",
                      "P-hat vs q in [0, 100], for l = 40 (a) and l = 20 (b)", cfg.params);

  for (const std::uint32_t l : {40u, 20u}) {
    core::Table table({"q", "P_dndp", "P_mndp", "P_jrsnd", "P-_thm1", "alpha", "c_codes"});
    for (const std::uint32_t q : {0u, 10u, 20u, 40u, 60u, 80u, 100u}) {
      core::ExperimentConfig point = cfg;
      point.params.l = l;
      point.params.q = q;
      const core::PointResult r = bench::run_point(
          point, "l=" + std::to_string(l) + " q=" + std::to_string(q));
      const core::Theorem1Result t1 = core::theorem1(point.params);
      table.add_row({static_cast<double>(q), r.p_dndp.mean(), r.p_mndp.mean(),
                     r.p_jrsnd.mean(), t1.p_lower, t1.alpha, r.compromised_codes.mean()});
    }
    std::cout << "\nFig. 4(" << (l == 40 ? 'a' : 'b') << "): discovery probability vs q (l = "
              << l << ")\n";
    table.print(std::cout);
    bench::write_csv_if_requested(l == 40 ? "fig4a_probability_vs_q_l40"
                                          : "fig4b_probability_vs_q_l20",
                                  table);
  }

  std::cout << "\nExpected shape: every curve decreases in q; at l = 40, q = 60 JR-SND\n"
               "drops to roughly 0.5; smaller l (panel b) degrades more slowly because\n"
               "each captured node leaks codes shared by fewer others.\n";
  return 0;
}
