// §V-D — resilience to the verification-flooding DoS attack.
//
// The paper's claim: public-code-set schemes [2]-[10] let the adversary
// force unbounded signature verifications, while JR-SND caps the network-
// wide waste per compromised code at (l-1)(gamma+1) verifications via local
// revocation. This bench floods both designs with growing request budgets
// and prints the verification work (count and CPU time at t_ver = 35.5 ms).
#include <iostream>
#include <vector>

#include "adversary/compromise.hpp"
#include "adversary/dos_attacker.hpp"
#include "baselines/public_code_set.hpp"
#include "bench_util.hpp"
#include "core/metrics.hpp"
#include "crypto/verify_queue.hpp"
#include "predist/authority.hpp"

int main() {
  using namespace jrsnd;
  core::Params p = core::Params::defaults();
  p.runs = bench::runs_from_env();
  bench::print_banner("DoS resilience (paper §V-D)",
                      "Verification flood: JR-SND w/ revocation vs public-code-set baseline",
                      p);

  // One representative world.
  predist::CodePoolAuthority authority(p.predist(), Rng(1));
  Rng rng(2);
  const adversary::CompromiseModel compromise(authority.assignment(), p.q, rng);
  const auto codes = compromise.compromised_codes();
  std::cout << "\ncompromised nodes: " << p.q << ", compromised codes: " << codes.size()
            << ", gamma: " << p.gamma << "\n";

  core::Table table({"flood/code", "jrsnd_verif", "jrsnd_cpu_s", "public_verif",
                     "public_cpu_s", "jrsnd_bound"},
                    14);
  // Public baseline: each injected request is heard by ~g nodes that must
  // all verify it (no revocation possible).
  const std::uint64_t receivers = 22;
  for (const std::uint64_t flood : {10ull, 100ull, 1000ull, 10000ull, 100000ull}) {
    adversary::DosCampaign campaign(authority.assignment(), codes,
                                    compromise.compromised_nodes(), p.gamma, p.t_ver);
    const adversary::DosCampaignResult r = campaign.run(flood);
    const std::uint64_t public_verifs = baselines::PublicCodeSetScheme::dos_verifications(
        flood * codes.size(), receivers);
    table.add_row(std::vector<std::string>{
        core::fmt(static_cast<double>(flood), 0),
        core::fmt(static_cast<double>(r.verifications), 0),
        core::fmt(r.verification_time_s, 1),
        core::fmt(static_cast<double>(public_verifs), 0),
        core::fmt(static_cast<double>(public_verifs) * p.t_ver, 1),
        core::fmt(static_cast<double>(campaign.total_verification_bound()), 0)});
  }
  table.print(std::cout);
  bench::write_csv_if_requested("dos_resilience", table);

  std::cout << "\nExpected shape: JR-SND's verification work saturates at the revocation\n"
               "bound regardless of the attacker's budget; the public-code-set baseline\n"
               "grows linearly without limit (its CPU column is the network-wide\n"
               "signature-verification time burned, at t_ver = 35.5 ms each).\n";

  // Measured receiver throughput under the same flood: actual handshakes/sec
  // a single receiver sustains through the batched verification pipeline vs
  // the historical one-at-a-time decode (bench/dos_throughput is the gated
  // version of this measurement; here it contextualizes the model above).
  std::cout << "\nreceiver verification throughput (measured, handshakes/sec):\n";
  adversary::HandshakeFloodSource source(core::WireConfig{}, /*authority_seed=*/77,
                                         /*peer_count=*/16, /*rng_seed=*/20110620);
  crypto::VerifyQueue queue(source.verify_wire());
  core::Table hs_table({"attacker:honest", "one_shot_hps", "batched_hps", "speedup"}, 16);
  for (const std::uint32_t ratio : {1u, 10u, 100u}) {
    const std::vector<adversary::FloodFrame> flood = source.make_batch(512, ratio);
    const adversary::FloodThroughput one_shot = adversary::measure_one_shot_throughput(
        source.verify_wire(), flood, source.key_source(), source.expected_code(), 0.2);
    queue.clear_key_cache();
    const adversary::FloodThroughput batched = adversary::measure_batched_throughput(
        queue, flood, source.key_source(), source.expected_code(), 0.2);
    hs_table.add_row(std::vector<std::string>{
        core::fmt(static_cast<double>(ratio), 0) + ":1",
        core::fmt(one_shot.frames_per_sec(), 0), core::fmt(batched.frames_per_sec(), 0),
        core::fmt(batched.frames_per_sec() / one_shot.frames_per_sec(), 1) + "x"});
  }
  hs_table.print(std::cout);
  bench::write_csv_if_requested("dos_resilience_throughput", hs_table);
  return 0;
}
