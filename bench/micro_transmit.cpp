// Microbench for the cached transmit pipeline (docs/performance.md).
//
//  [1] End-to-end HELLO transmit at the paper's N = 512: the pre-caching
//      pipeline (per-chip channel superposition, allocating spread/receive,
//      per-call ShiftTable builds, per-message EccCodec layout + RS
//      construction) vs the cached ChipPhy::transmit_into (PreparedCodebook,
//      scratch arena, RS clean-path early exit). Bit-identity is verified
//      draw-for-draw over a batch of messages BEFORE any timing; the cached
//      path must then be >= 3x the reconstructed baseline.
//  [2] Rescan iteration cost: a resumed sliding-window scan with cached
//      tables vs the per-call table rebuild the rescan loop used to pay.
//  [3] Reed-Solomon clean-path decode: the all-zero-syndrome early exit vs
//      the full Sugiyama/Chien/Forney pipeline on clean codewords.
//  [4] Seal throughput: midstate-cached Sealer vs an uncached reference
//      (fresh key schedules + per-field info-string concatenation per frame).
//
// Writes a machine-readable summary to BENCH_transmit.json (path overridable
// as argv[1]) so CI can archive throughput next to the commit.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "adversary/jammer.hpp"
#include "common/rng.hpp"
#include "core/chip_phy.hpp"
#include "crypto/stream.hpp"
#include "dsss/prepared_codebook.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spread_code.hpp"
#include "dsss/spreader.hpp"
#include "ecc/ecc_codec.hpp"
#include "ecc/reed_solomon.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/prof/perf_counters.hpp"
#include "sim/topology.hpp"

namespace {

using jrsnd::BitVector;
using jrsnd::Rng;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

/// Repeats `op` until ~0.3 s elapsed; returns seconds per operation.
template <typename Op>
double time_op(Op&& op) {
  op();  // warm-up
  std::size_t passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    op();
    ++passes;
    elapsed = seconds_since(start);
  } while (elapsed < 0.3);
  return elapsed / static_cast<double>(passes);
}

/// The transmit pipeline as it stood before the caching layer, reconstructed
/// so the speedup is measured against the true historical baseline. Consumes
/// rng draws in exactly the same order as ChipPhy::transmit_into (pad draw,
/// then one bernoulli per uncovered chip in index order), so running both
/// from equal-seeded generators must yield bit-identical deliveries.
std::optional<BitVector> baseline_transmit(const jrsnd::core::Params& params,
                                           const jrsnd::dsss::SpreadCode& code,
                                           std::span<const jrsnd::dsss::SpreadCode> codebook,
                                           const BitVector& payload, Rng& rng) {
  namespace dsss = jrsnd::dsss;
  // Fresh codec per message: the layout and the RS generator + encode table
  // were pure per-call functions before the codec-level caches.
  const jrsnd::ecc::EccCodec codec(params.mu);
  const BitVector coded = codec.encode(payload);
  const BitVector chips = dsss::spread(coded, code);
  const std::size_t n = code.length();

  const std::size_t pad_before = static_cast<std::size_t>(rng.uniform(2 * n));
  const std::size_t pad_after = n;
  const std::size_t duration = pad_before + chips.size() + pad_after;

  // Per-chip channel superposition into freshly zeroed soft/active arrays —
  // the pre-arena ChipChannel.
  std::vector<int> soft(duration, 0);
  std::vector<std::uint8_t> active(duration, 0);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    soft[pad_before + i] += chips.get(i) ? 1 : -1;
    active[pad_before + i] = 1;
  }
  BitVector received;
  for (std::size_t i = 0; i < duration; ++i) {
    const bool up = (active[i] && soft[i] != 0) ? soft[i] > 0 : rng.bernoulli(0.5);
    received.push_back(up);
  }

  // Recover-and-rescan with the span overload: ShiftTables are rebuilt on
  // every (re)scan call, and the decode-side codec is constructed anew.
  const jrsnd::ecc::EccCodec decode_codec(params.mu);
  std::size_t offset = 0;
  while (true) {
    const auto hit = dsss::find_first_message(received, codebook, coded.size(), params.tau, offset);
    if (!hit.has_value()) return std::nullopt;
    auto decoded = decode_codec.decode(hit->message.bits, payload.size(),
                                       std::span<const std::size_t>(hit->message.erased_bits));
    if (decoded.has_value()) return decoded;
    offset = hit->chip_offset + 1;
  }
}

/// Uncached seal reference: fresh key derivations and per-field info-string
/// concatenation per frame (the pre-HmacKey Sealer, minus counter state).
jrsnd::crypto::SealedMessage baseline_seal(const jrsnd::crypto::SymmetricKey& pair_key,
                                           std::uint64_t counter,
                                           std::span<const std::uint8_t> plaintext) {
  namespace crypto = jrsnd::crypto;
  const crypto::SymmetricKey enc = crypto::derive_key(pair_key, "enc:a->b");
  const crypto::SymmetricKey mac = crypto::derive_key(pair_key, "mac:a->b");
  const auto be64_string = [](std::uint64_t v) {
    std::string s;
    for (int i = 7; i >= 0; --i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    return s;
  };
  crypto::SealedMessage msg;
  msg.counter = counter;
  std::vector<std::uint8_t> ks;
  for (std::uint64_t chunk = 0; ks.size() < plaintext.size(); ++chunk) {
    const std::string info = "ctr:" + be64_string(counter) + ":" + be64_string(chunk);
    const auto part = crypto::expand(
        enc, info, std::min<std::size_t>(255 * jrsnd::crypto::kSha256DigestSize,
                                         plaintext.size() - ks.size()));
    ks.insert(ks.end(), part.begin(), part.end());
  }
  msg.ciphertext.resize(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    msg.ciphertext[i] = static_cast<std::uint8_t>(plaintext[i] ^ ks[i]);
  }
  std::vector<std::uint8_t> mac_input;
  for (int i = 7; i >= 0; --i) mac_input.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  mac_input.insert(mac_input.end(), msg.ciphertext.begin(), msg.ciphertext.end());
  const crypto::Sha256Digest digest = crypto::hmac_sha256(mac, mac_input);
  std::copy(digest.begin(), digest.begin() + jrsnd::crypto::kSealTagBytes, msg.tag.begin());
  return msg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jrsnd;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_transmit.json";

  // --- [1] end-to-end HELLO transmit ---------------------------------------
  core::Params params = core::Params::defaults();
  params.N = 512;    // Table-I spreading-code length
  params.tau = 0.3;  // clean-channel scans: no false locks at 512 chips
  constexpr std::size_t kCodebook = 5;  // receiver candidate codes per HELLO
  constexpr std::size_t kPayloadBits = 96;
  constexpr std::uint64_t kSeed = 20110620;
  constexpr int kVerifyMessages = 64;

  Rng setup_rng(1);
  std::vector<dsss::SpreadCode> codes;
  for (std::size_t i = 0; i < kCodebook; ++i) {
    codes.push_back(dsss::SpreadCode::random(setup_rng, params.N, code_id(static_cast<std::uint32_t>(i))));
  }
  const dsss::SpreadCode& tx_code = codes[2];
  const BitVector payload = random_bits(setup_rng, kPayloadBits);

  const sim::Field field{100.0, 100.0};
  const sim::Topology topology(field, {{10, 10}, {20, 10}}, 50.0);
  const adversary::NullJammer clean;
  const dsss::PreparedCodebook prepared(codes);
  const core::TxCode tx{tx_code.id(), &tx_code};

  std::printf("transmit: N=%zu codebook=%zu payload=%zu bits, HELLO scan, clean channel\n",
              params.N, kCodebook, kPayloadBits);

  // Bit-identity before any timing: equal-seeded generators, message by
  // message — delivery flags and decoded payloads must agree exactly.
  {
    Rng rng_base(kSeed);
    Rng rng_fast(kSeed);
    core::ChipPhy phy(
        params, topology, clean,
        [&prepared](NodeId) -> const dsss::PreparedCodebook& { return prepared; }, rng_fast);
    BitVector out;
    for (int i = 0; i < kVerifyMessages; ++i) {
      const auto want = baseline_transmit(params, tx_code, codes, payload, rng_base);
      const bool ok =
          phy.transmit_into(node_id(0), node_id(1), tx, core::TxClass::Hello, payload, out);
      if (ok != want.has_value() || (ok && out != *want)) {
        std::fprintf(stderr, "FATAL: cached transmit differs from baseline at message %d\n", i);
        return 1;
      }
      if (!ok) {
        std::fprintf(stderr, "FATAL: clean-channel message %d not delivered\n", i);
        return 1;
      }
    }
    std::printf("  bit-identity: %d/%d messages identical to the uncached baseline\n",
                kVerifyMessages, kVerifyMessages);
  }

  Rng rng_base(kSeed);
  const double baseline_secs = time_op([&] {
    if (!baseline_transmit(params, tx_code, codes, payload, rng_base).has_value()) std::abort();
  });

  Rng rng_fast(kSeed);
  core::ChipPhy phy(
      params, topology, clean,
      [&prepared](NodeId) -> const dsss::PreparedCodebook& { return prepared; }, rng_fast);
  BitVector out;
  const double cached_secs = time_op([&] {
    if (!phy.transmit_into(node_id(0), node_id(1), tx, core::TxClass::Hello, payload, out)) {
      std::abort();
    }
  });

  const double transmit_speedup = baseline_secs / cached_secs;
  std::printf("  uncached  %8.3f ms/msg  %7.1f msg/s\n", baseline_secs * 1e3, 1.0 / baseline_secs);
  std::printf("  cached    %8.3f ms/msg  %7.1f msg/s  (%.1fx)\n", cached_secs * 1e3,
              1.0 / cached_secs, transmit_speedup);
  if (transmit_speedup < 3.0) {
    std::fprintf(stderr, "WARNING: transmit speedup %.1fx below the 3x acceptance floor\n",
                 transmit_speedup);
  }

  // --- [1b] hardware counters over the cached transmit ----------------------
  // Architecture-level numbers for the committed hot path: cycles per
  // message and IPC over a fixed batch. Fallback semantics as in
  // micro_sync_kernel — "backend"/"estimated" gate what check_perf.py
  // may compare.
  obs::prof::PerfCounterSet counter_set;
  constexpr std::size_t kCounterMessages = 64;
  const obs::prof::CounterTotals tx_counters = counter_set.measure([&] {
    for (std::size_t i = 0; i < kCounterMessages; ++i) {
      if (!phy.transmit_into(node_id(0), node_id(1), tx, core::TxClass::Hello, payload, out)) {
        std::abort();
      }
    }
  });
  const double cycles_per_msg =
      static_cast<double>(tx_counters.cycles) / static_cast<double>(kCounterMessages);
  std::printf("  counters  [%s%s] %.3g cycles/msg  IPC %.2f  %.3g LLC-miss/kinst\n",
              obs::prof::backend_name(counter_set.backend()),
              tx_counters.estimated ? ", estimated" : "", cycles_per_msg, tx_counters.ipc(),
              tx_counters.llc_misses_per_kinst());

  // --- [2] rescan iteration: cached tables vs per-call rebuild -------------
  Rng rescan_rng(9);
  const BitVector noise = random_bits(rescan_rng, 2048);
  constexpr std::size_t kRescanBits = 3;
  double rescan_uncached_secs = 0.0;
  double rescan_cached_secs = 0.0;
  {
    const std::span<const dsss::SpreadCode> span_codes(codes);
    rescan_uncached_secs = time_op([&] {
      if (dsss::find_first_message(noise, span_codes, kRescanBits, params.tau).has_value()) {
        std::abort();
      }
    });
    dsss::SyncHit hit;
    rescan_cached_secs = time_op([&] {
      if (dsss::find_first_message_into(noise, prepared, kRescanBits, params.tau, 0, hit)) {
        std::abort();
      }
    });
  }
  const double rescan_speedup = rescan_uncached_secs / rescan_cached_secs;
  std::printf("rescan (%zu-bit window over %zu chips, %zu codes):\n", kRescanBits, noise.size(),
              kCodebook);
  std::printf("  per-call tables %8.1f us/scan\n", rescan_uncached_secs * 1e6);
  std::printf("  cached tables   %8.1f us/scan  (%.1fx)\n", rescan_cached_secs * 1e6,
              rescan_speedup);

  // --- [3] RS clean-path decode: early exit vs forced full pipeline --------
  const ecc::ReedSolomon rs(64, 32);  // the paper's mu = 1 rate-1/2 shape
  Rng rs_rng(13);
  std::vector<std::uint8_t> data(32);
  for (auto& b : data) b = static_cast<std::uint8_t>(rs_rng.uniform(256));
  const auto codeword = rs.encode(data);
  ecc::ReedSolomon::DecodeScratch rs_scratch;
  std::vector<std::uint8_t> rs_out;
  const double rs_full_secs = time_op([&] {
    if (!rs.decode_into(codeword, {}, rs_out, rs_scratch,
                        ecc::ReedSolomon::DecodeMode::kForceFull)) {
      std::abort();
    }
  });
  const double rs_clean_secs = time_op([&] {
    if (!rs.decode_into(codeword, {}, rs_out, rs_scratch)) std::abort();
  });
  const double rs_speedup = rs_full_secs / rs_clean_secs;
  std::printf("rs decode RS(64,32), clean codeword:\n");
  std::printf("  full pipeline %8.2f us/decode\n", rs_full_secs * 1e6);
  std::printf("  early exit    %8.2f us/decode  (%.1fx)\n", rs_clean_secs * 1e6, rs_speedup);

  // --- [4] seal: midstate-cached Sealer vs uncached reference --------------
  const crypto::SymmetricKey pair_key = [] {
    crypto::SymmetricKey k;
    k.fill(0x42);
    return k;
  }();
  std::vector<std::uint8_t> plaintext(128);
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    plaintext[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  // Equivalence first: same counter, same frame.
  {
    crypto::Sealer sealer(pair_key, "a->b");
    const crypto::SealedMessage fast = sealer.seal(plaintext);
    const crypto::SealedMessage slow = baseline_seal(pair_key, fast.counter, plaintext);
    if (fast.ciphertext != slow.ciphertext || fast.tag != slow.tag) {
      std::fprintf(stderr, "FATAL: cached seal differs from the uncached reference\n");
      return 1;
    }
  }
  std::uint64_t counter = 1;
  const double seal_uncached_secs =
      time_op([&] { (void)baseline_seal(pair_key, counter++, plaintext); });
  crypto::Sealer sealer(pair_key, "a->b");
  const double seal_cached_secs = time_op([&] { (void)sealer.seal(plaintext); });
  const double seal_speedup = seal_uncached_secs / seal_cached_secs;
  std::printf("seal (%zu-byte frames):\n", plaintext.size());
  std::printf("  uncached %8.2f us/frame\n", seal_uncached_secs * 1e6);
  std::printf("  cached   %8.2f us/frame  (%.1fx)\n", seal_cached_secs * 1e6, seal_speedup);

  // --- [5] observability overhead on the transmit hot path -----------------
  // The span + flight-recorder instrumentation rides inside transmit_into;
  // flipping the recorder off isolates its steady-state cost. Budget: the
  // always-on planes (flight ring + span bookkeeping, JSONL tracing off)
  // must stay under 5% of the committed transmit baseline.
  obs::set_flight_enabled(false);
  const double obs_off_secs = time_op([&] {
    if (!phy.transmit_into(node_id(0), node_id(1), tx, core::TxClass::Hello, payload, out)) {
      std::abort();
    }
  });
  obs::set_flight_enabled(true);
  const double obs_on_secs = time_op([&] {
    if (!phy.transmit_into(node_id(0), node_id(1), tx, core::TxClass::Hello, payload, out)) {
      std::abort();
    }
  });
  const double obs_overhead_pct = 100.0 * (obs_on_secs - obs_off_secs) / obs_off_secs;
  std::printf("obs overhead (span + flight recorder, tracing off):\n");
  std::printf("  recorder off %8.3f ms/msg\n", obs_off_secs * 1e3);
  std::printf("  recorder on  %8.3f ms/msg  (%+.1f%%)\n", obs_on_secs * 1e3, obs_overhead_pct);
  if (obs_overhead_pct > 5.0) {
    std::fprintf(stderr, "WARNING: obs overhead %.1f%% above the 5%% acceptance budget\n",
                 obs_overhead_pct);
  }

  // --- machine-readable summary --------------------------------------------
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return 0;
  }
  json << "{\n"
       << "  \"obs_overhead\": {\n"
       << "    \"recorder_off_ms_per_msg\": " << obs_off_secs * 1e3 << ",\n"
       << "    \"recorder_on_ms_per_msg\": " << obs_on_secs * 1e3 << ",\n"
       << "    \"overhead_pct\": " << obs_overhead_pct << "\n"
       << "  },\n"
       << "  \"transmit\": {\n"
       << "    \"N\": " << params.N << ",\n"
       << "    \"codebook\": " << kCodebook << ",\n"
       << "    \"payload_bits\": " << kPayloadBits << ",\n"
       << "    \"messages_verified\": " << kVerifyMessages << ",\n"
       << "    \"bit_identical\": true,\n"
       << "    \"uncached_ms_per_msg\": " << baseline_secs * 1e3 << ",\n"
       << "    \"cached_ms_per_msg\": " << cached_secs * 1e3 << ",\n"
       << "    \"speedup\": " << transmit_speedup << ",\n"
       << "    \"counters\": {\n"
       << "      \"backend\": \"" << obs::prof::backend_name(counter_set.backend()) << "\",\n"
       << "      \"estimated\": " << (tx_counters.estimated ? "true" : "false") << ",\n"
       << "      \"messages\": " << kCounterMessages << ",\n"
       << "      \"cycles_per_msg\": " << cycles_per_msg << ",\n"
       << "      \"ipc\": " << tx_counters.ipc() << ",\n"
       << "      \"llc_misses_per_kinst\": " << tx_counters.llc_misses_per_kinst() << ",\n"
       << "      \"task_clock_ms\": " << static_cast<double>(tx_counters.task_clock_ns) / 1e6
       << "\n"
       << "    }\n"
       << "  },\n"
       << "  \"rescan\": {\n"
       << "    \"buffer_chips\": " << noise.size() << ",\n"
       << "    \"per_call_tables_us_per_scan\": " << rescan_uncached_secs * 1e6 << ",\n"
       << "    \"cached_tables_us_per_scan\": " << rescan_cached_secs * 1e6 << ",\n"
       << "    \"speedup\": " << rescan_speedup << "\n"
       << "  },\n"
       << "  \"rs_decode_clean\": {\n"
       << "    \"n\": 64,\n"
       << "    \"k\": 32,\n"
       << "    \"full_us_per_decode\": " << rs_full_secs * 1e6 << ",\n"
       << "    \"early_exit_us_per_decode\": " << rs_clean_secs * 1e6 << ",\n"
       << "    \"speedup\": " << rs_speedup << "\n"
       << "  },\n"
       << "  \"seal\": {\n"
       << "    \"frame_bytes\": " << plaintext.size() << ",\n"
       << "    \"uncached_us_per_frame\": " << seal_uncached_secs * 1e6 << ",\n"
       << "    \"cached_us_per_frame\": " << seal_cached_secs * 1e6 << ",\n"
       << "    \"speedup\": " << seal_speedup << "\n"
       << "  }\n"
       << "}\n";
  std::printf("(wrote %s)\n", json_path.c_str());
  return 0;
}
