// §VI-A vs §VI-B — closed-form analysis against simulation, and the two
// M-NDP evaluation planes against each other.
//
//  1. D-NDP discovery probability under reactive and random jamming vs the
//     Theorem-1 bounds P^- and P^+ (reactive should sit on P^-, random in
//     between).
//  2. Sampled D-NDP latency vs Theorem 2's expectation.
//  3. The graph-level M-NDP evaluation vs the full protocol engine with its
//     signature chains (smaller n so the full engine stays affordable).
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/schedule_sim.hpp"

int main() {
  using namespace jrsnd;
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Analysis vs simulation (§VI-A vs §VI-B)",
                      "Theorems 1-4 against measured values; graph vs full M-NDP engine",
                      cfg.params);

  {
    std::cout << "\n[1] D-NDP probability vs Theorem 1 bounds (sweep q)\n";
    core::Table table({"q", "sim_react", "sim_random", "P-_thm1", "P+_thm1"});
    for (const std::uint32_t q : {0u, 20u, 40u, 60u, 100u}) {
      core::ExperimentConfig point = cfg;
      point.params.q = q;
      point.jammer = core::JammerKind::Reactive;
      const double reactive =
          bench::run_point(point, "q=" + std::to_string(q) + " reactive").p_dndp.mean();
      point.jammer = core::JammerKind::Random;
      const double random_j =
          bench::run_point(point, "q=" + std::to_string(q) + " random").p_dndp.mean();
      const core::Theorem1Result t1 = core::theorem1(point.params);
      table.add_row({static_cast<double>(q), reactive, random_j, t1.p_lower, t1.p_upper});
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n[2] D-NDP latency: sampled mean vs Theorem 2 (sweep m)\n";
    core::Table table({"m", "sim_T_dndp", "thm2_T_dndp", "rel_err"});
    for (const std::uint32_t m : {20u, 60u, 100u, 140u, 200u}) {
      core::ExperimentConfig point = cfg;
      point.params.m = m;
      const core::PointResult r = bench::run_point(point, "m=" + std::to_string(m));
      const double t2 = core::theorem2_dndp_latency(point.params);
      table.add_row({static_cast<double>(m), r.latency_dndp.mean(), t2,
                     (r.latency_dndp.mean() - t2) / t2});
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n[3] M-NDP: graph-level evaluation vs full protocol engine "
                 "(n = 400, 2 km field)\n";
    core::Table table({"q", "P_m_graph", "P_m_engine", "sig_verifs", "false_pos"});
    for (const std::uint32_t q : {5u, 15u, 30u}) {
      core::ExperimentConfig point = cfg;
      point.params.n = 400;
      point.params.q = q;
      point.params.field_width = 2000.0;
      point.params.field_height = 2000.0;
      point.params.runs = std::max(2u, point.params.runs / 5);
      point.mndp_rounds = 1;  // the engine runs one sweep: compare like for like

      point.full_mndp = false;
      const double graph =
          bench::run_point(point, "q=" + std::to_string(q) + " graph").p_mndp_conditional.mean();
      point.full_mndp = true;
      const core::DiscoverySimulator full_sim(point);
      core::Stat engine_p;
      double verifs = 0.0;
      double false_pos = 0.0;
      for (std::uint32_t run = 0; run < point.params.runs; ++run) {
        const core::RunResult r = full_sim.run_once(point.base_seed + run);
        if (r.p_mndp_defined) engine_p.add(r.p_mndp_conditional);
        verifs += static_cast<double>(r.mndp_stats.signature_verifications);
        false_pos += static_cast<double>(r.mndp_stats.false_positive_responses);
      }
      table.add_row({static_cast<double>(q), graph, engine_p.mean(),
                     verifs / point.params.runs, false_pos / point.params.runs});
    }
    table.print(std::cout);
    std::cout << "(the engine runs one sweep but within it later initiations already ride\n"
                 " links earlier ones established, so at heavy compromise it recovers a\n"
                 " little more than the static single-round graph closure)\n";
  }

  {
    std::cout << "\n[4] Identification latency: Theorem 2's uniform-residual model vs the\n"
                 "    event-accurate buffering/processing schedule (sweep m)\n";
    core::Table table({"m", "schedule_Ti", "thm2_Ti", "rel_err"});
    Rng rng(7);
    for (const std::uint32_t m : {20u, 60u, 100u, 140u, 200u}) {
      core::Params p = cfg.params;
      p.m = m;
      const dsss::TimingModel timing(p.timing());
      const core::ScheduleSimulator sched(timing);
      const double measured = sched.mean_identification(2000, rng).seconds();
      const double theorem = p.rho * m * (3.0 * m + 4.0) * static_cast<double>(p.N) *
                             static_cast<double>(p.N) * p.l_h() / 2.0;
      table.add_row({static_cast<double>(m), measured, theorem,
                     (measured - theorem) / theorem});
    }
    table.print(std::cout);
    std::cout << "(the schedule includes the buffer-capture delay t_b the theorem drops,\n"
                 " so a positive bias of order t_b/t_p = 1/lambda is expected: large at\n"
                 " small m where lambda ~ 2, shrinking to ~5% by m = 200)\n";
  }

  std::cout << "\nExpected shape: reactive sim ~ P^-; random sim between the bounds;\n"
               "sampled latency within ~2% of Theorem 2; graph-level and protocol-level\n"
               "M-NDP agree closely (the engine also reports its verification load and\n"
               "the false-positive responses the GPS filter would remove).\n";
  return 0;
}
