// Table I — the default evaluation parameters, plus every quantity the
// system derives from them (pool size, timing model, analysis values).
// Serves as the parameter cross-check for all other benches.
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/latency.hpp"
#include "core/metrics.hpp"
#include "dsss/correlator.hpp"

int main() {
  using namespace jrsnd;
  const core::Params p = core::Params::defaults();
  bench::print_banner("Table I: default evaluation parameters",
                      "Paper values and the quantities jrsnd derives from them", p);

  core::Table table({"parameter", "value", "unit"}, 16);
  const auto row = [&table](const std::string& name, double value, const std::string& unit,
                            int precision = 4) {
    table.add_row(std::vector<std::string>{name, core::fmt(value, precision), unit});
  };

  row("n", p.n, "nodes", 0);
  row("m", p.m, "codes/node", 0);
  row("l", p.l, "holders/code", 0);
  row("q", p.q, "captured", 0);
  row("N", static_cast<double>(p.N), "chips", 0);
  row("R", p.R / 1e6, "Mchip/s", 0);
  row("rho", p.rho * 1e12, "ps/bit", 0);
  row("mu", p.mu, "", 2);
  row("nu", p.nu, "hops", 0);
  row("l_t", p.l_t, "bits", 0);
  row("l_id", p.l_id, "bits", 0);
  row("l_n", p.l_n, "bits", 0);
  row("l_mac", p.l_mac, "bits", 0);
  row("l_nu", p.l_nu, "bits", 0);
  row("l_sig", p.l_sig, "bits", 0);
  row("t_key", p.t_key * 1e3, "ms", 1);
  row("t_sig", p.t_sig * 1e3, "ms", 1);
  row("t_ver", p.t_ver * 1e3, "ms", 1);
  table.print(std::cout);

  std::cout << "\nDerived quantities:\n";
  core::Table derived({"quantity", "value", "note"}, 18);
  const dsss::TimingModel t(p.timing());
  derived.add_row(std::vector<std::string>{"pool size s", core::fmt(p.pool_size(), 0),
                                           "s = ceil(n/l) * m"});
  derived.add_row(std::vector<std::string>{"l_h", core::fmt(p.l_h(), 0),
                                           "(1+mu)(l_t+l_id) coded HELLO bits"});
  derived.add_row(std::vector<std::string>{"l_f", core::fmt(p.l_f(), 0),
                                           "(1+mu)(l_id+l_n+l_mac) coded auth bits"});
  derived.add_row(std::vector<std::string>{"t_h (us)", core::fmt(t.hello_time().micros(), 2),
                                           "l_h N / R"});
  derived.add_row(std::vector<std::string>{"t_b (ms)", core::fmt(t.buffer_time().millis(), 3),
                                           "(m+1) t_h"});
  derived.add_row(std::vector<std::string>{"lambda", core::fmt(t.lambda(), 2),
                                           "rho N m R"});
  derived.add_row(std::vector<std::string>{"t_p (ms)",
                                           core::fmt(t.processing_time().millis(), 3),
                                           "lambda t_b"});
  derived.add_row(std::vector<std::string>{"r", core::fmt(static_cast<double>(t.hello_rounds()), 0),
                                           "ceil((lambda+1)(m+1)/m) HELLO rounds"});
  derived.add_row(std::vector<std::string>{"tau", core::fmt(p.tau, 2),
                                           "~3.4 sigma at N = 512"});
  derived.add_row(std::vector<std::string>{"false-sync P",
                                           core::fmt(dsss::false_sync_probability(p.N, p.tau), 6),
                                           "per chip position"});
  derived.add_row(std::vector<std::string>{"alpha", core::fmt(core::alpha(p), 4),
                                           "Eq. (2) at Table-I q"});
  derived.add_row(std::vector<std::string>{"E[c]",
                                           core::fmt(core::expected_compromised_codes(p), 1),
                                           "expected compromised codes"});
  derived.add_row(std::vector<std::string>{"T_dndp (s)",
                                           core::fmt(core::theorem2_dndp_latency(p), 3),
                                           "Theorem 2"});
  derived.add_row(std::vector<std::string>{"T_mndp (s)",
                                           core::fmt(core::theorem4_mndp_latency(
                                                         p, core::expected_degree(p)), 3),
                                           "Theorem 4 at expected degree"});
  derived.add_row(std::vector<std::string>{"E[degree] g", core::fmt(core::expected_degree(p), 2),
                                           "(n-1) pi a^2 / area"});
  derived.print(std::cout);
  return 0;
}
