// Figure 3 — impact of l (holders per code) and n (network size).
//
// Panel (a): P-hat vs l. Larger l raises the chance two nodes share a code
// but also the chance any code is compromised; the paper reports a peak
// near l ~ 100 followed by a slow decline.
// Panel (b): P-hat vs n. For fixed (l, m, q), alpha falls as n grows
// (helping D-NDP) while sharing probability falls too (hurting it);
// density rises, which keeps M-NDP and thus JR-SND high.
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"

int main() {
  using namespace jrsnd;
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Fig. 3: impact of l and n",
                      "(a) P-hat vs l in [5, 160]; (b) P-hat vs n in [1000, 4000]",
                      cfg.params);

  {
    core::Table table({"l", "P_dndp", "P_mndp", "P_jrsnd", "P-_thm1", "alpha"});
    for (const std::uint32_t l : {5u, 10u, 20u, 40u, 60u, 80u, 100u, 120u, 160u}) {
      core::ExperimentConfig point = cfg;
      point.params.l = l;
      const core::PointResult r = bench::run_point(point, "l=" + std::to_string(l));
      const core::Theorem1Result t1 = core::theorem1(point.params);
      table.add_row({static_cast<double>(l), r.p_dndp.mean(), r.p_mndp.mean(),
                     r.p_jrsnd.mean(), t1.p_lower, t1.alpha});
    }
    std::cout << "\nFig. 3(a): discovery probability vs l\n";
    table.print(std::cout);
    bench::write_csv_if_requested("fig3a_probability_vs_l", table);
  }

  {
    core::Table table({"n", "P_dndp", "P_mndp", "P_jrsnd", "P-_thm1", "degree"});
    for (const std::uint32_t n : {400u, 600u, 800u, 1000u, 1500u, 2000u, 2500u, 3000u, 4000u}) {
      core::ExperimentConfig point = cfg;
      point.params.n = n;
      const core::PointResult r = bench::run_point(point, "n=" + std::to_string(n));
      const core::Theorem1Result t1 = core::theorem1(point.params);
      table.add_row({static_cast<double>(n), r.p_dndp.mean(), r.p_mndp.mean(),
                     r.p_jrsnd.mean(), t1.p_lower, r.degree.mean()});
    }
    std::cout << "\nFig. 3(b): discovery probability vs n\n";
    table.print(std::cout);
    bench::write_csv_if_requested("fig3b_probability_vs_n", table);
  }

  std::cout << "\nExpected shape: (a) P-hat rises with l, peaks around l ~ 100, then\n"
               "slowly falls (compromise catches up with sharing); (b) D-NDP rises\n"
               "then falls in n while JR-SND stays uniformly high.\n";
  return 0;
}
