// Ablations of JR-SND design choices (DESIGN.md §4).
//
//  1. The x-fold sub-session redundancy of D-NDP (§V-B) vs the naive
//     pick-one-code variant the paper's "intelligent attack" defeats —
//     swept over q under random jamming (where partially compromised code
//     sets are common).
//  2. Baseline schemes at the same operating points: the global-shared-code
//     scheme (dies at q >= 1) and the pairwise-unique-code scheme (ideal
//     survival, unusable latency).
//  3. The GPS false-positive filter of M-NDP (responses a non-neighbor
//     source provokes, with and without the filter).
#include <iostream>

#include "baselines/global_code.hpp"
#include "baselines/pairwise_code.hpp"
#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/schedule_sim.hpp"

int main() {
  using namespace jrsnd;
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Ablations: redundancy / baselines / GPS filter",
                      "Design-choice ablations called out in DESIGN.md", cfg.params);

  {
    std::cout << "\n[1] D-NDP sub-session redundancy vs naive single-code variant, under\n"
                 "    the paper's \"intelligent attack\" (spare the HELLOs, kill the\n"
                 "    follow-ups of compromised codes) and under random jamming\n";
    core::Table table({"q", "P_red_int", "P_naive_int", "P_red_rnd", "P_naive_rnd",
                       "global", "pairwise"});
    for (const std::uint32_t q : {0u, 20u, 40u, 60u, 100u}) {
      core::ExperimentConfig point = cfg;
      point.params.q = q;

      const std::string q_label = "q=" + std::to_string(q);
      point.jammer = core::JammerKind::Intelligent;
      point.redundancy = true;
      const double red_int = bench::run_point(point, q_label + " red/int").p_dndp.mean();
      point.redundancy = false;
      const double naive_int = bench::run_point(point, q_label + " naive/int").p_dndp.mean();

      point.jammer = core::JammerKind::Random;
      point.redundancy = true;
      const double red_rnd = bench::run_point(point, q_label + " red/rnd").p_dndp.mean();
      point.redundancy = false;
      const double naive_rnd = bench::run_point(point, q_label + " naive/rnd").p_dndp.mean();

      core::Params bp = point.params;
      const baselines::GlobalCodeScheme global(bp.n, q);
      bp.q = q;
      const baselines::PairwiseCodeScheme pairwise(bp);
      table.add_row({static_cast<double>(q), red_int, naive_int, red_rnd, naive_rnd,
                     global.discovery_probability_random(), pairwise.pair_code_survival()});
    }
    table.print(std::cout);
    std::cout << "(pairwise survival is ideal but its discovery latency is "
              << core::fmt(baselines::PairwiseCodeScheme(cfg.params).discovery_latency_s(), 0)
              << " s vs JR-SND's "
              << core::fmt(core::theorem2_dndp_latency(cfg.params), 2) << " s)\n";
  }

  {
    std::cout << "\n[2] M-NDP GPS false-positive filter (n = 400, 2 km field, full engine)\n";
    core::Table table({"gps", "P_mndp", "responses", "false_pos", "sig_verifs"});
    for (const bool gps : {false, true}) {
      core::ExperimentConfig point = cfg;
      point.params.n = 400;
      point.params.q = 40;
      point.params.field_width = 2000.0;
      point.params.field_height = 2000.0;
      point.params.runs = std::max(2u, point.params.runs / 5);
      point.full_mndp = true;
      point.gps_filter = gps;
      const core::DiscoverySimulator sim(point);
      core::Stat p_m;
      double responses = 0.0;
      double false_pos = 0.0;
      double verifs = 0.0;
      for (std::uint32_t run = 0; run < point.params.runs; ++run) {
        const core::RunResult r = sim.run_once(point.base_seed + run);
        if (r.p_mndp_defined) p_m.add(r.p_mndp);
        responses += static_cast<double>(r.mndp_stats.responses_sent);
        false_pos += static_cast<double>(r.mndp_stats.false_positive_responses);
        verifs += static_cast<double>(r.mndp_stats.signature_verifications);
      }
      const double runs = point.params.runs;
      table.add_row(std::vector<std::string>{
          gps ? "on" : "off", core::fmt(p_m.mean(), 4), core::fmt(responses / runs, 0),
          core::fmt(false_pos / runs, 0), core::fmt(verifs / runs, 0)});
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n[3] Multi-antenna extension (paper future work): receive chains vs\n"
                 "    identification latency (schedule sim + Theorem 2 generalized)\n";
    core::Table table({"rx_chains", "lambda", "rounds_r", "sched_Ti(s)", "thm2_T(s)"});
    Rng rng(11);
    for (const std::uint32_t chains : {1u, 2u, 4u, 8u}) {
      core::Params p = cfg.params;
      p.rx_chains = chains;
      const dsss::TimingModel timing(p.timing());
      const core::ScheduleSimulator sched(timing);
      const double ti = sched.mean_identification(1000, rng).seconds();
      table.add_row({static_cast<double>(chains), timing.lambda(),
                     static_cast<double>(timing.hello_rounds()), ti,
                     core::theorem2_dndp_latency(p)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: redundancy strictly dominates the naive variant and the\n"
               "gap widens in the partially-compromised regime; the global-code baseline\n"
               "is dead for every q >= 1; the GPS filter removes exactly the\n"
               "false-positive responses without touching discovery probability.\n";
  return 0;
}
