// Figure 5 — impact of nu (M-NDP hop limit) in the heavily compromised
// regime the paper uses (q = 100, i.e. P_D ~ 0.2 per Fig. 4(a)).
//
// Panel (a): P-hat of M-NDP and JR-SND vs nu (D-NDP is nu-independent and
// shown for reference); the paper reports P-hat > 0.9 for nu >= 6.
// Panel (b): T-bar of M-NDP vs nu (Theorem 4): ~4 s at nu = 6.
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"

int main() {
  using namespace jrsnd;
  core::ExperimentConfig cfg = bench::default_config();
  cfg.params.q = 100;  // the paper's P_D ~= 0.2 operating point
  bench::print_banner("Fig. 5: impact of nu",
                      "(a) P-hat vs nu at q = 100 (P_D ~ 0.2); (b) T-bar vs nu",
                      cfg.params);

  core::Table prob({"nu", "P_dndp", "P_mndp", "P_jrsnd", "P_m_recur", "P_jr_steady"});
  core::Table lat({"nu", "T_mndp(s)", "T_jrsnd(s)", "T_mndp_thm4"});

  for (const std::uint32_t nu : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    core::ExperimentConfig point = cfg;
    point.params.nu = nu;
    const core::PointResult r = bench::run_point(point, "nu=" + std::to_string(nu));
    // Steady state: periodic re-initiation rides links earlier M-NDP rounds
    // established (§V-C) — one extra closure round captures it.
    core::ExperimentConfig steady = point;
    steady.mndp_rounds = 2;
    const double jr_steady =
        bench::run_point(steady, "nu=" + std::to_string(nu) + " steady").p_jrsnd.mean();
    prob.add_row({static_cast<double>(nu), r.p_dndp.mean(), r.p_mndp.mean(),
                  r.p_jrsnd.mean(),
                  core::mndp_probability_recursive(r.p_dndp.mean(), r.degree.mean(), nu),
                  jr_steady});
    const double t4 = core::theorem4_mndp_latency(point.params, r.degree.mean());
    lat.add_row({static_cast<double>(nu), r.latency_mndp.mean(), r.latency_jrsnd.mean(), t4});
  }

  std::cout << "\nFig. 5(a): discovery probability vs nu (q = 100)\n";
  prob.print(std::cout);
  bench::write_csv_if_requested("fig5a_probability_vs_nu", prob);
  std::cout << "\nFig. 5(b): average latency vs nu\n";
  lat.print(std::cout);
  bench::write_csv_if_requested("fig5b_latency_vs_nu", lat);
  std::cout << "\nExpected shape: P_mndp and P_jrsnd grow with nu, exceeding 0.9 around\n"
               "nu >= 6, while P_dndp stays flat (~0.2); T_mndp grows roughly\n"
               "quadratically in nu, reaching a few seconds at nu = 6.\n";
  return 0;
}
