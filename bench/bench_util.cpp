#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/thread_pool.hpp"
#include "obs/metrics_registry.hpp"

namespace jrsnd::bench {

std::uint32_t runs_from_env() {
  if (const char* env = std::getenv("JRSND_RUNS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0 && value <= 100000) return static_cast<std::uint32_t>(value);
  }
  return 10;
}

core::ExperimentConfig default_config() {
  // Figure benches are throughput-bound on the discovery engines, not the
  // counters; keep metrics on so every CSV gets a sibling snapshot.
  obs::set_metrics_enabled(true);
  core::ExperimentConfig cfg;
  cfg.params = core::Params::defaults();
  cfg.params.runs = runs_from_env();
  cfg.jammer = core::JammerKind::Reactive;
  // One M-NDP round over the D-NDP logical graph — the setting Theorem 3
  // models and the paper's figures report. In steady-state operation later
  // initiations also ride links earlier M-NDP rounds established
  // ("via D-NDP or M-NDP", §V-C); fig5 shows that closure effect
  // explicitly via mndp_rounds = 2.
  cfg.mndp_rounds = 1;
  cfg.base_seed = 20110620;  // ICDCS'11
  return cfg;
}

void print_banner(const std::string& experiment_id, const std::string& description,
                  const core::Params& params) {
  std::printf("================================================================\n");
  std::printf("JR-SND reproduction — %s\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("params: %s\n", params.summary().c_str());
  std::printf("jammer: reactive (paper's reported worst case); runs/point: %u",
              params.runs);
  if (params.runs < 100) std::printf(" (paper: 100 — set JRSND_RUNS=100 for full fidelity)");
  std::printf("\nthreads: %zu (JRSND_THREADS to override; 1 = serial)\n",
              ThreadPool::default_thread_count());
  std::printf("================================================================\n");
}

core::PointResult run_point(const core::ExperimentConfig& config, const std::string& label) {
  const auto start = std::chrono::steady_clock::now();
  core::PointResult result = core::DiscoverySimulator(config).run_all();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
  std::printf("  [%s] %.2f s\n", label.c_str(), wall.count());
  std::fflush(stdout);
  JRSND_OBSERVE("bench.point.seconds", wall.count());
  if (obs::metrics_enabled()) obs::registry().gauge("bench.wall.seconds").add(wall.count());
  return result;
}

void write_csv_if_requested(const std::string& name, const core::Table& table) {
  const char* dir = std::getenv("JRSND_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  table.print_csv(out);
  std::printf("(wrote %s)\n", path.c_str());

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  if (snap.empty()) return;
  const std::string metrics_path = std::string(dir) + "/" + name + ".metrics.json";
  std::ofstream metrics_out(metrics_path);
  if (!metrics_out) {
    std::fprintf(stderr, "warning: cannot write %s\n", metrics_path.c_str());
    return;
  }
  snap.write_json(metrics_out);
  std::printf("(wrote %s)\n", metrics_path.c_str());
}

}  // namespace jrsnd::bench
