// Shared scaffolding for the figure-reproduction benches.
//
// Every bench prints: the experiment id, the Table-I parameter summary, the
// number of averaging runs (JRSND_RUNS env, default 10; the paper averaged
// 100 — raise it for full fidelity), then one aligned table per panel whose
// rows mirror the series the paper plots.
#pragma once

#include <cstdint>
#include <string>

#include "core/discovery_sim.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"

namespace jrsnd::bench {

/// Averaging runs per sweep point: JRSND_RUNS env var, default 10.
[[nodiscard]] std::uint32_t runs_from_env();

/// Base experiment config: Table-I params + reactive jammer (the paper's
/// reported worst case) + the env-derived run count.
[[nodiscard]] core::ExperimentConfig default_config();

/// Prints the bench banner (figure id, what it reproduces, parameters,
/// Monte-Carlo thread count).
void print_banner(const std::string& experiment_id, const std::string& description,
                  const core::Params& params);

/// Runs one sweep point (`DiscoverySimulator(config).run_all()`) and times
/// it: prints "  [label] <wall> s", observes the wall time into the
/// `bench.point.seconds` histogram, and accumulates `bench.wall.seconds` —
/// both land in the .metrics.json snapshot next to each CSV.
[[nodiscard]] core::PointResult run_point(const core::ExperimentConfig& config,
                                          const std::string& label);

/// If the JRSND_CSV_DIR env var names a directory, writes `table` to
/// <dir>/<name>.csv (for plotting) plus a <dir>/<name>.metrics.json snapshot
/// of the obs metrics registry; otherwise does nothing.
void write_csv_if_requested(const std::string& name, const core::Table& table);

}  // namespace jrsnd::bench
