// Chaos-resilience bench: how much injected message loss the hardened D-NDP
// absorbs through retransmission (docs/robustness.md).
//
//  [1] No-op equivalence: wrapping the PHY in a FaultyPhy with an inactive
//      plan must leave every discovery result bit-identical (the fault layer
//      costs nothing when idle). Verified, not just timed.
//  [2] Drop sweep: injected per-message drop in {5, 10, 20, 30}%, each run
//      with the retry discipline (max_retx = 3) and without. The acceptance
//      envelope — discovery under <= 20% drop recovers to >= 95% of the
//      fault-free ratio — is asserted; exit 1 on violation.
//  [3] A mixed plan (drop + corrupt + duplicate + reorder + crash windows)
//      as a smoke point for the full fault palette.
//
// Writes a machine-readable summary to BENCH_chaos.json (path overridable as
// argv[1]) so CI can archive the envelope next to the commit.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/discovery_sim.hpp"
#include "core/metrics.hpp"
#include "fault/fault_plan.hpp"

namespace {

using namespace jrsnd;

struct SweepPoint {
  double drop = 0.0;
  double p_retx = 0.0;
  double p_noretx = 0.0;
  double recovery = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t faults = 0;
};

struct RunSummary {
  double p_dndp = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t faults = 0;
  std::size_t discovered = 0;
};

RunSummary sweep_runs(const core::ExperimentConfig& cfg) {
  const core::DiscoverySimulator sim(cfg);
  core::Stat p;
  RunSummary out;
  for (std::uint32_t run = 0; run < cfg.params.runs; ++run) {
    const core::RunResult r = sim.run_once(cfg.base_seed + run);
    p.add(r.p_dndp);
    out.retransmissions += r.dndp_retransmissions;
    out.faults += r.faults_injected;
    out.discovered += r.dndp_discovered;
  }
  out.p_dndp = p.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_chaos.json";

  core::ExperimentConfig cfg;
  cfg.params.n = 500;
  cfg.params.m = 40;
  cfg.params.l = 20;
  cfg.params.runs = 5;
  cfg.base_seed = 1;
  cfg.jammer = core::JammerKind::None;  // isolate the injected faults

  // [1] No-op equivalence: an inactive plan must change nothing.
  const RunSummary baseline = sweep_runs(cfg);
  core::ExperimentConfig noop = cfg;
  noop.faults = fault::FaultPlan{};  // all probabilities zero, no crashes
  const RunSummary wrapped = sweep_runs(noop);
  const bool noop_identical = baseline.p_dndp == wrapped.p_dndp &&
                              baseline.discovered == wrapped.discovered &&
                              wrapped.faults == 0;
  std::printf("no-op FaultPlan: P_dndp %.4f vs %.4f, %zu vs %zu discovered  %s\n",
              baseline.p_dndp, wrapped.p_dndp, baseline.discovered, wrapped.discovered,
              noop_identical ? "identical" : "RESULTS DIFFER");
  if (!noop_identical) return 1;

  // [2] Drop sweep with and without the retry discipline.
  constexpr std::uint32_t kRetx = 3;
  constexpr double kEnvelopeDrop = 0.2 + 1e-9;
  constexpr double kEnvelopeRecovery = 0.95;
  const std::vector<double> drops{0.05, 0.1, 0.2, 0.3};
  std::vector<SweepPoint> points;
  bool envelope_ok = true;

  std::printf("\nfault-free P_dndp: %.4f   (n=%u m=%u l=%u runs=%u, retx budget %u)\n",
              baseline.p_dndp, cfg.params.n, cfg.params.m, cfg.params.l, cfg.params.runs,
              kRetx);
  std::printf("%8s %14s %14s %10s %10s %8s\n", "drop", "P_dndp(retx)", "P_dndp(none)",
              "recovery", "retx", "faults");
  for (const double drop : drops) {
    fault::FaultPlan plan;
    plan.seed = cfg.base_seed;
    plan.drop = drop;

    core::ExperimentConfig with = cfg;
    with.faults = plan;
    with.params.retry.max_retx = kRetx;
    const RunSummary r_retx = sweep_runs(with);

    core::ExperimentConfig without = cfg;
    without.faults = plan;
    const RunSummary r_none = sweep_runs(without);

    SweepPoint pt;
    pt.drop = drop;
    pt.p_retx = r_retx.p_dndp;
    pt.p_noretx = r_none.p_dndp;
    pt.recovery = baseline.p_dndp > 0.0 ? r_retx.p_dndp / baseline.p_dndp : 1.0;
    pt.retransmissions = r_retx.retransmissions;
    pt.faults = r_retx.faults;
    if (drop <= kEnvelopeDrop && pt.recovery < kEnvelopeRecovery) envelope_ok = false;
    points.push_back(pt);
    std::printf("%8.2f %14.4f %14.4f %9.1f%% %10llu %8llu\n", drop, pt.p_retx, pt.p_noretx,
                100.0 * pt.recovery, static_cast<unsigned long long>(pt.retransmissions),
                static_cast<unsigned long long>(pt.faults));
  }
  std::printf("envelope (drop <= 0.20 recovers >= %.0f%%): %s\n", 100.0 * kEnvelopeRecovery,
              envelope_ok ? "PASS" : "FAIL");

  // [3] Mixed-fault smoke: the whole palette at once, still recovering.
  fault::FaultPlan mixed;
  mixed.seed = 7;
  mixed.drop = 0.1;
  mixed.corrupt = 0.02;
  mixed.corrupt_bits = 8;
  mixed.duplicate = 0.05;
  mixed.reorder = 0.05;
  mixed.auto_tick = 0.001;
  mixed.crashes.push_back(fault::CrashEvent{node_id(1), TimePoint{0.5}, Duration{1.0}});
  mixed.crashes.push_back(fault::CrashEvent{node_id(2), TimePoint{2.0}, Duration{0.5}});
  core::ExperimentConfig mixed_cfg = cfg;
  mixed_cfg.faults = mixed;
  mixed_cfg.params.retry.max_retx = kRetx;
  const RunSummary r_mixed = sweep_runs(mixed_cfg);
  const double mixed_recovery =
      baseline.p_dndp > 0.0 ? r_mixed.p_dndp / baseline.p_dndp : 1.0;
  std::printf("\nmixed plan: P_dndp %.4f (%.1f%% of fault-free), %llu faults, %llu retx\n",
              r_mixed.p_dndp, 100.0 * mixed_recovery,
              static_cast<unsigned long long>(r_mixed.faults),
              static_cast<unsigned long long>(r_mixed.retransmissions));

  // --- machine-readable summary --------------------------------------------
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
    return envelope_ok ? 0 : 1;
  }
  json << "{\n"
       << "  \"config\": {\"n\": " << cfg.params.n << ", \"m\": " << cfg.params.m
       << ", \"l\": " << cfg.params.l << ", \"runs\": " << cfg.params.runs
       << ", \"seed\": " << cfg.base_seed << ", \"retx\": " << kRetx << "},\n"
       << "  \"noop_plan_identical\": " << (noop_identical ? "true" : "false") << ",\n"
       << "  \"baseline_p_dndp\": " << baseline.p_dndp << ",\n"
       << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    json << "    {\"drop\": " << pt.drop << ", \"p_dndp_retx\": " << pt.p_retx
         << ", \"p_dndp_noretx\": " << pt.p_noretx << ", \"recovery\": " << pt.recovery
         << ", \"retransmissions\": " << pt.retransmissions
         << ", \"faults_injected\": " << pt.faults << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"mixed_plan\": {\"p_dndp\": " << r_mixed.p_dndp
       << ", \"recovery\": " << mixed_recovery << ", \"faults_injected\": " << r_mixed.faults
       << ", \"retransmissions\": " << r_mixed.retransmissions << "},\n"
       << "  \"envelope\": {\"max_drop\": 0.2, \"min_recovery\": " << kEnvelopeRecovery
       << ", \"pass\": " << (envelope_ok ? "true" : "false") << "}\n"
       << "}\n";
  std::printf("(wrote %s)\n", json_path.c_str());
  return envelope_ok ? 0 : 1;
}
