// Figure 2 — impact of m (codes per node).
//
// Panel (a): discovery probability P-hat of D-NDP, M-NDP, and JR-SND vs m,
// with the Theorem-1/3 analysis next to the simulation.
// Panel (b): average discovery latency T-bar vs m — D-NDP grows
// quadratically (Theorem 2), M-NDP is flat in m (Theorem 4), JR-SND is the
// max of the two; the curves cross near m = 60 and JR-SND stays under 2 s
// at the default m = 100.
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "core/latency.hpp"
#include "core/metrics.hpp"

int main() {
  using namespace jrsnd;
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Fig. 2: impact of m",
                      "(a) P-hat and (b) T-bar for D-NDP / M-NDP / JR-SND, m in [20, 200]",
                      cfg.params);

  const std::vector<std::uint32_t> sweep = {20, 40, 60, 80, 100, 120, 140, 160, 180, 200};

  core::Table prob({"m", "P_dndp", "P_mndp", "P_jrsnd", "P-_thm1", "P+_thm1", "P_mndp_thm3"});
  core::Table lat({"m", "T_dndp(s)", "T_mndp(s)", "T_jrsnd(s)", "T_dndp_thm2", "T_mndp_thm4"});

  for (const std::uint32_t m : sweep) {
    core::ExperimentConfig point = cfg;
    point.params.m = m;
    const core::PointResult r = bench::run_point(point, "m=" + std::to_string(m));

    const core::Theorem1Result t1 = core::theorem1(point.params);
    const double g = r.degree.mean();
    const double t3 = core::theorem3_mndp_probability(r.p_dndp.mean(), g);
    prob.add_row({static_cast<double>(m), r.p_dndp.mean(), r.p_mndp.mean(), r.p_jrsnd.mean(),
                  t1.p_lower, t1.p_upper, t3});

    const double t2 = core::theorem2_dndp_latency(point.params);
    const double t4 = core::theorem4_mndp_latency(point.params, g);
    lat.add_row({static_cast<double>(m), r.latency_dndp.mean(), r.latency_mndp.mean(),
                 r.latency_jrsnd.mean(), t2, t4});
  }

  std::cout << "\nFig. 2(a): discovery probability vs m (sim + analysis)\n";
  prob.print(std::cout);
  bench::write_csv_if_requested("fig2a_probability_vs_m", prob);
  std::cout << "\nFig. 2(b): average latency vs m (sim + analysis)\n";
  lat.print(std::cout);
  bench::write_csv_if_requested("fig2b_latency_vs_m", lat);
  std::cout << "\nExpected shape: all P-hat rise with m; T_dndp is quadratic in m and\n"
               "overtakes T_mndp near m ~ 60; JR-SND latency < 2 s at m = 100.\n";
  return 0;
}
