#include "dsss/spread_code.hpp"

#include <stdexcept>

#include "dsss/sync_kernel.hpp"

namespace jrsnd::dsss {

SpreadCode::SpreadCode(BitVector chips, CodeId id) : chips_(std::move(chips)), id_(id) {
  if (chips_.empty()) throw std::invalid_argument("SpreadCode: empty chip pattern");
}

SpreadCode SpreadCode::random(Rng& rng, std::size_t length, CodeId id) {
  BitVector chips(length);
  for (std::size_t i = 0; i < length; ++i) chips.set(i, rng.bernoulli(0.5));
  return SpreadCode(std::move(chips), id);
}

double SpreadCode::correlate(const BitVector& window) const {
  if (window.size() != chips_.size()) {
    throw std::invalid_argument("SpreadCode::correlate: window length mismatch");
  }
  return correlate_at(window, 0, chips_);
}

}  // namespace jrsnd::dsss
