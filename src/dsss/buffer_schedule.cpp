#include "dsss/buffer_schedule.hpp"

#include <algorithm>
#include <cmath>

namespace jrsnd::dsss {

BufferSchedule::BufferSchedule(const TimingModel& timing, Duration phase)
    : timing_(timing),
      phase_s_(phase.seconds()),
      t_b_(timing.buffer_time().seconds()),
      t_p_(timing.processing_time().seconds()),
      rate_(timing.inputs().chip_rate_bps) {}

BufferSchedule::Window BufferSchedule::window(std::uint64_t index) const {
  // The paper indexes duty cycles from i = 1; window(0) is that first one.
  const double k = static_cast<double>(index + 1);
  Window w;
  w.capture_end = TimePoint(phase_s_ + k * t_p_);
  w.capture_start = TimePoint(w.capture_end.seconds() - t_b_);
  w.processing_start = w.capture_end;
  w.processing_end = TimePoint(w.capture_end.seconds() + t_p_);
  return w;
}

bool BufferSchedule::captures(TimePoint t) const {
  // Capture windows end at phase + k t_p; the one potentially covering t
  // has k = ceil((t - phase) / t_p), and when t_b > t_p earlier windows may
  // still cover t too.
  const double rel = t.seconds() - phase_s_;
  const auto extra = static_cast<std::uint64_t>(std::ceil(t_b_ / t_p_)) + 1;
  const double k_min_f = std::ceil(rel / t_p_);
  const auto k_min = k_min_f < 1.0 ? 1u : static_cast<std::uint64_t>(k_min_f);
  for (std::uint64_t k = k_min; k <= k_min + extra; ++k) {
    const double end = phase_s_ + static_cast<double>(k) * t_p_;
    if (t.seconds() >= end - t_b_ && t.seconds() < end) return true;
  }
  return false;
}

double BufferSchedule::occupancy_chips(TimePoint t) const {
  // Sum contributions of every window whose chips are alive at t: being
  // captured (linear fill at R) or being processed (linear drain over t_p).
  const double rel = t.seconds() - phase_s_;
  if (rel <= 0.0) return 0.0;
  const double f = rate_ * t_b_;
  double total = 0.0;
  // Windows with capture_end in (t - t_p, t + t_b] can contribute.
  const auto k_hi = static_cast<std::int64_t>(std::ceil((rel + t_b_) / t_p_)) + 1;
  const auto k_lo = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor((rel - t_p_) / t_p_)));
  for (std::int64_t k = k_lo; k <= k_hi; ++k) {
    const double end = static_cast<double>(k) * t_p_;  // relative capture end
    const double start = end - t_b_;
    if (rel >= start && rel < end) {
      total += rate_ * (rel - std::max(start, 0.0));  // filling
    } else if (rel >= end && rel < end + t_p_) {
      const double processed_fraction = (rel - end) / t_p_;
      total += f * (1.0 - processed_fraction);  // draining
    }
  }
  return total;
}

double BufferSchedule::max_occupancy_chips(std::uint64_t windows) const {
  // Occupancy is piecewise linear; extrema occur at window boundaries and
  // at capture starts/ends. Sample all such breakpoints plus midpoints.
  double peak = 0.0;
  for (std::uint64_t i = 0; i < windows; ++i) {
    const Window w = window(i);
    for (const double t :
         {w.capture_start.seconds(), w.capture_end.seconds() - 1e-9,
          w.processing_start.seconds(),
          (w.capture_start.seconds() + w.capture_end.seconds()) / 2.0,
          w.processing_end.seconds() - 1e-9}) {
      peak = std::max(peak, occupancy_chips(TimePoint(t)));
    }
  }
  return peak;
}

double BufferSchedule::claimed_bound_chips() const { return 2.0 * rate_ * t_b_; }

}  // namespace jrsnd::dsss
