// Word-aligned correlation kernel for the sliding-window scan (paper §V-B).
//
// The paper's processing-time model t_p = rho * N * m * f makes the chip-level
// scan the dominant cost of JR-SND: every chip position of the f-chip buffer
// is correlated against each of the receiver's m candidate N-chip codes. The
// naive implementation materializes a heap-allocated window slice per
// (position, code) pair; this kernel instead correlates *in place* against the
// buffer's packed 64-bit words via XOR + popcount.
//
// Two entry points, by amortization regime:
//
//   * hamming_at / correlate_at — one-shot: aligns the buffer window to the
//     code with two word reads and an inline shift per word. Zero allocation;
//     right for de-spreading a handful of bits at a known offset.
//
//   * ShiftTable — precomputes the code's words at all 64 possible bit
//     alignments once per scan, so the scan inner loop does zero allocation
//     *and* zero per-window bit shifting: for chip offset i it picks row
//     i % 64 and XOR/popcounts it directly against buffer words starting at
//     i / 64. Only the row's first and last words carry buffer bits outside
//     the window; their masks are two ALU ops from s, so no mask rows are
//     stored and the whole table is 64 * ceil((63 + N) / 64) words
//     (~4.7 KiB at N = 512) — small enough that a Table-I scan's working
//     set stays L1-resident. Construction is amortized over the ~f * m
//     correlations of a scan.
//
// Both paths compute the identical integer Hamming distance, so their
// normalized correlations (N - 2h) / N are bit-identical doubles — the
// sliding-window results do not depend on which path ran.
// A third entry point batches candidates (ROADMAP: SIMD-batched correlator):
//
//   * BatchShiftTable — struct-of-arrays form of a *group* of same-length
//     codes: for every alignment s and word index k, the group's m code
//     words sit contiguously, so the scan loads each buffer word once and
//     XOR+popcounts it against every code in the group. The inner loop runs
//     on one of several kernel backends selected once at startup (CPUID
//     probe, JRSND_SIMD override): AVX-512 VPOPCNTDQ (8 codes per vector
//     op), AVX2 (vpshufb nibble-LUT popcount + psadbw, 4 codes per vector),
//     NEON vcnt on aarch64, or the portable scalar __builtin_popcountll
//     path. All backends accumulate exact integer Hamming distances, so
//     every backend — and the single-code paths above — produce
//     bit-identical correlations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_vector.hpp"
#include "dsss/correlator.hpp"

namespace jrsnd::dsss {

class SpreadCode;  // dsss/spread_code.hpp

/// Kernel backend for the batched correlator. Numeric values are published
/// through the `dsss.simd.backend` gauge (mirroring `prof.backend`).
enum class SimdBackend : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

[[nodiscard]] const char* simd_backend_name(SimdBackend backend) noexcept;

/// Whether this process can run `backend` (compiled in AND supported by the
/// CPU/OS per common/cpu_features.hpp). kScalar is always available.
[[nodiscard]] bool simd_backend_supported(SimdBackend backend) noexcept;

/// The backend the batched kernel dispatches to, resolved once: the
/// JRSND_SIMD environment override (scalar|avx2|avx512|neon) when set and
/// supported, otherwise the best the hardware admits. Resolution publishes
/// the `dsss.simd.backend` gauge.
[[nodiscard]] SimdBackend simd_backend();

/// Forces the dispatch backend (tests, benches). Unsupported requests clamp
/// to the best supported backend at or below the request (kNeon requests on
/// x86 clamp to kScalar). Updates the `dsss.simd.backend` gauge and returns
/// the backend actually installed.
SimdBackend set_simd_backend(SimdBackend backend);

/// Hamming distance between `code` and the window buffer[bit_offset,
/// bit_offset + code.size()), computed against packed words with no
/// allocation. Precondition: bit_offset + code.size() <= buffer.size().
[[nodiscard]] std::size_t hamming_at(const BitVector& buffer, std::size_t bit_offset,
                                     const BitVector& code);

/// Normalized correlation in [-1, +1] of `code` against the window at
/// `bit_offset`: (N - 2 * hamming) / N. Same precondition as hamming_at.
[[nodiscard]] double correlate_at(const BitVector& buffer, std::size_t bit_offset,
                                  const BitVector& code);

/// A candidate code precomputed at all 64 word alignments. Row s holds the
/// code's chips shifted to start at bit s of a word boundary; correlating
/// the window at chip offset i reduces to XOR + popcount of row i % 64
/// against the buffer words from i / 64 on, with only the two edge words
/// masked (their masks derive from s alone).
class ShiftTable {
 public:
  explicit ShiftTable(const SpreadCode& code);

  [[nodiscard]] std::size_t length() const noexcept { return length_; }

  /// Hamming distance to the window at `bit_offset`; allocation-free,
  /// shift-free. Precondition: bit_offset + length() <= buffer.size().
  /// Defined inline: this is the body of the scan's hot loop.
  [[nodiscard]] std::size_t hamming(const BitVector& buffer, std::size_t bit_offset) const {
    const std::size_t s = bit_offset % kWordBits;
    const std::uint64_t* buf = buffer.words().data() + bit_offset / kWordBits;
    const std::uint64_t* row = rows_.data() + s * stride_;
    const std::size_t nw = (s + length_ + kWordBits - 1) / kWordBits;
    // Bits of the first word before s and of the last word past the code are
    // live buffer bits outside the window; the rows hold zeros there, so the
    // two edge masks silence them. Interior words need no mask.
    const std::uint64_t first = ~std::uint64_t{0} >> s;
    const std::size_t valid = (s + length_ - 1) % kWordBits + 1;
    const std::uint64_t last = ~std::uint64_t{0} << (kWordBits - valid);
    if (nw == 1) {
      return static_cast<std::size_t>(std::popcount((buf[0] ^ row[0]) & first & last));
    }
    std::size_t h = static_cast<std::size_t>(std::popcount((buf[0] ^ row[0]) & first));
    for (std::size_t k = 1; k + 1 < nw; ++k) {
      h += static_cast<std::size_t>(std::popcount(buf[k] ^ row[k]));
    }
    h += static_cast<std::size_t>(std::popcount((buf[nw - 1] ^ row[nw - 1]) & last));
    return h;
  }

  /// (N - 2 * hamming) / N, identical to SpreadCode::correlate on a slice.
  [[nodiscard]] double correlate(const BitVector& buffer, std::size_t bit_offset) const {
    return correlation_from_hamming(length_, hamming(buffer, bit_offset));
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  std::size_t length_ = 0;
  std::size_t stride_ = 0;  ///< words per alignment row (worst case, s = 63)
  std::vector<std::uint64_t> rows_;  ///< 64 rows of stride_ words: code >> s
};

/// One ShiftTable per candidate code — the per-scan precomputation
/// find_first_message / find_all_messages build before their window loops.
[[nodiscard]] std::vector<ShiftTable> build_shift_tables(std::span<const SpreadCode> codes);

/// A *group* of same-length candidate codes precomputed at all 64 word
/// alignments in struct-of-arrays order: rows[(s * stride + k) * lanes + c]
/// holds code c's word k at alignment s, so the words the scan XORs against
/// one buffer word are contiguous and a single buffer load feeds every code
/// in the group. Lanes are padded to a multiple of 8 (zero rows) so the
/// widest vector backend never reads past the allocation; padding lanes
/// produce unspecified hamming values and must be ignored.
class BatchShiftTable {
 public:
  /// Empty group (size() == 0; hamming_all is a no-op).
  BatchShiftTable() = default;

  /// Batches `codes` with identity source indices. Precondition: uniform
  /// lengths (callers with mixed pools go through build_batch_tables, which
  /// groups by length instead of asserting).
  explicit BatchShiftTable(std::span<const SpreadCode> codes);

  [[nodiscard]] std::size_t size() const noexcept { return m_; }
  [[nodiscard]] bool empty() const noexcept { return m_ == 0; }
  [[nodiscard]] std::size_t length() const noexcept { return length_; }

  /// Lanes the kernels actually write: size() rounded up to 8. Output spans
  /// handed to hamming_all must cover this many entries.
  [[nodiscard]] std::size_t lane_count() const noexcept { return lanes_; }

  /// The index this lane's code had in the span the table was built from
  /// (identity for the uniform constructor; original codebook position for
  /// build_batch_tables groups).
  [[nodiscard]] std::size_t source_index(std::size_t lane) const { return sources_[lane]; }

  /// Hamming distance of *every* code in the group against the window at
  /// `bit_offset`, written to out[0, size()) (out[size(), lane_count()) is
  /// scratch). One pass over the buffer words, dispatched to the active
  /// SIMD backend; results are bit-identical to ShiftTable::hamming on
  /// every backend. Preconditions: bit_offset + length() <= buffer.size(),
  /// out.size() >= lane_count().
  void hamming_all(const BitVector& buffer, std::size_t bit_offset,
                   std::span<std::uint64_t> out) const;

  /// Single-lane hamming distance — the strided SoA read the batched
  /// despread path uses once a scan has locked onto one code. Identical
  /// integers to ShiftTable::hamming for the same code.
  [[nodiscard]] std::size_t hamming_lane(std::size_t lane, const BitVector& buffer,
                                         std::size_t bit_offset) const;

  /// (N - 2 * hamming_lane) / N, identical to ShiftTable::correlate.
  [[nodiscard]] double correlate_lane(std::size_t lane, const BitVector& buffer,
                                      std::size_t bit_offset) const;

 private:
  friend std::vector<BatchShiftTable> build_batch_tables(std::span<const SpreadCode> codes);

  void build(std::span<const SpreadCode* const> codes, std::vector<std::size_t> sources);

  static constexpr std::size_t kWordBits = 64;
  static constexpr std::size_t kLaneAlign = 8;  ///< AVX-512: 8 x 64-bit lanes

  std::size_t length_ = 0;
  std::size_t m_ = 0;
  std::size_t lanes_ = 0;
  std::size_t stride_ = 0;  ///< words per alignment row (worst case, s = 63)
  std::vector<std::size_t> sources_;
  /// SoA rows at [(s * stride_ + k) * lanes_ + c], starting align_offset_
  /// words into the vector so the lane blocks sit on 64-byte boundaries
  /// (vector loads never straddle cache lines). The kernels still use
  /// unaligned-load instructions, so a stale offset (e.g. after a copy
  /// relocates the vector) costs speed, never correctness.
  std::vector<std::uint64_t> rows_;
  std::size_t align_offset_ = 0;

  [[nodiscard]] const std::uint64_t* row_base() const noexcept {
    return rows_.data() + align_offset_;
  }
};

/// Groups `codes` by chip length (groups ordered by first appearance, codes
/// within a group in original order, source_index preserving the original
/// position) and batches each group. Mixed-length pools therefore fall back
/// to one BatchShiftTable per length instead of asserting; a uniform pool
/// yields exactly one group. Empty input yields no groups.
[[nodiscard]] std::vector<BatchShiftTable> build_batch_tables(std::span<const SpreadCode> codes);

}  // namespace jrsnd::dsss
