// Word-aligned correlation kernel for the sliding-window scan (paper §V-B).
//
// The paper's processing-time model t_p = rho * N * m * f makes the chip-level
// scan the dominant cost of JR-SND: every chip position of the f-chip buffer
// is correlated against each of the receiver's m candidate N-chip codes. The
// naive implementation materializes a heap-allocated window slice per
// (position, code) pair; this kernel instead correlates *in place* against the
// buffer's packed 64-bit words via XOR + popcount.
//
// Two entry points, by amortization regime:
//
//   * hamming_at / correlate_at — one-shot: aligns the buffer window to the
//     code with two word reads and an inline shift per word. Zero allocation;
//     right for de-spreading a handful of bits at a known offset.
//
//   * ShiftTable — precomputes the code's words at all 64 possible bit
//     alignments once per scan, so the scan inner loop does zero allocation
//     *and* zero per-window bit shifting: for chip offset i it picks row
//     i % 64 and XOR/popcounts it directly against buffer words starting at
//     i / 64. Only the row's first and last words carry buffer bits outside
//     the window; their masks are two ALU ops from s, so no mask rows are
//     stored and the whole table is 64 * ceil((63 + N) / 64) words
//     (~4.7 KiB at N = 512) — small enough that a Table-I scan's working
//     set stays L1-resident. Construction is amortized over the ~f * m
//     correlations of a scan.
//
// Both paths compute the identical integer Hamming distance, so their
// normalized correlations (N - 2h) / N are bit-identical doubles — the
// sliding-window results do not depend on which path ran.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bit_vector.hpp"

namespace jrsnd::dsss {

class SpreadCode;  // dsss/spread_code.hpp

/// Hamming distance between `code` and the window buffer[bit_offset,
/// bit_offset + code.size()), computed against packed words with no
/// allocation. Precondition: bit_offset + code.size() <= buffer.size().
[[nodiscard]] std::size_t hamming_at(const BitVector& buffer, std::size_t bit_offset,
                                     const BitVector& code);

/// Normalized correlation in [-1, +1] of `code` against the window at
/// `bit_offset`: (N - 2 * hamming) / N. Same precondition as hamming_at.
[[nodiscard]] double correlate_at(const BitVector& buffer, std::size_t bit_offset,
                                  const BitVector& code);

/// A candidate code precomputed at all 64 word alignments. Row s holds the
/// code's chips shifted to start at bit s of a word boundary; correlating
/// the window at chip offset i reduces to XOR + popcount of row i % 64
/// against the buffer words from i / 64 on, with only the two edge words
/// masked (their masks derive from s alone).
class ShiftTable {
 public:
  explicit ShiftTable(const SpreadCode& code);

  [[nodiscard]] std::size_t length() const noexcept { return length_; }

  /// Hamming distance to the window at `bit_offset`; allocation-free,
  /// shift-free. Precondition: bit_offset + length() <= buffer.size().
  /// Defined inline: this is the body of the scan's hot loop.
  [[nodiscard]] std::size_t hamming(const BitVector& buffer, std::size_t bit_offset) const {
    const std::size_t s = bit_offset % kWordBits;
    const std::uint64_t* buf = buffer.words().data() + bit_offset / kWordBits;
    const std::uint64_t* row = rows_.data() + s * stride_;
    const std::size_t nw = (s + length_ + kWordBits - 1) / kWordBits;
    // Bits of the first word before s and of the last word past the code are
    // live buffer bits outside the window; the rows hold zeros there, so the
    // two edge masks silence them. Interior words need no mask.
    const std::uint64_t first = ~std::uint64_t{0} >> s;
    const std::size_t valid = (s + length_ - 1) % kWordBits + 1;
    const std::uint64_t last = ~std::uint64_t{0} << (kWordBits - valid);
    if (nw == 1) {
      return static_cast<std::size_t>(std::popcount((buf[0] ^ row[0]) & first & last));
    }
    std::size_t h = static_cast<std::size_t>(std::popcount((buf[0] ^ row[0]) & first));
    for (std::size_t k = 1; k + 1 < nw; ++k) {
      h += static_cast<std::size_t>(std::popcount(buf[k] ^ row[k]));
    }
    h += static_cast<std::size_t>(std::popcount((buf[nw - 1] ^ row[nw - 1]) & last));
    return h;
  }

  /// (N - 2 * hamming) / N, identical to SpreadCode::correlate on a slice.
  [[nodiscard]] double correlate(const BitVector& buffer, std::size_t bit_offset) const {
    const auto n = static_cast<double>(length_);
    const auto h = static_cast<double>(hamming(buffer, bit_offset));
    return (n - 2.0 * h) / n;
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  std::size_t length_ = 0;
  std::size_t stride_ = 0;  ///< words per alignment row (worst case, s = 63)
  std::vector<std::uint64_t> rows_;  ///< 64 rows of stride_ words: code >> s
};

/// One ShiftTable per candidate code — the per-scan precomputation
/// find_first_message / find_all_messages build before their window loops.
[[nodiscard]] std::vector<ShiftTable> build_shift_tables(std::span<const SpreadCode> codes);

}  // namespace jrsnd::dsss
