// Spreading and de-spreading (paper §III).
//
// The sender NRZ-encodes the message (bit 0 -> -1, bit 1 -> +1) and
// multiplies every message bit by the N-chip spread code, yielding the chip
// sequence. The receiver correlates each N-chip window against the code:
// correlation above tau decodes as 1, below -tau as -1 (0), and anything in
// (-tau, tau) is marked an *erasure* and handed to the Reed-Solomon errata
// decoder (src/ecc).
#pragma once

#include <cstddef>
#include <vector>

#include "common/bit_vector.hpp"
#include "dsss/spread_code.hpp"

namespace jrsnd::dsss {

class BatchShiftTable;  // dsss/sync_kernel.hpp
class ShiftTable;       // dsss/sync_kernel.hpp

/// Spreads `message` with `code`: output has message.size() * N chips,
/// packed as bits (bit 1 <-> chip +1).
[[nodiscard]] BitVector spread(const BitVector& message, const SpreadCode& code);

/// spread() into caller-owned buffers (both cleared and refilled).
/// `flipped_scratch` holds the inverted chip pattern between calls; once the
/// buffers' capacity covers the output, the call is allocation-free — the
/// form the transmit scratch arena uses.
void spread_into(const BitVector& message, const SpreadCode& code, BitVector& flipped_scratch,
                 BitVector& out);

/// One decoded message bit plus its reliability flag.
struct DespreadBit {
  bool value = false;   ///< decoded bit (meaningless when erased)
  bool erased = false;  ///< |correlation| < tau
  double correlation = 0.0;
};

/// Result of de-spreading a whole message.
struct DespreadResult {
  BitVector bits;                        ///< decoded bits (erased bits arbitrary)
  std::vector<std::size_t> erased_bits;  ///< indices with |corr| < tau
};

/// De-spreads `bit_count` message bits from `chips` starting at chip offset
/// `start`, using `code` and decision threshold `tau`.
/// Precondition: start + bit_count * N <= chips.size().
[[nodiscard]] DespreadResult despread(const BitVector& chips, std::size_t start,
                                      std::size_t bit_count, const SpreadCode& code, double tau);

/// De-spreads a single bit (the N-chip window at `start`).
[[nodiscard]] DespreadBit despread_bit(const BitVector& chips, std::size_t start,
                                       const SpreadCode& code, double tau);

/// Kernel variants over a precomputed ShiftTable: same decisions and the
/// bit-identical correlations of the SpreadCode overloads, but each window
/// is correlated with zero allocation and zero bit-shifting — the path the
/// sliding-window scan uses once it has built its per-scan tables.
[[nodiscard]] DespreadResult despread(const BitVector& chips, std::size_t start,
                                      std::size_t bit_count, const ShiftTable& code, double tau);
[[nodiscard]] DespreadBit despread_bit(const BitVector& chips, std::size_t start,
                                       const ShiftTable& code, double tau);

/// despread() into a caller-owned result (cleared and refilled). Identical
/// decisions; allocation-free once `out`'s buffers have steady-state
/// capacity. Used by the sliding-window scan's _into entry point.
void despread_into(const BitVector& chips, std::size_t start, std::size_t bit_count,
                   const ShiftTable& code, double tau, DespreadResult& out);

/// despread_into over one lane of a SIMD-batched table — the path the
/// batched scan uses when the caller has no per-code ShiftTable cache (the
/// span-of-codes entry points). The lane's strided SoA reads produce the
/// same integer Hamming distances as a ShiftTable of the same code, so the
/// decisions and correlations are bit-identical to every other despread
/// overload. Precondition: lane < batch.size().
void despread_into(const BitVector& chips, std::size_t start, std::size_t bit_count,
                   const BatchShiftTable& batch, std::size_t lane, double tau,
                   DespreadResult& out);

}  // namespace jrsnd::dsss
