#include "dsss/correlator.hpp"

#include <cassert>
#include <cmath>

#include "dsss/spread_code.hpp"
#include "obs/metrics_registry.hpp"

namespace jrsnd::dsss {

double correlation_noise_sigma(std::size_t code_length) {
  assert(code_length > 0);
  return 1.0 / std::sqrt(static_cast<double>(code_length));
}

double recommended_tau(std::size_t code_length, double sigmas) {
  return sigmas * correlation_noise_sigma(code_length);
}

double false_sync_probability(std::size_t code_length, double tau) {
  const double sigma = correlation_noise_sigma(code_length);
  // Two-sided tail: P(|corr| >= tau) = erfc(tau / (sigma * sqrt(2))).
  return std::erfc(tau / (sigma * std::sqrt(2.0)));
}

namespace {

/// The code's chips rotated left by `shift`, as a packed window.
BitVector cyclic_shift(const BitVector& bits, std::size_t shift) {
  const std::size_t n = bits.size();
  shift %= n;
  if (shift == 0) return bits;
  BitVector out = bits.slice(shift, n - shift);
  out.append(bits.slice(0, shift));
  return out;
}

}  // namespace

CorrelationProfile autocorrelation_profile(const SpreadCode& code) {
  JRSND_COUNT("dsss.correlator.profile_evals");
  CorrelationProfile profile;
  const std::size_t n = code.length();
  double total = 0.0;
  for (std::size_t shift = 1; shift < n; ++shift) {
    const double corr = std::abs(code.correlate(cyclic_shift(code.bits(), shift)));
    profile.max_off_peak = std::max(profile.max_off_peak, corr);
    total += corr;
  }
  profile.mean_abs_off_peak = n > 1 ? total / static_cast<double>(n - 1) : 0.0;
  return profile;
}

double max_cross_correlation(const SpreadCode& a, const SpreadCode& b) {
  assert(a.length() == b.length());
  JRSND_COUNT("dsss.correlator.cross_evals");
  double worst = 0.0;
  for (std::size_t shift = 0; shift < b.length(); ++shift) {
    worst = std::max(worst, std::abs(a.correlate(cyclic_shift(b.bits(), shift))));
  }
  return worst;
}

}  // namespace jrsnd::dsss
