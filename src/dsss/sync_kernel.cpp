#include "dsss/sync_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/cpu_features.hpp"
#include "common/logging.hpp"
#include "dsss/correlator.hpp"
#include "dsss/spread_code.hpp"
#include "obs/metrics_registry.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace jrsnd::dsss {

namespace {

constexpr std::size_t kWordBits = 64;

/// Zeroes the bits of `word` beyond the first `valid` (0 < valid <= 64).
constexpr std::uint64_t keep_leading(std::uint64_t word, std::size_t valid) noexcept {
  return valid == kWordBits ? word : word & (~std::uint64_t{0} << (kWordBits - valid));
}

/// words[k] of `src` treated as an infinite zero-padded stream.
std::uint64_t padded_word(std::span<const std::uint64_t> src, std::size_t k) noexcept {
  return k < src.size() ? src[k] : 0;
}

/// Writes `src` shifted right by `s` bits (MSB-first packing: the pattern
/// now starts at bit `s`) into out[0, out_words).
void shift_words(std::span<const std::uint64_t> src, std::size_t s, std::uint64_t* out,
                 std::size_t out_words) noexcept {
  for (std::size_t k = 0; k < out_words; ++k) {
    const std::uint64_t lo = padded_word(src, k);
    if (s == 0) {
      out[k] = lo;
    } else {
      const std::uint64_t hi = k == 0 ? 0 : padded_word(src, k - 1);
      out[k] = (lo >> s) | (hi << (kWordBits - s));
    }
  }
}

// --- batched hamming kernels ------------------------------------------------
//
// Shared contract: rows points at the alignment-s block of a BatchShiftTable
// (lanes words per buffer word, lanes % 8 == 0), nw >= 1 window words. The
// first and last buffer words arrive pre-masked (w0, wl) — the rows are zero
// outside the window, so (buf & mask) ^ row == (buf ^ row) & mask and the
// inner loops carry no masking at all. Writes acc[0, lanes): the exact
// integer Hamming distance of each lane's code against the window. Every
// backend computes identical integers; they differ only in how many lanes
// one instruction covers.

void batch_hamming_scalar(const std::uint64_t* rows, std::size_t lanes, std::size_t nw,
                          const std::uint64_t* buf, std::uint64_t w0, std::uint64_t wl,
                          std::uint64_t* acc) noexcept {
  for (std::size_t c = 0; c < lanes; ++c) {
    acc[c] = static_cast<std::uint64_t>(std::popcount(w0 ^ rows[c]));
  }
  for (std::size_t k = 1; k + 1 < nw; ++k) {
    const std::uint64_t w = buf[k];
    const std::uint64_t* row = rows + k * lanes;
    for (std::size_t c = 0; c < lanes; ++c) {
      acc[c] += static_cast<std::uint64_t>(std::popcount(w ^ row[c]));
    }
  }
  if (nw > 1) {
    const std::uint64_t* row = rows + (nw - 1) * lanes;
    for (std::size_t c = 0; c < lanes; ++c) {
      acc[c] += static_cast<std::uint64_t>(std::popcount(wl ^ row[c]));
    }
  }
}

#if defined(__x86_64__)

/// Mula vpshufb popcount: per-byte nibble LUT counts summed into the two
/// 64-bit halves of each 128-bit half by psadbw — exact per-lane popcounts.
__attribute__((target("avx2"), always_inline)) inline __m256i popcnt_epi64_avx2(
    __m256i v, __m256i lut, __m256i low) noexcept {
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i per_byte =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(per_byte, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) void batch_hamming_avx2(const std::uint64_t* rows,
                                                        std::size_t lanes, std::size_t nw,
                                                        const std::uint64_t* buf,
                                                        std::uint64_t w0, std::uint64_t wl,
                                                        std::uint64_t* acc) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  for (std::size_t c = 0; c < lanes; c += 8) {
    const __m256i v0 = _mm256_set1_epi64x(static_cast<long long>(w0));
    const std::uint64_t* row0 = rows + c;
    __m256i a0 = popcnt_epi64_avx2(
        _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(row0)), v0), lut,
        low);
    __m256i a1 = popcnt_epi64_avx2(
        _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(row0 + 4)), v0),
        lut, low);
    for (std::size_t k = 1; k + 1 < nw; ++k) {
      const __m256i w = _mm256_set1_epi64x(static_cast<long long>(buf[k]));
      const std::uint64_t* row = rows + k * lanes + c;
      a0 = _mm256_add_epi64(
          a0, popcnt_epi64_avx2(
                  _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(row)), w),
                  lut, low));
      a1 = _mm256_add_epi64(
          a1, popcnt_epi64_avx2(_mm256_xor_si256(_mm256_loadu_si256(
                                                     reinterpret_cast<const __m256i*>(row + 4)),
                                                 w),
                                lut, low));
    }
    if (nw > 1) {
      const __m256i w = _mm256_set1_epi64x(static_cast<long long>(wl));
      const std::uint64_t* row = rows + (nw - 1) * lanes + c;
      a0 = _mm256_add_epi64(
          a0, popcnt_epi64_avx2(
                  _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(row)), w),
                  lut, low));
      a1 = _mm256_add_epi64(
          a1, popcnt_epi64_avx2(_mm256_xor_si256(_mm256_loadu_si256(
                                                     reinterpret_cast<const __m256i*>(row + 4)),
                                                 w),
                                lut, low));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + c), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + c + 4), a1);
  }
}

__attribute__((target("avx512f,avx512vpopcntdq"), always_inline)) inline __m512i
xor_popcnt_avx512(const std::uint64_t* row, __m512i w) noexcept {
  return _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(row), w));
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void batch_hamming_avx512(
    const std::uint64_t* rows, std::size_t lanes, std::size_t nw, const std::uint64_t* buf,
    std::uint64_t w0, std::uint64_t wl, std::uint64_t* acc) noexcept {
  std::size_t c = 0;
  // 32-lane blocks: one buffer-word broadcast feeds four ZMM rows, and the
  // four independent accumulator chains keep vpopcntq's latency off the
  // critical path.
  for (; c + 32 <= lanes; c += 32) {
    const std::uint64_t* r = rows + c;
    __m512i w = _mm512_set1_epi64(static_cast<long long>(w0));
    __m512i a0 = xor_popcnt_avx512(r, w);
    __m512i a1 = xor_popcnt_avx512(r + 8, w);
    __m512i a2 = xor_popcnt_avx512(r + 16, w);
    __m512i a3 = xor_popcnt_avx512(r + 24, w);
    for (std::size_t k = 1; k + 1 < nw; ++k) {
      w = _mm512_set1_epi64(static_cast<long long>(buf[k]));
      r = rows + k * lanes + c;
      a0 = _mm512_add_epi64(a0, xor_popcnt_avx512(r, w));
      a1 = _mm512_add_epi64(a1, xor_popcnt_avx512(r + 8, w));
      a2 = _mm512_add_epi64(a2, xor_popcnt_avx512(r + 16, w));
      a3 = _mm512_add_epi64(a3, xor_popcnt_avx512(r + 24, w));
    }
    if (nw > 1) {
      w = _mm512_set1_epi64(static_cast<long long>(wl));
      r = rows + (nw - 1) * lanes + c;
      a0 = _mm512_add_epi64(a0, xor_popcnt_avx512(r, w));
      a1 = _mm512_add_epi64(a1, xor_popcnt_avx512(r + 8, w));
      a2 = _mm512_add_epi64(a2, xor_popcnt_avx512(r + 16, w));
      a3 = _mm512_add_epi64(a3, xor_popcnt_avx512(r + 24, w));
    }
    _mm512_storeu_si512(acc + c, a0);
    _mm512_storeu_si512(acc + c + 8, a1);
    _mm512_storeu_si512(acc + c + 16, a2);
    _mm512_storeu_si512(acc + c + 24, a3);
  }
  for (; c < lanes; c += 8) {
    __m512i a = xor_popcnt_avx512(rows + c, _mm512_set1_epi64(static_cast<long long>(w0)));
    for (std::size_t k = 1; k + 1 < nw; ++k) {
      a = _mm512_add_epi64(a, xor_popcnt_avx512(rows + k * lanes + c,
                                                _mm512_set1_epi64(static_cast<long long>(buf[k]))));
    }
    if (nw > 1) {
      a = _mm512_add_epi64(a, xor_popcnt_avx512(rows + (nw - 1) * lanes + c,
                                                _mm512_set1_epi64(static_cast<long long>(wl))));
    }
    _mm512_storeu_si512(acc + c, a);
  }
}

#elif defined(__aarch64__)

/// vcnt counts per byte; the vpaddl ladder widens to per-64-bit-lane sums.
inline uint64x2_t popcnt_u64x2_neon(uint64x2_t v) noexcept {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

void batch_hamming_neon(const std::uint64_t* rows, std::size_t lanes, std::size_t nw,
                        const std::uint64_t* buf, std::uint64_t w0, std::uint64_t wl,
                        std::uint64_t* acc) noexcept {
  for (std::size_t c = 0; c < lanes; c += 2) {
    uint64x2_t a = popcnt_u64x2_neon(veorq_u64(vld1q_u64(rows + c), vdupq_n_u64(w0)));
    for (std::size_t k = 1; k + 1 < nw; ++k) {
      a = vaddq_u64(a, popcnt_u64x2_neon(
                           veorq_u64(vld1q_u64(rows + k * lanes + c), vdupq_n_u64(buf[k]))));
    }
    if (nw > 1) {
      a = vaddq_u64(a, popcnt_u64x2_neon(veorq_u64(vld1q_u64(rows + (nw - 1) * lanes + c),
                                                   vdupq_n_u64(wl))));
    }
    vst1q_u64(acc + c, a);
  }
}

#endif

// --- backend resolution -----------------------------------------------------

// 0 = unresolved; otherwise 1 + SimdBackend value. Relaxed ordering is
// enough: resolution is a pure function of process-constant inputs (CPUID,
// environment), so racing first-callers install the same value.
std::atomic<int> g_simd_active{0};

void publish_simd_gauge(SimdBackend backend) {
  // Direct registry write (not the macro): like prof.backend, the gauge must
  // reflect the live dispatch target even with metrics collection disabled.
  obs::registry().gauge("dsss.simd.backend").set(static_cast<double>(backend));
}

SimdBackend best_supported_backend() noexcept {
  if (simd_backend_supported(SimdBackend::kAvx512)) return SimdBackend::kAvx512;
  if (simd_backend_supported(SimdBackend::kAvx2)) return SimdBackend::kAvx2;
  if (simd_backend_supported(SimdBackend::kNeon)) return SimdBackend::kNeon;
  return SimdBackend::kScalar;
}

SimdBackend clamp_to_supported(SimdBackend request) noexcept {
  if (simd_backend_supported(request)) return request;
  if (request == SimdBackend::kAvx512 && simd_backend_supported(SimdBackend::kAvx2)) {
    return SimdBackend::kAvx2;
  }
  return SimdBackend::kScalar;
}

SimdBackend resolve_simd_backend() {
  SimdBackend chosen = best_supported_backend();
  if (const char* env = std::getenv("JRSND_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      chosen = SimdBackend::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      chosen = clamp_to_supported(SimdBackend::kAvx2);
    } else if (std::strcmp(env, "avx512") == 0) {
      chosen = clamp_to_supported(SimdBackend::kAvx512);
    } else if (std::strcmp(env, "neon") == 0) {
      chosen = clamp_to_supported(SimdBackend::kNeon);
    } else if (env[0] != '\0') {
      JRSND_WARN("dsss.simd") << "unknown JRSND_SIMD value '" << env << "' (want scalar|avx2|"
                              << "avx512|neon); using " << simd_backend_name(chosen);
    }
  }
  g_simd_active.store(1 + static_cast<int>(chosen), std::memory_order_relaxed);
  publish_simd_gauge(chosen);
  return chosen;
}

}  // namespace

const char* simd_backend_name(SimdBackend backend) noexcept {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kAvx512:
      return "avx512";
    case SimdBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool simd_backend_supported(SimdBackend backend) noexcept {
  switch (backend) {
    case SimdBackend::kScalar:
      return true;
#if defined(__x86_64__)
    case SimdBackend::kAvx2:
      return cpu_features().avx2;
    case SimdBackend::kAvx512:
      return cpu_features().avx512_vpopcntdq;
#elif defined(__aarch64__)
    case SimdBackend::kNeon:
      return cpu_features().neon;
#endif
    default:
      return false;
  }
}

SimdBackend simd_backend() {
  const int v = g_simd_active.load(std::memory_order_relaxed);
  if (v != 0) return static_cast<SimdBackend>(v - 1);
  return resolve_simd_backend();
}

SimdBackend set_simd_backend(SimdBackend backend) {
  const SimdBackend installed = clamp_to_supported(backend);
  g_simd_active.store(1 + static_cast<int>(installed), std::memory_order_relaxed);
  publish_simd_gauge(installed);
  return installed;
}

std::size_t hamming_at(const BitVector& buffer, std::size_t bit_offset, const BitVector& code) {
  const std::size_t n = code.size();
  assert(n > 0);
  assert(bit_offset + n <= buffer.size());
  const std::span<const std::uint64_t> buf = buffer.words();
  const std::span<const std::uint64_t> cw = code.words();
  const std::size_t s = bit_offset % kWordBits;
  const std::size_t w0 = bit_offset / kWordBits;
  const std::size_t tail = n % kWordBits;

  std::size_t h = 0;
  for (std::size_t k = 0; k < cw.size(); ++k) {
    // Align the buffer window to the code: two word reads + one shift.
    std::uint64_t window = buf[w0 + k] << s;
    if (s != 0 && w0 + k + 1 < buf.size()) {
      window |= buf[w0 + k + 1] >> (kWordBits - s);
    }
    // The code's slack bits are zero (BitVector invariant); the window's
    // final word may carry live buffer bits past the code, so mask them.
    if (k + 1 == cw.size() && tail != 0) window = keep_leading(window, tail);
    h += static_cast<std::size_t>(std::popcount(window ^ cw[k]));
  }
  return h;
}

double correlate_at(const BitVector& buffer, std::size_t bit_offset, const BitVector& code) {
  return correlation_from_hamming(code.size(), hamming_at(buffer, bit_offset, code));
}

ShiftTable::ShiftTable(const SpreadCode& code)
    : length_(code.length()), stride_((kWordBits - 1 + length_ + kWordBits - 1) / kWordBits) {
  rows_.resize(kWordBits * stride_);
  const std::span<const std::uint64_t> cw = code.bits().words();
  for (std::size_t s = 0; s < kWordBits; ++s) {
    shift_words(cw, s, rows_.data() + s * stride_, stride_);
  }
}

std::vector<ShiftTable> build_shift_tables(std::span<const SpreadCode> codes) {
  std::vector<ShiftTable> tables;
  tables.reserve(codes.size());
  for (const SpreadCode& code : codes) tables.emplace_back(code);
  return tables;
}

void BatchShiftTable::build(std::span<const SpreadCode* const> codes,
                            std::vector<std::size_t> sources) {
  sources_ = std::move(sources);
  m_ = codes.size();
  if (m_ == 0) {
    length_ = lanes_ = stride_ = 0;
    rows_.clear();
    return;
  }
  length_ = codes[0]->length();
  lanes_ = (m_ + kLaneAlign - 1) / kLaneAlign * kLaneAlign;
  stride_ = (kWordBits - 1 + length_ + kWordBits - 1) / kWordBits;
  // Padding lanes stay zero: harmless to XOR against, never reported. Seven
  // slack words let the SoA base round up to a 64-byte boundary, putting
  // every 8-lane block on its own cache line.
  rows_.assign(kWordBits * stride_ * lanes_ + kLaneAlign - 1, 0);
  align_offset_ =
      (64 - reinterpret_cast<std::uintptr_t>(rows_.data()) % 64) % 64 / sizeof(std::uint64_t);
  std::uint64_t* base = rows_.data() + align_offset_;
  std::vector<std::uint64_t> contiguous(stride_);
  for (std::size_t c = 0; c < m_; ++c) {
    assert(codes[c]->length() == length_ && "BatchShiftTable: mixed code lengths in one group");
    const std::span<const std::uint64_t> cw = codes[c]->bits().words();
    for (std::size_t s = 0; s < kWordBits; ++s) {
      shift_words(cw, s, contiguous.data(), stride_);
      // Transpose into SoA order: lane c of every (s, k) block.
      for (std::size_t k = 0; k < stride_; ++k) {
        base[(s * stride_ + k) * lanes_ + c] = contiguous[k];
      }
    }
  }
}

BatchShiftTable::BatchShiftTable(std::span<const SpreadCode> codes) {
  std::vector<const SpreadCode*> ptrs;
  std::vector<std::size_t> sources;
  ptrs.reserve(codes.size());
  sources.reserve(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ptrs.push_back(&codes[i]);
    sources.push_back(i);
  }
  build(ptrs, std::move(sources));
}

void BatchShiftTable::hamming_all(const BitVector& buffer, std::size_t bit_offset,
                                  std::span<std::uint64_t> out) const {
  if (m_ == 0) return;
  assert(bit_offset + length_ <= buffer.size());
  assert(out.size() >= lanes_);
  const std::size_t s = bit_offset % kWordBits;
  const std::uint64_t* buf = buffer.words().data() + bit_offset / kWordBits;
  const std::uint64_t* rows = row_base() + s * stride_ * lanes_;
  const std::size_t nw = (s + length_ + kWordBits - 1) / kWordBits;
  const std::uint64_t first = ~std::uint64_t{0} >> s;
  const std::size_t valid = (s + length_ - 1) % kWordBits + 1;
  const std::uint64_t last = ~std::uint64_t{0} << (kWordBits - valid);
  // Pre-masked edge words, computed once for the whole group (the per-code
  // path recomputes the equivalent masks for every candidate).
  const std::uint64_t w0 = nw == 1 ? (buf[0] & first & last) : (buf[0] & first);
  const std::uint64_t wl = buf[nw - 1] & last;
  switch (simd_backend()) {
#if defined(__x86_64__)
    case SimdBackend::kAvx512:
      batch_hamming_avx512(rows, lanes_, nw, buf, w0, wl, out.data());
      return;
    case SimdBackend::kAvx2:
      batch_hamming_avx2(rows, lanes_, nw, buf, w0, wl, out.data());
      return;
#elif defined(__aarch64__)
    case SimdBackend::kNeon:
      batch_hamming_neon(rows, lanes_, nw, buf, w0, wl, out.data());
      return;
#endif
    default:
      batch_hamming_scalar(rows, lanes_, nw, buf, w0, wl, out.data());
      return;
  }
}

std::size_t BatchShiftTable::hamming_lane(std::size_t lane, const BitVector& buffer,
                                          std::size_t bit_offset) const {
  assert(lane < m_);
  assert(bit_offset + length_ <= buffer.size());
  const std::size_t s = bit_offset % kWordBits;
  const std::uint64_t* buf = buffer.words().data() + bit_offset / kWordBits;
  const std::uint64_t* row = row_base() + s * stride_ * lanes_ + lane;
  const std::size_t nw = (s + length_ + kWordBits - 1) / kWordBits;
  const std::uint64_t first = ~std::uint64_t{0} >> s;
  const std::size_t valid = (s + length_ - 1) % kWordBits + 1;
  const std::uint64_t last = ~std::uint64_t{0} << (kWordBits - valid);
  if (nw == 1) {
    return static_cast<std::size_t>(std::popcount((buf[0] ^ row[0]) & first & last));
  }
  std::size_t h = static_cast<std::size_t>(std::popcount((buf[0] ^ row[0]) & first));
  for (std::size_t k = 1; k + 1 < nw; ++k) {
    h += static_cast<std::size_t>(std::popcount(buf[k] ^ row[k * lanes_]));
  }
  h += static_cast<std::size_t>(std::popcount((buf[nw - 1] ^ row[(nw - 1) * lanes_]) & last));
  return h;
}

double BatchShiftTable::correlate_lane(std::size_t lane, const BitVector& buffer,
                                       std::size_t bit_offset) const {
  return correlation_from_hamming(length_, hamming_lane(lane, buffer, bit_offset));
}

std::vector<BatchShiftTable> build_batch_tables(std::span<const SpreadCode> codes) {
  std::vector<BatchShiftTable> groups;
  std::vector<std::size_t> lengths;  // distinct lengths, first-appearance order
  for (const SpreadCode& code : codes) {
    if (std::find(lengths.begin(), lengths.end(), code.length()) == lengths.end()) {
      lengths.push_back(code.length());
    }
  }
  groups.reserve(lengths.size());
  for (const std::size_t length : lengths) {
    std::vector<const SpreadCode*> ptrs;
    std::vector<std::size_t> sources;
    for (std::size_t i = 0; i < codes.size(); ++i) {
      if (codes[i].length() == length) {
        ptrs.push_back(&codes[i]);
        sources.push_back(i);
      }
    }
    BatchShiftTable group;
    group.build(ptrs, std::move(sources));
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace jrsnd::dsss
