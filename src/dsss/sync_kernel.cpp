#include "dsss/sync_kernel.hpp"

#include <bit>
#include <cassert>

#include "dsss/spread_code.hpp"

namespace jrsnd::dsss {

namespace {

constexpr std::size_t kWordBits = 64;

/// Zeroes the bits of `word` beyond the first `valid` (0 < valid <= 64).
constexpr std::uint64_t keep_leading(std::uint64_t word, std::size_t valid) noexcept {
  return valid == kWordBits ? word : word & (~std::uint64_t{0} << (kWordBits - valid));
}

/// words[k] of `src` treated as an infinite zero-padded stream.
std::uint64_t padded_word(std::span<const std::uint64_t> src, std::size_t k) noexcept {
  return k < src.size() ? src[k] : 0;
}

/// Writes `src` shifted right by `s` bits (MSB-first packing: the pattern
/// now starts at bit `s`) into out[0, out_words).
void shift_words(std::span<const std::uint64_t> src, std::size_t s, std::uint64_t* out,
                 std::size_t out_words) noexcept {
  for (std::size_t k = 0; k < out_words; ++k) {
    const std::uint64_t lo = padded_word(src, k);
    if (s == 0) {
      out[k] = lo;
    } else {
      const std::uint64_t hi = k == 0 ? 0 : padded_word(src, k - 1);
      out[k] = (lo >> s) | (hi << (kWordBits - s));
    }
  }
}

}  // namespace

std::size_t hamming_at(const BitVector& buffer, std::size_t bit_offset, const BitVector& code) {
  const std::size_t n = code.size();
  assert(n > 0);
  assert(bit_offset + n <= buffer.size());
  const std::span<const std::uint64_t> buf = buffer.words();
  const std::span<const std::uint64_t> cw = code.words();
  const std::size_t s = bit_offset % kWordBits;
  const std::size_t w0 = bit_offset / kWordBits;
  const std::size_t tail = n % kWordBits;

  std::size_t h = 0;
  for (std::size_t k = 0; k < cw.size(); ++k) {
    // Align the buffer window to the code: two word reads + one shift.
    std::uint64_t window = buf[w0 + k] << s;
    if (s != 0 && w0 + k + 1 < buf.size()) {
      window |= buf[w0 + k + 1] >> (kWordBits - s);
    }
    // The code's slack bits are zero (BitVector invariant); the window's
    // final word may carry live buffer bits past the code, so mask them.
    if (k + 1 == cw.size() && tail != 0) window = keep_leading(window, tail);
    h += static_cast<std::size_t>(std::popcount(window ^ cw[k]));
  }
  return h;
}

double correlate_at(const BitVector& buffer, std::size_t bit_offset, const BitVector& code) {
  const auto n = static_cast<double>(code.size());
  const auto h = static_cast<double>(hamming_at(buffer, bit_offset, code));
  return (n - 2.0 * h) / n;
}

ShiftTable::ShiftTable(const SpreadCode& code)
    : length_(code.length()), stride_((kWordBits - 1 + length_ + kWordBits - 1) / kWordBits) {
  rows_.resize(kWordBits * stride_);
  const std::span<const std::uint64_t> cw = code.bits().words();
  for (std::size_t s = 0; s < kWordBits; ++s) {
    shift_words(cw, s, rows_.data() + s * stride_, stride_);
  }
}

std::vector<ShiftTable> build_shift_tables(std::span<const SpreadCode> codes) {
  std::vector<ShiftTable> tables;
  tables.reserve(codes.size());
  for (const SpreadCode& code : codes) tables.emplace_back(code);
  return tables;
}

}  // namespace jrsnd::dsss
