// Buffering/processing timing model of D-NDP (paper §V-B).
//
// Receivers cannot monitor m codes in real time; they buffer incoming chips
// and scan the buffer offline. The paper derives:
//
//   t_h = l_h * N / R            time to send one ECC-coded HELLO
//   t_b = (m + 1) * t_h          buffer span guaranteeing one complete HELLO
//   lambda = rho * N * m * R     processing/buffering time ratio
//   t_p = lambda * t_b           time to scan one buffer (m corr per chip)
//   r = ceil((lambda+1)(m+1)/m)  HELLO rounds so the target buffers a copy
//
// All quantities are exposed as typed durations so protocol engines and the
// latency analysis (Theorem 2) share one implementation.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace jrsnd::dsss {

struct TimingInputs {
  std::size_t code_length_chips = 512;  ///< N
  double chip_rate_bps = 22e6;          ///< R (chips per second)
  double rho_seconds_per_bit = 1e-11;   ///< per-chip correlation cost rho
  std::size_t codes_per_node = 100;     ///< m
  std::size_t hello_coded_bits = 42;    ///< l_h = (1+mu)(l_t + l_id)
  /// Parallel receive/correlation chains. The paper assumes one (plus a
  /// transmit antenna) and leaves "an arbitrary number of antennas" as
  /// future work; k chains scan a buffer k times faster, dividing lambda
  /// and with it the identification latency.
  std::uint32_t rx_chains = 1;
};

class TimingModel {
 public:
  explicit TimingModel(const TimingInputs& in);

  /// Time to transmit one spread HELLO: l_h * N / R.
  [[nodiscard]] Duration hello_time() const noexcept { return t_h_; }

  /// Buffer span that surely contains one complete HELLO: (m + 1) t_h.
  [[nodiscard]] Duration buffer_time() const noexcept { return t_b_; }

  /// Full-buffer scan time: rho * N * m * R * t_b.
  [[nodiscard]] Duration processing_time() const noexcept { return t_p_; }

  /// Processing-to-buffering ratio lambda = rho N m R.
  [[nodiscard]] double lambda() const noexcept { return lambda_; }

  /// HELLO rounds r = ceil((lambda + 1)(m + 1)/m); total broadcast duration
  /// r * m * t_h >= (lambda + 1) t_b guarantees the receiver buffers a copy.
  [[nodiscard]] std::uint64_t hello_rounds() const noexcept { return rounds_; }

  /// Total HELLO broadcast duration r * m * t_h.
  [[nodiscard]] Duration hello_broadcast_duration() const noexcept;

  /// Chips accumulated in one buffer window: f = R * t_b.
  [[nodiscard]] std::uint64_t buffer_chips() const noexcept;

  /// Transmission time of an arbitrary coded message of `coded_bits` bits.
  [[nodiscard]] Duration message_time(std::size_t coded_bits) const noexcept;

  [[nodiscard]] const TimingInputs& inputs() const noexcept { return in_; }

 private:
  TimingInputs in_;
  Duration t_h_;
  Duration t_b_;
  Duration t_p_;
  double lambda_;
  std::uint64_t rounds_;
};

}  // namespace jrsnd::dsss
