// Sliding-window synchronization + message recovery (paper §V-B).
//
// A receiver that has buffered f chips does not know where (or with which of
// its m codes) an incoming HELLO starts. Following the paper's algorithm
// (after [7]), it slides an N-chip window over every chip position i in
// [0, f - N], correlating the window against each candidate code; the first
// position where |correlation| >= tau marks the first bit of a message
// spread with that code, and the remaining bits are de-spread at stride N
// from there.
//
// The scan core batches the whole candidate pool: one pass over the buffer
// scores every code per window through BatchShiftTable::hamming_all
// (dsss/sync_kernel.hpp), dispatched to the best SIMD backend the host
// admits (JRSND_SIMD overrides). The threshold test runs in the Hamming
// domain with bounds derived from the same double predicate, so hits,
// counters, and recovered messages are byte-identical to the per-code path
// and to the find_*_reference slice oracles below on every backend.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/bit_vector.hpp"
#include "dsss/spread_code.hpp"
#include "dsss/spreader.hpp"

namespace jrsnd::dsss {

class PreparedCodebook;  // dsss/prepared_codebook.hpp

/// A message recovered from the chip buffer.
struct SyncHit {
  std::size_t code_index = 0;   ///< index into the candidate-code span
  std::size_t chip_offset = 0;  ///< chip position of the message's first bit
  DespreadResult message;       ///< the de-spread bits + erasure marks
};

/// Scans `buffer` from `start_offset` for the earliest message of
/// `message_bits` bits spread with any of `codes`. Returns nullopt if no
/// window synchronizes. The scan requires the *full* message to fit:
/// offsets beyond buffer.size() - message_bits * N are not considered.
/// Noise can exceed tau at a random position (false lock, probability
/// false_sync_probability() per position); callers resolve this by retrying
/// from hit.chip_offset + 1 when the ECC decode rejects the recovered bits.
///
/// Precondition: every candidate shares codes[0].length() — the scan slides
/// one window at one stride. Mixed lengths assert in debug builds and make
/// the scan report no hit in release builds.
///
/// Implementation: the allocation-free word-aligned kernel
/// (dsss/sync_kernel.hpp) — each candidate is precomputed at all 64 word
/// alignments once per scan, then every window is XOR + popcount against the
/// buffer's packed words.
[[nodiscard]] std::optional<SyncHit> find_first_message(const BitVector& buffer,
                                                        std::span<const SpreadCode> codes,
                                                        std::size_t message_bits, double tau,
                                                        std::size_t start_offset = 0);

/// find_first_message over a PreparedCodebook: identical results, but the
/// per-code ShiftTables come from the codebook's cache instead of being
/// rebuilt per call — the form ChipPhy's transmit path and its
/// recover-and-rescan loop use, where the same codebook is scanned at many
/// resume offsets.
[[nodiscard]] std::optional<SyncHit> find_first_message(const BitVector& buffer,
                                                        const PreparedCodebook& codebook,
                                                        std::size_t message_bits, double tau,
                                                        std::size_t start_offset = 0);

/// find_first_message into a caller-owned hit (overwritten on success, left
/// unspecified on miss). Returns whether a message was found. Identical
/// decisions to the optional-returning overloads; allocation-free once
/// `out.message`'s buffers have steady-state capacity — the transmit scratch
/// arena's scan entry point.
[[nodiscard]] bool find_first_message_into(const BitVector& buffer,
                                           const PreparedCodebook& codebook,
                                           std::size_t message_bits, double tau,
                                           std::size_t start_offset, SyncHit& out);

/// Scans the whole buffer and returns every non-overlapping message found
/// (continues searching after each recovered message). Models the paper's
/// note that a buffer may hold multiple HELLOs from concurrent initiators.
/// Same mixed-length precondition as find_first_message.
[[nodiscard]] std::vector<SyncHit> find_all_messages(const BitVector& buffer,
                                                     std::span<const SpreadCode> codes,
                                                     std::size_t message_bits, double tau);

/// find_all_messages over a PreparedCodebook (cached ShiftTables).
[[nodiscard]] std::vector<SyncHit> find_all_messages(const BitVector& buffer,
                                                     const PreparedCodebook& codebook,
                                                     std::size_t message_bits, double tau);

/// Reference oracle for find_first_message: the straightforward slice-based
/// scan (one BitVector window per chip position, shared across candidates —
/// not one per (position, code) pair). Byte-identical results to the kernel
/// path by construction; kept for property tests and the micro benchmark,
/// not for production scans.
[[nodiscard]] std::optional<SyncHit> find_first_message_reference(
    const BitVector& buffer, std::span<const SpreadCode> codes, std::size_t message_bits,
    double tau, std::size_t start_offset = 0);

/// Reference oracle for find_all_messages (see find_first_message_reference).
[[nodiscard]] std::vector<SyncHit> find_all_messages_reference(
    const BitVector& buffer, std::span<const SpreadCode> codes, std::size_t message_bits,
    double tau);

/// The number of code correlations the scan performs, the quantity the
/// paper's processing-time model t_p = rho * N * m * f is built on.
[[nodiscard]] std::size_t scan_correlation_count(std::size_t buffer_chips,
                                                 std::size_t code_count,
                                                 std::size_t code_length);

}  // namespace jrsnd::dsss
