// Correlation decision support (paper §III).
//
// For pseudorandom codes of length N, the correlation of a code with an
// unrelated chip window is a sum of N iid +-1/N terms: mean 0, variance 1/N.
// The threshold tau must sit far enough above that noise floor that false
// synchronization is negligible, yet low enough that legitimate bits decode.
// The paper (after [7]) uses tau = 0.15 at N = 512, about 3.4 sigma.
#pragma once

#include <cstddef>

namespace jrsnd::dsss {

/// Default decision threshold from the paper for N = 512.
inline constexpr double kDefaultTau = 0.15;

/// The one normalized-correlation formula every packed-chip path shares:
/// (N - 2h) / N for Hamming distance h over N chips. Centralized so the
/// single-code kernel, the SIMD-batched kernel, and the despread decision
/// paths are bit-identical doubles by construction, not by convention.
[[nodiscard]] constexpr double correlation_from_hamming(std::size_t code_length,
                                                        std::size_t hamming) noexcept {
  const auto n = static_cast<double>(code_length);
  const auto h = static_cast<double>(hamming);
  return (n - 2.0 * h) / n;
}

/// Standard deviation of the correlation between a length-N pseudorandom
/// code and an independent window: sqrt(1/N).
[[nodiscard]] double correlation_noise_sigma(std::size_t code_length);

/// A threshold placed `sigmas` standard deviations above the noise floor.
[[nodiscard]] double recommended_tau(std::size_t code_length, double sigmas = 3.4);

/// Probability that an unrelated window exceeds tau in absolute value
/// (two-sided Gaussian tail) — the per-position false-sync probability of
/// the sliding-window search.
[[nodiscard]] double false_sync_probability(std::size_t code_length, double tau);

/// Quality metrics of a concrete spread code: the sliding-window
/// synchronizer depends on the peak autocorrelation standing far above
/// every off-peak shift, and code pools depend on low pairwise
/// cross-correlation. Computed over cyclic shifts.
struct CorrelationProfile {
  double peak = 1.0;           ///< autocorrelation at shift 0 (always 1)
  double max_off_peak = 0.0;   ///< max |autocorrelation| over shifts != 0
  double mean_abs_off_peak = 0.0;
};

class SpreadCode;  // dsss/spread_code.hpp

/// Cyclic autocorrelation profile of `code`.
[[nodiscard]] CorrelationProfile autocorrelation_profile(const SpreadCode& code);

/// Max |cross-correlation| of a and b over all cyclic shifts of b.
/// Precondition: equal lengths.
[[nodiscard]] double max_cross_correlation(const SpreadCode& a, const SpreadCode& b);

}  // namespace jrsnd::dsss
