// Pseudorandom DSSS spread codes (paper §III).
//
// A spread code is an N-chip NRZ sequence of +1/-1 values. We store chips
// packed in a BitVector (bit 1 <-> chip +1, bit 0 <-> chip -1) so that the
// correlation between two length-N sequences reduces to
//     corr = (N - 2 * hamming) / N,
// computable with XOR + popcount at word granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bit_vector.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace jrsnd::dsss {

class SpreadCode {
 public:
  /// Wraps an explicit chip pattern.
  explicit SpreadCode(BitVector chips, CodeId id = kInvalidCode);

  /// A fresh pseudorandom code of `length` chips.
  static SpreadCode random(Rng& rng, std::size_t length, CodeId id = kInvalidCode);

  [[nodiscard]] std::size_t length() const noexcept { return chips_.size(); }
  [[nodiscard]] CodeId id() const noexcept { return id_; }

  /// Chip value at `index`: +1 or -1.
  [[nodiscard]] int chip(std::size_t index) const { return chips_.get(index) ? +1 : -1; }

  /// Packed chip pattern (bit 1 <-> +1).
  [[nodiscard]] const BitVector& bits() const noexcept { return chips_; }

  /// Normalized correlation with a same-length packed chip window, in
  /// [-1, +1]: +1 for identical, -1 for inverted.
  [[nodiscard]] double correlate(const BitVector& window) const;

  bool operator==(const SpreadCode& other) const noexcept { return chips_ == other.chips_; }

 private:
  BitVector chips_;
  CodeId id_;
};

}  // namespace jrsnd::dsss
