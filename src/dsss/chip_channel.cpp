#include "dsss/chip_channel.hpp"

namespace jrsnd::dsss {

ChipChannel::ChipChannel(std::size_t duration_chips)
    : soft_(duration_chips, 0), active_(duration_chips, false) {}

void ChipChannel::add(const Transmission& tx) {
  for (std::size_t i = 0; i < tx.chips.size(); ++i) {
    const std::size_t pos = tx.start_chip + i;
    if (pos >= soft_.size()) break;
    soft_[pos] += tx.chips.get(i) ? +1 : -1;
    active_[pos] = true;
  }
}

BitVector ChipChannel::receive(Rng& rng) const {
  BitVector out(soft_.size());
  for (std::size_t i = 0; i < soft_.size(); ++i) {
    if (soft_[i] > 0) {
      out.set(i, true);
    } else if (soft_[i] < 0) {
      out.set(i, false);
    } else {
      out.set(i, rng.bernoulli(0.5));
    }
  }
  return out;
}

}  // namespace jrsnd::dsss
