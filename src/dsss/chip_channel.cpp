#include "dsss/chip_channel.hpp"

#include <algorithm>
#include <cassert>

namespace jrsnd::dsss {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t chips) { return (chips + kWordBits - 1) / kWordBits; }
}  // namespace

void ChipChannel::reset(std::size_t duration_chips) {
  duration_ = duration_chips;
  packed_ = true;
  materialized_ = false;
  covered_.assign(word_count(duration_chips), 0);
  up_.assign(word_count(duration_chips), 0);
  soft_.clear();
  active_.clear();
}

void ChipChannel::reserve(std::size_t duration_chips) {
  covered_.reserve(word_count(duration_chips));
  up_.reserve(word_count(duration_chips));
}

void ChipChannel::add(std::size_t start_chip, const BitVector& chips) {
  if (start_chip >= duration_) return;
  const std::size_t count = std::min(chips.size(), duration_ - start_chip);
  if (count == 0) return;
  materialized_ = false;
  const std::span<const std::uint64_t> words = chips.words();

  if (packed_) {
    // Word-level splice of the pattern into the packed bitmaps, mirroring
    // BitVector::append: each source word lands across at most two
    // destination words at bit offset start_chip. Two passes — detect any
    // overlap with already-covered chips first; only a fully fresh region
    // commits in packed form. Overlap (a collision or jamming superposition)
    // spills to the per-chip representation.
    const std::size_t offset = start_chip % kWordBits;
    const std::size_t src_words = word_count(count);
    bool overlap = false;
    for (std::size_t i = 0; i < src_words && !overlap; ++i) {
      std::uint64_t src = words[i];
      const std::size_t valid = std::min(kWordBits, count - i * kWordBits);
      std::uint64_t mask = valid == kWordBits ? ~std::uint64_t{0}
                                              : ~std::uint64_t{0} << (kWordBits - valid);
      src &= mask;
      const std::size_t wi = start_chip / kWordBits + i;
      overlap = (covered_[wi] & (mask >> offset)) != 0;
      if (!overlap && offset != 0 && wi + 1 < covered_.size()) {
        overlap = (covered_[wi + 1] & (mask << (kWordBits - offset))) != 0;
      }
    }
    if (!overlap) {
      for (std::size_t i = 0; i < src_words; ++i) {
        std::uint64_t src = words[i];
        const std::size_t valid = std::min(kWordBits, count - i * kWordBits);
        const std::uint64_t mask = valid == kWordBits
                                       ? ~std::uint64_t{0}
                                       : ~std::uint64_t{0} << (kWordBits - valid);
        src &= mask;
        const std::size_t wi = start_chip / kWordBits + i;
        covered_[wi] |= mask >> offset;
        up_[wi] |= src >> offset;
        if (offset != 0 && wi + 1 < covered_.size()) {
          covered_[wi + 1] |= mask << (kWordBits - offset);
          up_[wi + 1] |= src << (kWordBits - offset);
        }
      }
      return;
    }
    spill();
  }

  // Per-chip superposition (post-spill). Walk the pattern's packed words
  // instead of calling get() per chip.
  for (std::size_t i = 0; i < count; ++i) {
    const int up = static_cast<int>((words[i / kWordBits] >> (kWordBits - 1 - i % kWordBits)) & 1u);
    soft_[start_chip + i] += 2 * up - 1;
    active_[start_chip + i] = 1;
  }
}

void ChipChannel::spill() {
  assert(packed_);
  materialize();
  packed_ = false;
  materialized_ = false;
}

void ChipChannel::materialize() const {
  soft_.assign(duration_, 0);
  active_.assign(duration_, 0);
  for (std::size_t i = 0; i < duration_; ++i) {
    const std::uint64_t bit = std::uint64_t{1} << (kWordBits - 1 - i % kWordBits);
    if (covered_[i / kWordBits] & bit) {
      active_[i] = 1;
      soft_[i] = (up_[i / kWordBits] & bit) ? 1 : -1;
    }
  }
  materialized_ = true;
}

const std::vector<int>& ChipChannel::soft() const {
  if (packed_ && !materialized_) materialize();
  return soft_;
}

const std::vector<std::uint8_t>& ChipChannel::active() const {
  if (packed_ && !materialized_) materialize();
  return active_;
}

BitVector ChipChannel::receive(Rng& rng) const {
  BitVector out;
  receive_into(rng, out);
  return out;
}

void ChipChannel::receive_into(Rng& rng, BitVector& out) const {
  out.clear();
  out.reserve(duration_);

  if (packed_) {
    // Word-parallel fast path: fully covered words are the transmitted chips
    // verbatim; elsewhere, draw noise for the uncovered chips only — in chip
    // order, exactly as the per-chip path would.
    const std::size_t nwords = word_count(duration_);
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::size_t valid = std::min(kWordBits, duration_ - w * kWordBits);
      const std::uint64_t mask =
          valid == kWordBits ? ~std::uint64_t{0} : ~std::uint64_t{0} << (kWordBits - valid);
      const std::uint64_t cov = covered_[w];
      std::uint64_t word = up_[w];
      if ((cov & mask) != mask) {
        std::uint64_t noise = 0;
        for (std::size_t j = 0; j < valid; ++j) {
          const std::uint64_t bit = std::uint64_t{1} << (kWordBits - 1 - j);
          if (!(cov & bit) && rng.bernoulli(0.5)) noise |= bit;
        }
        word = (word & cov) | noise;
      }
      out.append_uint(word >> (kWordBits - valid), valid);
    }
    return;
  }

  // Per-chip slow path (overlapping signals): hard sign decision on the soft
  // sums, accumulated into a word-sized register and appended 64 chips at a
  // time — BitVector::set per chip would dominate the whole receive path.
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (std::size_t i = 0; i < duration_; ++i) {
    bool chip = false;
    if (soft_[i] > 0) {
      chip = true;
    } else if (soft_[i] < 0) {
      chip = false;
    } else {
      chip = rng.bernoulli(0.5);  // tie or silence: thermal noise
    }
    word = (word << 1) | static_cast<std::uint64_t>(chip);
    if (++filled == kWordBits) {
      out.append_uint(word, kWordBits);
      word = 0;
      filled = 0;
    }
  }
  if (filled != 0) out.append_uint(word, filled);
}

}  // namespace jrsnd::dsss
