#include "dsss/spreader.hpp"

#include <cassert>
#include <stdexcept>

#include "dsss/sync_kernel.hpp"
#include "obs/prof/perf_counters.hpp"

namespace jrsnd::dsss {

BitVector spread(const BitVector& message, const SpreadCode& code) {
  BitVector flipped;
  BitVector chips;
  spread_into(message, code, flipped, chips);
  return chips;
}

void spread_into(const BitVector& message, const SpreadCode& code, BitVector& flipped_scratch,
                 BitVector& out) {
  // NRZ product: message +1 keeps the chip pattern, -1 inverts it. Both
  // patterns are precomputed so each message bit is one word-level append.
  const BitVector& direct = code.bits();
  flipped_scratch.assign_inverted(direct);
  out.clear();
  out.reserve(message.size() * code.length());
  for (std::size_t bit = 0; bit < message.size(); ++bit) {
    out.append(message.get(bit) ? direct : flipped_scratch);
  }
}

namespace {

/// Threshold decision shared by every despread path: the correlation source
/// differs (slice-free kernel vs. shift table), the decision does not.
DespreadBit decide(double corr, double tau) noexcept {
  DespreadBit out;
  out.correlation = corr;
  if (corr >= tau) {
    out.value = true;
  } else if (corr <= -tau) {
    out.value = false;
  } else {
    out.erased = true;
  }
  return out;
}

}  // namespace

DespreadBit despread_bit(const BitVector& chips, std::size_t start, const SpreadCode& code,
                         double tau) {
  assert(start + code.length() <= chips.size());
  return decide(correlate_at(chips, start, code.bits()), tau);
}

DespreadBit despread_bit(const BitVector& chips, std::size_t start, const ShiftTable& code,
                         double tau) {
  assert(start + code.length() <= chips.size());
  return decide(code.correlate(chips, start), tau);
}

namespace {

template <typename CodeLike>
DespreadResult despread_impl(const BitVector& chips, std::size_t start, std::size_t bit_count,
                             const CodeLike& code, double tau) {
  if (start + bit_count * code.length() > chips.size()) {
    throw std::invalid_argument("despread: window exceeds chip buffer");
  }
  DespreadResult result;
  for (std::size_t bit = 0; bit < bit_count; ++bit) {
    const DespreadBit d = despread_bit(chips, start + bit * code.length(), code, tau);
    result.bits.push_back(d.value);
    if (d.erased) result.erased_bits.push_back(bit);
  }
  return result;
}

}  // namespace

DespreadResult despread(const BitVector& chips, std::size_t start, std::size_t bit_count,
                        const SpreadCode& code, double tau) {
  return despread_impl(chips, start, bit_count, code, tau);
}

DespreadResult despread(const BitVector& chips, std::size_t start, std::size_t bit_count,
                        const ShiftTable& code, double tau) {
  return despread_impl(chips, start, bit_count, code, tau);
}

void despread_into(const BitVector& chips, std::size_t start, std::size_t bit_count,
                   const ShiftTable& code, double tau, DespreadResult& out) {
  if (start + bit_count * code.length() > chips.size()) {
    throw std::invalid_argument("despread: window exceeds chip buffer");
  }
  JRSND_PERF_REGION("dsss.despread");
  out.bits.clear();
  out.bits.reserve(bit_count);
  out.erased_bits.clear();
  for (std::size_t bit = 0; bit < bit_count; ++bit) {
    const DespreadBit d = despread_bit(chips, start + bit * code.length(), code, tau);
    out.bits.push_back(d.value);
    if (d.erased) out.erased_bits.push_back(bit);
  }
}

void despread_into(const BitVector& chips, std::size_t start, std::size_t bit_count,
                   const BatchShiftTable& batch, std::size_t lane, double tau,
                   DespreadResult& out) {
  assert(lane < batch.size());
  if (start + bit_count * batch.length() > chips.size()) {
    throw std::invalid_argument("despread: window exceeds chip buffer");
  }
  JRSND_PERF_REGION("dsss.despread");
  out.bits.clear();
  out.bits.reserve(bit_count);
  out.erased_bits.clear();
  for (std::size_t bit = 0; bit < bit_count; ++bit) {
    const DespreadBit d =
        decide(batch.correlate_lane(lane, chips, start + bit * batch.length()), tau);
    out.bits.push_back(d.value);
    if (d.erased) out.erased_bits.push_back(bit);
  }
}

}  // namespace jrsnd::dsss
