#include "dsss/spreader.hpp"

#include <cassert>
#include <stdexcept>

namespace jrsnd::dsss {

BitVector spread(const BitVector& message, const SpreadCode& code) {
  // NRZ product: message +1 keeps the chip pattern, -1 inverts it. Both
  // patterns are precomputed so each message bit is one word-level append.
  const BitVector& direct = code.bits();
  const BitVector flipped = direct.inverted();
  BitVector chips;
  for (std::size_t bit = 0; bit < message.size(); ++bit) {
    chips.append(message.get(bit) ? direct : flipped);
  }
  return chips;
}

DespreadBit despread_bit(const BitVector& chips, std::size_t start, const SpreadCode& code,
                         double tau) {
  assert(start + code.length() <= chips.size());
  const BitVector window = chips.slice(start, code.length());
  const double corr = code.correlate(window);
  DespreadBit out;
  out.correlation = corr;
  if (corr >= tau) {
    out.value = true;
  } else if (corr <= -tau) {
    out.value = false;
  } else {
    out.erased = true;
  }
  return out;
}

DespreadResult despread(const BitVector& chips, std::size_t start, std::size_t bit_count,
                        const SpreadCode& code, double tau) {
  if (start + bit_count * code.length() > chips.size()) {
    throw std::invalid_argument("despread: window exceeds chip buffer");
  }
  DespreadResult result;
  for (std::size_t bit = 0; bit < bit_count; ++bit) {
    const DespreadBit d = despread_bit(chips, start + bit * code.length(), code, tau);
    result.bits.push_back(d.value);
    if (d.erased) result.erased_bits.push_back(bit);
  }
  return result;
}

}  // namespace jrsnd::dsss
