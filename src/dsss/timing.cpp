#include "dsss/timing.hpp"

#include <cassert>
#include <cmath>

namespace jrsnd::dsss {

TimingModel::TimingModel(const TimingInputs& in) : in_(in) {
  assert(in.code_length_chips > 0 && in.chip_rate_bps > 0 && in.codes_per_node > 0 &&
         in.rx_chains > 0);
  const double n = static_cast<double>(in.code_length_chips);
  const double m = static_cast<double>(in.codes_per_node);
  const double lh = static_cast<double>(in.hello_coded_bits);

  t_h_ = Duration(lh * n / in.chip_rate_bps);
  t_b_ = Duration((m + 1.0) * t_h_.seconds());
  lambda_ = in.rho_seconds_per_bit * n * m * in.chip_rate_bps /
            static_cast<double>(in.rx_chains);
  t_p_ = Duration(lambda_ * t_b_.seconds());
  rounds_ = static_cast<std::uint64_t>(std::ceil((lambda_ + 1.0) * (m + 1.0) / m));
}

Duration TimingModel::hello_broadcast_duration() const noexcept {
  return Duration(static_cast<double>(rounds_) *
                  static_cast<double>(in_.codes_per_node) * t_h_.seconds());
}

std::uint64_t TimingModel::buffer_chips() const noexcept {
  return static_cast<std::uint64_t>(std::llround(in_.chip_rate_bps * t_b_.seconds()));
}

Duration TimingModel::message_time(std::size_t coded_bits) const noexcept {
  return Duration(static_cast<double>(coded_bits) *
                  static_cast<double>(in_.code_length_chips) / in_.chip_rate_bps);
}

}  // namespace jrsnd::dsss
