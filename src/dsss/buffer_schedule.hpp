// Buffer-occupancy model of the §V-B schedule.
//
// The paper asserts ("It can be easily shown that...") that the duty cycle
//   during [i t_p, (i+1) t_p): process the chips buffered during
//   [i t_p - t_b, i t_p), delete them as processed, and capture the chips
//   arriving during [(i+1) t_p - t_b, (i+1) t_p)
// never overflows a buffer of 2 f chips (f = R t_b). This module makes the
// claim checkable: it walks the schedule over an arbitrary horizon and
// reports the exact occupancy high-water mark, the capture windows, and
// whether a given chip instant lands in a captured window. Tests verify
// the paper's bound for every lambda regime, including the degenerate
// lambda < 1 (processing faster than buffering).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "dsss/timing.hpp"

namespace jrsnd::dsss {

class BufferSchedule {
 public:
  /// `phase` shifts the node's duty cycle (nodes are unsynchronized).
  BufferSchedule(const TimingModel& timing, Duration phase = Duration(0.0));

  struct Window {
    TimePoint capture_start;    ///< chips arriving from here ...
    TimePoint capture_end;      ///< ... to here are stored
    TimePoint processing_start; ///< == capture_end
    TimePoint processing_end;   ///< processed chips are deleted by here
  };

  /// The i-th capture/processing window (i >= 0).
  [[nodiscard]] Window window(std::uint64_t index) const;

  /// True if a chip arriving at `t` falls inside some capture window.
  [[nodiscard]] bool captures(TimePoint t) const;

  /// Buffer occupancy (in chips) at time `t`: captured-but-not-yet-deleted
  /// chips, assuming linear capture at R and linear deletion over the
  /// processing span.
  [[nodiscard]] double occupancy_chips(TimePoint t) const;

  /// Exact high-water mark of occupancy over `windows` duty cycles.
  [[nodiscard]] double max_occupancy_chips(std::uint64_t windows = 64) const;

  /// The paper's claimed bound: two buffers' worth of chips, 2 f = 2 R t_b.
  [[nodiscard]] double claimed_bound_chips() const;

 private:
  const TimingModel& timing_;
  double phase_s_;
  double t_b_;
  double t_p_;
  double rate_;
};

}  // namespace jrsnd::dsss
