// Cached per-codebook scan precomputation (ROADMAP: transmit hot path).
//
// The sliding-window scan's setup cost — one ShiftTable per candidate code —
// is pure function of the codebook, yet find_first/all_messages historically
// rebuilt the tables on every call: once per transmission *and once more per
// recover-and-rescan iteration*, even though a receiver's codebook changes
// only when the authority rotates codes. PreparedCodebook owns a codebook
// snapshot and lazily builds its tables exactly once, invalidating them only
// when the codes actually change; the scan entry points that take a
// PreparedCodebook (dsss/sliding_window.hpp) then run with zero per-call
// setup.
//
// Thread safety: tables() uses double-checked locking (atomic flag with
// acquire/release ordering plus a build mutex), so any number of PR-2
// thread-pool workers may scan against one shared PreparedCodebook
// concurrently. Mutation (assign / assign_if_changed) is NOT synchronized
// against concurrent readers — snapshot semantics: build the codebook, then
// share it read-only, exactly how the simulation engines use per-run worlds.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "dsss/spread_code.hpp"
#include "dsss/sync_kernel.hpp"

namespace jrsnd::dsss {

class PreparedCodebook {
 public:
  PreparedCodebook() = default;
  explicit PreparedCodebook(std::vector<SpreadCode> codes) { assign(std::move(codes)); }

  /// Copies transfer the codes but not the tables (they rebuild lazily);
  /// moves keep everything. Neither is synchronized — copy/move during
  /// single-threaded setup only.
  PreparedCodebook(const PreparedCodebook& other) : codes_(other.codes_) {}
  PreparedCodebook(PreparedCodebook&& other) noexcept
      : codes_(std::move(other.codes_)),
        tables_(std::move(other.tables_)),
        batch_(std::move(other.batch_)),
        built_(other.built_.load(std::memory_order_relaxed)) {}
  PreparedCodebook& operator=(const PreparedCodebook& other) {
    if (this != &other) {
      codes_ = other.codes_;
      tables_.clear();
      batch_.clear();
      built_.store(false, std::memory_order_relaxed);
    }
    return *this;
  }
  PreparedCodebook& operator=(PreparedCodebook&& other) noexcept {
    if (this != &other) {
      codes_ = std::move(other.codes_);
      tables_ = std::move(other.tables_);
      batch_ = std::move(other.batch_);
      built_.store(other.built_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    }
    return *this;
  }

  /// Replaces the codebook and invalidates the cached tables.
  void assign(std::vector<SpreadCode> codes);

  /// assign() only if `codes` differs from the current snapshot. The
  /// comparison is word-level over the packed chip patterns and allocates
  /// nothing, so calling this once per transmission (as ChipPhy does for the
  /// monitored-code scan) costs a few word compares in the steady state.
  /// Returns true when the codebook changed (tables were invalidated).
  bool assign_if_changed(std::span<const SpreadCode> codes);

  [[nodiscard]] std::span<const SpreadCode> codes() const noexcept { return codes_; }
  [[nodiscard]] std::size_t size() const noexcept { return codes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return codes_.empty(); }

  /// Chip length shared by every code, or 0 when empty.
  [[nodiscard]] std::size_t code_length() const noexcept {
    return codes_.empty() ? 0 : codes_[0].length();
  }

  /// True when every code shares codes()[0].length() — the scan stride
  /// precondition, validated once at assign() instead of once per scan.
  [[nodiscard]] bool uniform_lengths() const noexcept { return uniform_; }

  /// The per-code ShiftTables, built on first use and reused until the
  /// codebook changes. Safe to call from multiple threads concurrently.
  [[nodiscard]] std::span<const ShiftTable> tables() const;

  /// The SIMD-batched table groups (one per distinct code length, so a
  /// uniform codebook yields exactly one group — see build_batch_tables),
  /// built and cached together with tables() under the same double-checked
  /// flag. Safe to call from multiple threads concurrently.
  [[nodiscard]] std::span<const BatchShiftTable> batch_tables() const;

 private:
  void ensure_built() const;

  std::vector<SpreadCode> codes_;
  bool uniform_ = true;
  mutable std::vector<ShiftTable> tables_;
  mutable std::vector<BatchShiftTable> batch_;
  mutable std::atomic<bool> built_{false};
  mutable std::mutex build_mutex_;
};

/// Per-receiver PreparedCodebook store for Codebook callbacks: test worlds
/// and tools look up (or create) the prepared form of node `id`'s codebook
/// and refresh it only when the underlying codes changed. Entries are
/// pointer-stable, so the returned references survive later lookups.
/// The map itself is mutex-guarded; concurrent mutation of one *entry*
/// follows PreparedCodebook's snapshot rules (single writer).
class NodeCodebookCache {
 public:
  /// The prepared codebook for `id`, refreshed from `codes` if it changed.
  const PreparedCodebook& prepare(NodeId id, std::span<const SpreadCode> codes);

  /// The (possibly empty) entry for `id`, creating it on first use.
  PreparedCodebook& entry(NodeId id);

 private:
  std::unordered_map<NodeId, PreparedCodebook> entries_;
  std::mutex mutex_;
};

}  // namespace jrsnd::dsss
