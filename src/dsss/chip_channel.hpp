// Chip-level wireless channel with jamming superposition (paper §§III-IV).
//
// Concurrent transmissions add in the air: each active transmitter
// contributes +1 or -1 per chip, and the receiver's demodulator makes a hard
// sign decision per chip (ties and silent chips resolve to random chips —
// thermal noise). A jammer that transmits the *same* spread code in sync
// therefore cancels or corrupts chips and drives the per-bit correlation
// below tau; a jammer using a different pseudorandom code just adds
// uncorrelated chips that shrink correlation magnitude by a factor the
// despreader tolerates (the paper's negligible-interference assumption for
// large N).
//
// Representation: the overwhelmingly common window holds non-overlapping
// transmissions (one message, clean channel), where every covered chip's
// hard decision equals the transmitted chip. That case is kept in packed
// 64-chip words (`covered_` / `up_` bitmaps) so add() and receive() run
// word-parallel instead of chip-by-chip. The first *overlapping* add — the
// jamming/collision case — spills the window into the per-chip soft-sum
// arrays and continues there. Both representations produce identical receive
// bits and identical rng draw sequences (one bernoulli per undecided chip,
// in chip order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_vector.hpp"
#include "common/rng.hpp"

namespace jrsnd::dsss {

/// One on-air transmission: a chip pattern placed at an absolute chip offset.
struct Transmission {
  std::size_t start_chip = 0;
  BitVector chips;  ///< packed +-1 chips (bit 1 <-> +1)
};

class ChipChannel {
 public:
  /// An empty window; reset() before use.
  ChipChannel() = default;

  /// A channel observation window of `duration_chips` chips.
  explicit ChipChannel(std::size_t duration_chips) { reset(duration_chips); }

  [[nodiscard]] std::size_t duration() const noexcept { return duration_; }

  /// Returns the window to silence at a (possibly new) duration, reusing the
  /// existing storage — the per-transmit reset of the scratch arena. Does not
  /// allocate once capacity covers `duration_chips` (see reserve()).
  void reset(std::size_t duration_chips);

  /// Grows capacity so later reset() calls up to `duration_chips` are
  /// allocation-free.
  void reserve(std::size_t duration_chips);

  /// Superposes a transmission; parts outside the window are clipped.
  void add(const Transmission& tx) { add(tx.start_chip, tx.chips); }

  /// Same, without requiring the chips to be wrapped (and copied) into a
  /// Transmission. Reads the pattern's packed words directly.
  void add(std::size_t start_chip, const BitVector& chips);

  /// Per-chip sums of all contributions (no receiver decision applied).
  [[nodiscard]] const std::vector<int>& soft() const;

  /// Chips that carry at least one transmission (1) vs. silence (0).
  [[nodiscard]] const std::vector<std::uint8_t>& active() const;

  /// Hard sign decision per chip: positive sum -> 1, negative -> 0, zero sum
  /// (tie or silence) -> random. Deterministic given the rng state.
  [[nodiscard]] BitVector receive(Rng& rng) const;

  /// receive() into a caller-owned buffer (cleared and refilled). Identical
  /// bits and identical rng draws; allocation-free once the buffer's
  /// capacity covers duration().
  void receive_into(Rng& rng, BitVector& out) const;

 private:
  /// Switches from the packed to the per-chip representation (first
  /// overlapping add — off the clean hot path).
  void spill();

  /// Fills soft_/active_ from the packed bitmaps for the observer accessors
  /// without leaving packed mode.
  void materialize() const;

  std::size_t duration_ = 0;
  bool packed_ = true;

  // Packed mode: MSB-first 64-chip words, mirroring BitVector's layout.
  // covered_ marks chips carrying a signal; up_ holds the chip value there.
  std::vector<std::uint64_t> covered_;
  std::vector<std::uint64_t> up_;

  // Per-chip mode (after a spill) — and the lazily materialized observer
  // view while still packed (mutable + materialized_ flag).
  mutable std::vector<int> soft_;
  mutable std::vector<std::uint8_t> active_;
  mutable bool materialized_ = false;
};

}  // namespace jrsnd::dsss
