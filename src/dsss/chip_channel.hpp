// Chip-level wireless channel with jamming superposition (paper §§III-IV).
//
// Concurrent transmissions add in the air: each active transmitter
// contributes +1 or -1 per chip, and the receiver's demodulator makes a hard
// sign decision per chip (ties and silent chips resolve to random chips —
// thermal noise). A jammer that transmits the *same* spread code in sync
// therefore cancels or corrupts chips and drives the per-bit correlation
// below tau; a jammer using a different pseudorandom code just adds
// uncorrelated chips that shrink correlation magnitude by a factor the
// despreader tolerates (the paper's negligible-interference assumption for
// large N).
#pragma once

#include <cstddef>
#include <vector>

#include "common/bit_vector.hpp"
#include "common/rng.hpp"

namespace jrsnd::dsss {

/// One on-air transmission: a chip pattern placed at an absolute chip offset.
struct Transmission {
  std::size_t start_chip = 0;
  BitVector chips;  ///< packed +-1 chips (bit 1 <-> +1)
};

class ChipChannel {
 public:
  /// A channel observation window of `duration_chips` chips.
  explicit ChipChannel(std::size_t duration_chips);

  [[nodiscard]] std::size_t duration() const noexcept { return soft_.size(); }

  /// Superposes a transmission; parts outside the window are clipped.
  void add(const Transmission& tx);

  /// Per-chip sums of all contributions (no receiver decision applied).
  [[nodiscard]] const std::vector<int>& soft() const noexcept { return soft_; }

  /// Chips that carry at least one transmission.
  [[nodiscard]] const std::vector<bool>& active() const noexcept { return active_; }

  /// Hard sign decision per chip: positive sum -> 1, negative -> 0, zero sum
  /// (tie or silence) -> random. Deterministic given the rng state.
  [[nodiscard]] BitVector receive(Rng& rng) const;

 private:
  std::vector<int> soft_;
  std::vector<bool> active_;
};

}  // namespace jrsnd::dsss
