#include "dsss/sliding_window.hpp"

#include <cassert>
#include <cmath>

#include "dsss/prepared_codebook.hpp"
#include "dsss/sync_kernel.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"

namespace jrsnd::dsss {

namespace {

/// The scan correlates every window against every candidate at a shared
/// stride, so all candidates must agree on N. Callers that mix pool codes of
/// different lengths have a configuration bug; surface it loudly in debug
/// builds and fail the scan (no hit is better than a bogus one) in release.
bool uniform_code_lengths(std::span<const SpreadCode> codes) noexcept {
  for (const SpreadCode& code : codes) {
    if (code.length() != codes[0].length()) return false;
  }
  return true;
}

/// Per-thread lane scratch for the batched kernel's hamming outputs. Grows
/// to the largest lane_count seen by this thread and is then reused, so a
/// steady-state scan allocates nothing (each thread-pool worker warms its
/// own scratch on its first scan).
std::uint64_t* lane_scratch(std::size_t lanes) {
  static thread_local std::vector<std::uint64_t> scratch;
  if (scratch.size() < lanes) scratch.resize(lanes);
  return scratch.data();
}

/// Where the batched scan first synchronized.
struct ScanPos {
  std::size_t code = 0;    ///< candidate index within the group
  std::size_t offset = 0;  ///< chip offset of the synchronized window
};

/// The threshold test translated into the Hamming domain: |corr(h)| >= tau
/// ⟺ h < hit_below || h >= hit_from. correlation_from_hamming is strictly
/// decreasing in h, so the h passing the positive test form a prefix and
/// those passing the negative test a suffix; the bounds are found with the
/// SAME double-precision predicate the per-code path evaluates, making the
/// integer compare in the hot loop exactly equivalent (including rounding at
/// the boundary) while skipping two int->double conversions per candidate.
struct HammingBounds {
  std::size_t hit_below = 0;  ///< h < hit_below  ⇒  corr >= tau
  std::size_t hit_from = 0;   ///< h >= hit_from  ⇒  corr <= -tau
};

HammingBounds hamming_bounds(std::size_t n, double tau) {
  HammingBounds b;
  while (b.hit_below <= n && correlation_from_hamming(n, b.hit_below) >= tau) ++b.hit_below;
  b.hit_from = n + 1;
  while (b.hit_from > 0 && correlation_from_hamming(n, b.hit_from - 1) <= -tau) --b.hit_from;
  return b;
}

/// The batched sync search: one pass over the chip buffer scores every code
/// in the group per window via BatchShiftTable::hamming_all, then applies
/// the threshold in candidate order — so the (offset, code) it reports is
/// exactly the one the per-code loop would have found, and `below_tau`
/// advances by the number of candidates the per-code loop would have
/// rejected before it. This loop is the paper's t_p = rho*N*m*f hot path:
/// zero allocation (thread-local scratch), zero bit-shifting, and one
/// buffer-word load feeding every candidate on the active SIMD backend.
bool batch_sync_search(const BitVector& buffer, const BatchShiftTable& batch,
                       std::size_t needed, double tau, std::size_t start_offset, ScanPos& pos,
                       std::uint64_t& below_tau) {
  JRSND_PERF_REGION("dsss.sync.batch_scan");
  const std::size_t m = batch.size();
  const std::size_t lanes = batch.lane_count();
  const HammingBounds bounds = hamming_bounds(batch.length(), tau);
  const std::span<std::uint64_t> hams{lane_scratch(lanes), lanes};
  for (std::size_t offset = start_offset; offset + needed <= buffer.size(); ++offset) {
    batch.hamming_all(buffer, offset, hams);
    for (std::size_t c = 0; c < m; ++c) {
      if (hams[c] < bounds.hit_below || hams[c] >= bounds.hit_from) {
        pos.code = c;
        pos.offset = offset;
        below_tau += c;
        return true;
      }
    }
    below_tau += m;
  }
  return false;
}

/// The shared scan core: every find_first entry point — per-call batch
/// tables, cached PreparedCodebook tables, optional-returning or into-a-hit
/// — runs this loop, so their results are bit-identical by construction.
/// `despread_hit(pos, out)` recovers the message once the search locks on;
/// callers pick the table source (cached per-code ShiftTable or a batch
/// lane), every choice bit-identical. With a caller-reused `out` the whole
/// call is allocation-free in the steady state.
template <typename DespreadHit>
bool scan_first(const BitVector& buffer, const BatchShiftTable& batch, std::size_t message_bits,
                double tau, std::size_t start_offset, SyncHit& out, DespreadHit&& despread_hit) {
  if (batch.empty() || message_bits == 0) return false;
  const std::size_t needed = message_bits * batch.length();
  if (buffer.size() < needed) return false;

  JRSND_COUNT("dsss.sync.scans");
  JRSND_PERF_REGION("dsss.sync.scan");
  std::uint64_t below_tau = 0;
  ScanPos pos;
  if (batch_sync_search(buffer, batch, needed, tau, start_offset, pos, below_tau)) {
    out.code_index = pos.code;
    out.chip_offset = pos.offset;
    despread_hit(pos, out.message);
    JRSND_COUNT("dsss.sync.hits");
    JRSND_COUNT_N("dsss.sync.windows_below_tau", below_tau);
    return true;
  }
  JRSND_COUNT("dsss.sync.misses");
  JRSND_COUNT_N("dsss.sync.windows_below_tau", below_tau);
  return false;
}

/// Shared find_all core over a batch group (see scan_first).
template <typename DespreadHit>
std::vector<SyncHit> scan_all(const BitVector& buffer, const BatchShiftTable& batch,
                              std::size_t message_bits, double tau, DespreadHit&& despread_hit) {
  std::vector<SyncHit> hits;
  if (batch.empty() || message_bits == 0) return hits;
  const std::size_t needed = message_bits * batch.length();

  std::size_t offset = 0;
  std::uint64_t below_tau = 0;
  ScanPos pos;
  while (batch_sync_search(buffer, batch, needed, tau, offset, pos, below_tau)) {
    SyncHit hit;
    hit.code_index = pos.code;
    hit.chip_offset = pos.offset;
    despread_hit(pos, hit.message);
    hits.push_back(std::move(hit));
    offset = pos.offset + needed;  // resume after the recovered message
  }
  return hits;
}

}  // namespace

std::optional<SyncHit> find_first_message(const BitVector& buffer,
                                          std::span<const SpreadCode> codes,
                                          std::size_t message_bits, double tau,
                                          std::size_t start_offset) {
  if (codes.empty()) return std::nullopt;
  assert(uniform_code_lengths(codes) && "find_first_message: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return std::nullopt;

  // One batched table for the whole candidate group, built once per scan and
  // amortized over the ~f * m window correlations. Callers that scan the
  // same codebook repeatedly should prefer the PreparedCodebook overload,
  // which caches this step across calls.
  const BatchShiftTable batch(codes);
  SyncHit hit;
  if (scan_first(buffer, batch, message_bits, tau, start_offset, hit,
                 [&](const ScanPos& pos, DespreadResult& message) {
                   despread_into(buffer, pos.offset, message_bits, batch, pos.code, tau, message);
                 })) {
    return hit;
  }
  return std::nullopt;
}

std::optional<SyncHit> find_first_message(const BitVector& buffer,
                                          const PreparedCodebook& codebook,
                                          std::size_t message_bits, double tau,
                                          std::size_t start_offset) {
  SyncHit hit;
  if (find_first_message_into(buffer, codebook, message_bits, tau, start_offset, hit)) {
    return hit;
  }
  return std::nullopt;
}

bool find_first_message_into(const BitVector& buffer, const PreparedCodebook& codebook,
                             std::size_t message_bits, double tau, std::size_t start_offset,
                             SyncHit& out) {
  assert(codebook.uniform_lengths() && "find_first_message: mixed candidate code lengths");
  if (!codebook.uniform_lengths()) return false;
  const std::span<const BatchShiftTable> groups = codebook.batch_tables();
  if (groups.empty()) return false;
  // Uniform codebook -> exactly one batch group; despread from the cached
  // per-code ShiftTable (already built alongside the batch form).
  const std::span<const ShiftTable> tables = codebook.tables();
  return scan_first(buffer, groups[0], message_bits, tau, start_offset, out,
                    [&](const ScanPos& pos, DespreadResult& message) {
                      despread_into(buffer, pos.offset, message_bits, tables[pos.code], tau,
                                    message);
                    });
}

std::vector<SyncHit> find_all_messages(const BitVector& buffer, std::span<const SpreadCode> codes,
                                       std::size_t message_bits, double tau) {
  if (codes.empty()) return {};
  assert(uniform_code_lengths(codes) && "find_all_messages: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return {};

  const BatchShiftTable batch(codes);
  return scan_all(buffer, batch, message_bits, tau,
                  [&](const ScanPos& pos, DespreadResult& message) {
                    despread_into(buffer, pos.offset, message_bits, batch, pos.code, tau, message);
                  });
}

std::vector<SyncHit> find_all_messages(const BitVector& buffer, const PreparedCodebook& codebook,
                                       std::size_t message_bits, double tau) {
  assert(codebook.uniform_lengths() && "find_all_messages: mixed candidate code lengths");
  if (!codebook.uniform_lengths()) return {};
  const std::span<const BatchShiftTable> groups = codebook.batch_tables();
  if (groups.empty()) return {};
  const std::span<const ShiftTable> tables = codebook.tables();
  return scan_all(buffer, groups[0], message_bits, tau,
                  [&](const ScanPos& pos, DespreadResult& message) {
                    despread_into(buffer, pos.offset, message_bits, tables[pos.code], tau,
                                  message);
                  });
}

std::optional<SyncHit> find_first_message_reference(const BitVector& buffer,
                                                    std::span<const SpreadCode> codes,
                                                    std::size_t message_bits, double tau,
                                                    std::size_t start_offset) {
  if (codes.empty() || message_bits == 0) return std::nullopt;
  assert(uniform_code_lengths(codes) &&
         "find_first_message_reference: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return std::nullopt;
  const std::size_t n = codes[0].length();
  const std::size_t needed = message_bits * n;
  if (buffer.size() < needed) return std::nullopt;

  for (std::size_t offset = start_offset; offset + needed <= buffer.size(); ++offset) {
    // One slice per window position, shared across the m candidates — the
    // slice is offset-dependent, not code-dependent.
    const BitVector window = buffer.slice(offset, n);
    for (std::size_t c = 0; c < codes.size(); ++c) {
      const double corr = codes[c].correlate(window);
      if (std::abs(corr) >= tau) {
        SyncHit hit;
        hit.code_index = c;
        hit.chip_offset = offset;
        hit.message = despread(buffer, offset, message_bits, codes[c], tau);
        return hit;
      }
    }
  }
  return std::nullopt;
}

std::vector<SyncHit> find_all_messages_reference(const BitVector& buffer,
                                                 std::span<const SpreadCode> codes,
                                                 std::size_t message_bits, double tau) {
  std::vector<SyncHit> hits;
  if (codes.empty() || message_bits == 0) return hits;
  assert(uniform_code_lengths(codes) &&
         "find_all_messages_reference: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return hits;
  const std::size_t n = codes[0].length();
  const std::size_t needed = message_bits * n;

  std::size_t offset = 0;
  while (offset + needed <= buffer.size()) {
    bool found = false;
    const BitVector window = buffer.slice(offset, n);
    for (std::size_t c = 0; c < codes.size(); ++c) {
      const double corr = codes[c].correlate(window);
      if (std::abs(corr) >= tau) {
        SyncHit hit;
        hit.code_index = c;
        hit.chip_offset = offset;
        hit.message = despread(buffer, offset, message_bits, codes[c], tau);
        hits.push_back(std::move(hit));
        offset += needed;  // resume after the recovered message
        found = true;
        break;
      }
    }
    if (!found) ++offset;
  }
  return hits;
}

std::size_t scan_correlation_count(std::size_t buffer_chips, std::size_t code_count,
                                   std::size_t code_length) {
  if (buffer_chips < code_length) return 0;
  return (buffer_chips - code_length + 1) * code_count;
}

}  // namespace jrsnd::dsss
