#include "dsss/sliding_window.hpp"

#include <cmath>

#include "obs/metrics_registry.hpp"

namespace jrsnd::dsss {

std::optional<SyncHit> find_first_message(const BitVector& buffer,
                                          std::span<const SpreadCode> codes,
                                          std::size_t message_bits, double tau,
                                          std::size_t start_offset) {
  if (codes.empty() || message_bits == 0) return std::nullopt;
  const std::size_t n = codes[0].length();
  const std::size_t needed = message_bits * n;
  if (buffer.size() < needed) return std::nullopt;

  JRSND_COUNT("dsss.sync.scans");
  // Accumulated locally and flushed once per scan: the window loop is the
  // paper's t_p = rho*N*m*f hot path and must stay free of shared writes.
  std::uint64_t below_tau = 0;
  for (std::size_t offset = start_offset; offset + needed <= buffer.size(); ++offset) {
    for (std::size_t c = 0; c < codes.size(); ++c) {
      const BitVector window = buffer.slice(offset, n);
      const double corr = codes[c].correlate(window);
      if (std::abs(corr) >= tau) {
        SyncHit hit;
        hit.code_index = c;
        hit.chip_offset = offset;
        hit.message = despread(buffer, offset, message_bits, codes[c], tau);
        JRSND_COUNT("dsss.sync.hits");
        JRSND_COUNT_N("dsss.sync.windows_below_tau", below_tau);
        return hit;
      }
      ++below_tau;
    }
  }
  JRSND_COUNT("dsss.sync.misses");
  JRSND_COUNT_N("dsss.sync.windows_below_tau", below_tau);
  return std::nullopt;
}

std::vector<SyncHit> find_all_messages(const BitVector& buffer, std::span<const SpreadCode> codes,
                                       std::size_t message_bits, double tau) {
  std::vector<SyncHit> hits;
  if (codes.empty() || message_bits == 0) return hits;
  const std::size_t n = codes[0].length();
  const std::size_t needed = message_bits * n;

  std::size_t offset = 0;
  while (offset + needed <= buffer.size()) {
    bool found = false;
    for (; offset + needed <= buffer.size() && !found; /* advanced below */) {
      for (std::size_t c = 0; c < codes.size(); ++c) {
        const BitVector window = buffer.slice(offset, n);
        const double corr = codes[c].correlate(window);
        if (std::abs(corr) >= tau) {
          SyncHit hit;
          hit.code_index = c;
          hit.chip_offset = offset;
          hit.message = despread(buffer, offset, message_bits, codes[c], tau);
          hits.push_back(std::move(hit));
          offset += needed;  // resume after the recovered message
          found = true;
          break;
        }
      }
      if (!found) ++offset;
    }
    if (!found) break;
  }
  return hits;
}

std::size_t scan_correlation_count(std::size_t buffer_chips, std::size_t code_count,
                                   std::size_t code_length) {
  if (buffer_chips < code_length) return 0;
  return (buffer_chips - code_length + 1) * code_count;
}

}  // namespace jrsnd::dsss
