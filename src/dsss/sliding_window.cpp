#include "dsss/sliding_window.hpp"

#include <cassert>
#include <cmath>

#include "dsss/prepared_codebook.hpp"
#include "dsss/sync_kernel.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"

namespace jrsnd::dsss {

namespace {

/// The scan correlates every window against every candidate at a shared
/// stride, so all candidates must agree on N. Callers that mix pool codes of
/// different lengths have a configuration bug; surface it loudly in debug
/// builds and fail the scan (no hit is better than a bogus one) in release.
bool uniform_code_lengths(std::span<const SpreadCode> codes) noexcept {
  for (const SpreadCode& code : codes) {
    if (code.length() != codes[0].length()) return false;
  }
  return true;
}

/// The shared scan core: every find_first entry point — per-call tables,
/// cached PreparedCodebook tables, optional-returning or into-a-hit — runs
/// this loop, so their results are bit-identical by construction. The loop
/// is the paper's t_p = rho*N*m*f hot path and does zero allocation, zero
/// bit-shifting, and no shared writes (metrics are accumulated locally,
/// flushed once); with a caller-reused `out` the whole call is
/// allocation-free in the steady state.
bool scan_first(const BitVector& buffer, std::span<const ShiftTable> tables,
                std::size_t message_bits, double tau, std::size_t start_offset, SyncHit& out) {
  if (tables.empty() || message_bits == 0) return false;
  const std::size_t needed = message_bits * tables[0].length();
  if (buffer.size() < needed) return false;

  JRSND_COUNT("dsss.sync.scans");
  JRSND_PERF_REGION("dsss.sync.scan");
  std::uint64_t below_tau = 0;
  for (std::size_t offset = start_offset; offset + needed <= buffer.size(); ++offset) {
    for (std::size_t c = 0; c < tables.size(); ++c) {
      const double corr = tables[c].correlate(buffer, offset);
      if (std::abs(corr) >= tau) {
        out.code_index = c;
        out.chip_offset = offset;
        despread_into(buffer, offset, message_bits, tables[c], tau, out.message);
        JRSND_COUNT("dsss.sync.hits");
        JRSND_COUNT_N("dsss.sync.windows_below_tau", below_tau);
        return true;
      }
      ++below_tau;
    }
  }
  JRSND_COUNT("dsss.sync.misses");
  JRSND_COUNT_N("dsss.sync.windows_below_tau", below_tau);
  return false;
}

/// Shared find_all core over prebuilt tables (see scan_first).
std::vector<SyncHit> scan_all(const BitVector& buffer, std::span<const ShiftTable> tables,
                              std::size_t message_bits, double tau) {
  std::vector<SyncHit> hits;
  if (tables.empty() || message_bits == 0) return hits;
  const std::size_t needed = message_bits * tables[0].length();

  std::size_t offset = 0;
  while (offset + needed <= buffer.size()) {
    bool found = false;
    for (std::size_t c = 0; c < tables.size(); ++c) {
      const double corr = tables[c].correlate(buffer, offset);
      if (std::abs(corr) >= tau) {
        SyncHit hit;
        hit.code_index = c;
        hit.chip_offset = offset;
        hit.message = despread(buffer, offset, message_bits, tables[c], tau);
        hits.push_back(std::move(hit));
        offset += needed;  // resume after the recovered message
        found = true;
        break;
      }
    }
    if (!found) ++offset;
  }
  return hits;
}

}  // namespace

std::optional<SyncHit> find_first_message(const BitVector& buffer,
                                          std::span<const SpreadCode> codes,
                                          std::size_t message_bits, double tau,
                                          std::size_t start_offset) {
  if (codes.empty()) return std::nullopt;
  assert(uniform_code_lengths(codes) && "find_first_message: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return std::nullopt;

  // One shift table per candidate, built once per scan and amortized over
  // the ~f * m window correlations. Callers that scan the same codebook
  // repeatedly should prefer the PreparedCodebook overload, which caches
  // this step across calls.
  const std::vector<ShiftTable> tables = build_shift_tables(codes);
  SyncHit hit;
  if (scan_first(buffer, tables, message_bits, tau, start_offset, hit)) return hit;
  return std::nullopt;
}

std::optional<SyncHit> find_first_message(const BitVector& buffer,
                                          const PreparedCodebook& codebook,
                                          std::size_t message_bits, double tau,
                                          std::size_t start_offset) {
  SyncHit hit;
  if (find_first_message_into(buffer, codebook, message_bits, tau, start_offset, hit)) {
    return hit;
  }
  return std::nullopt;
}

bool find_first_message_into(const BitVector& buffer, const PreparedCodebook& codebook,
                             std::size_t message_bits, double tau, std::size_t start_offset,
                             SyncHit& out) {
  assert(codebook.uniform_lengths() && "find_first_message: mixed candidate code lengths");
  if (!codebook.uniform_lengths()) return false;
  return scan_first(buffer, codebook.tables(), message_bits, tau, start_offset, out);
}

std::vector<SyncHit> find_all_messages(const BitVector& buffer, std::span<const SpreadCode> codes,
                                       std::size_t message_bits, double tau) {
  if (codes.empty()) return {};
  assert(uniform_code_lengths(codes) && "find_all_messages: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return {};

  const std::vector<ShiftTable> tables = build_shift_tables(codes);
  return scan_all(buffer, tables, message_bits, tau);
}

std::vector<SyncHit> find_all_messages(const BitVector& buffer, const PreparedCodebook& codebook,
                                       std::size_t message_bits, double tau) {
  assert(codebook.uniform_lengths() && "find_all_messages: mixed candidate code lengths");
  if (!codebook.uniform_lengths()) return {};
  return scan_all(buffer, codebook.tables(), message_bits, tau);
}

std::optional<SyncHit> find_first_message_reference(const BitVector& buffer,
                                                    std::span<const SpreadCode> codes,
                                                    std::size_t message_bits, double tau,
                                                    std::size_t start_offset) {
  if (codes.empty() || message_bits == 0) return std::nullopt;
  assert(uniform_code_lengths(codes) &&
         "find_first_message_reference: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return std::nullopt;
  const std::size_t n = codes[0].length();
  const std::size_t needed = message_bits * n;
  if (buffer.size() < needed) return std::nullopt;

  for (std::size_t offset = start_offset; offset + needed <= buffer.size(); ++offset) {
    // One slice per window position, shared across the m candidates — the
    // slice is offset-dependent, not code-dependent.
    const BitVector window = buffer.slice(offset, n);
    for (std::size_t c = 0; c < codes.size(); ++c) {
      const double corr = codes[c].correlate(window);
      if (std::abs(corr) >= tau) {
        SyncHit hit;
        hit.code_index = c;
        hit.chip_offset = offset;
        hit.message = despread(buffer, offset, message_bits, codes[c], tau);
        return hit;
      }
    }
  }
  return std::nullopt;
}

std::vector<SyncHit> find_all_messages_reference(const BitVector& buffer,
                                                 std::span<const SpreadCode> codes,
                                                 std::size_t message_bits, double tau) {
  std::vector<SyncHit> hits;
  if (codes.empty() || message_bits == 0) return hits;
  assert(uniform_code_lengths(codes) &&
         "find_all_messages_reference: mixed candidate code lengths");
  if (!uniform_code_lengths(codes)) return hits;
  const std::size_t n = codes[0].length();
  const std::size_t needed = message_bits * n;

  std::size_t offset = 0;
  while (offset + needed <= buffer.size()) {
    bool found = false;
    const BitVector window = buffer.slice(offset, n);
    for (std::size_t c = 0; c < codes.size(); ++c) {
      const double corr = codes[c].correlate(window);
      if (std::abs(corr) >= tau) {
        SyncHit hit;
        hit.code_index = c;
        hit.chip_offset = offset;
        hit.message = despread(buffer, offset, message_bits, codes[c], tau);
        hits.push_back(std::move(hit));
        offset += needed;  // resume after the recovered message
        found = true;
        break;
      }
    }
    if (!found) ++offset;
  }
  return hits;
}

std::size_t scan_correlation_count(std::size_t buffer_chips, std::size_t code_count,
                                   std::size_t code_length) {
  if (buffer_chips < code_length) return 0;
  return (buffer_chips - code_length + 1) * code_count;
}

}  // namespace jrsnd::dsss
