#include "dsss/prepared_codebook.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics_registry.hpp"

namespace jrsnd::dsss {

namespace {

bool all_uniform(std::span<const SpreadCode> codes) noexcept {
  for (const SpreadCode& code : codes) {
    if (code.length() != codes[0].length()) return false;
  }
  return true;
}

}  // namespace

void PreparedCodebook::assign(std::vector<SpreadCode> codes) {
  codes_ = std::move(codes);
  uniform_ = all_uniform(codes_);
  tables_.clear();
  batch_.clear();
  built_.store(false, std::memory_order_release);
}

bool PreparedCodebook::assign_if_changed(std::span<const SpreadCode> codes) {
  const bool same = codes.size() == codes_.size() &&
                    std::equal(codes.begin(), codes.end(), codes_.begin());
  if (same) {
    JRSND_COUNT("dsss.prepared.codebook.hits");
    return false;
  }
  JRSND_COUNT("dsss.prepared.codebook.rebuilds");
  assign(std::vector<SpreadCode>(codes.begin(), codes.end()));
  return true;
}

void PreparedCodebook::ensure_built() const {
  // Double-checked: the acquire load pairs with the release store below, so
  // a reader that sees built_ == true also sees the fully-built tables_ and
  // batch_ (one flag covers both forms — they always rebuild together).
  if (built_.load(std::memory_order_acquire)) {
    JRSND_COUNT("dsss.prepared.tables.hits");
    return;
  }
  const std::lock_guard<std::mutex> lock(build_mutex_);
  if (!built_.load(std::memory_order_relaxed)) {
    JRSND_COUNT("dsss.prepared.tables.builds");
    tables_ = build_shift_tables(codes_);
    batch_ = build_batch_tables(codes_);
    built_.store(true, std::memory_order_release);
  } else {
    JRSND_COUNT("dsss.prepared.tables.hits");
  }
}

std::span<const ShiftTable> PreparedCodebook::tables() const {
  ensure_built();
  return tables_;
}

std::span<const BatchShiftTable> PreparedCodebook::batch_tables() const {
  ensure_built();
  return batch_;
}

const PreparedCodebook& NodeCodebookCache::prepare(NodeId id, std::span<const SpreadCode> codes) {
  PreparedCodebook& cached = entry(id);
  cached.assign_if_changed(codes);
  return cached;
}

PreparedCodebook& NodeCodebookCache::entry(NodeId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_[id];
}

}  // namespace jrsnd::dsss
