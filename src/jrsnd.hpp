// Umbrella header: the full public API of the jrsnd library.
//
// Layering (each layer depends only on those above it):
//   common, obs -> crypto, ecc, dsss
//   predist     -> sim -> adversary
//   core        -> baselines
//
// Typical consumers include just what they need; this header is a
// convenience for examples and exploratory use.
#pragma once

// common
#include "common/bit_vector.hpp"
#include "common/hex.hpp"
#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

// obs
#include "obs/event_log.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"
#include "obs/prof/sampling_profiler.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"
#include "obs/trace_analysis.hpp"

// crypto
#include "crypto/hmac.hpp"
#include "crypto/ibc.hpp"
#include "crypto/prf.hpp"
#include "crypto/session_code.hpp"
#include "crypto/sha256.hpp"
#include "crypto/stream.hpp"

// ecc
#include "ecc/ecc_codec.hpp"
#include "ecc/gf256.hpp"
#include "ecc/reed_solomon.hpp"

// dsss
#include "dsss/buffer_schedule.hpp"
#include "dsss/chip_channel.hpp"
#include "dsss/correlator.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spread_code.hpp"
#include "dsss/spreader.hpp"
#include "dsss/timing.hpp"

// fhss
#include "fhss/fhss_channel.hpp"
#include "fhss/fhss_link.hpp"
#include "fhss/hop_sequence.hpp"

// predist
#include "predist/authority.hpp"
#include "predist/code_assignment.hpp"
#include "predist/global_revocation.hpp"
#include "predist/provisioning.hpp"
#include "predist/revocation.hpp"

// sim
#include "sim/event_queue.hpp"
#include "sim/field.hpp"
#include "sim/mobility.hpp"
#include "sim/spatial_index.hpp"
#include "sim/topology.hpp"

// adversary
#include "adversary/compromise.hpp"
#include "adversary/dos_attacker.hpp"
#include "adversary/jammer.hpp"

// fault
#include "fault/fault_plan.hpp"
#include "fault/faulty_phy.hpp"

// core
#include "core/abstract_phy.hpp"
#include "core/analysis.hpp"
#include "core/chip_phy.hpp"
#include "core/discovery_sim.hpp"
#include "core/dndp.hpp"
#include "core/handshake.hpp"
#include "core/jrsnd_node.hpp"
#include "core/latency.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "core/mndp.hpp"
#include "core/params.hpp"
#include "core/periodic_discovery.hpp"
#include "core/phy_model.hpp"
#include "core/schedule_sim.hpp"
#include "core/secure_channel.hpp"
#include "core/tracing_phy.hpp"

// baselines
#include "baselines/global_code.hpp"
#include "baselines/pairwise_code.hpp"
#include "baselines/public_code_set.hpp"
#include "baselines/ufh.hpp"
