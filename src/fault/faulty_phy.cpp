#include "fault/faulty_phy.hpp"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/span.hpp"

namespace jrsnd::fault {

namespace {

/// Fault stream seed: pure function of (plan seed, run salt), deliberately
/// NOT split from the run's root Rng so an inactive plan leaves every
/// existing draw sequence untouched.
std::uint64_t fault_seed(std::uint64_t plan_seed, std::uint64_t run_salt) noexcept {
  std::uint64_t state = plan_seed ^ 0xF4A7C15A0D9E3779ULL;
  const std::uint64_t a = splitmix64(state);
  state ^= run_salt;
  return a ^ splitmix64(state);
}

}  // namespace

FaultyPhy::FaultyPhy(core::PhyModel& inner, const FaultPlan& plan,
                     std::uint64_t run_salt)
    : inner_(inner),
      plan_(plan),
      clocks_(plan),
      rng_(fault_seed(plan.seed, run_salt)) {}

void FaultyPhy::begin_subsession(NodeId a, NodeId b, CodeId code) {
  inner_.begin_subsession(a, b, code);
}

bool FaultyPhy::is_down(NodeId node) const noexcept {
  for (const auto& c : plan_.crashes) {
    if (c.node == node && c.covers(now_)) return true;
  }
  return false;
}

BitVector FaultyPhy::corrupt(BitVector bits) {
  if (bits.size() == 0) return bits;
  // Chip-burst model: flip a contiguous run starting at a random offset,
  // clamped at the end of the message.
  const std::size_t start = static_cast<std::size_t>(rng_.uniform(bits.size()));
  const std::size_t end = std::min<std::size_t>(bits.size(), start + plan_.corrupt_bits);
  for (std::size_t i = start; i < end; ++i) bits.flip(i);
  return bits;
}

std::optional<BitVector> FaultyPhy::transmit(NodeId from, NodeId to,
                                             core::TxCode code, core::TxClass cls,
                                             const BitVector& payload) {
  if (plan_.auto_tick > 0.0) now_ = now_ + Duration{plan_.auto_tick};

  if (!plan_.crashes.empty() && (is_down(from) || is_down(to))) {
    // A down endpoint neither transmits nor receives; the inner PHY (and its
    // RNG) never sees the attempt.
    ++totals_.crash_blocked;
    JRSND_COUNT("fault.injected.crash_blocked");
    obs::set_loss_reason(obs::LossStage::Crash);
    if (!crash_dumped_) {
      // First blocked message of this phy's lifetime: snapshot the flight
      // rings so the postmortem shows what led into the crash window.
      crash_dumped_ = true;
      obs::flight_on_crash_event();
    }
    return std::nullopt;
  }

  auto delivered = inner_.transmit(from, to, code, cls, payload);
  if (!delivered) return std::nullopt;
  BitVector bits = std::move(*delivered);

  // Faults apply only to messages the channel actually delivered, so the
  // drop probability composes cleanly with the Theorem-1 jamming model.
  // Each gate draws only when its probability is non-zero: an inactive plan
  // makes zero draws and is a byte-for-byte pass-through.
  if (plan_.drop > 0.0 && rng_.bernoulli(plan_.drop)) {
    ++totals_.dropped;
    JRSND_COUNT("fault.injected.drop");
    obs::set_loss_reason(obs::LossStage::Fault);
    return std::nullopt;
  }
  if (plan_.corrupt > 0.0 && rng_.bernoulli(plan_.corrupt)) {
    bits = corrupt(std::move(bits));
    ++totals_.corrupted;
    JRSND_COUNT("fault.injected.corrupt");
  }
  if (plan_.truncate > 0.0 && bits.size() > 0 && rng_.bernoulli(plan_.truncate)) {
    bits.truncate(static_cast<std::size_t>(rng_.uniform(bits.size())));
    ++totals_.truncated;
    JRSND_COUNT("fault.injected.truncate");
  }

  if (plan_.reorder > 0.0 || plan_.duplicate > 0.0) {
    const LinkKey key{from, to};
    if (auto it = held_.find(key); it != held_.end()) {
      // A parked message is waiting on this link: it arrives now and the
      // current one parks in its place (the swap that realizes reordering,
      // or the stale replay that realizes duplication).
      std::swap(it->second, bits);
      return bits;
    }
    if (plan_.reorder > 0.0 && rng_.bernoulli(plan_.reorder)) {
      // Delay this message past its slot; the next transmission on the link
      // pops it. If the link stays silent it is effectively lost.
      held_.emplace(key, std::move(bits));
      ++totals_.reordered;
      JRSND_COUNT("fault.injected.reorder");
      obs::set_loss_reason(obs::LossStage::Fault);
      return std::nullopt;
    }
    if (plan_.duplicate > 0.0 && rng_.bernoulli(plan_.duplicate)) {
      held_.emplace(key, bits);
      ++totals_.duplicated;
      JRSND_COUNT("fault.injected.duplicate");
    }
  }
  return bits;
}

}  // namespace jrsnd::fault
