// Deterministic fault-injection plans.
//
// A FaultPlan is a declarative, seedable schedule of the adversities the
// paper's evaluation abstracts away: message drop/duplication/reorder,
// chip-burst corruption and truncation, per-node clock skew/drift, and
// crash/restart windows. Plans are plain data — parsed from JSON
// (`FaultPlan::from_json`) or assembled from CLI flags — and are applied by
// the FaultyPhy decorator (src/fault/faulty_phy.*) plus the simulators'
// EventQueue hooks. Given the same plan and the same seed, every injected
// fault lands identically on every run and thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/handshake.hpp"

namespace jrsnd::fault {

/// One scheduled outage: `node` is down during [at, at + duration).
/// Transmissions to or from a down node are blocked; when the window ends
/// the node "restarts" with its codebook and key material intact (the paper
/// provisions both offline, so a reboot loses only in-flight handshakes).
struct CrashEvent {
  NodeId node = kInvalidNode;
  TimePoint at{0.0};
  Duration duration{0.0};

  [[nodiscard]] bool covers(TimePoint t) const noexcept {
    return t >= at && t < at + duration;
  }

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// The full declarative fault schedule. All probabilities are per-message
/// and independent; the default-constructed plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 0;       ///< fault stream seed (independent of the run seed)

  double drop = 0.0;            ///< P[delivered message is dropped]
  double duplicate = 0.0;       ///< P[delivered message is duplicated]
  double reorder = 0.0;         ///< P[delivered message swaps with the next one]
  double corrupt = 0.0;         ///< P[delivered message gets chip/bit flips]
  std::uint32_t corrupt_bits = 3;  ///< burst size: flips per corrupted message
  double truncate = 0.0;        ///< P[delivered message is truncated]

  double clock_skew_max = 0.0;  ///< per-node constant offset, uniform in +-max (s)
  double clock_drift_max = 0.0; ///< per-node rate error, uniform in +-max (fraction)

  /// When > 0, FaultyPhy advances its own clock by this many seconds per
  /// transmit — lets Monte-Carlo drivers (no event queue) exercise the
  /// crash schedule deterministically.
  double auto_tick = 0.0;

  std::vector<CrashEvent> crashes;

  /// True when the plan cannot affect any transmission — FaultyPhy with an
  /// inactive plan is a pure pass-through (the no-op equivalence the tests
  /// pin down).
  [[nodiscard]] bool active() const noexcept;

  /// Returns an error message when a field is out of range (probability
  /// outside [0,1], negative duration, ...), nullopt when the plan is valid.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Parses the documented JSON schema (docs/robustness.md). Unknown keys
  /// are rejected, missing keys keep their defaults.
  static std::optional<FaultPlan> from_json(std::string_view json,
                                            std::string* error = nullptr);

  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Stateless per-node clock model: skew (constant offset) and drift (rate
/// error) are derived from (plan seed, node id) by hashing, so any component
/// can ask for a node's clock without coordinating draws. Implements the
/// handshake layer's clock seam so drifting nodes mis-measure their retry
/// timeouts.
class ClockModel final : public core::HandshakeClock {
 public:
  ClockModel(std::uint64_t seed, double skew_max, double drift_max) noexcept
      : seed_(seed), skew_max_(skew_max), drift_max_(drift_max) {}

  explicit ClockModel(const FaultPlan& plan) noexcept
      : ClockModel(plan.seed, plan.clock_skew_max, plan.clock_drift_max) {}

  /// Constant offset of `node`'s clock, uniform in [-skew_max, +skew_max].
  [[nodiscard]] Duration skew(NodeId node) const noexcept;

  /// Clock rate of `node` (1.0 = nominal), uniform in [1-drift, 1+drift].
  [[nodiscard]] double rate(NodeId node) const noexcept override;

  /// What `node`'s local clock reads when true time is `t`.
  [[nodiscard]] TimePoint local_time(NodeId node, TimePoint t) const noexcept;

 private:
  std::uint64_t seed_;
  double skew_max_;
  double drift_max_;
};

}  // namespace jrsnd::fault
