// FaultyPhy — a deterministic fault-injecting decorator over any PhyModel.
//
// Sits between the protocol engines and AbstractPhy/ChipPhy (the same seam
// TracingPhy uses) and applies a FaultPlan to every transmission: crash
// windows block the endpoints, then — for messages the inner PHY actually
// delivered — drop, chip-burst corruption, truncation, reorder, and
// duplication, in that order. Injection draws come from the decorator's own
// Rng, seeded from the plan (never split from the run's root Rng chain), so
// wrapping a phy with an inactive plan leaves the simulation bit-identical.
//
// Reorder and duplication are modeled with a per-directed-link 1-deep "held
// slot" over the synchronous transmit API: a reordered message parks in the
// slot and the *next* delivery on that link pops it instead (the two swap);
// a duplicated message additionally parks a copy, so the next delivery sees
// the stale copy — exactly what a replayed frame looks like to the receiver.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "core/phy_model.hpp"

namespace jrsnd::fault {

class FaultyPhy final : public core::PhyModel {
 public:
  /// `run_salt` decorrelates the fault stream across Monte-Carlo runs while
  /// keeping it a pure function of (plan.seed, run_salt).
  FaultyPhy(core::PhyModel& inner, const FaultPlan& plan,
            std::uint64_t run_salt = 0);

  void begin_subsession(NodeId a, NodeId b, CodeId code) override;

  [[nodiscard]] std::optional<BitVector> transmit(NodeId from, NodeId to,
                                                  core::TxCode code, core::TxClass cls,
                                                  const BitVector& payload) override;

  /// Advances the fault clock (drives the crash schedule). Event-queue
  /// simulators call this from the queue's step hook; Monte-Carlo drivers
  /// rely on plan.auto_tick instead.
  void set_now(TimePoint now) noexcept { now_ = now; }
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// True when `node` is inside one of the plan's crash windows right now.
  [[nodiscard]] bool is_down(NodeId node) const noexcept;

  [[nodiscard]] const ClockModel& clocks() const noexcept { return clocks_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Totals of faults this decorator actually injected (also counted in the
  /// obs registry under fault.injected.*).
  struct Totals {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t truncated = 0;
    std::uint64_t crash_blocked = 0;
  };
  [[nodiscard]] const Totals& totals() const noexcept { return totals_; }

 private:
  [[nodiscard]] BitVector corrupt(BitVector bits);

  core::PhyModel& inner_;
  FaultPlan plan_;
  ClockModel clocks_;
  Rng rng_;
  TimePoint now_{0.0};
  Totals totals_;
  bool crash_dumped_ = false;  ///< flight dump fired for this phy's first crash block

  struct LinkKey {
    NodeId from;
    NodeId to;
    friend bool operator==(const LinkKey&, const LinkKey&) = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const noexcept {
      return (static_cast<std::size_t>(raw(k.from)) << 32) ^ raw(k.to);
    }
  };
  /// 1-deep held messages per directed link (reorder/duplicate state).
  std::unordered_map<LinkKey, BitVector, LinkKeyHash> held_;
};

}  // namespace jrsnd::fault
