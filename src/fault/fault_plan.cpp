#include "fault/fault_plan.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "common/rng.hpp"

namespace jrsnd::fault {

bool FaultPlan::active() const noexcept {
  return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0 ||
         truncate > 0.0 || clock_skew_max > 0.0 || clock_drift_max > 0.0 ||
         !crashes.empty();
}

std::optional<std::string> FaultPlan::validate() const {
  auto prob = [](const char* name, double p) -> std::optional<std::string> {
    if (!(p >= 0.0 && p <= 1.0)) {
      return std::string(name) + " must be in [0, 1]";
    }
    return std::nullopt;
  };
  if (auto e = prob("drop", drop)) return e;
  if (auto e = prob("duplicate", duplicate)) return e;
  if (auto e = prob("reorder", reorder)) return e;
  if (auto e = prob("corrupt", corrupt)) return e;
  if (auto e = prob("truncate", truncate)) return e;
  if (!(clock_skew_max >= 0.0)) return "clock_skew_max must be >= 0";
  if (!(clock_drift_max >= 0.0 && clock_drift_max < 1.0)) {
    return "clock_drift_max must be in [0, 1)";
  }
  if (!(auto_tick >= 0.0)) return "auto_tick must be >= 0";
  if (corrupt > 0.0 && corrupt_bits == 0) {
    return "corrupt_bits must be > 0 when corrupt > 0";
  }
  for (const auto& c : crashes) {
    if (c.node == kInvalidNode) return "crash event needs a node";
    if (!(c.duration.seconds() > 0.0)) return "crash duration must be > 0";
    if (!(c.at.seconds() >= 0.0)) return "crash time must be >= 0";
  }
  return std::nullopt;
}

namespace {

// Minimal recursive-descent parser for the FaultPlan JSON schema: one flat
// object of numbers plus an optional "crashes" array of flat objects. Not a
// general JSON parser on purpose — unknown keys and other shapes are errors,
// which catches schema typos in plan files instead of silently ignoring them.
class PlanParser {
 public:
  PlanParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(FaultPlan& plan) {
    skip_ws();
    if (!expect('{')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      if (!first && !expect(',')) return false;
      first = false;
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!parse_field(plan, key)) return false;
    }
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after plan");
    return true;
  }

 private:
  bool parse_field(FaultPlan& plan, const std::string& key) {
    if (key == "crashes") return parse_crashes(plan.crashes);
    double value = 0.0;
    if (!parse_number(value)) return false;
    if (key == "seed") plan.seed = static_cast<std::uint64_t>(value);
    else if (key == "drop") plan.drop = value;
    else if (key == "duplicate") plan.duplicate = value;
    else if (key == "reorder") plan.reorder = value;
    else if (key == "corrupt") plan.corrupt = value;
    else if (key == "corrupt_bits") plan.corrupt_bits = static_cast<std::uint32_t>(value);
    else if (key == "truncate") plan.truncate = value;
    else if (key == "clock_skew_max") plan.clock_skew_max = value;
    else if (key == "clock_drift_max") plan.clock_drift_max = value;
    else if (key == "auto_tick") plan.auto_tick = value;
    else return fail("unknown key \"" + key + "\"");
    return true;
  }

  bool parse_crashes(std::vector<CrashEvent>& out) {
    if (!expect('[')) return false;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == ']') { ++pos_; return true; }
      if (!first && !expect(',')) return false;
      first = false;
      skip_ws();
      CrashEvent ev;
      if (!parse_crash(ev)) return false;
      out.push_back(ev);
    }
  }

  bool parse_crash(CrashEvent& ev) {
    if (!expect('{')) return false;
    bool first = true;
    bool have_node = false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      if (!first && !expect(',')) return false;
      first = false;
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      double value = 0.0;
      if (!parse_number(value)) return false;
      if (key == "node") { ev.node = node_id(static_cast<std::uint32_t>(value)); have_node = true; }
      else if (key == "at") ev.at = TimePoint(value);
      else if (key == "duration") ev.duration = Duration(value);
      else return fail("unknown crash key \"" + key + "\"");
    }
    if (!have_node) return fail("crash event needs a node");
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    const auto start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ >= text_.size()) return fail("unterminated string");
    out.assign(text_.substr(start, pos_ - start));
    ++pos_;
    return true;
  }

  bool parse_number(double& out) {
    const auto start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a number");
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      return fail("malformed number");
    }
    return true;
  }

  bool expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(std::string message) {
    if (error_ && error_->empty()) {
      *error_ = std::move(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void append_number(std::ostringstream& os, double v) {
  // Integral values print without a fractional part so to_json(from_json(x))
  // is stable for the common all-integer plans.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

}  // namespace

std::optional<FaultPlan> FaultPlan::from_json(std::string_view json,
                                              std::string* error) {
  FaultPlan plan;
  PlanParser parser(json, error);
  if (!parser.parse(plan)) return std::nullopt;
  if (auto invalid = plan.validate()) {
    if (error) *error = *invalid;
    return std::nullopt;
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  os << "{\"seed\":" << seed;
  os << ",\"drop\":"; append_number(os, drop);
  os << ",\"duplicate\":"; append_number(os, duplicate);
  os << ",\"reorder\":"; append_number(os, reorder);
  os << ",\"corrupt\":"; append_number(os, corrupt);
  os << ",\"corrupt_bits\":" << corrupt_bits;
  os << ",\"truncate\":"; append_number(os, truncate);
  os << ",\"clock_skew_max\":"; append_number(os, clock_skew_max);
  os << ",\"clock_drift_max\":"; append_number(os, clock_drift_max);
  os << ",\"auto_tick\":"; append_number(os, auto_tick);
  os << ",\"crashes\":[";
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (i) os << ',';
    os << "{\"node\":" << raw(crashes[i].node) << ",\"at\":";
    append_number(os, crashes[i].at.seconds());
    os << ",\"duration\":";
    append_number(os, crashes[i].duration.seconds());
    os << '}';
  }
  os << "]}";
  return os.str();
}

namespace {

/// Deterministic per-node unit draw in [0, 1): hash (seed, node, salt).
double unit_draw(std::uint64_t seed, NodeId node, std::uint64_t salt) noexcept {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (raw(node) + 1ULL)) ^ salt;
  const std::uint64_t x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

Duration ClockModel::skew(NodeId node) const noexcept {
  if (skew_max_ <= 0.0) return Duration{0.0};
  return Duration{skew_max_ * (2.0 * unit_draw(seed_, node, 0x5ceb) - 1.0)};
}

double ClockModel::rate(NodeId node) const noexcept {
  if (drift_max_ <= 0.0) return 1.0;
  return 1.0 + drift_max_ * (2.0 * unit_draw(seed_, node, 0xd21f7) - 1.0);
}

TimePoint ClockModel::local_time(NodeId node, TimePoint t) const noexcept {
  return TimePoint{t.seconds() * rate(node) + skew(node).seconds()};
}

}  // namespace jrsnd::fault
