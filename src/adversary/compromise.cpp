#include "adversary/compromise.hpp"

#include <algorithm>
#include <stdexcept>

namespace jrsnd::adversary {

CompromiseModel::CompromiseModel(const predist::CodeAssignment& assignment, std::uint32_t q,
                                 Rng& rng) {
  const std::vector<NodeId> all = assignment.nodes();
  if (q > all.size()) throw std::invalid_argument("CompromiseModel: q exceeds node count");
  const std::vector<std::uint32_t> picks =
      rng.sample_without_replacement(static_cast<std::uint32_t>(all.size()), q);
  for (const std::uint32_t pick : picks) {
    const NodeId node = all[pick];
    compromised_nodes_.insert(node);
    for (const CodeId code : assignment.codes_of(node)) compromised_codes_.insert(code);
  }
}

std::vector<NodeId> CompromiseModel::compromised_nodes() const {
  std::vector<NodeId> out(compromised_nodes_.begin(), compromised_nodes_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CodeId> CompromiseModel::compromised_codes() const {
  std::vector<CodeId> out(compromised_codes_.begin(), compromised_codes_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace jrsnd::adversary
