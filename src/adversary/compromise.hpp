// Node-compromise model (paper §IV-B).
//
// The adversary J physically compromises q nodes chosen uniformly at random
// and learns every spread code they hold. Codes held only by
// non-compromised nodes stay secret. This module materializes one such
// compromise outcome and answers the queries the jammers and the DoS
// attacker need.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "predist/code_assignment.hpp"

namespace jrsnd::adversary {

class CompromiseModel {
 public:
  /// Compromises `q` distinct nodes of `assignment` uniformly at random.
  CompromiseModel(const predist::CodeAssignment& assignment, std::uint32_t q, Rng& rng);

  [[nodiscard]] bool is_node_compromised(NodeId node) const {
    return compromised_nodes_.contains(node);
  }
  [[nodiscard]] bool is_code_compromised(CodeId code) const {
    return compromised_codes_.contains(code);
  }

  [[nodiscard]] std::size_t compromised_node_count() const noexcept {
    return compromised_nodes_.size();
  }
  /// c: the number of distinct compromised codes (expected value s * alpha).
  [[nodiscard]] std::size_t compromised_code_count() const noexcept {
    return compromised_codes_.size();
  }

  [[nodiscard]] std::vector<NodeId> compromised_nodes() const;
  [[nodiscard]] std::vector<CodeId> compromised_codes() const;

 private:
  std::unordered_set<NodeId> compromised_nodes_;
  std::unordered_set<CodeId> compromised_codes_;
};

}  // namespace jrsnd::adversary
