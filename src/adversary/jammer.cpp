#include "adversary/jammer.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "dsss/spreader.hpp"

namespace jrsnd::adversary {

RandomJammer::RandomJammer(const CompromiseModel& compromise, const JammerParams& params)
    : compromise_(compromise) {
  const double c = static_cast<double>(compromise.compromised_code_count());
  if (c <= 0.0) {
    beta_ = 0.0;
    beta_prime_ = 0.0;
    return;
  }
  // During one message, J can try z(1+mu)/mu distinct codes out of c.
  const double tries = static_cast<double>(params.z) * (1.0 + params.mu) / params.mu;
  beta_ = clamp01(tries / c);
  beta_prime_ = clamp01(3.0 * tries / c);
}

bool RandomJammer::jams(CodeId code, MessageClass cls, Rng& rng) const {
  // Session codes (not in the pool) and non-compromised codes are safe:
  // guessing an N-bit code is infeasible for a computationally bounded J.
  if (code == kInvalidCode || !compromise_.is_code_compromised(code)) return false;
  switch (cls) {
    case MessageClass::Hello:
      return rng.bernoulli(beta_);
    case MessageClass::Followup:
      return rng.bernoulli(beta_prime_);
    case MessageClass::SessionSpread:
      return false;  // session codes never reach the pool; handled above
  }
  return false;
}

ReactiveJammer::ReactiveJammer(const CompromiseModel& compromise, const JammerParams& /*params*/,
                               double identification_probability)
    : compromise_(compromise), ident_prob_(clamp01(identification_probability)) {}

bool ReactiveJammer::jams(CodeId code, MessageClass /*cls*/, Rng& rng) const {
  if (code == kInvalidCode || !compromise_.is_code_compromised(code)) return false;
  return rng.bernoulli(ident_prob_);
}

std::vector<dsss::Transmission> make_chip_jamming(const dsss::SpreadCode& code,
                                                  std::size_t victim_start,
                                                  std::size_t message_bits, double jam_fraction,
                                                  std::uint32_t parallel_signals, Rng& rng,
                                                  double start_fraction) {
  const auto first_bit = static_cast<std::size_t>(
      clamp01(start_fraction) * static_cast<double>(message_bits));
  const auto covered_bits = std::min(
      message_bits - first_bit,
      static_cast<std::size_t>(
          std::ceil(clamp01(jam_fraction) * static_cast<double>(message_bits))));
  std::vector<dsss::Transmission> out;
  if (covered_bits == 0 || parallel_signals == 0) return out;

  // Jammer payload: random bits spread with the victim's code, chip-synced
  // with the victim's covered bits.
  BitVector jam_payload(covered_bits);
  for (std::size_t i = 0; i < covered_bits; ++i) jam_payload.set(i, rng.bernoulli(0.5));
  const BitVector jam_chips = dsss::spread(jam_payload, code);

  const std::size_t start_chip = victim_start + first_bit * code.length();
  for (std::uint32_t s = 0; s < parallel_signals; ++s) {
    out.push_back(dsss::Transmission{start_chip, jam_chips});
  }
  return out;
}

}  // namespace jrsnd::adversary
