// The verification-flooding DoS attack and JR-SND's bound on it (§V-D).
//
// Schemes built on *public* code sets let J inject unlimited fake
// neighbor-discovery requests that every receiver must (expensively) verify.
// Under JR-SND, J can only inject with codes it compromised, and each holder
// locally revokes a code after gamma invalid requests — so a compromised
// code wastes at most (l-1) * gamma verifications network-wide.
//
// DosCampaign drives the attack against a set of victims with per-code
// RevocationState, counting the signature verifications each victim performs
// until every attack code is revoked everywhere (or the attacker's request
// budget runs out).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bit_vector.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "crypto/ibc.hpp"
#include "crypto/verify_queue.hpp"
#include "predist/code_assignment.hpp"
#include "predist/revocation.hpp"

namespace jrsnd::adversary {

struct DosCampaignResult {
  std::uint64_t requests_sent = 0;       ///< fake requests J transmitted
  std::uint64_t verifications = 0;       ///< signature checks victims performed
  std::uint64_t revocations = 0;         ///< (node, code) revocation events
  std::uint64_t requests_ignored = 0;    ///< requests that hit revoked codes
  double verification_time_s = 0.0;      ///< verifications * t_ver
};

class DosCampaign {
 public:
  /// Victims are every non-compromised holder of each attack code. `gamma`
  /// is the revocation threshold, `t_ver_s` the per-verification cost.
  DosCampaign(const predist::CodeAssignment& assignment,
              const std::vector<CodeId>& attack_codes,
              const std::vector<NodeId>& compromised_nodes, std::uint32_t gamma,
              double t_ver_s);

  /// Injects `requests_per_code` fake requests on each attack code,
  /// round-robin across its victim holders. Idempotent revocation: once a
  /// victim revokes a code, further requests on it cost nothing there.
  [[nodiscard]] DosCampaignResult run(std::uint64_t requests_per_code);

  /// The paper's worst-case bound per code: (holders - 1) * gamma
  /// verifications beyond which no non-compromised node listens.
  /// (Each victim performs at most gamma+1 checks: the one crossing the
  /// threshold triggers revocation.)
  [[nodiscard]] std::uint64_t per_code_verification_bound(CodeId code) const;

  [[nodiscard]] std::uint64_t total_verification_bound() const;

 private:
  const predist::CodeAssignment& assignment_;
  std::vector<CodeId> attack_codes_;
  std::unordered_map<NodeId, predist::RevocationState> victims_;
  std::unordered_map<CodeId, std::vector<NodeId>> victims_per_code_;
  std::uint32_t gamma_;
  double t_ver_s_;
};

// --- Handshake flooding against the batched verification pipeline ----------
//
// DosCampaign above counts *model-level* verifications against the paper's
// revocation bound. HandshakeFloodSource is the frame-level counterpart: it
// authors the actual AUTH wire frames — honest ones plus the attacker shapes
// a flooder would send — so bench/dos_throughput and bench/dos_resilience can
// measure what one receiver's crypto::VerifyQueue actually sustains.

/// Shapes of frame a handshake flood interleaves. Each maps to exactly one
/// pipeline stage, so tests can assert every reject fires at its cheapest
/// possible check.
enum class FloodFrameKind : std::uint8_t {
  Honest,     ///< well-formed, valid MAC -> Accept
  BadMac,     ///< well-formed, garbage MAC -> RejectMac (the expensive reject)
  Truncated,  ///< short frame -> RejectLength
  BadType,    ///< right length, non-AUTH type tag -> RejectFormat
  WrongCode,  ///< valid frame on a code the receiver is not listening on -> RejectCode
};

[[nodiscard]] const char* flood_frame_kind_name(FloodFrameKind kind) noexcept;

struct FloodFrame {
  BitVector bits;
  std::uint32_t frame_code = 0;
  FloodFrameKind kind = FloodFrameKind::Honest;
  crypto::VerifyStage expected_stage = crypto::VerifyStage::Accept;
};

/// Throughput of a verification loop over a fixed frame set.
struct FloodThroughput {
  std::uint64_t frames = 0;  ///< frames verified across all repetitions
  double seconds = 0.0;      ///< wall time spent verifying
  [[nodiscard]] double frames_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(frames) / seconds : 0.0;
  }
};

/// Authors AUTH frames for a flood of configurable attacker:honest ratio.
/// The receiver is node 0; honest senders are nodes 1..peer_count, all
/// provisioned under one IbcAuthority so their MACs genuinely verify.
/// Deterministic: same seeds -> bit-identical batches.
class HandshakeFloodSource {
 public:
  HandshakeFloodSource(const core::WireConfig& wire, std::uint64_t authority_seed,
                       std::uint32_t peer_count, std::uint64_t rng_seed);

  /// `count` frames with `ratio` attacker frames per honest frame (ratio 0 =
  /// all honest). Attacker kinds cycle BadMac-weighted — a competent flooder
  /// sends well-formed frames with garbage MACs, since those are what force
  /// the victim into MAC computation.
  [[nodiscard]] std::vector<FloodFrame> make_batch(std::size_t count,
                                                   std::uint32_t ratio);

  /// Key source over the receiver's IBC key, for feeding a VerifyQueue
  /// directly (mirrors the engine's internal pair source).
  [[nodiscard]] const crypto::KeySource& key_source() const noexcept {
    return source_;
  }
  [[nodiscard]] const crypto::IbcPrivateKey& receiver() const noexcept {
    return receiver_;
  }
  [[nodiscard]] const crypto::VerifyWire& verify_wire() const noexcept {
    return verify_wire_;
  }
  /// The session code the receiver listens on / the wrong one attackers use.
  [[nodiscard]] std::uint32_t expected_code() const noexcept { return 7; }
  [[nodiscard]] std::uint32_t wrong_code() const noexcept { return 8; }

 private:
  struct ReceiverKeySource final : public crypto::KeySource {
    const crypto::IbcPrivateKey* receiver = nullptr;
    [[nodiscard]] std::uint64_t cache_key(std::uint32_t sender) const noexcept override;
    [[nodiscard]] crypto::SymmetricKey key_for(std::uint32_t sender) const override;
  };

  [[nodiscard]] FloodFrame make_frame(FloodFrameKind kind);

  core::WireConfig wire_;
  crypto::VerifyWire verify_wire_;
  crypto::IbcPrivateKey receiver_;
  std::vector<crypto::IbcPrivateKey> peers_;
  ReceiverKeySource source_;
  Rng rng_;
};

/// Runs `frames` through a VerifyQueue drain (the batched pipeline) repeatedly
/// until at least `min_seconds` of wall time elapses; returns the measured
/// throughput. `queue`'s peer cache persists across repetitions (steady state).
[[nodiscard]] FloodThroughput measure_batched_throughput(
    crypto::VerifyQueue& queue, std::span<const FloodFrame> frames,
    const crypto::KeySource& source, std::uint32_t expected_code,
    double min_seconds);

/// Same measurement over the one-at-a-time reference path (no peer cache, no
/// batching) — the unbatched baseline dos_throughput compares against.
[[nodiscard]] FloodThroughput measure_one_shot_throughput(
    const crypto::VerifyWire& wire, std::span<const FloodFrame> frames,
    const crypto::KeySource& source, std::uint32_t expected_code,
    double min_seconds);

}  // namespace jrsnd::adversary
