// The verification-flooding DoS attack and JR-SND's bound on it (§V-D).
//
// Schemes built on *public* code sets let J inject unlimited fake
// neighbor-discovery requests that every receiver must (expensively) verify.
// Under JR-SND, J can only inject with codes it compromised, and each holder
// locally revokes a code after gamma invalid requests — so a compromised
// code wastes at most (l-1) * gamma verifications network-wide.
//
// DosCampaign drives the attack against a set of victims with per-code
// RevocationState, counting the signature verifications each victim performs
// until every attack code is revoked everywhere (or the attacker's request
// budget runs out).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "predist/code_assignment.hpp"
#include "predist/revocation.hpp"

namespace jrsnd::adversary {

struct DosCampaignResult {
  std::uint64_t requests_sent = 0;       ///< fake requests J transmitted
  std::uint64_t verifications = 0;       ///< signature checks victims performed
  std::uint64_t revocations = 0;         ///< (node, code) revocation events
  std::uint64_t requests_ignored = 0;    ///< requests that hit revoked codes
  double verification_time_s = 0.0;      ///< verifications * t_ver
};

class DosCampaign {
 public:
  /// Victims are every non-compromised holder of each attack code. `gamma`
  /// is the revocation threshold, `t_ver_s` the per-verification cost.
  DosCampaign(const predist::CodeAssignment& assignment,
              const std::vector<CodeId>& attack_codes,
              const std::vector<NodeId>& compromised_nodes, std::uint32_t gamma,
              double t_ver_s);

  /// Injects `requests_per_code` fake requests on each attack code,
  /// round-robin across its victim holders. Idempotent revocation: once a
  /// victim revokes a code, further requests on it cost nothing there.
  [[nodiscard]] DosCampaignResult run(std::uint64_t requests_per_code);

  /// The paper's worst-case bound per code: (holders - 1) * gamma
  /// verifications beyond which no non-compromised node listens.
  /// (Each victim performs at most gamma+1 checks: the one crossing the
  /// threshold triggers revocation.)
  [[nodiscard]] std::uint64_t per_code_verification_bound(CodeId code) const;

  [[nodiscard]] std::uint64_t total_verification_bound() const;

 private:
  const predist::CodeAssignment& assignment_;
  std::vector<CodeId> attack_codes_;
  std::unordered_map<NodeId, predist::RevocationState> victims_;
  std::unordered_map<CodeId, std::vector<NodeId>> victims_per_code_;
  std::uint32_t gamma_;
  double t_ver_s_;
};

}  // namespace jrsnd::adversary
