// Jammer models (paper §IV-B and Theorem 1).
//
// J can transmit at most z parallel signals against a targeted message and
// must jam at least a mu/(1+mu) fraction of it with the *correct* spread
// code to defeat the ECC. Two strategies:
//
//  * RandomJammer — picks compromised codes at random; during one message it
//    can try at most z(1+mu)/mu distinct codes (each must cover the minimum
//    fraction), so a message spread with a compromised code is jammed with
//    probability beta = min(z(1+mu)/(c*mu), 1) where c is the number of
//    compromised codes. The three post-HELLO messages of a D-NDP sub-session
//    all use the same single code, so at least one of them is hit with
//    probability beta' = min(3 z (1+mu)/(c*mu), 1).
//  * ReactiveJammer — identifies the code in use from the first 1/(1+mu) of
//    the transmission; any message spread with a compromised code is jammed
//    (with configurable identification probability, 1.0 = the paper's
//    worst case).
//
// Message-level jam decisions feed the network-scale Monte-Carlo
// (core/abstract_phy); chip-level jamming for the DSSS integration tests is
// produced by make_chip_jamming().
#pragma once

#include <cstdint>
#include <memory>

#include "adversary/compromise.hpp"
#include "common/bit_vector.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsss/chip_channel.hpp"
#include "dsss/spread_code.hpp"

namespace jrsnd::adversary {

/// Which leg of a D-NDP sub-session a message belongs to; the jammer's
/// effective success probability differs (Theorem 1's beta vs beta').
enum class MessageClass {
  Hello,     ///< the initial HELLO broadcast
  Followup,  ///< CONFIRM + both authentication messages (single shared code)
  SessionSpread,  ///< messages spread with a freshly derived session code
};

struct JammerParams {
  std::uint32_t z = 8;  ///< parallel jamming signals (z << N)
  double mu = 1.0;      ///< ECC redundancy parameter
};

/// Abstract message-level jammer.
class Jammer {
 public:
  virtual ~Jammer() = default;

  /// Decides whether J jams a message spread with `code`. Session codes
  /// (freshly derived, never in the pool) pass code = kInvalidCode.
  [[nodiscard]] virtual bool jams(CodeId code, MessageClass cls, Rng& rng) const = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

class RandomJammer final : public Jammer {
 public:
  RandomJammer(const CompromiseModel& compromise, const JammerParams& params);

  [[nodiscard]] bool jams(CodeId code, MessageClass cls, Rng& rng) const override;
  [[nodiscard]] const char* name() const noexcept override { return "random"; }

  /// Theorem 1's beta: P(jam HELLO | its code is compromised).
  [[nodiscard]] double beta() const noexcept { return beta_; }
  /// Theorem 1's beta': P(jam >= 1 of the 3 follow-ups | code compromised).
  [[nodiscard]] double beta_prime() const noexcept { return beta_prime_; }

 private:
  const CompromiseModel& compromise_;
  double beta_;
  double beta_prime_;
};

class ReactiveJammer final : public Jammer {
 public:
  /// `identification_probability` models how reliably J recognizes the code
  /// within the first 1/(1+mu) of a message (paper worst case: 1.0).
  ReactiveJammer(const CompromiseModel& compromise, const JammerParams& params,
                 double identification_probability = 1.0);

  [[nodiscard]] bool jams(CodeId code, MessageClass cls, Rng& rng) const override;
  [[nodiscard]] const char* name() const noexcept override { return "reactive"; }

 private:
  const CompromiseModel& compromise_;
  double ident_prob_;
};

/// The "intelligent attack" of paper §V-B: deliberately lets every HELLO
/// through (so the victim responder learns all shared codes, compromised
/// ones included) and then jams the three follow-up messages of any
/// sub-session running on a compromised code. Against the naive
/// pick-one-code receiver this converts every compromised-code choice into
/// a failed discovery; the x-fold redundancy design defeats it, because
/// the sub-session on any non-compromised shared code still completes.
class IntelligentJammer final : public Jammer {
 public:
  explicit IntelligentJammer(const CompromiseModel& compromise) : compromise_(compromise) {}

  [[nodiscard]] bool jams(CodeId code, MessageClass cls, Rng& /*rng*/) const override {
    if (cls != MessageClass::Followup) return false;
    return code != kInvalidCode && compromise_.is_code_compromised(code);
  }
  [[nodiscard]] const char* name() const noexcept override { return "intelligent"; }

 private:
  const CompromiseModel& compromise_;
};

/// A jammer that never jams (clean-channel baseline runs).
class NullJammer final : public Jammer {
 public:
  [[nodiscard]] bool jams(CodeId /*code*/, MessageClass /*cls*/, Rng& /*rng*/) const override {
    return false;
  }
  [[nodiscard]] const char* name() const noexcept override { return "none"; }
};

/// Chip-level jamming for the DSSS integration tests: transmissions that
/// cover a `jam_fraction` span of a `message_bits`-bit message spread with
/// `code` (whose first chip is at `victim_start`), beginning at message
/// fraction `start_fraction`. A reactive jammer cannot strike before it has
/// identified the code — the paper gives it the first 1/(1+mu) of the
/// message for that — so start_fraction is typically > 0. The jammer
/// spreads random bits with the (known) code in chip sync with the victim,
/// using `parallel_signals` of its z transmitters on the same pattern. At
/// amplitude >= 2 the jammer's chips dominate the victim's and covered bits
/// despread to jammer-chosen values (about half of them bit errors); at
/// amplitude 1 they cancel to noise (erasures). Both paths exercise the
/// Reed-Solomon errata decoder.
[[nodiscard]] std::vector<dsss::Transmission> make_chip_jamming(
    const dsss::SpreadCode& code, std::size_t victim_start, std::size_t message_bits,
    double jam_fraction, std::uint32_t parallel_signals, Rng& rng,
    double start_fraction = 0.0);

}  // namespace jrsnd::adversary
