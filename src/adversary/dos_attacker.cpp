#include "adversary/dos_attacker.hpp"

#include <algorithm>
#include <unordered_set>

namespace jrsnd::adversary {

DosCampaign::DosCampaign(const predist::CodeAssignment& assignment,
                         const std::vector<CodeId>& attack_codes,
                         const std::vector<NodeId>& compromised_nodes, std::uint32_t gamma,
                         double t_ver_s)
    : assignment_(assignment), attack_codes_(attack_codes), gamma_(gamma), t_ver_s_(t_ver_s) {
  const std::unordered_set<NodeId> compromised(compromised_nodes.begin(),
                                               compromised_nodes.end());
  for (const CodeId code : attack_codes_) {
    for (const NodeId holder : assignment_.holders_of(code)) {
      if (compromised.contains(holder)) continue;  // J need not attack itself
      victims_per_code_[code].push_back(holder);
      if (!victims_.contains(holder)) {
        victims_.emplace(holder,
                         predist::RevocationState(gamma_, assignment_.codes_of(holder)));
      }
    }
  }
}

DosCampaignResult DosCampaign::run(std::uint64_t requests_per_code) {
  DosCampaignResult result;
  for (const CodeId code : attack_codes_) {
    const auto it = victims_per_code_.find(code);
    if (it == victims_per_code_.end() || it->second.empty()) continue;
    const std::vector<NodeId>& holders = it->second;
    for (std::uint64_t r = 0; r < requests_per_code; ++r) {
      ++result.requests_sent;
      // One broadcast request reaches every in-range holder; we charge the
      // worst case where all holders of the code hear it.
      for (const NodeId victim : holders) {
        predist::RevocationState& state = victims_.at(victim);
        if (state.is_revoked(code)) {
          ++result.requests_ignored;
          continue;  // victim no longer de-spreads this code: zero cost
        }
        ++result.verifications;  // the (failing) signature verification
        if (state.report_invalid(code)) ++result.revocations;
      }
    }
  }
  result.verification_time_s = static_cast<double>(result.verifications) * t_ver_s_;
  return result;
}

std::uint64_t DosCampaign::per_code_verification_bound(CodeId code) const {
  const auto it = victims_per_code_.find(code);
  if (it == victims_per_code_.end()) return 0;
  return static_cast<std::uint64_t>(it->second.size()) * (gamma_ + 1);
}

std::uint64_t DosCampaign::total_verification_bound() const {
  std::uint64_t total = 0;
  for (const CodeId code : attack_codes_) total += per_code_verification_bound(code);
  return total;
}

}  // namespace jrsnd::adversary
