#include "adversary/dos_attacker.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_set>

namespace jrsnd::adversary {

DosCampaign::DosCampaign(const predist::CodeAssignment& assignment,
                         const std::vector<CodeId>& attack_codes,
                         const std::vector<NodeId>& compromised_nodes, std::uint32_t gamma,
                         double t_ver_s)
    : assignment_(assignment), attack_codes_(attack_codes), gamma_(gamma), t_ver_s_(t_ver_s) {
  const std::unordered_set<NodeId> compromised(compromised_nodes.begin(),
                                               compromised_nodes.end());
  for (const CodeId code : attack_codes_) {
    for (const NodeId holder : assignment_.holders_of(code)) {
      if (compromised.contains(holder)) continue;  // J need not attack itself
      victims_per_code_[code].push_back(holder);
      if (!victims_.contains(holder)) {
        victims_.emplace(holder,
                         predist::RevocationState(gamma_, assignment_.codes_of(holder)));
      }
    }
  }
}

DosCampaignResult DosCampaign::run(std::uint64_t requests_per_code) {
  DosCampaignResult result;
  for (const CodeId code : attack_codes_) {
    const auto it = victims_per_code_.find(code);
    if (it == victims_per_code_.end() || it->second.empty()) continue;
    const std::vector<NodeId>& holders = it->second;
    for (std::uint64_t r = 0; r < requests_per_code; ++r) {
      ++result.requests_sent;
      // One broadcast request reaches every in-range holder; we charge the
      // worst case where all holders of the code hear it.
      for (const NodeId victim : holders) {
        predist::RevocationState& state = victims_.at(victim);
        if (state.is_revoked(code)) {
          ++result.requests_ignored;
          continue;  // victim no longer de-spreads this code: zero cost
        }
        ++result.verifications;  // the (failing) signature verification
        if (state.report_invalid(code)) ++result.revocations;
      }
    }
  }
  result.verification_time_s = static_cast<double>(result.verifications) * t_ver_s_;
  return result;
}

std::uint64_t DosCampaign::per_code_verification_bound(CodeId code) const {
  const auto it = victims_per_code_.find(code);
  if (it == victims_per_code_.end()) return 0;
  return static_cast<std::uint64_t>(it->second.size()) * (gamma_ + 1);
}

std::uint64_t DosCampaign::total_verification_bound() const {
  std::uint64_t total = 0;
  for (const CodeId code : attack_codes_) total += per_code_verification_bound(code);
  return total;
}

// --- HandshakeFloodSource ---------------------------------------------------

const char* flood_frame_kind_name(FloodFrameKind kind) noexcept {
  switch (kind) {
    case FloodFrameKind::Honest: return "honest";
    case FloodFrameKind::BadMac: return "bad_mac";
    case FloodFrameKind::Truncated: return "truncated";
    case FloodFrameKind::BadType: return "bad_type";
    case FloodFrameKind::WrongCode: return "wrong_code";
  }
  return "?";
}

namespace {

crypto::VerifyWire flood_verify_wire(const core::WireConfig& wire) noexcept {
  crypto::VerifyWire out;
  out.l_t = wire.l_t;
  out.l_id = wire.l_id;
  out.l_n = wire.l_n;
  out.l_mac = wire.l_mac;
  out.auth_type = static_cast<std::uint32_t>(core::MessageType::Auth);
  return out;
}

}  // namespace

std::uint64_t HandshakeFloodSource::ReceiverKeySource::cache_key(
    std::uint32_t sender) const noexcept {
  const std::uint32_t self = raw(receiver->id());
  const std::uint32_t lo = std::min(self, sender);
  const std::uint32_t hi = std::max(self, sender);
  return (std::uint64_t{lo} << 32) | hi;
}

crypto::SymmetricKey HandshakeFloodSource::ReceiverKeySource::key_for(
    std::uint32_t sender) const {
  return receiver->shared_key(node_id(sender));
}

HandshakeFloodSource::HandshakeFloodSource(const core::WireConfig& wire,
                                           std::uint64_t authority_seed,
                                           std::uint32_t peer_count,
                                           std::uint64_t rng_seed)
    : wire_(wire),
      verify_wire_(flood_verify_wire(wire)),
      receiver_(crypto::IbcAuthority(authority_seed).issue(node_id(0))),
      rng_(rng_seed) {
  assert(peer_count > 0);
  const crypto::IbcAuthority authority(authority_seed);
  peers_.reserve(peer_count);
  for (std::uint32_t i = 1; i <= peer_count; ++i) {
    peers_.push_back(authority.issue(node_id(i)));
  }
  source_.receiver = &receiver_;
}

FloodFrame HandshakeFloodSource::make_frame(FloodFrameKind kind) {
  // Every shape starts from a genuinely valid AUTH frame: a real peer, a
  // fresh nonce, and a MAC under the true pairwise key — then breaks exactly
  // one property.
  const std::size_t peer = rng_.uniform(peers_.size());
  const crypto::IbcPrivateKey& sender = peers_[peer];
  BitVector nonce;
  nonce.append_uint(rng_.next(), wire_.l_n);
  const crypto::SymmetricKey key = sender.shared_key(receiver_.id());
  const core::AuthMessage msg = core::AuthMessage::make(sender.id(), nonce, key, wire_);

  FloodFrame frame;
  frame.kind = kind;
  frame.bits = msg.encode(wire_);
  frame.frame_code = expected_code();
  switch (kind) {
    case FloodFrameKind::Honest:
      frame.expected_stage = crypto::VerifyStage::Accept;
      break;
    case FloodFrameKind::BadMac: {
      // Flip one MAC bit: the frame still parses, still matches the code,
      // and forces the receiver all the way into MAC recomputation.
      const std::size_t mac_off =
          std::size_t{wire_.l_t} + wire_.l_id + wire_.l_n;
      frame.bits.flip(mac_off + rng_.uniform(wire_.l_mac));
      frame.expected_stage = crypto::VerifyStage::RejectMac;
      break;
    }
    case FloodFrameKind::Truncated:
      frame.bits.truncate(rng_.uniform(frame.bits.size()));
      frame.expected_stage = crypto::VerifyStage::RejectLength;
      break;
    case FloodFrameKind::BadType:
      // Auth = 0b00011, Hello = 0b00001: one flip turns the tag into a
      // different valid-looking type at the correct length.
      frame.bits.flip(wire_.l_t - 2);
      frame.expected_stage = crypto::VerifyStage::RejectFormat;
      break;
    case FloodFrameKind::WrongCode:
      frame.frame_code = wrong_code();
      frame.expected_stage = crypto::VerifyStage::RejectCode;
      break;
  }
  return frame;
}

std::vector<FloodFrame> HandshakeFloodSource::make_batch(std::size_t count,
                                                         std::uint32_t ratio) {
  // BadMac-weighted cycle: a competent flooder sends mostly well-formed
  // frames with garbage MACs, since those are what cost the victim crypto.
  static constexpr FloodFrameKind kAttackCycle[] = {
      FloodFrameKind::BadMac,    FloodFrameKind::Truncated,
      FloodFrameKind::BadMac,    FloodFrameKind::BadType,
      FloodFrameKind::BadMac,    FloodFrameKind::WrongCode,
  };
  std::vector<FloodFrame> batch;
  batch.reserve(count);
  std::size_t attackers = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (i % (std::size_t{ratio} + 1) == 0) {
      batch.push_back(make_frame(FloodFrameKind::Honest));
    } else {
      batch.push_back(make_frame(kAttackCycle[attackers++ % std::size(kAttackCycle)]));
    }
  }
  return batch;
}

// --- Flood throughput measurement -------------------------------------------

FloodThroughput measure_batched_throughput(crypto::VerifyQueue& queue,
                                           std::span<const FloodFrame> frames,
                                           const crypto::KeySource& source,
                                           std::uint32_t expected_code,
                                           double min_seconds) {
  using Clock = std::chrono::steady_clock;
  FloodThroughput result;
  std::vector<crypto::VerifyResult> out;
  out.reserve(frames.size());
  queue.reserve(frames.size());
  const auto start = Clock::now();
  do {
    for (const FloodFrame& frame : frames) {
      queue.push(frame.bits, frame.frame_code, expected_code);
    }
    queue.drain(source, out);
    result.frames += frames.size();
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  } while (result.seconds < min_seconds);
  return result;
}

FloodThroughput measure_one_shot_throughput(const crypto::VerifyWire& wire,
                                            std::span<const FloodFrame> frames,
                                            const crypto::KeySource& source,
                                            std::uint32_t expected_code,
                                            double min_seconds) {
  using Clock = std::chrono::steady_clock;
  FloodThroughput result;
  std::uint64_t accepted = 0;
  const auto start = Clock::now();
  do {
    for (const FloodFrame& frame : frames) {
      const crypto::VerifyResult v = crypto::VerifyQueue::verify_one_shot(
          wire, frame.bits, frame.frame_code, expected_code, source);
      accepted += (v.stage == crypto::VerifyStage::Accept) ? 1u : 0u;
    }
    result.frames += frames.size();
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  } while (result.seconds < min_seconds);
  // Keep the verdicts observable so the loop cannot be optimized away.
  if (accepted > result.frames) result.frames = accepted;
  return result;
}

}  // namespace jrsnd::adversary
