// The outcome of random spread-code pre-distribution: which node holds which
// codes (paper §V-A). Provides the queries the protocols and the analysis
// need — per-node code sets, pairwise shared codes, per-code holder lists —
// plus distribution statistics used by tests and benches.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace jrsnd::predist {

class CodeAssignment {
 public:
  CodeAssignment() = default;

  /// Registers `node` as holding `codes` (sorted internally).
  void assign(NodeId node, std::vector<CodeId> codes);

  [[nodiscard]] bool has_node(NodeId node) const;

  /// Codes held by `node`, ascending by raw id. Precondition: has_node(node).
  [[nodiscard]] const std::vector<CodeId>& codes_of(NodeId node) const;

  /// Codes held by both `a` and `b` (set intersection), ascending.
  [[nodiscard]] std::vector<CodeId> shared_codes(NodeId a, NodeId b) const;

  /// Nodes holding `code`, ascending.
  [[nodiscard]] std::vector<NodeId> holders_of(CodeId code) const;

  /// Number of registered nodes.
  [[nodiscard]] std::size_t node_count() const noexcept { return per_node_.size(); }

  /// All registered node ids, ascending.
  [[nodiscard]] std::vector<NodeId> nodes() const;

  /// The largest number of holders over all codes (paper invariant: <= l,
  /// or slightly above after late joins).
  [[nodiscard]] std::size_t max_holders() const;

  /// Histogram[x] = number of node pairs sharing exactly x codes, computed
  /// over every unordered pair (O(n^2 * m) — test/bench sizes only).
  [[nodiscard]] std::vector<std::size_t> shared_count_histogram() const;

 private:
  std::unordered_map<NodeId, std::vector<CodeId>> per_node_;
  std::unordered_map<CodeId, std::vector<NodeId>> per_code_;
};

}  // namespace jrsnd::predist
