// Authority-driven revocation (paper §V-D: compromised codes "can also be
// revoked in many ways" — local counters are one; this is the other).
//
// When the authority learns that nodes were captured (soldiers report a
// lost radio, tamper sensors fire, ...), it issues a signed revocation list
// naming the leaked code ids. Nodes verify the authority's ID-based
// signature and purge the named codes from their active sets immediately —
// network-wide, without each node having to absorb gamma fake requests
// per code first. Lists carry a monotonically increasing sequence number
// so replayed or stale lists are ignored.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "crypto/ibc.hpp"
#include "predist/revocation.hpp"

namespace jrsnd::predist {

/// The reserved identity the authority signs revocation lists under.
inline constexpr NodeId kAuthorityId{0xfffffffe};

/// A signed revocation list.
struct RevocationList {
  std::uint64_t sequence = 0;   ///< strictly increasing per authority
  std::vector<CodeId> revoked;  ///< code ids to purge
  crypto::IbcSignature signature{};

  /// Canonical bytes the authority signs.
  [[nodiscard]] std::vector<std::uint8_t> sign_input() const;
};

/// Authority side: issues signed lists with increasing sequence numbers.
class RevocationIssuer {
 public:
  explicit RevocationIssuer(crypto::IbcPrivateKey authority_key);

  /// Signs a new list revoking `codes`. Sequence numbers auto-increment.
  [[nodiscard]] RevocationList issue(std::vector<CodeId> codes);

  [[nodiscard]] std::uint64_t next_sequence() const noexcept { return next_sequence_; }

 private:
  crypto::IbcPrivateKey key_;
  std::uint64_t next_sequence_ = 1;
};

/// Node side: validates lists and applies them to the local RevocationState.
class RevocationListener {
 public:
  explicit RevocationListener(std::shared_ptr<const crypto::PairingOracle> oracle);

  enum class Outcome {
    Applied,        ///< valid, fresh; codes purged
    BadSignature,   ///< rejected: not from the authority
    Stale,          ///< rejected: sequence <= last applied (replay)
  };

  /// Verifies `list` and, if valid and fresh, revokes every named code the
  /// node holds in `state`. Returns what happened and (on Applied) how many
  /// of the node's own codes were purged.
  Outcome apply(const RevocationList& list, RevocationState& state,
                std::size_t* purged = nullptr);

  [[nodiscard]] std::uint64_t last_sequence() const noexcept { return last_sequence_; }

 private:
  std::shared_ptr<const crypto::PairingOracle> oracle_;
  std::uint64_t last_sequence_ = 0;
};

}  // namespace jrsnd::predist
