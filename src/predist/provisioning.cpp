#include "predist/provisioning.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace jrsnd::predist {

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr char kMagic[4] = {'J', 'R', 'S', 'P'};
constexpr std::size_t kChecksumBytes = 8;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool read_u32(std::uint32_t& out) {
    if (pos_ + 4 > bytes_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) out = (out << 8) | bytes_[pos_++];
    return true;
  }
  [[nodiscard]] bool read_u8(std::uint8_t& out) {
    if (pos_ >= bytes_.size()) return false;
    out = bytes_[pos_++];
    return true;
  }
  [[nodiscard]] bool read_span(std::size_t n, std::span<const std::uint8_t>& out) {
    if (pos_ + n > bytes_.size()) return false;
    out = bytes_.subspan(pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> NodeProvisioning::serialize() const {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  append_u32(out, raw(id));
  append_u32(out, static_cast<std::uint32_t>(code_length_chips));
  append_u32(out, static_cast<std::uint32_t>(code_ids.size()));
  for (std::size_t i = 0; i < code_ids.size(); ++i) {
    append_u32(out, raw(code_ids[i]));
    const std::vector<std::uint8_t> pattern = code_patterns[i].to_bytes();
    out.insert(out.end(), pattern.begin(), pattern.end());
  }
  const crypto::Sha256Digest digest = crypto::Sha256::hash(out);
  out.insert(out.end(), digest.begin(), digest.begin() + kChecksumBytes);
  return out;
}

std::optional<NodeProvisioning> NodeProvisioning::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4 + 1 + 12 + kChecksumBytes) return std::nullopt;
  // Verify checksum over everything but the trailing 8 bytes.
  const std::size_t body_len = bytes.size() - kChecksumBytes;
  const crypto::Sha256Digest digest = crypto::Sha256::hash(bytes.subspan(0, body_len));
  if (std::memcmp(digest.data(), bytes.data() + body_len, kChecksumBytes) != 0) {
    return std::nullopt;
  }

  Reader r(bytes.subspan(0, body_len));
  std::span<const std::uint8_t> magic;
  if (!r.read_span(4, magic) || std::memcmp(magic.data(), kMagic, 4) != 0) return std::nullopt;
  std::uint8_t version = 0;
  if (!r.read_u8(version) || version != kVersion) return std::nullopt;

  NodeProvisioning out;
  std::uint32_t raw_id = 0;
  std::uint32_t chips = 0;
  std::uint32_t count = 0;
  if (!r.read_u32(raw_id) || !r.read_u32(chips) || !r.read_u32(count)) return std::nullopt;
  if (chips == 0) return std::nullopt;
  out.id = node_id(raw_id);
  out.code_length_chips = chips;
  const std::size_t pattern_bytes = (chips + 7) / 8;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t code = 0;
    std::span<const std::uint8_t> pattern;
    if (!r.read_u32(code) || !r.read_span(pattern_bytes, pattern)) return std::nullopt;
    out.code_ids.push_back(code_id(code));
    out.code_patterns.push_back(BitVector::from_bytes(pattern).slice(0, chips));
  }
  if (r.remaining() != 0) return std::nullopt;  // trailing garbage
  return out;
}

NodeProvisioning provision_node(const CodePoolAuthority& authority, NodeId id) {
  NodeProvisioning blob;
  blob.id = id;
  blob.code_length_chips = authority.params().code_length_chips;
  for (const CodeId code : authority.assignment().codes_of(id)) {
    blob.code_ids.push_back(code);
    blob.code_patterns.push_back(authority.code(code).bits());
  }
  return blob;
}

}  // namespace jrsnd::predist
