#include "predist/revocation.hpp"

#include <algorithm>
#include <stdexcept>

namespace jrsnd::predist {

RevocationState::RevocationState(std::uint32_t gamma, const std::vector<CodeId>& codes)
    : gamma_(gamma) {
  for (const CodeId code : codes) entries_.emplace(code, Entry{});
}

bool RevocationState::report_invalid(CodeId code) {
  const auto it = entries_.find(code);
  if (it == entries_.end()) {
    throw std::invalid_argument("RevocationState::report_invalid: code not held");
  }
  Entry& entry = it->second;
  if (entry.revoked) return false;  // already revoked: no further despreading
  ++total_;
  ++entry.invalid;
  if (entry.invalid > gamma_) {
    entry.revoked = true;
    return true;
  }
  return false;
}

bool RevocationState::revoke(CodeId code) {
  const auto it = entries_.find(code);
  if (it == entries_.end() || it->second.revoked) return false;
  it->second.revoked = true;
  return true;
}

bool RevocationState::is_revoked(CodeId code) const {
  const auto it = entries_.find(code);
  return it != entries_.end() && it->second.revoked;
}

bool RevocationState::is_usable(CodeId code) const {
  const auto it = entries_.find(code);
  return it != entries_.end() && !it->second.revoked;
}

std::vector<CodeId> RevocationState::usable_codes() const {
  std::vector<CodeId> out;
  for (const auto& [code, entry] : entries_) {
    if (!entry.revoked) out.push_back(code);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t RevocationState::invalid_count(CodeId code) const {
  const auto it = entries_.find(code);
  if (it == entries_.end()) return 0;
  return it->second.invalid;
}

}  // namespace jrsnd::predist
