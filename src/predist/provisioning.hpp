// Pre-deployment provisioning blobs.
//
// Before the MANET ships out, the authority flashes each radio with its
// identity and its m secret spread codes (ids + chip patterns). This module
// defines that artifact as a versioned, integrity-checked byte format:
//
//   magic "JRSP" | version u8 | node id u32 | code length (chips) u32 |
//   code count u32 | count x { code id u32 | ceil(N/8) pattern bytes } |
//   sha256(all prior bytes)[0..7]
//
// The checksum detects flashing corruption (it is NOT an authenticity
// mechanism — blobs travel over the authority's provisioning bench, not
// the air). parse() rejects truncation, bad magic/version, checksum
// mismatch, and trailing garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bit_vector.hpp"
#include "common/types.hpp"
#include "predist/authority.hpp"

namespace jrsnd::predist {

struct NodeProvisioning {
  NodeId id = kInvalidNode;
  std::size_t code_length_chips = 0;
  std::vector<CodeId> code_ids;
  std::vector<BitVector> code_patterns;  ///< parallel to code_ids

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<NodeProvisioning> parse(
      std::span<const std::uint8_t> bytes);

  bool operator==(const NodeProvisioning&) const = default;
};

/// Builds node `id`'s blob from the authority's assignment and pool.
[[nodiscard]] NodeProvisioning provision_node(const CodePoolAuthority& authority, NodeId id);

}  // namespace jrsnd::predist
