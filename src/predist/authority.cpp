#include "predist/authority.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace jrsnd::predist {

CodePoolAuthority::CodePoolAuthority(const PredistParams& params, Rng rng)
    : params_(params), rng_(rng) {
  if (params.node_count == 0 || params.codes_per_node == 0 || params.holders_per_code == 0) {
    throw std::invalid_argument("CodePoolAuthority: zero parameter");
  }
  // Generate the secret pool.
  const std::uint32_t s = params_.pool_size();
  pool_.reserve(s);
  for (std::uint32_t i = 0; i < s; ++i) {
    pool_.push_back(dsss::SpreadCode::random(rng_, params_.code_length_chips, code_id(i)));
  }

  // Initial distribution over n real nodes + l' virtual padding slots.
  const std::size_t padded = static_cast<std::size_t>(params_.groups_per_round()) *
                             params_.holders_per_code;
  std::vector<std::vector<CodeId>> sets = run_distribution(padded);
  // The first n slots are the real nodes; the rest are banked for joins.
  for (std::uint32_t i = 0; i < params_.node_count; ++i) {
    assignment_.assign(node_id(i), std::move(sets[i]));
  }
  for (std::size_t i = params_.node_count; i < padded; ++i) {
    virtual_bank_.push_back(std::move(sets[i]));
  }
  next_node_ = params_.node_count;
}

std::vector<std::vector<CodeId>> CodePoolAuthority::run_distribution(std::size_t slots) {
  const std::uint32_t w = params_.groups_per_round();
  assert(slots % w == 0);
  const std::size_t group_size = slots / w;
  const std::uint32_t m = params_.codes_per_node;

  std::vector<std::vector<CodeId>> sets(slots);
  std::vector<std::uint32_t> order(slots);
  std::iota(order.begin(), order.end(), 0u);

  for (std::uint32_t round = 0; round < m; ++round) {
    // Random partition: shuffle, then consecutive blocks form the groups.
    rng_.shuffle(std::span<std::uint32_t>(order));
    for (std::uint32_t group = 0; group < w; ++group) {
      const CodeId code = code_id(w * round + group);
      for (std::size_t member = 0; member < group_size; ++member) {
        sets[order[group * group_size + member]].push_back(code);
      }
    }
  }
  return sets;
}

const dsss::SpreadCode& CodePoolAuthority::code(CodeId id) const {
  const std::uint32_t idx = raw(id);
  if (idx >= pool_.size()) throw std::out_of_range("CodePoolAuthority::code: bad id");
  return pool_[idx];
}

std::vector<CodeId> CodePoolAuthority::join(NodeId new_node) {
  if (assignment_.has_node(new_node)) {
    throw std::invalid_argument("CodePoolAuthority::join: node already present");
  }
  if (virtual_bank_.empty()) {
    // Fresh cohort of w single-member groups per round: every code gains at
    // most one holder (paper §V-A join procedure).
    std::vector<std::vector<CodeId>> cohort = run_distribution(params_.groups_per_round());
    for (auto& set : cohort) virtual_bank_.push_back(std::move(set));
  }
  std::vector<CodeId> granted = std::move(virtual_bank_.back());
  virtual_bank_.pop_back();
  assignment_.assign(new_node, granted);
  return granted;
}

}  // namespace jrsnd::predist
