// Local spread-code revocation — the DoS defence of paper §V-D.
//
// Each node keeps a counter per code it holds. Every invalid
// neighbor-discovery request that arrives spread with code C_x (bad
// signature / failed MAC) bumps C_x's counter; when it exceeds gamma the
// node locally revokes C_x and stops de-spreading with it. An adversary who
// compromised a code can therefore waste at most (l-1) * gamma signature
// verifications network-wide on that code, versus unbounded for schemes with
// public code sets.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace jrsnd::predist {

class RevocationState {
 public:
  /// `gamma` is the invalid-request threshold; `codes` the node's code set.
  RevocationState(std::uint32_t gamma, const std::vector<CodeId>& codes);

  /// Records an invalid request received spread with `code`.
  /// Returns true if this report crossed the threshold and revoked the code.
  bool report_invalid(CodeId code);

  /// Unconditionally revokes `code` (authority-driven revocation, §V-D).
  /// Returns true if the code was held and not already revoked.
  bool revoke(CodeId code);

  /// True when the node no longer de-spreads with `code`.
  [[nodiscard]] bool is_revoked(CodeId code) const;

  /// True when `code` belongs to this node and is not revoked.
  [[nodiscard]] bool is_usable(CodeId code) const;

  /// Codes still usable, ascending.
  [[nodiscard]] std::vector<CodeId> usable_codes() const;

  [[nodiscard]] std::uint32_t invalid_count(CodeId code) const;
  [[nodiscard]] std::uint32_t gamma() const noexcept { return gamma_; }

  /// Total invalid requests this node has had to verify (the DoS cost).
  [[nodiscard]] std::uint64_t total_invalid_verifications() const noexcept { return total_; }

 private:
  struct Entry {
    std::uint32_t invalid = 0;
    bool revoked = false;
  };

  std::uint32_t gamma_;
  std::unordered_map<CodeId, Entry> entries_;
  std::uint64_t total_ = 0;
};

}  // namespace jrsnd::predist
