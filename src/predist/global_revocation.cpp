#include "predist/global_revocation.hpp"

#include "common/bit_vector.hpp"

namespace jrsnd::predist {

std::vector<std::uint8_t> RevocationList::sign_input() const {
  BitVector bv;
  bv.append_uint(sequence, 64);
  bv.append_uint(revoked.size(), 32);
  for (const CodeId code : revoked) bv.append_uint(raw(code), 32);
  return bv.to_bytes();
}

RevocationIssuer::RevocationIssuer(crypto::IbcPrivateKey authority_key)
    : key_(std::move(authority_key)) {}

RevocationList RevocationIssuer::issue(std::vector<CodeId> codes) {
  RevocationList list;
  list.sequence = next_sequence_++;
  list.revoked = std::move(codes);
  list.signature = key_.sign(list.sign_input());
  return list;
}

RevocationListener::RevocationListener(std::shared_ptr<const crypto::PairingOracle> oracle)
    : oracle_(std::move(oracle)) {}

RevocationListener::Outcome RevocationListener::apply(const RevocationList& list,
                                                      RevocationState& state,
                                                      std::size_t* purged) {
  if (purged != nullptr) *purged = 0;
  if (!oracle_->verify(kAuthorityId, list.sign_input(), list.signature)) {
    return Outcome::BadSignature;
  }
  if (list.sequence <= last_sequence_) return Outcome::Stale;
  last_sequence_ = list.sequence;
  std::size_t count = 0;
  for (const CodeId code : list.revoked) count += state.revoke(code);
  if (purged != nullptr) *purged = count;
  return Outcome::Applied;
}

}  // namespace jrsnd::predist
