// The MANET authority's random spread-code pre-distribution (paper §V-A).
//
// Before deployment the authority generates a secret pool of s << 2^N codes
// and hands each node m of them such that no code is held by more than l
// nodes. Distribution runs in m rounds: each round the (possibly padded)
// node set is randomly partitioned into w = s/m groups of exactly l, and
// group j receives code C_{w(i-1)+j}. When l does not divide n, l' virtual
// nodes pad the final groups; their code sets are banked and handed to
// late-joining nodes. Once the bank is empty, a fresh cohort of w virtual
// slots is distributed over the *same* s codes, raising each code's holder
// count by at most one — exactly the paper's join procedure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsss/spread_code.hpp"
#include "predist/code_assignment.hpp"

namespace jrsnd::predist {

struct PredistParams {
  std::uint32_t node_count = 2000;      ///< n
  std::uint32_t codes_per_node = 100;   ///< m
  std::uint32_t holders_per_code = 40;  ///< l
  std::size_t code_length_chips = 512;  ///< N

  /// w = ceil(n / l): groups per round; pool size s = w * m.
  [[nodiscard]] std::uint32_t groups_per_round() const noexcept {
    return (node_count + holders_per_code - 1) / holders_per_code;
  }
  [[nodiscard]] std::uint32_t pool_size() const noexcept {
    return groups_per_round() * codes_per_node;
  }
  /// l' = l*w - n: virtual nodes padding the partition.
  [[nodiscard]] std::uint32_t virtual_node_count() const noexcept {
    return groups_per_round() * holders_per_code - node_count;
  }
};

class CodePoolAuthority {
 public:
  /// Generates the secret pool and runs the m-round distribution for nodes
  /// 0..n-1 (real) plus the virtual padding slots.
  CodePoolAuthority(const PredistParams& params, Rng rng);

  [[nodiscard]] const PredistParams& params() const noexcept { return params_; }

  /// The distribution outcome for the n real nodes.
  [[nodiscard]] const CodeAssignment& assignment() const noexcept { return assignment_; }

  /// The actual chip pattern of a pool code (authority-private in the real
  /// system; protocol engines obtain codes only through node code sets).
  [[nodiscard]] const dsss::SpreadCode& code(CodeId id) const;

  [[nodiscard]] std::size_t pool_size() const noexcept { return pool_.size(); }

  /// Admits a late-joining node: hands it a banked virtual slot's code set,
  /// distributing a fresh cohort over the same pool if the bank is empty.
  /// The node id must be new. Returns the codes granted.
  std::vector<CodeId> join(NodeId new_node);

  /// Virtual code-set bank currently available for joins.
  [[nodiscard]] std::size_t banked_slots() const noexcept { return virtual_bank_.size(); }

 private:
  /// Runs the m-round partition over `slots` participants and returns each
  /// participant's code set (same pool ids every time).
  [[nodiscard]] std::vector<std::vector<CodeId>> run_distribution(std::size_t slots);

  PredistParams params_;
  Rng rng_;
  std::vector<dsss::SpreadCode> pool_;
  CodeAssignment assignment_;
  std::vector<std::vector<CodeId>> virtual_bank_;
  std::uint32_t next_node_ = 0;
};

}  // namespace jrsnd::predist
