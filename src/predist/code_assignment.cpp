#include "predist/code_assignment.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace jrsnd::predist {

void CodeAssignment::assign(NodeId node, std::vector<CodeId> codes) {
  std::sort(codes.begin(), codes.end());
  auto [it, inserted] = per_node_.emplace(node, std::move(codes));
  if (!inserted) throw std::invalid_argument("CodeAssignment::assign: node already assigned");
  for (const CodeId code : it->second) per_code_[code].push_back(node);
}

bool CodeAssignment::has_node(NodeId node) const { return per_node_.contains(node); }

const std::vector<CodeId>& CodeAssignment::codes_of(NodeId node) const {
  const auto it = per_node_.find(node);
  if (it == per_node_.end()) throw std::out_of_range("CodeAssignment::codes_of: unknown node");
  return it->second;
}

std::vector<CodeId> CodeAssignment::shared_codes(NodeId a, NodeId b) const {
  const auto& ca = codes_of(a);
  const auto& cb = codes_of(b);
  std::vector<CodeId> out;
  std::set_intersection(ca.begin(), ca.end(), cb.begin(), cb.end(), std::back_inserter(out));
  return out;
}

std::vector<NodeId> CodeAssignment::holders_of(CodeId code) const {
  const auto it = per_code_.find(code);
  if (it == per_code_.end()) return {};
  std::vector<NodeId> holders = it->second;
  std::sort(holders.begin(), holders.end());
  return holders;
}

std::vector<NodeId> CodeAssignment::nodes() const {
  std::vector<NodeId> out;
  out.reserve(per_node_.size());
  for (const auto& [node, codes] : per_node_) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t CodeAssignment::max_holders() const {
  std::size_t max_count = 0;
  for (const auto& [code, holders] : per_code_) max_count = std::max(max_count, holders.size());
  return max_count;
}

std::vector<std::size_t> CodeAssignment::shared_count_histogram() const {
  const std::vector<NodeId> all = nodes();
  std::vector<std::size_t> histogram;
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const std::size_t x = shared_codes(all[i], all[j]).size();
      if (x >= histogram.size()) histogram.resize(x + 1, 0);
      ++histogram[x];
    }
  }
  return histogram;
}

}  // namespace jrsnd::predist
