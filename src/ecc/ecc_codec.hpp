// Message-level ECC wrapper (paper §V-B).
//
// Every JR-SND message of L = l_t + l_id (or longer) bits is expanded to
// l_coded = (1 + mu) * L bits such that the receiver can recover the message
// even when a fraction mu/(1+mu) of the coded bits is jammed. We realize
// this with rate-1/(1+mu) Reed-Solomon over GF(2^8):
//
//   * the payload is packed into bytes (symbols),
//   * split into blocks of at most 255/(1+mu) data symbols each,
//   * each block is RS(n_i, k_i) encoded with k_i/n_i ~= 1/(1+mu),
//   * blocks are symbol-interleaved so a contiguous jamming burst spreads
//     evenly across blocks instead of overwhelming one of them,
//   * de-spreading marks unreliable bits (|correlation| < tau) as erasures;
//     a symbol is erased iff any of its bits is erased, and RS errata
//     decoding then tolerates an n_i - k_i erasure fraction = mu/(1+mu).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/bit_vector.hpp"
#include "ecc/reed_solomon.hpp"

namespace jrsnd::ecc {

class EccCodec {
 public:
  /// mu > 0 is the paper's redundancy parameter (Table I: mu = 1).
  explicit EccCodec(double mu);

  [[nodiscard]] double mu() const noexcept { return mu_; }

  /// Number of coded bits produced for a payload of `payload_bits` bits.
  [[nodiscard]] std::size_t coded_length_bits(std::size_t payload_bits) const;

  /// The paper's idealized coded length (1+mu)(payload bits); the actual
  /// coded_length_bits() rounds up to whole RS symbols and is used on the
  /// wire, while timing formulas use this idealized value.
  [[nodiscard]] std::size_t nominal_coded_length_bits(std::size_t payload_bits) const;

  /// Encodes `payload` into the interleaved RS codeword bit stream.
  [[nodiscard]] BitVector encode(const BitVector& payload) const;

  /// Decodes a received bit stream. `payload_bits` is the original payload
  /// length (known from the message type); `erased_bits` lists coded-bit
  /// positions flagged unreliable by the de-spreader. Bits may additionally
  /// be silently corrupted (errors); RS errata decoding handles both.
  /// Returns nullopt when the errata exceed the code's capability.
  [[nodiscard]] std::optional<BitVector> decode(const BitVector& received,
                                                std::size_t payload_bits,
                                                std::span<const std::size_t> erased_bits = {}) const;

  /// Guaranteed-tolerable erased-bit fraction (the paper's mu/(1+mu)).
  [[nodiscard]] double erasure_tolerance() const noexcept { return mu_ / (1.0 + mu_); }

 private:
  struct Layout {
    // Per-block (n, k) and the interleaved transmission order of symbols as
    // (block index, symbol-within-block) pairs.
    std::vector<std::pair<int, int>> block_nk;
    std::vector<std::pair<int, int>> order;
    std::size_t total_symbols = 0;
  };

  [[nodiscard]] Layout layout_for(std::size_t payload_bits) const;

  double mu_;
};

}  // namespace jrsnd::ecc
