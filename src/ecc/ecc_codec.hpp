// Message-level ECC wrapper (paper §V-B).
//
// Every JR-SND message of L = l_t + l_id (or longer) bits is expanded to
// l_coded = (1 + mu) * L bits such that the receiver can recover the message
// even when a fraction mu/(1+mu) of the coded bits is jammed. We realize
// this with rate-1/(1+mu) Reed-Solomon over GF(2^8):
//
//   * the payload is packed into bytes (symbols),
//   * split into blocks of at most 255/(1+mu) data symbols each,
//   * each block is RS(n_i, k_i) encoded with k_i/n_i ~= 1/(1+mu),
//   * blocks are symbol-interleaved so a contiguous jamming burst spreads
//     evenly across blocks instead of overwhelming one of them,
//   * de-spreading marks unreliable bits (|correlation| < tau) as erasures;
//     a symbol is erased iff any of its bits is erased, and RS errata
//     decoding then tolerates an n_i - k_i erasure fraction = mu/(1+mu).
//
// Both the block layout (a pure function of the payload length) and the
// ReedSolomon coders (pure functions of (n, k), including their generator
// and LFSR encode table) are cached inside the codec after first use:
// message lengths in a run come from a handful of message types, so every
// encode/decode after the first reuses the precomputation. The caches are
// mutex-guarded and pointer-stable, so a codec shared across PR-2 thread-pool
// workers stays safe; per-call working buffers live in a caller-owned
// Scratch, making the *_into entry points allocation-free in the steady
// state (on the clean decode path — see reed_solomon.hpp).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/bit_vector.hpp"
#include "ecc/reed_solomon.hpp"

namespace jrsnd::ecc {

class EccCodec {
 public:
  /// Reusable per-caller workspace for encode_into / decode_into. One
  /// scratch per thread (it is not internally synchronized).
  struct Scratch {
    std::vector<std::uint8_t> data;                     ///< packed payload / decoded bytes
    std::vector<std::vector<std::uint8_t>> codewords;   ///< per-block codewords
    std::vector<std::vector<int>> erasures;             ///< per-block erasure positions
    std::vector<std::uint8_t> symbol_erased;            ///< per-tx-symbol erasure flags
    std::vector<std::uint8_t> block_out;                ///< one decoded block
    ReedSolomon::DecodeScratch rs;
  };

  /// mu > 0 is the paper's redundancy parameter (Table I: mu = 1).
  explicit EccCodec(double mu);

  [[nodiscard]] double mu() const noexcept { return mu_; }

  /// Number of coded bits produced for a payload of `payload_bits` bits.
  [[nodiscard]] std::size_t coded_length_bits(std::size_t payload_bits) const;

  /// The paper's idealized coded length (1+mu)(payload bits); the actual
  /// coded_length_bits() rounds up to whole RS symbols and is used on the
  /// wire, while timing formulas use this idealized value.
  [[nodiscard]] std::size_t nominal_coded_length_bits(std::size_t payload_bits) const;

  /// Encodes `payload` into the interleaved RS codeword bit stream.
  [[nodiscard]] BitVector encode(const BitVector& payload) const;

  /// encode() into a caller-owned output (cleared and refilled), reusing
  /// `scratch`; identical bits, allocation-free in the steady state.
  void encode_into(const BitVector& payload, Scratch& scratch, BitVector& out) const;

  /// Decodes a received bit stream. `payload_bits` is the original payload
  /// length (known from the message type); `erased_bits` lists coded-bit
  /// positions flagged unreliable by the de-spreader. Bits may additionally
  /// be silently corrupted (errors); RS errata decoding handles both.
  /// Returns nullopt when the errata exceed the code's capability.
  [[nodiscard]] std::optional<BitVector> decode(const BitVector& received,
                                                std::size_t payload_bits,
                                                std::span<const std::size_t> erased_bits = {}) const;

  /// decode() into a caller-owned output, reusing `scratch`. Returns whether
  /// decoding succeeded; identical bits to decode().
  [[nodiscard]] bool decode_into(const BitVector& received, std::size_t payload_bits,
                                 std::span<const std::size_t> erased_bits, Scratch& scratch,
                                 BitVector& out) const;

  /// Guaranteed-tolerable erased-bit fraction (the paper's mu/(1+mu)).
  [[nodiscard]] double erasure_tolerance() const noexcept { return mu_ / (1.0 + mu_); }

 private:
  struct Layout {
    // Per-block (n, k) and the interleaved transmission order of symbols as
    // (block index, symbol-within-block) pairs.
    std::vector<std::pair<int, int>> block_nk;
    std::vector<std::pair<int, int>> order;
    std::size_t total_symbols = 0;
  };

  [[nodiscard]] Layout layout_for(std::size_t payload_bits) const;

  /// The cached layout for `payload_bits`, built on first use. The returned
  /// reference is stable for the codec's lifetime (node-based map).
  [[nodiscard]] const Layout& cached_layout(std::size_t payload_bits) const;

  /// The cached RS(n, k) coder, built (generator + encode table) on first
  /// use. Stable reference, same as cached_layout.
  [[nodiscard]] const ReedSolomon& cached_rs(int n, int k) const;

  double mu_;
  mutable std::mutex cache_mutex_;
  mutable std::map<std::size_t, Layout> layouts_;
  mutable std::map<std::pair<int, int>, ReedSolomon> coders_;
};

}  // namespace jrsnd::ecc
