// Arithmetic in GF(2^8) = GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), the symbol
// field of the Reed-Solomon code (paper ref [15]). Log/antilog tables are
// built once at static initialization; alpha = 0x02 is a generator.
#pragma once

#include <array>
#include <cstdint>

namespace jrsnd::ecc {

class GF256 {
 public:
  static constexpr std::uint16_t kPrimitivePoly = 0x11d;  // x^8+x^4+x^3+x^2+1
  static constexpr int kFieldSize = 256;
  static constexpr int kGroupOrder = 255;  // multiplicative group order

  /// Addition and subtraction coincide (characteristic 2).
  [[nodiscard]] static std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
    return a ^ b;
  }

  [[nodiscard]] static std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;

  /// Multiplicative inverse. Precondition: a != 0.
  [[nodiscard]] static std::uint8_t inv(std::uint8_t a) noexcept;

  /// a / b. Precondition: b != 0.
  [[nodiscard]] static std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept;

  /// alpha^power (power taken mod 255, negative powers allowed).
  [[nodiscard]] static std::uint8_t exp(int power) noexcept;

  /// Discrete log base alpha. Precondition: a != 0.
  [[nodiscard]] static int log(std::uint8_t a) noexcept;

  /// a^power for non-negative integer power (0^0 == 1 by convention).
  [[nodiscard]] static std::uint8_t pow(std::uint8_t a, int power) noexcept;

 private:
  struct Tables {
    std::array<std::uint8_t, 512> exp_table;
    std::array<int, 256> log_table;
    Tables() noexcept;
  };
  static const Tables& tables() noexcept;
};

}  // namespace jrsnd::ecc
