#include "ecc/reed_solomon.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ecc/gf256.hpp"
#include "obs/metrics_registry.hpp"

namespace jrsnd::ecc {

namespace {

// Polynomials below are stored in ascending order: p[i] is the coefficient
// of x^i. The codeword itself is stored in transmission order, cw[0] being
// the coefficient of x^{n-1} (systematic data first).

using Poly = std::vector<std::uint8_t>;

void trim(Poly& p) {
  while (p.size() > 1 && p.back() == 0) p.pop_back();
}

[[nodiscard]] int degree(const Poly& p) {
  for (std::size_t i = p.size(); i-- > 0;) {
    if (p[i] != 0) return static_cast<int>(i);
  }
  return -1;  // zero polynomial
}

[[nodiscard]] bool is_zero(const Poly& p) { return degree(p) < 0; }

[[nodiscard]] Poly poly_mul(const Poly& a, const Poly& b) {
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = GF256::add(out[i + j], GF256::mul(a[i], b[j]));
    }
  }
  return out;
}

[[nodiscard]] Poly poly_add(const Poly& a, const Poly& b) {
  Poly out(std::max(a.size(), b.size()), 0);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = GF256::add(out[i], b[i]);
  return out;
}

[[nodiscard]] Poly poly_scale(const Poly& a, std::uint8_t s) {
  Poly out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = GF256::mul(a[i], s);
  return out;
}

[[nodiscard]] Poly poly_mod_xn(Poly p, std::size_t n) {
  if (p.size() > n) p.resize(n);
  if (p.empty()) p.push_back(0);
  return p;
}

/// Evaluates an ascending-order polynomial at x (Horner from the top).
[[nodiscard]] std::uint8_t poly_eval(const Poly& p, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) acc = GF256::add(GF256::mul(acc, x), p[i]);
  return acc;
}

/// Polynomial division: returns {quotient, remainder} with a = q*b + r.
[[nodiscard]] std::pair<Poly, Poly> poly_divmod(Poly a, const Poly& b) {
  const int db = degree(b);
  assert(db >= 0);
  Poly q(std::max<std::size_t>(a.size(), 1), 0);
  int da = degree(a);
  const std::uint8_t lead_inv = GF256::inv(b[static_cast<std::size_t>(db)]);
  while (da >= db) {
    const std::uint8_t coef = GF256::mul(a[static_cast<std::size_t>(da)], lead_inv);
    const std::size_t shift = static_cast<std::size_t>(da - db);
    q[shift] = coef;
    for (int i = 0; i <= db; ++i) {
      a[shift + static_cast<std::size_t>(i)] =
          GF256::add(a[shift + static_cast<std::size_t>(i)],
                     GF256::mul(coef, b[static_cast<std::size_t>(i)]));
    }
    da = degree(a);
  }
  trim(q);
  trim(a);
  return {q, a};
}

/// Formal derivative in characteristic 2: only odd-power terms survive.
[[nodiscard]] Poly poly_derivative(const Poly& p) {
  Poly out(std::max<std::size_t>(p.size() - 1, 1), 0);
  for (std::size_t j = 1; j < p.size(); j += 2) out[j - 1] = p[j];
  return out;
}

/// Counts the decode outcome on scope exit, whichever return path fires.
class DecodeScope {
 public:
  DecodeScope() { JRSND_COUNT("ecc.rs.decode.calls"); }
  ~DecodeScope() {
    if (ok_) {
      JRSND_COUNT("ecc.rs.decode.ok");
    } else {
      JRSND_COUNT("ecc.rs.decode.fail");
    }
  }
  void success() noexcept { ok_ = true; }

 private:
  bool ok_ = false;
};

}  // namespace

ReedSolomon::ReedSolomon(int n, int k) : n_(n), k_(k) {
  if (!(0 < k && k < n && n <= 255)) {
    throw std::invalid_argument("ReedSolomon: require 0 < k < n <= 255");
  }
  // Generator g(x) = prod_{i=0}^{n-k-1} (x + alpha^i), stored descending
  // (generator_[0] is the leading coefficient, always 1).
  generator_ = {1};
  for (int i = 0; i < n - k; ++i) {
    const std::uint8_t root = GF256::exp(i);
    Poly next(generator_.size() + 1, 0);
    next[0] = generator_[0];
    for (std::size_t j = 1; j < generator_.size(); ++j) {
      next[j] = GF256::add(generator_[j], GF256::mul(root, generator_[j - 1]));
    }
    next[generator_.size()] = GF256::mul(root, generator_.back());
    generator_ = std::move(next);
  }
  // LFSR table: row v holds v * (g_1 .. g_{n-k}) — the parity-register XOR
  // contribution of a data symbol whose feedback byte is v.
  const std::size_t parity_len = static_cast<std::size_t>(n_ - k_);
  encode_table_.assign(256 * parity_len, 0);
  for (std::size_t v = 0; v < 256; ++v) {
    for (std::size_t j = 0; j < parity_len; ++j) {
      encode_table_[v * parity_len + j] =
          GF256::mul(static_cast<std::uint8_t>(v), generator_[j + 1]);
    }
  }
}

std::vector<std::uint8_t> ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> codeword;
  encode_into(data, codeword);
  return codeword;
}

void ReedSolomon::encode_into(std::span<const std::uint8_t> data,
                              std::vector<std::uint8_t>& out) const {
  assert(static_cast<int>(data.size()) == k_);
  JRSND_COUNT("ecc.rs.encode.calls");
  const std::size_t parity_len = static_cast<std::size_t>(n_ - k_);
  out.clear();
  out.resize(static_cast<std::size_t>(n_), 0);
  std::copy(data.begin(), data.end(), out.begin());
  // Table-driven LFSR form of the long division of data(x) * x^{n-k} by
  // g(x): the parity register lives in out's tail; each data symbol shifts
  // it left and XORs in one precomputed row. Same remainder as the schoolbook
  // division, one table row instead of a per-coefficient GF multiply.
  std::uint8_t* reg = out.data() + k_;
  for (const std::uint8_t byte : data) {
    const std::uint8_t feedback = static_cast<std::uint8_t>(byte ^ reg[0]);
    const std::uint8_t* row = encode_table_.data() + std::size_t{feedback} * parity_len;
    for (std::size_t j = 0; j + 1 < parity_len; ++j) {
      reg[j] = static_cast<std::uint8_t>(reg[j + 1] ^ row[j]);
    }
    reg[parity_len - 1] = row[parity_len - 1];
  }
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(
    std::span<const std::uint8_t> received, std::span<const int> erasures) const {
  DecodeScratch scratch;
  std::vector<std::uint8_t> out;
  if (!decode_into(received, erasures, out, scratch)) return std::nullopt;
  return out;
}

bool ReedSolomon::decode_into(std::span<const std::uint8_t> received,
                              std::span<const int> erasures, std::vector<std::uint8_t>& out,
                              DecodeScratch& scratch, DecodeMode mode) const {
  DecodeScope scope;
  if (static_cast<int>(received.size()) != n_) return false;
  const int two_t = n_ - k_;

  // Deduplicate and validate erasure positions via per-position flags in the
  // scratch (no node-based set allocation on the hot path).
  scratch.erased.assign(static_cast<std::size_t>(n_), 0);
  int f = 0;
  for (const int pos : erasures) {
    if (pos < 0 || pos >= n_) return false;
    if (scratch.erased[static_cast<std::size_t>(pos)] == 0) {
      scratch.erased[static_cast<std::size_t>(pos)] = 1;
      ++f;
    }
  }
  JRSND_COUNT_N("ecc.rs.decode.erasures", f);
  if (f > two_t) return false;

  scratch.cw.assign(received.begin(), received.end());
  std::vector<std::uint8_t>& cw = scratch.cw;
  // Erased symbols carry no information; zero them so their "error" value is
  // simply the transmitted symbol.
  for (int pos = 0; pos < n_; ++pos) {
    if (scratch.erased[static_cast<std::size_t>(pos)] != 0) cw[static_cast<std::size_t>(pos)] = 0;
  }

  // Syndromes S_j = c(alpha^j), j = 0..2t-1 (Horner over descending coeffs).
  scratch.syndromes.assign(static_cast<std::size_t>(two_t), 0);
  bool all_zero = true;
  for (int j = 0; j < two_t; ++j) {
    const std::uint8_t x = GF256::exp(j);
    std::uint8_t acc = 0;
    for (int i = 0; i < n_; ++i) acc = GF256::add(GF256::mul(acc, x), cw[static_cast<std::size_t>(i)]);
    scratch.syndromes[static_cast<std::size_t>(j)] = acc;
    if (acc != 0) all_zero = false;
  }
  if (all_zero && mode == DecodeMode::kAuto) {
    // Codeword is valid as-is (including the zeroed erasures) — the clean
    // channel fast path: no locator algebra, no allocation.
    JRSND_COUNT("ecc.rs.decode.clean");
    out.assign(cw.begin(), cw.begin() + k_);
    scope.success();
    return true;
  }

  // Full errata pipeline (cold path: jammed or corrupted words; allocates
  // its polynomial workspaces).
  const Poly syndromes(scratch.syndromes.begin(), scratch.syndromes.end());

  // Erasure locator Gamma(x) = prod (1 + X_i x), X_i = alpha^{n-1-pos}.
  Poly gamma = {1};
  for (int pos = 0; pos < n_; ++pos) {
    if (scratch.erased[static_cast<std::size_t>(pos)] == 0) continue;
    const std::uint8_t X = GF256::exp(n_ - 1 - pos);
    gamma = poly_mul(gamma, Poly{1, X});
  }

  // Modified syndrome Xi(x) = S(x) * Gamma(x) mod x^{2t}.
  const Poly xi = poly_mod_xn(poly_mul(syndromes, gamma), static_cast<std::size_t>(two_t));

  // Sugiyama (extended Euclid) on (x^{2t}, Xi): stop when 2*deg(r) < 2t + f.
  Poly r_prev(static_cast<std::size_t>(two_t) + 1, 0);
  r_prev.back() = 1;  // x^{2t}
  Poly r_cur = xi;
  trim(r_cur);
  Poly t_prev = {0};
  Poly t_cur = {1};
  while (!is_zero(r_cur) && 2 * degree(r_cur) >= two_t + f) {
    auto [q, r_next] = poly_divmod(r_prev, r_cur);
    Poly t_next = poly_add(t_prev, poly_mul(q, t_cur));
    r_prev = std::move(r_cur);
    r_cur = std::move(r_next);
    t_prev = std::move(t_cur);
    t_cur = std::move(t_next);
  }
  Poly lambda = t_cur;   // error locator (up to a scalar)
  Poly omega = r_cur;    // errata evaluator (same scalar)
  trim(lambda);
  trim(omega);
  if (lambda.empty() || lambda[0] == 0) return false;
  const std::uint8_t norm = GF256::inv(lambda[0]);
  lambda = poly_scale(lambda, norm);
  omega = poly_scale(omega, norm);

  // Combined errata locator Psi = Lambda * Gamma.
  const Poly psi = poly_mul(lambda, gamma);
  const int errata_count = degree(psi);
  const int error_count = degree(lambda);
  if (error_count < 0 || 2 * error_count + f > two_t) return false;

  // Chien search: position power p corresponds to codeword index n-1-p.
  std::vector<int> errata_indices;
  std::vector<std::uint8_t> errata_locators;  // X = alpha^p
  for (int p = 0; p < n_; ++p) {
    const std::uint8_t x_inv = GF256::exp(-p);
    if (poly_eval(psi, x_inv) == 0) {
      errata_indices.push_back(n_ - 1 - p);
      errata_locators.push_back(GF256::exp(p));
    }
  }
  if (static_cast<int>(errata_indices.size()) != errata_count) return false;

  // Forney magnitudes (roots start at alpha^0, so b = 0):
  //   e = X * Omega(X^{-1}) / Psi'(X^{-1}).
  const Poly psi_deriv = poly_derivative(psi);
  for (std::size_t idx = 0; idx < errata_indices.size(); ++idx) {
    const std::uint8_t X = errata_locators[idx];
    const std::uint8_t x_inv = GF256::inv(X);
    const std::uint8_t denom = poly_eval(psi_deriv, x_inv);
    if (denom == 0) return false;
    const std::uint8_t num = GF256::mul(X, poly_eval(omega, x_inv));
    const std::uint8_t magnitude = GF256::div(num, denom);
    cw[static_cast<std::size_t>(errata_indices[idx])] =
        GF256::add(cw[static_cast<std::size_t>(errata_indices[idx])], magnitude);
  }

  // Re-verify: all syndromes of the corrected word must vanish.
  for (int j = 0; j < two_t; ++j) {
    const std::uint8_t x = GF256::exp(j);
    std::uint8_t acc = 0;
    for (int i = 0; i < n_; ++i) acc = GF256::add(GF256::mul(acc, x), cw[static_cast<std::size_t>(i)]);
    if (acc != 0) return false;
  }

  scope.success();
  JRSND_COUNT_N("ecc.rs.decode.errors_corrected", error_count);
  out.assign(cw.begin(), cw.begin() + k_);
  return true;
}

}  // namespace jrsnd::ecc
