#include "ecc/gf256.hpp"

#include <cassert>

namespace jrsnd::ecc {

GF256::Tables::Tables() noexcept {
  // Build alpha^i for i in [0, 255); duplicate the table so exp(i + j) for
  // i, j < 255 never needs a modulo.
  std::uint16_t x = 1;
  log_table[0] = -1;  // log(0) is undefined
  for (int i = 0; i < kGroupOrder; ++i) {
    exp_table[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    log_table[static_cast<std::size_t>(x)] = i;
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  for (int i = kGroupOrder; i < 512; ++i) {
    exp_table[static_cast<std::size_t>(i)] =
        exp_table[static_cast<std::size_t>(i - kGroupOrder)];
  }
}

const GF256::Tables& GF256::tables() noexcept {
  static const Tables t;
  return t;
}

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_table[static_cast<std::size_t>(t.log_table[a] + t.log_table[b])];
}

std::uint8_t GF256::inv(std::uint8_t a) noexcept {
  assert(a != 0);
  const Tables& t = tables();
  return t.exp_table[static_cast<std::size_t>(kGroupOrder - t.log_table[a])];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) noexcept {
  assert(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  int diff = t.log_table[a] - t.log_table[b];
  if (diff < 0) diff += kGroupOrder;
  return t.exp_table[static_cast<std::size_t>(diff)];
}

std::uint8_t GF256::exp(int power) noexcept {
  power %= kGroupOrder;
  if (power < 0) power += kGroupOrder;
  return tables().exp_table[static_cast<std::size_t>(power)];
}

int GF256::log(std::uint8_t a) noexcept {
  assert(a != 0);
  return tables().log_table[a];
}

std::uint8_t GF256::pow(std::uint8_t a, int power) noexcept {
  assert(power >= 0);
  if (power == 0) return 1;
  if (a == 0) return 0;
  const long long idx = (static_cast<long long>(log(a)) * power) % kGroupOrder;
  return tables().exp_table[static_cast<std::size_t>(idx)];
}

}  // namespace jrsnd::ecc
