// Systematic Reed-Solomon code RS(n, k) over GF(2^8) with full errata
// decoding (simultaneous error + erasure correction).
//
// The paper (§V-B, ref [15]) encodes every neighbor-discovery message with an
// ECC that tolerates a fraction mu/(1+mu) of bit errors *or losses*. RS(n, k)
// corrects e errors and f erasures whenever 2e + f <= n - k, so a rate
// k/n = 1/(1+mu) code tolerates exactly a mu/(1+mu) erasure fraction —
// matching the paper's claim when the DSSS correlator flags sub-threshold
// bits as erasures (see src/ecc/ecc_codec.hpp for the bit<->symbol bridge).
//
// Decoder pipeline: syndromes -> erasure locator -> Forney syndromes ->
// Berlekamp-Massey (errors) -> combined errata locator -> Chien search ->
// Forney magnitude algorithm.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace jrsnd::ecc {

class ReedSolomon {
 public:
  /// Constructs RS(n, k): n total symbols, k data symbols, n - k parity.
  /// Preconditions: 0 < k < n <= 255.
  ReedSolomon(int n, int k);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int parity() const noexcept { return n_ - k_; }

  /// Encodes k data symbols into n codeword symbols (systematic: data first,
  /// parity appended). Precondition: data.size() == k.
  [[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

  /// Decodes a received word of n symbols. `erasures` lists symbol positions
  /// known to be unreliable (each in [0, n), duplicates ignored). Returns the
  /// k data symbols, or nullopt if the errata are beyond the code's
  /// correction capability (2e + f > n - k) or decoding is inconsistent.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode(
      std::span<const std::uint8_t> received, std::span<const int> erasures = {}) const;

 private:
  int n_;
  int k_;
  std::vector<std::uint8_t> generator_;  // generator polynomial, ascending powers
};

}  // namespace jrsnd::ecc
