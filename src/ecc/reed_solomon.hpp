// Systematic Reed-Solomon code RS(n, k) over GF(2^8) with full errata
// decoding (simultaneous error + erasure correction).
//
// The paper (§V-B, ref [15]) encodes every neighbor-discovery message with an
// ECC that tolerates a fraction mu/(1+mu) of bit errors *or losses*. RS(n, k)
// corrects e errors and f erasures whenever 2e + f <= n - k, so a rate
// k/n = 1/(1+mu) code tolerates exactly a mu/(1+mu) erasure fraction —
// matching the paper's claim when the DSSS correlator flags sub-threshold
// bits as erasures (see src/ecc/ecc_codec.hpp for the bit<->symbol bridge).
//
// Decoder pipeline: syndromes -> erasure locator -> Forney syndromes ->
// Berlekamp-Massey (errors) -> combined errata locator -> Chien search ->
// Forney magnitude algorithm.
//
// Fast paths for the transmit hot loop:
//   * the encoder is a table-driven LFSR — each leading byte's contribution
//     to the parity register (byte * generator tail) is precomputed at
//     construction, so encode is one XOR-row per data symbol;
//   * the decoder exits right after the syndrome pass when every syndrome is
//     zero (the overwhelmingly common clean-channel case), skipping
//     Sugiyama/Chien/Forney entirely; with a caller-reused DecodeScratch the
//     clean path allocates nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace jrsnd::ecc {

class ReedSolomon {
 public:
  /// Reusable decode workspace. The clean (all-zero-syndrome) path touches
  /// only these buffers, so reusing one scratch across calls makes that path
  /// allocation-free in the steady state. The errata path still allocates
  /// its polynomial workspaces — it only runs on jammed/corrupted words.
  struct DecodeScratch {
    std::vector<std::uint8_t> cw;         ///< working codeword copy
    std::vector<std::uint8_t> erased;     ///< per-position erasure flags (dedupe)
    std::vector<std::uint8_t> syndromes;  ///< S_j, j = 0..2t-1
  };

  /// Decode strategy: kAuto takes the all-zero-syndrome early exit; kForceFull
  /// always runs the full errata pipeline (equivalence tests only — both
  /// modes return identical results by construction).
  enum class DecodeMode { kAuto, kForceFull };

  /// Constructs RS(n, k): n total symbols, k data symbols, n - k parity.
  /// Preconditions: 0 < k < n <= 255.
  ReedSolomon(int n, int k);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int parity() const noexcept { return n_ - k_; }

  /// Encodes k data symbols into n codeword symbols (systematic: data first,
  /// parity appended). Precondition: data.size() == k.
  [[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

  /// encode() into a caller-owned buffer (cleared and refilled to n
  /// symbols); allocation-free once `out`'s capacity covers n.
  void encode_into(std::span<const std::uint8_t> data, std::vector<std::uint8_t>& out) const;

  /// Decodes a received word of n symbols. `erasures` lists symbol positions
  /// known to be unreliable (each in [0, n), duplicates ignored). Returns the
  /// k data symbols, or nullopt if the errata are beyond the code's
  /// correction capability (2e + f > n - k) or decoding is inconsistent.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode(
      std::span<const std::uint8_t> received, std::span<const int> erasures = {}) const;

  /// decode() into a caller-owned buffer, reusing `scratch` across calls.
  /// Returns whether decoding succeeded; on success `out` holds the k data
  /// symbols. Identical results to decode() in every mode.
  [[nodiscard]] bool decode_into(std::span<const std::uint8_t> received,
                                 std::span<const int> erasures, std::vector<std::uint8_t>& out,
                                 DecodeScratch& scratch,
                                 DecodeMode mode = DecodeMode::kAuto) const;

 private:
  int n_;
  int k_;
  std::vector<std::uint8_t> generator_;  // generator polynomial, ascending powers
  // LFSR encode table: row v (256 rows of parity() bytes) holds
  // v * generator tail, so absorbing one data symbol is one row XOR.
  std::vector<std::uint8_t> encode_table_;
};

}  // namespace jrsnd::ecc
