#include "ecc/ecc_codec.hpp"

#include <cassert>
#include <cmath>
#include <set>
#include <stdexcept>

namespace jrsnd::ecc {

namespace {

// Largest data-symbol count per block such that n = ceil(k (1+mu)) <= 255.
int max_block_k(double mu) {
  int k = static_cast<int>(std::floor(255.0 / (1.0 + mu)));
  while (k > 1 && static_cast<int>(std::ceil(static_cast<double>(k) * (1.0 + mu))) > 255) --k;
  return std::max(k, 1);
}

int block_n_for(int k, double mu) {
  // n = ceil(k (1+mu)), clamped so that k < n (at least one parity symbol).
  const int n = static_cast<int>(std::ceil(static_cast<double>(k) * (1.0 + mu)));
  return std::max(n, k + 1);
}

}  // namespace

EccCodec::EccCodec(double mu) : mu_(mu) {
  if (!(mu > 0.0)) throw std::invalid_argument("EccCodec: mu must be positive");
}

EccCodec::Layout EccCodec::layout_for(std::size_t payload_bits) const {
  Layout layout;
  const int total_k = static_cast<int>((payload_bits + 7) / 8);
  assert(total_k > 0);
  const int kmax = max_block_k(mu_);
  const int num_blocks = (total_k + kmax - 1) / kmax;
  // Spread data symbols as evenly as possible across blocks.
  const int base = total_k / num_blocks;
  const int extra = total_k % num_blocks;
  int max_n = 0;
  for (int b = 0; b < num_blocks; ++b) {
    const int k = base + (b < extra ? 1 : 0);
    const int n = block_n_for(k, mu_);
    layout.block_nk.emplace_back(n, k);
    layout.total_symbols += static_cast<std::size_t>(n);
    max_n = std::max(max_n, n);
  }
  // Round-robin symbol interleaving across blocks.
  layout.order.reserve(layout.total_symbols);
  for (int pos = 0; pos < max_n; ++pos) {
    for (int b = 0; b < num_blocks; ++b) {
      if (pos < layout.block_nk[static_cast<std::size_t>(b)].first) {
        layout.order.emplace_back(b, pos);
      }
    }
  }
  return layout;
}

std::size_t EccCodec::coded_length_bits(std::size_t payload_bits) const {
  return layout_for(payload_bits).total_symbols * 8;
}

std::size_t EccCodec::nominal_coded_length_bits(std::size_t payload_bits) const {
  return static_cast<std::size_t>(
      std::ceil((1.0 + mu_) * static_cast<double>(payload_bits)));
}

BitVector EccCodec::encode(const BitVector& payload) const {
  if (payload.empty()) throw std::invalid_argument("EccCodec::encode: empty payload");
  const Layout layout = layout_for(payload.size());
  const std::vector<std::uint8_t> data = payload.to_bytes();

  // Encode each block.
  std::vector<std::vector<std::uint8_t>> codewords;
  codewords.reserve(layout.block_nk.size());
  std::size_t data_offset = 0;
  for (const auto& [n, k] : layout.block_nk) {
    const ReedSolomon rs(n, k);
    const std::span<const std::uint8_t> block(data.data() + data_offset,
                                              static_cast<std::size_t>(k));
    codewords.push_back(rs.encode(block));
    data_offset += static_cast<std::size_t>(k);
  }
  assert(data_offset == data.size());

  // Emit symbols in interleaved order.
  BitVector out;
  for (const auto& [b, sym] : layout.order) {
    out.append_uint(codewords[static_cast<std::size_t>(b)][static_cast<std::size_t>(sym)], 8);
  }
  return out;
}

std::optional<BitVector> EccCodec::decode(const BitVector& received, std::size_t payload_bits,
                                          std::span<const std::size_t> erased_bits) const {
  if (payload_bits == 0) return std::nullopt;
  const Layout layout = layout_for(payload_bits);
  if (received.size() != layout.total_symbols * 8) return std::nullopt;

  // Mark erased symbols: a symbol is erased iff any of its 8 bits is erased.
  std::set<std::size_t> erased_symbols;
  for (const std::size_t bit : erased_bits) {
    if (bit >= received.size()) return std::nullopt;
    erased_symbols.insert(bit / 8);
  }

  // De-interleave symbols back into per-block codewords + erasure lists.
  std::vector<std::vector<std::uint8_t>> codewords;
  std::vector<std::vector<int>> erasures(layout.block_nk.size());
  codewords.reserve(layout.block_nk.size());
  for (const auto& [n, k] : layout.block_nk) {
    (void)k;
    codewords.emplace_back(static_cast<std::size_t>(n), 0);
  }
  for (std::size_t tx_idx = 0; tx_idx < layout.order.size(); ++tx_idx) {
    const auto [b, sym] = layout.order[tx_idx];
    codewords[static_cast<std::size_t>(b)][static_cast<std::size_t>(sym)] =
        static_cast<std::uint8_t>(received.read_uint(tx_idx * 8, 8));
    if (erased_symbols.contains(tx_idx)) {
      erasures[static_cast<std::size_t>(b)].push_back(sym);
    }
  }

  // Decode each block; all must succeed.
  std::vector<std::uint8_t> data;
  for (std::size_t b = 0; b < layout.block_nk.size(); ++b) {
    const auto [n, k] = layout.block_nk[b];
    const ReedSolomon rs(n, k);
    auto block = rs.decode(codewords[b], erasures[b]);
    if (!block.has_value()) return std::nullopt;
    data.insert(data.end(), block->begin(), block->end());
  }

  BitVector bits = BitVector::from_bytes(data);
  return bits.slice(0, payload_bits);
}

}  // namespace jrsnd::ecc
