#include "ecc/ecc_codec.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/metrics_registry.hpp"

namespace jrsnd::ecc {

namespace {

// Largest data-symbol count per block such that n = ceil(k (1+mu)) <= 255.
int max_block_k(double mu) {
  int k = static_cast<int>(std::floor(255.0 / (1.0 + mu)));
  while (k > 1 && static_cast<int>(std::ceil(static_cast<double>(k) * (1.0 + mu))) > 255) --k;
  return std::max(k, 1);
}

int block_n_for(int k, double mu) {
  // n = ceil(k (1+mu)), clamped so that k < n (at least one parity symbol).
  const int n = static_cast<int>(std::ceil(static_cast<double>(k) * (1.0 + mu)));
  return std::max(n, k + 1);
}

}  // namespace

EccCodec::EccCodec(double mu) : mu_(mu) {
  if (!(mu > 0.0)) throw std::invalid_argument("EccCodec: mu must be positive");
}

EccCodec::Layout EccCodec::layout_for(std::size_t payload_bits) const {
  Layout layout;
  const int total_k = static_cast<int>((payload_bits + 7) / 8);
  assert(total_k > 0);
  const int kmax = max_block_k(mu_);
  const int num_blocks = (total_k + kmax - 1) / kmax;
  // Spread data symbols as evenly as possible across blocks.
  const int base = total_k / num_blocks;
  const int extra = total_k % num_blocks;
  int max_n = 0;
  for (int b = 0; b < num_blocks; ++b) {
    const int k = base + (b < extra ? 1 : 0);
    const int n = block_n_for(k, mu_);
    layout.block_nk.emplace_back(n, k);
    layout.total_symbols += static_cast<std::size_t>(n);
    max_n = std::max(max_n, n);
  }
  // Round-robin symbol interleaving across blocks.
  layout.order.reserve(layout.total_symbols);
  for (int pos = 0; pos < max_n; ++pos) {
    for (int b = 0; b < num_blocks; ++b) {
      if (pos < layout.block_nk[static_cast<std::size_t>(b)].first) {
        layout.order.emplace_back(b, pos);
      }
    }
  }
  return layout;
}

const EccCodec::Layout& EccCodec::cached_layout(std::size_t payload_bits) const {
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = layouts_.find(payload_bits);
    if (it != layouts_.end()) {
      JRSND_COUNT("ecc.codec.layout.hits");
      return it->second;
    }
  }
  // Build outside the lock (layout_for is pure); insert-or-reuse under it.
  JRSND_COUNT("ecc.codec.layout.builds");
  Layout built = layout_for(payload_bits);
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return layouts_.try_emplace(payload_bits, std::move(built)).first->second;
}

const ReedSolomon& EccCodec::cached_rs(int n, int k) const {
  const std::pair<int, int> key{n, k};
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = coders_.find(key);
    if (it != coders_.end()) {
      JRSND_COUNT("ecc.codec.rs.hits");
      return it->second;
    }
  }
  JRSND_COUNT("ecc.codec.rs.builds");
  ReedSolomon built(n, k);
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return coders_.try_emplace(key, std::move(built)).first->second;
}

std::size_t EccCodec::coded_length_bits(std::size_t payload_bits) const {
  return cached_layout(payload_bits).total_symbols * 8;
}

std::size_t EccCodec::nominal_coded_length_bits(std::size_t payload_bits) const {
  return static_cast<std::size_t>(
      std::ceil((1.0 + mu_) * static_cast<double>(payload_bits)));
}

BitVector EccCodec::encode(const BitVector& payload) const {
  Scratch scratch;
  BitVector out;
  encode_into(payload, scratch, out);
  return out;
}

void EccCodec::encode_into(const BitVector& payload, Scratch& scratch, BitVector& out) const {
  if (payload.empty()) throw std::invalid_argument("EccCodec::encode: empty payload");
  const Layout& layout = cached_layout(payload.size());
  payload.to_bytes_into(scratch.data);

  // Encode each block into the scratch codeword buffers (grown once, then
  // reused; never shrunk, so steady-state calls do not allocate).
  if (scratch.codewords.size() < layout.block_nk.size()) {
    scratch.codewords.resize(layout.block_nk.size());
  }
  std::size_t data_offset = 0;
  for (std::size_t b = 0; b < layout.block_nk.size(); ++b) {
    const auto [n, k] = layout.block_nk[b];
    const ReedSolomon& rs = cached_rs(n, k);
    const std::span<const std::uint8_t> block(scratch.data.data() + data_offset,
                                              static_cast<std::size_t>(k));
    rs.encode_into(block, scratch.codewords[b]);
    data_offset += static_cast<std::size_t>(k);
  }
  assert(data_offset == scratch.data.size());

  // Emit symbols in interleaved order.
  out.clear();
  out.reserve(layout.total_symbols * 8);
  for (const auto& [b, sym] : layout.order) {
    out.append_uint(scratch.codewords[static_cast<std::size_t>(b)][static_cast<std::size_t>(sym)],
                    8);
  }
}

std::optional<BitVector> EccCodec::decode(const BitVector& received, std::size_t payload_bits,
                                          std::span<const std::size_t> erased_bits) const {
  Scratch scratch;
  BitVector out;
  if (!decode_into(received, payload_bits, erased_bits, scratch, out)) return std::nullopt;
  return out;
}

bool EccCodec::decode_into(const BitVector& received, std::size_t payload_bits,
                           std::span<const std::size_t> erased_bits, Scratch& scratch,
                           BitVector& out) const {
  if (payload_bits == 0) return false;
  const Layout& layout = cached_layout(payload_bits);
  if (received.size() != layout.total_symbols * 8) return false;

  // Mark erased symbols with per-symbol flags (a symbol is erased iff any of
  // its 8 bits is erased) — no set allocation on the hot path.
  scratch.symbol_erased.assign(layout.total_symbols, 0);
  for (const std::size_t bit : erased_bits) {
    if (bit >= received.size()) return false;
    scratch.symbol_erased[bit / 8] = 1;
  }

  // De-interleave symbols back into per-block codewords + erasure lists.
  if (scratch.codewords.size() < layout.block_nk.size()) {
    scratch.codewords.resize(layout.block_nk.size());
  }
  if (scratch.erasures.size() < layout.block_nk.size()) {
    scratch.erasures.resize(layout.block_nk.size());
  }
  for (std::size_t b = 0; b < layout.block_nk.size(); ++b) {
    scratch.codewords[b].assign(static_cast<std::size_t>(layout.block_nk[b].first), 0);
    scratch.erasures[b].clear();
  }
  for (std::size_t tx_idx = 0; tx_idx < layout.order.size(); ++tx_idx) {
    const auto [b, sym] = layout.order[tx_idx];
    scratch.codewords[static_cast<std::size_t>(b)][static_cast<std::size_t>(sym)] =
        static_cast<std::uint8_t>(received.read_uint(tx_idx * 8, 8));
    if (scratch.symbol_erased[tx_idx] != 0) {
      scratch.erasures[static_cast<std::size_t>(b)].push_back(sym);
    }
  }

  // Decode each block; all must succeed.
  scratch.data.clear();
  for (std::size_t b = 0; b < layout.block_nk.size(); ++b) {
    const auto [n, k] = layout.block_nk[b];
    const ReedSolomon& rs = cached_rs(n, k);
    if (!rs.decode_into(scratch.codewords[b], scratch.erasures[b], scratch.block_out,
                        scratch.rs)) {
      return false;
    }
    scratch.data.insert(scratch.data.end(), scratch.block_out.begin(), scratch.block_out.end());
  }

  out.clear();
  out.reserve(scratch.data.size() * 8);
  for (const std::uint8_t byte : scratch.data) out.append_uint(byte, 8);
  out.truncate(payload_bits);
  return true;
}

}  // namespace jrsnd::ecc
