// Offline span reconstruction for `jrsnd analyze` (docs/observability.md).
//
// Reads a JSONL trace (strictly: the first malformed line is an error with
// its line number, not a skip), pairs span.begin/span.end records back into
// a span tree per trace id, and derives:
//   * per-attempt summaries — a root span is one discovery attempt;
//   * stage-level statistics (count, failures, deterministic durations);
//   * loss attribution — every failed attempt maps to exactly one LossStage;
//   * the top-K slowest attempts by critical-path duration.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/span.hpp"

namespace jrsnd::obs {

struct TraceReadError {
  std::size_t line = 0;  ///< 1-based offending line
  std::string message;
};

/// Strict JSONL reader: appends every parsed event to `out`; on the first
/// malformed line returns false with `error` (if non-null) filled in. Blank
/// lines are tolerated (trailing newline convenience), nothing else is.
bool read_trace_jsonl(std::istream& is, std::vector<TraceEvent>& out,
                      TraceReadError* error = nullptr);

/// Canonicalizes a trace for comparison: stable-sort by `t` (the run index
/// in Monte-Carlo traces — within one run, emission order is preserved on
/// both the serial and the parallel path because a run executes on a single
/// thread), then renumber `seq` from 1. Serial and parallel runs of the
/// same experiment produce byte-identical JSONL after this.
void normalize_trace(std::vector<TraceEvent>& events);

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;
  std::string name;
  double t = 0.0;  ///< run index / sim time of the begin record
  bool ok = true;
  LossStage loss = LossStage::None;
  double dur = 0.0;  ///< deterministic duration (seconds); 0 when absent
  bool has_dur = false;
  double wall_us = 0.0;  ///< wall-clock micros; only when the producer opted in
  bool has_wall = false;
};

struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t failed = 0;
  double total_dur = 0.0;
  double max_dur = 0.0;
};

struct AttemptSummary {
  std::uint64_t trace_id = 0;
  std::string name;
  double t = 0.0;
  bool ok = true;
  LossStage loss = LossStage::None;
  double dur = 0.0;  ///< critical path: the root span's own duration
  double wall_us = 0.0;
  bool has_wall = false;
  std::size_t spans = 0;  ///< spans recorded under this trace id
};

struct TraceAnalysis {
  std::size_t events = 0;       ///< total events examined
  std::size_t span_events = 0;  ///< span.begin + span.end among them
  std::vector<SpanRecord> spans;
  std::vector<AttemptSummary> attempts;      ///< root spans, file order
  std::map<std::string, StageStats> stages;  ///< keyed by span name
  std::array<std::uint64_t, kLossStageCount> loss_counts{};
  std::size_t failed_attempts = 0;
  std::size_t unattributed_failures = 0;  ///< failed roots with loss == None
  std::size_t unmatched_begin = 0;  ///< begins with no end (crash/truncation)
  std::size_t unmatched_end = 0;    ///< ends with no begin (ring overwrite)

  /// True when every failed attempt carries exactly one loss stage — the
  /// invariant `jrsnd analyze` checks on chaos traces.
  [[nodiscard]] bool attribution_complete() const noexcept {
    return unattributed_failures == 0;
  }
};

/// Reconstructs spans/attempts from `events` (any mix of span records and
/// other trace events; non-span events only count toward `events`).
[[nodiscard]] TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events);

/// Human-readable report: totals, loss-attribution table, per-stage
/// breakdown, top-K slowest attempts (wall-clock when present, else the
/// deterministic duration).
void print_analysis(std::ostream& os, const TraceAnalysis& analysis, std::size_t top_k = 10);

}  // namespace jrsnd::obs
