#include "obs/scoped_timer.hpp"

namespace jrsnd::obs {

Histogram& timer_histogram(std::string_view name) {
  return registry().histogram(name, default_latency_bounds());
}

}  // namespace jrsnd::obs
