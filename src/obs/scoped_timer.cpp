#include "obs/scoped_timer.hpp"

namespace jrsnd::obs {

Histogram& timer_histogram(std::string_view name) {
  // Resolved per timer construction (no per-site cache), so a thread-local
  // ScopedMetricsRegistry override naturally captures phase timers too.
  return active_registry().histogram(name, default_latency_bounds());
}

}  // namespace jrsnd::obs
