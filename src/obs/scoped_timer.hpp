// RAII wall-clock profiling (docs/observability.md).
//
// JRSND_SCOPED_TIMER("sim.phase.dndp.seconds") times the enclosing scope and
// feeds the elapsed seconds into a latency histogram of that name. When
// metrics are disabled the timer is constructed with a null sink: no clock
// read, no histogram lookup, no destructor work — the disabled path costs
// one relaxed atomic load (and compiles away entirely under
// JRSND_OBS_DISABLED).
#pragma once

#include <chrono>

#include "obs/metrics_registry.hpp"

namespace jrsnd::obs {

class ScopedTimer {
 public:
  /// Null sink = disarmed (no clock read at all).
  explicit ScopedTimer(Histogram* sink) noexcept : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe(elapsed_seconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (0 when disarmed).
  [[nodiscard]] double elapsed_seconds() const noexcept {
    if (sink_ == nullptr) return 0.0;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count();
  }

  [[nodiscard]] bool armed() const noexcept { return sink_ != nullptr; }

  /// Detaches the sink so the destructor records nothing.
  void cancel() noexcept { sink_ = nullptr; }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_{};
};

/// Latency histogram (default log-spaced bounds) for timer use.
[[nodiscard]] Histogram& timer_histogram(std::string_view name);

}  // namespace jrsnd::obs

#if defined(JRSND_OBS_DISABLED)
#define JRSND_SCOPED_TIMER(name) ((void)0)
#else
#define JRSND_SCOPED_TIMER(name)                                           \
  ::jrsnd::obs::ScopedTimer JRSND_OBS_CONCAT(jrsnd_obs_timer_, __LINE__) { \
    ::jrsnd::obs::metrics_enabled() ? &::jrsnd::obs::timer_histogram(name) : nullptr \
  }
#endif
