// Live telemetry export (docs/observability.md).
//
// Long Monte-Carlo sweeps used to be opaque until run_all() returned. The
// MetricsExporter snapshots the process registry on a background thread at a
// configurable interval and publishes:
//   * a Prometheus text-format file, atomically swapped (write tmp + rename)
//     so scrapers and `watch cat` never see a torn file;
//   * an append-only JSONL heartbeat stream (`export.heartbeat` events in
//     the standard trace schema) carrying every counter and gauge flat, so
//     `jrsnd report` and plain jq can plot progress over time.
//
// export_now() performs one synchronous export — the deterministic path
// tests use, and what the CLI calls once more on shutdown so the final
// state is always published.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics_registry.hpp"

namespace jrsnd::obs {

/// Serializes a snapshot in Prometheus text exposition format. Metric names
/// are prefixed and sanitized (non-alphanumerics become '_'); histograms
/// expose cumulative `_bucket{le="..."}` series plus `_sum` / `_count`.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot,
                      std::string_view prefix = "jrsnd");

struct ExporterOptions {
  std::string prometheus_path;  ///< empty disables the Prometheus file
  std::string heartbeat_path;   ///< empty disables the JSONL heartbeat stream
  double interval_s = 1.0;      ///< background export period
  std::string prefix = "jrsnd";
  std::string source;  ///< free-form tag stamped on heartbeats (e.g. "simulate")
};

class MetricsExporter {
 public:
  explicit MetricsExporter(ExporterOptions options);
  ~MetricsExporter();  // stops the background thread and exports once more

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Starts the periodic background thread (no-op if already running or the
  /// interval is not positive).
  void start();
  /// Stops the background thread; safe to call repeatedly.
  void stop();

  /// One synchronous export of the current process registry. Returns false
  /// if any configured destination failed to write.
  bool export_now();

  [[nodiscard]] std::uint64_t exports() const noexcept;

 private:
  bool write_prometheus_file(const MetricsSnapshot& snapshot);
  bool append_heartbeat(const MetricsSnapshot& snapshot);
  void run();

  ExporterOptions options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  std::atomic<std::uint64_t> exports_{0};
};

}  // namespace jrsnd::obs
