#include "obs/span.hpp"

#include <atomic>

#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"

namespace jrsnd::obs {

namespace {

const char* const kLossStageNames[kLossStageCount] = {
    "none",        "no_shared_code", "out_of_range", "jammed", "corrupt",
    "decode_fail", "timeout",        "fault",        "crash",
};

struct TraceState {
  SpanContext current{};
  std::uint32_t next_span = 1;
};

thread_local TraceState t_trace;
thread_local LossStage t_loss = LossStage::None;
std::atomic<bool> g_span_wall{false};

double wall_now() noexcept {
  static const std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

const char* loss_stage_name(LossStage stage) noexcept {
  const auto idx = static_cast<std::uint8_t>(stage);
  return idx < kLossStageCount ? kLossStageNames[idx] : "?";
}

void set_loss_reason(LossStage stage) noexcept { t_loss = stage; }

LossStage take_loss_reason() noexcept {
  const LossStage stage = t_loss;
  t_loss = LossStage::None;
  return stage;
}

LossStage peek_loss_reason() noexcept { return t_loss; }

SpanContext current_span() noexcept { return t_trace.current; }

bool span_wall_clock_enabled() noexcept { return g_span_wall.load(std::memory_order_relaxed); }

void set_span_wall_clock(bool enabled) noexcept {
  g_span_wall.store(enabled, std::memory_order_relaxed);
}

std::uint64_t derive_trace_id(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                              std::uint64_t k) noexcept {
  // splitmix64 over the golden-ratio-spread inputs; the constant offsets keep
  // (a, b) and (b, a) distinct traces.
  std::uint64_t x = salt;
  x += 0x9E3779B97F4A7C15ULL * (a + 1);
  x += 0xC2B2AE3D27D4EB4FULL * (b + 2);
  x += 0xD6E8FEB86659FD93ULL * (k + 3);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x != 0 ? x : 1;  // 0 is the "no active trace" sentinel
}

Span::Span(const char* name) noexcept : name_(name) {
  saved_current_ = t_trace.current;
  saved_next_span_ = t_trace.next_span;
  ctx_.trace_id = t_trace.current.trace_id;
  ctx_.span_id = t_trace.next_span++;
  ctx_.parent_id = t_trace.current.span_id;
  t_trace.current = ctx_;
  begin(name);
}

Span::Span(const char* name, std::uint64_t trace_id) noexcept : name_(name), is_root_(true) {
  saved_current_ = t_trace.current;
  saved_next_span_ = t_trace.next_span;
  ctx_.trace_id = trace_id;
  ctx_.span_id = 1;
  ctx_.parent_id = 0;
  t_trace.current = ctx_;
  t_trace.next_span = 2;
  begin(name);
}

void Span::begin(const char* name) noexcept {
  start_ = std::chrono::steady_clock::now();
  JRSND_COUNT("obs.span.started");
  if (flight_enabled()) {
    FlightRecord rec;
    rec.t_wall = wall_now();
    rec.t_sim = current_sim_time();
    rec.trace_id = ctx_.trace_id;
    rec.span_id = ctx_.span_id;
    rec.parent_id = ctx_.parent_id;
    rec.name = name;
    rec.kind = FlightKind::SpanBegin;
    flight_record(rec);
  }
  if (tracing_enabled()) {
    TraceEvent ev("span.begin");
    ev.with("trace", ctx_.trace_id)
        .with("span", static_cast<std::uint64_t>(ctx_.span_id))
        .with("parent", static_cast<std::uint64_t>(ctx_.parent_id))
        .with("name", std::string(name));
    event_log().emit(std::move(ev));
  }
}

void Span::with_u64(const char* key, std::uint64_t value) noexcept {
  for (std::size_t i = 0; i < 2; ++i) {
    if (ann_key_[i] == nullptr || ann_key_[i] == key) {
      ann_key_[i] = key;
      ann_val_[i] = value;
      return;
    }
  }
}

Span::~Span() {
  t_trace.current = saved_current_;
  t_trace.next_span = is_root_ ? saved_next_span_ : t_trace.next_span;
  JRSND_COUNT("obs.span.ended");
  if (flight_enabled()) {
    FlightRecord rec;
    rec.t_wall = wall_now();
    rec.t_sim = current_sim_time();
    rec.trace_id = ctx_.trace_id;
    rec.span_id = ctx_.span_id;
    rec.parent_id = ctx_.parent_id;
    rec.name = name_;
    rec.kind = FlightKind::SpanEnd;
    rec.ok = ok_;
    rec.loss = loss_;
    flight_record(rec);
  }
  if (tracing_enabled()) {
    TraceEvent ev("span.end", ok_ ? Severity::Info : Severity::Warn);
    ev.with("trace", ctx_.trace_id)
        .with("span", static_cast<std::uint64_t>(ctx_.span_id))
        .with("parent", static_cast<std::uint64_t>(ctx_.parent_id))
        .with("name", std::string(name_))
        .with("ok", ok_);
    if (loss_ != LossStage::None) ev.with("loss", std::string(loss_stage_name(loss_)));
    if (has_dur_) ev.with("dur", dur_);
    for (std::size_t i = 0; i < 2; ++i) {
      if (ann_key_[i] != nullptr) ev.with(ann_key_[i], ann_val_[i]);
    }
    if (span_wall_clock_enabled()) {
      const double us =
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
              .count();
      ev.with("wall_us", us);
    }
    event_log().emit(std::move(ev));
  }
}

}  // namespace jrsnd::obs
