// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
//
// Design constraints (DESIGN.md §observability):
//   * Hot-path cheap. Updates are relaxed atomics on pre-resolved handles;
//     every instrumentation macro first checks one process-wide enabled flag,
//     so a disabled build pays a single relaxed load per site. Defining
//     JRSND_OBS_DISABLED compiles every macro to nothing.
//   * Multi-seed friendly. A run snapshots the registry into plain data
//     (MetricsSnapshot), which can be merged across seeds/processes:
//     counters and histogram buckets add, gauges keep the high-water mark.
//   * Stable handles. The registry hands out references that stay valid for
//     the registry's lifetime, so call sites may cache them in static locals.
//
// Canonical metric names are documented in docs/observability.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace jrsnd::obs {

/// Process-wide collection switch; updates are dropped while false.
/// Default: disabled (zero overhead for benches and figure runs).
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level with a high-water helper (queue depths etc.).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  /// Raises the gauge to `v` if `v` exceeds the current value.
  void update_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSample;

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges; an
/// implicit overflow bucket catches everything above the last edge. Also
/// tracks count/sum/min/max so snapshots can report means and extremes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  /// Adds a snapshot sample's buckets/count/sum and widens min/max — the
  /// registry-absorption half of the cross-thread merge path. Samples whose
  /// bounds do not match are dropped (a schema mismatch, not data).
  void merge_from(const HistogramSample& sample) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double min() const noexcept;  ///< NaN when empty
  [[nodiscard]] double max() const noexcept;  ///< NaN when empty
  /// Bucket counts, one per bound plus the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Bucket-interpolated quantile on the live buckets, q in [0, 1]. NaN when
  /// empty. Convenience mirrors of HistogramSample::quantile for callers that
  /// hold the registry handle (timers, tests) rather than a snapshot.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Log-spaced latency edges in seconds: 1us .. 30s (the range a discovery
/// phase or a whole multi-seed sweep can span).
[[nodiscard]] const std::vector<double>& default_latency_bounds();

// --- snapshots -------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< NaN when empty
  double max = 0.0;  ///< NaN when empty

  [[nodiscard]] double mean() const noexcept;
  /// Bucket-interpolated quantile, q in [0, 1]. NaN when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  /// Canonical latency percentiles (the ones reports and exporters surface).
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
};

/// Plain-data view of a registry at one instant; mergeable across seeds.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;      // sorted by name
  std::vector<GaugeSample> gauges;          // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name

  [[nodiscard]] bool empty() const noexcept;

  /// Counters and histogram buckets add; gauges keep the maximum (high-water
  /// semantics — the only cross-seed reduction that is always meaningful).
  /// Histograms with mismatched bounds are kept side by side under the name
  /// of the first occurrence (mismatch means a schema change; don't hide it).
  void merge(const MetricsSnapshot& other);

  /// Aligned human-readable table (counters, gauges, then histograms with
  /// count/mean/p50/p95/max columns).
  void print_table(std::ostream& os) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;
};

/// Named-metric registry. Thread-safe registration; returned references are
/// stable for the registry's lifetime. Re-requesting a name returns the same
/// object (histogram bounds from the first registration win). Requesting a
/// name already registered as a *different* kind throws std::logic_error
/// naming both kinds — one logical metric must not silently split across
/// snapshot sections.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Adds a snapshot into this registry's live metrics: counters and
  /// histograms accumulate, gauges keep the high-water mark (the same
  /// reduction MetricsSnapshot::merge applies). This is how per-thread
  /// scratch registries are folded back into the process registry after a
  /// parallel Monte-Carlo run — totals end up identical to a serial run.
  void absorb(const MetricsSnapshot& snapshot);
  /// Zeroes every registered metric (names stay registered).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry all instrumentation macros feed.
[[nodiscard]] MetricsRegistry& registry();

/// The registry instrumentation currently resolves against on this thread:
/// the thread's ScopedMetricsRegistry override if one is installed, else the
/// process-wide registry().
[[nodiscard]] MetricsRegistry& active_registry();

/// Bumped (process-wide) every time any thread installs or removes a
/// registry override. Instrumentation macros cache resolved metric handles
/// per thread and re-resolve only when this changes, so the steady-state
/// hot-path cost stays one relaxed load + one compare per site.
[[nodiscard]] std::uint64_t registry_generation() noexcept;

/// RAII thread-local registry override. While alive, every instrumentation
/// macro on this thread records into `scratch` instead of the global
/// registry — the isolation the parallel Monte-Carlo engine uses to give
/// each worker its own metrics, later folded back via snapshot()/absorb().
/// A null `scratch` is a no-op (convenient when metrics are disabled).
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* scratch);
  ~ScopedMetricsRegistry();

  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_ = nullptr;
  bool installed_ = false;
};

/// Registers the canonical metric names (docs/observability.md) so snapshots
/// report them as zero even on paths a given configuration never exercises
/// (e.g. chip-layer counters under the abstract PHY).
void preregister_core_metrics();

}  // namespace jrsnd::obs

// --- instrumentation macros -------------------------------------------------
//
// Each site pays one relaxed atomic load when metrics are disabled. When
// enabled, the resolved metric handle is cached per thread and revalidated
// against registry_generation() with one relaxed load + compare, so a site
// re-resolves only when a ScopedMetricsRegistry override is (un)installed —
// the hook the parallel Monte-Carlo engine uses to give each worker thread
// its own scratch registry.

#define JRSND_OBS_CONCAT_INNER(a, b) a##b
#define JRSND_OBS_CONCAT(a, b) JRSND_OBS_CONCAT_INNER(a, b)

#if defined(JRSND_OBS_DISABLED)

#define JRSND_COUNT_N(name, n) ((void)0)
#define JRSND_GAUGE_SET(name, v) ((void)0)
#define JRSND_GAUGE_MAX(name, v) ((void)0)
#define JRSND_OBSERVE(name, v) ((void)0)

#else

// Resolves `name` of metric kind Type (counter/gauge/histogram accessor
// `getter`) against the active registry, caching per (site, thread) until
// the registry generation moves. generation starts at 1, so 0 marks a
// never-resolved cache.
#define JRSND_OBS_RESOLVE(Type, getter, name, out)                                \
  static thread_local ::jrsnd::obs::Type* out = nullptr;                          \
  static thread_local std::uint64_t JRSND_OBS_CONCAT(out, _gen) = 0;              \
  {                                                                               \
    const std::uint64_t jrsnd_obs_now = ::jrsnd::obs::registry_generation();      \
    if (JRSND_OBS_CONCAT(out, _gen) != jrsnd_obs_now) {                           \
      out = &::jrsnd::obs::active_registry().getter(name);                        \
      JRSND_OBS_CONCAT(out, _gen) = jrsnd_obs_now;                                \
    }                                                                             \
  }

#define JRSND_COUNT_N(name, n)                                                    \
  do {                                                                            \
    if (::jrsnd::obs::metrics_enabled()) {                                        \
      JRSND_OBS_RESOLVE(Counter, counter, name, jrsnd_obs_c)                      \
      jrsnd_obs_c->inc(static_cast<std::uint64_t>(n));                            \
    }                                                                             \
  } while (0)

#define JRSND_GAUGE_SET(name, v)                                                  \
  do {                                                                            \
    if (::jrsnd::obs::metrics_enabled()) {                                        \
      JRSND_OBS_RESOLVE(Gauge, gauge, name, jrsnd_obs_g)                          \
      jrsnd_obs_g->set(static_cast<double>(v));                                   \
    }                                                                             \
  } while (0)

#define JRSND_GAUGE_MAX(name, v)                                                  \
  do {                                                                            \
    if (::jrsnd::obs::metrics_enabled()) {                                        \
      JRSND_OBS_RESOLVE(Gauge, gauge, name, jrsnd_obs_g)                          \
      jrsnd_obs_g->update_max(static_cast<double>(v));                            \
    }                                                                             \
  } while (0)

#define JRSND_OBSERVE(name, v)                                                    \
  do {                                                                            \
    if (::jrsnd::obs::metrics_enabled()) {                                        \
      JRSND_OBS_RESOLVE(Histogram, histogram, name, jrsnd_obs_h)                  \
      jrsnd_obs_h->observe(static_cast<double>(v));                               \
    }                                                                             \
  } while (0)

#endif  // JRSND_OBS_DISABLED

#define JRSND_COUNT(name) JRSND_COUNT_N(name, 1)
