// Concrete event sinks + the JSONL trace format (docs/observability.md).
//
// One trace event = one flat JSON object per line. Reserved keys `t` (sim
// time, number), `seq` (number), `sev` (string), `event` (string); every
// other key is a user field. parse_jsonl_line() inverts write_jsonl()
// exactly, so `jrsnd report` and the round-trip tests read what any sink
// wrote — including TracingPhy's print_jsonl, which shares this schema.
#pragma once

#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "obs/event_log.hpp"

namespace jrsnd::obs {

/// JSON string-escapes `s` (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Writes one event as a single JSONL line (with trailing newline).
void write_jsonl(std::ostream& os, const TraceEvent& event);

/// Parses one JSONL line back into an event. Returns nullopt on malformed
/// input (the reserved keys may be absent; unknown keys become fields).
[[nodiscard]] std::optional<TraceEvent> parse_jsonl_line(std::string_view line);

/// Human-readable one-line-per-event sink:
///   [t=12.000 info ] dndp.pair a=4 b=9 discovered=true
class PrettyPrintSink final : public EventSink {
 public:
  /// Writes to `os`; the default is std::cerr (figure output stays on stdout).
  explicit PrettyPrintSink(std::ostream& os);
  PrettyPrintSink();

  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ostream& os_;
};

/// JSONL onto any ostream the caller keeps alive.
class JsonlStreamSink final : public EventSink {
 public:
  explicit JsonlStreamSink(std::ostream& os) : os_(os) {}

  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ostream& os_;
};

/// JSONL into a file this sink owns.
class JsonlFileSink final : public EventSink {
 public:
  explicit JsonlFileSink(const std::string& path);

  /// False when the file could not be opened (events are then dropped).
  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(file_); }

  void write(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ofstream file_;
};

}  // namespace jrsnd::obs
