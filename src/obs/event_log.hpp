// Structured trace events (docs/observability.md).
//
// A TraceEvent is one timestamped, named record with typed key=value fields:
//
//   {"t":0.000,"seq":17,"sev":"info","event":"dndp.pair","a":4,"b":9,...}
//
// The process-wide EventLog stamps each event with a monotonic sequence
// number and the current simulated time, keeps a capped in-memory ring of
// recent events, and fans out to attached sinks (stderr pretty-printer,
// JSONL file — see obs/sinks.hpp). Tracing is off by default; call sites
// guard event construction behind tracing_enabled() so a disabled run pays
// one relaxed load per site.
//
// Time semantics: event-queue simulations publish the queue clock via
// set_sim_time(); Monte-Carlo drivers (discovery_sim) publish the run index,
// since each seeded run is an independent world. Either way `t` is monotone
// over one process run.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace jrsnd::obs {

enum class Severity { Debug = 0, Info = 1, Warn = 2, Error = 3 };

[[nodiscard]] const char* severity_name(Severity sev) noexcept;
[[nodiscard]] std::optional<Severity> parse_severity(std::string_view name) noexcept;

/// Field values keep their type through the JSONL round trip.
using FieldValue = std::variant<std::string, double, std::int64_t, std::uint64_t, bool>;

struct TraceEvent {
  double t = 0.0;          ///< sim time (stamped by EventLog::emit if zero)
  std::uint64_t seq = 0;   ///< assigned by EventLog::emit
  Severity severity = Severity::Info;
  std::string name;        ///< dotted event id, e.g. "dndp.pair"
  std::vector<std::pair<std::string, FieldValue>> fields;

  TraceEvent() = default;
  explicit TraceEvent(std::string event_name, Severity sev = Severity::Info)
      : severity(sev), name(std::move(event_name)) {}

  /// Appends a field; chainable: ev.with("a", 1).with("ok", true).
  TraceEvent& with(std::string key, FieldValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// First field with `key`, or nullptr.
  [[nodiscard]] const FieldValue* field(std::string_view key) const noexcept;
};

/// Sink interface; concrete sinks live in obs/sinks.hpp.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Process-wide structured trace switch (independent of metrics_enabled).
[[nodiscard]] bool tracing_enabled() noexcept;
void set_tracing_enabled(bool enabled) noexcept;

class EventLog {
 public:
  explicit EventLog(std::size_t ring_capacity = 1024);

  void attach(std::shared_ptr<EventSink> sink);
  void detach_all();

  /// Publishes the current simulated time; emit() stamps it on events that
  /// do not carry their own.
  void set_sim_time(double t) noexcept;
  [[nodiscard]] double sim_time() const noexcept;

  /// Stamps seq (+ t if the event left it at 0), appends to the ring, and
  /// fans out to every attached sink. Thread-safe.
  void emit(TraceEvent event);

  void set_ring_capacity(std::size_t capacity);
  /// Copy of the ring contents, oldest first.
  [[nodiscard]] std::vector<TraceEvent> recent() const;
  [[nodiscard]] std::uint64_t emitted() const noexcept;

  void flush();
  /// Empties the ring (sequence numbering continues).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<EventSink>> sinks_;
  std::deque<TraceEvent> ring_;
  std::size_t ring_capacity_;
  std::uint64_t next_seq_ = 1;
  std::atomic<double> sim_time_{0.0};
};

/// The process-wide event log all instrumentation feeds.
[[nodiscard]] EventLog& event_log();

/// RAII thread-local sim-time override. While alive, events emitted from
/// this thread that carry t == 0 are stamped with `t` instead of the global
/// sim time — how parallel Monte-Carlo workers stamp their own run index so
/// interleaved traces stay attributable (and, after a seed-ordered sort,
/// byte-identical to a serial run). Nests; the previous value is restored.
class ScopedSimTime {
 public:
  explicit ScopedSimTime(double t) noexcept;
  ~ScopedSimTime();

  ScopedSimTime(const ScopedSimTime&) = delete;
  ScopedSimTime& operator=(const ScopedSimTime&) = delete;

 private:
  double saved_t_;
  bool saved_active_;
};

/// The sim time instrumentation on this thread should stamp right now: the
/// innermost ScopedSimTime override if one is active, else the global
/// event_log() clock.
[[nodiscard]] double current_sim_time() noexcept;

/// Emits through the global log iff tracing is enabled.
inline void trace_event(TraceEvent event) {
  if (tracing_enabled()) event_log().emit(std::move(event));
}

}  // namespace jrsnd::obs
