#include "obs/exporter.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"

namespace jrsnd::obs {

namespace {

std::string prom_name(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size() + 1);
  out.append(prefix);
  if (!prefix.empty()) out.push_back('_');
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) != 0 ? c : '_');
  }
  return out;
}

void write_prom_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

double uptime_s() {
  static const std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot,
                      std::string_view prefix) {
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = prom_name(prefix, c.name);
    os << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = prom_name(prefix, g.name);
    os << "# TYPE " << name << " gauge\n" << name << " ";
    write_prom_value(os, g.value);
    os << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = prom_name(prefix, h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      os << name << "_bucket{le=\"";
      write_prom_value(os, h.bounds[i]);
      os << "\"} " << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum ";
    write_prom_value(os, h.sum);
    os << "\n" << name << "_count " << h.count << "\n";
    // Precomputed bucket-interpolated percentiles: dashboards get latency
    // quantiles without histogram_quantile() (and with the exact same
    // interpolation `jrsnd report` and print_table use). Empty histograms
    // are skipped — NaN is not a useful scrape value.
    if (h.count > 0) {
      const struct {
        const char* suffix;
        double value;
      } quantiles[] = {{"_p50", h.p50()}, {"_p95", h.p95()}, {"_p99", h.p99()}};
      for (const auto& q : quantiles) {
        os << "# TYPE " << name << q.suffix << " gauge\n" << name << q.suffix << " ";
        write_prom_value(os, q.value);
        os << "\n";
      }
    }
  }
}

MetricsExporter::MetricsExporter(ExporterOptions options) : options_(std::move(options)) {}

MetricsExporter::~MetricsExporter() {
  stop();
  (void)export_now();  // final state always lands on disk
}

void MetricsExporter::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (running_ || options_.interval_s <= 0.0) return;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void MetricsExporter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsExporter::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    const auto period = std::chrono::duration<double>(options_.interval_s);
    cv_.wait_for(lock, period, [this] { return !running_; });
    if (!running_) break;
    lock.unlock();
    (void)export_now();
    lock.lock();
  }
}

bool MetricsExporter::export_now() {
  const MetricsSnapshot snap = registry().snapshot();
  bool ok = true;
  if (!options_.prometheus_path.empty()) ok = write_prometheus_file(snap) && ok;
  if (!options_.heartbeat_path.empty()) ok = append_heartbeat(snap) && ok;
  exports_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

std::uint64_t MetricsExporter::exports() const noexcept {
  return exports_.load(std::memory_order_relaxed);
}

bool MetricsExporter::write_prometheus_file(const MetricsSnapshot& snapshot) {
  // Write-then-rename so readers never observe a partially written file.
  const std::string tmp = options_.prometheus_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_prometheus(out, snapshot, options_.prefix);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), options_.prometheus_path.c_str()) == 0;
}

bool MetricsExporter::append_heartbeat(const MetricsSnapshot& snapshot) {
  std::ofstream out(options_.heartbeat_path, std::ios::app);
  if (!out) return false;
  TraceEvent ev("export.heartbeat");
  ev.t = event_log().sim_time();
  ev.seq = exports_.load(std::memory_order_relaxed) + 1;
  ev.with("uptime_s", uptime_s());
  if (!options_.source.empty()) ev.with("source", options_.source);
  for (const CounterSample& c : snapshot.counters) ev.with(c.name, c.value);
  for (const GaugeSample& g : snapshot.gauges) {
    ev.with(g.name, std::isnan(g.value) ? 0.0 : g.value);
  }
  write_jsonl(out, ev);
  JRSND_COUNT("export.heartbeats");
  return static_cast<bool>(out);
}

}  // namespace jrsnd::obs
