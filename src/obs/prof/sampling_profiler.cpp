#include "obs/prof/sampling_profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <csignal>
#include <sys/time.h>
#define JRSND_PROF_HAVE_ITIMER 1
#endif
#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <ucontext.h>
#define JRSND_PROF_HAVE_DLADDR 1
#endif

namespace jrsnd::obs::prof {

namespace {

constexpr std::size_t kMaxDepthCap = 64;

/// One raw sample: PCs leaf-first. Plain data, copied in the handler.
struct Sample {
  void* frames[kMaxDepthCap];
  std::uint32_t depth = 0;
};

/// Single-writer (the signal handler, always on the owning thread) /
/// single-reader (the dump, only while sampling is paused) ring.
struct SampleRing {
  std::vector<Sample> samples;
  std::atomic<std::uint64_t> pushed{0};
};

/// The profiler's whole mutable state. Allocated once, never freed: the
/// handler may observe it at any time, so its lifetime is the process's.
struct ProfilerState {
  std::vector<SampleRing> rings;
  std::atomic<std::uint32_t> next_slot{0};
  std::atomic<std::uint64_t> missed{0};
  std::atomic<std::uint64_t> session{0};
  std::atomic<bool> sampling{false};
  std::size_t max_depth = 32;
  std::uint32_t hz = 199;
};

std::atomic<ProfilerState*> g_state{nullptr};
std::atomic<bool> g_running{false};
bool g_handler_installed = false;

// Slot claims are per (thread, session): restarting the profiler resizes the
// ring pool, so stale indices from an earlier session must not be reused.
thread_local std::uint64_t t_claim_session = 0;
thread_local std::int32_t t_slot = -1;

/// Walks the frame-pointer chain starting at `fp`, storing return addresses
/// after the already-recorded `depth` frames. Bounds discipline: frames must
/// stay within an 8 MiB window above the interrupted stack pointer, strictly
/// increase, and be pointer-aligned — a garbage chain fails a check and the
/// walk stops rather than faulting.
std::uint32_t walk_frames(void** frames, std::uint32_t depth, std::uint32_t max_depth,
                          const void* fp, const void* sp) noexcept {
  const auto lo = reinterpret_cast<std::uintptr_t>(sp);
  const std::uintptr_t hi = lo + (8u << 20);
  auto cur = reinterpret_cast<std::uintptr_t>(fp);
  while (depth < max_depth) {
    if (cur < lo || cur + 2 * sizeof(void*) > hi || (cur % sizeof(void*)) != 0) break;
    const auto* record = reinterpret_cast<void* const*>(cur);
    void* const ret = record[1];
    void* const next = record[0];
    if (ret == nullptr) break;
    frames[depth++] = ret;
    const auto next_u = reinterpret_cast<std::uintptr_t>(next);
    if (next_u <= cur) break;
    cur = next_u;
  }
  return depth;
}

#if defined(JRSND_PROF_HAVE_ITIMER)

void sigprof_handler(int /*sig*/, siginfo_t* /*info*/, void* ucontext) {
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr || !st->sampling.load(std::memory_order_acquire)) return;

  const std::uint64_t session = st->session.load(std::memory_order_acquire);
  if (t_claim_session != session) {
    // Claim a preallocated slot — one fetch_add, no allocation, no lock.
    const std::uint32_t idx = st->next_slot.fetch_add(1, std::memory_order_relaxed);
    t_slot = idx < st->rings.size() ? static_cast<std::int32_t>(idx) : -1;
    t_claim_session = session;
  }
  if (t_slot < 0) {
    st->missed.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  SampleRing& ring = st->rings[static_cast<std::size_t>(t_slot)];
  const std::uint64_t pushed = ring.pushed.load(std::memory_order_relaxed);
  Sample& sample = ring.samples[pushed % ring.samples.size()];

  const void* fp = nullptr;
  const void* sp = nullptr;
  std::uint32_t depth = 0;
#if defined(__linux__) && defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  sample.frames[depth++] = reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = reinterpret_cast<const void*>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = reinterpret_cast<const void*>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__linux__) && defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  sample.frames[depth++] = reinterpret_cast<void*>(uc->uc_mcontext.pc);
  fp = reinterpret_cast<const void*>(uc->uc_mcontext.regs[29]);
  sp = reinterpret_cast<const void*>(uc->uc_mcontext.sp);
#else
  (void)ucontext;
  fp = __builtin_frame_address(0);
  sp = fp;
#endif
  const auto max_depth = static_cast<std::uint32_t>(st->max_depth);
  sample.depth = walk_frames(sample.frames, depth, max_depth, fp, sp);
  ring.pushed.store(pushed + 1, std::memory_order_release);
}

bool arm_timer(std::uint32_t hz) {
  itimerval timer{};
  const long usec = hz > 0 ? std::max(1L, 1000000L / static_cast<long>(hz)) : 0;
  timer.it_interval.tv_usec = usec;
  timer.it_value.tv_usec = usec;
  return setitimer(ITIMER_PROF, &timer, nullptr) == 0;
}

void disarm_timer() {
  itimerval off{};
  (void)setitimer(ITIMER_PROF, &off, nullptr);
}

bool install_handler() {
  struct sigaction sa{};
  sa.sa_sigaction = sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  return sigaction(SIGPROF, &sa, nullptr) == 0;
}

#endif  // JRSND_PROF_HAVE_ITIMER

std::string symbolize(void* addr) {
#if defined(JRSND_PROF_HAVE_DLADDR)
  Dl_info info;
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      // Folded-stack separators are ';' and ' '; keep frames one token.
      for (char& c : out) {
        if (c == ';' || c == ' ') c = '_';
      }
      return out;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
#endif
  char buf[2 + 2 * sizeof(void*) + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(reinterpret_cast<std::uintptr_t>(addr)));
  return buf;
}

}  // namespace

bool profiler_running() noexcept { return g_running.load(std::memory_order_acquire); }

bool profiler_start(const ProfilerOptions& options) {
#if defined(JRSND_PROF_HAVE_ITIMER)
  if (g_running.load(std::memory_order_acquire)) return false;

  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr) {
    st = new ProfilerState;  // intentionally never freed (handler lifetime)
    g_state.store(st, std::memory_order_release);
  }
  st->sampling.store(false, std::memory_order_release);
  st->max_depth = std::min(options.max_depth, kMaxDepthCap);
  st->hz = options.hz;
  const std::size_t capacity = std::max<std::size_t>(options.ring_capacity, 16);
  const std::size_t slots = std::max<std::size_t>(options.max_threads, 1);
  if (st->rings.size() != slots || st->rings[0].samples.size() != capacity) {
    st->rings = std::vector<SampleRing>(slots);
    for (SampleRing& ring : st->rings) ring.samples.resize(capacity);
  } else {
    for (SampleRing& ring : st->rings) ring.pushed.store(0, std::memory_order_relaxed);
  }
  st->next_slot.store(0, std::memory_order_relaxed);
  st->missed.store(0, std::memory_order_relaxed);
  st->session.fetch_add(1, std::memory_order_acq_rel);

  if (!g_handler_installed) {
    if (!install_handler()) return false;
    g_handler_installed = true;
  }
  st->sampling.store(true, std::memory_order_release);
  if (!arm_timer(options.hz)) {
    st->sampling.store(false, std::memory_order_release);
    return false;
  }
  g_running.store(true, std::memory_order_release);
  return true;
#else
  (void)options;
  return false;
#endif
}

void profiler_stop() {
#if defined(JRSND_PROF_HAVE_ITIMER)
  if (!g_running.exchange(false, std::memory_order_acq_rel)) return;
  disarm_timer();
  if (ProfilerState* st = g_state.load(std::memory_order_acquire)) {
    st->sampling.store(false, std::memory_order_release);
  }
#endif
}

std::uint64_t profiler_samples() noexcept {
  const ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr) return 0;
  std::uint64_t total = 0;
  for (const SampleRing& ring : st->rings) {
    total += ring.pushed.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t profiler_dropped() noexcept {
  const ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr) return 0;
  std::uint64_t dropped = st->missed.load(std::memory_order_acquire);
  for (const SampleRing& ring : st->rings) {
    const std::uint64_t pushed = ring.pushed.load(std::memory_order_acquire);
    const std::uint64_t cap = ring.samples.size();
    if (pushed > cap) dropped += pushed - cap;
  }
  return dropped;
}

std::size_t dump_folded(std::ostream& os) {
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr) return 0;

  // Pause sampling so the rings are quiescent while we read them.
  const bool was_running = g_running.load(std::memory_order_acquire);
  if (was_running) {
#if defined(JRSND_PROF_HAVE_ITIMER)
    disarm_timer();
#endif
    st->sampling.store(false, std::memory_order_release);
  }

  // Aggregate identical stacks (root-first key) before symbolizing: dladdr
  // runs once per unique frame sequence, not once per sample.
  std::map<std::vector<void*>, std::uint64_t> stacks;
  std::vector<void*> key;
  for (const SampleRing& ring : st->rings) {
    const std::uint64_t pushed = ring.pushed.load(std::memory_order_acquire);
    const std::uint64_t cap = ring.samples.size();
    const std::uint64_t live = std::min(pushed, cap);
    for (std::uint64_t i = 0; i < live; ++i) {
      const Sample& sample = ring.samples[(pushed - live + i) % cap];
      if (sample.depth == 0) continue;
      key.assign(sample.depth, nullptr);
      for (std::uint32_t f = 0; f < sample.depth; ++f) {
        key[sample.depth - 1 - f] = sample.frames[f];  // leaf-first -> root-first
      }
      ++stacks[key];
    }
  }

  std::map<void*, std::string> symbols;
  for (const auto& [stack, count] : stacks) {
    std::string line;
    for (std::size_t i = 0; i < stack.size(); ++i) {
      auto it = symbols.find(stack[i]);
      if (it == symbols.end()) it = symbols.emplace(stack[i], symbolize(stack[i])).first;
      if (i > 0) line += ';';
      line += it->second;
    }
    os << line << ' ' << count << '\n';
  }

  if (was_running) {
    st->sampling.store(true, std::memory_order_release);
#if defined(JRSND_PROF_HAVE_ITIMER)
    (void)arm_timer(st->hz);  // resume at the session's configured rate
#endif
  }
  return stacks.size();
}

bool dump_folded_file(const char* path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  dump_folded(out);
  return static_cast<bool>(out);
}

}  // namespace jrsnd::obs::prof
